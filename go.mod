module qcdoc

go 1.22
