// Benchmarks regenerating the paper's evaluation, one per table/figure
// (DESIGN.md's experiment index). Model-level benchmarks report the
// reproduced quantity as a custom metric; functional benchmarks run the
// packet-level machine simulation and report simulated time and
// efficiency. Raw numeric kernels (the host-side cost of the reference
// operators) are benchmarked at the bottom.
//
// Run: go test -bench=. -benchmem
package qcdoc_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"qcdoc/internal/analysis/driver"
	"qcdoc/internal/core"
	"qcdoc/internal/cost"
	"qcdoc/internal/event"
	"qcdoc/internal/experiments"
	"qcdoc/internal/faultplan"
	"qcdoc/internal/fermion"
	"qcdoc/internal/fleet"
	"qcdoc/internal/geom"
	"qcdoc/internal/hmc"
	"qcdoc/internal/lattice"
	"qcdoc/internal/machine"
	"qcdoc/internal/memsys"
	"qcdoc/internal/node"
	"qcdoc/internal/obs"
	"qcdoc/internal/perf"
	"qcdoc/internal/qmp"
	"qcdoc/internal/scu"
	"qcdoc/internal/solver"
	"qcdoc/internal/telemetry"
)

// --- E1: solver efficiencies (model) -------------------------------------

func BenchmarkE1DiracEfficiency(b *testing.B) {
	grid := lattice.Shape4{4, 4, 4, 2} // 128 nodes
	paper := map[fermion.OpKind]float64{
		fermion.WilsonKind: 0.40,
		fermion.AsqtadKind: 0.38,
		fermion.CloverKind: 0.465,
	}
	for _, k := range fermion.Kinds() {
		b.Run(k.String(), func(b *testing.B) {
			var eff float64
			for i := 0; i < b.N; i++ {
				eff = perf.CGIteration(perf.DefaultConfig(k, grid, 500*event.MHz)).Efficiency
			}
			b.ReportMetric(100*eff, "%peak")
			if p, ok := paper[k]; ok {
				b.ReportMetric(100*p, "%paper")
			}
		})
	}
}

// BenchmarkE1FunctionalWilson runs a real distributed CG on a simulated
// 16-node machine (4^4 local volume) and reports the measured machine
// efficiency. One solve per benchmark iteration — expect seconds of host
// time each.
func BenchmarkE1FunctionalWilson(b *testing.B) {
	global := lattice.Shape4{8, 8, 8, 8}
	gauge := lattice.NewGaugeField(global)
	gauge.Randomize(1)
	rhs := lattice.NewFermionField(global)
	rhs.Gaussian(2)
	b.ReportAllocs()
	var eff float64
	var simNS float64
	for i := 0; i < b.N; i++ {
		sess, err := core.NewSession(geom.MakeShape(2, 2, 2, 2), global)
		if err != nil {
			b.Fatal(err)
		}
		_, met, err := sess.SolveWilson(gauge, rhs, 0.5, fermion.Double, 1e-4, 100)
		sess.Close()
		if err != nil {
			b.Fatal(err)
		}
		eff = met.Efficiency
		simNS = float64(met.SimTime) / 1000 / float64(met.Iterations)
	}
	b.ReportMetric(100*eff, "%peak")
	b.ReportMetric(simNS, "sim-ns/iter")
	b.ReportMetric(40, "%paper")
}

// --- E1/E11 parallel engine scaling (functional, sharded) ------------------

// benchE1Parallel is BenchmarkE1FunctionalWilson on the sharded engine:
// same 16-node machine and solve, partitioned one shard per
// daughterboard (8 shards) and executed by the given worker count. The
// simulated physics is identical at every worker count (the digest
// tests pin that); only host wall clock changes.
func benchE1Parallel(b *testing.B, workers int) {
	global := lattice.Shape4{8, 8, 8, 8}
	gauge := lattice.NewGaugeField(global)
	gauge.Randomize(1)
	rhs := lattice.NewFermionField(global)
	rhs.Gaussian(2)
	b.ReportAllocs()
	var eff float64
	for i := 0; i < b.N; i++ {
		cfg := machine.DefaultConfig(geom.MakeShape(2, 2, 2, 2))
		cfg.Shards = machine.ShardAuto
		cfg.Workers = workers
		sess, err := core.NewSessionConfig(cfg, global)
		if err != nil {
			b.Fatal(err)
		}
		_, met, err := sess.SolveWilson(gauge, rhs, 0.5, fermion.Double, 1e-4, 100)
		sess.Close()
		if err != nil {
			b.Fatal(err)
		}
		eff = met.Efficiency
	}
	b.ReportMetric(100*eff, "%peak")
}

func BenchmarkE1FunctionalWilsonParallel(b *testing.B) {
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchE1Parallel(b, w) })
	}
}

// BenchmarkE11RackScale runs a whole simulated rack — the paper's
// 1024-node 8x4x4x2x2x2 machine (§4) — through boot plus a
// communication-bound SPMD round (nearest-neighbour halo traffic and a
// doubled global sum) on the sharded engine, one shard per motherboard
// (16 shards). This is the workload the shard refactor exists for: at
// workers=1 it measures the conservative protocol's overhead, at
// workers=N its speedup.
func benchRackScale(b *testing.B, workers int) {
	shape := geom.MakeShape(8, 4, 4, 2, 2, 2)
	var end event.Time
	for i := 0; i < b.N; i++ {
		eng := event.New()
		cfg := machine.DefaultConfig(shape)
		cfg.Shards = machine.ShardAuto
		cfg.Workers = workers
		m := machine.Build(eng, cfg)
		if err := m.Boot(); err != nil {
			b.Fatal(err)
		}
		fold := geom.IdentityFold(shape)
		err := m.RunSPMD("rack", func(rank int) node.Program {
			return func(ctx *node.Ctx) {
				n := ctx.N
				sendAddr := n.AllocWords(16)
				recvAddr := n.AllocWords(16)
				for w := 0; w < 16; w++ {
					n.Mem.WriteWord(sendAddr+8*uint64(w), uint64(rank)<<32|uint64(w))
				}
				for round := 0; round < 4; round++ {
					rt, err := n.SCU.StartRecv(geom.Link{Dim: 0, Dir: geom.Bwd}, scu.Contiguous(recvAddr, 16))
					if err != nil {
						panic(err)
					}
					st, err := n.SCU.StartSend(geom.Link{Dim: 0, Dir: geom.Fwd}, scu.Contiguous(sendAddr, 16))
					if err != nil {
						panic(err)
					}
					st.Wait(ctx.P)
					rt.Wait(ctx.P)
				}
				qmp.New(ctx, fold).GlobalSumFloat64Doubled(ctx.P, float64(rank))
			}
		})
		end = eng.Now()
		eng.Shutdown()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(end)/1e6, "sim-us")
}

func BenchmarkE11RackScale(b *testing.B) {
	for _, w := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchRackScale(b, w) })
	}
}

// --- Fleet campaign throughput (DESIGN.md §14) ----------------------------

// BenchmarkFleetCampaign runs a small chaos campaign — four fault seeds
// on a 4-node machine, each through the full fault-injection/recovery
// pipeline — over the fleet scheduler and reports campaign throughput.
// workers=1 is the serial baseline; workers=8 shows what the bounded
// worker pool adds on this host (the BENCH meta block records NumCPU, so
// a workers=8 row on one core reads as scheduling overhead, not speedup).
func BenchmarkFleetCampaign(b *testing.B) {
	base := fleet.Spec{
		Machine:         geom.MakeShape(2, 2),
		Op:              fermion.WilsonKind,
		Mass:            0.5,
		Seed:            4001,
		Tol:             1e-8,
		MaxIter:         400,
		CheckpointEvery: 10,
		Chaos:           true,
		Faults: faultplan.Spec{
			From:        2 * event.Millisecond,
			To:          10 * event.Millisecond,
			NodeCrashes: 1,
			NetDrops:    2,
			NetDups:     1,
			LinkBursts:  1,
		},
	}
	specs := fleet.Sweep(base,
		[]lattice.Shape4{{4, 4, 4, 4}},
		[]fermion.OpKind{fermion.WilsonKind},
		[]uint64{7, 8, 9, 10})
	for _, w := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			pool := machine.NewPool()
			var digest uint64
			for i := 0; i < b.N; i++ {
				rs := fleet.Run(fleet.Config{Workers: w, Pool: pool}, specs)
				for _, r := range rs {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
				d := fleet.Digest(rs)
				if digest != 0 && d != digest {
					b.Fatalf("campaign digest drifted: %#x then %#x", digest, d)
				}
				digest = d
			}
			b.ReportMetric(float64(len(specs)*b.N)/b.Elapsed().Seconds(), "runs/sec")
		})
	}
}

// --- Chaos recovery ladder (DESIGN.md §16) --------------------------------

// BenchmarkChaosRecovery runs the compound second-order soak scenario —
// checkpoint corruption, a torn write, a spurious death report, and a
// second death during recovery — end to end on an 8-node machine: every
// iteration pays for detection, probe, chunk retries, a generation
// fallback, and two partition shrinks before reconverging on 2 nodes.
// workers=1 is the serial engine; workers=8 the sharded engine, whose
// outcome digest must match bit for bit (checked every iteration).
func BenchmarkChaosRecovery(b *testing.B) {
	base := core.ChaosConfig{
		Shape:           geom.MakeShape(2, 2, 2),
		Global:          lattice.Shape4{4, 4, 4, 4},
		Seed:            4001,
		FaultSeed:       1,
		Mass:            0.5,
		Tol:             1e-8,
		MaxIter:         400,
		CheckpointEvery: 10,
		MaxAttempts:     6,
		Spec: faultplan.Spec{
			From:                   2 * event.Millisecond,
			To:                     10 * event.Millisecond,
			NodeCrashes:            1,
			NetDrops:               2,
			NetDups:                1,
			LinkBursts:             1,
			ChunkCorrupts:          2,
			ChunkTorns:             1,
			WatchdogFalsePositives: 1,
			RecoveryCrashes:        1,
		},
	}
	var digest uint64
	for _, w := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := base
			if w > 1 {
				cfg.Shards = machine.ShardAuto
				cfg.Workers = w
			}
			b.ReportAllocs()
			var rungs, attempts int
			for i := 0; i < b.N; i++ {
				out, err := core.RunChaosWilson(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if !out.Converged {
					b.Fatal("soak scenario did not converge")
				}
				if digest != 0 && out.Digest != digest {
					b.Fatalf("outcome digest drifted: %#x then %#x", digest, out.Digest)
				}
				digest = out.Digest
				rungs = len(out.Rungs)
				attempts = len(out.Attempts)
			}
			b.ReportMetric(float64(rungs), "rungs")
			b.ReportMetric(float64(attempts), "attempts")
		})
	}
}

// --- E2: DDR spill --------------------------------------------------------

func BenchmarkE2DDRSpill(b *testing.B) {
	grid := lattice.Shape4{4, 4, 4, 2}
	var edram, ddr float64
	for i := 0; i < b.N; i++ {
		cfg := perf.DefaultConfig(fermion.WilsonKind, grid, 500*event.MHz)
		edram = perf.CGIteration(cfg).Efficiency
		cfg.Local = lattice.Shape4{8, 8, 8, 8}
		ddr = perf.CGIteration(cfg).Efficiency
	}
	b.ReportMetric(100*edram, "%edram")
	b.ReportMetric(100*ddr, "%ddr")
	b.ReportMetric(30, "%paper-ddr")
}

// --- E3: precision ---------------------------------------------------------

func BenchmarkE3Precision(b *testing.B) {
	grid := lattice.Shape4{4, 4, 4, 2}
	var dp, sp float64
	for i := 0; i < b.N; i++ {
		cfg := perf.DefaultConfig(fermion.WilsonKind, grid, 500*event.MHz)
		dp = perf.CGIteration(cfg).Efficiency
		cfg.Prec = fermion.Single
		sp = perf.CGIteration(cfg).Efficiency
	}
	b.ReportMetric(100*dp, "%double")
	b.ReportMetric(100*sp, "%single")
}

// --- E4: nearest-neighbour latency (functional) ----------------------------

func BenchmarkE4Latency(b *testing.B) {
	var lat event.Time
	for i := 0; i < b.N; i++ {
		eng := event.New()
		m := machine.Build(eng, machine.DefaultConfig(geom.MakeShape(2)))
		if err := m.Boot(); err != nil {
			b.Fatal(err)
		}
		start := eng.Now()
		err := m.RunSPMD("lat", func(rank int) node.Program {
			return func(ctx *node.Ctx) {
				n := ctx.N
				if rank == 0 {
					a := n.AllocWords(1)
					n.Mem.WriteWord(a, 42)
					if _, err := n.SCU.StartSend(geom.Link{Dim: 0, Dir: geom.Fwd}, scu.Contiguous(a, 1)); err != nil {
						panic(err)
					}
				} else {
					a := n.AllocWords(1)
					rt, err := n.SCU.StartRecv(geom.Link{Dim: 0, Dir: geom.Bwd}, scu.Contiguous(a, 1))
					if err != nil {
						panic(err)
					}
					rt.Wait(ctx.P)
					lat = rt.Finished() - start
				}
			}
		})
		eng.Shutdown()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(lat)/1000, "sim-ns")
	b.ReportMetric(600, "paper-ns")
}

// --- E5: global sum single vs doubled (functional) --------------------------

func benchGsum(b *testing.B, doubled bool) {
	var elapsed event.Time
	for i := 0; i < b.N; i++ {
		eng := event.New()
		m := machine.Build(eng, machine.DefaultConfig(geom.MakeShape(8)))
		if err := m.Boot(); err != nil {
			b.Fatal(err)
		}
		fold := geom.IdentityFold(m.Cfg.Shape)
		start := eng.Now()
		var end event.Time
		err := m.RunSPMD("gsum", func(rank int) node.Program {
			return func(ctx *node.Ctx) {
				c := qmp.New(ctx, fold)
				if doubled {
					c.GlobalSumFloat64Doubled(ctx.P, 1)
				} else {
					c.GlobalSumFloat64(ctx.P, 1)
				}
				if ctx.P.Now() > end {
					end = ctx.P.Now()
				}
			}
		})
		eng.Shutdown()
		if err != nil {
			b.Fatal(err)
		}
		elapsed = end - start
	}
	b.ReportMetric(float64(elapsed)/1000, "sim-ns")
}

func BenchmarkE5GlobalSumSingle(b *testing.B)  { benchGsum(b, false) }
func BenchmarkE5GlobalSumDoubled(b *testing.B) { benchGsum(b, true) }

// --- E6: bandwidths ---------------------------------------------------------

func BenchmarkE6Bandwidth(b *testing.B) {
	var agg, edram float64
	for i := 0; i < b.N; i++ {
		agg = perf.AggregateLinkBandwidth(500 * event.MHz)
		edram = memsys.DefaultModel().BusBandwidth(memsys.EDRAM)
	}
	b.ReportMetric(agg/1e9, "linkGB/s")
	b.ReportMetric(edram/1e9, "edramGB/s")
}

// --- E7: packaging -----------------------------------------------------------

func BenchmarkE7Packaging(b *testing.B) {
	var p machine.Packaging
	for i := 0; i < b.N; i++ {
		p = machine.PackagingFor(1024, 500*event.MHz)
	}
	b.ReportMetric(p.PowerWatts/1000, "rack-kW")
	b.ReportMetric(p.PeakTeraflops, "rack-Tflops")
}

// --- E9: price/performance ----------------------------------------------------

func BenchmarkE9PricePerf(b *testing.B) {
	var pts []cost.PricePoint
	for i := 0; i < b.N; i++ {
		pts = cost.Paper4096Points()
	}
	b.ReportMetric(pts[2].Dollars, "$per-Mflops@450")
	b.ReportMetric(pts[2].PaperSays, "paper$")
}

// --- E11: hard scaling ----------------------------------------------------------

func BenchmarkE11HardScaling(b *testing.B) {
	global := lattice.Shape4{32, 32, 32, 64}
	grids := []lattice.Shape4{{8, 8, 8, 16}}
	var eff float64
	for i := 0; i < b.N; i++ {
		pts, err := perf.HardScaling(fermion.WilsonKind, global, grids, 500*event.MHz)
		if err != nil {
			b.Fatal(err)
		}
		eff = pts[0].Estimate.Efficiency
	}
	b.ReportMetric(100*eff, "%peak@8192nodes")
}

// --- E15: DWF forecast -----------------------------------------------------------

func BenchmarkE15DWF(b *testing.B) {
	var dwf, clv float64
	for i := 0; i < b.N; i++ {
		dwf = perf.DslashEfficiency(fermion.DWFKind, fermion.Double, memsys.EDRAM, 500*event.MHz)
		clv = perf.DslashEfficiency(fermion.CloverKind, fermion.Double, memsys.EDRAM, 500*event.MHz)
	}
	b.ReportMetric(100*dwf, "%dwf")
	b.ReportMetric(100*clv, "%clover")
}

// --- Experiment table generation (ensures benchtables stays cheap) -----------

func BenchmarkStaticTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Static()
	}
}

// --- Raw numeric kernels (host performance of the reference operators) -------

func benchGauge(b *testing.B) (*lattice.GaugeField, *lattice.FermionField, *lattice.FermionField) {
	b.Helper()
	l := lattice.Shape4{8, 8, 8, 8}
	g := lattice.NewGaugeField(l)
	g.Randomize(3)
	src := lattice.NewFermionField(l)
	src.Gaussian(4)
	return g, src, lattice.NewFermionField(l)
}

func BenchmarkWilsonDslash(b *testing.B) {
	g, src, dst := benchGauge(b)
	w := fermion.NewWilson(g, 0.1)
	sites := float64(g.L.Volume())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Apply(dst, src)
	}
	b.ReportMetric(fermion.FlopsPerSite(fermion.WilsonKind)*sites*float64(b.N)/b.Elapsed().Seconds()/1e6, "host-Mflops")
}

func BenchmarkCloverApply(b *testing.B) {
	g, src, dst := benchGauge(b)
	c := fermion.NewClover(g, 0.1, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Apply(dst, src)
	}
}

func BenchmarkASQTADApply(b *testing.B) {
	l := lattice.Shape4{8, 8, 8, 8}
	g := lattice.NewGaugeField(l)
	g.Randomize(5)
	a := fermion.NewASQTAD(g, 0.1)
	src := lattice.NewColorField(l)
	src.Gaussian(6)
	dst := lattice.NewColorField(l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Apply(dst, src)
	}
}

func BenchmarkDWFApply(b *testing.B) {
	l := lattice.Shape4{4, 4, 4, 8}
	g := lattice.NewGaugeField(l)
	g.Randomize(7)
	d := fermion.NewDWF(g, 1.8, 0.1, 8)
	src := fermion.NewField5(l, 8)
	src.Gaussian(8)
	dst := fermion.NewField5(l, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Apply(dst, src)
	}
}

func BenchmarkCGNEWilsonSolve(b *testing.B) {
	l := lattice.Shape4{4, 4, 4, 4}
	g := lattice.NewGaugeField(l)
	g.Randomize(9)
	w := fermion.NewWilson(g, 0.5)
	rhs := lattice.NewFermionField(l)
	rhs.Gaussian(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := lattice.NewFermionField(l)
		if _, err := solver.SolveDirac(w, x, rhs, 1e-8, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeatbathSweep(b *testing.B) {
	g := lattice.NewGaugeField(lattice.Shape4{4, 4, 4, 4})
	h := &hmc.Heatbath{Beta: 5.6, Seed: 11}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Sweep(g)
	}
}

// BenchmarkEngineDispatch compares the engine's two process tiers moving
// the same event stream: a producer/consumer coroutine pair handing
// words through a Queue (tier 1: goroutine parks and channel wakes per
// event) versus a flat StateMachine timer chain (tier 2: plain function
// calls from the dispatch loop). The gap is the per-event context-switch
// cost the SCU refactor removed from the simulator's hot paths.
func BenchmarkEngineDispatch(b *testing.B) {
	const events = 4096
	b.Run("coroutine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := event.New()
			q := event.NewQueue[int](eng, "dispatch")
			eng.Spawn("consumer", func(p *event.Proc) {
				for j := 0; j < events; j++ {
					q.Get(p)
				}
			})
			eng.Spawn("producer", func(p *event.Proc) {
				for j := 0; j < events; j++ {
					p.Sleep(event.Nanosecond)
					q.Put(j)
				}
			})
			if err := eng.RunAll(); err != nil {
				b.Fatal(err)
			}
			eng.Shutdown()
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/events, "ns/event")
	})
	b.Run("callback", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng := event.New()
			sm := eng.NewStateMachine("dispatch", "run")
			n := 0
			var step func()
			step = func() {
				n++
				if n < events {
					sm.Sleep(event.Nanosecond, step)
					return
				}
				sm.Goto("done")
			}
			sm.Sleep(event.Nanosecond, step)
			if err := eng.RunAll(); err != nil {
				b.Fatal(err)
			}
			if n != events {
				b.Fatalf("ran %d of %d events", n, events)
			}
			eng.Shutdown()
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/events, "ns/event")
	})
}

// BenchmarkMachineBuild1024 builds and boots the paper's 1024-node
// machine (§4: 8x4x4x2x2x2). Boot trains all 12288 outbound wires via
// per-node continuation chains; since the refactor the whole machine
// runs on zero process goroutines.
func BenchmarkMachineBuild1024(b *testing.B) {
	shape := geom.MakeShape(8, 4, 4, 2, 2, 2)
	for i := 0; i < b.N; i++ {
		eng := event.New()
		m := machine.Build(eng, machine.DefaultConfig(shape))
		if err := m.Boot(); err != nil {
			b.Fatal(err)
		}
		eng.Shutdown()
	}
}

// BenchmarkTelemetryOverhead runs the E4 nearest-neighbour word path on
// a persistent 2-node machine with telemetry fully off versus fully on
// (counter registry enabled, per-node CPU counters live, flight recorder
// attached). The two must be within noise of each other: counters are
// plain field increments on paths the simulator already executes, and
// the recorder overwrites preallocated ring slots. Allocations per op
// must not change either.
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, enable bool) {
		eng := event.New()
		m := machine.Build(eng, machine.DefaultConfig(geom.MakeShape(2)))
		if err := m.Boot(); err != nil {
			b.Fatal(err)
		}
		defer eng.Shutdown()
		if enable {
			m.EnableTelemetry()
			eng.SetRecorder(event.NewRecorder(0))
		}
		addrs := []uint64{m.Nodes[0].AllocWords(1), m.Nodes[1].AllocWords(1)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			err := m.RunSPMD("lat", func(rank int) node.Program {
				return func(ctx *node.Ctx) {
					n := ctx.N
					a := addrs[rank]
					if rank == 0 {
						n.Mem.WriteWord(a, 42)
						if _, err := n.SCU.StartSend(geom.Link{Dim: 0, Dir: geom.Fwd}, scu.Contiguous(a, 1)); err != nil {
							panic(err)
						}
					} else {
						rt, err := n.SCU.StartRecv(geom.Link{Dim: 0, Dir: geom.Bwd}, scu.Contiguous(a, 1))
						if err != nil {
							panic(err)
						}
						rt.Wait(ctx.P)
					}
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("enabled", func(b *testing.B) { run(b, true) })
}

// BenchmarkHistogramRecord pins the observability plane's hot path: one
// log2-bucket histogram record must cost a few nanoseconds and zero
// allocations — it runs inside collective completion, link ack, and
// checkpoint paths (DESIGN.md §15). Reports the recorded distribution's
// percentiles as custom metrics (benchtables renders them as columns).
func BenchmarkHistogramRecord(b *testing.B) {
	var h telemetry.Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(uint64(i))
	}
	s := h.Snapshot()
	b.ReportMetric(float64(s.P50), "p50")
	b.ReportMetric(float64(s.P95), "p95")
	b.ReportMetric(float64(s.P99), "p99")
}

// BenchmarkMetricsScrape measures the full pull path: snapshot a live
// 16-node machine's registry (counters, gauges, merged per-node and
// per-link histograms) and render it as Prometheus exposition text —
// the per-request cost of GET /metrics against a published snapshot's
// machine.
func BenchmarkMetricsScrape(b *testing.B) {
	eng := event.New()
	m := machine.Build(eng, machine.DefaultConfig(geom.MakeShape(4, 2, 2)))
	if err := m.Boot(); err != nil {
		b.Fatal(err)
	}
	defer eng.Shutdown()
	m.EnableTelemetry()
	fold := geom.IdentityFold(m.Cfg.Shape)
	err := m.RunSPMD("warm", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			qmp.New(ctx, fold).GlobalSumFloat64(ctx.P, float64(rank))
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	srv := &obs.Server{}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	b.ReportAllocs()
	b.ResetTimer()
	var size int
	for i := 0; i < b.N; i++ {
		srv.PublishMetrics(eng.Now(), m.Reg.Snapshot())
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			b.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || len(body) == 0 {
			b.Fatalf("scrape: %v (%d bytes)", err, len(body))
		}
		size = len(body)
	}
	b.ReportMetric(float64(size), "bytes")
}

func BenchmarkGlobalSumMachine(b *testing.B) {
	// Host cost of simulating one machine-wide reduction on 16 nodes.
	eng := event.New()
	m := machine.Build(eng, machine.DefaultConfig(geom.MakeShape(4, 2, 2)))
	if err := m.Boot(); err != nil {
		b.Fatal(err)
	}
	defer eng.Shutdown()
	fold := geom.IdentityFold(m.Cfg.Shape)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := m.RunSPMD("gsum", func(rank int) node.Program {
			return func(ctx *node.Ctx) {
				qmp.New(ctx, fold).GlobalSumFloat64(ctx.P, 1)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQcdoclintTree pins the cost of the full static-analysis
// gate: go-list the tree once, then type-check and run the whole
// analyzer suite (DESIGN.md §11) over every package, tests included —
// exactly what `make lint` pays. Tracked in BENCH_lint.json so a
// regression in the callgraph fixpoint or a new analyzer's cost shows
// up in review, not in CI wall time.
func BenchmarkQcdoclintTree(b *testing.B) {
	pkgs, err := driver.List([]string{"./..."})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exit := driver.Lint(pkgs, driver.Options{
			Tests: true,
			Out:   io.Discard,
			Err:   io.Discard,
		})
		if exit != 0 {
			b.Fatalf("qcdoclint exit %d: tree is not clean", exit)
		}
	}
	b.ReportMetric(float64(len(pkgs)), "pkgs")
}
