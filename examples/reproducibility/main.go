// reproducibility performs the paper's §4 verification ritual in
// miniature: "a five day simulation was completed ... and then redone,
// with the requirement that the resulting QCD configuration be identical
// in all bits. This was found to be the case. No hardware errors on the
// SCU links were reported."
//
// Here: (a) a quenched heatbath evolution run twice must produce
// bit-identical gauge configurations (verified by checkpoint CRC), and
// (b) a distributed CG solve on a 16-node machine run twice must produce
// bit-identical solutions with zero link errors and matching end-of-link
// checksums — then once more with single-bit errors injected into the
// wires, where the automatic hardware resend must deliver the very same
// bits.
package main

import (
	"bytes"
	"fmt"
	"log"

	"qcdoc/internal/checkpoint"
	"qcdoc/internal/core"
	"qcdoc/internal/fermion"
	"qcdoc/internal/geom"
	"qcdoc/internal/hmc"
	"qcdoc/internal/hssl"
	"qcdoc/internal/lattice"
)

func main() {
	// (a) Gauge evolution, twice.
	evolve := func() *lattice.GaugeField {
		g := lattice.NewGaugeField(lattice.Shape4{4, 4, 4, 4})
		h := &hmc.Heatbath{Beta: 5.6, Seed: 20040726} // the paper's date
		for sweep := 0; sweep < 10; sweep++ {
			h.Sweep(g)
			hmc.Overrelax(g)
		}
		return g
	}
	g1, g2 := evolve(), evolve()
	crc1, crc2 := checkpoint.GaugeCRC(g1), checkpoint.GaugeCRC(g2)
	fmt.Printf("evolution run 1: plaquette %.6f, checkpoint CRC %#x\n", g1.Plaquette(), crc1)
	fmt.Printf("evolution run 2: plaquette %.6f, checkpoint CRC %#x\n", g2.Plaquette(), crc2)
	fmt.Printf("identical in all bits: %v\n\n", g1.Equal(g2))

	// Checkpoint round trip through the on-disk format.
	var buf bytes.Buffer
	if err := checkpoint.WriteGauge(&buf, g1); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	restored, err := checkpoint.ReadGauge(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint round trip (%d bytes): bit-identical %v\n\n", size, restored.Equal(g1))

	// (b) Distributed solve, twice, then once under fault injection.
	solve := func(inject bool) ([]byte, uint64, uint64) {
		global := lattice.Shape4{4, 4, 4, 4}
		sess, err := core.NewSession(geom.MakeShape(2, 2), global)
		if err != nil {
			log.Fatal(err)
		}
		defer sess.Close()
		if inject {
			for rank := 0; rank < sess.M.NumNodes(); rank++ {
				sess.M.Wire(rank, geom.Link{Dim: 0, Dir: geom.Fwd}).SetFault(hssl.FlipBitEvery(101))
			}
		}
		gauge := lattice.NewGaugeField(global)
		gauge.Randomize(1)
		b := lattice.NewFermionField(global)
		b.Gaussian(2)
		x, _, err := sess.SolveWilson(gauge, b, 0.5, fermion.Double, 1e-10, 500)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sess.M.VerifyChecksums(); err != nil {
			log.Fatal("checksum audit failed: ", err)
		}
		st := sess.M.Stats()
		var out bytes.Buffer
		if err := checkpoint.WriteFermion(&out, x); err != nil {
			log.Fatal(err)
		}
		return out.Bytes(), st.ParityErrors + st.HeaderErrors, st.Resends
	}
	s1, errs1, _ := solve(false)
	s2, errs2, _ := solve(false)
	fmt.Printf("solve run 1: %d link errors; solve run 2: %d link errors\n", errs1, errs2)
	fmt.Printf("solutions identical in all bits: %v\n\n", bytes.Equal(s1, s2))

	s3, errs3, resends := solve(true)
	fmt.Printf("solve with injected single-bit wire errors: %d detected, %d hardware resends\n",
		errs3, resends)
	fmt.Printf("corrupted-wire solution still identical in all bits: %v\n", bytes.Equal(s1, s3))
}
