// Quickstart: build a 16-node QCDOC, boot it, and solve the Wilson Dirac
// equation on it with conjugate gradient — the calculation that dominates
// QCD machine time (§1). Every halo exchange rides the simulated
// six-dimensional SCU network and every kernel is charged to the PPC 440
// compute model, so the reported efficiency is a machine measurement,
// not an estimate.
package main

import (
	"fmt"
	"log"

	"qcdoc/internal/core"
	"qcdoc/internal/fermion"
	"qcdoc/internal/geom"
	"qcdoc/internal/lattice"
)

func main() {
	// A 2x2x2x2 corner of a QCDOC: 16 nodes of the six-dimensional torus.
	machineShape := geom.MakeShape(2, 2, 2, 2)
	// An 8^4 global lattice: the paper's 4^4 local volume per node.
	global := lattice.Shape4{8, 8, 8, 8}

	sess, err := core.NewSession(machineShape, global)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	fmt.Printf("booted %d nodes; machine %v folded to 4-D grid %v; local volume %v\n",
		sess.M.NumNodes(), machineShape, sess.Lay.Dec.Grid, sess.Lay.Dec.Local)

	// A hot gauge configuration and a Gaussian source.
	gauge := lattice.NewGaugeField(global)
	gauge.Randomize(42)
	source := lattice.NewFermionField(global)
	source.Gaussian(43)

	// Solve D x = b on the machine.
	x, met, err := sess.SolveWilson(gauge, source, 0.5, fermion.Double, 1e-8, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged in %d iterations, true residual %.2g\n", met.Iterations, met.RelResidual)
	fmt.Printf("simulated machine time: %v\n", met.SimTime)
	fmt.Printf("sustained %.1f Mflops/node = %.1f%% of peak (paper: ~40%%)\n",
		met.SustainedPerNode/1e6, 100*met.Efficiency)

	// Verify the answer against the single-node reference operator.
	check := lattice.NewFermionField(global)
	fermion.NewWilson(gauge, 0.5).Apply(check, x)
	check.AXPY(-1, source)
	fmt.Printf("independent residual check: %.2g\n", check.Norm2()/source.Norm2())

	// The §2.2 end-of-calculation audit: transmit and receive checksums
	// must agree on every link.
	links, err := sess.M.VerifyChecksums()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("link checksum audit passed on %d connections\n", links)
}
