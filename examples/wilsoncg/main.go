// wilsoncg reproduces the paper's §4 benchmark sweep on the functional
// simulator: all four Dirac discretizations at the 4^4-per-node design
// point, reporting sustained efficiency per operator next to the paper's
// measured 40% / 38% / 46.5% (and the "DWF will surpass clover"
// forecast). Expect a few minutes of host time: every packet of every
// halo exchange is simulated.
package main

import (
	"fmt"
	"log"

	"qcdoc/internal/core"
	"qcdoc/internal/fermion"
	"qcdoc/internal/geom"
	"qcdoc/internal/lattice"
)

func main() {
	machineShape := geom.MakeShape(2, 2, 2, 2)
	global := lattice.Shape4{8, 8, 8, 8} // 4^4 per node on 16 nodes
	gauge := lattice.NewGaugeField(global)
	gauge.Randomize(7)

	fmt.Println("operator   iterations  sim time      Mflops/node  efficiency  paper")
	row := func(name string, met core.SolveMetrics, paper string) {
		fmt.Printf("%-10s %-11d %-13v %-12.1f %-11s %s\n",
			name, met.Iterations, met.SimTime, met.SustainedPerNode/1e6,
			fmt.Sprintf("%.1f%%", 100*met.Efficiency), paper)
	}

	// Wilson.
	{
		sess, err := core.NewSession(machineShape, global)
		if err != nil {
			log.Fatal(err)
		}
		b := lattice.NewFermionField(global)
		b.Gaussian(8)
		_, met, err := sess.SolveWilson(gauge, b, 0.5, fermion.Double, 1e-4, 200)
		sess.Close()
		if err != nil {
			log.Fatal(err)
		}
		row("wilson", met, "40%")
	}
	// Clover.
	{
		sess, err := core.NewSession(machineShape, global)
		if err != nil {
			log.Fatal(err)
		}
		ref := fermion.NewClover(gauge, 0.5, 1.0)
		b := lattice.NewFermionField(global)
		b.Gaussian(9)
		_, met, err := sess.SolveClover(ref, b, fermion.Double, 1e-4, 200)
		sess.Close()
		if err != nil {
			log.Fatal(err)
		}
		row("clover", met, "46.5%")
	}
	// ASQTAD staggered.
	{
		sess, err := core.NewSession(machineShape, global)
		if err != nil {
			log.Fatal(err)
		}
		ref := fermion.NewASQTAD(gauge, 0.5)
		b := lattice.NewColorField(global)
		b.Gaussian(10)
		_, met, err := sess.SolveASQTAD(ref, b, fermion.Double, 1e-4, 400)
		sess.Close()
		if err != nil {
			log.Fatal(err)
		}
		row("asqtad", met, "38%")
	}
	// Domain-wall.
	{
		const ls = 4
		sess, err := core.NewSession(machineShape, global)
		if err != nil {
			log.Fatal(err)
		}
		b := fermion.NewField5(global, ls)
		b.Gaussian(11)
		_, met, err := sess.SolveDWF(gauge, b, 1.8, 0.1, ls, fermion.Double, 1e-3, 400)
		sess.Close()
		if err != nil {
			log.Fatal(err)
		}
		row("dwf", met, "> clover (forecast)")
	}
}
