// priceperf regenerates the paper's economics (§2.4, §4): the packaging
// hierarchy from daughterboard to water-cooled rack, the 4096-node cost
// table from the Columbia purchase orders, the $1.29/$1.10/$1.03 per
// sustained Mflops points at the three demonstrated clock speeds, and
// the abstract's "$1 per sustained Megaflops" target at full scale.
package main

import (
	"fmt"

	"qcdoc/internal/cost"
	"qcdoc/internal/event"
	"qcdoc/internal/machine"
	"qcdoc/internal/perf"
)

func main() {
	fmt.Println("Packaging (§2.4, Figures 3-5):")
	for _, nodes := range []int{2, 64, 512, 1024, 4096, 12288} {
		fmt.Printf("  %v\n", machine.PackagingFor(nodes, 500*event.MHz))
	}

	fmt.Println("\nCost of the 4096-node machine (§4):")
	fmt.Print(cost.FormatTable())

	fmt.Println("\nPrice/performance at 45% solver efficiency (§4):")
	for _, p := range cost.Paper4096Points() {
		sustained := perf.SustainedMachine(4096, p.Clock, 0.45)
		fmt.Printf("  %3d MHz: %7.1f sustained Gflops -> $%.2f per Mflops (paper: $%.2f)\n",
			int64(p.Clock)/1_000_000, sustained, p.Dollars, p.PaperSays)
	}

	fmt.Println("\nFull-scale 12,288-node machines (abstract's 10+ Tflops, $1/Mflops target):")
	p := machine.PackagingFor(12288, 450*event.MHz)
	fmt.Printf("  %v\n", p)
	fmt.Printf("  sustained at 45%%: %.1f Gflops\n", perf.SustainedMachine(12288, 450*event.MHz, 0.45))
	for _, disc := range []float64{0, 0.05, 0.10, 0.15} {
		fmt.Printf("  with %2.0f%% volume discount: $%.3f per sustained Mflops\n",
			100*disc, cost.Twelve288Estimate(450*event.MHz, disc))
	}
	watts, dpw := cost.PowerBudget(450 * event.MHz)
	fmt.Printf("\nPower: the 4096-node machine draws %.1f kW ($%.0f per watt of infrastructure)\n",
		watts/1000, dpw)
}
