// partitioning demonstrates the software shape-shifting of §2.2/§3.1:
// the same 16-node machine is remapped — without moving a cable — to
// logical tori of dimensionality 1 through 4, and on each mapping the
// SCU global-operation hardware performs a machine-wide sum (single and
// doubled mode) and a broadcast. A partition interrupt is raised on one
// node and observed by every CPU after the global-clock sampling window.
package main

import (
	"fmt"
	"log"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/machine"
	"qcdoc/internal/node"
	"qcdoc/internal/qdaemon"
	"qcdoc/internal/qmp"
)

func main() {
	shape := geom.MakeShape(4, 2, 2)
	eng := event.New()
	defer eng.Shutdown()
	m := machine.Build(eng, machine.DefaultConfig(shape))
	if err := m.Boot(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine: %v (%d nodes), native dimensionality %d\n",
		shape, m.NumNodes(), shape.Dims())

	for dims := 1; dims <= 4; dims++ {
		fold, err := qdaemon.FoldToDims(shape, dims)
		if err != nil {
			log.Fatal(err)
		}
		sums := make([]float64, m.NumNodes())
		err = m.RunSPMD("gsum", func(rank int) node.Program {
			return func(ctx *node.Ctx) {
				c := qmp.New(ctx, fold)
				sums[rank] = c.GlobalSumFloat64Doubled(ctx.P, float64(rank))
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("remapped to %d-D logical torus %v: global sum = %v on every node\n",
			dims, fold.Logical(), sums[0])
	}

	// Broadcast from an arbitrary root through the SCU pass-through mode.
	fold := geom.IdentityFold(shape)
	root := geom.Coord{2, 1, 0, 0, 0, 0}
	got := make([]uint64, m.NumNodes())
	err := m.RunSPMD("bcast", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			c := qmp.New(ctx, fold)
			word := uint64(0)
			if c.Coord() == root {
				word = 0xC0FFEE
			}
			got[rank] = c.Broadcast(ctx.P, root, word)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("broadcast from %v: node 0 received %#x\n", root, got[0])

	// Partition interrupt: one node raises, every CPU sees it at the next
	// global-clock sampling window (§2.2).
	seen := 0
	for _, n := range m.Nodes {
		n.SCU.OnPartIRQ(func(mask uint8) { seen++ })
	}
	m.Nodes[7].SCU.RaisePartIRQ(0x01)
	if err := eng.RunAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partition interrupt raised on node 7: %d of %d CPUs interrupted (window %v)\n",
		seen, m.NumNodes(), m.WindowPeriod())

	if _, err := m.VerifyChecksums(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("link checksum audit passed")
}
