// Package qcdoc is a full-system reproduction of "QCDOC: A 10 Teraflops
// Computer for Tightly-coupled Calculations" (Boyle et al., SC 2004) as
// a Go library: a packet-level simulator of the QCDOC machine — the
// custom ASIC (PPC 440 compute model, prefetching EDRAM controller, DDR
// controller), the six-dimensional serial-link torus driven by the
// Serial Communications Unit, the Ethernet/JTAG management plane, the
// qdaemon/qos software stack — together with a real lattice-QCD
// application layer (SU(3) algebra, Wilson / clover / ASQTAD staggered /
// domain-wall Dirac operators, conjugate-gradient solvers, gauge
// evolution) that runs distributed on the simulated machine.
//
// Layout:
//
//	internal/geom        six-dimensional torus geometry, folds, partitions
//	internal/event       discrete-event simulation core
//	internal/hssl        bit-serial link model (training, faults)
//	internal/scupkt      SCU wire format (error-robust headers, checksums)
//	internal/scu         the Serial Communications Unit (§2.2)
//	internal/memsys      EDRAM/DDR memory system model (§2.1)
//	internal/ppc440      processor cost model (§2.1)
//	internal/node        the ASIC: one processing node
//	internal/machine     torus wiring, packaging, power (§2.4)
//	internal/ethjtag     management Ethernet + JTAG controller (§2.3)
//	internal/qos         node run kernel (§3.2)
//	internal/qdaemon     host daemon and qcsh (§3.1)
//	internal/qmp         user communications API (§3.3)
//	internal/latmath     SU(3)/spinor algebra, gamma matrices
//	internal/lattice     fields, even-odd, decomposition
//	internal/fermion     the four Dirac discretizations + cost model (§4)
//	internal/solver      Krylov solvers
//	internal/hmc         gauge evolution (heatbath, overrelaxation, HMC)
//	internal/core        distributed QCD on the simulated machine
//	internal/perf        analytic model for paper-scale machines
//	internal/cost        §4 cost table and price/performance
//	internal/experiments one function per paper table/figure
//	cmd/qcdoc            machine/solver CLI
//	cmd/qdaemon          host daemon REPL (qcsh)
//	cmd/benchtables      regenerates every paper table and figure
//	examples/            runnable walkthroughs
//
// See DESIGN.md for the system inventory and experiment index, and
// EXPERIMENTS.md for paper-vs-measured results.
package qcdoc
