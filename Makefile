# Standard gate: everything a change must pass before it lands.
# `make check` = vet + lint + build + race-enabled tests + fuzz smoke.

GO ?= go

# How long the wire-format fuzz smoke runs inside `make check`: long
# enough to exercise the mutator past the seed corpus, short enough to
# keep the gate fast. `make fuzz FUZZTIME=5m` for a real soak.
FUZZTIME ?= 3s

# The pinned benchmark set tracked across allocation-path changes:
# engine dispatch (both tiers), one machine-wide reduction, and the
# full functional Wilson solve. `make bench` runs it with -benchmem so
# per-op allocation counts are part of the record, and writes the
# parsed results to BENCH_frames.json (one JSON entry per -count run).
BENCH_SET = ^(BenchmarkEngineDispatch|BenchmarkGlobalSumMachine|BenchmarkTelemetryOverhead|BenchmarkE1FunctionalWilson)$$

.PHONY: check vet lint fuzz build test race bench benchall tables chaos

check: vet lint build race fuzz

vet:
	$(GO) vet ./...

# qcdoclint: the project's own analyzers (simtime, maprange, hotalloc,
# contsafe) machine-check the determinism, zero-alloc, and
# continuation-tier invariants. DESIGN.md §11.
lint:
	$(GO) run ./cmd/qcdoclint ./...

# Format fuzzing: Decode/Wire round-trip and single-bit-error detection
# on the SCU packet codec, and the checkpoint decoder's typed-error /
# bounded-allocation contract (what recovery trusts when it restores a
# possibly-corrupt checkpoint).
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzWireDecode$$' -fuzztime $(FUZZTIME) ./internal/scupkt
	$(GO) test -run '^$$' -fuzz '^FuzzCheckpointDecode$$' -fuzztime $(FUZZTIME) ./internal/checkpoint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_SET)' -benchmem -count=5 . \
		| $(GO) run ./cmd/benchjson -o BENCH_frames.json

benchall:
	$(GO) test -bench=. -benchmem ./...

tables:
	$(GO) run ./cmd/benchtables

# Chaos gate: the E16 scenario under two fixed fault seeds, each run
# twice — qcdoc exits non-zero unless both runs of a seed produce the
# same outcome digest (injection, detection, isolation, restore, and
# re-convergence timing all bit-identical). DESIGN.md §12.
chaos:
	$(GO) run ./cmd/qcdoc chaos -faultseed 16 -repeat 2 -quiet
	$(GO) run ./cmd/qcdoc chaos -faultseed 23 -repeat 2 -quiet
