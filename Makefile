# Standard gate: everything a change must pass before it lands.
# `make check` = vet + build + race-enabled tests.

GO ?= go

# The pinned benchmark set tracked across allocation-path changes:
# engine dispatch (both tiers), one machine-wide reduction, and the
# full functional Wilson solve. `make bench` runs it with -benchmem so
# per-op allocation counts are part of the record, and writes the
# parsed results to BENCH_frames.json (one JSON entry per -count run).
BENCH_SET = ^(BenchmarkEngineDispatch|BenchmarkGlobalSumMachine|BenchmarkTelemetryOverhead|BenchmarkE1FunctionalWilson)$$

.PHONY: check vet build test race bench benchall tables

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_SET)' -benchmem -count=5 . \
		| $(GO) run ./cmd/benchjson -o BENCH_frames.json

benchall:
	$(GO) test -bench=. -benchmem ./...

tables:
	$(GO) run ./cmd/benchtables
