# Standard gate: everything a change must pass before it lands.
# `make check` = vet + lint + build + race-enabled tests + fuzz smoke.

GO ?= go

# How long the wire-format fuzz smoke runs inside `make check`: long
# enough to exercise the mutator past the seed corpus, short enough to
# keep the gate fast. `make fuzz FUZZTIME=5m` for a real soak.
FUZZTIME ?= 3s

# The pinned benchmark set tracked across allocation-path changes:
# engine dispatch (both tiers), one machine-wide reduction, and the
# full functional Wilson solve. `make bench` runs it with -benchmem so
# per-op allocation counts are part of the record, and writes the
# parsed results to BENCH_frames.json (one JSON entry per -count run).
BENCH_SET = ^(BenchmarkEngineDispatch|BenchmarkGlobalSumMachine|BenchmarkTelemetryOverhead|BenchmarkE1FunctionalWilson)$$

# The parallel-engine benchmark set: the functional Wilson solve and the
# rack-scale halo-exchange loop, each at workers=1/4/8 on the sharded
# engine. Pinned separately in BENCH_parallel.json because the numbers
# only mean "speedup" on a multi-core host — on one core they measure
# the window-barrier overhead instead (README "Parallel engine").
BENCH_PARALLEL_SET = ^(BenchmarkE1FunctionalWilsonParallel|BenchmarkE11RackScale)$$

# The fleet benchmark: a four-seed chaos campaign through the fleet
# scheduler at workers=1 and workers=8. Pinned in BENCH_fleet.json; the
# meta block records GOMAXPROCS/NumCPU so campaign throughput is always
# read against the host it was measured on (DESIGN.md §14).
BENCH_FLEET_SET = ^BenchmarkFleetCampaign$$

# The observability benchmark set (DESIGN.md §15): the zero-alloc
# histogram record, the telemetry on/off word-path comparison (link
# histograms enabled), and the full /metrics scrape path. Pinned in
# BENCH_obs.json.
BENCH_OBS_SET = ^(BenchmarkHistogramRecord|BenchmarkTelemetryOverhead|BenchmarkMetricsScrape)$$

# The chaos-recovery benchmark (DESIGN.md §16): the compound soak
# scenario end to end — detection, liveness probe, chunk retries,
# generation fallback, partition shrink, reconvergence — at workers=1
# and workers=8 with a cross-worker digest check every iteration.
# Pinned in BENCH_chaos.json.
BENCH_CHAOS_SET = ^BenchmarkChaosRecovery$$

# The lint benchmark: the full qcdoclint gate (go list + type-check +
# every analyzer, tests included) over the whole tree. Pinned in
# BENCH_lint.json so callgraph-fixpoint or analyzer-cost regressions
# are visible in review rather than as CI wall time (DESIGN.md §11).
BENCH_LINT_SET = ^BenchmarkQcdoclintTree$$

.PHONY: check vet lint fuzz build test race bench benchall tables chaos chaos-storm fleet obs

check: vet lint build race fuzz

vet:
	$(GO) vet ./...

# qcdoclint: the project's own analyzers (simtime, detflow, crossalias,
# hotalloc, contsafe, shardsafe, fleetsafe, obssafe) machine-check the
# determinism, cross-shard aliasing, zero-alloc, continuation-tier,
# shard-isolation, no-global-state, and zero-perturbation invariants,
# interprocedurally through the package call graph. -tests lints
# in-package _test.go files too, and the waiver lifecycle fails the run
# on any stale or unknown marker. DESIGN.md §11.
lint:
	$(GO) run ./cmd/qcdoclint -tests ./...

# Format fuzzing: Decode/Wire round-trip and single-bit-error detection
# on the SCU packet codec, and the checkpoint decoder's and generation
# manifest's typed-error / bounded-allocation contracts (what the
# recovery ladder trusts when it restores from a possibly-corrupt or
# torn storage plane).
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzWireDecode$$' -fuzztime $(FUZZTIME) ./internal/scupkt
	$(GO) test -run '^$$' -fuzz '^FuzzCheckpointDecode$$' -fuzztime $(FUZZTIME) ./internal/checkpoint
	$(GO) test -run '^$$' -fuzz '^FuzzManifestDecode$$' -fuzztime $(FUZZTIME) ./internal/checkpoint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_SET)' -benchmem -count=5 . \
		| $(GO) run ./cmd/benchjson -meta suite=frames -o BENCH_frames.json
	$(GO) test -run '^$$' -bench '$(BENCH_PARALLEL_SET)' -benchmem -benchtime 3x -count=3 . \
		| $(GO) run ./cmd/benchjson -meta suite=parallel -o BENCH_parallel.json
	$(GO) test -run '^$$' -bench '$(BENCH_FLEET_SET)' -benchmem -benchtime 1x -count=3 . \
		| $(GO) run ./cmd/benchjson -meta suite=fleet -o BENCH_fleet.json
	$(GO) test -run '^$$' -bench '$(BENCH_OBS_SET)' -benchmem -count=5 . \
		| $(GO) run ./cmd/benchjson -meta suite=obs -o BENCH_obs.json
	$(GO) test -run '^$$' -bench '$(BENCH_CHAOS_SET)' -benchmem -benchtime 1x -count=3 . \
		| $(GO) run ./cmd/benchjson -meta suite=chaos -o BENCH_chaos.json
	$(GO) test -run '^$$' -bench '$(BENCH_LINT_SET)' -benchmem -benchtime 1x -count=3 . \
		| $(GO) run ./cmd/benchjson -meta suite=lint -o BENCH_lint.json

benchall:
	$(GO) test -bench=. -benchmem ./...

tables:
	$(GO) run ./cmd/benchtables

# Chaos gate: the E16 scenario under two fixed fault seeds, each run
# twice — qcdoc exits non-zero unless both runs of a seed produce the
# same outcome digest (injection, detection, isolation, restore, and
# re-convergence timing all bit-identical). DESIGN.md §12. The final
# run repeats seed 16 on the sharded engine with an 8-goroutine worker
# pool; its digest must match the serial runs above bit for bit
# (DESIGN.md §13).
chaos:
	$(GO) run ./cmd/qcdoc chaos -faultseed 16 -repeat 2 -quiet
	$(GO) run ./cmd/qcdoc chaos -faultseed 23 -repeat 2 -quiet
	$(GO) run ./cmd/qcdoc chaos -faultseed 16 -repeat 2 -quiet -workers 8
	$(MAKE) chaos-storm

# Recovery-storm matrix (DESIGN.md §16): compound second-order plans —
# checkpoint corruption, torn writes, a spurious death report, and a
# second death landing inside the recovery window. Seeds 1 and 19 must
# survive by climbing the ladder (chunk retry, generation fallback,
# partition shrink), twice serially plus once on the 8-worker sharded
# engine, all three digests bit-identical; -require-fallback and
# -require-shrink fail the gate if the ladder was not actually
# exercised. Seed 23 must exhaust retained generations and fail with
# the typed checkpoint error; the 2x2 run loses both nodes of its last
# power-of-2 partition and must fail with the typed partition error.
chaos-storm:
	$(GO) run ./cmd/qcdoc chaos -soak -faultseed 1 -repeat 2 -quiet \
		-verify-workers 8 -require-fallback -require-shrink
	$(GO) run ./cmd/qcdoc chaos -soak -faultseed 19 -repeat 2 -quiet \
		-verify-workers 8 -require-fallback -require-shrink
	$(GO) run ./cmd/qcdoc chaos -soak -faultseed 23 -repeat 2 -quiet \
		-expect-error checkpoint
	$(GO) run ./cmd/qcdoc chaos -machine 2,2 -faultseed 16 -recovery-crashes 1 \
		-max-attempts 6 -repeat 2 -quiet -expect-error partition

# Fleet gate: a 32-run chaos campaign — 16 fault seeds x 2 lattices, all
# 32 machines living in one process, scheduled over 8 campaign workers
# against a shared pool — then re-run serially with a fresh pool; every
# run's outcome digest must match bit for bit (DESIGN.md §14). The
# second leg is the chaos-storm campaign (DESIGN.md §16): the compound
# second-order preset across four seeds, where some runs survive by
# climbing the recovery ladder and some exhaust it with a typed error —
# both outcomes digest-verified serially.
fleet:
	$(GO) run ./cmd/qcdoc fleet -machine 2,2 \
		-lattices '4,4,4,4;8,4,4,4' \
		-faultseeds 3,5,7,9,11,13,16,17,19,21,23,27,31,37,41,43 \
		-workers 8 -verify -quiet
	$(GO) run ./cmd/qcdoc fleet -machine 2,2,2 -lattices '4,4,4,4' \
		-storm -faultseeds 1,16,19,23 -workers 8 -verify -quiet

# Observability gate: run an observed solve campaign behind the live
# /metrics /trace /fleet service, scrape our own endpoints, then re-run
# the identical campaign with observability fully off — `qcdoc serve
# -selfcheck` exits non-zero unless every digest is bit-identical (the
# zero-perturbation contract, DESIGN.md §15, proven through HTTP).
obs:
	$(GO) run ./cmd/qcdoc serve -selfcheck -quiet \
		-machine 2,2 -lattices '4,4,4,4;4,4,4,8' -ops wilson,clover -workers 4
