# Standard gate: everything a change must pass before it lands.
# `make check` = vet + build + race-enabled tests.

GO ?= go

.PHONY: check vet build test race bench tables

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

tables:
	$(GO) run ./cmd/benchtables
