# Standard gate: everything a change must pass before it lands.
# `make check` = vet + lint + build + race-enabled tests + fuzz smoke.

GO ?= go

# How long the wire-format fuzz smoke runs inside `make check`: long
# enough to exercise the mutator past the seed corpus, short enough to
# keep the gate fast. `make fuzz FUZZTIME=5m` for a real soak.
FUZZTIME ?= 3s

# The pinned benchmark set tracked across allocation-path changes:
# engine dispatch (both tiers), one machine-wide reduction, and the
# full functional Wilson solve. `make bench` runs it with -benchmem so
# per-op allocation counts are part of the record, and writes the
# parsed results to BENCH_frames.json (one JSON entry per -count run).
BENCH_SET = ^(BenchmarkEngineDispatch|BenchmarkGlobalSumMachine|BenchmarkTelemetryOverhead|BenchmarkE1FunctionalWilson)$$

# The parallel-engine benchmark set: the functional Wilson solve and the
# rack-scale halo-exchange loop, each at workers=1/4/8 on the sharded
# engine. Pinned separately in BENCH_parallel.json because the numbers
# only mean "speedup" on a multi-core host — on one core they measure
# the window-barrier overhead instead (README "Parallel engine").
BENCH_PARALLEL_SET = ^(BenchmarkE1FunctionalWilsonParallel|BenchmarkE11RackScale)$$

.PHONY: check vet lint fuzz build test race bench benchall tables chaos

check: vet lint build race fuzz

vet:
	$(GO) vet ./...

# qcdoclint: the project's own analyzers (simtime, maprange, hotalloc,
# contsafe, shardsafe) machine-check the determinism, zero-alloc,
# continuation-tier, and shard-isolation invariants. DESIGN.md §11.
lint:
	$(GO) run ./cmd/qcdoclint ./...

# Format fuzzing: Decode/Wire round-trip and single-bit-error detection
# on the SCU packet codec, and the checkpoint decoder's typed-error /
# bounded-allocation contract (what recovery trusts when it restores a
# possibly-corrupt checkpoint).
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzWireDecode$$' -fuzztime $(FUZZTIME) ./internal/scupkt
	$(GO) test -run '^$$' -fuzz '^FuzzCheckpointDecode$$' -fuzztime $(FUZZTIME) ./internal/checkpoint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_SET)' -benchmem -count=5 . \
		| $(GO) run ./cmd/benchjson -o BENCH_frames.json
	$(GO) test -run '^$$' -bench '$(BENCH_PARALLEL_SET)' -benchmem -benchtime 3x -count=3 . \
		| $(GO) run ./cmd/benchjson -o BENCH_parallel.json

benchall:
	$(GO) test -bench=. -benchmem ./...

tables:
	$(GO) run ./cmd/benchtables

# Chaos gate: the E16 scenario under two fixed fault seeds, each run
# twice — qcdoc exits non-zero unless both runs of a seed produce the
# same outcome digest (injection, detection, isolation, restore, and
# re-convergence timing all bit-identical). DESIGN.md §12. The final
# run repeats seed 16 on the sharded engine with an 8-goroutine worker
# pool; its digest must match the serial runs above bit for bit
# (DESIGN.md §13).
chaos:
	$(GO) run ./cmd/qcdoc chaos -faultseed 16 -repeat 2 -quiet
	$(GO) run ./cmd/qcdoc chaos -faultseed 23 -repeat 2 -quiet
	$(GO) run ./cmd/qcdoc chaos -faultseed 16 -repeat 2 -quiet -workers 8
