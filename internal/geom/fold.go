package geom

import "fmt"

// Fold maps a logical torus of dimensionality 1..6 onto the physical
// six-dimensional machine torus so that logical nearest neighbours are
// also machine nearest neighbours. This is how QCDOC runs four- and
// five-dimensional physics problems on its six-dimensional network and
// how the qdaemon "remaps a partition to a dimensionality between one and
// six" (§3.1) purely in software, without moving cables.
//
// Each logical axis is assigned one or more machine dimensions, fastest
// first. An axis with a single machine dimension is the identity map. An
// axis built from several machine dimensions traverses them in a
// generalized serpentine (boustrophedon) order: whenever a slower index
// advances by one, the entire traversal of the faster dimensions reverses,
// so consecutive logical coordinates always differ by one step in exactly
// one machine dimension. The serpentine closes into a torus (the step
// from the last logical coordinate back to 0 is also a single machine
// hop) when the slowest machine dimension of the axis has even extent,
// which holds for all QCDOC machine shapes (powers of two).
type Fold struct {
	logical Shape
	axes    [][]int // machine dimensions composing each logical axis, fastest first
	machine Shape
}

// NewFold builds a fold of the machine shape onto a logical torus. axes
// lists, for each logical axis, the machine dimensions (indices into the
// machine shape) that compose it, fastest first. Every machine dimension
// with extent > 1 must appear in exactly one axis; machine dimensions of
// extent 1 may be omitted.
func NewFold(machine Shape, axes [][]int) (*Fold, error) {
	if len(axes) == 0 || len(axes) > MaxDim {
		return nil, fmt.Errorf("geom: fold needs 1..%d logical axes, got %d", MaxDim, len(axes))
	}
	used := [MaxDim]bool{}
	var logical Shape
	for d := range logical {
		logical[d] = 1
	}
	for a, dims := range axes {
		if len(dims) == 0 {
			return nil, fmt.Errorf("geom: logical axis %d has no machine dimensions", a)
		}
		ext := 1
		for _, d := range dims {
			if d < 0 || d >= MaxDim {
				return nil, fmt.Errorf("geom: axis %d uses invalid machine dimension %d", a, d)
			}
			if used[d] {
				return nil, fmt.Errorf("geom: machine dimension %d used twice", d)
			}
			used[d] = true
			ext *= machine[d]
		}
		if slowest := dims[len(dims)-1]; len(dims) > 1 && machine[slowest]%2 != 0 {
			return nil, fmt.Errorf("geom: axis %d: slowest machine dimension %d has odd extent %d; serpentine cannot close into a torus",
				a, slowest, machine[slowest])
		}
		logical[a] = ext
	}
	for d := 0; d < MaxDim; d++ {
		if machine[d] > 1 && !used[d] {
			return nil, fmt.Errorf("geom: machine dimension %d (extent %d) not assigned to any logical axis", d, machine[d])
		}
	}
	return &Fold{logical: logical, axes: axes, machine: machine}, nil
}

// IdentityFold returns the trivial fold where successive logical axes are
// the machine dimensions of extent > 1, in order.
func IdentityFold(machine Shape) *Fold {
	axes := make([][]int, 0, MaxDim)
	for d := 0; d < MaxDim; d++ {
		if machine[d] > 1 {
			axes = append(axes, []int{d})
		}
	}
	if len(axes) == 0 {
		axes = append(axes, []int{0}) // single-node machine
	}
	f, err := NewFold(machine, axes)
	if err != nil {
		panic("geom: identity fold invalid: " + err.Error())
	}
	return f
}

// Logical returns the shape of the folded (logical) torus.
func (f *Fold) Logical() Shape { return f.logical }

// Machine returns the underlying machine shape.
func (f *Fold) Machine() Shape { return f.machine }

// snake converts a linear index k along an axis into per-machine-dimension
// indices, applying the recursive boustrophedon reversal.
func (f *Fold) snake(k int, dims []int, out []int) {
	if len(dims) == 1 {
		out[0] = k
		return
	}
	low := 1
	for _, d := range dims[:len(dims)-1] {
		low *= f.machine[d]
	}
	hi, rem := k/low, k%low
	if hi%2 == 1 {
		rem = low - 1 - rem // odd layers traverse the sub-snake in reverse
	}
	out[len(dims)-1] = hi
	f.snake(rem, dims[:len(dims)-1], out[:len(dims)-1])
}

// unsnake inverts snake.
func (f *Fold) unsnake(dims []int, idx []int) int {
	if len(dims) == 1 {
		return idx[0]
	}
	low := 1
	for _, d := range dims[:len(dims)-1] {
		low *= f.machine[d]
	}
	hi := idx[len(dims)-1]
	rem := f.unsnake(dims[:len(dims)-1], idx[:len(dims)-1])
	if hi%2 == 1 {
		rem = low - 1 - rem
	}
	return hi*low + rem
}

// ToMachine maps a logical coordinate to the machine coordinate it runs on.
func (f *Fold) ToMachine(lc Coord) Coord {
	var mc Coord
	var idx [MaxDim]int
	for a, dims := range f.axes {
		f.snake(lc[a], dims, idx[:len(dims)])
		for i, d := range dims {
			mc[d] = idx[i]
		}
	}
	return mc
}

// ToLogical inverts ToMachine.
func (f *Fold) ToLogical(mc Coord) Coord {
	var lc Coord
	var idx [MaxDim]int
	for a, dims := range f.axes {
		for i, d := range dims {
			idx[i] = mc[d]
		}
		lc[a] = f.unsnake(dims, idx[:len(dims)])
	}
	return lc
}

// MachineLink returns the physical machine link that carries traffic
// from logical coordinate lc one step along logical axis in direction
// dir, and the machine coordinate of the destination. Because the fold
// preserves nearest-neighbourhood, this is always a single physical hop.
//
// The backward link is defined as the opposite of the upstream
// neighbour's forward link, so a sender's transmit link and the
// receiver's listen link always name the same wire — including on
// extent-2 machine dimensions, where a +1 and a -1 hop land on the same
// node but over different wires.
func (f *Fold) MachineLink(lc Coord, axis int, dir Dir) (from Coord, link Link, to Coord) {
	if dir == Bwd {
		prev := lc
		prev[axis] = wrap(lc[axis]-1, f.logical[axis])
		pFrom, pLink, _ := f.MachineLink(prev, axis, Fwd)
		return f.ToMachine(lc), pLink.Opposite(), pFrom
	}
	from = f.ToMachine(lc)
	nlc := lc
	nlc[axis] = wrap(lc[axis]+1, f.logical[axis])
	to = f.ToMachine(nlc)
	for d := 0; d < MaxDim; d++ {
		if from[d] == to[d] {
			continue
		}
		delta := to[d] - from[d]
		switch {
		case delta == 1 || delta == -(f.machine[d]-1):
			return from, Link{Dim: d, Dir: Fwd}, to
		case delta == -1 || delta == f.machine[d]-1:
			return from, Link{Dim: d, Dir: Bwd}, to
		}
	}
	// A fold that passed NewFold validation cannot reach here; a same-node
	// "hop" only occurs for logical extent 1, where the link is a self loop.
	return from, Link{Dim: 0, Dir: Fwd}, to
}
