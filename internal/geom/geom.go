// Package geom provides the six-dimensional torus geometry that underlies
// the QCDOC machine: coordinates, lexicographic ranking, nearest-neighbour
// link enumeration, and the software partitioning and dimension-folding
// rules of the paper's §2.2 and §3.1 (lower-dimensional machine partitions
// are carved from the native six-dimensional mesh without moving cables).
package geom

import (
	"errors"
	"fmt"
)

// MaxDim is the dimensionality of the QCDOC mesh network. The paper fixes
// it at six: large enough to fold four- and five-dimensional physics
// problems onto, small enough to cable on a motherboard (12 neighbours).
const MaxDim = 6

// NumLinks is the number of uni-directional nearest-neighbour connections
// per node: 2 directions × MaxDim dimensions, each carrying concurrent
// sends and receives (24 independent connections in the SCU's terms; a
// "link" here is one (dim, dir) pair used for both a send and a receive
// channel).
const NumLinks = 2 * MaxDim

// Shape gives the extent of a torus in each of the six dimensions.
// Unused dimensions have extent 1.
type Shape [MaxDim]int

// Coord is a point on a six-dimensional torus. Each component c[d]
// satisfies 0 <= c[d] < shape[d].
type Coord [MaxDim]int

// Dir is a direction along a dimension: +1 (forward) or -1 (backward).
type Dir int

const (
	// Fwd is the positive direction along a dimension.
	Fwd Dir = +1
	// Bwd is the negative direction along a dimension.
	Bwd Dir = -1
)

// MakeShape builds a Shape from the given extents, padding the remaining
// dimensions with 1. It panics if more than MaxDim extents are given or
// any extent is < 1; shapes are almost always literals in configuration
// code, so this is an assembly-time error.
func MakeShape(extents ...int) Shape {
	if len(extents) > MaxDim {
		panic(fmt.Sprintf("geom: %d extents exceed %d dimensions", len(extents), MaxDim))
	}
	var s Shape
	for d := range s {
		s[d] = 1
	}
	for d, e := range extents {
		if e < 1 {
			panic(fmt.Sprintf("geom: extent %d in dimension %d", e, d))
		}
		s[d] = e
	}
	return s
}

// Volume is the number of sites (nodes) in the torus.
func (s Shape) Volume() int {
	v := 1
	for _, e := range s {
		v *= e
	}
	return v
}

// Dims reports the number of dimensions with extent > 1.
func (s Shape) Dims() int {
	n := 0
	for _, e := range s {
		if e > 1 {
			n++
		}
	}
	return n
}

// Valid reports whether every extent is at least 1.
func (s Shape) Valid() bool {
	for _, e := range s {
		if e < 1 {
			return false
		}
	}
	return true
}

// Contains reports whether c lies inside the shape.
func (s Shape) Contains(c Coord) bool {
	for d := 0; d < MaxDim; d++ {
		if c[d] < 0 || c[d] >= s[d] {
			return false
		}
	}
	return true
}

// Rank converts a coordinate to its lexicographic rank, with dimension 0
// fastest. Rank is the node identifier used throughout the simulator.
func (s Shape) Rank(c Coord) int {
	r := 0
	for d := MaxDim - 1; d >= 0; d-- {
		r = r*s[d] + c[d]
	}
	return r
}

// CoordOf inverts Rank.
func (s Shape) CoordOf(rank int) Coord {
	var c Coord
	for d := 0; d < MaxDim; d++ {
		c[d] = rank % s[d]
		rank /= s[d]
	}
	return c
}

// Neighbor returns the coordinate one step from c along dimension dim in
// direction dir, with periodic (torus) wrapping.
func (s Shape) Neighbor(c Coord, dim int, dir Dir) Coord {
	n := c
	n[dim] = wrap(c[dim]+int(dir), s[dim])
	return n
}

func wrap(x, n int) int {
	x %= n
	if x < 0 {
		x += n
	}
	return x
}

// Distance returns the minimum number of nearest-neighbour hops between
// a and b on the torus.
func (s Shape) Distance(a, b Coord) int {
	d := 0
	for dim := 0; dim < MaxDim; dim++ {
		delta := abs(a[dim] - b[dim])
		if w := s[dim] - delta; w < delta {
			delta = w
		}
		d += delta
	}
	return d
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Diameter returns the maximum hop distance between any two nodes,
// i.e. the sum over dimensions of floor(extent/2).
func (s Shape) Diameter() int {
	d := 0
	for _, e := range s {
		d += e / 2
	}
	return d
}

func (s Shape) String() string {
	out := ""
	for d, e := range s {
		if d > 0 {
			out += "x"
		}
		out += fmt.Sprint(e)
	}
	return out
}

// Link identifies one of the twelve nearest-neighbour connections of a
// node: a dimension and a direction. The SCU drives a concurrent send and
// a concurrent receive on each Link.
type Link struct {
	Dim int
	Dir Dir
}

// LinkIndex maps a Link to a dense index in [0, NumLinks): forward links
// first (dims 0..5), then backward links.
func LinkIndex(l Link) int {
	if l.Dir == Fwd {
		return l.Dim
	}
	return MaxDim + l.Dim
}

// LinkAt inverts LinkIndex.
func LinkAt(i int) Link {
	if i < MaxDim {
		return Link{Dim: i, Dir: Fwd}
	}
	return Link{Dim: i - MaxDim, Dir: Bwd}
}

// Opposite returns the link as seen from the neighbouring node: a packet
// leaving on (dim, +) arrives on the neighbour's (dim, -) receiver.
func (l Link) Opposite() Link {
	return Link{Dim: l.Dim, Dir: -l.Dir}
}

func (l Link) String() string {
	sign := "+"
	if l.Dir == Bwd {
		sign = "-"
	}
	return fmt.Sprintf("%s%d", sign, l.Dim)
}

// AllLinks enumerates the twelve links in LinkIndex order.
func AllLinks() []Link {
	ls := make([]Link, NumLinks)
	for i := range ls {
		ls[i] = LinkAt(i)
	}
	return ls
}

// ErrNotSubShape is returned when a partition request does not fit in the
// parent machine.
var ErrNotSubShape = errors.New("geom: partition does not fit inside machine shape")

// Partition is a rectangular region of a parent torus, carved out in
// software by the qdaemon (§3.1). In each dimension the partition either
// spans the full machine extent (and then inherits the torus wrap from
// the physical cabling) or is a strict sub-range (and is then an open
// mesh in that dimension: the boundary links exist physically but are
// fenced off from the partition's traffic).
type Partition struct {
	Machine Shape // shape of the parent machine
	Origin  Coord // lowest corner of the partition in machine coordinates
	Extent  Shape // extent of the partition in each dimension
}

// NewPartition validates and builds a partition of machine at origin with
// the given extent.
func NewPartition(machine Shape, origin Coord, extent Shape) (Partition, error) {
	if !extent.Valid() {
		return Partition{}, fmt.Errorf("%w: invalid extent %v", ErrNotSubShape, extent)
	}
	for d := 0; d < MaxDim; d++ {
		if origin[d] < 0 || origin[d]+extent[d] > machine[d] {
			return Partition{}, fmt.Errorf("%w: dim %d origin %d extent %d machine %d",
				ErrNotSubShape, d, origin[d], extent[d], machine[d])
		}
	}
	return Partition{Machine: machine, Origin: origin, Extent: extent}, nil
}

// WholeMachine returns the trivial partition covering the full torus.
func WholeMachine(machine Shape) Partition {
	return Partition{Machine: machine, Origin: Coord{}, Extent: machine}
}

// Volume is the number of nodes in the partition.
func (p Partition) Volume() int { return p.Extent.Volume() }

// Wraps reports whether the partition is periodic in dimension d, which
// holds exactly when it spans the machine's full extent there.
func (p Partition) Wraps(d int) bool { return p.Extent[d] == p.Machine[d] }

// Contains reports whether the machine coordinate mc lies in the partition.
func (p Partition) Contains(mc Coord) bool {
	for d := 0; d < MaxDim; d++ {
		if mc[d] < p.Origin[d] || mc[d] >= p.Origin[d]+p.Extent[d] {
			return false
		}
	}
	return true
}

// ToMachine converts a partition-local coordinate to a machine coordinate.
func (p Partition) ToMachine(local Coord) Coord {
	var mc Coord
	for d := 0; d < MaxDim; d++ {
		mc[d] = p.Origin[d] + local[d]
	}
	return mc
}

// ToLocal converts a machine coordinate inside the partition to a
// partition-local coordinate.
func (p Partition) ToLocal(mc Coord) Coord {
	var c Coord
	for d := 0; d < MaxDim; d++ {
		c[d] = mc[d] - p.Origin[d]
	}
	return c
}

// Neighbor returns the partition-local neighbour of local along (dim,
// dir) and whether that neighbour exists: in wrapped dimensions it always
// does; in mesh (sub-range) dimensions boundary nodes have no neighbour
// beyond the edge.
func (p Partition) Neighbor(local Coord, dim int, dir Dir) (Coord, bool) {
	n := local
	x := local[dim] + int(dir)
	if p.Wraps(dim) {
		n[dim] = wrap(x, p.Extent[dim])
		return n, true
	}
	if x < 0 || x >= p.Extent[dim] {
		return Coord{}, false
	}
	n[dim] = x
	return n, true
}
