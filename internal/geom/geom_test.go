package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMakeShape(t *testing.T) {
	s := MakeShape(8, 4, 4, 2, 2, 2)
	if got := s.Volume(); got != 1024 {
		t.Fatalf("volume = %d, want 1024", got)
	}
	if got := s.Dims(); got != 6 {
		t.Fatalf("dims = %d, want 6", got)
	}
	s2 := MakeShape(4, 4)
	if got := s2.Volume(); got != 16 {
		t.Fatalf("volume = %d, want 16", got)
	}
	if got := s2.Dims(); got != 2 {
		t.Fatalf("dims = %d, want 2", got)
	}
	if s2[5] != 1 {
		t.Fatalf("padding dim = %d, want 1", s2[5])
	}
}

func TestMakeShapePanics(t *testing.T) {
	for _, bad := range [][]int{{0}, {-1, 2}, {1, 2, 3, 4, 5, 6, 7}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MakeShape(%v) did not panic", bad)
				}
			}()
			MakeShape(bad...)
		}()
	}
}

func TestRankCoordRoundTrip(t *testing.T) {
	s := MakeShape(3, 4, 2, 5)
	for r := 0; r < s.Volume(); r++ {
		c := s.CoordOf(r)
		if !s.Contains(c) {
			t.Fatalf("coord %v of rank %d outside shape", c, r)
		}
		if got := s.Rank(c); got != r {
			t.Fatalf("Rank(CoordOf(%d)) = %d", r, got)
		}
	}
}

func TestRankCoordQuick(t *testing.T) {
	s := MakeShape(8, 4, 4, 2, 2, 2)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := rng.Intn(s.Volume())
		return s.Rank(s.CoordOf(r)) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborWraps(t *testing.T) {
	s := MakeShape(4, 2)
	c := Coord{3, 1}
	if n := s.Neighbor(c, 0, Fwd); n[0] != 0 {
		t.Fatalf("fwd wrap: %v", n)
	}
	if n := s.Neighbor(Coord{0, 0}, 0, Bwd); n[0] != 3 {
		t.Fatalf("bwd wrap: %v", n)
	}
}

func TestNeighborInverse(t *testing.T) {
	s := MakeShape(4, 4, 2, 2, 2, 2)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := s.CoordOf(rng.Intn(s.Volume()))
		dim := rng.Intn(MaxDim)
		fwd := s.Neighbor(c, dim, Fwd)
		return s.Neighbor(fwd, dim, Bwd) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistance(t *testing.T) {
	s := MakeShape(8, 4)
	cases := []struct {
		a, b Coord
		want int
	}{
		{Coord{0, 0}, Coord{0, 0}, 0},
		{Coord{0, 0}, Coord{1, 0}, 1},
		{Coord{0, 0}, Coord{7, 0}, 1},     // torus wrap
		{Coord{0, 0}, Coord{4, 2}, 6},     // half way in both dims
		{Coord{1, 3}, Coord{6, 0}, 3 + 1}, // wraps: 1->6 is 3 hops (via 0), 3->0 is 1 hop
	}
	for _, c := range cases {
		if got := s.Distance(c.a, c.b); got != c.want {
			t.Errorf("Distance(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDistanceSymmetricTriangle(t *testing.T) {
	s := MakeShape(4, 4, 2, 2)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := s.CoordOf(rng.Intn(s.Volume()))
		b := s.CoordOf(rng.Intn(s.Volume()))
		c := s.CoordOf(rng.Intn(s.Volume()))
		if s.Distance(a, b) != s.Distance(b, a) {
			return false
		}
		return s.Distance(a, c) <= s.Distance(a, b)+s.Distance(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiameter(t *testing.T) {
	s := MakeShape(8, 4, 4, 2, 2, 2)
	if got, want := s.Diameter(), 4+2+2+1+1+1; got != want {
		t.Fatalf("diameter = %d, want %d", got, want)
	}
}

func TestLinkIndexRoundTrip(t *testing.T) {
	seen := map[int]bool{}
	for _, l := range AllLinks() {
		i := LinkIndex(l)
		if i < 0 || i >= NumLinks {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
		if got := LinkAt(i); got != l {
			t.Fatalf("LinkAt(LinkIndex(%v)) = %v", l, got)
		}
	}
	if len(seen) != NumLinks {
		t.Fatalf("enumerated %d links, want %d", len(seen), NumLinks)
	}
}

func TestLinkOpposite(t *testing.T) {
	for _, l := range AllLinks() {
		o := l.Opposite()
		if o.Dim != l.Dim || o.Dir != -l.Dir {
			t.Fatalf("opposite of %v = %v", l, o)
		}
		if o.Opposite() != l {
			t.Fatalf("double opposite of %v", l)
		}
	}
}

func TestPartitionValidation(t *testing.T) {
	m := MakeShape(8, 4, 4, 2, 2, 2)
	if _, err := NewPartition(m, Coord{4, 0, 0, 0, 0, 0}, MakeShape(4, 4, 4, 2, 2, 2)); err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}
	if _, err := NewPartition(m, Coord{6, 0, 0, 0, 0, 0}, MakeShape(4, 4, 4, 2, 2, 2)); err == nil {
		t.Fatal("overflowing partition accepted")
	}
	if _, err := NewPartition(m, Coord{}, Shape{}); err == nil {
		t.Fatal("zero extent accepted")
	}
}

func TestPartitionCoordinates(t *testing.T) {
	m := MakeShape(8, 4, 4, 2, 2, 2)
	p, err := NewPartition(m, Coord{4, 0, 0, 0, 0, 0}, MakeShape(4, 4, 4, 2, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if p.Volume() != 512 {
		t.Fatalf("volume = %d", p.Volume())
	}
	local := Coord{1, 2, 3, 0, 1, 0}
	mc := p.ToMachine(local)
	if mc != (Coord{5, 2, 3, 0, 1, 0}) {
		t.Fatalf("ToMachine = %v", mc)
	}
	if !p.Contains(mc) {
		t.Fatal("machine coord not contained")
	}
	if got := p.ToLocal(mc); got != local {
		t.Fatalf("round trip = %v", got)
	}
}

func TestPartitionWrapAndMeshEdges(t *testing.T) {
	m := MakeShape(8, 4)
	p, err := NewPartition(m, Coord{2, 0, 0, 0, 0, 0}, MakeShape(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if p.Wraps(0) {
		t.Fatal("sub-range dim reported as wrapping")
	}
	if !p.Wraps(1) {
		t.Fatal("full-extent dim not wrapping")
	}
	// Mesh dimension: edge node has no neighbour beyond the boundary.
	if _, ok := p.Neighbor(Coord{3, 0, 0, 0, 0, 0}, 0, Fwd); ok {
		t.Fatal("mesh edge wrapped")
	}
	if _, ok := p.Neighbor(Coord{0, 0, 0, 0, 0, 0}, 0, Bwd); ok {
		t.Fatal("mesh edge wrapped backward")
	}
	// Torus dimension wraps.
	n, ok := p.Neighbor(Coord{0, 3, 0, 0, 0, 0}, 1, Fwd)
	if !ok || n[1] != 0 {
		t.Fatalf("torus wrap: %v %v", n, ok)
	}
}

func TestFoldValidation(t *testing.T) {
	m := MakeShape(8, 4, 4, 2, 2, 2)
	if _, err := NewFold(m, [][]int{{0}, {1}, {2}, {3}, {4}, {5}}); err != nil {
		t.Fatalf("identity axes rejected: %v", err)
	}
	// Missing machine dimension.
	if _, err := NewFold(m, [][]int{{0}, {1}, {2}, {3}, {4}}); err == nil {
		t.Fatal("missing dim accepted")
	}
	// Duplicate machine dimension.
	if _, err := NewFold(m, [][]int{{0, 1}, {1}, {2}, {3}, {4}, {5}}); err == nil {
		t.Fatal("duplicate dim accepted")
	}
	// Odd slowest extent in a folded axis cannot close the serpentine.
	modd := MakeShape(4, 3)
	if _, err := NewFold(modd, [][]int{{0, 1}}); err == nil {
		t.Fatal("odd serpentine accepted")
	}
	// Odd fastest extent is fine.
	if _, err := NewFold(MakeShape(3, 4), [][]int{{0, 1}}); err != nil {
		t.Fatalf("odd fastest extent rejected: %v", err)
	}
}

func TestFoldRoundTrip(t *testing.T) {
	m := MakeShape(8, 4, 4, 2, 2, 2)
	// Fold the 6-D machine into a 4-D logical torus: 8x4=32, 4x2=8, 2, 2.
	f, err := NewFold(m, [][]int{{0, 1}, {2, 3}, {4}, {5}})
	if err != nil {
		t.Fatal(err)
	}
	want := MakeShape(32, 8, 2, 2)
	if f.Logical() != want {
		t.Fatalf("logical shape %v, want %v", f.Logical(), want)
	}
	seen := map[Coord]bool{}
	ls := f.Logical()
	for r := 0; r < ls.Volume(); r++ {
		lc := ls.CoordOf(r)
		mc := f.ToMachine(lc)
		if !m.Contains(mc) {
			t.Fatalf("machine coord %v out of range", mc)
		}
		if seen[mc] {
			t.Fatalf("machine coord %v hit twice", mc)
		}
		seen[mc] = true
		if got := f.ToLogical(mc); got != lc {
			t.Fatalf("round trip %v -> %v -> %v", lc, mc, got)
		}
	}
	if len(seen) != m.Volume() {
		t.Fatalf("fold covers %d machine nodes, want %d", len(seen), m.Volume())
	}
}

// TestFoldPreservesNeighbours is the key property from §2.2: after folding,
// logical nearest neighbours (including the torus wrap-around step) are
// machine nearest neighbours.
func TestFoldPreservesNeighbours(t *testing.T) {
	m := MakeShape(8, 4, 4, 2, 2, 2)
	folds := [][][]int{
		{{0}, {1}, {2}, {3}, {4}, {5}}, // 6-D identity
		{{0, 1}, {2, 3}, {4}, {5}},     // 4-D
		{{0, 1}, {2}, {3}, {4}, {5}},   // 5-D
		{{0, 1, 2}, {3, 4}, {5}},       // 3-D
		{{0, 1, 2, 3}, {4, 5}},         // 2-D
		{{0, 1, 2, 3, 4, 5}},           // 1-D: the whole machine as a ring
		{{2, 0}, {5, 1}, {3}, {4}},     // 4-D, shuffled machine dims
	}
	for _, axes := range folds {
		f, err := NewFold(m, axes)
		if err != nil {
			t.Fatalf("axes %v: %v", axes, err)
		}
		ls := f.Logical()
		for r := 0; r < ls.Volume(); r++ {
			lc := ls.CoordOf(r)
			mc := f.ToMachine(lc)
			for a := range axes {
				for _, dir := range []Dir{Fwd, Bwd} {
					nlc := lc
					nlc[a] = (lc[a] + int(dir) + ls[a]) % ls[a]
					nmc := f.ToMachine(nlc)
					if d := m.Distance(mc, nmc); d != 1 {
						t.Fatalf("axes %v: logical step %v->%v maps to machine %v->%v (distance %d)",
							axes, lc, nlc, mc, nmc, d)
					}
				}
			}
		}
	}
}

func TestMachineLink(t *testing.T) {
	m := MakeShape(4, 4)
	f, err := NewFold(m, [][]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	ls := f.Logical()
	for r := 0; r < ls.Volume(); r++ {
		lc := ls.CoordOf(r)
		for _, dir := range []Dir{Fwd, Bwd} {
			from, link, to := f.MachineLink(lc, 0, dir)
			if got := m.Neighbor(from, link.Dim, link.Dir); got != to {
				t.Fatalf("link %v from %v does not reach %v (got %v)", link, from, to, got)
			}
		}
	}
}

func TestIdentityFold(t *testing.T) {
	m := MakeShape(4, 4, 2)
	f := IdentityFold(m)
	if f.Logical() != MakeShape(4, 4, 2) {
		t.Fatalf("logical = %v", f.Logical())
	}
	c := Coord{1, 2, 1, 0, 0, 0}
	if f.ToMachine(c) != c {
		t.Fatalf("identity fold moved %v to %v", c, f.ToMachine(c))
	}
}

// TestMachineLinkSenderReceiverConsistency is the wiring invariant that
// global operations depend on: the link a node transmits on for a +axis
// step is, seen from the destination, exactly the opposite of the link
// the destination names for its -axis step — for every fold, including
// extent-2 machine dimensions where +1 and -1 hops reach the same node
// over different wires.
func TestMachineLinkSenderReceiverConsistency(t *testing.T) {
	shapes := []struct {
		m    Shape
		axes [][]int
	}{
		{MakeShape(4, 2, 2), [][]int{{0}, {1}, {2}}},
		{MakeShape(4, 2, 2), [][]int{{0, 1, 2}}},
		{MakeShape(2, 2), [][]int{{0}, {1}}},
		{MakeShape(2, 2, 2, 2), [][]int{{0, 1}, {2, 3}}},
		{MakeShape(8, 4), [][]int{{1, 0}}},
	}
	for _, c := range shapes {
		f, err := NewFold(c.m, c.axes)
		if err != nil {
			t.Fatal(err)
		}
		ls := f.Logical()
		for r := 0; r < ls.Volume(); r++ {
			lc := ls.CoordOf(r)
			for a := range c.axes {
				if ls[a] <= 1 {
					continue
				}
				_, sendLink, to := f.MachineLink(lc, a, Fwd)
				next := lc
				next[a] = (lc[a] + 1) % ls[a]
				recvFrom, recvLink, back := f.MachineLink(next, a, Bwd)
				if recvLink != sendLink.Opposite() {
					t.Fatalf("fold %v: step %v->%v sends on %v but receiver listens on %v",
						c.axes, lc, next, sendLink, recvLink)
				}
				if recvFrom != to || back != f.ToMachine(lc) {
					t.Fatalf("fold %v: coordinates inconsistent for step %v->%v", c.axes, lc, next)
				}
			}
		}
	}
}
