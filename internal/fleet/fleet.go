// Package fleet runs campaigns: many fully independent simulated
// machines in one process, each executing one run of a parameter sweep
// (lattice size × operator × fault seed), scheduled over a bounded
// worker pool. The substrate contract (DESIGN.md §14) is that a run
// produces the same outcome digest it would produce alone in a fresh
// process — machines share only immutable data (cost tables, shard
// plans) and reference-free recycled storage (frame rings, event-heap
// arrays), never mutable state. The real QCDOC host served a whole
// physics community this way: many partitions, many jobs, one machine
// room (paper §3).
package fleet

import (
	"fmt"
	"io"
	"math"
	"sync"

	"qcdoc/internal/checkpoint"
	"qcdoc/internal/core"
	"qcdoc/internal/event"
	"qcdoc/internal/faultplan"
	"qcdoc/internal/fermion"
	"qcdoc/internal/geom"
	"qcdoc/internal/lattice"
	"qcdoc/internal/machine"
	"qcdoc/internal/telemetry"
)

// Spec describes one run of a campaign: a machine, a problem, and —
// for chaos runs — a fault plan seed. The zero value is not runnable;
// start from a base spec and Sweep, or fill it explicitly.
type Spec struct {
	// Name labels the run in output; Sweep derives it from the swept
	// parameters.
	Name string

	// Machine is the six-dimensional torus; Global the lattice laid over
	// it.
	Machine geom.Shape
	Global  lattice.Shape4

	// Op selects the fermion operator for solve runs (chaos runs are
	// always Wilson — they exercise the recovery pipeline, which is
	// operator-independent).
	Op fermion.OpKind

	Mass    float64
	Tol     float64
	MaxIter int
	// Ls is the fifth dimension (DWF only).
	Ls int

	// Seed draws the gauge configuration and source.
	Seed uint64

	// Shards/Workers select sharded parallel simulation inside this
	// run's machine (machine.Config); campaign-level parallelism is
	// Config.Workers.
	Shards  int
	Workers int

	// Chaos switches the run from a plain solve to the full
	// inject/detect/isolate/restore pipeline of core.RunChaosWilson,
	// with faults drawn from FaultSeed according to Faults.
	Chaos           bool
	FaultSeed       uint64
	Faults          faultplan.Spec
	CheckpointEvery int
	// MaxAttempts bounds chaos restarts (0 = the chaos default); storm
	// campaigns raise it so compound plans have ladder headroom.
	MaxAttempts int
}

// Result is the outcome of one run. Digest is the determinism
// currency: for a chaos run it is core.ChaosOutcome.Digest, for a
// solve run an FNV-1a fold of the converged numerics; either way it
// must be bit-identical to the digest the same spec produces in a
// fresh single-machine process.
type Result struct {
	Name        string
	Iterations  int
	Attempts    int
	Converged   bool
	RelResidual float64
	SolutionCRC uint32
	SimTime     event.Time
	Digest      uint64
	Err         error

	// Observability sidecar, populated only under Config.Observe /
	// Config.TraceEvents and never folded into Digest (the digest must
	// be invariant under observation — DESIGN.md §15). Hists carries the
	// run's machine-wide latency distributions; Snap the full telemetry
	// snapshot (solve runs only — chaos attempts tear their machines
	// down, so only their merged histograms survive); Trace the run's
	// flight recorder, pid-namespaced by spec index for merged export.
	Hists map[string]telemetry.HistogramSnapshot
	Snap  telemetry.Snapshot
	Trace *event.Recorder
}

func (r Result) String() string {
	if r.Err != nil {
		return fmt.Sprintf("%-32s ERROR: %v", r.Name, r.Err)
	}
	s := fmt.Sprintf("%-32s %4d iter", r.Name, r.Iterations)
	if r.Attempts > 1 {
		s += fmt.Sprintf(" (%d attempts)", r.Attempts)
	}
	return s + fmt.Sprintf("  residual %.2g  sim %v  digest %#x", r.RelResidual, r.SimTime, r.Digest)
}

// Config parameterizes a campaign.
type Config struct {
	// Workers bounds how many runs execute concurrently (0 = serial).
	// Per-run digests are invariant under Workers — that is the fleet
	// substrate's acceptance test.
	Workers int
	// Pool recycles engine storage and frame rings across the fleet's
	// machine builds; nil disables pooling.
	Pool *machine.Pool
	// Log, when set, receives one line per completed run. Lines appear
	// in completion order; the returned slice is always in spec order.
	Log io.Writer

	// Observe enables the full telemetry layer on every run's machine
	// and collects per-run histogram snapshots into Result.Hists.
	// Per-run digests are invariant under Observe.
	Observe bool
	// TraceEvents, when positive, attaches a flight recorder of that
	// per-shard capacity to each solve run's engine (pid = spec index),
	// collected into Result.Trace. Chaos runs ignore it (their machines
	// are rebuilt per attempt).
	TraceEvents int
	// OnResult, when set, observes each completed run as it finishes —
	// the live-campaign feed behind `qcdoc serve`'s /fleet endpoint. It
	// is called from campaign worker goroutines (completion order, not
	// spec order) and must be safe for concurrent use.
	OnResult func(i int, r Result)
}

// Run executes every spec and returns results in spec order. Each run
// is fully independent: its own engine (or engine cluster), machine,
// RNG streams, and telemetry — failure or chaos in one run cannot be
// observed by another.
func Run(cfg Config, specs []Spec) []Result {
	results := make([]Result, len(specs))
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	var logMu sync.Mutex
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runOne(specs[i], cfg, i)
				if cfg.Log != nil {
					logMu.Lock()
					fmt.Fprintln(cfg.Log, results[i])
					logMu.Unlock()
				}
				if cfg.OnResult != nil {
					cfg.OnResult(i, results[i])
				}
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// Sweep expands a base spec over the cross product of lattices,
// operators, and fault seeds (the campaign the ROADMAP asks for). Any
// nil/empty axis keeps the base value as the single point. Fault seeds
// only apply when base.Chaos is set; for solve sweeps pass nil.
func Sweep(base Spec, lattices []lattice.Shape4, ops []fermion.OpKind, faultSeeds []uint64) []Spec {
	if len(lattices) == 0 {
		lattices = []lattice.Shape4{base.Global}
	}
	if len(ops) == 0 {
		ops = []fermion.OpKind{base.Op}
	}
	if len(faultSeeds) == 0 || !base.Chaos {
		faultSeeds = []uint64{base.FaultSeed}
	}
	var specs []Spec
	for _, lat := range lattices {
		for _, op := range ops {
			for _, fseed := range faultSeeds {
				s := base
				s.Global = lat
				s.Op = op
				s.FaultSeed = fseed
				s.Name = specName(s)
				specs = append(specs, s)
			}
		}
	}
	return specs
}

func specName(s Spec) string {
	name := fmt.Sprintf("%s %dx%dx%dx%d", opName(s.Op), s.Global[0], s.Global[1], s.Global[2], s.Global[3])
	if s.Chaos {
		name += fmt.Sprintf(" fseed=%d", s.FaultSeed)
	}
	return name
}

func opName(op fermion.OpKind) string {
	switch op {
	case fermion.WilsonKind:
		return "wilson"
	case fermion.CloverKind:
		return "clover"
	case fermion.AsqtadKind:
		return "asqtad"
	case fermion.DWFKind:
		return "dwf"
	default:
		return fmt.Sprintf("op%d", op)
	}
}

// Digest folds every run's outcome into one campaign fingerprint
// (FNV-1a): the one number a serial and a concurrent execution of the
// same campaign must agree on.
func Digest(rs []Result) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= 1099511628211
			v >>= 8
		}
	}
	for _, r := range rs {
		mix(r.Digest)
		if r.Err != nil {
			mix(1)
		}
	}
	return h
}

// runOne executes a single spec on its own machine. The spec index i
// only namespaces observability output (trace pids); it never reaches
// the simulation.
func runOne(s Spec, cfg Config, i int) Result {
	if s.Chaos {
		return runChaos(s, cfg)
	}
	return runSolve(s, cfg, i)
}

func runChaos(s Spec, cfg Config) Result {
	out, err := core.RunChaosWilson(core.ChaosConfig{
		Shape:           s.Machine,
		Global:          s.Global,
		Seed:            s.Seed,
		FaultSeed:       s.FaultSeed,
		Mass:            s.Mass,
		Tol:             s.Tol,
		MaxIter:         s.MaxIter,
		CheckpointEvery: s.CheckpointEvery,
		MaxAttempts:     s.MaxAttempts,
		Spec:            s.Faults,
		Shards:          s.Shards,
		Workers:         s.Workers,
		Pool:            cfg.Pool,
		Telemetry:       cfg.Observe,
	})
	res := Result{Name: s.Name, Err: err}
	if out != nil {
		res.Attempts = len(out.Attempts)
		if n := len(out.Attempts); n > 0 {
			res.Iterations = out.Attempts[n-1].Iterations
			res.SimTime = out.Attempts[n-1].EndedAt
		}
		res.Converged = out.Converged
		res.RelResidual = out.RelResidual
		res.SolutionCRC = out.SolutionCRC
		res.Digest = out.Digest
		res.Hists = out.Hists
	}
	return res
}

func runSolve(s Spec, cfg Config, i int) Result {
	res := Result{Name: s.Name}
	mcfg := machine.DefaultConfig(s.Machine)
	mcfg.Shards = s.Shards
	mcfg.Workers = s.Workers
	mcfg.Pool = cfg.Pool
	sess, err := core.NewSessionConfig(mcfg, s.Global)
	if err != nil {
		res.Err = err
		return res
	}
	defer sess.Close()
	if cfg.Observe {
		sess.M.EnableTelemetry()
	}
	if cfg.TraceEvents > 0 {
		rec := event.NewRecorder(cfg.TraceEvents)
		rec.SetMachineID(i)
		sess.Eng.SetRecorder(rec)
		res.Trace = rec
	}

	gauge := lattice.NewGaugeField(s.Global)
	gauge.Randomize(s.Seed)
	var met core.SolveMetrics
	var crc uint32
	switch s.Op {
	case fermion.CloverKind:
		ref := fermion.NewClover(gauge, s.Mass, 1.0)
		b := lattice.NewFermionField(s.Global)
		b.Gaussian(s.Seed + 1)
		var x *lattice.FermionField
		x, met, err = sess.SolveClover(ref, b, fermion.Double, s.Tol, s.MaxIter)
		if x != nil {
			crc = checkpoint.FermionCRC(x)
		}
	case fermion.AsqtadKind:
		ref := fermion.NewASQTAD(gauge, s.Mass)
		b := lattice.NewColorField(s.Global)
		b.Gaussian(s.Seed + 1)
		_, met, err = sess.SolveASQTAD(ref, b, fermion.Double, s.Tol, s.MaxIter)
	case fermion.DWFKind:
		b := fermion.NewField5(s.Global, s.Ls)
		b.Gaussian(s.Seed + 1)
		_, met, err = sess.SolveDWF(gauge, b, 1.8, s.Mass, s.Ls, fermion.Double, s.Tol, s.MaxIter)
	default: // Wilson
		b := lattice.NewFermionField(s.Global)
		b.Gaussian(s.Seed + 1)
		var x *lattice.FermionField
		x, met, err = sess.SolveWilson(gauge, b, s.Mass, fermion.Double, s.Tol, s.MaxIter)
		if x != nil {
			crc = checkpoint.FermionCRC(x)
		}
	}
	if err != nil {
		res.Err = err
		return res
	}
	if cfg.Observe {
		// Snapshot before the deferred Close clears the registry.
		res.Snap = sess.M.Reg.Snapshot()
		res.Hists = res.Snap.Histograms
	}
	res.Iterations = met.Iterations
	res.Attempts = 1
	res.Converged = true
	res.RelResidual = met.RelResidual
	res.SolutionCRC = crc
	res.SimTime = met.SimTime
	res.Digest = solveDigest(met, crc)
	return res
}

// Aggregate folds every run's latency distributions into one
// campaign-wide map: per-histogram merge of counts, sums, maxima and
// bucket contents, with percentiles recomputed from the merged
// buckets. Purely a read over Result sidecars.
func Aggregate(rs []Result) map[string]telemetry.HistogramSnapshot {
	var agg map[string]telemetry.HistogramSnapshot
	for _, r := range rs {
		agg = telemetry.MergeHistogramMaps(agg, r.Hists)
	}
	return agg
}

// solveDigest fingerprints a solve run's observable outcome: iteration
// count, residual bits, solution CRC, and the simulated wall time of
// the solve (which folds in every network and kernel timing decision).
func solveDigest(met core.SolveMetrics, crc uint32) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(uint64(met.Iterations))
	mix(uint64(met.Applications))
	mix(math.Float64bits(met.RelResidual))
	mix(uint64(crc))
	mix(uint64(met.SimTime))
	mix(met.WordsSent)
	mix(met.Resends)
	return h
}
