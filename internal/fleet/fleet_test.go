package fleet_test

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"qcdoc/internal/core"
	"qcdoc/internal/event"
	"qcdoc/internal/faultplan"
	"qcdoc/internal/fermion"
	"qcdoc/internal/fleet"
	"qcdoc/internal/geom"
	"qcdoc/internal/lattice"
	"qcdoc/internal/machine"
)

// solveBase is a small, fast solve spec: a 4-node machine and a 4^4
// lattice converge in well under a second of host time.
func solveBase() fleet.Spec {
	return fleet.Spec{
		Machine: geom.MakeShape(2, 2),
		Global:  lattice.Shape4{4, 4, 4, 4},
		Op:      fermion.WilsonKind,
		Mass:    0.5,
		Tol:     1e-4,
		MaxIter: 100,
		Seed:    1,
	}
}

// chaosBase mirrors `qcdoc chaos -machine 2,2` so fleet digests are
// comparable to standalone CLI runs of the same seeds.
func chaosBase() fleet.Spec {
	return fleet.Spec{
		Machine:         geom.MakeShape(2, 2),
		Global:          lattice.Shape4{4, 4, 4, 4},
		Mass:            0.5,
		Tol:             1e-8,
		MaxIter:         400,
		Seed:            4001,
		Chaos:           true,
		CheckpointEvery: 10,
		Faults: faultplan.Spec{
			From:        2 * event.Millisecond,
			To:          10 * event.Millisecond,
			NodeCrashes: 1,
			NetDrops:    2,
			NetDups:     1,
			LinkBursts:  1,
		},
	}
}

func requireSameDigests(t *testing.T, serial, conc []fleet.Result) {
	t.Helper()
	if len(serial) != len(conc) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(conc))
	}
	for i := range serial {
		if serial[i].Err != nil || conc[i].Err != nil {
			t.Fatalf("run %q failed: serial %v, concurrent %v", serial[i].Name, serial[i].Err, conc[i].Err)
		}
		if serial[i].Digest != conc[i].Digest {
			t.Errorf("run %q: serial digest %#x != concurrent digest %#x",
				serial[i].Name, serial[i].Digest, conc[i].Digest)
		}
	}
	if fleet.Digest(serial) != fleet.Digest(conc) {
		t.Errorf("campaign digests differ: %#x vs %#x", fleet.Digest(serial), fleet.Digest(conc))
	}
}

// TestFleetSolveSerialVsConcurrent sweeps (lattice × operator) and
// requires every run's digest to be identical whether the campaign
// executes serially or over 8 workers sharing one pool — the substrate
// contract: concurrent machines cannot observe each other.
func TestFleetSolveSerialVsConcurrent(t *testing.T) {
	specs := fleet.Sweep(solveBase(),
		[]lattice.Shape4{{4, 4, 4, 4}, {4, 4, 4, 8}},
		[]fermion.OpKind{fermion.WilsonKind, fermion.CloverKind},
		nil)
	if len(specs) != 4 {
		t.Fatalf("sweep produced %d specs, want 4", len(specs))
	}
	serial := fleet.Run(fleet.Config{Workers: 1, Pool: machine.NewPool()}, specs)
	conc := fleet.Run(fleet.Config{Workers: 8, Pool: machine.NewPool()}, specs)
	requireSameDigests(t, serial, conc)
}

// TestFleetChaosMatchesFreshProcess runs a chaos fleet concurrently
// with a shared pool and requires each run's outcome digest to equal
// the digest the same seed produces through core.RunChaosWilson alone
// on unpooled storage — i.e. exactly what a fresh process would print.
func TestFleetChaosMatchesFreshProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos fleet is seconds-long")
	}
	seeds := []uint64{7, 8, 9, 10}
	specs := fleet.Sweep(chaosBase(), nil, nil, seeds)
	conc := fleet.Run(fleet.Config{Workers: 4, Pool: machine.NewPool()}, specs)
	for i, seed := range seeds {
		if conc[i].Err != nil {
			t.Fatalf("fleet run fseed=%d: %v", seed, conc[i].Err)
		}
		base := chaosBase()
		out, err := core.RunChaosWilson(core.ChaosConfig{
			Shape:           base.Machine,
			Global:          base.Global,
			Seed:            base.Seed,
			FaultSeed:       seed,
			Mass:            base.Mass,
			Tol:             base.Tol,
			MaxIter:         base.MaxIter,
			CheckpointEvery: base.CheckpointEvery,
			Spec:            base.Faults,
		})
		if err != nil {
			t.Fatalf("standalone run fseed=%d: %v", seed, err)
		}
		if out.Digest != conc[i].Digest {
			t.Errorf("fseed=%d: standalone digest %#x != fleet digest %#x",
				seed, out.Digest, conc[i].Digest)
		}
	}
}

// TestFleet32MachinesLifecycleHygiene is the lifecycle gate: build,
// boot, solve, and Close 32 machines concurrently (under -race in
// `make check`), then assert zero leaked goroutines, zero leaked
// timers, and per-run digests bit-identical to the same 32 run
// serially.
func TestFleet32MachinesLifecycleHygiene(t *testing.T) {
	if testing.Short() {
		t.Skip("32-machine fleet is seconds-long")
	}
	specs := make([]fleet.Spec, 32)
	for i := range specs {
		s := solveBase()
		s.Seed = uint64(i + 1) // 32 distinct problems, one machine each
		s.Name = fleet.Sweep(s, nil, nil, nil)[0].Name
		specs[i] = s
	}

	serial := fleet.Run(fleet.Config{Workers: 1, Pool: machine.NewPool()}, specs)

	before := runtime.NumGoroutine()
	pool := machine.NewPool()
	// The concurrent leg runs fully observed (telemetry + per-run flight
	// recorders): the digests must still match the dark serial leg, and
	// teardown must reclaim everything — including registry sources.
	conc := fleet.Run(fleet.Config{Workers: 8, Pool: pool, Observe: true, TraceEvents: 256}, specs)
	requireSameDigests(t, serial, conc)
	for i := range conc {
		if len(conc[i].Hists) == 0 || conc[i].Trace == nil {
			t.Fatalf("run %q observed nothing: %d hists, trace %v",
				conc[i].Name, len(conc[i].Hists), conc[i].Trace)
		}
	}

	// Zero leaked timers: everything reclaimed into the pool is empty.
	// (Engine shutdown unwinds synchronously, so a leak would show up
	// here deterministically, not as a flake.)
	st := pool.Stats()
	if st.StorageIdle == 0 {
		t.Fatalf("no storages reclaimed: pool stats %+v", st)
	}
	if st.PendingEvents != 0 {
		t.Fatalf("%d events still queued in reclaimed storage — leaked timers", st.PendingEvents)
	}
	if st.StorageReused == 0 || st.RingsReused == 0 {
		t.Errorf("pool never recycled (storage reused %d, rings reused %d) — fleet is thrashing the allocator",
			st.StorageReused, st.RingsReused)
	}

	// Zero leaked goroutines: the worker pool and every machine are
	// gone. Give the runtime a moment to retire exiting goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before fleet, %d after", before, after)
	}
}

// TestFleetObserveZeroPerturbation is the campaign-level zero-
// perturbation gate: the same specs run dark and fully observed
// (telemetry, link histograms, flight recorders) must produce
// bit-identical per-run digests — for solve and chaos runs alike —
// while the observed leg actually collects distributions.
func TestFleetObserveZeroPerturbation(t *testing.T) {
	specs := fleet.Sweep(solveBase(),
		[]lattice.Shape4{{4, 4, 4, 4}},
		[]fermion.OpKind{fermion.WilsonKind, fermion.CloverKind},
		nil)
	specs = append(specs, fleet.Sweep(chaosBase(), nil, nil, []uint64{16})...)

	dark := fleet.Run(fleet.Config{Workers: 2, Pool: machine.NewPool()}, specs)
	seen := 0
	observed := fleet.Run(fleet.Config{
		Workers: 2, Pool: machine.NewPool(),
		Observe: true, TraceEvents: 512,
		OnResult: func(i int, r fleet.Result) { seen++ },
	}, specs)
	requireSameDigests(t, dark, observed)
	if seen != len(specs) {
		t.Fatalf("OnResult fired %d times, want %d", seen, len(specs))
	}

	for i, r := range observed {
		if len(r.Hists) == 0 {
			t.Fatalf("observed run %q collected no histograms", r.Name)
		}
		if h, ok := r.Hists["machine/gsum_rtt_ps"]; !ok || h.Count == 0 {
			t.Fatalf("run %q: gsum_rtt_ps %+v", r.Name, h)
		}
		if specs[i].Chaos {
			if r.Trace != nil {
				t.Fatalf("chaos run %q has a trace (machines are per-attempt)", r.Name)
			}
			if h, ok := r.Hists["qdaemon/watchdog_detect_ps"]; !ok || h.Count == 0 {
				t.Fatalf("chaos run %q: watchdog_detect_ps %+v", r.Name, h)
			}
			if h, ok := r.Hists["machine/ckpt_chunk_write_ps"]; !ok || h.Count == 0 {
				t.Fatalf("chaos run %q: ckpt_chunk_write_ps %+v", r.Name, h)
			}
		} else {
			if r.Trace == nil || r.Trace.MachineID() != i {
				t.Fatalf("solve run %q trace/pid: %v", r.Name, r.Trace)
			}
			if len(r.Snap.Counters) == 0 {
				t.Fatalf("solve run %q: empty snapshot", r.Name)
			}
			if h, ok := r.Hists["machine/cg_iter_ps"]; !ok || h.Count == 0 {
				t.Fatalf("solve run %q: cg_iter_ps %+v", r.Name, h)
			}
		}
	}
	// The dark leg carries no observability sidecar at all.
	for _, r := range dark {
		if r.Hists != nil || r.Trace != nil || r.Snap.Counters != nil {
			t.Fatalf("dark run %q leaked observability: %+v", r.Name, r)
		}
	}

	// Campaign aggregate: counts sum over runs, max is the global max.
	agg := fleet.Aggregate(observed)
	var count, max uint64
	for _, r := range observed {
		count += r.Hists["machine/gsum_rtt_ps"].Count
		if m := r.Hists["machine/gsum_rtt_ps"].Max; m > max {
			max = m
		}
	}
	if a := agg["machine/gsum_rtt_ps"]; a.Count != count || a.Max != max {
		t.Fatalf("aggregate %+v, want count %d max %d", a, count, max)
	}
}

// TestFleetMergedTraceByteStable pins the fleet Chrome-trace export:
// two identical observed campaigns must render byte-identical merged
// trace documents, with events namespaced by per-run pids.
func TestFleetMergedTraceByteStable(t *testing.T) {
	specs := fleet.Sweep(solveBase(),
		[]lattice.Shape4{{4, 4, 4, 4}, {4, 4, 4, 8}},
		nil, nil)
	export := func() string {
		rs := fleet.Run(fleet.Config{
			Workers: 2, Pool: machine.NewPool(), Observe: true, TraceEvents: 1024,
		}, specs)
		var recs []*event.Recorder
		for _, r := range rs {
			if r.Err != nil {
				t.Fatalf("run %q: %v", r.Name, r.Err)
			}
			recs = append(recs, r.Trace)
		}
		var sb strings.Builder
		if err := event.WriteChromeTraceMerged(&sb, recs, 0); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	doc := export()
	if doc2 := export(); doc != doc2 {
		t.Fatal("two identical campaigns exported different merged traces")
	}
	for _, want := range []string{`"pid":0`, `"pid":1`, `"name":"gsum"`, `"cat":"flow"`} {
		if !strings.Contains(doc, want) {
			t.Fatalf("merged trace missing %s", want)
		}
	}
}

// TestSweepCrossProduct pins the sweep expansion order (lattice-major,
// then operator, then fault seed) — campaign digests depend on it.
func TestSweepCrossProduct(t *testing.T) {
	base := chaosBase()
	specs := fleet.Sweep(base,
		[]lattice.Shape4{{4, 4, 4, 4}, {4, 4, 4, 8}},
		nil,
		[]uint64{16, 23})
	want := []string{
		"wilson 4x4x4x4 fseed=16",
		"wilson 4x4x4x4 fseed=23",
		"wilson 4x4x4x8 fseed=16",
		"wilson 4x4x4x8 fseed=23",
	}
	if len(specs) != len(want) {
		t.Fatalf("got %d specs, want %d", len(specs), len(want))
	}
	for i, s := range specs {
		if s.Name != want[i] {
			t.Errorf("spec %d name %q, want %q", i, s.Name, want[i])
		}
	}
}
