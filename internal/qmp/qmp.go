// Package qmp is the user-level communications API of §3.3: a thin,
// hardware-shaped message-passing layer whose calls "directly reflect
// the underlying hardware features of our communications unit". A node
// program creates a Comm over a dimension fold of the machine and gets:
//
//   - block-strided zero-copy sends and receives along logical axes
//     (the SCU DMA engines; no temporal ordering between a send and the
//     matching receive is required);
//   - persistent transfers (the SCU stores DMA instructions internally
//     so repeated halo exchanges restart with a single write);
//   - global sums and broadcasts riding the SCU's pass-through global
//     mode, including the "doubled" two-stream variant that halves the
//     hop count;
//   - a barrier built from the global sum.
//
// All reductions accumulate in canonical origin order, so every node —
// and any machine decomposition, including a single-node run — produces
// bit-identical results (experiment E10).
package qmp

import (
	"fmt"
	"math"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/node"
	"qcdoc/internal/scu"
)

// Comm is one node's endpoint in a logical (folded) machine.
type Comm struct {
	n    *node.Node
	fold *geom.Fold
	lc   geom.Coord
}

// New builds the communicator for the node in ctx under the given fold
// of the physical machine.
func New(ctx *node.Ctx, fold *geom.Fold) *Comm {
	return &Comm{n: ctx.N, fold: fold, lc: fold.ToLogical(ctx.N.Coord)}
}

// Shape returns the logical torus shape.
func (c *Comm) Shape() geom.Shape { return c.fold.Logical() }

// Coord returns this node's logical coordinate.
func (c *Comm) Coord() geom.Coord { return c.lc }

// Rank returns the logical lexicographic rank.
func (c *Comm) Rank() int { return c.fold.Logical().Rank(c.lc) }

// link resolves the physical link toward the (axis, dir) logical
// neighbour — a single hop, guaranteed by the fold.
func (c *Comm) link(axis int, dir geom.Dir) geom.Link {
	_, l, _ := c.fold.MachineLink(c.lc, axis, dir)
	return l
}

// StartSend begins a DMA send of the described local memory toward the
// (axis, dir) neighbour.
func (c *Comm) StartSend(axis int, dir geom.Dir, d scu.DMADesc) (*scu.Transfer, error) {
	return c.n.SCU.StartSend(c.link(axis, dir), d)
}

// StartRecv begins a DMA receive of data sent by the (axis, dir)
// neighbour into the described local memory.
func (c *Comm) StartRecv(axis int, dir geom.Dir, d scu.DMADesc) (*scu.Transfer, error) {
	return c.n.SCU.StartRecv(c.link(axis, dir), d)
}

// WaitAll blocks until every transfer completes.
func WaitAll(p *event.Proc, ts ...*scu.Transfer) {
	for _, t := range ts {
		if t != nil {
			t.Wait(p)
		}
	}
}

// SendSupervisor delivers a supervisor word (and a CPU interrupt) to the
// (axis, dir) neighbour.
func (c *Comm) SendSupervisor(axis int, dir geom.Dir, w uint64) error {
	return c.n.SCU.SendSupervisor(c.link(axis, dir), w)
}

// GlobalSumFloat64 performs the §2.2 global sum: a dimension-by-
// dimension ring reduction through the SCU pass-through mode. Every node
// contributes x and receives the identical machine-wide total,
// accumulated in canonical coordinate order (bit-reproducible).
func (c *Comm) GlobalSumFloat64(p *event.Proc, x float64) float64 {
	c.noteGlobalSum()
	start, flow, prev := c.gsumBegin(p)
	shape := c.fold.Logical()
	for axis := 0; axis < geom.MaxDim; axis++ {
		if shape[axis] > 1 {
			x = c.axisSum(p, axis, x, false)
		}
	}
	c.gsumEnd(p, start, flow, prev)
	return x
}

// GlobalSumFloat64Doubled is the doubled-mode variant: both ring
// directions run concurrently on the SCU's two disjoint global streams,
// halving the hop count (Nx/2 + Ny/2 + ... instead of Nx + Ny + ... - 4).
func (c *Comm) GlobalSumFloat64Doubled(p *event.Proc, x float64) float64 {
	c.noteGlobalSum()
	start, flow, prev := c.gsumBegin(p)
	shape := c.fold.Logical()
	for axis := 0; axis < geom.MaxDim; axis++ {
		if shape[axis] > 1 {
			x = c.axisSum(p, axis, x, true)
		}
	}
	c.gsumEnd(p, start, flow, prev)
	return x
}

// GlobalSumUint64 sums unsigned words (useful for counters and votes).
func (c *Comm) GlobalSumUint64(p *event.Proc, x uint64) uint64 {
	c.noteGlobalSum()
	start, flow, prev := c.gsumBegin(p)
	// Ride the float path bit-exactly only for small integers; do it
	// directly instead: same rings, integer accumulate.
	shape := c.fold.Logical()
	for axis := 0; axis < geom.MaxDim; axis++ {
		if shape[axis] <= 1 {
			continue
		}
		vals := c.axisGather(p, axis, x, false)
		var sum uint64
		for _, v := range vals {
			sum += v
		}
		x = sum
	}
	c.gsumEnd(p, start, flow, prev)
	return x
}

// gsumBegin opens the observability envelope around one global sum: a
// fresh causal flow (so every wire event the reduction schedules — on
// this shard and, via the cluster mailboxes, on every shard it crosses
// — carries one trace ID), a span-begin mark, and the start time for
// the round-trip histogram. Pure trace metadata plus a clock read:
// nothing here schedules or reorders an event.
func (c *Comm) gsumBegin(p *event.Proc) (start event.Time, flow, prev uint64) {
	eng := p.Engine()
	flow = eng.NewFlow()
	prev = eng.SetFlow(flow)
	eng.MarkSpanBegin("gsum")
	return p.Now(), flow, prev
}

// gsumEnd closes the envelope: re-assert the flow (wake events may have
// switched it), drop the span-end mark, restore the caller's flow, and
// record the round trip into the node's histogram (nil-gated like every
// counter).
func (c *Comm) gsumEnd(p *event.Proc, start event.Time, flow, prev uint64) {
	eng := p.Engine()
	eng.SetFlow(flow)
	eng.MarkSpanEnd("gsum")
	eng.SetFlow(prev)
	if ctr := c.n.Counters(); ctr != nil {
		ctr.GsumTime.Record(uint64(p.Now() - start))
	}
}

// axisSum reduces along one logical axis.
func (c *Comm) axisSum(p *event.Proc, axis int, x float64, doubled bool) float64 {
	vals := c.axisGather(p, axis, math.Float64bits(x), doubled)
	// Canonical order: by origin coordinate, identical on every node.
	sum := 0.0
	for _, w := range vals {
		sum += math.Float64frombits(w)
	}
	return sum
}

// axisGather collects every node's word along an axis ring, indexed by
// the origin's coordinate on the axis.
func (c *Comm) axisGather(p *event.Proc, axis int, word uint64, doubled bool) []uint64 {
	n := c.fold.Logical()[axis]
	vals := make([]uint64, n)
	me := c.lc[axis]
	vals[me] = word
	fwd := c.link(axis, geom.Fwd)
	bwd := c.link(axis, geom.Bwd)
	if !doubled {
		// Single ring: words travel +axis; we receive N-1 words from the
		// -axis side, forwarding all but the last.
		cfg := scu.GlobalConfig{
			In: bwd, HasIn: true,
			Outs:    []geom.Link{fwd},
			Expect:  n - 1,
			Forward: n - 2,
			OnWord: func(k int, w uint64) {
				origin := ((me-1-k)%n + n) % n
				vals[origin] = w
			},
		}
		must(c.n.SCU.ConfigureGlobal(0, cfg))
		must(c.n.SCU.GlobalInject(0, word))
		c.n.SCU.WaitGlobal(p, 0)
		c.n.SCU.DisableGlobal(0)
		return vals
	}
	// Doubled mode: stream 0 carries words moving +axis (received from
	// -axis, travelling at most ceil((n-1+1)/2) = n/2 hops), stream 1
	// carries words moving -axis.
	kf := n / 2
	kb := n - 1 - kf
	cfg0 := scu.GlobalConfig{
		In: bwd, HasIn: true, Outs: []geom.Link{fwd},
		Expect: kf, Forward: max(kf-1, 0),
		OnWord: func(k int, w uint64) {
			origin := ((me-1-k)%n + n) % n
			vals[origin] = w
		},
	}
	cfg1 := scu.GlobalConfig{
		In: fwd, HasIn: true, Outs: []geom.Link{bwd},
		Expect: kb, Forward: max(kb-1, 0),
		OnWord: func(k int, w uint64) {
			origin := (me + 1 + k) % n
			vals[origin] = w
		},
	}
	must(c.n.SCU.ConfigureGlobal(0, cfg0))
	if kb > 0 {
		must(c.n.SCU.ConfigureGlobal(1, cfg1))
	}
	must(c.n.SCU.GlobalInject(0, word))
	if kb > 0 {
		must(c.n.SCU.GlobalInject(1, word))
	}
	c.n.SCU.WaitGlobal(p, 0)
	c.n.SCU.DisableGlobal(0)
	if kb > 0 {
		c.n.SCU.WaitGlobal(p, 1)
		c.n.SCU.DisableGlobal(1)
	}
	return vals
}

// Broadcast distributes root's word to every node by dimension-order
// ring broadcasts through the SCU global mode ("the pattern of links is
// chosen to rapidly span the entire machine", §2.2). Every node passes
// the same root coordinate; the return value is the broadcast word.
func (c *Comm) Broadcast(p *event.Proc, root geom.Coord, word uint64) uint64 {
	if ctr := c.n.Counters(); ctr != nil {
		ctr.Broadcasts++
	}
	shape := c.fold.Logical()
	for axis := 0; axis < geom.MaxDim; axis++ {
		n := shape[axis]
		if n <= 1 {
			continue
		}
		// Participants this phase: coordinates matching root beyond this
		// axis.
		participating := true
		for j := axis + 1; j < geom.MaxDim; j++ {
			if c.lc[j] != root[j] {
				participating = false
				break
			}
		}
		if !participating {
			continue
		}
		fwd := c.link(axis, geom.Fwd)
		bwd := c.link(axis, geom.Bwd)
		if c.lc[axis] == root[axis] {
			// Source: inject and receive nothing.
			cfg := scu.GlobalConfig{Outs: []geom.Link{fwd}}
			must(c.n.SCU.ConfigureGlobal(0, cfg))
			must(c.n.SCU.GlobalInject(0, word))
			c.n.SCU.DisableGlobal(0)
			continue
		}
		dist := ((c.lc[axis]-root[axis])%n + n) % n
		forward := 0
		if dist < n-1 {
			forward = 1
		}
		var got uint64
		cfg := scu.GlobalConfig{
			In: bwd, HasIn: true, Outs: []geom.Link{fwd},
			Expect: 1, Forward: forward,
			OnWord: func(_ int, w uint64) { got = w },
		}
		must(c.n.SCU.ConfigureGlobal(0, cfg))
		c.n.SCU.WaitGlobal(p, 0)
		c.n.SCU.DisableGlobal(0)
		word = got
	}
	return word
}

// Barrier blocks until every node in the logical machine has entered it
// (a global sum of ones).
func (c *Comm) Barrier(p *event.Proc) {
	if ctr := c.n.Counters(); ctr != nil {
		ctr.Barriers++
	}
	total := c.GlobalSumUint64(p, 1)
	if total != uint64(c.fold.Logical().Volume()) {
		panic(fmt.Sprintf("qmp: barrier counted %d of %d nodes", total, c.fold.Logical().Volume()))
	}
}

// noteGlobalSum ticks the node's global-sum counter when telemetry is
// on; a barrier's internal sum counts too — it is one on the wire.
func (c *Comm) noteGlobalSum() {
	if ctr := c.n.Counters(); ctr != nil {
		ctr.GlobalSums++
	}
}

func must(err error) {
	if err != nil {
		panic("qmp: " + err.Error())
	}
}

// stridedDesc and contiguousDesc re-export DMA descriptor construction
// so application code can stay in qmp vocabulary.
func stridedDesc(base uint64, blockWords, numBlocks, strideWords int) scu.DMADesc {
	return scu.DMADesc{Base: base, BlockWords: blockWords, NumBlocks: numBlocks, StrideWords: strideWords}
}

func contiguousDesc(base uint64, words int) scu.DMADesc {
	return scu.Contiguous(base, words)
}

// StridedDesc describes NumBlocks blocks of BlockWords words with block
// starts StrideWords apart — the shape of a lattice face in field
// storage.
func StridedDesc(base uint64, blockWords, numBlocks, strideWords int) scu.DMADesc {
	return stridedDesc(base, blockWords, numBlocks, strideWords)
}

// ContiguousDesc describes words consecutive 64-bit words at base.
func ContiguousDesc(base uint64, words int) scu.DMADesc {
	return contiguousDesc(base, words)
}
