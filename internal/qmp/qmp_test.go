package qmp

import (
	"math"
	"testing"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/machine"
	"qcdoc/internal/node"
)

func booted(t *testing.T, shape geom.Shape) (*event.Engine, *machine.Machine) {
	t.Helper()
	eng := event.New()
	m := machine.Build(eng, machine.DefaultConfig(shape))
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Shutdown() })
	return eng, m
}

func TestGlobalSumFloat64(t *testing.T) {
	_, m := booted(t, geom.MakeShape(4, 2, 2))
	fold := geom.IdentityFold(m.Cfg.Shape)
	got := make([]float64, m.NumNodes())
	err := m.RunSPMD("gsum", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			c := New(ctx, fold)
			got[rank] = c.GlobalSumFloat64(ctx.P, float64(rank)+0.25)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	n := m.NumNodes()
	want := float64(n*(n-1))/2 + 0.25*float64(n)
	for r, v := range got {
		if v != want { // bit-exact: all nodes sum in canonical order
			t.Fatalf("node %d sum = %v, want %v", r, v, want)
		}
	}
	if _, err := m.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalSumBitIdenticalAcrossNodes(t *testing.T) {
	// Floating-point addition is not associative; the canonical-order
	// reduction must still give every node the same bits, equal to the
	// single-node reference summing in coordinate order.
	_, m := booted(t, geom.MakeShape(4, 2))
	fold := geom.IdentityFold(m.Cfg.Shape)
	vals := []float64{1e16, 1.0, -1e16, 3.125, 2.5e-7, -42.0, 7.75, 1e-3}
	got := make([]uint64, m.NumNodes())
	err := m.RunSPMD("gsum-bits", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			c := New(ctx, fold)
			got[rank] = math.Float64bits(c.GlobalSumFloat64(ctx.P, vals[rank]))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Single-node reference: canonical coordinate order is dimension-wise.
	// For the identity fold on 4x2, axis 0 then axis 1: first sum groups
	// of 4 along axis 0, then 2 along axis 1.
	shape := fold.Logical()
	axis0 := make([]float64, shape[1])
	for y := 0; y < shape[1]; y++ {
		s := 0.0
		for x := 0; x < shape[0]; x++ {
			s += vals[m.Cfg.Shape.Rank(geom.Coord{x, y})]
		}
		axis0[y] = s
	}
	ref := 0.0
	for _, s := range axis0 {
		ref += s
	}
	refBits := math.Float64bits(ref)
	for r, bits := range got {
		if bits != refBits {
			t.Fatalf("node %d bits %#x, reference %#x", r, bits, refBits)
		}
	}
}

func TestGlobalSumDoubled(t *testing.T) {
	_, m := booted(t, geom.MakeShape(4, 4))
	fold := geom.IdentityFold(m.Cfg.Shape)
	got := make([]float64, m.NumNodes())
	err := m.RunSPMD("gsum2", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			c := New(ctx, fold)
			got[rank] = c.GlobalSumFloat64Doubled(ctx.P, float64(rank+1))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	n := m.NumNodes()
	want := float64(n * (n + 1) / 2)
	for r, v := range got {
		if v != want {
			t.Fatalf("node %d sum = %v, want %v", r, v, want)
		}
	}
}

func TestDoubledModeHalvesLatency(t *testing.T) {
	// E5: the doubled global mode needs Nx/2 + ... hops instead of
	// Nx + ... - 4.
	elapsed := func(doubled bool) event.Time {
		eng := event.New()
		defer eng.Shutdown()
		m := machine.Build(eng, machine.DefaultConfig(geom.MakeShape(8)))
		if err := m.Boot(); err != nil {
			t.Fatal(err)
		}
		fold := geom.IdentityFold(m.Cfg.Shape)
		start := eng.Now()
		var end event.Time
		err := m.RunSPMD("gsum", func(rank int) node.Program {
			return func(ctx *node.Ctx) {
				c := New(ctx, fold)
				if doubled {
					c.GlobalSumFloat64Doubled(ctx.P, 1)
				} else {
					c.GlobalSumFloat64(ctx.P, 1)
				}
				if ctx.P.Now() > end {
					end = ctx.P.Now()
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return end - start
	}
	single := elapsed(false)
	doubled := elapsed(true)
	// 8-ring: single needs 7 sequential hops, doubled 4. Expect a
	// speedup approaching 7/4; allow generous bounds for per-node
	// overheads.
	ratio := float64(single) / float64(doubled)
	if ratio < 1.3 {
		t.Fatalf("doubled mode speedup %.2fx (single %v, doubled %v), want > 1.3x", ratio, single, doubled)
	}
}

func TestGlobalSumUint64(t *testing.T) {
	_, m := booted(t, geom.MakeShape(2, 2, 2))
	fold := geom.IdentityFold(m.Cfg.Shape)
	err := m.RunSPMD("usum", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			c := New(ctx, fold)
			if got := c.GlobalSumUint64(ctx.P, uint64(rank)); got != 28 {
				panic("wrong integer sum")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcast(t *testing.T) {
	_, m := booted(t, geom.MakeShape(4, 2, 2))
	fold := geom.IdentityFold(m.Cfg.Shape)
	root := geom.Coord{2, 1, 0, 0, 0, 0}
	rootRank := fold.Logical().Rank(root)
	got := make([]uint64, m.NumNodes())
	err := m.RunSPMD("bcast", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			c := New(ctx, fold)
			word := uint64(0)
			if c.Rank() == rootRank {
				word = 0xFACEB00C
			}
			got[rank] = c.Broadcast(ctx.P, root, word)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range got {
		if v != 0xFACEB00C {
			t.Fatalf("node %d got %#x", r, v)
		}
	}
}

func TestBarrier(t *testing.T) {
	_, m := booted(t, geom.MakeShape(2, 2))
	fold := geom.IdentityFold(m.Cfg.Shape)
	var after event.Time
	err := m.RunSPMD("barrier", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			c := New(ctx, fold)
			// Stagger arrivals; the barrier must hold everyone until the
			// last (rank 3) arrives.
			ctx.P.Sleep(event.Time(rank) * event.Microsecond)
			c.Barrier(ctx.P)
			if after == 0 || ctx.P.Now() < after {
				after = ctx.P.Now()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if after < 3*event.Microsecond {
		t.Fatalf("a node left the barrier at %v, before the last arrival", after)
	}
}

func TestFoldedGlobalSum(t *testing.T) {
	// A 16-node 4x2x2 machine folded to a 1-D ring of 16: the sum still
	// works over serpentine links.
	_, m := booted(t, geom.MakeShape(4, 2, 2))
	fold, err := geom.NewFold(m.Cfg.Shape, [][]int{{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunSPMD("folded", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			c := New(ctx, fold)
			if c.Shape()[0] != 16 {
				panic("fold shape wrong")
			}
			if got := c.GlobalSumFloat64(ctx.P, 1); got != 16 {
				panic("folded sum wrong")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
}

func TestHaloExchangeUnderFold(t *testing.T) {
	// Logical-axis halo exchange on a folded machine: each node sends a
	// block-strided pattern to its +0 logical neighbour.
	_, m := booted(t, geom.MakeShape(2, 2, 2, 2))
	fold, err := geom.NewFold(m.Cfg.Shape, [][]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	logical := fold.Logical()
	err = m.RunSPMD("halo", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			c := New(ctx, fold)
			n := ctx.N
			// Strided source: 4 blocks of 2 words, stride 5.
			src := n.AllocWords(20)
			dst := n.AllocWords(8)
			for i := 0; i < 20; i++ {
				n.Mem.WriteWord(src+8*uint64(i), uint64(c.Rank())<<16|uint64(i))
			}
			sdesc := stridedDesc(src, 2, 4, 5)
			rt, err := c.StartRecv(0, geom.Bwd, contiguousDesc(dst, 8))
			if err != nil {
				panic(err)
			}
			if _, err := c.StartSend(0, geom.Fwd, sdesc); err != nil {
				panic(err)
			}
			rt.Wait(ctx.P)
			// Expect the -0 logical neighbour's gathered pattern.
			prev := c.Coord()
			prev[0] = (prev[0] - 1 + logical[0]) % logical[0]
			prevRank := logical.Rank(prev)
			k := 0
			for b := 0; b < 4; b++ {
				for wIdx := 0; wIdx < 2; wIdx++ {
					want := uint64(prevRank)<<16 | uint64(b*5+wIdx)
					if got := n.Mem.ReadWord(dst + 8*uint64(k)); got != want {
						panic("halo word wrong under fold")
					}
					k++
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
