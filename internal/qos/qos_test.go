package qos

import (
	"strings"
	"testing"

	"qcdoc/internal/ethjtag"
	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/node"
	"qcdoc/internal/scu"
)

// rig builds one node with a kernel attached to a two-port network
// (host + node).
func rig(t *testing.T) (*event.Engine, *Kernel, *ethjtag.Port) {
	t.Helper()
	eng := event.New()
	t.Cleanup(eng.Shutdown)
	nw := ethjtag.NewNetwork(eng)
	host := nw.Attach(ethjtag.HostAddr, ethjtag.HostEthernetBps)
	eth := nw.Attach(ethjtag.NodeEthAddr(0), ethjtag.NodeEthernetBps)
	n := node.New(eng, 0, geom.Coord{}, 500*event.MHz, scu.DefaultConfig(), 0)
	n.LoadBootWord(0, 1)
	if err := n.StartBootKernel(); err != nil {
		t.Fatal(err)
	}
	k := NewKernel(n, eth, ethjtag.HostAddr)
	k.Start(eng)
	return eng, k, host
}

// rpc sends one RPC and returns the reply payload.
func rpc(t *testing.T, eng *event.Engine, host *ethjtag.Port, msg string) string {
	t.Helper()
	var reply string
	eng.Spawn("host", func(p *event.Proc) {
		host.Send(ethjtag.Packet{Dst: ethjtag.NodeEthAddr(0), Port: ethjtag.PortRPC, Payload: []byte(msg)})
		reply = string(host.Recv(p).Payload)
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	return reply
}

func TestStatusRPC(t *testing.T) {
	eng, _, host := rig(t)
	rep := rpc(t, eng, host, "status")
	if !strings.Contains(rep, "state=boot-kernel") {
		t.Fatalf("status = %q", rep)
	}
}

func TestRunKernelLoadProtocol(t *testing.T) {
	eng, k, host := rig(t)
	// START before any image packets must fail.
	var rep string
	eng.Spawn("host", func(p *event.Proc) {
		host.Send(ethjtag.Packet{Dst: ethjtag.NodeEthAddr(0), Port: ethjtag.PortBoot, Payload: []byte("START")})
		rep = string(host.Recv(p).Payload)
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(rep, "err") {
		t.Fatalf("empty image accepted: %q", rep)
	}
	// Load image packets then START.
	eng.Spawn("host", func(p *event.Proc) {
		img := make([]byte, RunKernelPacketBytes)
		for i := 0; i < 10; i++ {
			host.Send(ethjtag.Packet{Dst: ethjtag.NodeEthAddr(0), Port: ethjtag.PortBoot, Payload: img})
		}
		host.Send(ethjtag.Packet{Dst: ethjtag.NodeEthAddr(0), Port: ethjtag.PortBoot, Payload: []byte("START")})
		rep = string(host.Recv(p).Payload)
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if rep != "ok" {
		t.Fatalf("start = %q", rep)
	}
	if k.KernelPackets() != 10 {
		t.Fatalf("kernel packets %d", k.KernelPackets())
	}
	if k.Node.State() != node.RunKernel {
		t.Fatalf("state %v", k.Node.State())
	}
}

func TestRunRPCAndCompletion(t *testing.T) {
	eng, k, host := rig(t)
	k.Node.ForceReady()
	executed := false
	k.Programs["hello"] = func(ctx *node.Ctx) { executed = true }
	var msgs []string
	eng.Spawn("host", func(p *event.Proc) {
		host.Send(ethjtag.Packet{Dst: ethjtag.NodeEthAddr(0), Port: ethjtag.PortRPC, Payload: []byte("run j1 hello")})
		for i := 0; i < 2; i++ { // launch ack + done report
			msgs = append(msgs, string(host.Recv(p).Payload))
		}
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !executed {
		t.Fatal("program did not run")
	}
	if msgs[0] != "ok j1" {
		t.Fatalf("ack = %q", msgs[0])
	}
	if !strings.HasPrefix(msgs[1], "done j1") || !strings.Contains(msgs[1], "parity=0") {
		t.Fatalf("completion = %q", msgs[1])
	}
}

func TestUnknownProgramAndRPC(t *testing.T) {
	eng, k, host := rig(t)
	k.Node.ForceReady()
	if rep := rpc(t, eng, host, "run j nothere"); !strings.HasPrefix(rep, "err") {
		t.Fatalf("reply %q", rep)
	}
	if rep := rpc(t, eng, host, "frob"); !strings.HasPrefix(rep, "err") {
		t.Fatalf("reply %q", rep)
	}
}

func TestPeek(t *testing.T) {
	eng, k, host := rig(t)
	k.Node.Mem.WriteWord(0x100, 0xABCD)
	if rep := rpc(t, eng, host, "peek 100"); rep != "0xabcd" {
		t.Fatalf("peek = %q", rep)
	}
}

func TestFromCtxPanicsWithoutKernel(t *testing.T) {
	eng := event.New()
	defer eng.Shutdown()
	n := node.New(eng, 0, geom.Coord{}, 500*event.MHz, scu.DefaultConfig(), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FromCtx(&node.Ctx{N: n})
}
