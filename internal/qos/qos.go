// Package qos is the QCDOC node operating system (§3.2): a lean,
// home-grown run-time kernel with exactly two threads — a kernel thread
// and an application thread — and no scheduler ("for QCD, we have no
// reason to multitask on the node level"). The kernel thread serves the
// management Ethernet: the run-kernel loader, the RPC channel to the
// qdaemon (§3.1), an NFS-style shim to the host disks, and hardware
// status reporting. Once an application starts, the kernel services its
// system calls and reports its completion and hardware status back to
// the host.
//
// Substitution note (see DESIGN.md): applications are Go functions
// registered under names instead of cross-compiled PowerPC binaries; the
// loader traffic (about a hundred UDP packets per kernel image, §3.1) is
// modelled with real packets of realistic sizes.
package qos

import (
	"fmt"
	"strings"

	"qcdoc/internal/ethjtag"
	"qcdoc/internal/event"
	"qcdoc/internal/node"
)

// RunKernelPackets is the approximate number of UDP packets that carry
// the run kernel image (§3.1: "the run kernel is loaded down, also
// taking about 100 UDP packets").
const RunKernelPackets = 100

// RunKernelPacketBytes is the modelled code payload per packet.
const RunKernelPacketBytes = 512

// Kernel is one node's run kernel.
type Kernel struct {
	Node *node.Node
	Eth  *ethjtag.Port
	Host ethjtag.Addr
	// NFS is the host's file-server address (defaults to Host).
	NFS ethjtag.Addr

	// Programs is the application registry: the stand-in for binaries on
	// the host disks.
	Programs map[string]node.Program

	kernelPackets int
	kernelLoaded  bool
	stdoutSeq     int

	hbTimer  *event.Timer
	hbPeriod event.Time
}

// NewKernel builds the kernel for a node on its standard Ethernet port.
func NewKernel(n *node.Node, eth *ethjtag.Port, host ethjtag.Addr) *Kernel {
	k := &Kernel{Node: n, Eth: eth, Host: host, NFS: host, Programs: map[string]node.Program{}}
	n.Sys = k
	return k
}

// FromCtx recovers the kernel inside an application (the system-call
// surface).
func FromCtx(ctx *node.Ctx) *Kernel {
	k, ok := ctx.N.Sys.(*Kernel)
	if !ok {
		panic("qos: node has no kernel")
	}
	return k
}

// Start attaches the kernel thread to its Ethernet port. It runs from
// boot-kernel state onward; in the real machine the boot kernel
// initializes this Ethernet controller (§3.1). The service loop is a
// continuation on the event engine — one per node, no goroutines.
func (k *Kernel) Start(eng *event.Engine) {
	k.Eth.OnPacket(k.serve)
}

// StartHeartbeat arms the kernel's liveness tick: every period, the
// kernel thread bumps the node's heartbeat counter, which the host
// watchdog reads through the telemetry MMIO window. Heartbeats are
// opt-in (chaos/recovery runs enable them) so the default event stream
// — and with it every pinned determinism digest — is untouched. A
// crashed or hung node's timer keeps firing (it is engine machinery,
// not node software) but ticks nothing: the counter freezes, which is
// precisely the watchdog's detection signal.
func (k *Kernel) StartHeartbeat(eng *event.Engine, period event.Time) {
	if k.hbTimer != nil || period <= 0 {
		return
	}
	k.hbPeriod = period
	k.hbTimer = eng.NewTimer(func() {
		if !k.Node.Alive() {
			return // dead software ticks nothing; the timer dies with it
		}
		k.Node.TickHeartbeat()
		k.hbTimer.Arm(k.hbPeriod)
	})
	k.hbTimer.Arm(period)
}

// serve handles one management packet, in its arrival event. A node
// whose software has crashed or hung answers nothing — only the
// JTAG controller (separate port, pure hardware) still responds.
func (k *Kernel) serve(pkt ethjtag.Packet) {
	if !k.Node.Alive() {
		return
	}
	switch pkt.Port {
	case ethjtag.PortBoot:
		k.handleBoot(pkt)
	case ethjtag.PortRPC:
		k.handleRPC(pkt)
	default:
		// UDP to an unbound port: dropped, as a real sockets stack
		// would.
	}
}

// handleBoot accumulates run-kernel image packets; the final "START"
// packet installs the run kernel and initializes the SCU and mesh
// network (§3.1).
func (k *Kernel) handleBoot(pkt ethjtag.Packet) {
	if string(pkt.Payload) == "START" {
		status := "ok"
		if k.kernelPackets == 0 {
			status = "err: no kernel image"
		} else if err := k.Node.StartRunKernel(); err != nil {
			status = "err: " + err.Error()
		} else {
			k.kernelLoaded = true
		}
		k.reply(pkt, ethjtag.PortBoot, status)
		return
	}
	k.kernelPackets++
}

// KernelPackets reports how many image packets arrived (experiment E13).
func (k *Kernel) KernelPackets() int { return k.kernelPackets }

// handleRPC serves the qdaemon's RPC channel: job launch, status and
// debugging pokes. Messages are simple space-separated text.
func (k *Kernel) handleRPC(pkt ethjtag.Packet) {
	fields := strings.Fields(string(pkt.Payload))
	if len(fields) == 0 {
		k.reply(pkt, ethjtag.PortRPC, "err: empty rpc")
		return
	}
	switch fields[0] {
	case "run":
		if len(fields) < 3 {
			k.reply(pkt, ethjtag.PortRPC, "err: run <job> <program>")
			return
		}
		job, name := fields[1], fields[2]
		prog, ok := k.Programs[name]
		if !ok {
			k.reply(pkt, ethjtag.PortRPC, "err: no such program "+name)
			return
		}
		wrapped := func(ctx *node.Ctx) {
			prog(ctx)
			// Program termination: the kernel thread reports completion
			// and hardware status to the qdaemon (§3.2).
			st := ctx.N.SCU.Stats()
			k.send(ethjtag.PortRPC, fmt.Sprintf("done %s %s parity=%d header=%d resends=%d",
				job, k.Node.Name, st.ParityErrors, st.HeaderErrors, st.Resends))
		}
		if err := k.Node.RunProgram(name, wrapped); err != nil {
			k.reply(pkt, ethjtag.PortRPC, "err: "+err.Error())
			return
		}
		k.reply(pkt, ethjtag.PortRPC, "ok "+job)
	case "status":
		k.reply(pkt, ethjtag.PortRPC, fmt.Sprintf("state=%s boot=%d kernel=%v",
			k.Node.State(), k.Node.BootWords(), k.kernelLoaded))
	case "peek":
		var addr uint64
		fmt.Sscanf(fields[1], "%x", &addr)
		k.reply(pkt, ethjtag.PortRPC, fmt.Sprintf("%#x", k.Node.Mem.ReadWord(addr)))
	default:
		k.reply(pkt, ethjtag.PortRPC, "err: unknown rpc "+fields[0])
	}
}

func (k *Kernel) reply(req ethjtag.Packet, port uint16, msg string) {
	_ = k.Eth.Send(ethjtag.Packet{Dst: req.Src, Port: port, Payload: []byte(msg)})
}

func (k *Kernel) send(port uint16, msg string) {
	_ = k.Eth.Send(ethjtag.Packet{Dst: k.Host, Port: port, Payload: []byte(msg)})
}

// --- System calls available to applications ------------------------------

// Printf sends formatted output to the host, where the qdaemon returns
// it to the user's qcsh session (§3.1).
func (k *Kernel) Printf(format string, args ...any) {
	k.stdoutSeq++
	msg := fmt.Sprintf("stdout %s %d %s", k.Node.Name, k.stdoutSeq, fmt.Sprintf(format, args...))
	k.send(ethjtag.PortRPC, msg)
}

// WriteFile writes data to the host filesystem over the NFS shim
// (§3.2: "support for NFS mounting of remote disks ... used by
// application programs to write directly to the host disk system").
// Large payloads are chunked into packets.
func (k *Kernel) WriteFile(p *event.Proc, name string, data []byte) {
	const chunk = 1024
	total := (len(data) + chunk - 1) / chunk
	if total == 0 {
		total = 1
	}
	for i := 0; i < total; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(data) {
			hi = len(data)
		}
		hdr := fmt.Sprintf("write %s %d %d ", name, i, total)
		payload := append([]byte(hdr), data[lo:hi]...)
		_ = k.Eth.Send(ethjtag.Packet{Dst: k.NFS, Port: ethjtag.PortNFS, Payload: payload})
	}
}
