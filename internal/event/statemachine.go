package event

import (
	"fmt"
	"sort"
)

// This file is the second tier of the two-tier scheduler. The engine
// offers two ways to write a simulation process:
//
//   - Tier 1 — coroutines (Spawn/Proc): a goroutine with a single token
//     of control, suspended at blocking calls. Natural for complex
//     control flow (boot protocols, applications, tests), but each
//     suspension costs a goroutine park and two channel handoffs on the
//     host, and each live process pins a goroutine stack.
//
//   - Tier 2 — continuations (At/After callbacks + StateMachine): a flat
//     state machine advanced entirely by engine callbacks. No goroutine,
//     no channels; a step costs one function call. This is the tier for
//     the hot per-link and per-node hardware services that exist in the
//     tens of thousands on a big machine.
//
// Both tiers share the same event queue, so ordering between them is
// exactly the deterministic (time, scheduling-sequence) order of the
// queue, and simulated-time results do not depend on which tier a
// process runs on.
//
// StateMachine itself is deliberately small: a name and a state label
// (the callback-tier analogue of a Proc's name and blocked-reason, for
// stall diagnostics), and generation-counted timers that cancel
// themselves when the machine has moved on — the pattern that replaces
// "sleep, unless something woke me first".

// StateMachine is a named, flat simulation process on the continuation
// tier. Drive it by mutating your own state and calling Goto to label
// transitions; use Sleep for timers that are implicitly cancelled by the
// next transition.
type StateMachine struct {
	eng   *Engine
	name  string
	state string
	gen   uint64
	since Time // when the current state was entered
}

// NewStateMachine registers a continuation-tier process with the engine
// (the registry feeds DumpStateMachines; there is nothing to "start" —
// the machine runs whenever its callbacks do).
func (e *Engine) NewStateMachine(name, state string) *StateMachine {
	sm := &StateMachine{eng: e, name: name, state: state, since: e.now}
	e.machines = append(e.machines, sm)
	return sm
}

// Name returns the process name.
func (sm *StateMachine) Name() string { return sm.name }

// State returns the current state label.
func (sm *StateMachine) State() string { return sm.state }

// Engine returns the engine the machine runs on.
func (sm *StateMachine) Engine() *Engine { return sm.eng }

// Goto transitions to a new state label and invalidates every timer
// armed before the transition.
func (sm *StateMachine) Goto(state string) {
	sm.state = state
	sm.gen++
	sm.since = sm.eng.now
}

// StateAge reports how long the machine has been in its current state
// (now minus the last transition time) — the first thing to look at when
// diagnosing a wedged service.
func (sm *StateMachine) StateAge() Time { return sm.eng.now - sm.since }

// Sleep arms a timer: fn runs d from now unless the machine transitions
// (Goto) first. This is the continuation-tier replacement for a
// coroutine's "sleep unless woken": arm the timer, and let the wake path
// call Goto.
func (sm *StateMachine) Sleep(d Time, fn func()) {
	gen := sm.gen
	sm.eng.After(d, func() {
		if sm.gen == gen {
			fn()
		}
	})
}

// DumpStateMachines returns "name: state (age)" for every registered
// continuation-tier process, sorted by name — the callback-tier
// counterpart of the blocked-process list in ErrStall, for debugging
// quiesced or wedged simulations. The age is how long the machine has
// sat in its current state; a link pump idle for a millisecond on a
// machine that should be streaming is the wedge.
func (e *Engine) DumpStateMachines() []string {
	out := make([]string, len(e.machines))
	for i, sm := range e.machines {
		out[i] = fmt.Sprintf("%s: %s (age %v)", sm.name, sm.state, sm.StateAge())
	}
	sort.Strings(out)
	return out
}
