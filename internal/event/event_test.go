package event

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		d    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{2 * Nanosecond, "2ns"},
		{600 * Nanosecond, "600ns"},
		{3300 * Nanosecond, "3.3us"},
		{10 * Millisecond, "10ms"},
		{2 * Second, "2s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d ps -> %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestHzCycle(t *testing.T) {
	if got := (500 * MHz).Cycle(); got != 2*Nanosecond {
		t.Fatalf("500MHz cycle = %v", got)
	}
	if got := (40 * MHz).Cycle(); got != 25*Nanosecond {
		t.Fatalf("40MHz cycle = %v", got)
	}
	if got := (500 * MHz).Cycles(300); got != 600*Nanosecond {
		t.Fatalf("300 cycles = %v", got)
	}
	if got := (500 * MHz).CyclesOf(600 * Nanosecond); got != 300 {
		t.Fatalf("CyclesOf = %d", got)
	}
}

func TestEventOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(30*Nanosecond, func() { order = append(order, 3) })
	e.At(10*Nanosecond, func() { order = append(order, 1) })
	e.At(20*Nanosecond, func() { order = append(order, 2) })
	// Simultaneous events keep scheduling order.
	e.At(20*Nanosecond, func() { order = append(order, 22) })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 22, 3}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30*Nanosecond {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestSimultaneousEventsStableQuick(t *testing.T) {
	f := func(n uint8) bool {
		e := New()
		count := int(n%32) + 2
		var got []int
		for i := 0; i < count; i++ {
			i := i
			e.At(5*Nanosecond, func() { got = append(got, i) })
		}
		if err := e.RunAll(); err != nil {
			return false
		}
		for i := range got {
			if got[i] != i {
				return false
			}
		}
		return len(got) == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunHorizon(t *testing.T) {
	e := New()
	ran := false
	e.At(100*Nanosecond, func() { ran = true })
	if err := e.Run(50 * Nanosecond); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("event beyond horizon ran")
	}
	if e.Now() != 50*Nanosecond {
		t.Fatalf("now = %v, want horizon", e.Now())
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("event did not run after horizon lifted")
	}
}

func TestPastEventClamped(t *testing.T) {
	e := New()
	var at Time
	e.At(10*Nanosecond, func() {
		e.At(5*Nanosecond, func() { at = e.Now() }) // in the past
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if at != 10*Nanosecond {
		t.Fatalf("past event ran at %v", at)
	}
}

func TestProcSleep(t *testing.T) {
	e := New()
	var wokeAt Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(42 * Nanosecond)
		wokeAt = p.Now()
		p.Sleep(8 * Nanosecond)
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if wokeAt != 42*Nanosecond {
		t.Fatalf("woke at %v", wokeAt)
	}
	if e.Now() != 50*Nanosecond {
		t.Fatalf("finished at %v", e.Now())
	}
}

func TestProcInterleaving(t *testing.T) {
	e := New()
	var trace []string
	mk := func(name string, d Time) {
		e.Spawn(name, func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(d)
				trace = append(trace, name)
			}
		})
	}
	mk("a", 10*Nanosecond)
	mk("b", 15*Nanosecond)
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	// Wakes at t=10(a), 15(b), 20(a), 30(both; b's wake was scheduled at
	// t=15, before a's at t=20, so b runs first), 45(b).
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(trace) != len(want) {
		t.Fatalf("trace %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}

func TestQueueHandoff(t *testing.T) {
	e := New()
	q := NewQueue[int](e, "q")
	var got []int
	e.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p))
		}
	})
	e.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(10 * Nanosecond)
			q.Put(i * 100)
		}
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 100 || got[1] != 200 || got[2] != 300 {
		t.Fatalf("got %v", got)
	}
}

func TestQueuePutAfter(t *testing.T) {
	e := New()
	q := NewQueue[string](e, "wire")
	var at Time
	var item string
	e.Spawn("rx", func(p *Proc) {
		item = q.Get(p)
		at = p.Now()
	})
	q.PutAfter(600*Nanosecond, "payload")
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if item != "payload" || at != 600*Nanosecond {
		t.Fatalf("got %q at %v", item, at)
	}
}

func TestQueueTryGet(t *testing.T) {
	e := New()
	q := NewQueue[int](e, "q")
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
	q.Put(7)
	if q.Len() != 1 {
		t.Fatalf("len = %d", q.Len())
	}
	v, ok := q.TryGet()
	if !ok || v != 7 {
		t.Fatalf("TryGet = %d, %v", v, ok)
	}
}

func TestGateBroadcast(t *testing.T) {
	e := New()
	g := NewGate(e)
	woken := 0
	for i := 0; i < 4; i++ {
		e.Spawn("w", func(p *Proc) {
			g.Wait(p, "gate")
			woken++
		})
	}
	e.Spawn("firer", func(p *Proc) {
		p.Sleep(5 * Nanosecond)
		if g.Waiting() != 4 {
			t.Errorf("waiting = %d", g.Waiting())
		}
		g.Fire()
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if woken != 4 {
		t.Fatalf("woken = %d", woken)
	}
}

// TestStallDetection mirrors the paper's observation that one
// non-communicating node stalls the machine: the engine reports which
// processes are blocked instead of hanging.
func TestStallDetection(t *testing.T) {
	e := New()
	q := NewQueue[int](e, "never")
	e.Spawn("starved", func(p *Proc) { q.Get(p) })
	err := e.RunAll()
	var stall *ErrStall
	if !errors.As(err, &stall) {
		t.Fatalf("err = %v, want ErrStall", err)
	}
	if len(stall.Blocked) != 1 || stall.Blocked[0] != "starved (recv never)" {
		t.Fatalf("blocked = %v", stall.Blocked)
	}
}

func TestStop(t *testing.T) {
	e := New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n == 5 {
			e.Stop()
		}
		e.After(Nanosecond, tick)
	}
	e.After(Nanosecond, tick)
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("ticks = %d", n)
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := New()
	var childRan bool
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(Nanosecond)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(Nanosecond)
			childRan = true
		})
		p.Sleep(10 * Nanosecond)
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child did not run")
	}
}

func TestSleepUntil(t *testing.T) {
	e := New()
	var at Time
	e.Spawn("p", func(p *Proc) {
		p.SleepUntil(123 * Nanosecond)
		at = p.Now()
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if at != 123*Nanosecond {
		t.Fatalf("woke at %v", at)
	}
}

func TestDaemonQuiescence(t *testing.T) {
	e := New()
	q := NewQueue[int](e, "service")
	served := 0
	e.SpawnDaemon("server", func(p *Proc) {
		for {
			q.Get(p)
			served++
		}
	})
	e.Spawn("client", func(p *Proc) {
		p.Sleep(Nanosecond)
		q.Put(1)
		q.Put(2)
		p.Sleep(Nanosecond)
	})
	// The daemon is still blocked on Get at the end; that is quiescence,
	// not a stall.
	if err := e.RunAll(); err != nil {
		t.Fatalf("daemon blocked at quiescence reported as error: %v", err)
	}
	if served != 2 {
		t.Fatalf("served = %d", served)
	}
	e.Shutdown()
}

func TestStallStillDetectedWithDaemons(t *testing.T) {
	e := New()
	q := NewQueue[int](e, "never")
	e.SpawnDaemon("helper", func(p *Proc) { q.Get(p) })
	e.Spawn("app", func(p *Proc) { q.Get(p) })
	err := e.RunAll()
	var stall *ErrStall
	if !errors.As(err, &stall) {
		t.Fatalf("err = %v", err)
	}
	if len(stall.Blocked) != 1 || stall.Blocked[0] != "app (recv never)" {
		t.Fatalf("blocked = %v", stall.Blocked)
	}
	e.Shutdown()
}

func TestShutdownUnwindsProcs(t *testing.T) {
	e := New()
	cleaned := 0
	for i := 0; i < 10; i++ {
		e.SpawnDaemon("d", func(p *Proc) {
			defer func() { cleaned++ }()
			NewQueue[int](e, "q").Get(p) // blocks forever
		})
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
	if cleaned != 10 {
		t.Fatalf("cleaned = %d, want 10", cleaned)
	}
}
