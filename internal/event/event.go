// Package event provides the discrete-event simulation core used by the
// QCDOC machine model: a virtual clock with picosecond resolution, a
// stable event queue, and a two-tier process model — coroutine processes
// (Spawn/Proc, goroutines with a single token of control, for complex
// control flow) and zero-goroutine continuation processes (At/After
// callbacks and StateMachine, for the hot per-link hardware services).
// Everything runs on the engine goroutine one event at a time, so no
// locking is needed anywhere in the simulator's guts; see
// statemachine.go for the tier model.
//
// The engine is deliberately sequential: the paper's machine is
// self-synchronizing at the link level (§2.2), and a conservative,
// deterministic scheduler is what makes the bit-identical reproducibility
// experiment (E10) meaningful.
package event

import (
	"fmt"
	"sort"
)

// Time is a point in simulated time, in picoseconds. Picoseconds make
// every clock of interest exact: a 500 MHz processor cycle is 2000 ps, a
// 40 MHz global clock tick is 25000 ps.
type Time int64

// Convenient durations (Time is also used for durations).
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Forever is a Time later than any practical simulation horizon.
const Forever Time = 1<<63 - 1

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.6gns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Seconds converts a duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Hz is a clock frequency.
type Hz int64

// Common QCDOC clock rates (§2.1, §2.4, §4).
const (
	MHz Hz = 1_000_000
	GHz Hz = 1000 * MHz
)

// Cycle returns the period of one clock cycle. Periods are exact for the
// frequencies the simulator uses (factors of 1 THz).
func (f Hz) Cycle() Time { return Time(int64(Second) / int64(f)) }

// Cycles returns the duration of n clock cycles.
func (f Hz) Cycles(n int64) Time { return Time(n) * f.Cycle() }

// CyclesOf returns how many whole cycles fit in d.
func (f Hz) CyclesOf(d Time) int64 { return int64(d) / int64(f.Cycle()) }

// Handler is a pre-bound event target for the continuation tier's hot
// paths. Scheduling a Handler copies only an interface word and a
// uint64 argument into the event item, so services that fire an event
// per wire frame (HSSL delivery, SCU pumps, ack timers) can run with
// zero allocations per event — a closure passed to At/After would be a
// fresh heap object every time. The arg value is returned to the
// handler verbatim; targets use it to distinguish pipeline stages or to
// carry a generation stamp.
type Handler interface {
	HandleEvent(arg uint64)
}

// An item in the event queue: either a closure (fn) or a pre-bound
// handler invocation (h, arg) when fn is nil. flow is the causal trace
// ID inherited from the event that scheduled this one (trace.go); it
// rides in the queue either way and is only ever read at dispatch, so
// it cannot perturb event order.
type item struct {
	at   Time
	seq  uint64 // stable FIFO order among simultaneous events
	fn   func()
	h    Handler
	arg  uint64
	flow uint64
}

// eventHeap is a binary min-heap ordered by (at, seq). The sift
// operations are hand-rolled rather than container/heap because
// heap.Push boxes each item into an interface — a heap allocation per
// scheduled event, which the allocation-free frame path cannot afford.
type eventHeap []item

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

//qcdoc:noalloc
func (h *eventHeap) push(it item) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			return
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

//qcdoc:noalloc
func (h *eventHeap) pop() item {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = item{} // release fn/handler references
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			return top
		}
		child := l
		if r := l + 1; r < n && s.less(r, l) {
			child = r
		}
		if !s.less(child, i) {
			return top
		}
		s[i], s[child] = s[child], s[i]
		i = child
	}
}

// Engine is a discrete-event scheduler. All simulation activity —
// scheduled callbacks and process resumptions — runs on the goroutine
// that calls Run, one step at a time; processes hand control back and
// forth through unbuffered channels, so engine and process code never run
// concurrently and shared simulator state needs no locks.
type Engine struct {
	now        Time
	events     eventHeap
	seq        uint64
	park       chan struct{} // a process signals here when it yields or exits
	live       int           // processes that have started and not finished
	blocked    map[*Proc]string
	stopped    bool
	terminated bool // Shutdown has been called; parked processes unwind

	machines []*StateMachine // registered continuation-tier processes
	tracer   func(at Time)   // observes every dispatched event, if set
	rec      *Recorder       // flight recorder, if attached
	ring     *shardRing      // this shard's ring within rec
	executed uint64          // events dispatched since New

	// Causal-flow state (trace.go): curFlow is the trace ID of the event
	// being dispatched (inherited by everything it schedules), flowSeq
	// numbers the flows this shard has minted, lastSeq is the sequence
	// number of the current event (reused by span marks so marking never
	// consumes a sequence number — attaching a recorder must not move
	// any event's seq).
	curFlow uint64
	flowSeq uint64
	lastSeq uint64

	// Shard identity when this engine is part of a Cluster (cluster.go).
	// An unclustered engine is its own shard 0.
	cluster *Cluster
	shard   int
	xevents payloadHeap // cross-shard payload events, merged by (at, seq)
}

// New creates an engine with the clock at zero.
func New() *Engine {
	return &Engine{
		park:    make(chan struct{}),
		blocked: make(map[*Proc]string),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at time t (clamped to now if in the past).
// Events at equal times run in scheduling order.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.events.push(item{at: t, seq: e.seq, fn: fn, flow: e.curFlow})
}

// After schedules fn to run d from now.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// AtHandler schedules h.HandleEvent(arg) at time t (clamped to now if in
// the past). Unlike At, it allocates nothing per call: the handler and
// argument travel inside the event item.
//qcdoc:noalloc
func (e *Engine) AtHandler(t Time, h Handler, arg uint64) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	e.events.push(item{at: t, seq: e.seq, h: h, arg: arg, flow: e.curFlow})
}

// NewFlow mints a fresh causal-trace ID, unique per shard and stable
// across runs and worker counts (shard identity and a per-shard
// counter, both deterministic). The ID does not become current until
// SetFlow installs it.
//
//qcdoc:noalloc
func (e *Engine) NewFlow() uint64 {
	e.flowSeq++
	return uint64(e.shard+1)<<40 | e.flowSeq
}

// SetFlow makes f the current causal flow — every event scheduled from
// now on (until the next dispatch or SetFlow) carries f in its trace
// slot — and returns the previous flow so initiators can restore it.
// Flow state is pure trace metadata: it is read only by the flight
// recorder, so the simulated event stream is identical whether or not
// anyone ever sets a flow.
//
//qcdoc:noalloc
func (e *Engine) SetFlow(f uint64) (prev uint64) {
	prev = e.curFlow
	e.curFlow = f
	return prev
}

// CurrentFlow returns the flow ID of the event being dispatched (0 when
// nothing upstream started a flow).
func (e *Engine) CurrentFlow() uint64 { return e.curFlow }

// AfterHandler schedules h.HandleEvent(arg) d from now, allocation-free.
//qcdoc:noalloc
func (e *Engine) AfterHandler(d Time, h Handler, arg uint64) {
	e.AtHandler(e.now+d, h, arg)
}

// Stop makes Run return after the current event completes. On a
// clustered engine the request is honored at the next window barrier —
// never mid-window, where observing another shard's request would make
// the outcome depend on execution interleaving.
func (e *Engine) Stop() {
	if e.cluster != nil {
		e.cluster.stopReq.Store(true)
		return
	}
	e.stopped = true
}

// ErrStall is reported by Run when live processes remain but no event can
// ever wake them — the simulated machine has deadlocked. The paper notes
// that a node which stops communicating stalls the whole machine (§2.2);
// the engine surfaces that as an explicit error naming the blocked
// processes.
type ErrStall struct {
	At      Time
	Blocked []string
}

func (e *ErrStall) Error() string {
	return fmt.Sprintf("event: simulation stalled at %v with %d blocked processes %v",
		e.At, len(e.Blocked), e.Blocked)
}

// Run executes events in time order until the queue is empty, the horizon
// is passed, or Stop is called. If the queue drains while non-daemon
// processes are still blocked, Run returns an *ErrStall naming them;
// blocked daemons (link handlers, clock services) are normal quiescence.
// On a clustered engine Run must be called on the host shard (shard 0)
// and drives the whole cluster's window loop.
func (e *Engine) Run(until Time) error {
	if e.cluster != nil {
		if e.shard != 0 {
			panic("event: Run on a clustered engine must use the host shard")
		}
		return e.cluster.run(until)
	}
	return e.runLocal(until)
}

// runLocal is the single-shard event loop.
func (e *Engine) runLocal(until Time) error {
	e.stopped = false
	for !e.stopped {
		t, ok := e.peekTime()
		if !ok {
			names := make([]string, 0, len(e.blocked))
			for p, what := range e.blocked {
				if !p.daemon {
					names = append(names, p.name+" ("+what+")")
				}
			}
			if len(names) > 0 {
				sort.Strings(names)
				return &ErrStall{At: e.now, Blocked: names}
			}
			return nil
		}
		if t > until {
			e.now = until
			return nil
		}
		e.dispatchNext()
	}
	return nil
}

// RunAll runs with no horizon.
func (e *Engine) RunAll() error { return e.Run(Forever) }

// Pending reports the number of queued events. On the host shard of a
// cluster it sums every shard's queues (barrier-serial contexts only).
func (e *Engine) Pending() int {
	n := len(e.events) + len(e.xevents)
	if e.cluster != nil && e.shard == 0 {
		for _, s := range e.cluster.shards[1:] {
			n += len(s.events) + len(s.xevents)
		}
	}
	return n
}

// Executed reports the number of events dispatched since the engine was
// created.
func (e *Engine) Executed() uint64 { return e.executed }

// SetTracer installs fn to observe the timestamp of every dispatched
// event (nil clears it). Determinism tests digest the observed sequence:
// two runs of the same seeded simulation must dispatch identical event
// streams.
func (e *Engine) SetTracer(fn func(at Time)) { e.tracer = fn }

// SetRecorder attaches a flight recorder that captures every dispatched
// event into its ring (nil detaches). Recording schedules no events and
// allocates nothing per dispatch, so the simulated event stream is
// identical with or without it; see trace.go. On the host shard of a
// cluster the recorder attaches to every shard, each getting its own
// ring; Dump and the Chrome-trace export merge them by simulated time.
func (e *Engine) SetRecorder(r *Recorder) {
	if e.cluster != nil && e.shard == 0 {
		for _, s := range e.cluster.shards {
			s.setRecorderLocal(r)
		}
		return
	}
	e.setRecorderLocal(r)
}

func (e *Engine) setRecorderLocal(r *Recorder) {
	e.rec = r
	if r == nil {
		e.ring = nil
	} else {
		e.ring = r.ringFor(e.shard)
	}
}

// Recorder returns the attached flight recorder, or nil.
func (e *Engine) Recorder() *Recorder { return e.rec }

// LiveProcs reports how many coroutine-tier processes have started and
// not yet finished (continuation-tier processes hold no goroutines and
// are not counted).
func (e *Engine) LiveProcs() int { return e.live }

// Proc is a simulation process: a goroutine that alternates with the
// engine via an explicit control token. Process code may only touch
// simulator state between its blocking calls (Sleep, Wait, queue Get),
// which is safe because the engine is parked whenever the process runs.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	done   bool
	daemon bool
	killed bool
}

// procKilled is the panic value used to unwind parked processes when the
// engine shuts down.
type procKilled struct{}

// Spawn starts a new process executing fn. The process begins running at
// the current simulated time (after already-queued events at that time).
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.live++
	go func() {
		<-p.resume // first activation comes through the event queue
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procKilled); !ok {
					panic(r)
				}
			}
			p.done = true
			e.live--
			e.park <- struct{}{}
		}()
		fn(p)
	}()
	e.At(e.now, p.activate)
	return p
}

// SpawnDaemon starts a process that is allowed to remain blocked when the
// simulation quiesces — hardware service loops such as link receivers.
// A drained event queue with only daemons blocked is a normal end of Run,
// not a stall.
func (e *Engine) SpawnDaemon(name string, fn func(*Proc)) *Proc {
	p := e.Spawn(name, fn)
	p.daemon = true
	return p
}

// Shutdown unwinds every parked process so their goroutines exit. The
// engine is unusable afterwards. Call it when a simulation (and its
// machine full of daemon link handlers) is finished, particularly in
// tests that build many machines. On a clustered engine it unwinds the
// whole cluster (worker pool included), whichever shard it is called on.
func (e *Engine) Shutdown() {
	if e.cluster != nil {
		e.cluster.shutdown()
		return
	}
	e.shutdownLocal()
}

func (e *Engine) shutdownLocal() {
	e.terminated = true
	for len(e.blocked) > 0 {
		for p := range e.blocked {
			p.wake() // the process observes terminated inside yield and unwinds
			break
		}
	}
}

// activate transfers control to the process until it yields or exits.
// It runs as an event on the engine goroutine.
func (p *Proc) activate() {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-p.eng.park
}

// yield hands control back to the engine and blocks until reactivated.
func (p *Proc) yield(reason string) {
	if p.eng.terminated || p.killed {
		panic(procKilled{})
	}
	p.eng.blocked[p] = reason
	p.eng.park <- struct{}{}
	<-p.resume
	delete(p.eng.blocked, p)
	if p.eng.terminated || p.killed {
		panic(procKilled{})
	}
}

// Kill marks the process for unwinding: at its next resumption —
// scheduled immediately if it is parked, its already-pending wake
// otherwise — it panics out through its blocking call and the goroutine
// exits, an engine Shutdown scoped to one process. Fault injection uses
// it to model a node whose software dies mid-run: the process gets no
// chance to run cleanup code at simulated times it would never have
// reached.
func (p *Proc) Kill() {
	if p.done || p.killed {
		return
	}
	p.killed = true
	if _, parked := p.eng.blocked[p]; parked {
		p.eng.At(p.eng.now, p.wake)
	}
}

// Killed reports whether Kill has been called on the process.
func (p *Proc) Killed() bool { return p.killed }

// IsKillPanic reports whether a recovered panic value is the engine's
// process-unwind signal (from Shutdown or Proc.Kill) rather than an
// application panic. Code that recovers around process bodies must
// either re-panic such values or treat them as cancellation — never as
// an application error.
func IsKillPanic(r any) bool {
	_, ok := r.(procKilled)
	return ok
}

// Name returns the process name given to Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.eng.now }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Sleep suspends the process for d of simulated time.
func (p *Proc) Sleep(d Time) {
	p.eng.After(d, p.wake)
	p.yield("sleep")
}

// SleepUntil suspends the process until time t.
func (p *Proc) SleepUntil(t Time) {
	p.eng.At(t, p.wake)
	p.yield("sleep")
}

func (p *Proc) wake() {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-p.eng.park
}

// Gate is a broadcast condition: processes Wait on it; Fire wakes all
// current waiters (at the current simulated time).
type Gate struct {
	eng     *Engine
	waiters []gateWaiter
	gen     uint64 // stamps timed waits; see WaitUntil
}

// gateWaiter is one parked process. gen is nonzero for timed waits: the
// deadline event identifies its waiter by generation, so a Fire (which
// clears the list) or an earlier deadline leaves nothing for a stale
// deadline event to find.
type gateWaiter struct {
	p   *Proc
	gen uint64
}

// NewGate creates a gate on the engine.
func NewGate(e *Engine) *Gate { return &Gate{eng: e} }

// Wait suspends p until the next Fire. The process must live on the
// gate's engine: blocking is shard-local state, and a cross-shard wait
// would let one shard's Fire mutate another shard's parked process.
func (g *Gate) Wait(p *Proc, what string) {
	if p.eng != g.eng {
		panic("event: Gate.Wait across engines (shard boundary)")
	}
	g.waiters = append(g.waiters, gateWaiter{p: p})
	p.yield(what)
}

// WaitUntil suspends p until the next Fire or until the deadline,
// whichever comes first, reporting whether the gate fired (false means
// the deadline passed). A deadline at or before the current time returns
// false without parking. This is the primitive under every recovery
// timeout: the deadline is a simulated-clock event, so timed waits are
// as deterministic as untimed ones.
func (g *Gate) WaitUntil(p *Proc, what string, deadline Time) bool {
	if p.eng != g.eng {
		panic("event: Gate.WaitUntil across engines (shard boundary)")
	}
	if deadline <= g.eng.now {
		return false
	}
	g.gen++
	gen := g.gen
	g.waiters = append(g.waiters, gateWaiter{p: p, gen: gen})
	timedOut := false
	g.eng.At(deadline, func() {
		if g.removeWaiter(gen) {
			timedOut = true
			p.wake()
		}
	})
	p.yield(what)
	return !timedOut
}

// removeWaiter drops the timed waiter with the given generation,
// reporting whether it was still parked on the gate.
func (g *Gate) removeWaiter(gen uint64) bool {
	for i := range g.waiters {
		if g.waiters[i].gen == gen {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// Fire wakes every process currently waiting on the gate.
func (g *Gate) Fire() {
	ws := g.waiters
	g.waiters = nil
	for _, w := range ws {
		g.eng.At(g.eng.now, w.p.wake)
	}
}

// Waiting reports the number of processes parked on the gate.
func (g *Gate) Waiting() int { return len(g.waiters) }

// Queue is an unbounded FIFO of items with optional delivery delay; the
// basic building block for modelled wires, mailboxes and DMA completion
// notifications. Items become visible to Get only at their delivery time.
type Queue[T any] struct {
	eng    *Engine
	name   string
	items  []T
	gate   Gate
	closed bool
}

// NewQueue creates a queue on the engine.
func NewQueue[T any](e *Engine, name string) *Queue[T] {
	return &Queue[T]{eng: e, name: name, gate: Gate{eng: e}}
}

// Put makes item available immediately.
func (q *Queue[T]) Put(item T) {
	q.items = append(q.items, item)
	q.gate.Fire()
}

// PutAfter makes item available d from now. Items put with different
// delays are delivered in arrival-time order (ties broken by put order).
func (q *Queue[T]) PutAfter(d Time, item T) {
	q.eng.After(d, func() { q.Put(item) })
}

// TryGet removes and returns the head item if one is available now.
func (q *Queue[T]) TryGet() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	item := q.items[0]
	q.items = q.items[1:]
	return item, true
}

// Get blocks the process until an item is available, then removes and
// returns it. If several processes wait, wake order follows wait order.
func (q *Queue[T]) Get(p *Proc) T {
	for {
		if item, ok := q.TryGet(); ok {
			return item
		}
		q.gate.Wait(p, "recv "+q.name)
	}
}

// GetTimeout is Get with a deadline d from now: it returns the next item
// and true, or the zero value and false once the deadline passes with the
// queue still empty. A final poll after the deadline catches an item
// delivered by an event at exactly the deadline timestamp.
func (q *Queue[T]) GetTimeout(p *Proc, d Time) (T, bool) {
	deadline := q.eng.now + d
	for {
		if item, ok := q.TryGet(); ok {
			return item, true
		}
		if !q.gate.WaitUntil(p, "recv "+q.name, deadline) {
			return q.TryGet()
		}
	}
}

// Len reports how many items are currently available.
func (q *Queue[T]) Len() int { return len(q.items) }
