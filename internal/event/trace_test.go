package event

import (
	"encoding/json"
	"strings"
	"testing"
)

type traceTestHandler struct{ hits int }

func (h *traceTestHandler) HandleEvent(arg uint64) { h.hits += int(arg) }

func TestRecorderCapturesBothTiers(t *testing.T) {
	e := New()
	rec := NewRecorder(8)
	e.SetRecorder(rec)
	if e.Recorder() != rec {
		t.Fatal("Recorder accessor")
	}
	h := &traceTestHandler{}
	e.After(2*Nanosecond, func() {})
	e.AfterHandler(5*Nanosecond, h, 7)
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if rec.Total() != 2 {
		t.Fatalf("recorded %d events", rec.Total())
	}
	tail := rec.Tail(0)
	if len(tail) != 2 {
		t.Fatalf("tail %v", tail)
	}
	if tail[0].At != 2*Nanosecond || tail[0].Kind != TraceFunc || tail[0].Actor() != "func" {
		t.Fatalf("record 0: %v", tail[0])
	}
	if tail[1].At != 5*Nanosecond || tail[1].Kind != TraceHandler || tail[1].Arg != 7 {
		t.Fatalf("record 1: %v", tail[1])
	}
	if !strings.Contains(tail[1].Actor(), "traceTestHandler") {
		t.Fatalf("actor %q", tail[1].Actor())
	}
	// Records arrive in dispatch order: seq strictly increasing.
	if tail[0].Seq >= tail[1].Seq {
		t.Fatalf("seq order: %d then %d", tail[0].Seq, tail[1].Seq)
	}
}

func TestRecorderRingWraps(t *testing.T) {
	e := New()
	rec := NewRecorder(4)
	e.SetRecorder(rec)
	for i := 0; i < 10; i++ {
		e.After(Time(i+1)*Nanosecond, func() {})
	}
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if rec.Total() != 10 || rec.Cap() != 4 {
		t.Fatalf("total %d cap %d", rec.Total(), rec.Cap())
	}
	// Only the last 4 survive, oldest first.
	tail := rec.Tail(0)
	if len(tail) != 4 {
		t.Fatalf("tail %v", tail)
	}
	for i, r := range tail {
		if want := Time(7+i) * Nanosecond; r.At != want {
			t.Fatalf("tail[%d].At = %v, want %v", i, r.At, want)
		}
	}
	// A bounded tail trims from the old end.
	last := rec.Tail(2)
	if len(last) != 2 || last[1].At != 10*Nanosecond {
		t.Fatalf("Tail(2) = %v", last)
	}
}

func TestRecorderDoesNotPerturbDispatch(t *testing.T) {
	// The zero-perturbation contract at the engine level: the same
	// workload with and without a recorder dispatches the same events at
	// the same times. (The machine-level digest test is in
	// internal/machine; this is the unit version.)
	runOnce := func(withRec bool) (uint64, []Time) {
		e := New()
		if withRec {
			e.SetRecorder(NewRecorder(16))
		}
		var at []Time
		e.SetTracer(func(t Time) { at = append(at, t) })
		q := NewQueue[int](e, "q")
		e.SpawnDaemon("rx", func(p *Proc) {
			for {
				q.Get(p)
			}
		})
		e.Spawn("tx", func(p *Proc) {
			p.Sleep(3 * Nanosecond)
			q.Put(1)
			p.Sleep(Nanosecond)
			q.Put(2)
		})
		if err := e.RunAll(); err != nil {
			panic(err)
		}
		e.Shutdown()
		return e.Executed(), at
	}
	n1, t1 := runOnce(false)
	n2, t2 := runOnce(true)
	if n1 != n2 {
		t.Fatalf("event counts differ: %d without, %d with recorder", n1, n2)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("dispatch %d at %v without recorder, %v with", i, t1[i], t2[i])
		}
	}
}

func TestRecorderDumpAndChromeTrace(t *testing.T) {
	e := New()
	rec := NewRecorder(8)
	e.SetRecorder(rec)
	h := &traceTestHandler{}
	e.AfterHandler(3*Nanosecond, h, 1)
	e.After(4*Nanosecond, func() {})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	var dump strings.Builder
	rec.Dump(&dump, 0)
	if !strings.Contains(dump.String(), "2 of 2 recorded events") ||
		!strings.Contains(dump.String(), "traceTestHandler") {
		t.Fatalf("dump:\n%s", dump.String())
	}
	var ct strings.Builder
	if err := rec.WriteChromeTrace(&ct, 0); err != nil {
		t.Fatal(err)
	}
	// The export must be valid JSON in Chrome trace-event shape.
	var parsed struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Args struct {
				Seq  uint64 `json:"seq"`
				Kind string `json:"kind"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(ct.String()), &parsed); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, ct.String())
	}
	if len(parsed.TraceEvents) != 2 || parsed.TraceEvents[0].Ph != "i" {
		t.Fatalf("trace events: %+v", parsed.TraceEvents)
	}
	if parsed.TraceEvents[0].Args.Kind != "handler" || parsed.TraceEvents[1].Args.Kind != "func" {
		t.Fatalf("kinds: %+v", parsed.TraceEvents)
	}
	if parsed.TraceEvents[0].Ts != 3e-3 { // 3ns in microseconds
		t.Fatalf("ts = %g", parsed.TraceEvents[0].Ts)
	}
}
