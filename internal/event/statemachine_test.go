package event

import (
	"runtime"
	"testing"
	"time"
)

func TestStateMachineGotoAndSleep(t *testing.T) {
	e := New()
	sm := e.NewStateMachine("tx", "idle")
	if sm.Name() != "tx" || sm.State() != "idle" || sm.Engine() != e {
		t.Fatalf("bad initial machine: %q %q", sm.Name(), sm.State())
	}
	var fired []Time
	sm.Goto("run")
	sm.Sleep(10*Nanosecond, func() { fired = append(fired, e.Now()) })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != 10*Nanosecond {
		t.Fatalf("timer fired at %v", fired)
	}
	if sm.State() != "run" {
		t.Fatalf("state = %q", sm.State())
	}
}

func TestStateMachineGotoCancelsSleep(t *testing.T) {
	// A state transition invalidates timers armed in the old state: the
	// continuation-tier analogue of a coroutine abandoning a sleep path.
	e := New()
	sm := e.NewStateMachine("tx", "window")
	stale := false
	sm.Sleep(Microsecond, func() { stale = true })
	e.After(10*Nanosecond, func() { sm.Goto("run") })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if stale {
		t.Fatal("timer from a left state fired")
	}
	// A timer armed in the new state still fires.
	ok := false
	sm.Sleep(Nanosecond, func() { ok = true })
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("timer in current state did not fire")
	}
}

func TestDumpStateMachines(t *testing.T) {
	e := New()
	// Register out of name order: the dump must sort.
	e.NewStateMachine("b", "run")
	sm := e.NewStateMachine("a", "idle")
	e.After(10*Nanosecond, func() { sm.Goto("tx") })
	e.After(25*Nanosecond, func() {}) // advance the clock past the transition
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := sm.StateAge(); got != 15*Nanosecond {
		t.Fatalf("state age = %v, want 15ns", got)
	}
	dump := e.DumpStateMachines()
	if len(dump) != 2 {
		t.Fatalf("dump = %v", dump)
	}
	// Sorted by name, each line carrying state and current state age.
	if dump[0] != "a: tx (age 15ns)" {
		t.Fatalf("dump[0] = %q", dump[0])
	}
	if dump[1] != "b: run (age 25ns)" {
		t.Fatalf("dump[1] = %q", dump[1])
	}
}

func TestExecutedAndTracer(t *testing.T) {
	e := New()
	var traced []Time
	e.SetTracer(func(at Time) { traced = append(traced, at) })
	e.After(5*Nanosecond, func() {})
	e.After(2*Nanosecond, func() {})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if e.Executed() != 2 {
		t.Fatalf("executed = %d", e.Executed())
	}
	if len(traced) != 2 || traced[0] != 2*Nanosecond || traced[1] != 5*Nanosecond {
		t.Fatalf("trace = %v", traced)
	}
}

func TestShutdownUnwindsParkedProcs(t *testing.T) {
	e := New()
	q := NewQueue[int](e, "never")
	e.SpawnDaemon("rx", func(p *Proc) {
		for {
			q.Get(p)
		}
	})
	e.Spawn("sleeper", func(p *Proc) { p.Sleep(Second) })
	// Run to a horizon short of the sleeper's wake: both procs park.
	if err := e.Run(Microsecond); err != nil {
		t.Fatal(err)
	}
	if e.LiveProcs() != 2 {
		t.Fatalf("live = %d before shutdown", e.LiveProcs())
	}
	e.Shutdown()
	if e.LiveProcs() != 0 {
		t.Fatalf("live = %d after shutdown", e.LiveProcs())
	}
}

func TestShutdownLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		e := New()
		q := NewQueue[int](e, "daemon")
		e.SpawnDaemon("rx", func(p *Proc) {
			for {
				q.Get(p)
			}
		})
		e.Spawn("tx", func(p *Proc) {
			p.Sleep(Nanosecond)
			q.Put(i)
		})
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		e.Shutdown()
	}
	// Exited goroutines disappear from the count a beat after their final
	// park handshake; poll briefly rather than flake.
	deadline := time.Now().Add(2 * time.Second)                          //qcdoclint:walltime-ok leak poll bounds host runtime, not simulated time
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) { //qcdoclint:walltime-ok leak poll bounds host runtime, not simulated time
		runtime.Gosched()
		time.Sleep(time.Millisecond) //qcdoclint:walltime-ok host-clock backoff between goroutine-count polls
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines: %d before, %d after 8 engine lifecycles", before, got)
	}
}
