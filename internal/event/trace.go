package event

// This file is the flight recorder: a fixed-size ring of trace records
// captured in the engine's dispatch loop, for reconstructing "what was
// the machine doing" after a hang, a panic, or a surprising result.
//
// Recording obeys the telemetry zero-perturbation contract (DESIGN.md
// §10): the recorder schedules nothing and allocates nothing per event —
// each dispatch overwrites one preallocated ring slot — so the simulated
// event stream is bit-identical with the recorder attached or not. The
// expensive parts (naming actors, JSON export) happen only at dump time.

import (
	"fmt"
	"io"
)

// TraceKind classifies a dispatched event.
type TraceKind uint8

const (
	// TraceFunc is a closure event (At/After and the coroutine tier's
	// activation/wake events).
	TraceFunc TraceKind = iota
	// TraceHandler is a pre-bound Handler event (the continuation tier's
	// hot paths: wires, link pumps, timers).
	TraceHandler
)

func (k TraceKind) String() string {
	if k == TraceHandler {
		return "handler"
	}
	return "func"
}

// TraceRecord is one dispatched event: its time, stable sequence number,
// kind, and — for handler events — the target and argument.
type TraceRecord struct {
	At   Time
	Seq  uint64
	Kind TraceKind
	Arg  uint64
	h    Handler
}

// Actor names the event target: the dynamic type of the handler, or
// "func" for closure events (closures have no useful identity). The
// type formatting runs only here, never on the record path.
func (r TraceRecord) Actor() string {
	if r.Kind == TraceHandler && r.h != nil {
		return fmt.Sprintf("%T", r.h)
	}
	return "func"
}

func (r TraceRecord) String() string {
	if r.Kind == TraceHandler {
		return fmt.Sprintf("%v seq=%d %s arg=%d", r.At, r.Seq, r.Actor(), r.Arg)
	}
	return fmt.Sprintf("%v seq=%d func", r.At, r.Seq)
}

// DefaultRecorderSize is the ring capacity when none is given.
const DefaultRecorderSize = 4096

// Recorder is the flight-recorder ring. Attach it to an engine with
// SetRecorder; it keeps the most recent Cap() dispatched events.
type Recorder struct {
	ring  []TraceRecord
	total uint64 // events recorded since creation
}

// NewRecorder creates a recorder holding the last size events (size <= 0
// selects DefaultRecorderSize).
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultRecorderSize
	}
	return &Recorder{ring: make([]TraceRecord, size)}
}

// record stores one dispatch into the ring. Called from Engine.Run with
// the item by value so nothing escapes to the heap.
//qcdoc:noalloc
func (r *Recorder) record(at Time, seq uint64, fn func(), h Handler, arg uint64) {
	slot := &r.ring[r.total%uint64(len(r.ring))]
	slot.At = at
	slot.Seq = seq
	slot.Arg = arg
	if fn != nil {
		slot.Kind = TraceFunc
		slot.h = nil
	} else {
		slot.Kind = TraceHandler
		slot.h = h
	}
	r.total++
}

// Total reports how many events have been recorded since creation
// (including ones the ring has since overwritten).
func (r *Recorder) Total() uint64 { return r.total }

// Cap reports the ring capacity.
func (r *Recorder) Cap() int { return len(r.ring) }

// Tail returns up to n of the most recent records, oldest first. It
// copies (a cold-path allocation); the ring keeps recording.
func (r *Recorder) Tail(n int) []TraceRecord {
	have := r.total
	if have > uint64(len(r.ring)) {
		have = uint64(len(r.ring))
	}
	if n > 0 && uint64(n) < have {
		have = uint64(n)
	}
	out := make([]TraceRecord, have)
	for i := uint64(0); i < have; i++ {
		out[i] = r.ring[(r.total-have+i)%uint64(len(r.ring))]
	}
	return out
}

// Dump writes up to n of the most recent records to w, oldest first —
// the on-demand (or deferred-on-panic) human-readable dump.
func (r *Recorder) Dump(w io.Writer, n int) {
	tail := r.Tail(n)
	fmt.Fprintf(w, "flight recorder: %d of %d recorded events\n", len(tail), r.total)
	for _, rec := range tail {
		fmt.Fprintf(w, "  %s\n", rec)
	}
}

// WriteChromeTrace exports up to n of the most recent records (0 = the
// whole ring) as Chrome trace-event JSON ("instant" events, simulated
// microseconds on the timeline) loadable in chrome://tracing or Perfetto.
func (r *Recorder) WriteChromeTrace(w io.Writer, n int) error {
	tail := r.Tail(n)
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, rec := range tail {
		sep := ","
		if i == len(tail)-1 {
			sep = ""
		}
		_, err := fmt.Fprintf(w,
			"{\"name\":%q,\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":0,\"ts\":%.6f,\"args\":{\"seq\":%d,\"kind\":%q,\"arg\":%d}}%s\n",
			rec.Actor(), float64(rec.At)/1e6, rec.Seq, rec.Kind.String(), rec.Arg, sep)
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}
