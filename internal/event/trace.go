package event

// This file is the flight recorder: fixed-size rings of trace records
// captured in the engines' dispatch loops, for reconstructing "what was
// the machine doing" after a hang, a panic, or a surprising result.
//
// Recording obeys the telemetry zero-perturbation contract (DESIGN.md
// §10): the recorder schedules nothing and allocates nothing per event —
// each dispatch overwrites one preallocated ring slot — so the simulated
// event stream is bit-identical with the recorder attached or not. The
// expensive parts (naming actors, JSON export) happen only at dump time.
//
// With a sharded cluster the recorder holds one ring per shard, each
// written only by its own shard's dispatch loop (no cross-shard writes,
// no locks). Tail, Dump and WriteChromeTrace merge the rings by
// simulated time with a stable (At, Shard, Seq) tie-break, so the
// exported trace is a deterministic function of the simulation — byte
// identical at any worker count.

import (
	"fmt"
	"io"
	"sort"
)

// TraceKind classifies a dispatched event.
type TraceKind uint8

const (
	// TraceFunc is a closure event (At/After and the coroutine tier's
	// activation/wake events).
	TraceFunc TraceKind = iota
	// TraceHandler is a pre-bound Handler event (the continuation tier's
	// hot paths: wires, link pumps, timers).
	TraceHandler
	// TracePayload is a cross-shard payload event (a PayloadHandler
	// delivery that crossed a shard boundary through the cluster
	// mailboxes).
	TracePayload
)

func (k TraceKind) String() string {
	switch k {
	case TraceHandler:
		return "handler"
	case TracePayload:
		return "payload"
	}
	return "func"
}

// TraceRecord is one dispatched event: its time, shard, stable per-shard
// sequence number, kind, and — for handler events — the target and
// argument.
type TraceRecord struct {
	At    Time
	Seq   uint64
	Shard int
	Kind  TraceKind
	Arg   uint64
	h     Handler
	ph    PayloadHandler
}

// Actor names the event target: the dynamic type of the handler, or
// "func" for closure events (closures have no useful identity). The
// type formatting runs only here, never on the record path.
func (r TraceRecord) Actor() string {
	switch {
	case r.Kind == TraceHandler && r.h != nil:
		return fmt.Sprintf("%T", r.h)
	case r.Kind == TracePayload && r.ph != nil:
		return fmt.Sprintf("%T", r.ph)
	}
	return "func"
}

func (r TraceRecord) String() string {
	switch r.Kind {
	case TraceHandler, TracePayload:
		return fmt.Sprintf("%v shard=%d seq=%d %s arg=%d", r.At, r.Shard, r.Seq, r.Actor(), r.Arg)
	}
	return fmt.Sprintf("%v shard=%d seq=%d func", r.At, r.Shard, r.Seq)
}

// DefaultRecorderSize is the per-shard ring capacity when none is given.
const DefaultRecorderSize = 4096

// shardRing is one shard's ring. Only that shard's dispatch loop writes
// it; merging happens at dump time on quiesced engines.
type shardRing struct {
	shard int
	ring  []TraceRecord
	total uint64 // events recorded since creation
}

// record stores one dispatch into the ring. Called from the dispatch
// loop with the item by value so nothing escapes to the heap.
//qcdoc:noalloc
func (sr *shardRing) record(at Time, seq uint64, fn func(), h Handler, arg uint64) {
	slot := &sr.ring[sr.total%uint64(len(sr.ring))]
	slot.At = at
	slot.Seq = seq
	slot.Shard = sr.shard
	slot.Arg = arg
	slot.ph = nil
	if fn != nil {
		slot.Kind = TraceFunc
		slot.h = nil
	} else {
		slot.Kind = TraceHandler
		slot.h = h
	}
	sr.total++
}

// recordPayload stores one cross-shard payload dispatch into the ring.
//qcdoc:noalloc
func (sr *shardRing) recordPayload(at Time, seq uint64, h PayloadHandler, arg uint64) {
	slot := &sr.ring[sr.total%uint64(len(sr.ring))]
	slot.At = at
	slot.Seq = seq
	slot.Shard = sr.shard
	slot.Arg = arg
	slot.Kind = TracePayload
	slot.h = nil
	slot.ph = h
	sr.total++
}

// tail returns up to n of this ring's most recent records, oldest first.
func (sr *shardRing) tail(n int) []TraceRecord {
	have := sr.total
	if have > uint64(len(sr.ring)) {
		have = uint64(len(sr.ring))
	}
	if n > 0 && uint64(n) < have {
		have = uint64(n)
	}
	out := make([]TraceRecord, have)
	for i := uint64(0); i < have; i++ {
		out[i] = sr.ring[(sr.total-have+i)%uint64(len(sr.ring))]
	}
	return out
}

// Recorder is the flight recorder. Attach it to an engine with
// SetRecorder; each shard that records through it gets its own ring
// keeping that shard's most recent Cap() dispatched events.
type Recorder struct {
	cap   int
	rings []*shardRing
}

// NewRecorder creates a recorder whose rings hold the last size events
// per shard (size <= 0 selects DefaultRecorderSize).
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultRecorderSize
	}
	return &Recorder{cap: size}
}

// ringFor returns (creating on first use) the ring for a shard index.
func (r *Recorder) ringFor(shard int) *shardRing {
	for _, sr := range r.rings {
		if sr.shard == shard {
			return sr
		}
	}
	sr := &shardRing{shard: shard, ring: make([]TraceRecord, r.cap)}
	r.rings = append(r.rings, sr)
	sort.Slice(r.rings, func(i, j int) bool { return r.rings[i].shard < r.rings[j].shard })
	return sr
}

// Total reports how many events have been recorded since creation across
// all shards (including ones the rings have since overwritten).
func (r *Recorder) Total() uint64 {
	var t uint64
	for _, sr := range r.rings {
		t += sr.total
	}
	return t
}

// Cap reports the per-shard ring capacity.
func (r *Recorder) Cap() int { return r.cap }

// Tail returns up to n of the most recent records (0 = everything still
// in the rings), merged across shards in (At, Shard, Seq) order. It
// copies (a cold-path call on quiesced engines); the rings keep
// recording.
func (r *Recorder) Tail(n int) []TraceRecord {
	var out []TraceRecord
	for _, sr := range r.rings {
		out = append(out, sr.tail(0)...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Seq < b.Seq
	})
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Dump writes up to n of the most recent records to w, oldest first —
// the on-demand (or deferred-on-panic) human-readable dump. Records
// from all shards interleave in simulated-time order.
func (r *Recorder) Dump(w io.Writer, n int) {
	tail := r.Tail(n)
	fmt.Fprintf(w, "flight recorder: %d of %d recorded events\n", len(tail), r.Total())
	for _, rec := range tail {
		fmt.Fprintf(w, "  %s\n", rec)
	}
}

// WriteChromeTrace exports up to n of the most recent records (0 = the
// whole ring set) as Chrome trace-event JSON ("instant" events,
// simulated microseconds on the timeline) loadable in chrome://tracing
// or Perfetto. Each shard appears as its own tid; record order is the
// deterministic (At, Shard, Seq) merge, so the export is byte-identical
// for a given simulation at any worker count.
func (r *Recorder) WriteChromeTrace(w io.Writer, n int) error {
	tail := r.Tail(n)
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, rec := range tail {
		sep := ","
		if i == len(tail)-1 {
			sep = ""
		}
		_, err := fmt.Fprintf(w,
			"{\"name\":%q,\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":%d,\"ts\":%.6f,\"args\":{\"seq\":%d,\"kind\":%q,\"arg\":%d}}%s\n",
			rec.Actor(), rec.Shard, float64(rec.At)/1e6, rec.Seq, rec.Kind.String(), rec.Arg, sep)
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}
