package event

// This file is the flight recorder: fixed-size rings of trace records
// captured in the engines' dispatch loops, for reconstructing "what was
// the machine doing" after a hang, a panic, or a surprising result.
//
// Recording obeys the telemetry zero-perturbation contract (DESIGN.md
// §10): the recorder schedules nothing and allocates nothing per event —
// each dispatch overwrites one preallocated ring slot — so the simulated
// event stream is bit-identical with the recorder attached or not. The
// expensive parts (naming actors, JSON export) happen only at dump time.
//
// With a sharded cluster the recorder holds one ring per shard, each
// written only by its own shard's dispatch loop (no cross-shard writes,
// no locks). Tail, Dump and WriteChromeTrace merge the rings by
// simulated time with a stable (At, Shard, Seq) tie-break, so the
// exported trace is a deterministic function of the simulation — byte
// identical at any worker count.

import (
	"fmt"
	"io"
	"sort"
)

// TraceKind classifies a dispatched event.
type TraceKind uint8

const (
	// TraceFunc is a closure event (At/After and the coroutine tier's
	// activation/wake events).
	TraceFunc TraceKind = iota
	// TraceHandler is a pre-bound Handler event (the continuation tier's
	// hot paths: wires, link pumps, timers).
	TraceHandler
	// TracePayload is a cross-shard payload event (a PayloadHandler
	// delivery that crossed a shard boundary through the cluster
	// mailboxes).
	TracePayload
	// TraceSpanBegin / TraceSpanEnd are span marks dropped by
	// instrumented code (Engine.MarkSpanBegin/End): not events at all,
	// but annotations sharing the enclosing event's time and sequence
	// number, tagged with a causal flow ID so a whole collective or
	// recovery sequence exports as one Chrome-trace flow.
	TraceSpanBegin
	TraceSpanEnd
)

func (k TraceKind) String() string {
	switch k {
	case TraceHandler:
		return "handler"
	case TracePayload:
		return "payload"
	case TraceSpanBegin:
		return "span-begin"
	case TraceSpanEnd:
		return "span-end"
	}
	return "func"
}

// TraceRecord is one dispatched event: its time, shard, stable per-shard
// sequence number, kind, causal flow ID, and — for handler events — the
// target and argument.
type TraceRecord struct {
	At    Time
	Seq   uint64
	Shard int
	Kind  TraceKind
	Arg   uint64
	Flow  uint64
	h     Handler
	ph    PayloadHandler
	name  string // span label (static string; set only by markSpan)
}

// Actor names the event target: the span label for span marks, the
// dynamic type of the handler, or "func" for closure events (closures
// have no useful identity). The type formatting runs only here, never
// on the record path.
func (r TraceRecord) Actor() string {
	switch {
	case r.Kind == TraceSpanBegin || r.Kind == TraceSpanEnd:
		return r.name
	case r.Kind == TraceHandler && r.h != nil:
		return fmt.Sprintf("%T", r.h)
	case r.Kind == TracePayload && r.ph != nil:
		return fmt.Sprintf("%T", r.ph)
	}
	return "func"
}

func (r TraceRecord) String() string {
	switch r.Kind {
	case TraceHandler, TracePayload:
		return fmt.Sprintf("%v shard=%d seq=%d %s arg=%d", r.At, r.Shard, r.Seq, r.Actor(), r.Arg)
	case TraceSpanBegin, TraceSpanEnd:
		return fmt.Sprintf("%v shard=%d seq=%d %s %s flow=%#x", r.At, r.Shard, r.Seq, r.Kind, r.name, r.Flow)
	}
	return fmt.Sprintf("%v shard=%d seq=%d func", r.At, r.Shard, r.Seq)
}

// DefaultRecorderSize is the per-shard ring capacity when none is given.
const DefaultRecorderSize = 4096

// shardRing is one shard's ring. Only that shard's dispatch loop writes
// it; merging happens at dump time on quiesced engines.
type shardRing struct {
	shard int
	ring  []TraceRecord
	total uint64 // events recorded since creation
}

// record stores one dispatch into the ring. Called from the dispatch
// loop with the item by value so nothing escapes to the heap.
//qcdoc:noalloc
func (sr *shardRing) record(at Time, seq, flow uint64, fn func(), h Handler, arg uint64) {
	slot := &sr.ring[sr.total%uint64(len(sr.ring))]
	slot.At = at
	slot.Seq = seq
	slot.Shard = sr.shard
	slot.Arg = arg
	slot.Flow = flow
	slot.ph = nil
	slot.name = ""
	if fn != nil {
		slot.Kind = TraceFunc
		slot.h = nil
	} else {
		slot.Kind = TraceHandler
		slot.h = h
	}
	sr.total++
}

// recordPayload stores one cross-shard payload dispatch into the ring.
//qcdoc:noalloc
func (sr *shardRing) recordPayload(at Time, seq, flow uint64, h PayloadHandler, arg uint64) {
	slot := &sr.ring[sr.total%uint64(len(sr.ring))]
	slot.At = at
	slot.Seq = seq
	slot.Shard = sr.shard
	slot.Arg = arg
	slot.Flow = flow
	slot.Kind = TracePayload
	slot.h = nil
	slot.ph = h
	slot.name = ""
	sr.total++
}

// markSpan stores one span annotation into the ring, reusing the
// enclosing event's time and sequence number.
//qcdoc:noalloc
func (sr *shardRing) markSpan(at Time, seq, flow uint64, name string, kind TraceKind) {
	slot := &sr.ring[sr.total%uint64(len(sr.ring))]
	slot.At = at
	slot.Seq = seq
	slot.Shard = sr.shard
	slot.Arg = 0
	slot.Flow = flow
	slot.Kind = kind
	slot.h = nil
	slot.ph = nil
	slot.name = name
	sr.total++
}

// tail returns up to n of this ring's most recent records, oldest first.
func (sr *shardRing) tail(n int) []TraceRecord {
	have := sr.total
	if have > uint64(len(sr.ring)) {
		have = uint64(len(sr.ring))
	}
	if n > 0 && uint64(n) < have {
		have = uint64(n)
	}
	out := make([]TraceRecord, have)
	for i := uint64(0); i < have; i++ {
		out[i] = sr.ring[(sr.total-have+i)%uint64(len(sr.ring))]
	}
	return out
}

// Recorder is the flight recorder. Attach it to an engine with
// SetRecorder; each shard that records through it gets its own ring
// keeping that shard's most recent Cap() dispatched events.
type Recorder struct {
	cap     int
	machine int // Chrome-trace pid namespace; see SetMachineID
	rings   []*shardRing
}

// NewRecorder creates a recorder whose rings hold the last size events
// per shard (size <= 0 selects DefaultRecorderSize).
func NewRecorder(size int) *Recorder {
	if size <= 0 {
		size = DefaultRecorderSize
	}
	return &Recorder{cap: size}
}

// SetMachineID sets the identity this recorder's events export under:
// the Chrome-trace pid. Fleet runs give each machine's recorder its own
// ID so merged multi-machine traces don't collide on pid 0.
func (r *Recorder) SetMachineID(id int) { r.machine = id }

// MachineID returns the Chrome-trace pid namespace (0 by default).
func (r *Recorder) MachineID() int { return r.machine }

// ringFor returns (creating on first use) the ring for a shard index.
func (r *Recorder) ringFor(shard int) *shardRing {
	for _, sr := range r.rings {
		if sr.shard == shard {
			return sr
		}
	}
	sr := &shardRing{shard: shard, ring: make([]TraceRecord, r.cap)}
	r.rings = append(r.rings, sr)
	sort.Slice(r.rings, func(i, j int) bool { return r.rings[i].shard < r.rings[j].shard })
	return sr
}

// Total reports how many events have been recorded since creation across
// all shards (including ones the rings have since overwritten).
func (r *Recorder) Total() uint64 {
	var t uint64
	for _, sr := range r.rings {
		t += sr.total
	}
	return t
}

// Cap reports the per-shard ring capacity.
func (r *Recorder) Cap() int { return r.cap }

// Tail returns up to n of the most recent records (0 = everything still
// in the rings), merged across shards in (At, Shard, Seq) order. It
// copies (a cold-path call on quiesced engines); the rings keep
// recording.
func (r *Recorder) Tail(n int) []TraceRecord {
	var out []TraceRecord
	for _, sr := range r.rings {
		out = append(out, sr.tail(0)...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Seq < b.Seq
	})
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Dump writes up to n of the most recent records to w, oldest first —
// the on-demand (or deferred-on-panic) human-readable dump. Records
// from all shards interleave in simulated-time order.
func (r *Recorder) Dump(w io.Writer, n int) {
	tail := r.Tail(n)
	fmt.Fprintf(w, "flight recorder: %d of %d recorded events\n", len(tail), r.Total())
	for _, rec := range tail {
		fmt.Fprintf(w, "  %s\n", rec)
	}
}

// WriteChromeTrace exports up to n of the most recent records (0 = the
// whole ring set) as Chrome trace-event JSON loadable in chrome://tracing
// or Perfetto: dispatched events as "instant" events, span marks as
// async "b"/"e" pairs keyed by their causal flow ID (so one global sum
// or recovery sequence renders as a single flow across shards). The
// recorder's machine ID is the pid, each shard its own tid. Record
// order is the deterministic (At, pid, Shard, Seq) merge with ring
// insertion order breaking remaining ties — itself the shard's
// deterministic execution order — so the export is byte-identical for a
// given simulation at any worker count.
func (r *Recorder) WriteChromeTrace(w io.Writer, n int) error {
	return writeChromeJSON(w, mergedTail([]*Recorder{r}, n))
}

// WriteChromeTraceMerged exports several machines' recorders (e.g. one
// per fleet run) into a single Chrome trace, pids namespaced by each
// recorder's machine ID. Nil recorders are skipped. The merge key is
// (At, pid, Shard, Seq) with stable insertion order below that, so the
// combined export is byte-stable across runs.
func WriteChromeTraceMerged(w io.Writer, recs []*Recorder, n int) error {
	return writeChromeJSON(w, mergedTail(recs, n))
}

// machRec pairs a trace record with its machine (pid) namespace.
type machRec struct {
	pid int
	rec TraceRecord
}

// mergedTail flattens and deterministically orders the recorders' rings.
func mergedTail(recs []*Recorder, n int) []machRec {
	var out []machRec
	for _, r := range recs {
		if r == nil {
			continue
		}
		for _, tr := range r.Tail(0) {
			out = append(out, machRec{pid: r.machine, rec: tr})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.rec.At != b.rec.At {
			return a.rec.At < b.rec.At
		}
		if a.pid != b.pid {
			return a.pid < b.pid
		}
		if a.rec.Shard != b.rec.Shard {
			return a.rec.Shard < b.rec.Shard
		}
		return a.rec.Seq < b.rec.Seq
	})
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

func writeChromeJSON(w io.Writer, tail []machRec) error {
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, mr := range tail {
		sep := ","
		if i == len(tail)-1 {
			sep = ""
		}
		rec := mr.rec
		ts := float64(rec.At) / 1e6
		var err error
		switch rec.Kind {
		case TraceSpanBegin, TraceSpanEnd:
			ph := "b"
			if rec.Kind == TraceSpanEnd {
				ph = "e"
			}
			_, err = fmt.Fprintf(w,
				"{\"name\":%q,\"cat\":\"flow\",\"ph\":%q,\"id\":%d,\"pid\":%d,\"tid\":%d,\"ts\":%.6f,\"args\":{\"seq\":%d}}%s\n",
				rec.Actor(), ph, rec.Flow, mr.pid, rec.Shard, ts, rec.Seq, sep)
		default:
			_, err = fmt.Fprintf(w,
				"{\"name\":%q,\"ph\":\"i\",\"s\":\"g\",\"pid\":%d,\"tid\":%d,\"ts\":%.6f,\"args\":{\"seq\":%d,\"kind\":%q,\"arg\":%d,\"flow\":%d}}%s\n",
				rec.Actor(), mr.pid, rec.Shard, ts, rec.Seq, rec.Kind.String(), rec.Arg, rec.Flow, sep)
		}
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// MarkSpanBegin drops a span-begin annotation into the flight recorder
// at the current time under the current flow. A no-op without a
// recorder; never an event, never an allocation (name must be a static
// string), so instrumented code behaves identically with or without a
// recorder attached.
//
//qcdoc:noalloc
func (e *Engine) MarkSpanBegin(name string) {
	if e.ring != nil {
		e.ring.markSpan(e.now, e.lastSeq, e.curFlow, name, TraceSpanBegin)
	}
}

// MarkSpanEnd drops the matching span-end annotation; see MarkSpanBegin.
//
//qcdoc:noalloc
func (e *Engine) MarkSpanEnd(name string) {
	if e.ring != nil {
		e.ring.markSpan(e.now, e.lastSeq, e.curFlow, name, TraceSpanEnd)
	}
}
