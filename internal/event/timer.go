package event

// Timer is a reusable one-shot timer bound to a fixed callback — the
// continuation tier's pooled replacement for the "After(d, closure)"
// pattern on per-word hot paths. The callback closure is allocated once,
// when the timer is created; arming, re-arming, stopping, and firing
// allocate nothing.
//
// A Timer carries a generation counter, the same idiom StateMachine uses
// for its state-scoped sleeps: every Arm or Stop bumps the generation,
// so a scheduled firing whose stamp no longer matches is a stale event
// and does nothing. Re-arming therefore implicitly cancels the previous
// arming — exactly the semantics the SCU's acknowledgement-timeout
// registers need (each window-head pop restarts the clock).
//
// Timers are single-shot: the callback runs once per Arm. Periodic
// behaviour is the callback re-arming its own timer.
type Timer struct {
	eng *Engine
	fn  func()
	gen uint64
}

// NewTimer creates a timer on the engine with a fixed callback. This is
// the only allocating step of a timer's life; create timers at
// construction time and reuse them.
func (e *Engine) NewTimer(fn func()) *Timer {
	return &Timer{eng: e, fn: fn}
}

// Arm schedules the callback to run d from now, cancelling any earlier
// arming still in flight.
//qcdoc:noalloc
func (t *Timer) Arm(d Time) {
	t.gen++
	t.eng.AfterHandler(d, t, t.gen)
}

// ArmAt schedules the callback to run at time at, cancelling any earlier
// arming still in flight.
//qcdoc:noalloc
func (t *Timer) ArmAt(at Time) {
	t.gen++
	t.eng.AtHandler(at, t, t.gen)
}

// Stop cancels the pending arming, if any. The already-queued event
// still dispatches but matches no generation and does nothing.
//qcdoc:noalloc
func (t *Timer) Stop() { t.gen++ }

// HandleEvent dispatches a scheduled firing; stale generations are
// ignored. It implements Handler and is not meant to be called directly.
//qcdoc:noalloc
func (t *Timer) HandleEvent(gen uint64) {
	if t.gen == gen {
		t.fn()
	}
}
