package event

// Storage is the recyclable backing memory of an engine: the event-heap
// and cross-shard-heap arrays that grow to a simulation's high-water
// mark and, on a fleet host building hundreds of machines, are worth
// keeping warm across engine lifetimes instead of re-growing from
// nothing every time. A Storage is inert — it schedules nothing and
// holds no references (Release clears every item, so a pooled Storage
// cannot pin a dead machine's callbacks or timers in memory). The zero
// value is valid and simply provides no preallocated capacity.
//
// The intended cycle (machine.Pool drives it):
//
//	st := pool.get()            // possibly from an earlier machine
//	eng := event.NewWith(st)    // engine reuses the arrays
//	... simulate ...
//	eng.Shutdown()
//	pool.put(eng.Release())     // arrays go back, cleared
type Storage struct {
	events  eventHeap
	xevents payloadHeap
}

// Cap reports the preallocated event-heap capacity (the timer/event
// arena size a NewWith engine starts with).
func (s Storage) Cap() int { return cap(s.events) }

// Pending reports how many live events the storage still holds. A
// Storage obtained from Release is always empty; the method exists so
// lifecycle-hygiene tests can assert that no timer or callback survived
// a machine's teardown.
func (s Storage) Pending() int { return len(s.events) + len(s.xevents) }

// NewWith creates an engine with the clock at zero whose event heaps
// reuse the given storage's backing arrays. Equivalent to New when st
// is the zero Storage.
func NewWith(st Storage) *Engine {
	e := New()
	e.events = st.events[:0]
	e.xevents = st.xevents[:0]
	return e
}

// Release detaches and returns the engine's backing storage, clearing
// every still-queued event so the arrays hold no references. The engine
// must be finished (typically Shutdown has run); it is unusable
// afterwards. On a clustered engine only the receiver shard's own
// storage is released — shard engines are built by Clusterize and are
// not individually pooled.
func (e *Engine) Release() Storage {
	for i := range e.events {
		e.events[i] = item{}
	}
	for i := range e.xevents {
		e.xevents[i] = xitem{}
	}
	st := Storage{events: e.events[:0], xevents: e.xevents[:0]}
	e.events = nil
	e.xevents = nil
	return st
}
