package event

import "testing"

func TestTimerFiresOnce(t *testing.T) {
	eng := New()
	fires := 0
	tm := eng.NewTimer(func() { fires++ })
	tm.Arm(5 * Microsecond)
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fires != 1 {
		t.Fatalf("fires = %d, want 1", fires)
	}
	if eng.Now() != 5*Microsecond {
		t.Fatalf("fired at %v", eng.Now())
	}
}

func TestTimerRearmCancelsEarlier(t *testing.T) {
	eng := New()
	var firedAt []Time
	tm := eng.NewTimer(func() { firedAt = append(firedAt, eng.Now()) })
	tm.Arm(5 * Microsecond)
	eng.After(2*Microsecond, func() { tm.Arm(10 * Microsecond) })
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(firedAt) != 1 || firedAt[0] != 12*Microsecond {
		t.Fatalf("firedAt = %v, want [12us]", firedAt)
	}
}

func TestTimerStop(t *testing.T) {
	eng := New()
	fires := 0
	tm := eng.NewTimer(func() { fires++ })
	tm.Arm(5 * Microsecond)
	eng.After(1*Microsecond, tm.Stop)
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fires != 0 {
		t.Fatalf("fires = %d after Stop", fires)
	}
	// A stopped timer re-arms cleanly.
	tm.Arm(3 * Microsecond)
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fires != 1 {
		t.Fatalf("fires = %d after re-arm", fires)
	}
}

// TestTimerDispatchAllocFree pins the zero-allocation contract of the
// pooled timer and the handler-based event path: once a timer exists and
// the event heap has reached its high-water mark, arming, dispatching,
// and re-arming allocate nothing. This is the per-word cost of the SCU's
// acknowledgement-timeout registers, of which a large machine has tens
// of thousands.
func TestTimerDispatchAllocFree(t *testing.T) {
	eng := New()
	fires := 0
	var tm *Timer
	tm = eng.NewTimer(func() {
		fires++
		tm.Arm(Microsecond) // periodic: each firing re-arms
	})
	tm.Arm(Microsecond)
	// Warm up: let the event heap grow to steady state.
	if err := eng.Run(10 * Microsecond); err != nil {
		t.Fatal(err)
	}
	before := fires
	avg := testing.AllocsPerRun(100, func() {
		if err := eng.Run(eng.Now() + 10*Microsecond); err != nil {
			t.Fatal(err)
		}
	})
	if fires == before {
		t.Fatal("timer did not fire during measurement")
	}
	if avg != 0 {
		t.Errorf("timer arm/dispatch allocates: %.2f allocs per 10-firing window", avg)
	}
}
