package event

// This file is the conservative parallel layer over the discrete-event
// core: a Cluster partitions one simulated machine across N shard
// engines that execute concurrently inside barrier-synchronized time
// windows (DESIGN.md §13).
//
// The synchronization model is classic conservative PDES specialized to
// the QCDOC topology. Nodes interact only through HSSL wires and the
// management Ethernet, and both charge a guaranteed minimum delay — at
// least one minimum frame's serialization time plus the wire's time of
// flight — before anything becomes visible at the far end. That
// minimum is the cluster's lookahead L: if every shard's next event is
// at or after T, no cross-shard influence can land before T+L, so all
// events in [T, T+L) are independent across shards and may run in
// parallel. The run loop repeats: find the global minimum next-event
// time, execute one window on every shard (concurrently, one shard per
// worker at a time), then drain the single-producer/single-consumer
// cross-shard mailboxes at the barrier.
//
// Determinism is structural, not incidental:
//   - The shard plan is a pure function of the machine topology, never
//     of the worker count. Workers only change which OS thread executes
//     a shard's window, not which events it contains.
//   - Within a shard, events dispatch in (time, seq) order exactly as
//     on a single engine.
//   - Cross-shard messages are appended by their producing shard in its
//     deterministic execution order and drained at the barrier in a
//     fixed (destination, source, send-order) sweep, so the receiving
//     shard assigns them sequence numbers identically on every run.
//   - Anything genuinely machine-wide (the partition-interrupt sampling
//     clock) runs as a global event: a serial callback executed at a
//     barrier with every shard clock aligned.
// Same seed, same machine, any worker count: identical event streams
// per shard, hence identical digests.

import (
	"runtime"
	"sort"
	"sync/atomic"
)

// Scheduler is the shard-aware scheduling surface a component holds
// instead of assuming one global engine. Every *Engine is a Scheduler
// for its own shard; the Cross* methods are the only sanctioned way to
// make something happen on another shard, and they travel through the
// cluster's barrier-drained mailboxes (the qcdoclint shardsafe analyzer
// enforces the "only" part statically). On an unclustered engine the
// Cross* methods degrade to local scheduling, so components written
// against Scheduler run identically on a single-engine machine.
type Scheduler interface {
	Now() Time
	At(t Time, fn func())
	After(d Time, fn func())
	AtHandler(t Time, h Handler, arg uint64)
	AfterHandler(d Time, h Handler, arg uint64)
	// ShardID identifies the shard (0 on an unclustered engine).
	ShardID() int
	// CrossAt schedules fn at time t on dst's shard. Cold control path:
	// it may allocate, and t is clamped up to the earliest time the
	// conservative protocol can still deliver (now + lookahead).
	CrossAt(dst Scheduler, t Time, fn func())
	// CrossPayload schedules h.HandlePayload(arg, p) at time t on dst's
	// shard, allocation-free. Hot hardware path: t must already respect
	// the lookahead (t >= now + lookahead) or the call panics — a
	// violation means the caller's modelled latency is smaller than the
	// lookahead the cluster was built with, which would be a silent
	// determinism hole if clamped.
	CrossPayload(dst Scheduler, t Time, h PayloadHandler, arg uint64, p Payload)
}

var _ Scheduler = (*Engine)(nil)

// Payload is the fixed-size value carried by an allocation-free
// cross-shard message — big enough for one HSSL frame (scupkt.Wire plus
// its wire sequence number). Like scupkt.Wire itself, it is passed by
// value so no shard ever aliases another shard's memory.
type Payload [4]uint64

// PayloadHandler is the cross-shard analogue of Handler: a pre-bound
// event target that also receives a Payload value. Scheduling one
// copies only an interface word, an argument and the payload into the
// message, so the per-frame wire path stays allocation-free across a
// shard boundary.
type PayloadHandler interface {
	HandlePayload(arg uint64, p Payload)
}

// xitem is a scheduled payload event on a shard's payload heap. The
// payload heap shares its shard's sequence counter with the main event
// heap, so the merged dispatch order over both heaps is total and
// stable.
type xitem struct {
	at   Time
	seq  uint64
	h    PayloadHandler
	arg  uint64
	p    Payload
	flow uint64 // causal trace ID (trace.go); read only at dispatch
}

// payloadHeap is a binary min-heap of xitems ordered by (at, seq); the
// sifts are hand-rolled for the same reason eventHeap's are.
type payloadHeap []xitem

func (h payloadHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

//qcdoc:noalloc
func (h *payloadHeap) push(it xitem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			return
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

//qcdoc:noalloc
func (h *payloadHeap) pop() xitem {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = xitem{}
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			return top
		}
		child := l
		if r := l + 1; r < n && s.less(r, l) {
			child = r
		}
		if !s.less(child, i) {
			return top
		}
		s[i], s[child] = s[child], s[i]
		i = child
	}
}

// xmsg is one cross-shard message parked in a mailbox between the
// producing window and the barrier drain: either a payload delivery
// (h != nil, the hot path) or a closure (the cold control path).
type xmsg struct {
	at   Time
	fn   func()
	h    PayloadHandler
	arg  uint64
	p    Payload
	flow uint64 // causal trace ID, carried across the shard boundary
}

// mailbox is one single-producer/single-consumer cross-shard queue:
// exactly one shard appends (during its window), and only the barrier
// drains. The pad keeps two producers' hot mailboxes off a shared cache
// line.
type mailbox struct {
	msgs []xmsg
	_    [5]uint64
}

// gitem is one global (machine-wide) event: executed serially at a
// barrier with every shard clock aligned to its time.
type gitem struct {
	at  Time
	seq uint64
	fn  func()
}

// ClusterStats counts cluster activity for telemetry.
type ClusterStats struct {
	// Windows is how many parallel windows the run loop executed.
	Windows uint64
	// Barriers counts barrier synchronizations (= Windows plus global
	// event alignments).
	Barriers uint64
	// CrossMessages counts mailbox messages drained.
	CrossMessages uint64
	// GlobalEvents counts machine-wide serial events executed.
	GlobalEvents uint64
}

// Cluster coordinates N shard engines. Build one with Clusterize; the
// host shard's Run/RunAll then drives the whole cluster, so code
// written against a single Engine works unchanged.
type Cluster struct {
	shards   []*Engine
	workers  int
	look     Time // conservative lookahead
	mail     [][]mailbox
	globals  []gitem
	gseq     uint64
	hooks    []func()
	stats    ClusterStats
	stopReq  atomic.Bool
	panicked atomic.Bool
	panicVal any

	// Worker-pool state; see worker. The pool exists only when
	// workers > 1 and is parked on wake between runs.
	started  bool
	wake     chan struct{}
	closed   bool
	round    atomic.Uint64
	done     atomic.Int32
	mode     atomic.Uint32 // 0 idle, 1 running
	curWend  Time
	curUntil Time
}

// Clusterize turns a fresh engine into the host shard (shard 0) of an
// n-shard cluster and returns the cluster. workers bounds how many
// shards execute concurrently (clamped to [1, n]); lookahead is the
// guaranteed minimum cross-shard delay. The host engine must not have
// run yet: partitioning an engine with history is not meaningful.
func Clusterize(host *Engine, n, workers int, lookahead Time) *Cluster {
	if host.cluster != nil {
		panic("event: engine is already clustered")
	}
	if len(host.events) != 0 || host.now != 0 {
		panic("event: Clusterize needs a fresh engine")
	}
	if n < 1 {
		n = 1
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if lookahead < 1 {
		lookahead = 1
	}
	c := &Cluster{workers: workers, look: lookahead}
	c.shards = make([]*Engine, n)
	c.shards[0] = host
	for i := 1; i < n; i++ {
		c.shards[i] = New()
	}
	c.mail = make([][]mailbox, n)
	for i := range c.mail {
		c.mail[i] = make([]mailbox, n)
	}
	for i, s := range c.shards {
		s.cluster = c
		s.shard = i
	}
	return c
}

// NumShards returns the shard count.
func (c *Cluster) NumShards() int { return len(c.shards) }

// Workers returns the configured worker count.
func (c *Cluster) Workers() int { return c.workers }

// Lookahead returns the conservative lookahead.
func (c *Cluster) Lookahead() Time { return c.look }

// Shard returns shard i's engine (shard 0 is the host engine).
func (c *Cluster) Shard(i int) *Engine { return c.shards[i] }

// Stats returns a copy of the cluster's activity counters.
func (c *Cluster) Stats() ClusterStats { return c.stats }

// OnBarrier registers fn to run serially at every window barrier, after
// the mailboxes have been drained. Barrier hooks are the sanctioned
// place to inspect per-shard state that event handlers may not touch
// across shards (e.g. collecting the machine's sampling-clock arm
// requests).
func (c *Cluster) OnBarrier(fn func()) { c.hooks = append(c.hooks, fn) }

// AtGlobal schedules fn as a machine-wide event at time t: it runs
// serially, at a barrier, with every shard's clock set to t. Only
// barrier-serial contexts (setup code, barrier hooks, other global
// events) may call it. t must not precede any shard's clock.
func (c *Cluster) AtGlobal(t Time, fn func()) {
	c.gseq++
	c.globals = append(c.globals, gitem{at: t, seq: c.gseq, fn: fn})
}

// peekGlobal returns the earliest pending global event time, or Forever.
func (c *Cluster) peekGlobal() Time {
	t := Forever
	for i := range c.globals {
		if c.globals[i].at < t {
			t = c.globals[i].at
		}
	}
	return t
}

// popGlobalsAt removes and returns the global events at exactly t, in
// schedule order.
func (c *Cluster) popGlobalsAt(t Time) []gitem {
	var due []gitem
	rest := c.globals[:0]
	for _, g := range c.globals {
		if g.at == t {
			due = append(due, g)
		} else {
			rest = append(rest, g)
		}
	}
	c.globals = rest
	sort.Slice(due, func(i, j int) bool { return due[i].seq < due[j].seq })
	return due
}

// maxNow returns the latest shard clock.
func (c *Cluster) maxNow() Time {
	t := c.shards[0].now
	for _, s := range c.shards[1:] {
		if s.now > t {
			t = s.now
		}
	}
	return t
}

// alignClocks advances every shard clock to t (never backward). The
// cluster aligns at quiescence, horizons and global events so that code
// reading Now() after a run — metrics, control processes — sees one
// machine-wide clock, as with a single engine.
func (c *Cluster) alignClocks(t Time) {
	for _, s := range c.shards {
		if s.now < t {
			s.now = t
		}
	}
}

// drainMail empties every mailbox into its destination shard's heaps.
// Serial (barrier) context only. The sweep order — destination major,
// source minor, send order within a mailbox — fixes the sequence
// numbers the destination assigns, making the merge deterministic.
func (c *Cluster) drainMail() {
	for di, dst := range c.shards {
		for si := range c.shards {
			mb := &c.mail[si][di]
			for k := range mb.msgs {
				m := &mb.msgs[k]
				dst.seq++
				if m.h != nil {
					dst.xevents.push(xitem{at: m.at, seq: dst.seq, h: m.h, arg: m.arg, p: m.p, flow: m.flow})
				} else {
					dst.events.push(item{at: m.at, seq: dst.seq, fn: m.fn, flow: m.flow})
				}
				c.stats.CrossMessages++
				mb.msgs[k] = xmsg{} // release closure/handler references
			}
			mb.msgs = mb.msgs[:0]
		}
	}
}

// run is the cluster's window loop; Engine.Run on the host shard
// delegates here. Semantics match Engine.Run: events at exactly `until`
// execute, a drained machine with blocked non-daemon processes is an
// *ErrStall, Stop ends the run at the next barrier.
func (c *Cluster) run(until Time) error {
	c.stopReq.Store(false)
	for {
		c.drainMail()
		for _, h := range c.hooks {
			h()
		}
		tmin := Forever
		for _, s := range c.shards {
			if t, ok := s.peekTime(); ok && t < tmin {
				tmin = t
			}
		}
		g := c.peekGlobal()
		if tmin == Forever && g == Forever {
			if names := c.blockedNames(); len(names) > 0 {
				c.alignClocks(c.maxNow())
				return &ErrStall{At: c.shards[0].now, Blocked: names}
			}
			c.alignClocks(c.maxNow())
			return nil
		}
		next := tmin
		if g < next {
			next = g
		}
		if next > until {
			c.alignClocks(until)
			return nil
		}
		if g <= tmin {
			// Machine-wide events run serially with all clocks aligned.
			c.alignClocks(g)
			c.stats.Barriers++
			c.stats.GlobalEvents++
			for _, gi := range c.popGlobalsAt(g) {
				gi.fn()
			}
			if c.stopReq.Load() {
				return nil
			}
			continue
		}
		wend := tmin + c.look
		if g < wend {
			wend = g
		}
		c.runWindow(wend, until)
		c.stats.Windows++
		c.stats.Barriers++
		if c.panicked.Load() {
			panic(c.panicVal)
		}
		if c.stopReq.Load() {
			c.drainMail()
			c.alignClocks(c.maxNow())
			return nil
		}
	}
}

// blockedNames collects non-daemon blocked process names across all
// shards, sorted for stable reporting.
func (c *Cluster) blockedNames() []string {
	var names []string
	for _, s := range c.shards {
		for p, what := range s.blocked {
			if !p.daemon {
				names = append(names, p.name+" ("+what+")")
			}
		}
	}
	sort.Strings(names)
	return names
}

// runWindow executes one [*, wend) window on every shard, using the
// worker pool when configured. The master goroutine doubles as worker 0.
func (c *Cluster) runWindow(wend, until Time) {
	if c.workers <= 1 {
		for _, s := range c.shards {
			s.runWindow(wend, until)
		}
		return
	}
	c.startWorkers()
	c.curWend, c.curUntil = wend, until
	c.round.Add(1)
	for i := 0; i < len(c.shards); i += c.workers {
		c.shards[i].runWindow(wend, until)
	}
	c.waitWorkers()
}

// startWorkers brings the pool out of idle for one run session.
func (c *Cluster) startWorkers() {
	if c.mode.Load() == 1 {
		return
	}
	if !c.started {
		c.started = true
		c.wake = make(chan struct{})
		for w := 1; w < c.workers; w++ {
			go c.worker(w)
		}
	}
	c.mode.Store(1)
	for w := 1; w < c.workers; w++ {
		c.wake <- struct{}{}
	}
}

// parkWorkers returns the pool to idle at the end of a run session.
func (c *Cluster) parkWorkers() {
	if c.mode.Load() != 1 {
		return
	}
	c.mode.Store(0)
	c.round.Add(1)
	c.waitWorkers()
}

// waitWorkers spins until every pool worker has finished the round.
// The spin yields so the protocol also completes under GOMAXPROCS=1.
func (c *Cluster) waitWorkers() {
	want := int32(c.workers - 1)
	for spin := 0; c.done.Load() != want; spin++ {
		if spin%64 == 63 {
			runtime.Gosched()
		}
	}
	c.done.Store(0)
}

// worker is one pool goroutine: parked on wake between runs, spinning
// on the round counter within a run, executing its statically assigned
// shards each round. Static shard assignment means a shard's heaps are
// only ever touched by one goroutine per window, with the round/done
// atomics providing the happens-before edges to the master.
func (c *Cluster) worker(id int) {
	last := uint64(0)
	for range c.wake {
		for {
			for spin := 0; c.round.Load() == last; spin++ {
				if spin%64 == 63 {
					runtime.Gosched()
				}
			}
			last++
			if c.mode.Load() != 1 {
				c.done.Add(1)
				break // back to idle
			}
			c.runShards(id)
			c.done.Add(1)
		}
	}
}

// runShards executes worker id's shards for the current round,
// capturing any panic so the master can re-raise it after the barrier
// instead of deadlocking the round protocol.
func (c *Cluster) runShards(id int) {
	defer func() {
		if r := recover(); r != nil {
			if c.panicked.CompareAndSwap(false, true) {
				c.panicVal = r
			}
		}
	}()
	for i := id; i < len(c.shards); i += c.workers {
		c.shards[i].runWindow(c.curWend, c.curUntil)
	}
}

// shutdown unwinds the whole cluster: park and release the worker
// pool, then unwind every shard's processes.
func (c *Cluster) shutdown() {
	c.parkWorkers()
	if c.started && !c.closed {
		c.closed = true
		close(c.wake)
	}
	for _, s := range c.shards {
		s.shutdownLocal()
	}
}

// --- Engine-side shard surface -------------------------------------------

// Cluster returns the cluster this engine is a shard of, or nil.
func (e *Engine) Cluster() *Cluster { return e.cluster }

// ShardID returns this engine's shard index (0 when unclustered).
func (e *Engine) ShardID() int { return e.shard }

// peekTime returns the earliest queued event time over both heaps.
func (e *Engine) peekTime() (Time, bool) {
	switch {
	case len(e.events) == 0 && len(e.xevents) == 0:
		return 0, false
	case len(e.events) == 0:
		return e.xevents[0].at, true
	case len(e.xevents) == 0:
		return e.events[0].at, true
	case e.xevents[0].at < e.events[0].at ||
		(e.xevents[0].at == e.events[0].at && e.xevents[0].seq < e.events[0].seq):
		return e.xevents[0].at, true
	default:
		return e.events[0].at, true
	}
}

// dispatchNext pops and executes the earliest event across both heaps.
// The heaps share one sequence counter, so (at, seq) totally orders the
// merge.
//qcdoc:noalloc
func (e *Engine) dispatchNext() {
	fromX := false
	if len(e.events) == 0 {
		fromX = true
	} else if len(e.xevents) != 0 {
		if e.xevents[0].at < e.events[0].at ||
			(e.xevents[0].at == e.events[0].at && e.xevents[0].seq < e.events[0].seq) {
			fromX = true
		}
	}
	if fromX {
		x := e.xevents.pop()
		e.now = x.at
		e.executed++
		e.curFlow = x.flow
		e.lastSeq = x.seq
		if e.tracer != nil {
			e.tracer(x.at)
		}
		if e.ring != nil {
			e.ring.recordPayload(x.at, x.seq, x.flow, x.h, x.arg)
		}
		x.h.HandlePayload(x.arg, x.p)
		return
	}
	next := e.events.pop()
	e.now = next.at
	e.executed++
	e.curFlow = next.flow
	e.lastSeq = next.seq
	if e.tracer != nil {
		e.tracer(next.at)
	}
	if e.ring != nil {
		e.ring.record(next.at, next.seq, next.flow, next.fn, next.h, next.arg)
	}
	if next.fn != nil {
		next.fn()
	} else {
		next.h.HandleEvent(next.arg)
	}
}

// runWindow executes this shard's events with at < wend (and at <=
// until, matching Run's inclusive horizon). Called concurrently for
// different shards; everything it touches is shard-local.
func (e *Engine) runWindow(wend, until Time) {
	for {
		t, ok := e.peekTime()
		if !ok || t >= wend || t > until {
			return
		}
		e.dispatchNext()
	}
}

// CrossAt schedules fn at time t on dst's shard — the cold control
// path for cross-shard actions (fault injection, management hops). On
// the same engine, or without a cluster, it is Engine.At. Across
// shards, t is clamped up to now + lookahead: the earliest instant the
// conservative window protocol can still deliver.
func (e *Engine) CrossAt(dst Scheduler, t Time, fn func()) {
	d, ok := dst.(*Engine)
	if !ok {
		panic("event: CrossAt destination is not an Engine")
	}
	if d == e || e.cluster == nil {
		e.At(t, fn)
		return
	}
	if d.cluster != e.cluster {
		panic("event: CrossAt across unrelated clusters")
	}
	if min := e.now + e.cluster.look; t < min {
		t = min
	}
	mb := &e.cluster.mail[e.shard][d.shard]
	mb.msgs = append(mb.msgs, xmsg{at: t, fn: fn, flow: e.curFlow})
}

// CrossPayload schedules h.HandlePayload(arg, p) at t on dst's shard,
// allocation-free — the hot wire-delivery path. t must respect the
// cluster lookahead; see Scheduler.
//qcdoc:noalloc
func (e *Engine) CrossPayload(dst Scheduler, t Time, h PayloadHandler, arg uint64, p Payload) {
	d, ok := dst.(*Engine)
	if !ok {
		panic("event: CrossPayload destination is not an Engine")
	}
	if d == e || e.cluster == nil {
		if t < e.now {
			t = e.now
		}
		e.seq++
		e.xevents.push(xitem{at: t, seq: e.seq, h: h, arg: arg, p: p, flow: e.curFlow})
		return
	}
	if d.cluster != e.cluster {
		panic("event: CrossPayload across unrelated clusters")
	}
	if t < e.now+e.cluster.look {
		// A modelled latency below the lookahead would be delivered late
		// (and only sometimes), so fail loudly instead.
		panic("event: CrossPayload violates cluster lookahead")
	}
	mb := &e.cluster.mail[e.shard][d.shard]
	mb.msgs = append(mb.msgs, xmsg{at: t, h: h, arg: arg, p: p, flow: e.curFlow})
}
