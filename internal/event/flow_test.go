package event

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestFlowInheritance pins causal-flow propagation: events scheduled
// while a flow is current carry it, their own descendants inherit it,
// and SetFlow restores cleanly.
func TestFlowInheritance(t *testing.T) {
	e := New()
	rec := NewRecorder(16)
	e.SetRecorder(rec)
	var inChild, inGrandchild, after uint64
	e.After(Nanosecond, func() {
		f := e.NewFlow()
		prev := e.SetFlow(f)
		if e.CurrentFlow() != f {
			t.Errorf("CurrentFlow %#x, want %#x", e.CurrentFlow(), f)
		}
		e.After(Nanosecond, func() {
			inChild = e.CurrentFlow()
			e.After(Nanosecond, func() { inGrandchild = e.CurrentFlow() })
		})
		e.SetFlow(prev)
		e.After(Nanosecond, func() { after = e.CurrentFlow() })
	})
	if err := e.RunAll(); err != nil {
		t.Fatal(err)
	}
	if inChild == 0 || inChild != inGrandchild {
		t.Fatalf("flow not inherited: child %#x grandchild %#x", inChild, inGrandchild)
	}
	if after != 0 {
		t.Fatalf("flow leaked past SetFlow(prev): %#x", after)
	}
	// The recorder captured the flow on the in-flow events only.
	flows := map[uint64]int{}
	for _, r := range rec.Tail(0) {
		flows[r.Flow]++
	}
	if flows[inChild] != 2 {
		t.Fatalf("recorded flows %v, want 2 records on flow %#x", flows, inChild)
	}
}

// TestNewFlowDeterministic pins the flow-ID scheme: per-shard counter
// in the low bits, shard+1 in the high bits, so IDs are deterministic
// and never collide across shards.
func TestNewFlowDeterministic(t *testing.T) {
	e := New()
	f1, f2 := e.NewFlow(), e.NewFlow()
	if f1 != 1<<40|1 || f2 != 1<<40|2 {
		t.Fatalf("flow ids %#x, %#x", f1, f2)
	}
	e2 := New()
	if g := e2.NewFlow(); g != f1 {
		t.Fatalf("fresh engine first flow %#x, want %#x", g, f1)
	}
}

// TestMarkSpanRecordsWithoutConsumingSeq pins the load-bearing property
// of span marks: they attach to the flight recorder without advancing
// the engine's event sequence, so attaching a recorder cannot move any
// event's seq — the zero-perturbation contract at the trace layer.
func TestMarkSpanRecordsWithoutConsumingSeq(t *testing.T) {
	run := func(withSpans bool) (seqs []uint64, spans int) {
		e := New()
		rec := NewRecorder(32)
		e.SetRecorder(rec)
		e.After(Nanosecond, func() {
			if withSpans {
				e.MarkSpanBegin("work")
			}
			e.After(Nanosecond, func() {
				if withSpans {
					e.MarkSpanEnd("work")
				}
			})
		})
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		for _, r := range rec.Tail(0) {
			if r.Kind == TraceSpanBegin || r.Kind == TraceSpanEnd {
				spans++
				if r.Actor() != "work" {
					t.Fatalf("span actor %q", r.Actor())
				}
				continue
			}
			seqs = append(seqs, r.Seq)
		}
		return seqs, spans
	}
	plain, n0 := run(false)
	spanned, n2 := run(true)
	if n0 != 0 || n2 != 2 {
		t.Fatalf("span counts %d/%d, want 0/2", n0, n2)
	}
	if len(plain) != len(spanned) {
		t.Fatalf("event counts differ: %d vs %d", len(plain), len(spanned))
	}
	for i := range plain {
		if plain[i] != spanned[i] {
			t.Fatalf("seq %d moved: %d without spans, %d with", i, plain[i], spanned[i])
		}
	}
	// Spans without a recorder are free no-ops.
	e := New()
	e.MarkSpanBegin("nobody-listening")
	e.MarkSpanEnd("nobody-listening")
}

// TestChromeTraceMergedNamespacesAndStability pins the fleet-export
// fix: recorders from different machines merge into one Chrome trace
// with pids namespaced by machine ID, span begin/end pairs exported as
// async flow events, and the whole document byte-stable across
// identical runs.
func TestChromeTraceMergedNamespacesAndStability(t *testing.T) {
	build := func(machineID int) *Recorder {
		e := New()
		rec := NewRecorder(16)
		rec.SetMachineID(machineID)
		if rec.MachineID() != machineID {
			t.Fatalf("machine id %d", rec.MachineID())
		}
		e.SetRecorder(rec)
		e.After(Nanosecond, func() {
			f := e.NewFlow()
			prev := e.SetFlow(f)
			e.MarkSpanBegin("gsum")
			e.After(Nanosecond, func() {
				e.MarkSpanEnd("gsum")
			})
			e.SetFlow(prev)
		})
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		return rec
	}
	export := func() string {
		var sb strings.Builder
		if err := WriteChromeTraceMerged(&sb, []*Recorder{build(0), build(1), nil}, 0); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	doc := export()
	if doc != export() {
		t.Fatal("two identical merged exports differ byte-for-byte")
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
			ID   uint64 `json:"id"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(doc), &parsed); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v\n%s", err, doc)
	}
	pids := map[int]int{}
	begins, ends := 0, 0
	for _, ev := range parsed.TraceEvents {
		pids[ev.Pid]++
		if ev.Name == "gsum" {
			switch ev.Ph {
			case "b":
				begins++
			case "e":
				ends++
			}
			if ev.Cat != "flow" || ev.ID == 0 {
				t.Fatalf("span event %+v", ev)
			}
		}
	}
	if len(pids) != 2 || pids[0] == 0 || pids[1] == 0 {
		t.Fatalf("pids %v, want events under pid 0 and pid 1", pids)
	}
	if begins != 2 || ends != 2 {
		t.Fatalf("span pairs: %d begins, %d ends", begins, ends)
	}
}
