package event

import "testing"

// A timed gate wait wakes on Fire before the deadline and reports true;
// the stale deadline event must then find nothing to wake.
func TestGateWaitUntilFiresBeforeDeadline(t *testing.T) {
	eng := New()
	g := NewGate(eng)
	var fired bool
	var wokeAt Time
	eng.Spawn("waiter", func(p *Proc) {
		fired = g.WaitUntil(p, "test", 100)
		wokeAt = p.Now()
	})
	eng.At(30, g.Fire)
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatalf("WaitUntil = false, want true (Fire at 30, deadline 100)")
	}
	if wokeAt != 30 {
		t.Fatalf("woke at %v, want 30", wokeAt)
	}
	if g.Waiting() != 0 {
		t.Fatalf("%d waiters left on gate", g.Waiting())
	}
}

func TestGateWaitUntilTimesOut(t *testing.T) {
	eng := New()
	g := NewGate(eng)
	var fired bool
	var wokeAt Time
	eng.Spawn("waiter", func(p *Proc) {
		fired = g.WaitUntil(p, "test", 100)
		wokeAt = p.Now()
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("WaitUntil = true, want timeout")
	}
	if wokeAt != 100 {
		t.Fatalf("woke at %v, want 100", wokeAt)
	}
	if g.Waiting() != 0 {
		t.Fatalf("%d waiters left on gate after timeout", g.Waiting())
	}
}

// A past (or present) deadline returns false without parking, and a
// re-wait after a timeout gets a fresh generation: the earlier deadline
// event must not wake the new wait early.
func TestGateWaitUntilRewait(t *testing.T) {
	eng := New()
	g := NewGate(eng)
	var first, second, immediate bool
	var wokeAt Time
	eng.Spawn("waiter", func(p *Proc) {
		first = g.WaitUntil(p, "a", 50)
		second = g.WaitUntil(p, "b", 200)
		wokeAt = p.Now()
		immediate = g.WaitUntil(p, "c", p.Now()) // deadline == now
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if first || second || immediate {
		t.Fatalf("waits = %v,%v,%v; want all timeouts", first, second, immediate)
	}
	if wokeAt != 200 {
		t.Fatalf("second wait woke at %v, want 200", wokeAt)
	}
}

func TestQueueGetTimeout(t *testing.T) {
	eng := New()
	q := NewQueue[int](eng, "box")
	type got struct {
		v  int
		ok bool
		at Time
	}
	var results []got
	eng.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			v, ok := q.GetTimeout(p, 100)
			results = append(results, got{v, ok, p.Now()})
		}
	})
	eng.At(40, func() { q.Put(7) })  // arrives before first deadline
	eng.At(240, func() { q.Put(9) }) // second call times out at 140 first
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := []got{{7, true, 40}, {0, false, 140}, {9, true, 240}}
	if len(results) != len(want) {
		t.Fatalf("got %d results, want %d", len(results), len(want))
	}
	for i, w := range want {
		if results[i] != w {
			t.Fatalf("result %d = %+v, want %+v", i, results[i], w)
		}
	}
}

// An item Put by an event at exactly the deadline timestamp is still
// returned: the timed-out Get polls once more before giving up.
func TestQueueGetTimeoutDeadlineTie(t *testing.T) {
	eng := New()
	q := NewQueue[int](eng, "box")
	var v int
	var ok bool
	eng.Spawn("consumer", func(p *Proc) {
		v, ok = q.GetTimeout(p, 100)
	})
	// Scheduled before the consumer spawns, so at t=100 the Put's event
	// precedes the deadline event in FIFO order.
	eng.At(100, func() { q.Put(5) })
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !ok || v != 5 {
		t.Fatalf("GetTimeout = %d,%v; want 5,true", v, ok)
	}
}

// Kill unwinds a parked process immediately: its goroutine exits, its
// gate entry goes stale, and a later Fire on the gate is harmless.
func TestProcKill(t *testing.T) {
	eng := New()
	g := NewGate(eng)
	reached := false
	p := eng.SpawnDaemon("victim", func(p *Proc) {
		g.Wait(p, "forever")
		reached = true
	})
	eng.At(10, func() { p.Kill() })
	eng.At(20, g.Fire)
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Fatal("killed process ran past its blocking call")
	}
	if !p.Killed() {
		t.Fatal("Killed() = false after Kill")
	}
	if eng.LiveProcs() != 0 {
		t.Fatalf("%d live procs after kill", eng.LiveProcs())
	}
}

// Killing a sleeping process (which already has a wake event pending)
// must not double-resume: the stale wake finds the process done.
func TestProcKillWhileSleeping(t *testing.T) {
	eng := New()
	var wokeAt Time
	p := eng.SpawnDaemon("sleeper", func(p *Proc) {
		defer func() {
			if r := recover(); r != nil {
				if !IsKillPanic(r) {
					panic(r)
				}
				wokeAt = p.Now()
				panic(r) // continue the unwind
			}
		}()
		p.Sleep(1000)
	})
	eng.At(10, func() { p.Kill() })
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if wokeAt != 10 {
		t.Fatalf("killed sleeper unwound at %v, want 10", wokeAt)
	}
	if eng.LiveProcs() != 0 {
		t.Fatalf("%d live procs", eng.LiveProcs())
	}
}

// Two identical runs mixing timeouts, fires, and kills must dispatch
// identical event streams (the determinism currency of the repo).
func TestTimeoutDeterminism(t *testing.T) {
	run := func() (uint64, Time) {
		eng := New()
		g := NewGate(eng)
		q := NewQueue[int](eng, "q")
		eng.Spawn("a", func(p *Proc) {
			g.WaitUntil(p, "x", 50)
			q.GetTimeout(p, 75)
		})
		victim := eng.SpawnDaemon("b", func(p *Proc) {
			for {
				p.Sleep(30)
			}
		})
		eng.At(40, g.Fire)
		eng.At(90, func() { q.Put(1) })
		eng.At(100, func() { victim.Kill() })
		if err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		return eng.Executed(), eng.Now()
	}
	e1, t1 := run()
	e2, t2 := run()
	if e1 != e2 || t1 != t2 {
		t.Fatalf("runs diverged: (%d, %v) vs (%d, %v)", e1, t1, e2, t2)
	}
}
