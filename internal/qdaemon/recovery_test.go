package qdaemon

import (
	"errors"
	"testing"

	"qcdoc/internal/ethjtag"
	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/node"
)

// dropNth returns a FaultFunc that drops exactly the nth packet (1-based)
// matching pred, and nothing else.
func dropNth(n int, pred func(*ethjtag.Packet) bool) ethjtag.FaultFunc {
	seen := 0
	return func(pkt *ethjtag.Packet) ethjtag.FaultVerdict {
		if !pred(pkt) {
			return ethjtag.FaultNone
		}
		seen++
		if seen == n {
			return ethjtag.FaultDrop
		}
		return ethjtag.FaultNone
	}
}

// isJTAGReply matches Ethernet/JTAG controller replies (node JTAG port ->
// host): the acks whose loss used to wedge BootAll forever on a bare
// Recv.
func isJTAGReply(pkt *ethjtag.Packet) bool {
	return pkt.Port == ethjtag.PortJTAG && pkt.Src >= ethjtag.NodeAddrBase
}

// The boot path's regression for the lost-ack deadlock: drop exactly one
// boot-load ack; the exchange times out, retransmits, and the boot
// completes. Before the retry primitive this test hung forever.
func TestBootSurvivesDroppedAck(t *testing.T) {
	_, d, run := harness(t, geom.MakeShape(2, 2))
	d.Net.Fault = dropNth(1, isJTAGReply)
	var bootErr error
	run(func(p *event.Proc) { bootErr = d.BootAll(p) })
	if bootErr != nil {
		t.Fatal(bootErr)
	}
	for r, n := range d.M.Nodes {
		if n.State() != node.RunKernel {
			t.Fatalf("node %d state %v", r, n.State())
		}
	}
	st := d.RPCStats()
	if st.Timeouts != 1 || st.Retries != 1 {
		t.Fatalf("rpc stats %+v, want exactly one timeout and one retry", st)
	}
	if st.Failures != 0 {
		t.Fatalf("rpc stats %+v: exchange reported failure", st)
	}
	if d.Net.FaultDropped != 1 {
		t.Fatalf("dropped %d packets, want 1", d.Net.FaultDropped)
	}
	// The retransmitted OpLoadBoot re-executed on the node: one extra
	// boot word on that node, none elsewhere.
	if got := d.M.Nodes[0].BootWords(); got != BootKernelPackets+1 {
		t.Fatalf("node 0 boot words %d, want %d", got, BootKernelPackets+1)
	}
}

// Dropping the non-idempotent OpStartBoot ack exercises the status
// disambiguation: the retransmitted start is refused (the node is
// already out of reset), and the follow-up OpStatus proves the first
// start took.
func TestBootSurvivesDroppedStartAck(t *testing.T) {
	_, d, run := harness(t, geom.MakeShape(2))
	// Reply 101 from a node's JTAG port is the OpStartBoot ack (after
	// 100 load acks).
	d.Net.Fault = dropNth(101, isJTAGReply)
	var bootErr error
	run(func(p *event.Proc) { bootErr = d.BootAll(p) })
	if bootErr != nil {
		t.Fatal(bootErr)
	}
	if st := d.M.Nodes[0].State(); st != node.RunKernel {
		t.Fatalf("node 0 state %v", st)
	}
	if st := d.RPCStats(); st.Timeouts == 0 {
		t.Fatalf("rpc stats %+v: dropped start ack cost no timeout", st)
	}
}

// A lost launch ack must not wedge Run: the launch is retransmitted, the
// kernel refuses the duplicate ("already running"), and Run counts the
// node as launched.
func TestRunSurvivesDroppedLaunchAck(t *testing.T) {
	_, d, run := harness(t, geom.MakeShape(2, 2))
	d.LoadProgram("napper", func(rank int) node.Program {
		return func(ctx *node.Ctx) { ctx.P.Sleep(5 * event.Millisecond) }
	})
	var reports []string
	var runErr error
	run(func(p *event.Proc) {
		if err := d.BootAll(p); err != nil {
			t.Error(err)
			return
		}
		// Drop the first "ok <job>" launch ack (an RPC-port reply from a
		// node Ethernet address to the host).
		d.Net.Fault = dropNth(1, func(pkt *ethjtag.Packet) bool {
			return pkt.Port == ethjtag.PortRPC && pkt.Src >= ethjtag.NodeAddrBase
		})
		reports, runErr = d.Run(p, "j", "napper")
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if len(reports) != 4 {
		t.Fatalf("%d completion reports, want 4", len(reports))
	}
	// Exactly one ack was dropped, so the timeout retransmits to exactly
	// one straggler.
	if st := d.RPCStats(); st.Timeouts == 0 || st.Retries == 0 {
		t.Fatalf("rpc stats %+v: launch retry path not exercised", st)
	}
}

// chaosResult captures the observable outcome of one watchdog scenario
// for determinism comparison.
type chaosResult struct {
	rec      FailureRecord
	killedAt event.Time
	isolated bool
	healthy  int
	executed uint64
	endedAt  event.Time
}

// runWatchdogScenario boots a 2x2x2 machine with heartbeats and the
// watchdog armed, launches a long sleeper job, injects kill(victim) at
// the given time, and returns the detection outcome.
func runWatchdogScenario(t *testing.T, victim int, at event.Time, kill func(*node.Node)) chaosResult {
	t.Helper()
	eng, d, run := harness(t, geom.MakeShape(2, 2, 2))
	d.LoadProgram("sleeper", func(rank int) node.Program {
		return func(ctx *node.Ctx) { ctx.P.Sleep(50 * event.Millisecond) }
	})
	var res chaosResult
	var runErr error
	run(func(p *event.Proc) {
		if err := d.BootAll(p); err != nil {
			t.Error(err)
			return
		}
		d.EnableHeartbeats(100 * event.Microsecond)
		d.StartWatchdog(WatchdogConfig{Period: 500 * event.Microsecond, Misses: 3})
		eng.After(at, func() {
			res.killedAt = eng.Now()
			//qcdoclint:shard-ok chaos harness kills the victim directly; the test machine is single-shard
			kill(d.M.Nodes[victim])
		})
		_, runErr = d.Run(p, "job", "sleeper")
		eng.Stop() // survivors' heartbeats would tick forever
	})
	var abort *AbortError
	if !errors.As(runErr, &abort) {
		t.Fatalf("Run returned %v, want *AbortError", runErr)
	}
	res.rec = abort.Rec
	res.isolated = d.Part.Isolated(victim)
	res.healthy = d.Part.HealthyCount()
	res.executed = eng.Executed()
	res.endedAt = eng.Now()
	return res
}

// A crashed node's lifecycle state reads Crashed over JTAG: the watchdog
// detects it on the next poll, isolates the daughterboard (both of its
// nodes), and aborts the job — identically across two runs.
func TestWatchdogDetectsCrash(t *testing.T) {
	run := func() chaosResult {
		return runWatchdogScenario(t, 3, 2*event.Millisecond, (*node.Node).Crash)
	}
	r1 := run()
	r2 := run()

	if r1.rec.Rank != 3 || !r1.rec.Crashed {
		t.Fatalf("detected %+v, want crash of rank 3", r1.rec)
	}
	if r1.rec.Board != BoardOf(3) {
		t.Fatalf("failed board %d, want %d", r1.rec.Board, BoardOf(3))
	}
	if !r1.isolated {
		t.Fatal("victim not isolated from the partition map")
	}
	// The whole daughterboard goes: rank 2 (the board partner) too.
	if r1.healthy != 6 {
		t.Fatalf("healthy ranks %d, want 6 (one daughterboard isolated)", r1.healthy)
	}
	if r1.rec.DetectedAt <= r1.killedAt {
		t.Fatalf("detected at %v, before the crash at %v", r1.rec.DetectedAt, r1.killedAt)
	}
	// Crash detection is a state read: at most one poll period plus the
	// peek round trips after injection.
	if gap := r1.rec.DetectedAt - r1.killedAt; gap > event.Millisecond {
		t.Fatalf("crash detection took %v after the kill", gap)
	}
	if r1 != r2 {
		t.Fatalf("watchdog runs diverged:\n  %+v\n  %+v", r1, r2)
	}
}

// A hung node still reports app-running over JTAG; only the frozen
// heartbeat betrays it. Detection therefore takes Misses poll periods.
func TestWatchdogDetectsHang(t *testing.T) {
	run := func() chaosResult {
		return runWatchdogScenario(t, 5, 2*event.Millisecond, (*node.Node).Hang)
	}
	r1 := run()
	r2 := run()

	if r1.rec.Rank != 5 || r1.rec.Crashed {
		t.Fatalf("detected %+v, want hang of rank 5", r1.rec)
	}
	if !r1.isolated || r1.healthy != 6 {
		t.Fatalf("isolation wrong: isolated=%v healthy=%d", r1.isolated, r1.healthy)
	}
	// Three consecutive stale polls at 500 us each: latency covers at
	// least the miss window.
	if r1.rec.DetectLatency < 1500*event.Microsecond {
		t.Fatalf("hang detect latency %v, want >= 3 poll periods", r1.rec.DetectLatency)
	}
	if r1 != r2 {
		t.Fatalf("watchdog runs diverged:\n  %+v\n  %+v", r1, r2)
	}
}

// fpResult captures the observable outcome of a false-positive scenario
// for determinism comparison.
type fpResult struct {
	falsePositives int
	fpRank         int
	fpAt           event.Time
	probes         uint64
	failures       int
	isolated       bool
	healthy        int
	executed       uint64
	endedAt        event.Time
}

// A live node reported dead must NOT be isolated: the report forces the
// JTAG liveness re-check, the probe sees heartbeat progress, and the
// report is recorded as a false positive — bit-identically across runs.
func TestWatchdogRejectsFalsePositive(t *testing.T) {
	run := func() fpResult {
		eng, d, run := harness(t, geom.MakeShape(2, 2, 2))
		d.LoadProgram("sleeper", func(rank int) node.Program {
			return func(ctx *node.Ctx) { ctx.P.Sleep(10 * event.Millisecond) }
		})
		var res fpResult
		var runErr error
		run(func(p *event.Proc) {
			if err := d.BootAll(p); err != nil {
				t.Error(err)
				return
			}
			d.EnableHeartbeats(100 * event.Microsecond)
			wd := d.StartWatchdog(WatchdogConfig{Period: 500 * event.Microsecond, Misses: 3})
			eng.After(2*event.Millisecond, func() { wd.Suspect(3) })
			_, runErr = d.Run(p, "job", "sleeper")
			eng.Stop()
		})
		if runErr != nil {
			t.Fatalf("job aborted on a false report: %v", runErr)
		}
		wd := d.Watchdog()
		res.falsePositives = len(wd.FalsePositives)
		if res.falsePositives > 0 {
			res.fpRank = wd.FalsePositives[0].Rank
			res.fpAt = wd.FalsePositives[0].At
		}
		res.probes = wd.Probes
		res.failures = len(wd.Failures)
		res.isolated = d.Part.Isolated(3)
		res.healthy = d.Part.HealthyCount()
		res.executed = eng.Executed()
		res.endedAt = eng.Now()
		return res
	}
	r1 := run()
	r2 := run()

	if r1.falsePositives != 1 || r1.fpRank != 3 {
		t.Fatalf("false positives %d (rank %d), want exactly one on rank 3",
			r1.falsePositives, r1.fpRank)
	}
	if r1.probes == 0 {
		t.Fatal("report accepted without a liveness probe")
	}
	if r1.failures != 0 || r1.isolated || r1.healthy != 8 {
		t.Fatalf("live node isolated on a false report: failures=%d isolated=%v healthy=%d",
			r1.failures, r1.isolated, r1.healthy)
	}
	if r1.fpAt <= 2*event.Millisecond {
		t.Fatalf("rejection at %v, before the report", r1.fpAt)
	}
	if r1 != r2 {
		t.Fatalf("false-positive runs diverged:\n  %+v\n  %+v", r1, r2)
	}
}

// A report against a genuinely hung node passes the probe and is
// isolated through the normal path — the probe gate accepts real
// deaths, it does not mask them.
func TestWatchdogSuspectConfirmsHungNode(t *testing.T) {
	eng, d, run := harness(t, geom.MakeShape(2, 2, 2))
	d.LoadProgram("sleeper", func(rank int) node.Program {
		return func(ctx *node.Ctx) { ctx.P.Sleep(50 * event.Millisecond) }
	})
	var runErr error
	run(func(p *event.Proc) {
		if err := d.BootAll(p); err != nil {
			t.Error(err)
			return
		}
		d.EnableHeartbeats(100 * event.Microsecond)
		wd := d.StartWatchdog(WatchdogConfig{Period: 500 * event.Microsecond, Misses: 3})
		eng.After(2*event.Millisecond, func() {
			//qcdoclint:shard-ok harness kills the victim directly; the test machine is single-shard
			d.M.Nodes[5].Hang()
			wd.Suspect(5)
		})
		_, runErr = d.Run(p, "job", "sleeper")
		eng.Stop()
	})
	var abort *AbortError
	if !errors.As(runErr, &abort) {
		t.Fatalf("Run returned %v, want *AbortError", runErr)
	}
	wd := d.Watchdog()
	if abort.Rec.Rank != 5 || abort.Rec.Crashed {
		t.Fatalf("detected %+v, want hang of rank 5", abort.Rec)
	}
	if wd.Probes == 0 {
		t.Fatal("suspect isolated without a probe")
	}
	if len(wd.FalsePositives) != 0 {
		t.Fatalf("%d false positives recorded for a real hang", len(wd.FalsePositives))
	}
	if !d.Part.Isolated(5) {
		t.Fatal("confirmed-dead node not isolated")
	}
	// The report short-circuits the miss window: detection lands well
	// before the three stale polls the unreported hang path needs.
	if abort.Rec.DetectLatency >= 1500*event.Microsecond {
		t.Fatalf("suspect-path detection took %v, want under 3 poll periods", abort.Rec.DetectLatency)
	}
}
