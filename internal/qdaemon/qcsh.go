package qdaemon

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/machine"
	"qcdoc/internal/scu"
)

// Qcsh is the command-line interface to QCDOC (§3.1): "a modified UNIX
// tcsh ... gathers commands to send to the qdaemon and manages the
// returning data stream". This implementation is the command
// interpreter; cmd/qdaemon wraps it in a REPL.
type Qcsh struct {
	D *Daemon
}

// Exec runs one command line and returns its output.
func (q *Qcsh) Exec(p *event.Proc, line string) (string, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", nil
	}
	d := q.D
	switch fields[0] {
	case "help":
		return "commands: boot | status <rank> | run <job> <program> | remap <dims> | output <job> | ls | cat <file> | packaging | power | hwstat [rank] | counters <rank> [link] | trace [n] | trace on [size] | trace off", nil
	case "boot":
		if err := d.BootAll(p); err != nil {
			return "", err
		}
		return fmt.Sprintf("booted %d nodes", d.M.NumNodes()), nil
	case "status":
		if len(fields) < 2 {
			return "", fmt.Errorf("qcsh: status <rank>")
		}
		rank, err := strconv.Atoi(fields[1])
		if err != nil || rank < 0 || rank >= d.M.NumNodes() {
			return "", fmt.Errorf("qcsh: bad rank %q", fields[1])
		}
		return d.Status(p, rank)
	case "run":
		if len(fields) < 3 {
			return "", fmt.Errorf("qcsh: run <job> <program>")
		}
		reports, err := d.Run(p, fields[1], fields[2])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("job %s completed on %d nodes", fields[1], len(reports)), nil
	case "remap":
		if len(fields) < 2 {
			return "", fmt.Errorf("qcsh: remap <dims>")
		}
		dims, err := strconv.Atoi(fields[1])
		if err != nil {
			return "", fmt.Errorf("qcsh: bad dimensionality %q", fields[1])
		}
		if err := d.Remap(dims); err != nil {
			return "", err
		}
		return fmt.Sprintf("partition remapped to %v", d.Fold().Logical()), nil
	case "output":
		if len(fields) < 2 {
			return "", fmt.Errorf("qcsh: output <job>")
		}
		return strings.Join(d.Output[fields[1]], "\n"), nil
	case "ls":
		names := make([]string, 0, len(d.FS))
		for n := range d.FS {
			names = append(names, n)
		}
		sort.Strings(names)
		return strings.Join(names, "\n"), nil
	case "cat":
		if len(fields) < 2 {
			return "", fmt.Errorf("qcsh: cat <file>")
		}
		data, ok := d.FS[fields[1]]
		if !ok {
			return "", fmt.Errorf("qcsh: no such file %q", fields[1])
		}
		return string(data), nil
	case "packaging", "power":
		pk := machine.PackagingFor(d.M.NumNodes(), d.M.Cfg.Clock)
		return pk.String(), nil
	case "hwstat":
		// One node, or a machine-wide sweep — every line is fetched from
		// the node over the Ethernet/JTAG side network, not read from
		// simulator state.
		ranks := make([]int, 0, d.M.NumNodes())
		if len(fields) >= 2 {
			rank, err := strconv.Atoi(fields[1])
			if err != nil || rank < 0 || rank >= d.M.NumNodes() {
				return "", fmt.Errorf("qcsh: bad rank %q", fields[1])
			}
			ranks = append(ranks, rank)
		} else {
			for r := 0; r < d.M.NumNodes(); r++ {
				ranks = append(ranks, r)
			}
		}
		var b strings.Builder
		for _, r := range ranks {
			st, s, err := d.HWStat(p, r)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "node%d %v: sent %d recv %d acks %d naks %d resends %d parity %d header %d dup %d\n",
				r, st, s.WordsSent, s.WordsReceived, s.AcksSent, s.NaksSent, s.Resends, s.ParityErrors, s.HeaderErrors, s.Duplicates)
		}
		return strings.TrimRight(b.String(), "\n"), nil
	case "counters":
		if len(fields) < 2 {
			return "", fmt.Errorf("qcsh: counters <rank> [link]")
		}
		rank, err := strconv.Atoi(fields[1])
		if err != nil || rank < 0 || rank >= d.M.NumNodes() {
			return "", fmt.Errorf("qcsh: bad rank %q", fields[1])
		}
		var s scu.Stats
		label := "aggregate"
		if len(fields) >= 3 {
			l, err := parseLink(fields[2])
			if err != nil {
				return "", err
			}
			if s, err = d.LinkCounters(p, rank, l); err != nil {
				return "", err
			}
			label = "link " + l.String()
		} else {
			if _, s, err = d.HWStat(p, rank); err != nil {
				return "", err
			}
		}
		var b strings.Builder
		fmt.Fprintf(&b, "node%d %s:\n", rank, label)
		s.Each(func(name string, v uint64) { fmt.Fprintf(&b, "  %s %d\n", name, v) })
		return strings.TrimRight(b.String(), "\n"), nil
	case "trace":
		// The flight recorder is a host-side diagnostic on the simulation
		// engine itself (the analogue of a logic analyzer on the global
		// clock tree); it records nothing until switched on.
		if len(fields) >= 2 && fields[1] == "on" {
			size := event.DefaultRecorderSize
			if len(fields) >= 3 {
				n, err := strconv.Atoi(fields[2])
				if err != nil || n <= 0 {
					return "", fmt.Errorf("qcsh: bad trace size %q", fields[2])
				}
				size = n
			}
			d.Eng.SetRecorder(event.NewRecorder(size))
			return fmt.Sprintf("flight recorder on (%d records)", size), nil
		}
		if len(fields) >= 2 && fields[1] == "off" {
			d.Eng.SetRecorder(nil)
			return "flight recorder off", nil
		}
		rec := d.Eng.Recorder()
		if rec == nil {
			return "", fmt.Errorf("qcsh: flight recorder is off (trace on [size])")
		}
		n := 16
		if len(fields) >= 2 {
			v, err := strconv.Atoi(fields[1])
			if err != nil || v <= 0 {
				return "", fmt.Errorf("qcsh: bad trace count %q", fields[1])
			}
			n = v
		}
		var b strings.Builder
		rec.Dump(&b, n)
		return strings.TrimRight(b.String(), "\n"), nil
	default:
		return "", fmt.Errorf("qcsh: unknown command %q (try help)", fields[0])
	}
}

// parseLink parses a link spec like "+0" or "-3" (geom.Link.String
// notation).
func parseLink(s string) (geom.Link, error) {
	if len(s) != 2 || (s[0] != '+' && s[0] != '-') || s[1] < '0' || s[1] > byte('0'+geom.MaxDim-1) {
		return geom.Link{}, fmt.Errorf("qcsh: bad link %q (want +0..-%d)", s, geom.MaxDim-1)
	}
	dir := geom.Fwd
	if s[0] == '-' {
		dir = geom.Bwd
	}
	return geom.Link{Dim: int(s[1] - '0'), Dir: dir}, nil
}
