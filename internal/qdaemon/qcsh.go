package qdaemon

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"qcdoc/internal/event"
	"qcdoc/internal/machine"
)

// Qcsh is the command-line interface to QCDOC (§3.1): "a modified UNIX
// tcsh ... gathers commands to send to the qdaemon and manages the
// returning data stream". This implementation is the command
// interpreter; cmd/qdaemon wraps it in a REPL.
type Qcsh struct {
	D *Daemon
}

// Exec runs one command line and returns its output.
func (q *Qcsh) Exec(p *event.Proc, line string) (string, error) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return "", nil
	}
	d := q.D
	switch fields[0] {
	case "help":
		return "commands: boot | status <rank> | run <job> <program> | remap <dims> | output <job> | ls | cat <file> | packaging | power", nil
	case "boot":
		if err := d.BootAll(p); err != nil {
			return "", err
		}
		return fmt.Sprintf("booted %d nodes", d.M.NumNodes()), nil
	case "status":
		if len(fields) < 2 {
			return "", fmt.Errorf("qcsh: status <rank>")
		}
		rank, err := strconv.Atoi(fields[1])
		if err != nil || rank < 0 || rank >= d.M.NumNodes() {
			return "", fmt.Errorf("qcsh: bad rank %q", fields[1])
		}
		return d.Status(p, rank)
	case "run":
		if len(fields) < 3 {
			return "", fmt.Errorf("qcsh: run <job> <program>")
		}
		reports, err := d.Run(p, fields[1], fields[2])
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("job %s completed on %d nodes", fields[1], len(reports)), nil
	case "remap":
		if len(fields) < 2 {
			return "", fmt.Errorf("qcsh: remap <dims>")
		}
		dims, err := strconv.Atoi(fields[1])
		if err != nil {
			return "", fmt.Errorf("qcsh: bad dimensionality %q", fields[1])
		}
		if err := d.Remap(dims); err != nil {
			return "", err
		}
		return fmt.Sprintf("partition remapped to %v", d.Fold().Logical()), nil
	case "output":
		if len(fields) < 2 {
			return "", fmt.Errorf("qcsh: output <job>")
		}
		return strings.Join(d.Output[fields[1]], "\n"), nil
	case "ls":
		names := make([]string, 0, len(d.FS))
		for n := range d.FS {
			names = append(names, n)
		}
		sort.Strings(names)
		return strings.Join(names, "\n"), nil
	case "cat":
		if len(fields) < 2 {
			return "", fmt.Errorf("qcsh: cat <file>")
		}
		data, ok := d.FS[fields[1]]
		if !ok {
			return "", fmt.Errorf("qcsh: no such file %q", fields[1])
		}
		return string(data), nil
	case "packaging", "power":
		pk := machine.PackagingFor(d.M.NumNodes(), d.M.Cfg.Clock)
		return pk.String(), nil
	default:
		return "", fmt.Errorf("qcsh: unknown command %q (try help)", fields[0])
	}
}
