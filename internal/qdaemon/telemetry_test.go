package qdaemon

import (
	"strconv"
	"strings"
	"testing"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/node"
	"qcdoc/internal/qos"
	"qcdoc/internal/scu"
)

// bootAndRun boots the machine and runs a program that moves real SCU
// traffic, so the counters fetched over the side network are non-trivial.
func bootAndRun(t *testing.T, d *Daemon, run func(fn func(p *event.Proc))) {
	t.Helper()
	d.LoadProgram("halo", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			n := ctx.N
			sendAddr := n.AllocWords(8)
			recvAddr := n.AllocWords(8)
			for i := 0; i < 8; i++ {
				n.Mem.WriteWord(sendAddr+8*uint64(i), uint64(rank+i))
			}
			rt, err := n.SCU.StartRecv(geom.Link{Dim: 0, Dir: geom.Bwd}, scu.Contiguous(recvAddr, 8))
			if err != nil {
				panic(err)
			}
			st, err := n.SCU.StartSend(geom.Link{Dim: 0, Dir: geom.Fwd}, scu.Contiguous(sendAddr, 8))
			if err != nil {
				panic(err)
			}
			st.Wait(ctx.P)
			rt.Wait(ctx.P)
			_ = qos.FromCtx(ctx)
		}
	})
	run(func(p *event.Proc) {
		if err := d.BootAll(p); err != nil {
			t.Error(err)
			return
		}
		if _, err := d.Run(p, "j", "halo"); err != nil {
			t.Error(err)
		}
	})
}

// TestHWStatOverSideNetwork fetches node state and SCU counters from a
// booted 16-node machine purely through OpReadWord peeks on the
// Ethernet/JTAG network and checks them word-for-word against the
// simulator-side scu.Stats.
func TestHWStatOverSideNetwork(t *testing.T) {
	_, d, run := harness(t, geom.MakeShape(4, 2, 2))
	bootAndRun(t, d, run)
	ctlBefore := d.Ctl.TxPackets
	run(func(p *event.Proc) {
		for r, n := range d.M.Nodes {
			st, got, err := d.HWStat(p, r)
			if err != nil {
				t.Errorf("hwstat %d: %v", r, err)
				return
			}
			if st != node.RunKernel {
				t.Errorf("node %d state %v", r, st)
			}
			if want := n.SCU.Stats(); got != want {
				t.Errorf("node %d: fetched %+v, simulator %+v", r, got, want)
			}
			if got.WordsSent == 0 {
				t.Errorf("node %d fetched zero traffic", r)
			}
		}
	})
	// The fetch itself is real side-network traffic: one request packet
	// per peeked word, at least (magic + state + NumStats) per node.
	minPkts := uint64(16 * (2 + scu.NumStats()))
	if sent := d.Ctl.TxPackets - ctlBefore; sent < minPkts {
		t.Fatalf("only %d control packets for the sweep, want >= %d", sent, minPkts)
	}
}

func TestLinkCountersOverSideNetwork(t *testing.T) {
	_, d, run := harness(t, geom.MakeShape(4, 2, 2))
	bootAndRun(t, d, run)
	links := []geom.Link{{Dim: 0, Dir: geom.Fwd}, {Dim: 0, Dir: geom.Bwd}, {Dim: 1, Dir: geom.Fwd}}
	run(func(p *event.Proc) {
		for _, l := range links {
			got, err := d.LinkCounters(p, 3, l)
			if err != nil {
				t.Errorf("link %v: %v", l, err)
				return
			}
			if want := d.M.Nodes[3].SCU.LinkStats(l); got != want {
				t.Errorf("link %v: fetched %+v, simulator %+v", l, got, want)
			}
		}
	})
	if _, err := (&Daemon{M: d.M}).PeekWord(nil, -1, 0); err == nil {
		t.Fatal("peek on bad rank accepted")
	}
}

func TestQcshTelemetryCommands(t *testing.T) {
	_, d, run := harness(t, geom.MakeShape(4, 2, 2))
	sh := &Qcsh{D: d}
	bootAndRun(t, d, run)
	run(func(p *event.Proc) {
		// hwstat, one node and the sweep.
		out, err := sh.Exec(p, "hwstat 0")
		if err != nil {
			t.Error(err)
			return
		}
		s0 := d.M.Nodes[0].SCU.Stats()
		if !strings.Contains(out, "node0 run-kernel") || !strings.Contains(out, "sent "+itoa(s0.WordsSent)) {
			t.Errorf("hwstat 0: %q", out)
		}
		out, err = sh.Exec(p, "hwstat")
		if err != nil {
			t.Error(err)
			return
		}
		if lines := strings.Split(out, "\n"); len(lines) != 16 {
			t.Errorf("hwstat sweep: %d lines", len(lines))
		}
		// counters: aggregate and per-link, values matching scu.Stats.
		out, err = sh.Exec(p, "counters 2")
		if err != nil {
			t.Error(err)
			return
		}
		s2 := d.M.Nodes[2].SCU.Stats()
		if !strings.Contains(out, "words_sent "+itoa(s2.WordsSent)) ||
			!strings.Contains(out, "acks_sent "+itoa(s2.AcksSent)) {
			t.Errorf("counters 2: %q", out)
		}
		out, err = sh.Exec(p, "counters 2 +0")
		if err != nil {
			t.Error(err)
			return
		}
		l2 := d.M.Nodes[2].SCU.LinkStats(geom.Link{Dim: 0, Dir: geom.Fwd})
		if !strings.Contains(out, "link +0") || !strings.Contains(out, "words_sent "+itoa(l2.WordsSent)) {
			t.Errorf("counters 2 +0: %q", out)
		}
		// Bad arguments fail cleanly.
		for _, bad := range []string{"hwstat 99", "counters", "counters 99", "counters 0 +9", "counters 0 q0"} {
			if _, err := sh.Exec(p, bad); err == nil {
				t.Errorf("%q accepted", bad)
			}
		}
		// trace: off by default, then on, record something, dump, off.
		if _, err := sh.Exec(p, "trace"); err == nil {
			t.Error("trace dump with recorder off accepted")
		}
		out, err = sh.Exec(p, "trace on 128")
		if err != nil || !strings.Contains(out, "128") {
			t.Errorf("trace on: %q, %v", out, err)
		}
		if _, err := sh.Exec(p, "status 1"); err != nil { // generate events
			t.Error(err)
		}
		out, err = sh.Exec(p, "trace 8")
		if err != nil {
			t.Error(err)
			return
		}
		if !strings.Contains(out, "flight recorder:") || !strings.Contains(out, "seq=") {
			t.Errorf("trace dump: %q", out)
		}
		if out, err = sh.Exec(p, "trace off"); err != nil || !strings.Contains(out, "off") {
			t.Errorf("trace off: %q, %v", out, err)
		}
	})
}

func itoa(v uint64) string { return strconv.FormatUint(v, 10) }
