// Package qdaemon is the host-side software of §3.1: the daemon running
// on the commercial SMP host that boots QCDOC over the Ethernet/JTAG
// network, loads run kernels over the standard Ethernet, tracks node
// status, manages machine partitions (including remapping to lower
// dimensionality), launches applications by RPC, collects their output,
// and serves the NFS shim backing the nodes' file writes. The qcsh
// command layer (qcsh.go) provides the user-facing command interface.
package qdaemon

import (
	"fmt"
	"strings"

	"qcdoc/internal/ethjtag"
	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/machine"
	"qcdoc/internal/node"
	"qcdoc/internal/qos"
)

// BootKernelPackets is the approximate number of Ethernet/JTAG packets
// that carry the boot kernel (§3.1: "each node receives about 100 UDP
// packets ... written directly into the instruction cache").
const BootKernelPackets = 100

// nodeTarget adapts a node to the JTAG controller's chip surface.
type nodeTarget struct{ n *node.Node }

// ReadWord serves a JTAG peek. Addresses at the top of the 64-bit space
// fall in the node's telemetry window (node.TelemetryBase) — the
// RISCWatch-style path the host uses to fetch hardware counters from a
// running node without involving the compute fabric; everything below is
// plain memory.
func (t nodeTarget) ReadWord(a uint64) uint64 {
	if node.IsTelemetryAddr(a) {
		return t.n.ReadTelemetryWord(a)
	}
	return t.n.Mem.ReadWord(a)
}
func (t nodeTarget) WriteWord(a uint64, w uint64)    { t.n.Mem.WriteWord(a, w) }
func (t nodeTarget) LoadBootWord(a uint64, w uint64) { t.n.LoadBootWord(a, w) }
func (t nodeTarget) StartBootKernel() error          { return t.n.StartBootKernel() }
func (t nodeTarget) StateCode() uint64               { return uint64(t.n.State()) }

// Daemon is the qdaemon.
type Daemon struct {
	Eng *event.Engine
	M   *machine.Machine
	Net *ethjtag.Network

	// The daemon uses multiple Gigabit Ethernet links (§3.1: "the
	// physical connection to QCDOC is via multiple Gigabit Ethernet
	// links"): Ctl carries synchronous request/reply traffic (JTAG
	// commands, kernel loads, job launches), Host receives asynchronous
	// node events (completions, stdout), and NFS serves the file shim.
	Ctl  *ethjtag.Port
	Host *ethjtag.Port
	NFS  *ethjtag.Port

	Kernels []*qos.Kernel
	JTAGs   []*ethjtag.JTAGController

	// FS is the host's RAID storage (§4: 6 TB of parallel RAID).
	FS map[string][]byte
	// Output collects application stdout lines per job.
	Output map[string][]string
	// doneCount tracks per-job completion RPCs.
	doneCount map[string]int
	doneGate  *event.Gate
	hwReports map[string][]string
	activeJob string

	// fold is the current partition mapping (§3.1: "a user requests that
	// the qdaemon remap their partition to a dimensionality between one
	// and six").
	fold *geom.Fold

	booted bool
}

// New wires a daemon to a built (untrained, unbooted) machine: it
// creates the management network with one standard-Ethernet and one
// JTAG port per node, the per-node run kernels, and the host ports, and
// starts every service loop.
func New(eng *event.Engine, m *machine.Machine) *Daemon {
	d := &Daemon{
		Eng:       eng,
		M:         m,
		Net:       ethjtag.NewNetwork(eng),
		FS:        map[string][]byte{},
		Output:    map[string][]string{},
		doneCount: map[string]int{},
		hwReports: map[string][]string{},
		fold:      geom.IdentityFold(m.Cfg.Shape),
	}
	d.doneGate = event.NewGate(eng)
	d.Host = d.Net.Attach(ethjtag.HostAddr, ethjtag.HostEthernetBps)
	d.NFS = d.Net.Attach(ethjtag.HostAddr+1, ethjtag.HostEthernetBps)
	d.Ctl = d.Net.Attach(ethjtag.HostAddr+2, ethjtag.HostEthernetBps)
	for r, n := range m.Nodes {
		eth := d.Net.Attach(ethjtag.NodeEthAddr(r), ethjtag.NodeEthernetBps)
		jp := d.Net.Attach(ethjtag.NodeJTAGAddr(r), ethjtag.NodeEthernetBps)
		k := qos.NewKernel(n, eth, ethjtag.HostAddr)
		k.NFS = ethjtag.HostAddr + 1
		k.Start(eng)
		ctl := &ethjtag.JTAGController{Port: jp, Target: nodeTarget{n}}
		ctl.Start(eng)
		d.Kernels = append(d.Kernels, k)
		d.JTAGs = append(d.JTAGs, ctl)
	}
	eng.SpawnDaemon("qdaemon host", d.hostLoop)
	eng.SpawnDaemon("qdaemon nfs", d.nfsLoop)
	return d
}

// hostLoop collects application completions and stdout.
func (d *Daemon) hostLoop(p *event.Proc) {
	for {
		pkt := d.Host.Recv(p)
		if pkt.Port != ethjtag.PortRPC {
			continue
		}
		fields := strings.Fields(string(pkt.Payload))
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "done":
			if len(fields) >= 3 {
				job := fields[1]
				d.doneCount[job]++
				d.hwReports[job] = append(d.hwReports[job], strings.Join(fields[2:], " "))
				d.doneGate.Fire()
			}
		case "stdout":
			if len(fields) >= 4 {
				// stdout <node> <seq> <text...> — attribute to the active job.
				line := fmt.Sprintf("%s: %s", fields[1], strings.Join(fields[3:], " "))
				d.Output[d.activeJob] = append(d.Output[d.activeJob], line)
			}
		}
	}
}

// nfsLoop serves the NFS shim: chunked writes land in the host FS.
func (d *Daemon) nfsLoop(p *event.Proc) {
	type pending struct {
		chunks map[int][]byte
		total  int
	}
	open := map[string]*pending{}
	for {
		pkt := d.NFS.Recv(p)
		if pkt.Port != ethjtag.PortNFS {
			continue
		}
		// "write <name> <i> <total> <data...>"
		s := string(pkt.Payload)
		var name string
		var i, total int
		idx := strings.Index(s, " ")
		if idx < 0 || s[:idx] != "write" {
			continue
		}
		rest := s[idx+1:]
		sp := strings.SplitN(rest, " ", 4)
		if len(sp) < 4 {
			continue
		}
		name = sp[0]
		fmt.Sscanf(sp[1], "%d", &i)
		fmt.Sscanf(sp[2], "%d", &total)
		key := fmt.Sprintf("%s|%d", name, pkt.Src)
		pd := open[key]
		if pd == nil {
			pd = &pending{chunks: map[int][]byte{}, total: total}
			open[key] = pd
		}
		pd.chunks[i] = []byte(sp[3])
		if len(pd.chunks) == pd.total {
			var data []byte
			for c := 0; c < pd.total; c++ {
				data = append(data, pd.chunks[c]...)
			}
			d.FS[name] = data
			delete(open, key)
		}
	}
}

// BootAll performs the full §3.1 bring-up from the host: HSSL training
// happens at power-on (machine.TrainLinks must have run); then, per
// node: ~100 Ethernet/JTAG packets of boot-kernel code, the JTAG start
// command, a status check, ~100 run-kernel packets over the standard
// Ethernet, and the kernel-start handshake.
func (d *Daemon) BootAll(p *event.Proc) error {
	for r := range d.M.Nodes {
		jaddr := ethjtag.NodeJTAGAddr(r)
		// Boot kernel over Ethernet/JTAG.
		for i := 0; i < BootKernelPackets; i++ {
			if err := d.Ctl.Send(ethjtag.Packet{
				Dst: jaddr, Port: ethjtag.PortJTAG,
				Payload: ethjtag.EncodeJTAG(ethjtag.OpLoadBoot, uint64(i*8), 0x60000000+uint64(i)),
			}); err != nil {
				return err
			}
			d.Ctl.Recv(p) // ack
		}
		if err := d.Ctl.Send(ethjtag.Packet{
			Dst: jaddr, Port: ethjtag.PortJTAG,
			Payload: ethjtag.EncodeJTAG(ethjtag.OpStartBoot, 0, 0),
		}); err != nil {
			return err
		}
		rep := d.Ctl.Recv(p)
		if _, _, code, _ := ethjtag.DecodeJTAG(rep.Payload); code != 0 {
			return fmt.Errorf("qdaemon: node %d refused boot", r)
		}
		// Run kernel over the standard Ethernet.
		eaddr := ethjtag.NodeEthAddr(r)
		img := make([]byte, qos.RunKernelPacketBytes)
		for i := 0; i < qos.RunKernelPackets; i++ {
			if err := d.Ctl.Send(ethjtag.Packet{Dst: eaddr, Port: ethjtag.PortBoot, Payload: img}); err != nil {
				return err
			}
		}
		if err := d.Ctl.Send(ethjtag.Packet{Dst: eaddr, Port: ethjtag.PortBoot, Payload: []byte("START")}); err != nil {
			return err
		}
		rep = d.Ctl.Recv(p)
		if string(rep.Payload) != "ok" {
			return fmt.Errorf("qdaemon: node %d run kernel: %s", r, rep.Payload)
		}
	}
	d.M.MarkBooted()
	d.booted = true
	return nil
}

// Booted reports whether BootAll completed.
func (d *Daemon) Booted() bool { return d.booted }

// LoadProgram registers an application on every node's kernel — the
// moral equivalent of copying a binary onto the host disks (the factory
// receives the node rank, since SPMD programs are rank-parameterized).
func (d *Daemon) LoadProgram(name string, factory func(rank int) node.Program) {
	for r, k := range d.Kernels {
		k.Programs[name] = factory(r)
	}
}

// Remap changes the partition's logical dimensionality (1..6), §3.1.
// The current implementation remaps the whole machine; the new fold is
// what subsequent jobs see.
func (d *Daemon) Remap(dims int) error {
	f, err := FoldToDims(d.M.Cfg.Shape, dims)
	if err != nil {
		return err
	}
	d.fold = f
	return nil
}

// Fold returns the current partition fold.
func (d *Daemon) Fold() *geom.Fold { return d.fold }

// FoldToDims folds a machine shape to the requested logical
// dimensionality: the largest dimensions become axes and the rest fold
// in round-robin, fastest-first.
func FoldToDims(shape geom.Shape, dims int) (*geom.Fold, error) {
	if dims < 1 || dims > geom.MaxDim {
		return nil, fmt.Errorf("qdaemon: dimensionality %d out of range 1..6", dims)
	}
	type de struct{ dim, ext int }
	var ds []de
	for dd := 0; dd < geom.MaxDim; dd++ {
		if shape[dd] > 1 {
			ds = append(ds, de{dd, shape[dd]})
		}
	}
	for i := 0; i < len(ds); i++ {
		for j := i + 1; j < len(ds); j++ {
			if ds[j].ext > ds[i].ext {
				ds[i], ds[j] = ds[j], ds[i]
			}
		}
	}
	var axes [][]int
	for i := 0; i < len(ds) && i < dims; i++ {
		axes = append(axes, []int{ds[i].dim})
	}
	for i := dims; i < len(ds); i++ {
		a := (i - dims) % len(axes)
		axes[a] = append([]int{ds[i].dim}, axes[a]...)
	}
	// Pad with extent-1 machine dims when the machine uses fewer
	// dimensions than requested.
	used := map[int]bool{}
	for _, dl := range axes {
		for _, dd := range dl {
			used[dd] = true
		}
	}
	for dd := 0; dd < geom.MaxDim && len(axes) < dims; dd++ {
		if !used[dd] && shape[dd] == 1 {
			axes = append(axes, []int{dd})
			used[dd] = true
		}
	}
	if len(axes) != dims {
		return nil, fmt.Errorf("qdaemon: cannot fold %v to %d dimensions", shape, dims)
	}
	return geom.NewFold(shape, axes)
}

// Run launches a loaded program on every node and blocks until all
// nodes report completion, returning the per-node hardware reports.
func (d *Daemon) Run(p *event.Proc, job, program string) ([]string, error) {
	if !d.booted {
		return nil, fmt.Errorf("qdaemon: machine not booted")
	}
	d.activeJob = job
	for r := range d.M.Nodes {
		if err := d.Ctl.Send(ethjtag.Packet{
			Dst: ethjtag.NodeEthAddr(r), Port: ethjtag.PortRPC,
			Payload: []byte(fmt.Sprintf("run %s %s", job, program)),
		}); err != nil {
			return nil, err
		}
	}
	// Consume the launch acks on the control port.
	for range d.M.Nodes {
		ack := d.Ctl.Recv(p)
		if !strings.HasPrefix(string(ack.Payload), "ok") {
			return nil, fmt.Errorf("qdaemon: launch failed: %s", ack.Payload)
		}
	}
	// Completions arrive asynchronously on the event port.
	want := len(d.M.Nodes)
	for d.doneCount[job] < want {
		d.doneGate.Wait(p, "job "+job)
	}
	return d.hwReports[job], nil
}

// Status queries one node's kernel over RPC.
func (d *Daemon) Status(p *event.Proc, rank int) (string, error) {
	err := d.Ctl.Send(ethjtag.Packet{
		Dst: ethjtag.NodeEthAddr(rank), Port: ethjtag.PortRPC,
		Payload: []byte("status"),
	})
	if err != nil {
		return "", err
	}
	rep := d.Ctl.Recv(p)
	return string(rep.Payload), nil
}
