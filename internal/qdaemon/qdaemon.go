// Package qdaemon is the host-side software of §3.1: the daemon running
// on the commercial SMP host that boots QCDOC over the Ethernet/JTAG
// network, loads run kernels over the standard Ethernet, tracks node
// status, manages machine partitions (including remapping to lower
// dimensionality), launches applications by RPC, collects their output,
// and serves the NFS shim backing the nodes' file writes. The qcsh
// command layer (qcsh.go) provides the user-facing command interface.
package qdaemon

import (
	"fmt"
	"strings"

	"qcdoc/internal/ethjtag"
	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/machine"
	"qcdoc/internal/node"
	"qcdoc/internal/qos"
	"qcdoc/internal/telemetry"
)

// BootKernelPackets is the approximate number of Ethernet/JTAG packets
// that carry the boot kernel (§3.1: "each node receives about 100 UDP
// packets ... written directly into the instruction cache").
const BootKernelPackets = 100

// nodeTarget adapts a node to the JTAG controller's chip surface.
type nodeTarget struct{ n *node.Node }

// ReadWord serves a JTAG peek. Addresses at the top of the 64-bit space
// fall in the node's telemetry window (node.TelemetryBase) — the
// RISCWatch-style path the host uses to fetch hardware counters from a
// running node without involving the compute fabric; everything below is
// plain memory.
func (t nodeTarget) ReadWord(a uint64) uint64 {
	if node.IsTelemetryAddr(a) {
		return t.n.ReadTelemetryWord(a)
	}
	return t.n.Mem.ReadWord(a)
}
func (t nodeTarget) WriteWord(a uint64, w uint64)    { t.n.Mem.WriteWord(a, w) }
func (t nodeTarget) LoadBootWord(a uint64, w uint64) { t.n.LoadBootWord(a, w) }
func (t nodeTarget) StartBootKernel() error          { return t.n.StartBootKernel() }
func (t nodeTarget) StateCode() uint64               { return uint64(t.n.State()) }

// Daemon is the qdaemon.
type Daemon struct {
	Eng *event.Engine
	M   *machine.Machine
	Net *ethjtag.Network

	// The daemon uses multiple Gigabit Ethernet links (§3.1: "the
	// physical connection to QCDOC is via multiple Gigabit Ethernet
	// links"): Ctl carries synchronous request/reply traffic (JTAG
	// commands, kernel loads, job launches), Host receives asynchronous
	// node events (completions, stdout), NFS serves the file shim, and
	// Mon is the watchdog's dedicated side-network port (so health
	// polls never interleave with the control program's exchanges).
	Ctl  *ethjtag.Port
	Host *ethjtag.Port
	NFS  *ethjtag.Port
	Mon  *ethjtag.Port

	// RPC is the request/reply retry policy (see retry.go); zero fields
	// take defaults.
	RPC      RPCConfig
	rpcStats RPCStats

	// Part tracks daughterboard health: jobs launch only on
	// non-isolated ranks (see partition.go).
	Part *PartitionMap
	wd   *Watchdog

	Kernels []*qos.Kernel
	JTAGs   []*ethjtag.JTAGController

	// FS is the host's RAID storage (§4: 6 TB of parallel RAID).
	FS map[string][]byte
	// Output collects application stdout lines per job.
	Output map[string][]string
	// doneCount tracks per-job completion RPCs.
	doneCount map[string]int
	doneGate  *event.Gate
	hwReports map[string][]string
	activeJob string
	abortErr  error

	// fold is the current partition mapping (§3.1: "a user requests that
	// the qdaemon remap their partition to a dimensionality between one
	// and six").
	fold *geom.Fold

	booted bool
}

// New wires a daemon to a built (untrained, unbooted) machine: it
// creates the management network with one standard-Ethernet and one
// JTAG port per node, the per-node run kernels, and the host ports, and
// starts every service loop.
func New(eng *event.Engine, m *machine.Machine) *Daemon {
	d := &Daemon{
		Eng:       eng,
		M:         m,
		Net:       ethjtag.NewNetwork(eng),
		FS:        map[string][]byte{},
		Output:    map[string][]string{},
		doneCount: map[string]int{},
		hwReports: map[string][]string{},
		fold:      geom.IdentityFold(m.Cfg.Shape),
		RPC:       DefaultRPCConfig(),
		Part:      NewPartitionMap(len(m.Nodes)),
	}
	d.doneGate = event.NewGate(eng)
	d.Host = d.Net.Attach(ethjtag.HostAddr, ethjtag.HostEthernetBps)
	d.NFS = d.Net.Attach(ethjtag.HostAddr+1, ethjtag.HostEthernetBps)
	d.Ctl = d.Net.Attach(ethjtag.HostAddr+2, ethjtag.HostEthernetBps)
	d.Mon = d.Net.Attach(ethjtag.HostAddr+3, ethjtag.HostEthernetBps)
	m.Reg.RegisterCounters("qdaemon/rpc", func(emit telemetry.EmitFunc) {
		emit("exchanges", d.rpcStats.Exchanges)
		emit("timeouts", d.rpcStats.Timeouts)
		emit("retries", d.rpcStats.Retries)
		emit("stale", d.rpcStats.Stale)
		emit("failures", d.rpcStats.Failures)
	})
	for r, n := range m.Nodes {
		// Node-side ports live on the node's shard engine, so kernel and
		// JTAG service run where the node's state does; the host ports
		// above stay on the network's engine.
		neng := m.NodeEngine(r)
		eth := d.Net.AttachOn(neng, ethjtag.NodeEthAddr(r), ethjtag.NodeEthernetBps)
		jp := d.Net.AttachOn(neng, ethjtag.NodeJTAGAddr(r), ethjtag.NodeEthernetBps)
		k := qos.NewKernel(n, eth, ethjtag.HostAddr)
		k.NFS = ethjtag.HostAddr + 1
		k.Start(neng)
		ctl := &ethjtag.JTAGController{Port: jp, Target: nodeTarget{n}}
		ctl.Start(neng)
		d.Kernels = append(d.Kernels, k)
		d.JTAGs = append(d.JTAGs, ctl)
	}
	eng.SpawnDaemon("qdaemon host", d.hostLoop)
	eng.SpawnDaemon("qdaemon nfs", d.nfsLoop)
	return d
}

// hostLoop collects application completions and stdout.
func (d *Daemon) hostLoop(p *event.Proc) {
	for {
		pkt := d.Host.Recv(p)
		if pkt.Port != ethjtag.PortRPC {
			continue
		}
		fields := strings.Fields(string(pkt.Payload))
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "done":
			if len(fields) >= 3 {
				job := fields[1]
				d.doneCount[job]++
				d.hwReports[job] = append(d.hwReports[job], strings.Join(fields[2:], " "))
				d.doneGate.Fire()
			}
		case "stdout":
			if len(fields) >= 4 {
				// stdout <node> <seq> <text...> — attribute to the active job.
				line := fmt.Sprintf("%s: %s", fields[1], strings.Join(fields[3:], " "))
				d.Output[d.activeJob] = append(d.Output[d.activeJob], line)
			}
		}
	}
}

// nfsLoop serves the NFS shim: chunked writes land in the host FS.
func (d *Daemon) nfsLoop(p *event.Proc) {
	type pending struct {
		chunks map[int][]byte
		total  int
	}
	open := map[string]*pending{}
	for {
		pkt := d.NFS.Recv(p)
		if pkt.Port != ethjtag.PortNFS {
			continue
		}
		// "write <name> <i> <total> <data...>"
		s := string(pkt.Payload)
		var name string
		var i, total int
		idx := strings.Index(s, " ")
		if idx < 0 || s[:idx] != "write" {
			continue
		}
		rest := s[idx+1:]
		sp := strings.SplitN(rest, " ", 4)
		if len(sp) < 4 {
			continue
		}
		name = sp[0]
		fmt.Sscanf(sp[1], "%d", &i)
		fmt.Sscanf(sp[2], "%d", &total)
		key := fmt.Sprintf("%s|%d", name, pkt.Src)
		pd := open[key]
		if pd == nil {
			pd = &pending{chunks: map[int][]byte{}, total: total}
			open[key] = pd
		}
		pd.chunks[i] = []byte(sp[3])
		if len(pd.chunks) == pd.total {
			var data []byte
			for c := 0; c < pd.total; c++ {
				data = append(data, pd.chunks[c]...)
			}
			d.FS[name] = data
			delete(open, key)
		}
	}
}

// BootAll performs the full §3.1 bring-up from the host: HSSL training
// happens at power-on (machine.TrainLinks must have run); then, per
// node: ~100 Ethernet/JTAG packets of boot-kernel code, the JTAG start
// command, a status check, ~100 run-kernel packets over the standard
// Ethernet, and the kernel-start handshake. Every request/reply step
// rides the retry machinery (retry.go): a single lost datagram costs a
// timeout and a retransmission, not a wedged boot. Ranks already
// isolated by the partition map are skipped.
func (d *Daemon) BootAll(p *event.Proc) error {
	for r := range d.M.Nodes {
		if d.Part.Isolated(r) {
			continue
		}
		if err := d.bootNode(p, r); err != nil {
			return err
		}
	}
	d.M.MarkBooted()
	d.booted = true
	return nil
}

// bootNode brings one node from reset to run-kernel state.
func (d *Daemon) bootNode(p *event.Proc, r int) error {
	// Boot kernel over Ethernet/JTAG: each code word is one reliable
	// exchange (before retry.go, a lost ack deadlocked the boot here).
	for i := 0; i < BootKernelPackets; i++ {
		if _, err := d.jtagExchange(p, d.Ctl, r, ethjtag.OpLoadBoot, uint64(i*8), 0x60000000+uint64(i), true); err != nil {
			return err
		}
	}
	code, err := d.jtagExchange(p, d.Ctl, r, ethjtag.OpStartBoot, 0, 0, false)
	if err != nil {
		return err
	}
	if code != 0 {
		// OpStartBoot is not idempotent: when an earlier attempt's reply
		// was lost, the retransmission finds the node already out of
		// reset and is refused. The idempotent status op disambiguates a
		// genuine refusal from a lost ack.
		state, serr := d.jtagExchange(p, d.Ctl, r, ethjtag.OpStatus, 0, 0, false)
		if serr != nil {
			return serr
		}
		if node.State(state) == node.Reset {
			return fmt.Errorf("qdaemon: node %d refused boot", r)
		}
	}
	// Run kernel over the standard Ethernet: the image packets are
	// fire-and-forget UDP; only the final START is a handshake.
	eaddr := ethjtag.NodeEthAddr(r)
	img := make([]byte, qos.RunKernelPacketBytes)
	for i := 0; i < qos.RunKernelPackets; i++ {
		if err := d.Ctl.Send(ethjtag.Packet{Dst: eaddr, Port: ethjtag.PortBoot, Payload: img}); err != nil {
			return err
		}
	}
	rep, err := d.exchange(p, d.Ctl, ethjtag.Packet{Dst: eaddr, Port: ethjtag.PortBoot, Payload: []byte("START")},
		fmt.Sprintf("node %d run-kernel start", r),
		func(rep ethjtag.Packet) bool { return rep.Src == eaddr && rep.Port == ethjtag.PortBoot })
	if err != nil {
		return err
	}
	if string(rep.Payload) != "ok" {
		// A START retransmitted after a lost "ok" is refused ("run
		// kernel start in state run-kernel"); the status RPC confirms
		// whether the kernel actually installed.
		st, serr := d.statusExchange(p, r)
		if serr != nil || !strings.Contains(st, "state=run-kernel") {
			return fmt.Errorf("qdaemon: node %d run kernel: %s", r, rep.Payload)
		}
	}
	return nil
}

// Booted reports whether BootAll completed.
func (d *Daemon) Booted() bool { return d.booted }

// LoadProgram registers an application on every node's kernel — the
// moral equivalent of copying a binary onto the host disks (the factory
// receives the node rank, since SPMD programs are rank-parameterized).
func (d *Daemon) LoadProgram(name string, factory func(rank int) node.Program) {
	for r, k := range d.Kernels {
		k.Programs[name] = factory(r)
	}
}

// Remap changes the partition's logical dimensionality (1..6), §3.1.
// The current implementation remaps the whole machine; the new fold is
// what subsequent jobs see.
func (d *Daemon) Remap(dims int) error {
	f, err := FoldToDims(d.M.Cfg.Shape, dims)
	if err != nil {
		return err
	}
	d.fold = f
	return nil
}

// Fold returns the current partition fold.
func (d *Daemon) Fold() *geom.Fold { return d.fold }

// FoldToDims folds a machine shape to the requested logical
// dimensionality: the largest dimensions become axes and the rest fold
// in round-robin, fastest-first.
func FoldToDims(shape geom.Shape, dims int) (*geom.Fold, error) {
	if dims < 1 || dims > geom.MaxDim {
		return nil, fmt.Errorf("qdaemon: dimensionality %d out of range 1..6", dims)
	}
	type de struct{ dim, ext int }
	var ds []de
	for dd := 0; dd < geom.MaxDim; dd++ {
		if shape[dd] > 1 {
			ds = append(ds, de{dd, shape[dd]})
		}
	}
	for i := 0; i < len(ds); i++ {
		for j := i + 1; j < len(ds); j++ {
			if ds[j].ext > ds[i].ext {
				ds[i], ds[j] = ds[j], ds[i]
			}
		}
	}
	var axes [][]int
	for i := 0; i < len(ds) && i < dims; i++ {
		axes = append(axes, []int{ds[i].dim})
	}
	for i := dims; i < len(ds); i++ {
		a := (i - dims) % len(axes)
		axes[a] = append([]int{ds[i].dim}, axes[a]...)
	}
	// Pad with extent-1 machine dims when the machine uses fewer
	// dimensions than requested.
	used := map[int]bool{}
	for _, dl := range axes {
		for _, dd := range dl {
			used[dd] = true
		}
	}
	for dd := 0; dd < geom.MaxDim && len(axes) < dims; dd++ {
		if !used[dd] && shape[dd] == 1 {
			axes = append(axes, []int{dd})
			used[dd] = true
		}
	}
	if len(axes) != dims {
		return nil, fmt.Errorf("qdaemon: cannot fold %v to %d dimensions", shape, dims)
	}
	return geom.NewFold(shape, axes)
}

// Run launches a loaded program on every non-isolated node and blocks
// until all of them report completion, returning the per-node hardware
// reports. Launch requests are pipelined (all sent, then acks
// collected) with timeout-and-retransmit on the stragglers; a node that
// reports the program already running — the signature of a retried
// launch whose first ack was lost — counts as launched. If the
// watchdog detects a node death while the job is in flight, Run returns
// its *AbortError instead of waiting forever for a completion that
// cannot come.
func (d *Daemon) Run(p *event.Proc, job, program string) ([]string, error) {
	if !d.booted {
		return nil, fmt.Errorf("qdaemon: machine not booted")
	}
	if d.abortErr != nil {
		// A death was detected between jobs — during a recovery's
		// restore, say. It must surface here, not be silently swallowed
		// by the launch; takeAbort consumes it so the operator's next
		// job (on the now-isolated partition) starts clean.
		return nil, d.takeAbort()
	}
	d.activeJob = job
	ranks := d.Part.HealthyRanks()
	launch := func(r int) error {
		return d.Ctl.Send(ethjtag.Packet{
			Dst: ethjtag.NodeEthAddr(r), Port: ethjtag.PortRPC,
			Payload: []byte(fmt.Sprintf("run %s %s", job, program)),
		})
	}
	pending := map[ethjtag.Addr]int{}
	for _, r := range ranks {
		if err := launch(r); err != nil {
			return nil, err
		}
		pending[ethjtag.NodeEthAddr(r)] = r
	}
	cfg := d.RPC.withDefaults()
	timeout := cfg.Timeout
	for attempt := 1; len(pending) > 0; {
		ack, ok := d.Ctl.RecvTimeout(p, timeout)
		if !ok {
			d.rpcStats.Timeouts++
			attempt++
			if attempt > cfg.Retries {
				d.rpcStats.Failures++
				return nil, fmt.Errorf("qdaemon: launch %s: %d nodes never acknowledged", job, len(pending))
			}
			// Retransmit to the stragglers, in rank order.
			for _, r := range ranks {
				if _, still := pending[ethjtag.NodeEthAddr(r)]; still {
					d.rpcStats.Retries++
					if err := launch(r); err != nil {
						return nil, err
					}
				}
			}
			if timeout *= 2; timeout > cfg.MaxTimeout {
				timeout = cfg.MaxTimeout
			}
			continue
		}
		r, want := pending[ack.Src]
		if !want || ack.Port != ethjtag.PortRPC {
			d.rpcStats.Stale++
			continue
		}
		pl := string(ack.Payload)
		switch {
		case strings.HasPrefix(pl, "ok"):
			d.rpcStats.Exchanges++
			delete(pending, ack.Src)
		case strings.Contains(pl, "cannot run application in state app-running"):
			// The first launch took; its ack was lost and the retry
			// found the application already running.
			d.rpcStats.Exchanges++
			delete(pending, ack.Src)
		default:
			return nil, fmt.Errorf("qdaemon: launch failed on node %d: %s", r, pl)
		}
	}
	// Completions arrive asynchronously on the event port; an abort
	// (watchdog-detected death) fires the same gate.
	want := len(ranks)
	for d.doneCount[job] < want {
		if d.abortErr != nil {
			return nil, d.takeAbort()
		}
		d.doneGate.Wait(p, "job "+job)
	}
	if d.abortErr != nil {
		return nil, d.takeAbort()
	}
	return d.hwReports[job], nil
}

// AbortJob makes a blocked Run return err instead of waiting for
// completions that will never arrive. The watchdog calls it on death
// detection; idempotent. With no job active the abort is recorded as
// pending and the next Run returns it immediately — a death detected
// mid-recovery (after the old job died, before the new one launched)
// must re-enter detection/isolation, not vanish.
func (d *Daemon) AbortJob(err error) {
	if d.abortErr != nil {
		return
	}
	d.abortErr = err
	d.doneGate.Fire()
}

// Aborted returns the pending abort, if a death was detected since the
// last Run reported one.
func (d *Daemon) Aborted() error { return d.abortErr }

// takeAbort consumes the pending abort: each detection is reported by
// exactly one Run return.
func (d *Daemon) takeAbort() error {
	err := d.abortErr
	d.abortErr = nil
	return err
}

// Status queries one node's kernel over RPC.
func (d *Daemon) Status(p *event.Proc, rank int) (string, error) {
	return d.statusExchange(p, rank)
}

// statusExchange is the reliable status RPC: the reply must come from
// the queried node and look like a status line.
func (d *Daemon) statusExchange(p *event.Proc, rank int) (string, error) {
	eaddr := ethjtag.NodeEthAddr(rank)
	rep, err := d.exchange(p, d.Ctl, ethjtag.Packet{
		Dst: eaddr, Port: ethjtag.PortRPC, Payload: []byte("status"),
	}, fmt.Sprintf("node %d status", rank), func(rep ethjtag.Packet) bool {
		return rep.Src == eaddr && rep.Port == ethjtag.PortRPC && strings.HasPrefix(string(rep.Payload), "state=")
	})
	if err != nil {
		return "", err
	}
	return string(rep.Payload), nil
}
