package qdaemon

// Host-side RPC reliability. The management network is UDP (§2.3): a
// request or its reply can be lost, and before this layer existed a
// single lost ack wedged the boot protocol forever on a bare Recv. Every
// synchronous request/reply the daemon performs now goes through
// exchange: a per-packet timeout on the simulation clock, bounded
// exponential backoff between retransmissions, and a reply matcher that
// discards stale datagrams (late replies to an earlier attempt). All
// timers are event-engine timers, so a run with a given fault plan is
// bit-reproducible.

import (
	"fmt"

	"qcdoc/internal/ethjtag"
	"qcdoc/internal/event"
)

// RPCConfig parameterizes the daemon's request/reply retry policy.
type RPCConfig struct {
	// Timeout is the initial per-attempt reply timeout. It must cover a
	// worst-case benign round trip — including the ~450 us serialization
	// backlog the run-kernel image download leaves on the host port —
	// so the no-fault packet stream carries no retransmissions.
	Timeout event.Time
	// MaxTimeout caps the exponential backoff.
	MaxTimeout event.Time
	// Retries is the total number of attempts before giving up.
	Retries int
}

// DefaultRPCConfig returns the daemon's standard retry policy.
func DefaultRPCConfig() RPCConfig {
	return RPCConfig{
		Timeout:    event.Millisecond,
		MaxTimeout: 8 * event.Millisecond,
		Retries:    6,
	}
}

func (c RPCConfig) withDefaults() RPCConfig {
	d := DefaultRPCConfig()
	if c.Timeout <= 0 {
		c.Timeout = d.Timeout
	}
	if c.MaxTimeout < c.Timeout {
		c.MaxTimeout = c.Timeout
	}
	if c.Retries <= 0 {
		c.Retries = d.Retries
	}
	return c
}

// RPCStats counts the retry machinery's work — the recovery audit trail
// the telemetry registry exports (qdaemon/rpc).
type RPCStats struct {
	// Exchanges is the number of request/reply transactions completed.
	Exchanges uint64
	// Timeouts counts reply timeouts (each one is a retransmission or,
	// on the last attempt, a failure).
	Timeouts uint64
	// Retries counts retransmitted requests.
	Retries uint64
	// Stale counts discarded replies that matched no outstanding request
	// (duplicates, or late replies to an attempt already retried).
	Stale uint64
	// Failures counts exchanges abandoned after all attempts.
	Failures uint64
}

// RPCStats returns the daemon's cumulative retry counters.
func (d *Daemon) RPCStats() RPCStats { return d.rpcStats }

// exchange performs one reliable request/reply transaction on a host
// port: send req, wait for a reply match accepts, retransmit on timeout
// with doubling backoff, and give up after cfg.Retries attempts.
// Non-matching datagrams (stale replies from abandoned attempts) are
// counted and discarded, restarting the wait. The caller owns the port:
// each host port has exactly one process doing synchronous exchanges on
// it (the control program on Ctl, the watchdog on Mon), so a matched
// reply always belongs to the request just sent.
func (d *Daemon) exchange(p *event.Proc, port *ethjtag.Port, req ethjtag.Packet, what string, match func(ethjtag.Packet) bool) (ethjtag.Packet, error) {
	cfg := d.RPC.withDefaults()
	timeout := cfg.Timeout
	for attempt := 1; ; attempt++ {
		if err := port.Send(req); err != nil {
			return ethjtag.Packet{}, err
		}
		for {
			rep, ok := port.RecvTimeout(p, timeout)
			if !ok {
				break
			}
			if match(rep) {
				d.rpcStats.Exchanges++
				return rep, nil
			}
			d.rpcStats.Stale++
		}
		d.rpcStats.Timeouts++
		if attempt >= cfg.Retries {
			d.rpcStats.Failures++
			return ethjtag.Packet{}, fmt.Errorf("qdaemon: %s: no reply after %d attempts", what, attempt)
		}
		d.rpcStats.Retries++
		timeout *= 2
		if timeout > cfg.MaxTimeout {
			timeout = cfg.MaxTimeout
		}
	}
}

// jtagExchange performs a reliable JTAG transaction with a node: the
// reply must come from the node's JTAG address and echo the op (and,
// when addrMatters, the address — OpStartBoot and OpStatus replies
// carry no address).
func (d *Daemon) jtagExchange(p *event.Proc, port *ethjtag.Port, rank int, op ethjtag.JTAGOp, addr, data uint64, addrMatters bool) (uint64, error) {
	jaddr := ethjtag.NodeJTAGAddr(rank)
	what := fmt.Sprintf("node %d jtag op %d addr %#x", rank, op, addr)
	rep, err := d.exchange(p, port, ethjtag.Packet{
		Dst: jaddr, Port: ethjtag.PortJTAG,
		Payload: ethjtag.EncodeJTAG(op, addr, data),
	}, what, func(rep ethjtag.Packet) bool {
		if rep.Src != jaddr || rep.Port != ethjtag.PortJTAG {
			return false
		}
		rop, raddr, _, derr := ethjtag.DecodeJTAG(rep.Payload)
		return derr == nil && rop == op && (!addrMatters || raddr == addr)
	})
	if err != nil {
		return 0, err
	}
	_, _, rdata, _ := ethjtag.DecodeJTAG(rep.Payload)
	return rdata, nil
}
