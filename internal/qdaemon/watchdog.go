package qdaemon

// The heartbeat watchdog: the host-side failure detector. Run kernels
// tick a per-node heartbeat counter (qos.Kernel.StartHeartbeat); the
// watchdog polls each node's telemetry window over the Ethernet/JTAG
// side network — the RISCWatch path, which needs no software on the
// node — and declares a node dead when its lifecycle state reads
// Crashed or its heartbeat freezes for Misses consecutive polls (the
// hung case, where state still claims app-running). A death marks the
// owning daughterboard failed in the partition map and aborts the
// active job so the recovery flow (repartition, restore checkpoint,
// restart) can take over.
//
// The watchdog runs on its own host port (Daemon.Mon) so its peeks
// never interleave with the control program's synchronous exchanges on
// Ctl. All waiting is simulation-clock sleeps and timeouts: a run with
// a given fault plan detects the same death at the same picosecond
// every time.

import (
	"fmt"

	"qcdoc/internal/event"
	"qcdoc/internal/node"
	"qcdoc/internal/telemetry"
)

// WatchdogConfig parameterizes failure detection.
type WatchdogConfig struct {
	// Period is the polling interval.
	Period event.Time
	// Misses is how many consecutive polls may observe a frozen
	// heartbeat (or fail outright) before the node is declared dead.
	Misses int
}

// DefaultWatchdogConfig returns the standard detection policy.
func DefaultWatchdogConfig() WatchdogConfig {
	return WatchdogConfig{Period: 500 * event.Microsecond, Misses: 3}
}

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	d := DefaultWatchdogConfig()
	if c.Period <= 0 {
		c.Period = d.Period
	}
	if c.Misses <= 0 {
		c.Misses = d.Misses
	}
	return c
}

// FailureRecord describes one detected node death.
type FailureRecord struct {
	// Rank is the dead node; Board its daughterboard.
	Rank, Board int
	// Crashed is true when the lifecycle state read Crashed (fast
	// detection); false for the frozen-heartbeat (hang) path.
	Crashed bool
	// DetectedAt is when the watchdog declared the death.
	DetectedAt event.Time
	// DetectLatency is DetectedAt minus the last poll that observed the
	// node making progress — the window during which the machine ran
	// with an undetected dead node.
	DetectLatency event.Time
}

func (f FailureRecord) String() string {
	kind := "hung"
	if f.Crashed {
		kind = "crashed"
	}
	return fmt.Sprintf("node %d (board %d) %s, detected at %v (latency %v)",
		f.Rank, f.Board, kind, f.DetectedAt, f.DetectLatency)
}

// AbortError is the error a job launch returns when the watchdog
// aborted it after detecting a node death. The chaos/recovery driver
// treats it as "restore checkpoint and restart on the survivors".
type AbortError struct {
	Job string
	Rec FailureRecord
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("qdaemon: job %s aborted: %s", e.Job, e.Rec)
}

// FalsePositiveRecord is one rejected death report: a node reported
// dead whose liveness probe found it making progress.
type FalsePositiveRecord struct {
	Rank int
	// At is when the probe rejected the report.
	At event.Time
}

// Watchdog is the host's failure detector.
type Watchdog struct {
	d   *Daemon
	cfg WatchdogConfig

	lastBeat []uint64
	lastLive []event.Time // last poll that observed progress
	stale    []int
	dead     []bool
	suspect  []bool // externally filed death reports awaiting a probe

	// Polls counts per-node poll rounds; PeekErrors counts side-network
	// peeks that exhausted their retries (each also counts as a miss).
	Polls      uint64
	PeekErrors uint64
	// Probes counts liveness re-checks run before isolation.
	Probes uint64
	// DetectHist is the distribution of detection latencies.
	DetectHist telemetry.Histogram
	// Failures is every detected death, in detection order.
	Failures []FailureRecord
	// FalsePositives is every rejected death report, in probe order.
	FalsePositives []FalsePositiveRecord
	// OnFailure, when set, observes each detection (after the partition
	// map is updated and the active job aborted).
	OnFailure func(FailureRecord)
	// OnFalsePositive, when set, observes each rejected report.
	OnFalsePositive func(FalsePositiveRecord)
}

// StartWatchdog arms the heartbeat watchdog. Heartbeats must be ticking
// (Daemon.EnableHeartbeats) or every node will look hung after Misses
// polls. The watchdog polls forever; it is a daemon process and does
// not keep the engine alive by itself.
func (d *Daemon) StartWatchdog(cfg WatchdogConfig) *Watchdog {
	if d.wd != nil {
		return d.wd
	}
	w := &Watchdog{d: d, cfg: cfg.withDefaults()}
	n := len(d.M.Nodes)
	w.lastBeat = make([]uint64, n)
	w.lastLive = make([]event.Time, n)
	w.stale = make([]int, n)
	w.dead = make([]bool, n)
	w.suspect = make([]bool, n)
	d.wd = w
	d.M.Reg.RegisterCounters("qdaemon/watchdog", func(emit telemetry.EmitFunc) {
		emit("polls", w.Polls)
		emit("peek_errors", w.PeekErrors)
		emit("probes", w.Probes)
		emit("false_positives", uint64(len(w.FalsePositives)))
		emit("deaths", uint64(len(w.Failures)))
		for _, f := range w.Failures {
			emit(fmt.Sprintf("detect_latency_ps/node%d", f.Rank), uint64(f.DetectLatency))
		}
	})
	d.M.Reg.RegisterHistograms("qdaemon", func(emit telemetry.HistEmitFunc) {
		emit("watchdog_detect_ps", w.DetectHist.Snapshot())
	})
	d.Eng.SpawnDaemon("qdaemon watchdog", w.loop)
	return w
}

// Watchdog returns the armed watchdog, or nil.
func (d *Daemon) Watchdog() *Watchdog { return d.wd }

// EnableHeartbeats starts every node kernel's liveness tick; see
// qos.Kernel.StartHeartbeat. Chaos/recovery runs call this after boot;
// the default event stream never carries heartbeats.
func (d *Daemon) EnableHeartbeats(period event.Time) {
	for r, k := range d.Kernels {
		// The tick mutates node state, so the timer must live on the
		// node's shard engine — and must be armed from there too.
		k := k
		neng := d.M.NodeEngine(r)
		d.Eng.CrossAt(neng, d.Eng.Now(), func() { k.StartHeartbeat(neng, period) })
	}
}

func (w *Watchdog) loop(p *event.Proc) {
	now := w.d.Eng.Now()
	for r := range w.lastLive {
		w.lastLive[r] = now
	}
	for {
		p.Sleep(w.cfg.Period)
		w.Polls++
		for r := range w.d.M.Nodes {
			if w.dead[r] || w.d.Part.Isolated(r) {
				continue
			}
			w.poll(p, r)
		}
	}
}

// Suspect files an external death report for a live-looking node — the
// operator (or a fault plan) claiming rank is dead. The next poll runs
// the liveness probe: a node making progress survives the report as a
// recorded false positive; a genuinely dead one is isolated through the
// normal path. Call from the watchdog's own (host) engine.
func (w *Watchdog) Suspect(rank int) {
	if rank < 0 || rank >= len(w.suspect) || w.dead[rank] {
		return
	}
	w.suspect[rank] = true
}

// poll observes one node over the side network and applies the death
// criteria.
func (w *Watchdog) poll(p *event.Proc, r int) {
	suspect := w.suspect[r]
	w.suspect[r] = false
	state, serr := w.d.peekWordOn(p, w.d.Mon, r, node.TelemetryAddr(node.TelemStateWord))
	beat, berr := uint64(0), error(nil)
	if serr == nil {
		beat, berr = w.d.peekWordOn(p, w.d.Mon, r, node.TelemetryAddr(node.TelemHeartbeatWord))
	}
	now := w.d.Eng.Now()
	switch {
	case serr != nil || berr != nil:
		// The side network itself failed us; treat like a missed beat.
		w.PeekErrors++
		w.stale[r]++
	case node.State(state) == node.Crashed:
		// The lifecycle state is authoritative hardware — no probe.
		w.declareDead(r, true, now)
		return
	case beat != w.lastBeat[r]:
		w.lastBeat[r] = beat
		w.lastLive[r] = now
		w.stale[r] = 0
	default:
		w.stale[r]++
	}
	if !suspect && w.stale[r] < w.cfg.Misses {
		return
	}
	// Isolation gate: frozen-heartbeat convictions and external death
	// reports both pass the JTAG liveness re-check before a board is
	// pulled from the partition. Only hardware-attested crashes skip it.
	dead, crashed := w.probe(p, r)
	now = w.d.Eng.Now()
	if !dead {
		rec := FalsePositiveRecord{Rank: r, At: now}
		w.FalsePositives = append(w.FalsePositives, rec)
		w.stale[r] = 0
		w.lastLive[r] = now
		if w.OnFalsePositive != nil {
			w.OnFalsePositive(rec)
		}
		return
	}
	w.declareDead(r, crashed, now)
}

// probe is the JTAG liveness re-check before isolation: re-read the
// lifecycle state (a Crashed read is authoritative), then watch the
// heartbeat across one poll period — progress refutes the report. All
// waiting is sim-clock, so accept and reject runs stay bit-identical.
func (w *Watchdog) probe(p *event.Proc, r int) (dead, crashed bool) {
	w.Probes++
	state, serr := w.d.peekWordOn(p, w.d.Mon, r, node.TelemetryAddr(node.TelemStateWord))
	if serr == nil && node.State(state) == node.Crashed {
		return true, true
	}
	beat0, b0err := w.d.peekWordOn(p, w.d.Mon, r, node.TelemetryAddr(node.TelemHeartbeatWord))
	p.Sleep(w.cfg.Period)
	beat1, b1err := w.d.peekWordOn(p, w.d.Mon, r, node.TelemetryAddr(node.TelemHeartbeatWord))
	if b0err == nil && b1err == nil && beat1 != beat0 {
		w.lastBeat[r] = beat1
		return false, false
	}
	return true, false
}

func (w *Watchdog) declareDead(r int, crashed bool, now event.Time) {
	// Everything the detection triggers — isolation, job abort, the
	// recovery the driver runs next — descends causally from here, so
	// open a fresh flow: the whole detect→isolate→recover sequence
	// exports as one Chrome-trace flow. Trace metadata only.
	eng := w.d.Eng
	flow := eng.NewFlow()
	prev := eng.SetFlow(flow)
	eng.MarkSpanBegin("failure-recovery")
	w.dead[r] = true
	rec := FailureRecord{
		Rank:          r,
		Crashed:       crashed,
		DetectedAt:    now,
		DetectLatency: now - w.lastLive[r],
	}
	w.DetectHist.Record(uint64(rec.DetectLatency))
	rec.Board, _ = w.d.Part.MarkFailed(r)
	w.Failures = append(w.Failures, rec)
	w.d.AbortJob(&AbortError{Job: w.d.activeJob, Rec: rec})
	if w.OnFailure != nil {
		w.OnFailure(rec)
	}
	eng.MarkSpanEnd("failure-recovery")
	eng.SetFlow(prev)
}
