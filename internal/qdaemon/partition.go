package qdaemon

// Partition health. QCDOC's field-replaceable unit is the daughterboard
// (§2.4: two ASICs, two DIMMs, an Ethernet hub on one small board), so
// that is the granularity of isolation: when the watchdog declares any
// node dead, the daemon marks the owning daughterboard failed and both
// of its nodes leave the partition. Jobs launch only on non-isolated
// nodes, and the recovery flow repartitions the survivors before
// restarting from checkpoint.

import (
	"qcdoc/internal/machine"
)

// PartitionMap tracks which daughterboards of a partition have been
// marked failed and which node ranks are therefore isolated.
type PartitionMap struct {
	nodes  int
	failed []bool // per daughterboard
}

// NewPartitionMap returns an all-healthy map for an n-node partition.
func NewPartitionMap(nodes int) *PartitionMap {
	boards := (nodes + machine.NodesPerDaughterboard - 1) / machine.NodesPerDaughterboard
	return &PartitionMap{nodes: nodes, failed: make([]bool, boards)}
}

// BoardOf returns the daughterboard index owning a rank.
func BoardOf(rank int) int { return rank / machine.NodesPerDaughterboard }

// MarkFailed records a node failure: the owning daughterboard is marked
// failed, isolating every node on it. It returns the board index and
// whether this call changed the map.
func (pm *PartitionMap) MarkFailed(rank int) (board int, changed bool) {
	board = BoardOf(rank)
	if pm.failed[board] {
		return board, false
	}
	pm.failed[board] = true
	return board, true
}

// Isolated reports whether a rank's daughterboard has been marked
// failed.
func (pm *PartitionMap) Isolated(rank int) bool { return pm.failed[BoardOf(rank)] }

// FailedBoards returns the failed daughterboard indices, ascending.
func (pm *PartitionMap) FailedBoards() []int {
	var out []int
	for b, f := range pm.failed {
		if f {
			out = append(out, b)
		}
	}
	return out
}

// HealthyRanks returns the non-isolated ranks, ascending.
func (pm *PartitionMap) HealthyRanks() []int {
	out := make([]int, 0, pm.nodes)
	for r := 0; r < pm.nodes; r++ {
		if !pm.Isolated(r) {
			out = append(out, r)
		}
	}
	return out
}

// HealthyCount returns the number of non-isolated ranks.
func (pm *PartitionMap) HealthyCount() int { return len(pm.HealthyRanks()) }

// LargestPow2Partition returns the largest power-of-two node count that
// fits in the healthy set — the natural repartition size for a machine
// whose shapes are power-of-two tori. Zero when nothing is healthy.
func (pm *PartitionMap) LargestPow2Partition() int {
	h := pm.HealthyCount()
	p := 0
	for c := 1; c <= h; c <<= 1 {
		p = c
	}
	return p
}
