package qdaemon

import (
	"fmt"

	"qcdoc/internal/ethjtag"
	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/node"
	"qcdoc/internal/scu"
)

// Host-side hardware monitoring (§2.3): the daemon fetches node
// telemetry by peeking the telemetry window over the Ethernet/JTAG side
// network — OpReadWord packets to the node's JTAG connection, exactly
// the RISCWatch debugging path, requiring no software on the node. Each
// word fetched is one real request/reply exchange on the simulated
// management network; the peek itself has no side effect on the node.

// PeekWord reads one 64-bit word from a node over Ethernet/JTAG, with
// the retry machinery of retry.go underneath (a lost peek or reply
// costs a timeout, not a hang).
func (d *Daemon) PeekWord(p *event.Proc, rank int, addr uint64) (uint64, error) {
	return d.peekWordOn(p, d.Ctl, rank, addr)
}

// peekWordOn is PeekWord on an explicit host port — the watchdog peeks
// on its own port (Daemon.Mon) so health polls never interleave with
// the control program's exchanges.
func (d *Daemon) peekWordOn(p *event.Proc, port *ethjtag.Port, rank int, addr uint64) (uint64, error) {
	if rank < 0 || rank >= len(d.M.Nodes) {
		return 0, fmt.Errorf("qdaemon: peek on bad rank %d", rank)
	}
	return d.jtagExchange(p, port, rank, ethjtag.OpReadWord, addr, 0, true)
}

// peekTelemetry fetches one telemetry-window word.
func (d *Daemon) peekTelemetry(p *event.Proc, rank, word int) (uint64, error) {
	return d.PeekWord(p, rank, node.TelemetryAddr(word))
}

// peekStats assembles a Stats from consecutive telemetry words starting
// at base, using the same field table that defined them on the node.
func (d *Daemon) peekStats(p *event.Proc, rank, base int) (scu.Stats, error) {
	var s scu.Stats
	for i := 0; i < scu.NumStats(); i++ {
		v, err := d.peekTelemetry(p, rank, base+i)
		if err != nil {
			return s, err
		}
		s.SetValue(i, v)
	}
	return s, nil
}

// verifyTelemetryWindow peeks the magic word so a caller gets a clear
// error instead of zeros when pointed at something that is not a
// telemetry window.
func (d *Daemon) verifyTelemetryWindow(p *event.Proc, rank int) error {
	magic, err := d.peekTelemetry(p, rank, node.TelemMagicWord)
	if err != nil {
		return err
	}
	if magic != node.TelemetryMagic {
		return fmt.Errorf("qdaemon: node %d telemetry magic %#x, want %#x", rank, magic, node.TelemetryMagic)
	}
	return nil
}

// HWStat fetches one node's lifecycle state and aggregate SCU counters
// over the side network.
func (d *Daemon) HWStat(p *event.Proc, rank int) (node.State, scu.Stats, error) {
	var s scu.Stats
	if err := d.verifyTelemetryWindow(p, rank); err != nil {
		return 0, s, err
	}
	st, err := d.peekTelemetry(p, rank, node.TelemStateWord)
	if err != nil {
		return 0, s, err
	}
	s, err = d.peekStats(p, rank, node.TelemAggWord)
	return node.State(st), s, err
}

// LinkCounters fetches one link's SCU counters over the side network.
func (d *Daemon) LinkCounters(p *event.Proc, rank int, l geom.Link) (scu.Stats, error) {
	var s scu.Stats
	if err := d.verifyTelemetryWindow(p, rank); err != nil {
		return s, err
	}
	base := node.TelemLinkWord + geom.LinkIndex(l)*node.TelemLinkStride
	return d.peekStats(p, rank, base)
}
