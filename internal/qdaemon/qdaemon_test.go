package qdaemon

import (
	"strings"
	"testing"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/machine"
	"qcdoc/internal/node"
	"qcdoc/internal/qos"
)

// harness builds a machine with a daemon, trains links (power-on), and
// returns a runner that executes a control program on the engine.
func harness(t *testing.T, shape geom.Shape) (*event.Engine, *Daemon, func(fn func(p *event.Proc))) {
	t.Helper()
	eng := event.New()
	m := machine.Build(eng, machine.DefaultConfig(shape))
	if err := m.TrainLinks(); err != nil {
		t.Fatal(err)
	}
	d := New(eng, m)
	t.Cleanup(func() { eng.Shutdown() })
	run := func(fn func(p *event.Proc)) {
		eng.Spawn("control", fn)
		if err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
	}
	return eng, d, run
}

// TestE13BootProtocol boots a 8-node machine through the full packet
// protocol and verifies the paper's packet counts: ~100 Ethernet/JTAG
// packets for the boot kernel and ~100 UDP packets for the run kernel,
// per node (§3.1).
func TestE13BootProtocol(t *testing.T) {
	_, d, run := harness(t, geom.MakeShape(2, 2, 2))
	var bootErr error
	run(func(p *event.Proc) { bootErr = d.BootAll(p) })
	if bootErr != nil {
		t.Fatal(bootErr)
	}
	for r, n := range d.M.Nodes {
		if n.State() != node.RunKernel {
			t.Fatalf("node %d state %v", r, n.State())
		}
		// Boot kernel: exactly the JTAG code words we sent.
		if n.BootWords() != BootKernelPackets {
			t.Fatalf("node %d got %d boot words", r, n.BootWords())
		}
		// Run kernel: ~100 image packets counted by the kernel.
		if got := d.Kernels[r].KernelPackets(); got != qos.RunKernelPackets {
			t.Fatalf("node %d got %d run-kernel packets", r, got)
		}
		// The JTAG controller served load + start.
		if served := d.JTAGs[r].Served; served != BootKernelPackets+1 {
			t.Fatalf("node %d JTAG served %d", r, served)
		}
	}
}

func TestJobLaunchAndOutput(t *testing.T) {
	_, d, run := harness(t, geom.MakeShape(2, 2))
	d.LoadProgram("hello", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			k := qos.FromCtx(ctx)
			k.Printf("hello from rank %d", rank)
			ctx.P.Sleep(event.Microsecond)
		}
	})
	var reports []string
	run(func(p *event.Proc) {
		if err := d.BootAll(p); err != nil {
			t.Error(err)
			return
		}
		var err error
		reports, err = d.Run(p, "job1", "hello")
		if err != nil {
			t.Error(err)
		}
	})
	if len(reports) != 4 {
		t.Fatalf("%d completion reports", len(reports))
	}
	for _, r := range reports {
		if !strings.Contains(r, "parity=0") {
			t.Fatalf("hardware report %q", r)
		}
	}
	out := d.Output["job1"]
	if len(out) != 4 {
		t.Fatalf("stdout lines: %v", out)
	}
	seen := map[string]bool{}
	for _, line := range out {
		seen[line] = true
	}
	if len(seen) != 4 {
		t.Fatalf("duplicate stdout: %v", out)
	}
}

func TestNFSWrites(t *testing.T) {
	_, d, run := harness(t, geom.MakeShape(2))
	payload := strings.Repeat("configuration-data-", 200) // forces chunking
	d.LoadProgram("writer", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			k := qos.FromCtx(ctx)
			if rank == 0 {
				k.WriteFile(ctx.P, "lattice.cfg", []byte(payload))
			}
		}
	})
	run(func(p *event.Proc) {
		if err := d.BootAll(p); err != nil {
			t.Error(err)
			return
		}
		if _, err := d.Run(p, "w", "writer"); err != nil {
			t.Error(err)
		}
	})
	got, ok := d.FS["lattice.cfg"]
	if !ok {
		t.Fatal("file did not reach the host")
	}
	if string(got) != payload {
		t.Fatalf("file corrupted: %d vs %d bytes", len(got), len(payload))
	}
}

func TestRunWithoutBootFails(t *testing.T) {
	_, d, run := harness(t, geom.MakeShape(2))
	var err error
	run(func(p *event.Proc) { _, err = d.Run(p, "j", "nothing") })
	if err == nil {
		t.Fatal("run before boot accepted")
	}
}

func TestUnknownProgram(t *testing.T) {
	_, d, run := harness(t, geom.MakeShape(2))
	var err error
	run(func(p *event.Proc) {
		if e := d.BootAll(p); e != nil {
			t.Error(e)
			return
		}
		_, err = d.Run(p, "j", "no-such-binary")
	})
	if err == nil {
		t.Fatal("unknown program accepted")
	}
}

func TestRemap(t *testing.T) {
	// E13: partitions remap to dimensionalities 1..6 (§3.1), preserving
	// node count and nearest-neighbour mapping (the fold machinery).
	shape := geom.MakeShape(4, 2, 2, 2)
	_, d, _ := harness(t, shape)
	for dims := 1; dims <= 4; dims++ {
		if err := d.Remap(dims); err != nil {
			t.Fatalf("remap %d: %v", dims, err)
		}
		f := d.Fold()
		if f.Logical().Volume() != shape.Volume() {
			t.Fatalf("remap %d lost nodes", dims)
		}
		got := 0
		for _, e := range f.Logical() {
			if e > 1 {
				got++
			}
		}
		if got > dims {
			t.Fatalf("remap %d gave %d active dims", dims, got)
		}
	}
	if err := d.Remap(0); err == nil {
		t.Fatal("remap 0 accepted")
	}
	if err := d.Remap(7); err == nil {
		t.Fatal("remap 7 accepted")
	}
}

func TestQcshCommands(t *testing.T) {
	_, d, run := harness(t, geom.MakeShape(2, 2))
	sh := &Qcsh{D: d}
	d.LoadProgram("noop", func(rank int) node.Program {
		return func(ctx *node.Ctx) { qos.FromCtx(ctx).Printf("ok %d", rank) }
	})
	var outputs []string
	var errs []error
	run(func(p *event.Proc) {
		for _, cmd := range []string{
			"help",
			"boot",
			"status 0",
			"run demo noop",
			"output demo",
			"remap 2",
			"packaging",
			"ls",
		} {
			out, err := sh.Exec(p, cmd)
			outputs = append(outputs, out)
			errs = append(errs, err)
		}
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("command %d: %v", i, err)
		}
	}
	if !strings.Contains(outputs[1], "booted 4 nodes") {
		t.Fatalf("boot: %q", outputs[1])
	}
	if !strings.Contains(outputs[2], "state=run-kernel") {
		t.Fatalf("status: %q", outputs[2])
	}
	if !strings.Contains(outputs[3], "completed on 4 nodes") {
		t.Fatalf("run: %q", outputs[3])
	}
	if !strings.Contains(outputs[4], "ok") {
		t.Fatalf("output: %q", outputs[4])
	}
	// Unknown command errors.
	var err error
	run(func(p *event.Proc) { _, err = sh.Exec(p, "frobnicate") })
	if err == nil {
		t.Fatal("unknown command accepted")
	}
}
