// Package scu implements the QCDOC Serial Communications Unit (§2.2): the
// custom ASIC block that drives the six-dimensional nearest-neighbour
// network. Each SCU manages 24 independent uni-directional connections
// (concurrent sends and receives to 12 neighbours), with:
//
//   - DMA engines with block-strided access to local memory, giving
//     zero-copy memory-to-memory transfers (~600 ns nearest neighbour);
//   - the "three in the air" acknowledgement window that amortizes the
//     round-trip handshake and sustains full link bandwidth;
//   - automatic hardware resend on parity or header errors (Nak/rewind);
//   - idle receive: data arriving before a receive is programmed is held
//     (up to three words) in SCU registers without acknowledgement,
//     blocking the sender until a destination is supplied — so sends and
//     receives need no temporal ordering;
//   - supervisor packets: single words delivered to a neighbour's SCU
//     register, raising a CPU interrupt there;
//   - partition interrupt packets, flood-forwarded with per-link
//     de-duplication and sampled on the slow global clock;
//   - a global-operation mode where incoming words pass through to any
//     set of outgoing links while being stored locally, in two disjoint
//     ("doubled") streams — the substrate for fast global sums and
//     broadcasts;
//   - per-link-end checksums compared at the end of a calculation.
package scu

import (
	"errors"
	"fmt"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/hssl"
	"qcdoc/internal/scupkt"
	"qcdoc/internal/telemetry"
)

// Memory is the SCU's view of the node's local memory: 64-bit words at
// byte addresses. The DMA engines read and write it directly (the paper's
// zero-copy property — data is never staged through an intermediate
// buffer).
type Memory interface {
	ReadWord(addr uint64) uint64
	WriteWord(addr uint64, w uint64)
}

// Config holds the SCU timing and protocol parameters.
type Config struct {
	// Clock is the link/processor clock (the HSSL links run at the same
	// clock as the processor; target 500 MHz).
	Clock event.Hz
	// TxStartupCycles is charged once per send transfer: DMA programming
	// plus the pipeline from local memory through the SCU to the first
	// bit on the wire. Default 125 cycles (250 ns at 500 MHz).
	TxStartupCycles int64
	// RxStartupCycles is the receive-side pipeline from last bit on the
	// wire to the word landing in local memory. Default 100 cycles
	// (200 ns at 500 MHz). Together with 72 bits of serialization and the
	// wire flight time this calibrates the paper's ~600 ns nearest-
	// neighbour memory-to-memory latency.
	RxStartupCycles int64
	// Window is the number of unacknowledged data words allowed in
	// flight. Default (and hardware value) 3; must be < scupkt.SeqMod.
	Window int
	// AckTimeout triggers a resend of the oldest unacknowledged word,
	// recovering from corrupted acknowledgement frames. It must be much
	// larger than the round trip so it never fires spuriously. Default
	// 50 us.
	AckTimeout event.Time
	// RetrainAfter is the number of consecutive acknowledgement timeouts
	// (with no ack progress in between) after which the SCU resets and
	// re-trains the outbound wire instead of resending again — the
	// recovery for a link whose sampling phase has drifted or that is
	// suffering a burst error. Default 4; negative disables retraining.
	RetrainAfter int
	// MaxRetrains is the number of consecutive re-trainings (with no ack
	// progress in between) after which the SCU gives up, declares the
	// link dead, and escalates via the supervisor interrupt path.
	// Default 3; negative disables the give-up.
	MaxRetrains int
}

// DefaultConfig returns the paper's nominal 500 MHz configuration.
func DefaultConfig() Config {
	return Config{
		Clock:           500 * event.MHz,
		TxStartupCycles: 125,
		RxStartupCycles: 100,
		Window:          scupkt.WindowSize,
		AckTimeout:      50 * event.Microsecond,
		RetrainAfter:    4,
		MaxRetrains:     3,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Clock == 0 {
		c.Clock = d.Clock
	}
	if c.TxStartupCycles == 0 {
		c.TxStartupCycles = d.TxStartupCycles
	}
	if c.RxStartupCycles == 0 {
		c.RxStartupCycles = d.RxStartupCycles
	}
	if c.Window == 0 {
		c.Window = d.Window
	}
	if c.AckTimeout == 0 {
		c.AckTimeout = d.AckTimeout
	}
	if c.RetrainAfter == 0 {
		c.RetrainAfter = d.RetrainAfter
	}
	if c.MaxRetrains == 0 {
		c.MaxRetrains = d.MaxRetrains
	}
	if c.Window >= scupkt.SeqMod {
		// The window protocol cannot distinguish a full window from an
		// empty one once Window reaches the sequence modulus, and the
		// link unit's resend/idle-receive register files are sized SeqMod.
		panic(fmt.Sprintf("scu: Window %d must be < scupkt.SeqMod (%d)", c.Window, scupkt.SeqMod))
	}
	return c
}

// Stats aggregates per-link protocol counters.
type Stats struct {
	WordsSent     uint64 // first transmissions of data words
	WordsReceived uint64 // in-order accepted data words
	AcksSent      uint64
	NaksSent      uint64
	Resends       uint64 // retransmitted data words (rewind + timeout)
	ParityErrors  uint64
	HeaderErrors  uint64
	Duplicates    uint64 // discarded duplicate data words
	SupsSent      uint64
	SupsReceived  uint64
	PartIRQsSent  uint64
	PartIRQsRecvd uint64
	Retrains      uint64 // link re-trainings forced by ack-timeout streaks
	LinkFailures  uint64 // links declared dead after MaxRetrains gave up
}

// statsFields is the single definition of the protocol counter set:
// telemetry name plus field accessor, in a stable order. Stats.Add,
// Stats.Each, the indexed Value/SetValue accessors and the node's
// telemetry peek window all walk this table, so adding a counter here is
// the whole job — aggregation, registry export and the host-side fetch
// path pick it up at once. Write-once at declaration, read-only after:
// every machine in a fleet walks the same table.
//
//qcdoclint:global-ok read-only counter descriptor table
var statsFields = []struct {
	name string
	get  func(*Stats) *uint64
}{
	{"words_sent", func(s *Stats) *uint64 { return &s.WordsSent }},
	{"words_received", func(s *Stats) *uint64 { return &s.WordsReceived }},
	{"acks_sent", func(s *Stats) *uint64 { return &s.AcksSent }},
	{"naks_sent", func(s *Stats) *uint64 { return &s.NaksSent }},
	{"resends", func(s *Stats) *uint64 { return &s.Resends }},
	{"parity_errors", func(s *Stats) *uint64 { return &s.ParityErrors }},
	{"header_errors", func(s *Stats) *uint64 { return &s.HeaderErrors }},
	{"duplicates", func(s *Stats) *uint64 { return &s.Duplicates }},
	{"sups_sent", func(s *Stats) *uint64 { return &s.SupsSent }},
	{"sups_received", func(s *Stats) *uint64 { return &s.SupsReceived }},
	{"partirqs_sent", func(s *Stats) *uint64 { return &s.PartIRQsSent }},
	{"partirqs_recvd", func(s *Stats) *uint64 { return &s.PartIRQsRecvd }},
	{"retrains", func(s *Stats) *uint64 { return &s.Retrains }},
	{"link_failures", func(s *Stats) *uint64 { return &s.LinkFailures }},
}

// NumStats is the number of counters in Stats, in table order.
func NumStats() int { return len(statsFields) }

// StatsNames returns the counter names in table order.
func StatsNames() []string {
	names := make([]string, len(statsFields))
	for i, f := range statsFields {
		names[i] = f.name
	}
	return names
}

// Add accumulates o into s, field by field from the shared table.
func (s *Stats) Add(o *Stats) {
	for _, f := range statsFields {
		*f.get(s) += *f.get(o)
	}
}

// Each calls emit for every counter in table order.
func (s *Stats) Each(emit func(name string, v uint64)) {
	for _, f := range statsFields {
		emit(f.name, *f.get(s))
	}
}

// Value returns counter i in table order (the indexed view the telemetry
// peek window serves word by word).
func (s *Stats) Value(i int) uint64 { return *statsFields[i].get(s) }

// SetValue stores counter i in table order (for reassembling a Stats
// from peeked words on the host side).
func (s *Stats) SetValue(i int, v uint64) { *statsFields[i].get(s) = v }

// SCU is one node's serial communications unit.
type SCU struct {
	eng  *event.Engine
	name string
	mem  Memory
	cfg  Config

	links [geom.NumLinks]*linkUnit

	onSupervisor  func(l geom.Link, word uint64)
	onLinkFailure func(l geom.Link)
	lastSup       [geom.NumLinks]uint64
	failedLinks   uint64 // bitmask by link index; see raiseLinkFailure

	// WindowArm, when set by the machine, is called whenever a new
	// partition-interrupt bit becomes pending on this node, so the
	// machine can schedule the next global-clock sampling window.
	WindowArm func()

	part    partState
	globals [2]*globalStream
	// globalIn maps a link index to the stream consuming its inbound
	// data words, or -1.
	globalIn [geom.NumLinks]int

	started bool
}

// New creates an SCU for a node. mem is the node's local memory as seen
// by the DMA engines.
func New(eng *event.Engine, name string, mem Memory, cfg Config) *SCU {
	s := &SCU{eng: eng, name: name, mem: mem, cfg: cfg.withDefaults()}
	for i := range s.globalIn {
		s.globalIn[i] = -1
	}
	s.part.init(s)
	return s
}

// Name returns the SCU's name (usually the node's coordinate).
func (s *SCU) Name() string { return s.name }

// Errors returned by SCU operations.
var (
	ErrLinkNotAttached = errors.New("scu: link not attached")
	ErrNotStarted      = errors.New("scu: not started")
	ErrBadDescriptor   = errors.New("scu: invalid DMA descriptor")
	ErrBadStream       = errors.New("scu: invalid global stream configuration")
)

// AttachLink wires one of the twelve nearest-neighbour connections:
// out carries this node's transmissions toward the (dim, dir) neighbour
// and in carries that neighbour's transmissions back. Must be called
// before Start.
func (s *SCU) AttachLink(l geom.Link, out, in *hssl.Wire) {
	if s.started {
		panic("scu: AttachLink after Start")
	}
	s.links[geom.LinkIndex(l)] = newLinkUnit(s, l, out, in)
}

// Attached reports whether the link has been wired.
func (s *SCU) Attached(l geom.Link) bool { return s.links[geom.LinkIndex(l)] != nil }

// Start brings up the per-link hardware engines (transmit and receive
// state machines) on the event engine's continuation tier — no
// goroutines; a link costs only its state struct. The wires must already
// be trained.
func (s *SCU) Start() {
	if s.started {
		return
	}
	s.started = true
	for _, lu := range s.links {
		if lu != nil {
			lu.start()
		}
	}
}

func (s *SCU) linkUnit(l geom.Link) (*linkUnit, error) {
	lu := s.links[geom.LinkIndex(l)]
	if lu == nil {
		return nil, fmt.Errorf("%w: %s %v", ErrLinkNotAttached, s.name, l)
	}
	if !s.started {
		return nil, fmt.Errorf("%w: %s", ErrNotStarted, s.name)
	}
	return lu, nil
}

// StartSend programs a DMA send on link l: the descriptor's words are
// fetched from local memory and transmitted. The returned transfer
// completes when every word has been acknowledged by the neighbour.
// There is no need for the neighbour to have programmed its receive
// first (idle receive holds early words).
func (s *SCU) StartSend(l geom.Link, d DMADesc) (*Transfer, error) {
	lu, err := s.linkUnit(l)
	if err != nil {
		return nil, err
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	t := newTransfer(s.eng, l, d, true)
	lu.queueSend(t)
	return t, nil
}

// StartRecv programs a DMA receive on link l: incoming data words are
// stored at the descriptor's addresses. Completes when all words have
// landed in local memory.
func (s *SCU) StartRecv(l geom.Link, d DMADesc) (*Transfer, error) {
	lu, err := s.linkUnit(l)
	if err != nil {
		return nil, err
	}
	if err := d.validate(); err != nil {
		return nil, err
	}
	t := newTransfer(s.eng, l, d, false)
	lu.programRecv(t)
	return t, nil
}

// SendSupervisor sends a single 64-bit supervisor word to the (dim, dir)
// neighbour, where it raises a CPU interrupt. Supervisor packets take
// priority over queued data and are individually acknowledged
// (stop-and-wait); under link errors delivery is at-least-once.
func (s *SCU) SendSupervisor(l geom.Link, word uint64) error {
	lu, err := s.linkUnit(l)
	if err != nil {
		return err
	}
	lu.sendSupervisor(word)
	return nil
}

// OnSupervisor registers the CPU interrupt handler for incoming
// supervisor words. The handler runs in the receiving link's context at
// the simulated arrival time.
func (s *SCU) OnSupervisor(fn func(l geom.Link, word uint64)) { s.onSupervisor = fn }

// SupLinkFailed is the supervisor word delivered with the link-failure
// escalation: when a link gives up after MaxRetrains, the SCU raises
// the same CPU interrupt a neighbour's supervisor packet would, with
// this distinguished word ("LNKDEAD" in ASCII), so supervisor-level
// software learns about dead links through its existing interrupt path.
const SupLinkFailed uint64 = 0x004C4E4B44454144

// OnLinkFailure registers a callback invoked (before the supervisor
// escalation interrupt) when a link is declared permanently dead.
func (s *SCU) OnLinkFailure(fn func(l geom.Link)) { s.onLinkFailure = fn }

// raiseLinkFailure records a dead link and escalates: first the
// dedicated failure callback, then the supervisor interrupt path with
// the SupLinkFailed word in the link's supervisor register.
func (s *SCU) raiseLinkFailure(l geom.Link) {
	s.failedLinks |= 1 << uint(geom.LinkIndex(l))
	s.lastSup[geom.LinkIndex(l)] = SupLinkFailed
	if s.onLinkFailure != nil {
		s.onLinkFailure(l)
	}
	if s.onSupervisor != nil {
		s.onSupervisor(l, SupLinkFailed)
	}
}

// FailedLinks returns the bitmask of links declared permanently dead
// (bit i set = link index i failed). The node's telemetry window
// exposes this word, so the host-side watchdog sees link deaths without
// any cooperation from the node's software.
func (s *SCU) FailedLinks() uint64 { return s.failedLinks }

// LinkDead reports whether link l has been declared permanently dead.
func (s *SCU) LinkDead(l geom.Link) bool {
	return s.failedLinks&(1<<uint(geom.LinkIndex(l))) != 0
}

// LastSupervisor returns the most recent supervisor word received on l
// (the SCU register the packet lands in).
func (s *SCU) LastSupervisor(l geom.Link) uint64 { return s.lastSup[geom.LinkIndex(l)] }

// Stats returns protocol counters summed over all links via the shared
// field table — the per-link counters are the single source of truth;
// this aggregate (like the machine-level one) is derived on demand.
func (s *SCU) Stats() Stats {
	var total Stats
	for _, lu := range s.links {
		if lu != nil {
			total.Add(&lu.stats)
		}
	}
	return total
}

// LinkStats returns the counters of a single link.
func (s *SCU) LinkStats(l geom.Link) Stats {
	if lu := s.links[geom.LinkIndex(l)]; lu != nil {
		return lu.stats
	}
	return Stats{}
}

// LinkHists holds one link's latency distributions: how long each data
// word stayed unacknowledged (first transmission to the cumulative ack
// that retired it) and the gap between successive transmissions of a
// resent word. Nil-gated like the node counter block: recording costs
// one pointer test when disabled.
type LinkHists struct {
	InFlight  telemetry.Histogram
	ResendGap telemetry.Histogram
}

// EnableLinkHists switches on per-link latency histograms for every
// attached link. Idempotent; enabling mid-run starts the distributions
// from empty.
func (s *SCU) EnableLinkHists() {
	for _, lu := range s.links {
		if lu != nil && lu.hist == nil {
			lu.hist = &LinkHists{}
		}
	}
}

// LinkHists returns link l's histogram block, or nil when disabled or
// the link is unattached.
func (s *SCU) LinkHists(l geom.Link) *LinkHists {
	if lu := s.links[geom.LinkIndex(l)]; lu != nil {
		return lu.hist
	}
	return nil
}

// Checksums returns the transmit-side and receive-side end-of-link
// checksums for link l: the transmit sum covers words sent toward the
// (dim,dir) neighbour, the receive sum covers words accepted from it.
// Comparing the transmit sum with the neighbour's opposite-link receive
// sum confirms no erroneous data was exchanged (§2.2).
func (s *SCU) Checksums(l geom.Link) (tx, rx scupkt.Checksum) {
	if lu := s.links[geom.LinkIndex(l)]; lu != nil {
		return lu.txSum, lu.rxSum
	}
	return
}

// Engine returns the event engine the SCU runs on.
func (s *SCU) Engine() *event.Engine { return s.eng }

// Clock returns the configured link clock.
func (s *SCU) Clock() event.Hz { return s.cfg.Clock }
