package scu

import (
	"errors"
	"fmt"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/hssl"
	"qcdoc/internal/scupkt"
)

// pendingWord is a transmitted-but-unacknowledged data word held in the
// SCU's resend registers. sentAt is the last transmission time, kept
// for the in-flight/resend-gap histograms (telemetry only; the resend
// protocol never reads it).
type pendingWord struct {
	seq    int
	word   uint64
	sentAt event.Time
	t      *Transfer // owning send transfer; nil for injected global words
}

// Transmit-engine state labels (continuation tier).
const (
	txIdle    = "idle"        // nothing to send
	txStartup = "dma startup" // charging the DMA programming/fetch pipeline
	txRun     = "run"         // streaming words
	txWindow  = "window full" // a word is held, waiting for an ack
)

// linkUnit is the per-link hardware: a transmit engine feeding the
// outbound wire and a receive engine draining the inbound wire. Both are
// flat state machines on the engine's continuation tier — a 1024-node
// machine has 12288 of each, so they must cost no goroutines, no
// per-event channel handoffs, and (like the hardware, which has no
// allocator) no steady-state heap allocations per data word: packets
// encode into value frames, the resend and idle-receive registers are
// fixed arrays, and the recurring timers and pump wake-ups are pre-bound
// callbacks created once at Start. Acknowledgements for our
// transmissions arrive on the inbound wire, multiplexed with the
// neighbour's own traffic.
type linkUnit struct {
	scu  *SCU
	link geom.Link
	out  *hssl.Wire
	in   *hssl.Wire

	stats Stats
	hist  *LinkHists      // latency distributions; nil until enabled
	txSum scupkt.Checksum // data words transmitted (first transmissions)
	rxSum scupkt.Checksum // data words accepted in order

	// Transmit side. The engine advances via pump(): every entry point
	// that creates transmit work (a programmed send, an injected global
	// word, a window-opening ack, the end of the DMA startup charge)
	// calls pump, which sends words until it must park — idle, in the
	// startup charge, or with the window full.
	sm          *event.StateMachine
	pumpFn      func()       // pre-bound deferred pump (see kick)
	startupFn   func()       // pre-bound end of the DMA startup charge
	ackTimer    *event.Timer // lost-acknowledgement recovery
	supTimer    *event.Timer // supervisor stop-and-wait recovery
	pumpPending bool         // a deferred pump event is queued
	txPending   []*Transfer  // programmed send transfers, FIFO
	cur         *Transfer    // transfer currently streaming
	curIdx      int          // next word index within cur
	held        bool         // a fetched word is in hand, awaiting window room
	heldWord    uint64
	heldT       *Transfer
	seqNext     int

	// injects holds global-operation words awaiting priority
	// transmission: a head-indexed queue whose storage is reset (not
	// freed) whenever it drains, so a long run of global operations
	// reuses one backing array.
	injects []uint64
	injHead int

	// unacked is the hardware's resend register file: at most Window
	// (< SeqMod) words, a fixed ring.
	unacked     [scupkt.SeqMod]pendingWord
	unackedHead int
	unackedLen  int

	supPending bool
	supWord    uint64
	supQueue   []uint64

	// Link-recovery escalation ladder (ack timeout → retrain → dead).
	// timeoutStreak counts consecutive recovery timeouts since the last
	// acknowledgement progress; retrainCount counts consecutive
	// re-trainings since the last progress. Both reset whenever an ack
	// pops the window or a supervisor ack lands.
	timeoutStreak int
	retrainCount  int
	retraining    bool // outbound wire is re-training; transmissions suppressed
	dead          bool // link declared permanently failed; see fail

	// Receive side: a pure continuation — handleFrame runs directly in
	// each frame's arrival event.
	expect     int
	nakPending bool
	rxT        []*Transfer // programmed receive transfers, FIFO
	rxProgress int         // words stored into rxT[0]

	// idleBuf is the idle-receive register file: up to Window words held
	// without acknowledgement until a receive is programmed.
	idleBuf     [scupkt.SeqMod]uint64
	idleBufHead int
	idleBufLen  int
}

func newLinkUnit(s *SCU, l geom.Link, out, in *hssl.Wire) *linkUnit {
	return &linkUnit{
		scu:  s,
		link: l,
		out:  out,
		in:   in,
	}
}

func (lu *linkUnit) start() {
	lu.sm = lu.scu.eng.NewStateMachine(
		fmt.Sprintf("%s scu%v tx", lu.scu.name, lu.link), txIdle)
	// The recurring per-word callbacks are bound once here; arming or
	// deferring them afterwards allocates nothing.
	lu.pumpFn = func() {
		lu.pumpPending = false
		lu.pump()
	}
	lu.startupFn = func() {
		lu.sm.Goto(txRun)
		lu.pump()
	}
	lu.ackTimer = lu.scu.eng.NewTimer(lu.ackTimeout)
	lu.supTimer = lu.scu.eng.NewTimer(lu.supTimeout)
	lu.in.OnFrame(lu.handleFrame)
	if lu.injectsLen() > 0 {
		lu.kick(txIdle) // drain anything injected before Start
	}
}

// sendPacket encodes and transmits one packet as a value frame, treating
// an untrained wire as an assembly error (the machine trains all links
// at boot, before the SCU engines start moving data). While the link is
// re-training or after it has been declared dead, transmissions are
// silently suppressed instead: every suppressed data word is still in
// the unacked ring (or covered by a stop-and-wait timer), so the window
// protocol re-issues it once the link is back — or never, if it isn't.
//qcdoc:noalloc
func (lu *linkUnit) sendPacket(p scupkt.Packet) {
	if lu.retraining || lu.dead {
		return
	}
	if _, err := lu.out.Send(p.Wire()); err != nil {
		panic(fmt.Sprintf("scu %s link %v: %v", lu.scu.name, lu.link, err)) //qcdoclint:alloc-ok cold assembly-error path
	}
}

// --- Transmit engine ---------------------------------------------------

// queueSend programs a DMA send transfer and kicks the transmit engine.
func (lu *linkUnit) queueSend(t *Transfer) {
	lu.txPending = append(lu.txPending, t)
	lu.kick(txIdle)
}

// inject queues a global-operation word for priority transmission.
func (lu *linkUnit) inject(w uint64) {
	lu.injects = append(lu.injects, w)
	lu.kick(txIdle)
}

func (lu *linkUnit) injectsLen() int { return len(lu.injects) - lu.injHead }

// popInject removes the oldest queued global word. When the queue
// drains, the backing array is kept and reused for the next burst.
//qcdoc:noalloc
func (lu *linkUnit) popInject() uint64 {
	w := lu.injects[lu.injHead]
	lu.injHead++
	if lu.injHead == len(lu.injects) {
		lu.injects = lu.injects[:0]
		lu.injHead = 0
	}
	return w
}

// kick wakes the transmit engine with a deferred pump if it is parked in
// the given state — the continuation-tier equivalent of firing the gate
// a waiting coroutine was parked on. The one-event deferral keeps
// intra-timestamp ordering (and so frame serialization order on the
// wires) identical to the coroutine tier; an engine that is already
// running, charging its startup pipeline, or parked in a different state
// ignores the kick, exactly as a gate fire with no waiter did.
//qcdoc:noalloc
func (lu *linkUnit) kick(state string) {
	if lu.sm == nil || lu.pumpPending || lu.sm.State() != state {
		return
	}
	lu.pumpPending = true
	lu.scu.eng.After(0, lu.pumpFn)
}

// pump advances the transmit engine until it parks. Word order matches
// the hardware priorities: injected global-operation words preempt
// between the words of a bulk transfer; a word fetched from memory while
// the ack window is full stays in hand and goes out first when the
// window opens.
//qcdoc:noalloc
func (lu *linkUnit) pump() {
	if lu.sm == nil {
		return // SCU not started; queued work drains when Start runs
	}
	if lu.sm.State() == txStartup {
		return // the startup timer will pump when the charge elapses
	}
	for {
		if !lu.held {
			switch {
			case lu.injectsLen() > 0:
				lu.heldWord = lu.popInject()
				lu.heldT = nil
				lu.held = true
			case lu.cur != nil:
				// Fetch the next word of the streaming transfer.
				lu.heldWord = lu.scu.mem.ReadWord(lu.cur.Desc.Addr(lu.curIdx))
				lu.heldT = lu.cur
				lu.held = true
				lu.curIdx++
				if lu.curIdx == lu.cur.total {
					lu.cur = nil
					lu.curIdx = 0
				}
			case len(lu.txPending) > 0:
				// DMA programming and the fetch pipeline to the first bit
				// on the wire.
				lu.cur = lu.txPending[0]
				lu.txPending = lu.txPending[1:]
				lu.curIdx = 0
				lu.sm.Goto(txStartup)
				startup := lu.scu.cfg.Clock.Cycles(lu.scu.cfg.TxStartupCycles)
				lu.sm.Sleep(startup, lu.startupFn)
				return
			default:
				lu.sm.Goto(txIdle)
				return
			}
		}
		if lu.unackedLen >= lu.scu.cfg.Window {
			lu.sm.Goto(txWindow)
			return // an ack will pump
		}
		lu.sendHeld()
	}
}

// sendHeld transmits the word in hand (window room guaranteed by pump).
//qcdoc:noalloc
func (lu *linkUnit) sendHeld() {
	seq := lu.seqNext
	lu.seqNext = (lu.seqNext + 1) % scupkt.SeqMod
	lu.unacked[(lu.unackedHead+lu.unackedLen)%scupkt.SeqMod] =
		pendingWord{seq: seq, word: lu.heldWord, sentAt: lu.scu.eng.Now(), t: lu.heldT}
	lu.unackedLen++
	lu.sendPacket(scupkt.Packet{Kind: scupkt.DataKind(seq), Payload: lu.heldWord})
	lu.txSum.Add(lu.heldWord)
	lu.stats.WordsSent++
	lu.held = false
	lu.heldT = nil
	if lu.unackedLen == 1 {
		lu.ackTimer.Arm(lu.scu.cfg.AckTimeout)
	}
}

// ackTimeout is the lost-acknowledgement recovery: if the oldest
// unacknowledged word has not been acked within AckTimeout, resend it
// and restart the clock. Arming bumps the timer's generation, so any
// pop of the window head implicitly cancels the outstanding timer by
// re-arming (or stopping) it. A streak of timeouts with no progress
// escalates to link re-training (see beginRetrain).
//qcdoc:noalloc
func (lu *linkUnit) ackTimeout() {
	if lu.unackedLen == 0 || lu.retraining || lu.dead {
		return
	}
	lu.timeoutStreak++
	if lu.scu.cfg.RetrainAfter > 0 && lu.timeoutStreak >= lu.scu.cfg.RetrainAfter {
		lu.beginRetrain()
		return
	}
	pw := &lu.unacked[lu.unackedHead]
	lu.sendPacket(scupkt.Packet{Kind: scupkt.DataKind(pw.seq), Payload: pw.word})
	lu.stats.Resends++
	lu.noteResend(pw)
	lu.ackTimer.Arm(lu.scu.cfg.AckTimeout)
}

// noteResend records the gap since the word's last transmission and
// restamps it. Telemetry only; one nil test when disabled.
//qcdoc:noalloc
func (lu *linkUnit) noteResend(pw *pendingWord) {
	now := lu.scu.eng.Now()
	if lu.hist != nil {
		lu.hist.ResendGap.Record(uint64(now - pw.sentAt))
	}
	pw.sentAt = now
}

// sendSupervisor transmits a supervisor word with stop-and-wait
// acknowledgement; further words queue behind it.
func (lu *linkUnit) sendSupervisor(w uint64) {
	if lu.supPending {
		lu.supQueue = append(lu.supQueue, w)
		return
	}
	lu.transmitSup(w)
}

func (lu *linkUnit) transmitSup(w uint64) {
	lu.supPending = true
	lu.supWord = w
	lu.sendPacket(scupkt.Packet{Kind: scupkt.Supervisor, Payload: w})
	lu.stats.SupsSent++
	lu.supTimer.Arm(lu.scu.cfg.AckTimeout)
}

// supTimeout resends the outstanding supervisor word (stop-and-wait
// recovery); the supervisor ack stops the timer. Supervisor timeouts
// feed the same escalation streak as data timeouts, so a link carrying
// only supervisor traffic still retrains and eventually fails.
//qcdoc:noalloc
func (lu *linkUnit) supTimeout() {
	if !lu.supPending || lu.retraining || lu.dead {
		return
	}
	lu.timeoutStreak++
	if lu.scu.cfg.RetrainAfter > 0 && lu.timeoutStreak >= lu.scu.cfg.RetrainAfter {
		lu.beginRetrain()
		return
	}
	lu.sendPacket(scupkt.Packet{Kind: scupkt.Supervisor, Payload: lu.supWord})
	lu.stats.Resends++
	lu.supTimer.Arm(lu.scu.cfg.AckTimeout)
}

// beginRetrain resets and re-trains the outbound wire: the §2.2
// low-level recovery for a link whose errors outlast the resend
// protocol. Transmissions are suppressed for the training time; when
// training completes, everything unacknowledged is re-issued. Retrains
// that keep producing no acknowledgement progress escalate to fail.
func (lu *linkUnit) beginRetrain() {
	lu.retrainCount++
	if lu.scu.cfg.MaxRetrains > 0 && lu.retrainCount > lu.scu.cfg.MaxRetrains {
		lu.fail()
		return
	}
	lu.stats.Retrains++
	lu.timeoutStreak = 0
	lu.retraining = true
	lu.ackTimer.Stop()
	lu.supTimer.Stop()
	lu.out.Reset()
	lu.out.TrainAsync(lu.retrainDone)
}

// retrainDone resumes the link after re-training: rewind-resend every
// unacknowledged data word on the fresh wire, re-issue any outstanding
// supervisor word, restart the recovery clocks, and release the
// transmit engine if the window parked it.
func (lu *linkUnit) retrainDone() {
	if lu.dead {
		return
	}
	lu.retraining = false
	for i := 0; i < lu.unackedLen; i++ {
		pw := &lu.unacked[(lu.unackedHead+i)%scupkt.SeqMod]
		lu.sendPacket(scupkt.Packet{Kind: scupkt.DataKind(pw.seq), Payload: pw.word})
		lu.stats.Resends++
		lu.noteResend(pw)
	}
	if lu.unackedLen > 0 {
		lu.ackTimer.Arm(lu.scu.cfg.AckTimeout)
	}
	if lu.supPending {
		lu.sendPacket(scupkt.Packet{Kind: scupkt.Supervisor, Payload: lu.supWord})
		lu.stats.Resends++
		lu.supTimer.Arm(lu.scu.cfg.AckTimeout)
	}
	lu.kick(txWindow)
	lu.kick(txIdle)
}

// fail declares the link permanently dead: MaxRetrains re-trainings in
// a row produced no acknowledgement progress, so the hardware stops
// trying (a dead transmitter resending forever would only burn the
// wire) and escalates through the SCU's supervisor interrupt path.
func (lu *linkUnit) fail() {
	lu.dead = true
	lu.stats.LinkFailures++
	lu.ackTimer.Stop()
	lu.supTimer.Stop()
	lu.scu.raiseLinkFailure(lu.link)
}

// --- Receive engine ----------------------------------------------------

// handleFrame is the receive engine: it runs in the arrival event of
// every inbound frame, decoding the value frame in place.
//qcdoc:noalloc
func (lu *linkUnit) handleFrame(f hssl.Frame) {
	pkt, _, err := f.Decode()
	if err != nil {
		lu.handleCorrupt(err)
		return
	}
	switch {
	case pkt.Kind == scupkt.Ack:
		lu.handleAck(uint8(pkt.Payload))
	case pkt.Kind == scupkt.Supervisor:
		lu.handleSupervisor(pkt.Payload)
	case pkt.Kind == scupkt.PartIRQ:
		lu.scu.part.receive(lu.link, uint8(pkt.Payload))
	case pkt.Kind == scupkt.Idle:
		// Trained links exchange idles; nothing to do.
	default:
		seq, _ := pkt.Kind.DataSeq()
		lu.handleData(seq, pkt.Payload)
	}
}

//qcdoc:noalloc
func (lu *linkUnit) handleCorrupt(err error) {
	if errors.Is(err, scupkt.ErrParity) {
		lu.stats.ParityErrors++
	} else {
		lu.stats.HeaderErrors++
	}
	lu.sendNak()
}

//qcdoc:noalloc
func (lu *linkUnit) lastAccepted() int {
	return (lu.expect + scupkt.SeqMod - 1) % scupkt.SeqMod
}

// sendNak requests a rewind-resend of everything unacknowledged. One nak
// per stall: repeated errors before the next in-order acceptance are
// suppressed to avoid redundant rewinds.
//qcdoc:noalloc
func (lu *linkUnit) sendNak() {
	if lu.nakPending {
		return
	}
	lu.nakPending = true
	flags := scupkt.AckNak | uint8(lu.lastAccepted())&scupkt.AckSeqMask
	lu.sendPacket(scupkt.Packet{Kind: scupkt.Ack, Payload: uint64(flags)})
	lu.stats.NaksSent++
}

// sendCumAck acknowledges everything accepted so far.
//qcdoc:noalloc
func (lu *linkUnit) sendCumAck() {
	flags := uint8(lu.lastAccepted()) & scupkt.AckSeqMask
	lu.sendPacket(scupkt.Packet{Kind: scupkt.Ack, Payload: uint64(flags)})
	lu.stats.AcksSent++
}

//qcdoc:noalloc
func (lu *linkUnit) handleData(seq int, w uint64) {
	delta := (seq - lu.expect + scupkt.SeqMod) % scupkt.SeqMod
	if delta != 0 {
		lu.stats.Duplicates++
		if lu.idleBufLen > 0 {
			// Duplicates of held words while acks are withheld; stay silent
			// so the sender remains blocked (idle receive).
			return
		}
		if delta == scupkt.SeqMod-1 {
			// Duplicate of the last accepted word: its ack was lost, re-ack.
			lu.sendCumAck()
			return
		}
		// A gap: an earlier frame was corrupt. The nak for it is normally
		// already pending; this is the defensive fallback.
		lu.sendNak()
		return
	}

	// In-order word.
	lu.nakPending = false
	lu.expect = (lu.expect + 1) % scupkt.SeqMod
	lu.rxSum.Add(w)
	lu.stats.WordsReceived++

	if gs := lu.scu.globalIn[geom.LinkIndex(lu.link)]; gs >= 0 {
		lu.sendCumAck()
		lu.scu.globals[gs].receive(w)
		return
	}
	if len(lu.rxT) == 0 {
		// Idle receive: hold the word in an SCU register and withhold the
		// acknowledgement; the sender's window will block it after
		// Window words (§2.2).
		if lu.idleBufLen >= lu.scu.cfg.Window {
			//qcdoclint:alloc-ok cold protocol-violation panic
			panic(fmt.Sprintf("scu %s link %v: idle-receive overflow (window protocol violated)",
				lu.scu.name, lu.link))
		}
		lu.idleBuf[(lu.idleBufHead+lu.idleBufLen)%scupkt.SeqMod] = w
		lu.idleBufLen++
		return
	}
	lu.storeWord(w)
	lu.sendCumAck()
}

// popIdle removes the oldest idle-held word.
//qcdoc:noalloc
func (lu *linkUnit) popIdle() uint64 {
	w := lu.idleBuf[lu.idleBufHead]
	lu.idleBufHead = (lu.idleBufHead + 1) % scupkt.SeqMod
	lu.idleBufLen--
	return w
}

// storeWord lands an accepted word in local memory via the receive DMA.
//qcdoc:noalloc
func (lu *linkUnit) storeWord(w uint64) {
	t := lu.rxT[0]
	lu.scu.mem.WriteWord(t.Desc.Addr(lu.rxProgress), w)
	lu.rxProgress++
	done := lu.rxProgress == t.total
	t.progress(lu.scu.eng, lu.scu.eng.Now()+lu.scu.cfg.Clock.Cycles(lu.scu.cfg.RxStartupCycles))
	if done {
		lu.rxT = lu.rxT[1:]
		lu.rxProgress = 0
	}
}

// programRecv attaches a receive transfer; any idle-held words drain into
// it immediately and the withheld acknowledgement is released.
func (lu *linkUnit) programRecv(t *Transfer) {
	lu.rxT = append(lu.rxT, t)
	drained := false
	for lu.idleBufLen > 0 && len(lu.rxT) > 0 {
		lu.storeWord(lu.popIdle())
		drained = true
	}
	if drained {
		lu.sendCumAck()
	}
}

//qcdoc:noalloc
func (lu *linkUnit) containsSeq(seq int) bool {
	for i := 0; i < lu.unackedLen; i++ {
		if lu.unacked[(lu.unackedHead+i)%scupkt.SeqMod].seq == seq {
			return true
		}
	}
	return false
}

//qcdoc:noalloc
func (lu *linkUnit) handleAck(flags uint8) {
	if flags&scupkt.AckSup != 0 {
		lu.supPending = false
		lu.supTimer.Stop()
		lu.timeoutStreak = 0
		lu.retrainCount = 0
		if len(lu.supQueue) > 0 {
			next := lu.supQueue[0]
			lu.supQueue = lu.supQueue[1:]
			lu.transmitSup(next)
		}
		return
	}
	a := int(flags & scupkt.AckSeqMask)
	if lu.containsSeq(a) {
		// Acknowledgement progress resets the recovery escalation ladder.
		lu.timeoutStreak = 0
		lu.retrainCount = 0
		// Cumulative: pop everything up to and including a.
		for {
			pw := lu.unacked[lu.unackedHead]
			lu.unackedHead = (lu.unackedHead + 1) % scupkt.SeqMod
			lu.unackedLen--
			if lu.hist != nil {
				lu.hist.InFlight.Record(uint64(lu.scu.eng.Now() - pw.sentAt))
			}
			if pw.t != nil {
				pw.t.progress(lu.scu.eng, lu.scu.eng.Now())
			}
			if pw.seq == a {
				break
			}
		}
		// Every head pop restarts (or, with nothing left in flight,
		// stops) the lost-ack recovery clock.
		if lu.unackedLen > 0 {
			lu.ackTimer.Arm(lu.scu.cfg.AckTimeout)
		} else {
			lu.ackTimer.Stop()
		}
		lu.kick(txWindow) // the window opened; release any held word
	}
	if flags&scupkt.AckNak != 0 {
		// Automatic hardware resend: rewind and retransmit every word
		// still unacknowledged, in order.
		for i := 0; i < lu.unackedLen; i++ {
			pw := &lu.unacked[(lu.unackedHead+i)%scupkt.SeqMod]
			lu.sendPacket(scupkt.Packet{Kind: scupkt.DataKind(pw.seq), Payload: pw.word})
			lu.stats.Resends++
			lu.noteResend(pw)
		}
	}
}

func (lu *linkUnit) handleSupervisor(w uint64) {
	lu.scu.lastSup[geom.LinkIndex(lu.link)] = w
	lu.stats.SupsReceived++
	lu.sendPacket(scupkt.Packet{Kind: scupkt.Ack, Payload: uint64(scupkt.AckSup)})
	lu.stats.AcksSent++
	if lu.scu.onSupervisor != nil {
		lu.scu.onSupervisor(lu.link, w)
	}
}

func (lu *linkUnit) sendPartIRQ(mask uint8) {
	lu.sendPacket(scupkt.Packet{Kind: scupkt.PartIRQ, Payload: uint64(mask)})
	lu.stats.PartIRQsSent++
}
