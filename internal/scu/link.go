package scu

import (
	"errors"
	"fmt"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/hssl"
	"qcdoc/internal/scupkt"
)

// pendingWord is a transmitted-but-unacknowledged data word held in the
// SCU's resend registers.
type pendingWord struct {
	seq  int
	word uint64
	t    *Transfer // owning send transfer; nil for injected global words
}

// Transmit-engine state labels (continuation tier).
const (
	txIdle    = "idle"        // nothing to send
	txStartup = "dma startup" // charging the DMA programming/fetch pipeline
	txRun     = "run"         // streaming words
	txWindow  = "window full" // a word is held, waiting for an ack
)

// linkUnit is the per-link hardware: a transmit engine feeding the
// outbound wire and a receive engine draining the inbound wire. Both are
// flat state machines on the engine's continuation tier — a 1024-node
// machine has 12288 of each, so they must cost no goroutines and no
// per-event channel handoffs. Acknowledgements for our transmissions
// arrive on the inbound wire, multiplexed with the neighbour's own
// traffic.
type linkUnit struct {
	scu  *SCU
	link geom.Link
	out  *hssl.Wire
	in   *hssl.Wire

	stats Stats
	txSum scupkt.Checksum // data words transmitted (first transmissions)
	rxSum scupkt.Checksum // data words accepted in order

	// Transmit side. The engine advances via pump(): every entry point
	// that creates transmit work (a programmed send, an injected global
	// word, a window-opening ack, the end of the DMA startup charge)
	// calls pump, which sends words until it must park — idle, in the
	// startup charge, or with the window full.
	sm          *event.StateMachine
	pumpPending bool        // a deferred pump event is queued
	txPending   []*Transfer // programmed send transfers, FIFO
	injects     []uint64    // global-operation words, priority over transfers
	cur         *Transfer   // transfer currently streaming
	curIdx      int         // next word index within cur
	held        bool        // a fetched word is in hand, awaiting window room
	heldWord    uint64
	heldT       *Transfer
	seqNext     int
	unacked     []pendingWord
	ackGen      uint64 // bumped on every head pop; invalidates stale timers

	supPending bool
	supWord    uint64
	supQueue   []uint64
	supGen     uint64

	// Receive side: a pure continuation — handleFrame runs directly in
	// each frame's arrival event.
	expect     int
	nakPending bool
	rxT        []*Transfer // programmed receive transfers, FIFO
	rxProgress int         // words stored into rxT[0]
	idleBuf    []uint64    // idle-receive holding registers (max Window)
}

func newLinkUnit(s *SCU, l geom.Link, out, in *hssl.Wire) *linkUnit {
	return &linkUnit{
		scu:  s,
		link: l,
		out:  out,
		in:   in,
	}
}

func (lu *linkUnit) start() {
	lu.sm = lu.scu.eng.NewStateMachine(
		fmt.Sprintf("%s scu%v tx", lu.scu.name, lu.link), txIdle)
	lu.in.OnFrame(lu.handleFrame)
	if len(lu.injects) > 0 {
		lu.kick(txIdle) // drain anything injected before Start
	}
}

// sendFrame transmits a raw frame, treating an untrained wire as an
// assembly error (the machine trains all links at boot, before the SCU
// engines start moving data).
func (lu *linkUnit) sendFrame(frame []byte) {
	if _, err := lu.out.Send(frame); err != nil {
		panic(fmt.Sprintf("scu %s link %v: %v", lu.scu.name, lu.link, err))
	}
}

// --- Transmit engine ---------------------------------------------------

// queueSend programs a DMA send transfer and kicks the transmit engine.
func (lu *linkUnit) queueSend(t *Transfer) {
	lu.txPending = append(lu.txPending, t)
	lu.kick(txIdle)
}

// inject queues a global-operation word for priority transmission.
func (lu *linkUnit) inject(w uint64) {
	lu.injects = append(lu.injects, w)
	lu.kick(txIdle)
}

// kick wakes the transmit engine with a deferred pump if it is parked in
// the given state — the continuation-tier equivalent of firing the gate
// a waiting coroutine was parked on. The one-event deferral keeps
// intra-timestamp ordering (and so frame serialization order on the
// wires) identical to the coroutine tier; an engine that is already
// running, charging its startup pipeline, or parked in a different state
// ignores the kick, exactly as a gate fire with no waiter did.
func (lu *linkUnit) kick(state string) {
	if lu.sm == nil || lu.pumpPending || lu.sm.State() != state {
		return
	}
	lu.pumpPending = true
	lu.scu.eng.After(0, func() {
		lu.pumpPending = false
		lu.pump()
	})
}

// pump advances the transmit engine until it parks. Word order matches
// the hardware priorities: injected global-operation words preempt
// between the words of a bulk transfer; a word fetched from memory while
// the ack window is full stays in hand and goes out first when the
// window opens.
func (lu *linkUnit) pump() {
	if lu.sm == nil {
		return // SCU not started; queued work drains when Start runs
	}
	if lu.sm.State() == txStartup {
		return // the startup timer will pump when the charge elapses
	}
	for {
		if !lu.held {
			switch {
			case len(lu.injects) > 0:
				lu.heldWord = lu.injects[0]
				lu.injects = lu.injects[1:]
				lu.heldT = nil
				lu.held = true
			case lu.cur != nil:
				// Fetch the next word of the streaming transfer.
				lu.heldWord = lu.scu.mem.ReadWord(lu.cur.Desc.Addr(lu.curIdx))
				lu.heldT = lu.cur
				lu.held = true
				lu.curIdx++
				if lu.curIdx == lu.cur.total {
					lu.cur = nil
					lu.curIdx = 0
				}
			case len(lu.txPending) > 0:
				// DMA programming and the fetch pipeline to the first bit
				// on the wire.
				lu.cur = lu.txPending[0]
				lu.txPending = lu.txPending[1:]
				lu.curIdx = 0
				lu.sm.Goto(txStartup)
				startup := lu.scu.cfg.Clock.Cycles(lu.scu.cfg.TxStartupCycles)
				lu.sm.Sleep(startup, func() {
					lu.sm.Goto(txRun)
					lu.pump()
				})
				return
			default:
				lu.sm.Goto(txIdle)
				return
			}
		}
		if len(lu.unacked) >= lu.scu.cfg.Window {
			lu.sm.Goto(txWindow)
			return // an ack will pump
		}
		lu.sendHeld()
	}
}

// sendHeld transmits the word in hand (window room guaranteed by pump).
func (lu *linkUnit) sendHeld() {
	seq := lu.seqNext
	lu.seqNext = (lu.seqNext + 1) % scupkt.SeqMod
	lu.unacked = append(lu.unacked, pendingWord{seq: seq, word: lu.heldWord, t: lu.heldT})
	lu.sendFrame(scupkt.Packet{Kind: scupkt.DataKind(seq), Payload: lu.heldWord}.Encode(nil))
	lu.txSum.Add(lu.heldWord)
	lu.stats.WordsSent++
	lu.held = false
	lu.heldT = nil
	if len(lu.unacked) == 1 {
		lu.scheduleAckTimer()
	}
}

// scheduleAckTimer arms the lost-acknowledgement recovery timer for the
// current oldest unacknowledged word. It fires only if no pop has
// happened in the meantime.
func (lu *linkUnit) scheduleAckTimer() {
	gen := lu.ackGen
	lu.scu.eng.After(lu.scu.cfg.AckTimeout, func() {
		if lu.ackGen != gen || len(lu.unacked) == 0 {
			return
		}
		pw := lu.unacked[0]
		lu.sendFrame(scupkt.Packet{Kind: scupkt.DataKind(pw.seq), Payload: pw.word}.Encode(nil))
		lu.stats.Resends++
		lu.scheduleAckTimer()
	})
}

// sendSupervisor transmits a supervisor word with stop-and-wait
// acknowledgement; further words queue behind it.
func (lu *linkUnit) sendSupervisor(w uint64) {
	if lu.supPending {
		lu.supQueue = append(lu.supQueue, w)
		return
	}
	lu.transmitSup(w)
}

func (lu *linkUnit) transmitSup(w uint64) {
	lu.supPending = true
	lu.supWord = w
	lu.sendFrame(scupkt.Packet{Kind: scupkt.Supervisor, Payload: w}.Encode(nil))
	lu.stats.SupsSent++
	lu.scheduleSupTimer()
}

func (lu *linkUnit) scheduleSupTimer() {
	gen := lu.supGen
	lu.scu.eng.After(lu.scu.cfg.AckTimeout, func() {
		if lu.supGen != gen || !lu.supPending {
			return
		}
		lu.sendFrame(scupkt.Packet{Kind: scupkt.Supervisor, Payload: lu.supWord}.Encode(nil))
		lu.stats.Resends++
		lu.scheduleSupTimer()
	})
}

// --- Receive engine ----------------------------------------------------

// handleFrame is the receive engine: it runs in the arrival event of
// every inbound frame.
func (lu *linkUnit) handleFrame(f hssl.Frame) {
	pkt, _, err := scupkt.Decode(f.Bytes)
	if err != nil {
		lu.handleCorrupt(err)
		return
	}
	switch {
	case pkt.Kind == scupkt.Ack:
		lu.handleAck(uint8(pkt.Payload))
	case pkt.Kind == scupkt.Supervisor:
		lu.handleSupervisor(pkt.Payload)
	case pkt.Kind == scupkt.PartIRQ:
		lu.scu.part.receive(lu.link, uint8(pkt.Payload))
	case pkt.Kind == scupkt.Idle:
		// Trained links exchange idles; nothing to do.
	default:
		seq, _ := pkt.Kind.DataSeq()
		lu.handleData(seq, pkt.Payload)
	}
}

func (lu *linkUnit) handleCorrupt(err error) {
	if errors.Is(err, scupkt.ErrParity) {
		lu.stats.ParityErrors++
	} else {
		lu.stats.HeaderErrors++
	}
	lu.sendNak()
}

func (lu *linkUnit) lastAccepted() int {
	return (lu.expect + scupkt.SeqMod - 1) % scupkt.SeqMod
}

// sendNak requests a rewind-resend of everything unacknowledged. One nak
// per stall: repeated errors before the next in-order acceptance are
// suppressed to avoid redundant rewinds.
func (lu *linkUnit) sendNak() {
	if lu.nakPending {
		return
	}
	lu.nakPending = true
	flags := scupkt.AckNak | uint8(lu.lastAccepted())&scupkt.AckSeqMask
	lu.sendFrame(scupkt.Packet{Kind: scupkt.Ack, Payload: uint64(flags)}.Encode(nil))
	lu.stats.NaksSent++
}

// sendCumAck acknowledges everything accepted so far.
func (lu *linkUnit) sendCumAck() {
	flags := uint8(lu.lastAccepted()) & scupkt.AckSeqMask
	lu.sendFrame(scupkt.Packet{Kind: scupkt.Ack, Payload: uint64(flags)}.Encode(nil))
	lu.stats.AcksSent++
}

func (lu *linkUnit) handleData(seq int, w uint64) {
	delta := (seq - lu.expect + scupkt.SeqMod) % scupkt.SeqMod
	if delta != 0 {
		lu.stats.Duplicates++
		if len(lu.idleBuf) > 0 {
			// Duplicates of held words while acks are withheld; stay silent
			// so the sender remains blocked (idle receive).
			return
		}
		if delta == scupkt.SeqMod-1 {
			// Duplicate of the last accepted word: its ack was lost, re-ack.
			lu.sendCumAck()
			return
		}
		// A gap: an earlier frame was corrupt. The nak for it is normally
		// already pending; this is the defensive fallback.
		lu.sendNak()
		return
	}

	// In-order word.
	lu.nakPending = false
	lu.expect = (lu.expect + 1) % scupkt.SeqMod
	lu.rxSum.Add(w)
	lu.stats.WordsReceived++

	if gs := lu.scu.globalIn[geom.LinkIndex(lu.link)]; gs >= 0 {
		lu.sendCumAck()
		lu.scu.globals[gs].receive(w)
		return
	}
	if len(lu.rxT) == 0 {
		// Idle receive: hold the word in an SCU register and withhold the
		// acknowledgement; the sender's window will block it after
		// Window words (§2.2).
		if len(lu.idleBuf) >= lu.scu.cfg.Window {
			panic(fmt.Sprintf("scu %s link %v: idle-receive overflow (window protocol violated)",
				lu.scu.name, lu.link))
		}
		lu.idleBuf = append(lu.idleBuf, w)
		return
	}
	lu.storeWord(w)
	lu.sendCumAck()
}

// storeWord lands an accepted word in local memory via the receive DMA.
func (lu *linkUnit) storeWord(w uint64) {
	t := lu.rxT[0]
	lu.scu.mem.WriteWord(t.Desc.Addr(lu.rxProgress), w)
	lu.rxProgress++
	done := lu.rxProgress == t.total
	t.progress(lu.scu.eng, lu.scu.eng.Now()+lu.scu.cfg.Clock.Cycles(lu.scu.cfg.RxStartupCycles))
	if done {
		lu.rxT = lu.rxT[1:]
		lu.rxProgress = 0
	}
}

// programRecv attaches a receive transfer; any idle-held words drain into
// it immediately and the withheld acknowledgement is released.
func (lu *linkUnit) programRecv(t *Transfer) {
	lu.rxT = append(lu.rxT, t)
	drained := false
	for len(lu.idleBuf) > 0 && len(lu.rxT) > 0 {
		w := lu.idleBuf[0]
		lu.idleBuf = lu.idleBuf[1:]
		lu.storeWord(w)
		drained = true
	}
	if drained {
		lu.sendCumAck()
	}
}

func (lu *linkUnit) containsSeq(seq int) bool {
	for _, pw := range lu.unacked {
		if pw.seq == seq {
			return true
		}
	}
	return false
}

func (lu *linkUnit) handleAck(flags uint8) {
	if flags&scupkt.AckSup != 0 {
		lu.supPending = false
		lu.supGen++
		if len(lu.supQueue) > 0 {
			next := lu.supQueue[0]
			lu.supQueue = lu.supQueue[1:]
			lu.transmitSup(next)
		}
		return
	}
	a := int(flags & scupkt.AckSeqMask)
	if lu.containsSeq(a) {
		// Cumulative: pop everything up to and including a.
		for {
			pw := lu.unacked[0]
			lu.unacked = lu.unacked[1:]
			lu.ackGen++
			if pw.t != nil {
				pw.t.progress(lu.scu.eng, lu.scu.eng.Now())
			}
			if pw.seq == a {
				break
			}
		}
		if len(lu.unacked) > 0 {
			lu.scheduleAckTimer()
		}
		lu.kick(txWindow) // the window opened; release any held word
	}
	if flags&scupkt.AckNak != 0 {
		// Automatic hardware resend: rewind and retransmit every word
		// still unacknowledged, in order.
		for _, pw := range lu.unacked {
			lu.sendFrame(scupkt.Packet{Kind: scupkt.DataKind(pw.seq), Payload: pw.word}.Encode(nil))
			lu.stats.Resends++
		}
	}
}

func (lu *linkUnit) handleSupervisor(w uint64) {
	lu.scu.lastSup[geom.LinkIndex(lu.link)] = w
	lu.stats.SupsReceived++
	lu.sendFrame(scupkt.Packet{Kind: scupkt.Ack, Payload: uint64(scupkt.AckSup)}.Encode(nil))
	lu.stats.AcksSent++
	if lu.scu.onSupervisor != nil {
		lu.scu.onSupervisor(lu.link, w)
	}
}

func (lu *linkUnit) sendPartIRQ(mask uint8) {
	lu.sendFrame(scupkt.Packet{Kind: scupkt.PartIRQ, Payload: uint64(mask)}.Encode(nil))
	lu.stats.PartIRQsSent++
}
