package scu

import (
	"reflect"
	"testing"
)

// TestStatsTable pins the field table as the single source of truth: it
// must cover every field of Stats exactly once, and the indexed and
// callback views must agree with direct field access.
func TestStatsTable(t *testing.T) {
	if NumStats() != reflect.TypeOf(Stats{}).NumField() {
		t.Fatalf("statsFields has %d entries, Stats has %d fields — table out of sync",
			NumStats(), reflect.TypeOf(Stats{}).NumField())
	}
	names := StatsNames()
	if len(names) != NumStats() {
		t.Fatalf("names %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate counter name %q", n)
		}
		seen[n] = true
	}
	// Distinct values per index prove each accessor reaches a distinct
	// field.
	var s Stats
	for i := 0; i < NumStats(); i++ {
		s.SetValue(i, uint64(i+1))
	}
	for i := 0; i < NumStats(); i++ {
		if s.Value(i) != uint64(i+1) {
			t.Fatalf("Value(%d) = %d", i, s.Value(i))
		}
	}
	if s.WordsSent != 1 || s.LinkFailures != uint64(NumStats()) {
		t.Fatalf("table order drifted: first %d last %d", s.WordsSent, s.LinkFailures)
	}
	// Each visits in table order with matching values.
	i := 0
	s.Each(func(name string, v uint64) {
		if name != names[i] || v != uint64(i+1) {
			t.Fatalf("Each[%d] = (%s, %d), want (%s, %d)", i, name, v, names[i], i+1)
		}
		i++
	})
	// Add is field-wise.
	var sum Stats
	sum.Add(&s)
	sum.Add(&s)
	for i := 0; i < NumStats(); i++ {
		if sum.Value(i) != 2*uint64(i+1) {
			t.Fatalf("Add: field %d = %d", i, sum.Value(i))
		}
	}
}
