package scu

import (
	"testing"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/hssl"
)

// retrainRun drives one A->B transfer through a fault window on the
// forward wire and returns the counters the retraining tests pin.
type retrainRun struct {
	aStats    Stats
	bStats    Stats
	wire      hssl.Stats
	words     []uint64
	got       []uint64
	done      bool
	executed  uint64
	endedAt   event.Time
	aFailed   uint64 // FailedLinks mask on A
	escalated []geom.Link
}

func runRetrainScenario(t *testing.T, n int, fault func(pr *pair)) retrainRun {
	t.Helper()
	cfg := Config{
		AckTimeout:   5 * event.Microsecond,
		RetrainAfter: 2,
		MaxRetrains:  3,
	}
	pr := newPair(t, cfg)
	var r retrainRun
	pr.a.OnLinkFailure(func(l geom.Link) { r.escalated = append(r.escalated, l) })
	r.words = fillWords(pr.ma, 0, n, 42)
	fault(pr)
	rt, err := pr.b.StartRecv(pr.linkB, Contiguous(0x1000, n))
	if err != nil {
		t.Fatal(err)
	}
	st, err := pr.a.StartSend(pr.linkA, Contiguous(0, n))
	if err != nil {
		t.Fatal(err)
	}
	pr.run(t)
	r.done = st.Done() && rt.Done()
	for i := 0; i < n; i++ {
		r.got = append(r.got, pr.mb.ReadWord(0x1000+8*uint64(i)))
	}
	r.aStats = pr.a.Stats()
	r.bStats = pr.b.Stats()
	r.wire = pr.ab.Stats()
	r.executed = pr.eng.Executed()
	r.endedAt = pr.eng.Now()
	r.aFailed = pr.a.FailedLinks()
	return r
}

// A sustained corruption burst (hssl.FlipBitEvery corrupting every
// frame until the fault is cleared) starves the window protocol of ack
// progress: the transmit link must re-train, and once the burst ends
// the transfer must complete with intact data. The satellite invariants:
// the wire re-trained, the receiver's error counters equal the injected
// corruption count, every wire frame is accounted as a first
// transmission or a resend — and all of it is bit-identical across two
// runs.
func TestFlipBitEveryForcesRetrain(t *testing.T) {
	const n = 8
	run := func() retrainRun {
		return runRetrainScenario(t, n, func(pr *pair) {
			pr.ab.SetFault(hssl.FlipBitEvery(1))
			// The burst ends at a fixed simulated time: long enough for
			// the ack-timeout streak (2 x 5 us) to force re-trainings,
			// short enough that clean traffic resumes before MaxRetrains
			// consecutive retrains would declare the link dead.
			pr.eng.At(25*event.Microsecond, func() { pr.ab.SetFault(nil) })
		})
	}
	r1 := run()
	r2 := run()

	if !r1.done {
		t.Fatal("transfer did not complete after the burst ended")
	}
	for i, w := range r1.words {
		if r1.got[i] != w {
			t.Fatalf("word %d = %#x, want %#x", i, r1.got[i], w)
		}
	}
	if r1.aStats.Retrains == 0 {
		t.Fatalf("link never re-trained under sustained corruption: %+v", r1.aStats)
	}
	if r1.aStats.LinkFailures != 0 || r1.aFailed != 0 {
		t.Fatalf("recoverable burst escalated to link death: %+v", r1.aStats)
	}
	// Every corrupted frame was rejected by the receiver's parity/header
	// check — the injected error count must match exactly.
	if got := r1.bStats.ParityErrors + r1.bStats.HeaderErrors; got != r1.wire.Corrupted {
		t.Fatalf("receiver saw %d errors, injector corrupted %d frames", got, r1.wire.Corrupted)
	}
	// Conservation on the wire: every launched frame is either a first
	// transmission or a resend (A sends only data on this wire).
	if r1.wire.Frames != r1.aStats.WordsSent+r1.aStats.Resends {
		t.Fatalf("wire carried %d frames, SCU accounts %d sent + %d resent",
			r1.wire.Frames, r1.aStats.WordsSent, r1.aStats.Resends)
	}
	if r1.aStats.Resends < r1.wire.Corrupted {
		t.Fatalf("%d corrupted frames but only %d resends", r1.wire.Corrupted, r1.aStats.Resends)
	}

	// Determinism: both runs dispatch identical event streams and count
	// identical recovery work.
	if r1.aStats != r2.aStats || r1.bStats != r2.bStats || r1.wire != r2.wire {
		t.Fatalf("stats diverged across runs:\n  a: %+v vs %+v\n  b: %+v vs %+v\n  wire: %+v vs %+v",
			r1.aStats, r2.aStats, r1.bStats, r2.bStats, r1.wire, r2.wire)
	}
	if r1.executed != r2.executed || r1.endedAt != r2.endedAt {
		t.Fatalf("event streams diverged: (%d, %v) vs (%d, %v)",
			r1.executed, r1.endedAt, r2.executed, r2.endedAt)
	}
}

// A permanently severed wire (hssl.Wire.Kill) makes every re-training
// "succeed" at the transmitter while restoring nothing: after
// MaxRetrains with no ack progress the link must be declared dead,
// counted in link_failures, surfaced in FailedLinks, and escalated
// through OnLinkFailure — deterministically.
func TestDeadWireEscalatesToLinkFailure(t *testing.T) {
	run := func() retrainRun {
		return runRetrainScenario(t, 4, func(pr *pair) {
			pr.ab.Kill()
		})
	}
	r1 := run()
	r2 := run()

	if r1.done {
		t.Fatal("transfer completed over a dead wire")
	}
	if r1.aStats.LinkFailures != 1 {
		t.Fatalf("link_failures = %d, want 1 (%+v)", r1.aStats.LinkFailures, r1.aStats)
	}
	if r1.aStats.Retrains != 3 {
		t.Fatalf("retrains = %d, want MaxRetrains = 3", r1.aStats.Retrains)
	}
	if r1.aFailed == 0 {
		t.Fatal("FailedLinks mask empty after give-up")
	}
	if len(r1.escalated) != 1 || r1.escalated[0] != (geom.Link{Dim: 0, Dir: geom.Fwd}) {
		t.Fatalf("OnLinkFailure escalation = %v", r1.escalated)
	}
	if r1.aStats != r2.aStats || r1.executed != r2.executed || r1.endedAt != r2.endedAt {
		t.Fatalf("dead-link runs diverged: %+v @ (%d, %v) vs %+v @ (%d, %v)",
			r1.aStats, r1.executed, r1.endedAt, r2.aStats, r2.executed, r2.endedAt)
	}
}
