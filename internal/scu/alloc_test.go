package scu

import (
	"testing"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/hssl"
)

// flatMem is a dense slice-backed memory whose ReadWord/WriteWord never
// allocate, so the alloc regression test below measures only the
// SCU/HSSL/event path, not the test harness. (The map-backed testMem
// allocates on writes to fresh keys.)
type flatMem struct{ words []uint64 }

func (m *flatMem) ReadWord(a uint64) uint64     { return m.words[a/8] }
func (m *flatMem) WriteWord(a uint64, w uint64) { m.words[a/8] = w }

// TestSteadyStateWordPathAllocFree pins the tentpole property of the
// value-frame refactor: once a link is trained and a long transfer is
// streaming, moving a data word — DMA fetch, packet encode, wire
// serialization, arrival, decode, ack, window pop, ack-timer re-arm,
// DMA store — touches the heap zero times. Frames are values, the
// in-flight and resend registers are reusable rings, and the pump/timer
// callbacks are pre-bound, so after the warm-up (ring growth, event-heap
// growth, DMA startup) the simulator behaves like the hardware: no
// allocator anywhere on the word path.
func TestSteadyStateWordPathAllocFree(t *testing.T) {
	eng := event.New()
	ab := hssl.NewWire(eng, "a->b", hssl.DefaultClock, hssl.DefaultPropagation)
	ba := hssl.NewWire(eng, "b->a", hssl.DefaultClock, hssl.DefaultPropagation)
	ab.TrainAsync(nil)
	ba.TrainAsync(nil)
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}

	const words = 1 << 17
	ma := &flatMem{words: make([]uint64, words)}
	mb := &flatMem{words: make([]uint64, words)}
	for i := range ma.words {
		ma.words[i] = uint64(i)*0x9E3779B97F4A7C15 + 1
	}
	a := New(eng, "A", ma, Config{})
	b := New(eng, "B", mb, Config{})
	la := geom.Link{Dim: 0, Dir: geom.Fwd}
	lb := geom.Link{Dim: 0, Dir: geom.Bwd}
	a.AttachLink(la, ab, ba)
	b.AttachLink(lb, ba, ab)
	a.Start()
	b.Start()
	if _, err := a.StartSend(la, Contiguous(0, words)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.StartRecv(lb, Contiguous(0, words)); err != nil {
		t.Fatal(err)
	}

	// Warm up past the DMA startup charge and all one-time growth (wire
	// in-flight rings, the event heap's high-water mark).
	if err := eng.Run(eng.Now() + 50*event.Microsecond); err != nil {
		t.Fatal(err)
	}
	before := b.Stats().WordsReceived
	if before == 0 {
		t.Fatal("no words moved during warm-up")
	}

	// Each run advances a fixed simulated window — a few hundred words of
	// traffic, well inside the transfer.
	const window = 40 * event.Microsecond
	avg := testing.AllocsPerRun(10, func() {
		if err := eng.Run(eng.Now() + window); err != nil {
			t.Fatal(err)
		}
	})
	moved := b.Stats().WordsReceived - before
	if moved == 0 {
		t.Fatal("no words moved during measurement")
	}
	if avg != 0 {
		t.Errorf("steady-state word path allocates: %.2f allocs per %v window (%d words moved)",
			avg, window, moved)
	}
}
