package scu

import (
	"strings"
	"testing"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
)

// TestTransferThen drives a full send/receive over the pair harness with
// no waiting process at all: completion is observed through Then, the
// continuation-tier Wait.
func TestTransferThen(t *testing.T) {
	pr := newPair(t, Config{})
	const n = 8
	want := fillWords(pr.ma, 0x100, n, 77)
	rt, err := pr.b.StartRecv(pr.linkB, Contiguous(0x200, n))
	if err != nil {
		t.Fatal(err)
	}
	st, err := pr.a.StartSend(pr.linkA, Contiguous(0x100, n))
	if err != nil {
		t.Fatal(err)
	}
	var sendAt, recvAt event.Time
	st.Then(func() { sendAt = pr.eng.Now() })
	rt.Then(func() { recvAt = pr.eng.Now() })
	pr.run(t)
	if !st.Done() || !rt.Done() {
		t.Fatal("transfers incomplete")
	}
	if sendAt != st.Finished() || recvAt != rt.Finished() {
		t.Fatalf("Then times %v/%v, Finished %v/%v", sendAt, recvAt, st.Finished(), rt.Finished())
	}
	for i := 0; i < n; i++ {
		if got := pr.mb.ReadWord(0x200 + 8*uint64(i)); got != want[i] {
			t.Fatalf("word %d = %#x, want %#x", i, got, want[i])
		}
	}
	// Then on an already-completed transfer fires synchronously.
	late := false
	rt.Then(func() { late = true })
	if !late {
		t.Fatal("Then on a completed transfer did not run immediately")
	}
}

// TestOnGlobalDone checks the continuation-tier completion hook of the
// global pass-through streams: callbacks registered before completion
// fire when the stream's expected words have arrived; afterwards they
// fire immediately.
func TestOnGlobalDone(t *testing.T) {
	const n = 4
	eng, scus, _ := ring(t, n, Config{})
	lin := geom.Link{Dim: 0, Dir: geom.Bwd}
	lout := geom.Link{Dim: 0, Dir: geom.Fwd}
	sums := make([]uint64, n)
	for i, s := range scus {
		i := i
		err := s.ConfigureGlobal(0, GlobalConfig{
			In: lin, HasIn: true,
			Outs:    []geom.Link{lout},
			Expect:  n - 1,
			Forward: n - 2,
			OnWord:  func(_ int, w uint64) { sums[i] += w },
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	doneAt := make([]event.Time, n)
	for i, s := range scus {
		i := i
		s.OnGlobalDone(0, func() { doneAt[i] = eng.Now() })
	}
	for i, s := range scus {
		if err := s.GlobalInject(0, uint64(1)<<uint(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, s := range scus {
		if !s.GlobalDone(0) {
			t.Fatalf("node %d stream not done", i)
		}
		if doneAt[i] == 0 {
			t.Fatalf("node %d completion hook never fired", i)
		}
		want := uint64(1)<<n - 1 - uint64(1)<<uint(i)
		if sums[i] != want {
			t.Fatalf("node %d sum %#x, want %#x", i, sums[i], want)
		}
		late := false
		s.OnGlobalDone(0, func() { late = true })
		if !late {
			t.Fatalf("node %d: hook on a finished stream did not run immediately", i)
		}
	}
}

// TestStateMachineDump spot-checks the introspection the refactor added:
// after Start every link unit is a named state machine parked idle.
func TestStateMachineDump(t *testing.T) {
	pr := newPair(t, Config{})
	pr.run(t)
	found := 0
	for _, line := range pr.eng.DumpStateMachines() {
		if strings.HasPrefix(line, "A scu+0 tx: idle") || strings.HasPrefix(line, "B scu-0 tx: idle") {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("link-unit machines missing from dump: %v", pr.eng.DumpStateMachines())
	}
}
