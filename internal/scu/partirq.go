package scu

import "qcdoc/internal/geom"

// partState implements the partition-interrupt mechanism (§2.2): 8-bit
// interrupt masks flood through the mesh, each node forwarding bits it
// has not previously sent on each link, with the slow global clock
// sampling the accumulated status into the CPU-visible register. The
// global clock window is sized (by the machine) so that an interrupt
// raised anywhere is seen machine-wide before the next sampling edge.
type partState struct {
	scu         *SCU
	seen        uint8 // interrupt bits known to this node
	status      uint8 // bits latched at the last window sample
	sentPerLink [geom.NumLinks]uint8
	onIRQ       func(mask uint8)
}

func (ps *partState) init(s *SCU) { ps.scu = s }

// RaisePartIRQ asserts interrupt bits on this node; they flood to every
// node in the partition and are presented to each CPU at the next global
// clock sample.
func (s *SCU) RaisePartIRQ(bits uint8) { s.part.raise(bits) }

// OnPartIRQ registers the CPU handler invoked when the sampled partition
// interrupt status becomes non-zero or gains bits.
func (s *SCU) OnPartIRQ(fn func(mask uint8)) { s.part.onIRQ = fn }

// PartIRQStatus returns the status register as sampled at the last
// global clock window.
func (s *SCU) PartIRQStatus() uint8 { return s.part.status }

// PartIRQPending returns the raw (not yet sampled) interrupt bits known
// to this node.
func (s *SCU) PartIRQPending() uint8 { return s.part.seen }

// ClearPartIRQ deasserts bits after the CPU has handled them. The
// application must clear on every node only after the interrupt has
// propagated machine-wide (one full window), or a straggling forward
// will re-raise it.
func (s *SCU) ClearPartIRQ(bits uint8) {
	s.part.seen &^= bits
	s.part.status &^= bits
	for i := range s.part.sentPerLink {
		s.part.sentPerLink[i] &^= bits
	}
}

// WindowTick is driven by the machine's global clock: it latches the
// accumulated interrupt bits into the sampled status register and raises
// the CPU interrupt on change.
func (s *SCU) WindowTick() {
	ps := &s.part
	if ps.status != ps.seen {
		newBits := ps.seen &^ ps.status
		ps.status = ps.seen
		if ps.onIRQ != nil && newBits != 0 {
			ps.onIRQ(ps.status)
		}
	}
}

func (ps *partState) raise(bits uint8) {
	if bits&^ps.seen == 0 {
		return
	}
	ps.seen |= bits
	if ps.scu.WindowArm != nil {
		ps.scu.WindowArm()
	}
	ps.flood()
}

// flood forwards, on every attached link, any seen bits not previously
// sent there.
func (ps *partState) flood() {
	for i, lu := range ps.scu.links {
		if lu == nil {
			continue
		}
		outBits := ps.seen &^ ps.sentPerLink[i]
		if outBits == 0 {
			continue
		}
		ps.sentPerLink[i] |= outBits
		lu.sendPartIRQ(outBits)
	}
}

// receive handles a partition-interrupt packet arriving on from.
func (ps *partState) receive(from geom.Link, mask uint8) {
	lu := ps.scu.links[geom.LinkIndex(from)]
	lu.stats.PartIRQsRecvd++
	// No need to echo the bits back where they came from.
	ps.sentPerLink[geom.LinkIndex(from)] |= mask
	ps.raise(mask)
}
