package scu

import (
	"fmt"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
)

// DMADesc describes a block-strided DMA access pattern in local memory
// (§2.2: "the SCUs have DMA engines allowing block strided access to
// local memory"). The pattern is NumBlocks blocks of BlockWords
// contiguous 64-bit words each, with consecutive block starts
// StrideWords apart. This is exactly the shape of a lattice face: e.g.
// the x-boundary spinors of a 4^4 local volume are small blocks strided
// through the field array.
type DMADesc struct {
	Base        uint64 // byte address of the first word (8-byte aligned)
	BlockWords  int    // contiguous words per block
	NumBlocks   int    // number of blocks
	StrideWords int    // words between successive block starts
}

// Contiguous returns a descriptor for n consecutive words at base.
func Contiguous(base uint64, n int) DMADesc {
	return DMADesc{Base: base, BlockWords: n, NumBlocks: 1, StrideWords: n}
}

// TotalWords is the number of words the descriptor covers.
func (d DMADesc) TotalWords() int { return d.BlockWords * d.NumBlocks }

// Addr returns the byte address of the i-th word in pattern order.
func (d DMADesc) Addr(i int) uint64 {
	block, off := i/d.BlockWords, i%d.BlockWords
	return d.Base + 8*uint64(block*d.StrideWords+off)
}

func (d DMADesc) validate() error {
	if d.BlockWords <= 0 || d.NumBlocks <= 0 {
		return fmt.Errorf("%w: %+v", ErrBadDescriptor, d)
	}
	if d.NumBlocks > 1 && d.StrideWords < d.BlockWords {
		return fmt.Errorf("%w: overlapping blocks in %+v", ErrBadDescriptor, d)
	}
	if d.Base%8 != 0 {
		return fmt.Errorf("%w: unaligned base in %+v", ErrBadDescriptor, d)
	}
	return nil
}

// Transfer is one in-flight DMA transfer (send or receive) on a link.
type Transfer struct {
	Link geom.Link
	Desc DMADesc
	Send bool

	total     int
	wordsDone int
	completed bool
	done      *event.Gate
	thens     []func()
	started   event.Time
	finished  event.Time
}

func newTransfer(eng *event.Engine, l geom.Link, d DMADesc, send bool) *Transfer {
	return &Transfer{
		Link:    l,
		Desc:    d,
		Send:    send,
		total:   d.TotalWords(),
		done:    event.NewGate(eng),
		started: eng.Now(),
	}
}

// Done reports whether the transfer has completed: all words
// acknowledged (send) or stored in local memory (receive).
func (t *Transfer) Done() bool { return t.completed }

// Wait blocks the process until the transfer completes.
func (t *Transfer) Wait(p *event.Proc) {
	for !t.completed {
		t.done.Wait(p, fmt.Sprintf("dma %v", t.Link))
	}
}

// Then runs fn at the transfer's completion time — the continuation-tier
// Wait, for callers with no process. If the transfer has already
// completed, fn runs immediately.
func (t *Transfer) Then(fn func()) {
	if t.completed {
		fn()
		return
	}
	t.thens = append(t.thens, fn)
}

// Started returns the simulated time the transfer was programmed.
func (t *Transfer) Started() event.Time { return t.started }

// Finished returns the completion time (valid once Done).
func (t *Transfer) Finished() event.Time { return t.finished }

// progress records one completed word; at the last word the transfer
// completes at time at.
func (t *Transfer) progress(eng *event.Engine, at event.Time) {
	t.wordsDone++
	if t.wordsDone == t.total {
		eng.At(at, func() {
			t.completed = true
			t.finished = eng.Now()
			t.done.Fire()
			thens := t.thens
			t.thens = nil
			for _, fn := range thens {
				fn()
			}
		})
	}
}
