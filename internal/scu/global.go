package scu

import (
	"fmt"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
)

// GlobalConfig programs one of the SCU's two global-operation streams
// (§2.2, "Global operations"). In global mode, data words arriving on
// the In link are delivered locally (OnWord) and passed through to every
// link in Outs — with only about a byte of store-and-forward delay in
// the real hardware — so a pattern of such configurations across the
// machine implements low-latency global sums and broadcasts.
//
// The stream terminates after Expect received words; of these, the first
// Forward words are passed through (in a ring reduction each node
// forwards all but the final word, which has already visited every
// node).
type GlobalConfig struct {
	// In is the link whose inbound data words belong to this stream.
	// Ignored when HasIn is false (a pure source, e.g. a broadcast
	// origin).
	In    geom.Link
	HasIn bool
	// Outs are the links the stream passes words through to.
	Outs []geom.Link
	// Expect is the number of words to receive before the stream is done.
	Expect int
	// Forward is how many of the received words (the first ones) are
	// passed through to Outs.
	Forward int
	// OnWord is called for each received word with its arrival index;
	// arrival order on a given stream is deterministic (upstream
	// neighbour's word first).
	OnWord func(idx int, w uint64)
}

// globalStream is the live state of a configured stream.
type globalStream struct {
	scu      *SCU
	id       int
	cfg      GlobalConfig
	received int
	done     *event.Gate
	thens    []func()
}

// ConfigureGlobal programs stream id (0 or 1 — the "doubled"
// functionality allows two disjoint link sets to run concurrent global
// operations). The links used must be attached and disjoint from the
// other active stream's links.
func (s *SCU) ConfigureGlobal(id int, cfg GlobalConfig) error {
	if id < 0 || id >= len(s.globals) {
		return fmt.Errorf("%w: stream %d", ErrBadStream, id)
	}
	if s.globals[id] != nil {
		return fmt.Errorf("%w: stream %d already active", ErrBadStream, id)
	}
	// The 24 uni-directional connections are independent resources: a
	// stream's receive side (In) conflicts only with the other stream's
	// receive side, and transmit (Outs) only with transmit.
	other := s.globals[1-id]
	if cfg.HasIn {
		if !s.Attached(cfg.In) {
			return fmt.Errorf("%w: in link %v not attached", ErrBadStream, cfg.In)
		}
		if other != nil && other.cfg.HasIn && other.cfg.In == cfg.In {
			return fmt.Errorf("%w: receive side of %v used by both streams", ErrBadStream, cfg.In)
		}
	}
	for _, o := range cfg.Outs {
		if !s.Attached(o) {
			return fmt.Errorf("%w: out link %v not attached", ErrBadStream, o)
		}
		if other != nil {
			for _, oo := range other.cfg.Outs {
				if oo == o {
					return fmt.Errorf("%w: transmit side of %v used by both streams", ErrBadStream, o)
				}
			}
		}
	}
	if cfg.Expect < 0 || cfg.Forward > cfg.Expect {
		return fmt.Errorf("%w: expect %d forward %d", ErrBadStream, cfg.Expect, cfg.Forward)
	}
	gs := &globalStream{scu: s, id: id, cfg: cfg, done: event.NewGate(s.eng)}
	s.globals[id] = gs
	if cfg.HasIn {
		s.globalIn[geom.LinkIndex(cfg.In)] = id
		// Idle receive interplay (§2.2): stream words that arrived before
		// the stream was configured are being held, unacknowledged, in the
		// link's SCU registers. Drain them into the stream and release the
		// withheld acknowledgement — the global-operation analogue of
		// programming a receive.
		lu := s.links[geom.LinkIndex(cfg.In)]
		if lu.idleBufLen > 0 {
			for lu.idleBufLen > 0 {
				gs.receive(lu.popIdle())
			}
			lu.sendCumAck()
		}
	}
	return nil
}

// GlobalInject sends this node's own contribution out on the stream's
// pass-through links (the "register used for sending").
func (s *SCU) GlobalInject(id int, w uint64) error {
	gs := s.globals[id]
	if gs == nil {
		return fmt.Errorf("%w: stream %d not configured", ErrBadStream, id)
	}
	for _, o := range gs.cfg.Outs {
		s.links[geom.LinkIndex(o)].inject(w)
	}
	return nil
}

// GlobalDone reports whether stream id has received its expected words.
func (s *SCU) GlobalDone(id int) bool {
	gs := s.globals[id]
	return gs != nil && gs.received >= gs.cfg.Expect
}

// WaitGlobal blocks until stream id completes.
func (s *SCU) WaitGlobal(p *event.Proc, id int) {
	for {
		gs := s.globals[id]
		if gs == nil || gs.received >= gs.cfg.Expect {
			return
		}
		gs.done.Wait(p, fmt.Sprintf("global %d", id))
	}
}

// OnGlobalDone runs fn when stream id completes — the continuation-tier
// WaitGlobal, for callers with no process. If the stream is already
// complete (or not configured), fn runs immediately.
func (s *SCU) OnGlobalDone(id int, fn func()) {
	gs := s.globals[id]
	if gs == nil || gs.received >= gs.cfg.Expect {
		fn()
		return
	}
	gs.thens = append(gs.thens, fn)
}

// DisableGlobal tears down stream id; its In link returns to normal DMA
// reception.
func (s *SCU) DisableGlobal(id int) {
	gs := s.globals[id]
	if gs == nil {
		return
	}
	if gs.cfg.HasIn {
		s.globalIn[geom.LinkIndex(gs.cfg.In)] = -1
	}
	s.globals[id] = nil
}

// receive handles one stream word accepted on the In link.
func (gs *globalStream) receive(w uint64) {
	idx := gs.received
	gs.received++
	if idx >= gs.cfg.Expect {
		panic(fmt.Sprintf("scu %s: global stream %d received %d words, expected %d",
			gs.scu.name, gs.id, gs.received, gs.cfg.Expect))
	}
	if gs.cfg.OnWord != nil {
		gs.cfg.OnWord(idx, w)
	}
	if idx < gs.cfg.Forward {
		for _, o := range gs.cfg.Outs {
			gs.scu.links[geom.LinkIndex(o)].inject(w)
		}
	}
	if gs.received == gs.cfg.Expect {
		gs.done.Fire()
		thens := gs.thens
		gs.thens = nil
		for _, fn := range thens {
			fn()
		}
	}
}
