package scu

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/hssl"
)

// testMem is a sparse word-addressed memory.
type testMem struct {
	words map[uint64]uint64
}

func newTestMem() *testMem                      { return &testMem{words: map[uint64]uint64{}} }
func (m *testMem) ReadWord(a uint64) uint64     { return m.words[a] }
func (m *testMem) WriteWord(a uint64, w uint64) { m.words[a] = w }

// pair is a two-node harness: node A's (0,Fwd) link is wired to node B's
// (0,Bwd) link.
type pair struct {
	eng    *event.Engine
	a, b   *SCU
	ma, mb *testMem
	ab, ba *hssl.Wire // A->B and B->A wires
	linkA  geom.Link  // the link as seen from A
	linkB  geom.Link  // the link as seen from B
}

func newPair(t *testing.T, cfg Config) *pair {
	t.Helper()
	eng := event.New()
	ab := hssl.NewWire(eng, "a->b", hssl.DefaultClock, hssl.DefaultPropagation)
	ba := hssl.NewWire(eng, "b->a", hssl.DefaultClock, hssl.DefaultPropagation)
	eng.Spawn("train", func(p *event.Proc) {
		ab.Train(p)
	})
	eng.Spawn("train2", func(p *event.Proc) {
		ba.Train(p)
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	ma, mb := newTestMem(), newTestMem()
	a := New(eng, "A", ma, cfg)
	b := New(eng, "B", mb, cfg)
	la := geom.Link{Dim: 0, Dir: geom.Fwd}
	lb := geom.Link{Dim: 0, Dir: geom.Bwd}
	a.AttachLink(la, ab, ba)
	b.AttachLink(lb, ba, ab)
	a.Start()
	b.Start()
	pr := &pair{eng: eng, a: a, b: b, ma: ma, mb: mb, ab: ab, ba: ba, linkA: la, linkB: lb}
	t.Cleanup(func() { eng.Shutdown() })
	return pr
}

func (pr *pair) run(t *testing.T) {
	t.Helper()
	if err := pr.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func fillWords(m *testMem, base uint64, n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64()
		m.WriteWord(base+8*uint64(i), out[i])
	}
	return out
}

func TestSingleWordLatency600ns(t *testing.T) {
	// E4: memory-to-memory time for a nearest-neighbour transfer is about
	// 600 ns (§2.2).
	pr := newPair(t, Config{})
	pr.ma.WriteWord(0, 0xCAFE)
	start := pr.eng.Now()
	rt, err := pr.b.StartRecv(pr.linkB, Contiguous(0x1000, 1))
	if err != nil {
		t.Fatal(err)
	}
	st, err := pr.a.StartSend(pr.linkA, Contiguous(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	pr.run(t)
	if !st.Done() || !rt.Done() {
		t.Fatal("transfers not complete")
	}
	if got := pr.mb.ReadWord(0x1000); got != 0xCAFE {
		t.Fatalf("payload = %#x", got)
	}
	lat := rt.Finished() - start
	if lat < 590*event.Nanosecond || lat > 610*event.Nanosecond {
		t.Fatalf("memory-to-memory latency = %v, want ~600ns", lat)
	}
}

func Test24WordTransferTiming(t *testing.T) {
	// E4: for a 24-word transfer the 600 ns first-word latency is small
	// against the ~3.3 us for the remaining 23 words (~3.9 us total).
	pr := newPair(t, Config{})
	want := fillWords(pr.ma, 0, 24, 7)
	start := pr.eng.Now()
	rt, _ := pr.b.StartRecv(pr.linkB, Contiguous(0x2000, 24))
	pr.a.StartSend(pr.linkA, Contiguous(0, 24))
	pr.run(t)
	for i, w := range want {
		if got := pr.mb.ReadWord(0x2000 + 8*uint64(i)); got != w {
			t.Fatalf("word %d = %#x, want %#x", i, got, w)
		}
	}
	total := rt.Finished() - start
	lo := 3800 * event.Nanosecond
	hi := 4050 * event.Nanosecond
	if total < lo || total > hi {
		t.Fatalf("24-word transfer took %v, want ~3.9us", total)
	}
}

func TestIdleReceiveNoTemporalOrdering(t *testing.T) {
	// §2.2: the receiver holds the first three words and withholds acks,
	// so a send may start long before the receive is programmed.
	pr := newPair(t, Config{})
	want := fillWords(pr.ma, 0, 8, 9)
	st, _ := pr.a.StartSend(pr.linkA, Contiguous(0, 8))
	// Let the sender run: it must stall after 3 unacknowledged words.
	if err := pr.eng.Run(pr.eng.Now() + 10*event.Microsecond); err != nil {
		t.Fatal(err)
	}
	if st.Done() {
		t.Fatal("send completed with no receiver programmed")
	}
	sent := pr.a.LinkStats(pr.linkA).WordsSent
	if sent != 3 {
		t.Fatalf("sender transmitted %d words while blocked, want 3 (window)", sent)
	}
	// Now program the receive; everything flows.
	rt, _ := pr.b.StartRecv(pr.linkB, Contiguous(0x3000, 8))
	pr.run(t)
	if !st.Done() || !rt.Done() {
		t.Fatal("transfers incomplete after receive programmed")
	}
	for i, w := range want {
		if got := pr.mb.ReadWord(0x3000 + 8*uint64(i)); got != w {
			t.Fatalf("word %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestConcurrentBidirectional(t *testing.T) {
	// §2.2: concurrent sends and receives to each neighbour.
	pr := newPair(t, Config{})
	wantAB := fillWords(pr.ma, 0, 32, 11)
	wantBA := fillWords(pr.mb, 0x8000, 32, 13)
	rtB, _ := pr.b.StartRecv(pr.linkB, Contiguous(0x4000, 32))
	rtA, _ := pr.a.StartRecv(pr.linkA, Contiguous(0x4000, 32))
	pr.a.StartSend(pr.linkA, Contiguous(0, 32))
	pr.b.StartSend(pr.linkB, Contiguous(0x8000, 32))
	pr.run(t)
	if !rtA.Done() || !rtB.Done() {
		t.Fatal("incomplete")
	}
	for i := range wantAB {
		if got := pr.mb.ReadWord(0x4000 + 8*uint64(i)); got != wantAB[i] {
			t.Fatalf("A->B word %d wrong", i)
		}
		if got := pr.ma.ReadWord(0x4000 + 8*uint64(i)); got != wantBA[i] {
			t.Fatalf("B->A word %d wrong", i)
		}
	}
}

func TestBlockStridedDMA(t *testing.T) {
	// Gather on the send side, scatter on the receive side, with
	// different shapes (same total).
	pr := newPair(t, Config{})
	desc := DMADesc{Base: 0, BlockWords: 2, NumBlocks: 4, StrideWords: 10}
	var want []uint64
	for i := 0; i < desc.TotalWords(); i++ {
		w := uint64(0xA0) + uint64(i)*0x1111
		pr.ma.WriteWord(desc.Addr(i), w)
		want = append(want, w)
	}
	rdesc := DMADesc{Base: 0x5000, BlockWords: 4, NumBlocks: 2, StrideWords: 16}
	rt, _ := pr.b.StartRecv(pr.linkB, rdesc)
	pr.a.StartSend(pr.linkA, desc)
	pr.run(t)
	if !rt.Done() {
		t.Fatal("incomplete")
	}
	for i, w := range want {
		if got := pr.mb.ReadWord(rdesc.Addr(i)); got != w {
			t.Fatalf("word %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestDMADescValidation(t *testing.T) {
	pr := newPair(t, Config{})
	bad := []DMADesc{
		{Base: 0, BlockWords: 0, NumBlocks: 1, StrideWords: 1},
		{Base: 0, BlockWords: 1, NumBlocks: 0, StrideWords: 1},
		{Base: 0, BlockWords: 4, NumBlocks: 2, StrideWords: 2}, // overlap
		{Base: 3, BlockWords: 1, NumBlocks: 1, StrideWords: 1}, // unaligned
	}
	for _, d := range bad {
		if _, err := pr.a.StartSend(pr.linkA, d); err == nil {
			t.Errorf("descriptor %+v accepted", d)
		}
	}
	if _, err := pr.a.StartSend(geom.Link{Dim: 3, Dir: geom.Fwd}, Contiguous(0, 1)); err == nil {
		t.Error("unattached link accepted")
	}
}

func TestSingleBitErrorAutoResend(t *testing.T) {
	// E12: a single bit error is detected by parity and repaired by the
	// automatic hardware resend; the delivered data is correct and the
	// end-of-link checksums agree.
	pr := newPair(t, Config{})
	want := fillWords(pr.ma, 0, 16, 21)
	// Corrupt a payload bit of the 5th data frame on the A->B wire.
	pr.ab.SetFault(hssl.FlipBitOnce(5, 23))
	rt, _ := pr.b.StartRecv(pr.linkB, Contiguous(0x6000, 16))
	st, _ := pr.a.StartSend(pr.linkA, Contiguous(0, 16))
	pr.run(t)
	if !st.Done() || !rt.Done() {
		t.Fatal("incomplete")
	}
	for i, w := range want {
		if got := pr.mb.ReadWord(0x6000 + 8*uint64(i)); got != w {
			t.Fatalf("word %d = %#x, want %#x", i, got, w)
		}
	}
	bs := pr.b.LinkStats(pr.linkB)
	as := pr.a.LinkStats(pr.linkA)
	if bs.ParityErrors+bs.HeaderErrors == 0 {
		t.Fatal("no error detected at receiver")
	}
	if bs.NaksSent == 0 {
		t.Fatal("no nak sent")
	}
	if as.Resends == 0 {
		t.Fatal("no resend performed")
	}
	txSum, _ := pr.a.Checksums(pr.linkA)
	_, rxSum := pr.b.Checksums(pr.linkB)
	if !txSum.Equal(&rxSum) {
		t.Fatalf("end-of-link checksums disagree after recovery: tx %d/%#x rx %d/%#x",
			txSum.Count(), txSum.Sum(), rxSum.Count(), rxSum.Sum())
	}
}

func TestRepeatedErrorsSoak(t *testing.T) {
	// Corrupt every 7th frame on the data wire; the transfer must still
	// complete correctly.
	pr := newPair(t, Config{AckTimeout: 5 * event.Microsecond})
	want := fillWords(pr.ma, 0, 200, 33)
	pr.ab.SetFault(hssl.FlipBitEvery(7))
	rt, _ := pr.b.StartRecv(pr.linkB, Contiguous(0x7000, 200))
	st, _ := pr.a.StartSend(pr.linkA, Contiguous(0, 200))
	pr.run(t)
	if !st.Done() || !rt.Done() {
		t.Fatal("incomplete")
	}
	for i, w := range want {
		if got := pr.mb.ReadWord(0x7000 + 8*uint64(i)); got != w {
			t.Fatalf("word %d = %#x, want %#x", i, got, w)
		}
	}
	txSum, _ := pr.a.Checksums(pr.linkA)
	_, rxSum := pr.b.Checksums(pr.linkB)
	if !txSum.Equal(&rxSum) {
		t.Fatal("checksums disagree after soak")
	}
}

func TestAckCorruptionRecovered(t *testing.T) {
	// Corrupting the reverse (ack-carrying) wire stalls the window until
	// the acknowledgement timeout resends the oldest word and the
	// receiver re-acks.
	pr := newPair(t, Config{AckTimeout: 5 * event.Microsecond})
	want := fillWords(pr.ma, 0, 8, 41)
	pr.ba.SetFault(hssl.FlipBitEvery(3)) // hits ack frames B->A
	rt, _ := pr.b.StartRecv(pr.linkB, Contiguous(0x8000, 8))
	st, _ := pr.a.StartSend(pr.linkA, Contiguous(0, 8))
	pr.run(t)
	if !st.Done() || !rt.Done() {
		t.Fatal("incomplete")
	}
	for i, w := range want {
		if got := pr.mb.ReadWord(0x8000 + 8*uint64(i)); got != w {
			t.Fatalf("word %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestSupervisorInterrupt(t *testing.T) {
	// §2.2: a supervisor packet lands in the neighbour's SCU register and
	// raises a CPU interrupt there.
	pr := newPair(t, Config{})
	var got []uint64
	var gotLink geom.Link
	pr.b.OnSupervisor(func(l geom.Link, w uint64) {
		gotLink = l
		got = append(got, w)
	})
	if err := pr.a.SendSupervisor(pr.linkA, 0xFEED); err != nil {
		t.Fatal(err)
	}
	pr.run(t)
	if len(got) != 1 || got[0] != 0xFEED {
		t.Fatalf("supervisor words = %v", got)
	}
	if gotLink != pr.linkB {
		t.Fatalf("arrived on link %v", gotLink)
	}
	if pr.b.LastSupervisor(pr.linkB) != 0xFEED {
		t.Fatal("supervisor register not written")
	}
	// Several queued supervisors deliver in order.
	for i := uint64(1); i <= 4; i++ {
		pr.a.SendSupervisor(pr.linkA, i)
	}
	pr.run(t)
	if len(got) != 5 {
		t.Fatalf("got %d supervisors", len(got))
	}
	for i := uint64(1); i <= 4; i++ {
		if got[i] != i {
			t.Fatalf("supervisor %d = %d", i, got[i])
		}
	}
}

func TestSupervisorDuringDataTransfer(t *testing.T) {
	// Supervisors multiplex onto a busy link without corrupting the data
	// stream.
	pr := newPair(t, Config{})
	want := fillWords(pr.ma, 0, 64, 55)
	var sup []uint64
	pr.b.OnSupervisor(func(_ geom.Link, w uint64) { sup = append(sup, w) })
	rt, _ := pr.b.StartRecv(pr.linkB, Contiguous(0x9000, 64))
	pr.a.StartSend(pr.linkA, Contiguous(0, 64))
	pr.eng.After(2*event.Microsecond, func() {
		pr.a.SendSupervisor(pr.linkA, 0xBEEF)
	})
	pr.run(t)
	if !rt.Done() {
		t.Fatal("incomplete")
	}
	for i, w := range want {
		if got := pr.mb.ReadWord(0x9000 + 8*uint64(i)); got != w {
			t.Fatalf("word %d wrong", i)
		}
	}
	if len(sup) != 1 || sup[0] != 0xBEEF {
		t.Fatalf("sup = %v", sup)
	}
}

func TestPartitionInterruptTwoNodes(t *testing.T) {
	pr := newPair(t, Config{})
	pr.a.RaisePartIRQ(0x04)
	pr.run(t)
	if pr.b.PartIRQPending() != 0x04 {
		t.Fatalf("B pending = %#x", pr.b.PartIRQPending())
	}
	// Status is only visible after the global clock samples it.
	if pr.b.PartIRQStatus() != 0 {
		t.Fatal("status latched before window tick")
	}
	var irqs []uint8
	pr.b.OnPartIRQ(func(m uint8) { irqs = append(irqs, m) })
	pr.a.WindowTick()
	pr.b.WindowTick()
	if pr.b.PartIRQStatus() != 0x04 {
		t.Fatalf("B status = %#x", pr.b.PartIRQStatus())
	}
	if len(irqs) != 1 || irqs[0] != 0x04 {
		t.Fatalf("irqs = %v", irqs)
	}
	// No duplicate forwarding storms: each side sent the bit at most once.
	if s := pr.a.LinkStats(pr.linkA).PartIRQsSent; s != 1 {
		t.Fatalf("A sent %d partirq packets", s)
	}
	// Clearing resets pending and status.
	pr.a.ClearPartIRQ(0x04)
	pr.b.ClearPartIRQ(0x04)
	if pr.a.PartIRQPending() != 0 || pr.b.PartIRQStatus() != 0 {
		t.Fatal("clear failed")
	}
}

// ring builds n nodes connected in a 1-D torus along dimension 0.
func ring(t *testing.T, n int, cfg Config) (*event.Engine, []*SCU, []*testMem) {
	t.Helper()
	eng := event.New()
	fwd := make([]*hssl.Wire, n) // fwd[i]: i -> i+1
	bwd := make([]*hssl.Wire, n) // bwd[i]: i+1 -> i
	for i := 0; i < n; i++ {
		fwd[i] = hssl.NewWire(eng, fmt.Sprintf("f%d", i), hssl.DefaultClock, hssl.DefaultPropagation)
		bwd[i] = hssl.NewWire(eng, fmt.Sprintf("b%d", i), hssl.DefaultClock, hssl.DefaultPropagation)
		w1, w2 := fwd[i], bwd[i]
		eng.Spawn("train", func(p *event.Proc) { w1.Train(p); w2.Train(p) })
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	scus := make([]*SCU, n)
	mems := make([]*testMem, n)
	for i := 0; i < n; i++ {
		mems[i] = newTestMem()
		scus[i] = New(eng, fmt.Sprintf("n%d", i), mems[i], cfg)
	}
	for i := 0; i < n; i++ {
		next := (i + 1) % n
		prev := (i - 1 + n) % n
		scus[i].AttachLink(geom.Link{Dim: 0, Dir: geom.Fwd}, fwd[i], bwd[i])
		scus[i].AttachLink(geom.Link{Dim: 0, Dir: geom.Bwd}, bwd[prev], fwd[prev])
		_ = next
	}
	for _, s := range scus {
		s.Start()
	}
	t.Cleanup(func() { eng.Shutdown() })
	return eng, scus, mems
}

func TestGlobalRingBroadcastSum(t *testing.T) {
	// §2.2 Global operations: each node contributes one word; words pass
	// through the ring so every node collects all N words after N-1 hops.
	const n = 4
	eng, scus, _ := ring(t, n, Config{})
	collected := make([][]uint64, n)
	lin := geom.Link{Dim: 0, Dir: geom.Bwd}
	lout := geom.Link{Dim: 0, Dir: geom.Fwd}
	for i, s := range scus {
		i := i
		err := s.ConfigureGlobal(0, GlobalConfig{
			In: lin, HasIn: true,
			Outs:    []geom.Link{lout},
			Expect:  n - 1,
			Forward: n - 2,
			OnWord:  func(_ int, w uint64) { collected[i] = append(collected[i], w) },
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range scus {
		if err := s.GlobalInject(0, uint64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, s := range scus {
		if !s.GlobalDone(0) {
			t.Fatalf("node %d stream not done", i)
		}
		// Node i receives, in order, the words of i-1, i-2, ... (mod n).
		if len(collected[i]) != n-1 {
			t.Fatalf("node %d collected %d words", i, len(collected[i]))
		}
		for k, w := range collected[i] {
			origin := (i - 1 - k + 2*n) % n
			if w != uint64(100+origin) {
				t.Fatalf("node %d word %d = %d, want %d", i, k, w, 100+origin)
			}
		}
	}
}

func TestGlobalDoubledMode(t *testing.T) {
	// The doubled functionality: two disjoint streams run both ring
	// directions at once, halving the hop count.
	const n = 4
	eng, scus, _ := ring(t, n, Config{})
	got := make([]map[uint64]bool, n)
	fwdL := geom.Link{Dim: 0, Dir: geom.Fwd}
	bwdL := geom.Link{Dim: 0, Dir: geom.Bwd}
	kf := n / 2      // words arriving from the left (forward stream)
	kb := n - 1 - kf // words arriving from the right (backward stream)
	for i, s := range scus {
		i := i
		got[i] = map[uint64]bool{}
		if err := s.ConfigureGlobal(0, GlobalConfig{
			In: bwdL, HasIn: true, Outs: []geom.Link{fwdL},
			Expect: kf, Forward: kf - 1,
			OnWord: func(_ int, w uint64) { got[i][w] = true },
		}); err != nil {
			t.Fatal(err)
		}
		cfg := GlobalConfig{
			In: fwdL, HasIn: true, Outs: []geom.Link{bwdL},
			Expect: kb, Forward: kb - 1,
			OnWord: func(_ int, w uint64) { got[i][w] = true },
		}
		if cfg.Forward < 0 {
			cfg.Forward = 0
		}
		if err := s.ConfigureGlobal(1, cfg); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range scus {
		s.GlobalInject(0, uint64(100+i))
		s.GlobalInject(1, uint64(100+i))
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	for i, s := range scus {
		if !s.GlobalDone(0) || !s.GlobalDone(1) {
			t.Fatalf("node %d streams incomplete", i)
		}
		if len(got[i]) != n-1 {
			t.Fatalf("node %d collected %v", i, got[i])
		}
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if !got[i][uint64(100+j)] {
				t.Fatalf("node %d missing word of node %d", i, j)
			}
		}
	}
}

func TestGlobalStreamValidation(t *testing.T) {
	pr := newPair(t, Config{})
	ok := GlobalConfig{In: pr.linkA, HasIn: true, Outs: []geom.Link{pr.linkA}, Expect: 1, Forward: 0}
	if err := pr.a.ConfigureGlobal(0, ok); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	// Same receive side on the second stream must be rejected.
	if err := pr.a.ConfigureGlobal(1, ok); err == nil {
		t.Fatal("conflicting receive side accepted")
	}
	// But the opposite direction pair is disjoint and fine after using
	// distinct tx/rx resources... here both sides are taken, so reuse of
	// the transmit side must also be rejected.
	bad := GlobalConfig{Outs: []geom.Link{pr.linkA}, Expect: 0, Forward: 0}
	if err := pr.a.ConfigureGlobal(1, bad); err == nil {
		t.Fatal("conflicting transmit side accepted")
	}
	pr.a.DisableGlobal(0)
	if err := pr.a.ConfigureGlobal(0, ok); err != nil {
		t.Fatalf("reconfigure after disable failed: %v", err)
	}
	// Unattached links rejected.
	pr.a.DisableGlobal(0)
	if err := pr.a.ConfigureGlobal(0, GlobalConfig{In: geom.Link{Dim: 5, Dir: geom.Fwd}, HasIn: true}); err == nil {
		t.Fatal("unattached in link accepted")
	}
}

func TestTransferIntegrityQuick(t *testing.T) {
	// Property: any transfer size and stride pattern delivers exactly the
	// source words, in order, under random single-frame corruption.
	f := func(seed int64, sizeSel, strideSel uint8, faultFrame uint8, faultBit uint16) bool {
		pr := newPair(t, Config{AckTimeout: 5 * event.Microsecond})
		n := int(sizeSel%32) + 1
		stride := int(strideSel%5) + 1
		desc := DMADesc{Base: 0, BlockWords: 1, NumBlocks: n, StrideWords: stride}
		rng := rand.New(rand.NewSource(seed))
		want := make([]uint64, n)
		for i := range want {
			want[i] = rng.Uint64()
			pr.ma.WriteWord(desc.Addr(i), want[i])
		}
		pr.ab.SetFault(hssl.FlipBitOnce(uint64(faultFrame%16)+1, int(faultBit)))
		rt, err := pr.b.StartRecv(pr.linkB, Contiguous(0xA000, n))
		if err != nil {
			return false
		}
		if _, err := pr.a.StartSend(pr.linkA, desc); err != nil {
			return false
		}
		if err := pr.eng.RunAll(); err != nil {
			return false
		}
		if !rt.Done() {
			return false
		}
		for i, w := range want {
			if pr.mb.ReadWord(0xA000+8*uint64(i)) != w {
				return false
			}
		}
		txSum, _ := pr.a.Checksums(pr.linkA)
		_, rxSum := pr.b.Checksums(pr.linkB)
		return txSum.Equal(&rxSum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowSustainsFullBandwidth(t *testing.T) {
	// E6/§2.2: with three words in the air the link runs at the
	// serialization limit (72 bits per word), so 500 words take about
	// 500 x 144 ns. With a window of 1 the handshake round trip gates
	// every word and throughput collapses — the reason the hardware uses
	// three.
	elapsed := func(window int) event.Time {
		pr := newPair(t, Config{Window: window})
		fillWords(pr.ma, 0, 500, 77)
		start := pr.eng.Now()
		rt, _ := pr.b.StartRecv(pr.linkB, Contiguous(0x10000, 500))
		pr.a.StartSend(pr.linkA, Contiguous(0, 500))
		pr.run(t)
		return rt.Finished() - start
	}
	t3 := elapsed(3)
	t1 := elapsed(1)
	// Window 3: ~ 250ns startup + 500*144ns + tail ≈ 72.5us.
	ideal := 500 * 144 * event.Nanosecond
	if t3 > ideal+2*event.Microsecond {
		t.Fatalf("window-3 transfer took %v, not serialization-bound (%v)", t3, ideal)
	}
	// Window 1 pays the ~42 ns ack round trip (16-bit ack + two flight
	// times) on every word; window 3 hides it entirely.
	handshake := 500 * 40 * event.Nanosecond
	if t1 < t3+handshake {
		t.Fatalf("window-1 (%v) should pay the per-word handshake over window-3 (%v)", t1, t3)
	}
}
