// Package faultplan generates and injects deterministic machine-wide
// fault schedules. A Plan is derived from a seed through the simulator's
// counter-based RNG (internal/rng), so the same -faultseed produces the
// same faults — kind, victim, link, picosecond — on every run; injection
// is scheduled on the event engine, so detection and recovery timing are
// part of the machine's reproducible event stream (the property E16
// pins).
//
// The fault taxonomy covers the failure modes the QCDOC design defends
// against (DESIGN.md §12): permanent serial-link death and burst errors
// on the mesh wires (§2.2's parity/resend/retrain ladder), node crashes
// and hangs (detected by the host watchdog over the Ethernet/JTAG side
// network), and management-Ethernet packet loss and duplication
// (absorbed by the qdaemon's RPC retry layer).
package faultplan

import (
	"fmt"
	"strings"

	"qcdoc/internal/ethjtag"
	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/hssl"
	"qcdoc/internal/machine"
	"qcdoc/internal/rng"
)

// Kind is a fault class.
type Kind uint8

const (
	// LinkDeath permanently severs one mesh wire (hssl.Wire.Kill):
	// retrains never restore it and the SCU escalates to link failure.
	LinkDeath Kind = iota
	// LinkBurst corrupts frames on one mesh wire for a bounded window,
	// driving the parity/resend and retrain machinery without killing
	// the link.
	LinkBurst
	// NodeCrash kills a node's software; its lifecycle state reads
	// Crashed over JTAG (fast watchdog detection).
	NodeCrash
	// NodeHang freezes a node's software while its state still claims
	// app-running; only the frozen heartbeat betrays it (slow
	// detection).
	NodeHang
	// NetDrop loses one management-Ethernet request in the switch
	// fabric; the qdaemon's RPC timeout/retry absorbs it.
	NetDrop
	// NetDup delivers one management-Ethernet request twice; idempotence
	// checks and stale-reply discard absorb it.
	NetDup
)

func (k Kind) String() string {
	switch k {
	case LinkDeath:
		return "link-death"
	case LinkBurst:
		return "link-burst"
	case NodeCrash:
		return "node-crash"
	case NodeHang:
		return "node-hang"
	case NetDrop:
		return "net-drop"
	case NetDup:
		return "net-dup"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Fault is one scheduled injection. At is relative to the Arm call (the
// recovered-machine clock starts over on each restart, so absolute
// times would not survive an attempt boundary).
type Fault struct {
	Kind Kind
	At   event.Time
	// Rank is the victim node (NodeCrash, NodeHang, LinkDeath,
	// LinkBurst).
	Rank int
	// Link selects the victim wire on Rank (LinkDeath, LinkBurst).
	Link geom.Link
	// Dur bounds a LinkBurst's corruption window.
	Dur event.Time
	// Every is a LinkBurst's corruption stride (every Every-th frame).
	Every uint64
	// Nth selects the Nth management request sent after Arm (NetDrop,
	// NetDup).
	Nth uint64
	// Spent marks a fault that has fired. A restarted attempt re-arms
	// the same plan; spent faults stay down, so a node dies once, not
	// once per attempt.
	Spent bool
}

func (f Fault) String() string {
	switch f.Kind {
	case NetDrop, NetDup:
		return fmt.Sprintf("%s request #%d", f.Kind, f.Nth)
	case LinkDeath:
		return fmt.Sprintf("%s node %d %v at %v", f.Kind, f.Rank, f.Link, f.At)
	case LinkBurst:
		return fmt.Sprintf("%s node %d %v at %v for %v (every %d frames)",
			f.Kind, f.Rank, f.Link, f.At, f.Dur, f.Every)
	}
	return fmt.Sprintf("%s node %d at %v", f.Kind, f.Rank, f.At)
}

// Spec says how many faults of each class to draw and from what ranges.
type Spec struct {
	// From/To bound injection times (relative to Arm).
	From, To event.Time

	NodeCrashes int
	NodeHangs   int
	LinkDeaths  int
	LinkBursts  int
	NetDrops    int
	NetDups     int

	// BurstDur and BurstEvery parameterize LinkBursts; zero values take
	// 50 us and every 13th frame.
	BurstDur   event.Time
	BurstEvery uint64
	// NetSpan bounds the request index drawn for NetDrop/NetDup faults
	// (they hit one of the first NetSpan management requests after Arm;
	// zero takes 400, early enough to land in boot/launch traffic).
	NetSpan uint64
}

func (s Spec) withDefaults() Spec {
	if s.To <= s.From {
		s.To = s.From + event.Millisecond
	}
	if s.BurstDur <= 0 {
		s.BurstDur = 50 * event.Microsecond
	}
	if s.BurstEvery == 0 {
		s.BurstEvery = 13
	}
	if s.NetSpan == 0 {
		s.NetSpan = 400
	}
	return s
}

// Plan is a generated fault schedule.
type Plan struct {
	Seed   uint64
	Faults []Fault
	// OnFire, when set, observes each fault as it is injected.
	OnFire func(Fault)
}

// Generate derives the fault schedule for the given seed: same seed,
// same spec, same node count — bit-identical plan. Draw order is fixed
// (kind by kind, each fault a fixed number of draws), so adding fault
// classes to a spec never perturbs the draws of the classes before it.
func Generate(seed uint64, spec Spec, nodes int) *Plan {
	spec = spec.withDefaults()
	s := rng.New(seed, 0xFA17)
	span := uint64(spec.To - spec.From)
	drawAt := func() event.Time { return spec.From + event.Time(s.Uint64()%span) }
	drawRank := func() int { return s.Intn(nodes) }
	drawLink := func() geom.Link { return geom.AllLinks()[s.Intn(geom.NumLinks)] }

	p := &Plan{Seed: seed}
	for i := 0; i < spec.NodeCrashes; i++ {
		p.Faults = append(p.Faults, Fault{Kind: NodeCrash, At: drawAt(), Rank: drawRank()})
	}
	for i := 0; i < spec.NodeHangs; i++ {
		p.Faults = append(p.Faults, Fault{Kind: NodeHang, At: drawAt(), Rank: drawRank()})
	}
	for i := 0; i < spec.LinkDeaths; i++ {
		p.Faults = append(p.Faults, Fault{Kind: LinkDeath, At: drawAt(), Rank: drawRank(), Link: drawLink()})
	}
	for i := 0; i < spec.LinkBursts; i++ {
		p.Faults = append(p.Faults, Fault{Kind: LinkBurst, At: drawAt(), Rank: drawRank(),
			Link: drawLink(), Dur: spec.BurstDur, Every: spec.BurstEvery})
	}
	for i := 0; i < spec.NetDrops; i++ {
		p.Faults = append(p.Faults, Fault{Kind: NetDrop, Nth: 1 + s.Uint64()%spec.NetSpan})
	}
	for i := 0; i < spec.NetDups; i++ {
		p.Faults = append(p.Faults, Fault{Kind: NetDup, Nth: 1 + s.Uint64()%spec.NetSpan})
	}
	return p
}

// Arm schedules every unspent fault on the engine against the given
// machine and management network. Call it once per attempt, after boot:
// the node and link faults fire at their At offsets; the net faults
// install a packet-fault hook counting management requests from this
// moment. Faults mark themselves Spent when they fire, so re-arming the
// same plan on a recovered machine replays only what has not yet
// happened.
//
// Net faults target host-to-node requests only (Dst in node address
// space): every such datagram rides the qdaemon's timeout/retry
// machinery. Unsolicited node-to-host reports have no retransmission
// layer — losing one is a real gap in the §3.1 protocol, not a
// recoverable fault, and injecting it would just wedge the run.
//
// On a sharded machine the victim's lifecycle state and outbound wires
// belong to its shard engine, so each injection crosses to that shard
// (CrossAt degrades to a plain At on an unsharded build); the OnFire
// observation crosses back so every observer callback runs serially on
// the arming engine, whatever shard the fault struck.
func (p *Plan) Arm(eng *event.Engine, m *machine.Machine, net *ethjtag.Network) {
	base := eng.Now()
	for i := range p.Faults {
		f := &p.Faults[i]
		if f.Spent {
			continue
		}
		switch f.Kind {
		case NetDrop, NetDup:
			continue // handled by the composite hook below
		}
		// Clamp the victim rank to the (possibly smaller, repartitioned)
		// machine before picking its shard.
		fault := *f
		rank := f.Rank % len(m.Nodes)
		tgt := m.NodeEngine(rank)
		//qcdoclint:crossalias-ok fault injection IS cross-shard mutation: the plan, fault record, and machine are owned by the arming engine, which only reads them back after the run drains
		eng.CrossAt(tgt, base+f.At, func() {
			if f.Spent {
				return
			}
			f.Spent = true
			p.inject(tgt, m, rank, fault)
			if p.OnFire != nil {
				ff := fault
				ff.Rank = rank
				//qcdoclint:crossalias-ok OnFire crosses back to the arming engine so observer callbacks serialize there; p is handed back to its owner
				tgt.CrossAt(eng, tgt.Now(), func() { p.OnFire(ff) })
			}
		})
	}
	p.armNetFaults(net)
}

// inject applies one node/link fault to the machine. eng is the
// victim's shard engine: the LinkBurst end timer must live where the
// wire's transmit state does.
func (p *Plan) inject(eng *event.Engine, m *machine.Machine, rank int, f Fault) {
	switch f.Kind {
	case NodeCrash:
		m.Nodes[rank].Crash()
	case NodeHang:
		m.Nodes[rank].Hang()
	case LinkDeath:
		m.Wire(rank, f.Link).Kill()
	case LinkBurst:
		w := m.Wire(rank, f.Link)
		w.SetFault(hssl.FlipBitEvery(f.Every))
		eng.After(f.Dur, func() { w.SetFault(nil) })
	}
}

// armNetFaults installs one composite management-network fault hook
// covering every unspent NetDrop/NetDup rule.
func (p *Plan) armNetFaults(net *ethjtag.Network) {
	if net == nil {
		return // no management network attached (bare-machine runs)
	}
	var rules []*Fault
	for i := range p.Faults {
		f := &p.Faults[i]
		if (f.Kind == NetDrop || f.Kind == NetDup) && !f.Spent {
			rules = append(rules, f)
		}
	}
	if len(rules) == 0 {
		net.Fault = nil
		return
	}
	var sent uint64
	net.Fault = func(pkt *ethjtag.Packet) ethjtag.FaultVerdict {
		if pkt.Dst < ethjtag.NodeAddrBase {
			return ethjtag.FaultNone // node-to-host report: out of scope
		}
		sent++
		for _, f := range rules {
			if f.Spent || f.Nth != sent {
				continue
			}
			f.Spent = true
			if p.OnFire != nil {
				p.OnFire(*f)
			}
			if f.Kind == NetDrop {
				return ethjtag.FaultDrop
			}
			return ethjtag.FaultDup
		}
		return ethjtag.FaultNone
	}
}

// Remaining counts unspent faults.
func (p *Plan) Remaining() int {
	n := 0
	for i := range p.Faults {
		if !p.Faults[i].Spent {
			n++
		}
	}
	return n
}

// Digest fingerprints the plan (FNV-1a over every fault's schedule
// fields): two runs from the same seed must agree here before their
// machines even boot.
func (p *Plan) Digest() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(p.Seed)
	for _, f := range p.Faults {
		mix(uint64(f.Kind))
		mix(uint64(f.At))
		mix(uint64(f.Rank))
		mix(uint64(f.Link.Dim)<<1 | uint64(f.Link.Dir))
		mix(uint64(f.Dur))
		mix(f.Every)
		mix(f.Nth)
	}
	return h
}

func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault plan seed %d (digest %#x):\n", p.Seed, p.Digest())
	for _, f := range p.Faults {
		spent := ""
		if f.Spent {
			spent = " [spent]"
		}
		fmt.Fprintf(&b, "  %s%s\n", f, spent)
	}
	return b.String()
}
