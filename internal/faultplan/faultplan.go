// Package faultplan generates and injects deterministic machine-wide
// fault schedules. A Plan is derived from a seed through the simulator's
// counter-based RNG (internal/rng), so the same -faultseed produces the
// same faults — kind, victim, link, picosecond — on every run; injection
// is scheduled on the event engine, so detection and recovery timing are
// part of the machine's reproducible event stream (the property E16
// pins).
//
// The fault taxonomy covers the failure modes the QCDOC design defends
// against (DESIGN.md §12): permanent serial-link death and burst errors
// on the mesh wires (§2.2's parity/resend/retrain ladder), node crashes
// and hangs (detected by the host watchdog over the Ethernet/JTAG side
// network), and management-Ethernet packet loss and duplication
// (absorbed by the qdaemon's RPC retry layer).
package faultplan

import (
	"fmt"
	"strings"

	"qcdoc/internal/ethjtag"
	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/hssl"
	"qcdoc/internal/machine"
	"qcdoc/internal/rng"
)

// Kind is a fault class.
type Kind uint8

const (
	// LinkDeath permanently severs one mesh wire (hssl.Wire.Kill):
	// retrains never restore it and the SCU escalates to link failure.
	LinkDeath Kind = iota
	// LinkBurst corrupts frames on one mesh wire for a bounded window,
	// driving the parity/resend and retrain machinery without killing
	// the link.
	LinkBurst
	// NodeCrash kills a node's software; its lifecycle state reads
	// Crashed over JTAG (fast watchdog detection).
	NodeCrash
	// NodeHang freezes a node's software while its state still claims
	// app-running; only the frozen heartbeat betrays it (slow
	// detection).
	NodeHang
	// NetDrop loses one management-Ethernet request in the switch
	// fabric; the qdaemon's RPC timeout/retry absorbs it.
	NetDrop
	// NetDup delivers one management-Ethernet request twice; idempotence
	// checks and stale-reply discard absorb it.
	NetDup
	// ChunkCorrupt flips one bit in a stored checkpoint chunk on the
	// host FS — silent RAID corruption. The recovery ladder's CRC
	// validation catches it and falls back a checkpoint generation.
	ChunkCorrupt
	// ChunkTorn truncates a stored checkpoint chunk — a torn write (the
	// host lost power mid-stripe). Decodes as a short read; same
	// generation-fallback rung as ChunkCorrupt.
	ChunkTorn
	// NFSStall delays every NFS-shim packet for a bounded window — the
	// host RAID path congested. Checkpoint writes land late but intact.
	NFSStall
	// NFSError drops every NFS-shim packet for a bounded window — the
	// host FS erroring out. Files written in the window never commit
	// (the shim assembles all-or-nothing), so those generations simply
	// do not exist.
	NFSError
	// WatchdogFalsePositive injects a spurious death report for a live
	// node. The watchdog must probe the node over JTAG before isolating
	// it; a live node survives the report.
	WatchdogFalsePositive
	// RecoveryCrash kills a second node, scheduled relative to the
	// first recovery's repartition window: it arms only from the second
	// Arm of the plan onward (attempt >= 1), so it lands during or
	// after the restore that follows the first death.
	RecoveryCrash
)

func (k Kind) String() string {
	switch k {
	case LinkDeath:
		return "link-death"
	case LinkBurst:
		return "link-burst"
	case NodeCrash:
		return "node-crash"
	case NodeHang:
		return "node-hang"
	case NetDrop:
		return "net-drop"
	case NetDup:
		return "net-dup"
	case ChunkCorrupt:
		return "chunk-corrupt"
	case ChunkTorn:
		return "chunk-torn"
	case NFSStall:
		return "nfs-stall"
	case NFSError:
		return "nfs-error"
	case WatchdogFalsePositive:
		return "watchdog-false-positive"
	case RecoveryCrash:
		return "recovery-crash"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Fault is one scheduled injection. At is relative to the Arm call (the
// recovered-machine clock starts over on each restart, so absolute
// times would not survive an attempt boundary).
type Fault struct {
	Kind Kind
	At   event.Time
	// Rank is the victim node (NodeCrash, NodeHang, LinkDeath,
	// LinkBurst).
	Rank int
	// Link selects the victim wire on Rank (LinkDeath, LinkBurst).
	Link geom.Link
	// Dur bounds a LinkBurst's corruption window.
	Dur event.Time
	// Every is a LinkBurst's corruption stride (every Every-th frame).
	Every uint64
	// Nth selects the Nth management request sent after Arm (NetDrop,
	// NetDup), or the victim bit/byte inside a stored chunk
	// (ChunkCorrupt, ChunkTorn).
	Nth uint64
	// Spent marks a fault that has fired. A restarted attempt re-arms
	// the same plan; spent faults stay down, so a node dies once, not
	// once per attempt.
	Spent bool
}

func (f Fault) String() string {
	switch f.Kind {
	case NetDrop, NetDup:
		return fmt.Sprintf("%s request #%d", f.Kind, f.Nth)
	case LinkDeath:
		return fmt.Sprintf("%s node %d %v at %v", f.Kind, f.Rank, f.Link, f.At)
	case LinkBurst:
		return fmt.Sprintf("%s node %d %v at %v for %v (every %d frames)",
			f.Kind, f.Rank, f.Link, f.At, f.Dur, f.Every)
	case ChunkCorrupt, ChunkTorn:
		return fmt.Sprintf("%s rank %d chunk at %v (sel %d)", f.Kind, f.Rank, f.At, f.Nth)
	case NFSStall, NFSError:
		return fmt.Sprintf("%s at %v for %v", f.Kind, f.At, f.Dur)
	}
	return fmt.Sprintf("%s node %d at %v", f.Kind, f.Rank, f.At)
}

// Spec says how many faults of each class to draw and from what ranges.
type Spec struct {
	// From/To bound injection times (relative to Arm).
	From, To event.Time

	NodeCrashes int
	NodeHangs   int
	LinkDeaths  int
	LinkBursts  int
	NetDrops    int
	NetDups     int

	// Second-order and storage-plane fault counts (DESIGN.md §16).
	ChunkCorrupts          int
	ChunkTorns             int
	NFSStalls              int
	NFSErrors              int
	WatchdogFalsePositives int
	RecoveryCrashes        int

	// BurstDur and BurstEvery parameterize LinkBursts; zero values take
	// 50 us and every 13th frame.
	BurstDur   event.Time
	BurstEvery uint64
	// NetSpan bounds the request index drawn for NetDrop/NetDup faults
	// (they hit one of the first NetSpan management requests after Arm;
	// zero takes 400, early enough to land in boot/launch traffic).
	NetSpan uint64

	// RecoveryFrom/RecoveryTo bound RecoveryCrash injection times,
	// relative to the re-Arm of a recovered attempt (so relative to the
	// repartition window); zero values take 100 us .. 5 ms, which covers
	// restore, relaunch, and the early solve.
	RecoveryFrom, RecoveryTo event.Time
	// NFSWindow is the duration of each NFSStall/NFSError window; zero
	// takes 1.5 ms. NFSStallLatency is the extra per-packet delivery
	// delay inside a stall window; zero takes 200 us.
	NFSWindow       event.Time
	NFSStallLatency event.Time
}

func (s Spec) withDefaults() Spec {
	if s.To <= s.From {
		s.To = s.From + event.Millisecond
	}
	if s.BurstDur <= 0 {
		s.BurstDur = 50 * event.Microsecond
	}
	if s.BurstEvery == 0 {
		s.BurstEvery = 13
	}
	if s.NetSpan == 0 {
		s.NetSpan = 400
	}
	if s.RecoveryTo <= s.RecoveryFrom {
		s.RecoveryFrom = 100 * event.Microsecond
		s.RecoveryTo = 5 * event.Millisecond
	}
	if s.NFSWindow <= 0 {
		s.NFSWindow = 1500 * event.Microsecond
	}
	if s.NFSStallLatency <= 0 {
		s.NFSStallLatency = 200 * event.Microsecond
	}
	return s
}

// Plan is a generated fault schedule.
type Plan struct {
	Seed   uint64
	Faults []Fault
	// OnFire, when set, observes each fault as it is injected.
	OnFire func(Fault)

	// StallLatency is the delivery delay an NFSStall window imposes
	// (copied from the generating Spec).
	StallLatency event.Time

	// armedOn/armedHostOn remember the engine of the current attempt's
	// Arm/ArmHost: re-arming on the same engine is a no-op, so a
	// recovery that is itself interrupted and retried cannot schedule
	// the surviving faults twice (or reset the counted net-fault
	// stream). A fresh engine — the next attempt's — re-arms normally.
	armedOn     *event.Engine
	armedHostOn *event.Engine
	// arms counts distinct Arm calls (attempts). RecoveryCrash faults
	// arm only from the second attempt onward.
	arms int
}

// Generate derives the fault schedule for the given seed: same seed,
// same spec, same node count — bit-identical plan. Draw order is fixed
// (kind by kind, each fault a fixed number of draws), so adding fault
// classes to a spec never perturbs the draws of the classes before it.
func Generate(seed uint64, spec Spec, nodes int) *Plan {
	spec = spec.withDefaults()
	s := rng.New(seed, 0xFA17)
	span := uint64(spec.To - spec.From)
	drawAt := func() event.Time { return spec.From + event.Time(s.Uint64()%span) }
	drawRank := func() int { return s.Intn(nodes) }
	drawLink := func() geom.Link { return geom.AllLinks()[s.Intn(geom.NumLinks)] }

	p := &Plan{Seed: seed}
	for i := 0; i < spec.NodeCrashes; i++ {
		p.Faults = append(p.Faults, Fault{Kind: NodeCrash, At: drawAt(), Rank: drawRank()})
	}
	for i := 0; i < spec.NodeHangs; i++ {
		p.Faults = append(p.Faults, Fault{Kind: NodeHang, At: drawAt(), Rank: drawRank()})
	}
	for i := 0; i < spec.LinkDeaths; i++ {
		p.Faults = append(p.Faults, Fault{Kind: LinkDeath, At: drawAt(), Rank: drawRank(), Link: drawLink()})
	}
	for i := 0; i < spec.LinkBursts; i++ {
		p.Faults = append(p.Faults, Fault{Kind: LinkBurst, At: drawAt(), Rank: drawRank(),
			Link: drawLink(), Dur: spec.BurstDur, Every: spec.BurstEvery})
	}
	for i := 0; i < spec.NetDrops; i++ {
		p.Faults = append(p.Faults, Fault{Kind: NetDrop, Nth: 1 + s.Uint64()%spec.NetSpan})
	}
	for i := 0; i < spec.NetDups; i++ {
		p.Faults = append(p.Faults, Fault{Kind: NetDup, Nth: 1 + s.Uint64()%spec.NetSpan})
	}
	// Second-order/storage kinds draw after every first-order kind, each
	// kind a fixed number of draws: a spec that adds them reproduces the
	// first-order schedule of the spec without them, bit for bit.
	for i := 0; i < spec.ChunkCorrupts; i++ {
		p.Faults = append(p.Faults, Fault{Kind: ChunkCorrupt, At: drawAt(), Rank: drawRank(), Nth: s.Uint64()})
	}
	for i := 0; i < spec.ChunkTorns; i++ {
		p.Faults = append(p.Faults, Fault{Kind: ChunkTorn, At: drawAt(), Rank: drawRank(), Nth: s.Uint64()})
	}
	for i := 0; i < spec.NFSStalls; i++ {
		p.Faults = append(p.Faults, Fault{Kind: NFSStall, At: drawAt(), Dur: spec.NFSWindow})
	}
	for i := 0; i < spec.NFSErrors; i++ {
		p.Faults = append(p.Faults, Fault{Kind: NFSError, At: drawAt(), Dur: spec.NFSWindow})
	}
	for i := 0; i < spec.WatchdogFalsePositives; i++ {
		p.Faults = append(p.Faults, Fault{Kind: WatchdogFalsePositive, At: drawAt(), Rank: drawRank()})
	}
	recSpan := uint64(spec.RecoveryTo - spec.RecoveryFrom)
	for i := 0; i < spec.RecoveryCrashes; i++ {
		p.Faults = append(p.Faults, Fault{Kind: RecoveryCrash,
			At: spec.RecoveryFrom + event.Time(s.Uint64()%recSpan), Rank: drawRank()})
	}
	p.StallLatency = spec.NFSStallLatency
	return p
}

// Arm schedules every unspent fault on the engine against the given
// machine and management network. Call it once per attempt, after boot:
// the node and link faults fire at their At offsets; the net faults
// install a packet-fault hook counting management requests from this
// moment. Faults mark themselves Spent when they fire, so re-arming the
// same plan on a recovered machine replays only what has not yet
// happened.
//
// Net faults target host-to-node requests only (Dst in node address
// space): every such datagram rides the qdaemon's timeout/retry
// machinery. Unsolicited node-to-host reports have no retransmission
// layer — losing one is a real gap in the §3.1 protocol, not a
// recoverable fault, and injecting it would just wedge the run.
//
// On a sharded machine the victim's lifecycle state and outbound wires
// belong to its shard engine, so each injection crosses to that shard
// (CrossAt degrades to a plain At on an unsharded build); the OnFire
// observation crosses back so every observer callback runs serially on
// the arming engine, whatever shard the fault struck.
//
// Arm is idempotent per attempt: a second call with the same engine —
// a recovery that was itself interrupted and re-entered — is a no-op,
// so surviving faults are never scheduled twice and the counted
// net-fault stream keeps its position. A fresh engine re-arms.
func (p *Plan) Arm(eng *event.Engine, m *machine.Machine, net *ethjtag.Network) {
	if p.armedOn == eng {
		return
	}
	p.armedOn = eng
	p.arms++
	base := eng.Now()
	for i := range p.Faults {
		f := &p.Faults[i]
		if f.Spent {
			continue
		}
		switch f.Kind {
		case NetDrop, NetDup, NFSStall, NFSError:
			continue // handled by the composite hook below
		case ChunkCorrupt, ChunkTorn, WatchdogFalsePositive:
			continue // host-plane faults: see ArmHost
		case RecoveryCrash:
			// A second-order death: scheduled relative to the recovery
			// that follows the first one, so it stays down until the
			// plan is re-armed on a recovered machine.
			if p.arms < 2 {
				continue
			}
		}
		// Clamp the victim rank to the (possibly smaller, repartitioned)
		// machine before picking its shard.
		fault := *f
		rank := f.Rank % len(m.Nodes)
		tgt := m.NodeEngine(rank)
		//qcdoclint:crossalias-ok fault injection IS cross-shard mutation: the plan, fault record, and machine are owned by the arming engine, which only reads them back after the run drains
		eng.CrossAt(tgt, base+f.At, func() {
			if f.Spent {
				return
			}
			f.Spent = true
			p.inject(tgt, m, rank, fault)
			if p.OnFire != nil {
				ff := fault
				ff.Rank = rank
				//qcdoclint:crossalias-ok OnFire crosses back to the arming engine so observer callbacks serialize there; p is handed back to its owner
				tgt.CrossAt(eng, tgt.Now(), func() { p.OnFire(ff) })
			}
		})
	}
	p.armNetFaults(eng, base, net)
}

// Host is the storage/operator plane of the machine's host: the
// surfaces the host-side faults strike. The chaos driver implements it
// over the qdaemon's FS map and watchdog; each method runs on the
// arming (host) engine at the fault's scheduled time.
type Host interface {
	// CorruptChunk flips one bit, selected by sel, in the newest stored
	// checkpoint chunk belonging to rank, reporting whether such a
	// chunk existed (a miss leaves the fault unspent, to retry on the
	// next attempt once a chunk has been written).
	CorruptChunk(rank int, sel uint64) bool
	// TearChunk truncates the newest stored chunk belonging to rank at
	// an offset selected by sel, reporting whether a chunk existed.
	TearChunk(rank int, sel uint64) bool
	// SuspectNode files a spurious death report for rank with the
	// watchdog (which must probe before isolating).
	SuspectNode(rank int)
}

// ArmHost schedules the host-plane faults (ChunkCorrupt, ChunkTorn,
// WatchdogFalsePositive) against the given host surface on the arming
// engine — the shard the host FS and watchdog live on. Call it after
// Arm, once per attempt; like Arm it is idempotent per engine. Chunk
// faults that find no chunk to strike stay unspent and replay on the
// next attempt.
func (p *Plan) ArmHost(eng *event.Engine, nodes int, h Host) {
	if h == nil || p.armedHostOn == eng {
		return
	}
	p.armedHostOn = eng
	base := eng.Now()
	for i := range p.Faults {
		f := &p.Faults[i]
		if f.Spent {
			continue
		}
		switch f.Kind {
		case ChunkCorrupt, ChunkTorn, WatchdogFalsePositive:
		default:
			continue
		}
		rank := f.Rank % nodes
		eng.At(base+f.At, func() {
			if f.Spent {
				return
			}
			switch f.Kind {
			case ChunkCorrupt:
				if !h.CorruptChunk(rank, f.Nth) {
					return
				}
			case ChunkTorn:
				if !h.TearChunk(rank, f.Nth) {
					return
				}
			case WatchdogFalsePositive:
				h.SuspectNode(rank)
			}
			f.Spent = true
			if p.OnFire != nil {
				ff := *f
				ff.Rank = rank
				p.OnFire(ff)
			}
		})
	}
}

// inject applies one node/link fault to the machine. eng is the
// victim's shard engine: the LinkBurst end timer must live where the
// wire's transmit state does.
func (p *Plan) inject(eng *event.Engine, m *machine.Machine, rank int, f Fault) {
	switch f.Kind {
	case NodeCrash, RecoveryCrash:
		m.Nodes[rank].Crash()
	case NodeHang:
		m.Nodes[rank].Hang()
	case LinkDeath:
		m.Wire(rank, f.Link).Kill()
	case LinkBurst:
		w := m.Wire(rank, f.Link)
		w.SetFault(hssl.FlipBitEvery(f.Every))
		eng.After(f.Dur, func() { w.SetFault(nil) })
	}
}

// armNetFaults installs one composite management-network fault hook
// covering every unspent NetDrop/NetDup rule plus the NFS-plane
// windows (NFSStall/NFSError). The counted drop/dup stream judges only
// host-to-node requests; NFS windows judge only NFS-shim packets
// (which travel node-to-host), so the two rule sets never interact.
func (p *Plan) armNetFaults(eng *event.Engine, base event.Time, net *ethjtag.Network) {
	if net == nil {
		return // no management network attached (bare-machine runs)
	}
	var rules, windows []*Fault
	for i := range p.Faults {
		f := &p.Faults[i]
		if f.Spent {
			continue
		}
		switch f.Kind {
		case NetDrop, NetDup:
			rules = append(rules, f)
		case NFSStall, NFSError:
			windows = append(windows, f)
		}
	}
	if len(rules) == 0 && len(windows) == 0 {
		net.Fault = nil
		return
	}
	net.Stall = p.StallLatency
	for _, w := range windows {
		w := w
		// The window announces itself at its opening edge and marks
		// itself spent at its closing edge; an attempt that ends before
		// the close replays the whole window on the next Arm (the spent
		// timer dies with the attempt's engine). The hook below only
		// judges packets strictly inside the open window.
		if p.OnFire != nil {
			eng.At(base+w.At, func() {
				if !w.Spent && p.OnFire != nil {
					p.OnFire(*w)
				}
			})
		}
		eng.At(base+w.At+w.Dur, func() { w.Spent = true })
	}
	var sent uint64
	net.Fault = func(pkt *ethjtag.Packet) ethjtag.FaultVerdict {
		if pkt.Port == ethjtag.PortNFS {
			now := net.Now()
			for _, w := range windows {
				if w.Spent || now < base+w.At || now >= base+w.At+w.Dur {
					continue
				}
				if w.Kind == NFSError {
					return ethjtag.FaultDrop
				}
				return ethjtag.FaultStall
			}
			return ethjtag.FaultNone
		}
		if pkt.Dst < ethjtag.NodeAddrBase {
			return ethjtag.FaultNone // node-to-host report: out of scope
		}
		sent++
		for _, f := range rules {
			if f.Spent || f.Nth != sent {
				continue
			}
			f.Spent = true
			if p.OnFire != nil {
				p.OnFire(*f)
			}
			if f.Kind == NetDrop {
				return ethjtag.FaultDrop
			}
			return ethjtag.FaultDup
		}
		return ethjtag.FaultNone
	}
}

// Remaining counts unspent faults.
func (p *Plan) Remaining() int {
	n := 0
	for i := range p.Faults {
		if !p.Faults[i].Spent {
			n++
		}
	}
	return n
}

// Digest fingerprints the plan (FNV-1a over every fault's schedule
// fields): two runs from the same seed must agree here before their
// machines even boot.
func (p *Plan) Digest() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xFF
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(p.Seed)
	for _, f := range p.Faults {
		mix(uint64(f.Kind))
		mix(uint64(f.At))
		mix(uint64(f.Rank))
		mix(uint64(f.Link.Dim)<<1 | uint64(f.Link.Dir))
		mix(uint64(f.Dur))
		mix(f.Every)
		mix(f.Nth)
	}
	return h
}

func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault plan seed %d (digest %#x):\n", p.Seed, p.Digest())
	for _, f := range p.Faults {
		spent := ""
		if f.Spent {
			spent = " [spent]"
		}
		fmt.Fprintf(&b, "  %s%s\n", f, spent)
	}
	return b.String()
}
