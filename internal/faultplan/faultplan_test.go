package faultplan

import (
	"testing"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/machine"
	"qcdoc/internal/node"
)

func testSpec() Spec {
	return Spec{
		From:        event.Millisecond,
		To:          5 * event.Millisecond,
		NodeCrashes: 2,
		NodeHangs:   1,
		LinkDeaths:  1,
		LinkBursts:  2,
		NetDrops:    3,
		NetDups:     1,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p1 := Generate(42, testSpec(), 16)
	p2 := Generate(42, testSpec(), 16)
	if p1.Digest() != p2.Digest() {
		t.Fatalf("same seed, different digests: %#x vs %#x", p1.Digest(), p2.Digest())
	}
	if len(p1.Faults) != 10 {
		t.Fatalf("%d faults, want 10", len(p1.Faults))
	}
	for i := range p1.Faults {
		if p1.Faults[i] != p2.Faults[i] {
			t.Fatalf("fault %d differs: %+v vs %+v", i, p1.Faults[i], p2.Faults[i])
		}
	}
	if Generate(43, testSpec(), 16).Digest() == p1.Digest() {
		t.Fatal("different seeds produced the same plan")
	}
	for _, f := range p1.Faults {
		switch f.Kind {
		case NetDrop, NetDup:
			if f.Nth == 0 {
				t.Fatalf("net fault with zero index: %+v", f)
			}
		default:
			if f.At < event.Millisecond || f.At >= 5*event.Millisecond {
				t.Fatalf("fault outside window: %+v", f)
			}
			if f.Rank < 0 || f.Rank >= 16 {
				t.Fatalf("victim out of range: %+v", f)
			}
		}
	}
}

// Arming a plan fires each fault once; re-arming on a fresh machine
// (the recovery restart) replays only what has not yet happened.
func TestArmSpentMarking(t *testing.T) {
	spec := Spec{From: event.Millisecond, To: 2 * event.Millisecond, NodeCrashes: 1}
	plan := Generate(7, spec, 4)

	boot := func() (*event.Engine, *machine.Machine) {
		eng := event.New()
		m := machine.Build(eng, machine.DefaultConfig(geom.MakeShape(2, 2)))
		if err := m.Boot(); err != nil {
			t.Fatal(err)
		}
		return eng, m
	}
	crashed := func(m *machine.Machine) int {
		n := 0
		for _, nd := range m.Nodes {
			if nd.State() == node.Crashed {
				n++
			}
		}
		return n
	}

	eng1, m1 := boot()
	plan.Arm(eng1, m1, nil)
	if err := eng1.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := crashed(m1); got != 1 {
		t.Fatalf("%d nodes crashed on first arm, want 1", got)
	}
	if plan.Remaining() != 0 {
		t.Fatalf("%d faults unspent after firing", plan.Remaining())
	}
	eng1.Shutdown()

	// The restarted machine re-arms the same plan: the crash is spent
	// and must not repeat.
	eng2, m2 := boot()
	plan.Arm(eng2, m2, nil)
	if err := eng2.RunAll(); err != nil {
		t.Fatal(err)
	}
	defer eng2.Shutdown()
	if got := crashed(m2); got != 0 {
		t.Fatalf("%d nodes crashed on re-arm, want 0 (fault already spent)", got)
	}
}

// The second-order/storage kinds draw after every first-order kind:
// adding them to a spec reproduces the first-order schedule bit for
// bit, and their own draws are deterministic and in range.
func TestGenerateSecondOrderKinds(t *testing.T) {
	spec := testSpec()
	spec.ChunkCorrupts = 2
	spec.ChunkTorns = 1
	spec.NFSStalls = 1
	spec.NFSErrors = 1
	spec.WatchdogFalsePositives = 1
	spec.RecoveryCrashes = 2
	p1 := Generate(42, spec, 16)
	p2 := Generate(42, spec, 16)
	if p1.Digest() != p2.Digest() {
		t.Fatalf("same seed, different digests: %#x vs %#x", p1.Digest(), p2.Digest())
	}
	if len(p1.Faults) != 18 {
		t.Fatalf("%d faults, want 18", len(p1.Faults))
	}
	// Draw-order preservation: the first-order prefix matches the plan
	// generated without any second-order kinds.
	base := Generate(42, testSpec(), 16)
	for i, f := range base.Faults {
		if p1.Faults[i] != f {
			t.Fatalf("adding second-order kinds perturbed first-order fault %d: %+v vs %+v",
				i, p1.Faults[i], f)
		}
	}
	for _, f := range p1.Faults[len(base.Faults):] {
		switch f.Kind {
		case ChunkCorrupt, ChunkTorn, WatchdogFalsePositive:
			if f.At < spec.From || f.At >= spec.To {
				t.Fatalf("fault outside window: %+v", f)
			}
			if f.Rank < 0 || f.Rank >= 16 {
				t.Fatalf("victim out of range: %+v", f)
			}
		case NFSStall, NFSError:
			if f.At < spec.From || f.At >= spec.To || f.Dur <= 0 {
				t.Fatalf("window fault malformed: %+v", f)
			}
		case RecoveryCrash:
			if f.At < 100*event.Microsecond || f.At >= 5*event.Millisecond {
				t.Fatalf("recovery crash outside its default window: %+v", f)
			}
		default:
			t.Fatalf("unexpected kind in second-order suffix: %+v", f)
		}
	}
}

// Arm is idempotent per engine: a recovery that is itself interrupted
// re-enters and re-arms on the same engine, and that nested re-arm must
// neither double-schedule faults nor count as a new attempt. Only a
// fresh engine (the next attempt) advances the attempt count that gates
// RecoveryCrash.
func TestArmIdempotentAndRecoveryCrashGating(t *testing.T) {
	spec := Spec{From: event.Millisecond, To: 2 * event.Millisecond, RecoveryCrashes: 1}
	plan := Generate(9, spec, 4)

	boot := func() (*event.Engine, *machine.Machine) {
		eng := event.New()
		m := machine.Build(eng, machine.DefaultConfig(geom.MakeShape(2, 2)))
		if err := m.Boot(); err != nil {
			t.Fatal(err)
		}
		return eng, m
	}
	crashed := func(m *machine.Machine) int {
		n := 0
		for _, nd := range m.Nodes {
			if nd.State() == node.Crashed {
				n++
			}
		}
		return n
	}

	// Attempt 1, armed twice (interrupted recovery re-entering): the
	// recovery crash is second-order and must stay down.
	eng1, m1 := boot()
	plan.Arm(eng1, m1, nil)
	plan.Arm(eng1, m1, nil) // nested re-arm: must be a no-op
	if err := eng1.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := crashed(m1); got != 0 {
		t.Fatalf("%d nodes crashed on first attempt, want 0 (RecoveryCrash gated)", got)
	}
	if plan.Remaining() != 1 {
		t.Fatalf("%d faults unspent after first attempt, want 1", plan.Remaining())
	}
	eng1.Shutdown()

	// Attempt 2 (fresh engine): the recovery crash arms and fires.
	eng2, m2 := boot()
	plan.Arm(eng2, m2, nil)
	if err := eng2.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := crashed(m2); got != 1 {
		t.Fatalf("%d nodes crashed on second attempt, want 1", got)
	}
	if plan.Remaining() != 0 {
		t.Fatalf("%d faults unspent after firing", plan.Remaining())
	}
	eng2.Shutdown()

	// Attempt 3: spent stays spent.
	eng3, m3 := boot()
	plan.Arm(eng3, m3, nil)
	if err := eng3.RunAll(); err != nil {
		t.Fatal(err)
	}
	defer eng3.Shutdown()
	if got := crashed(m3); got != 0 {
		t.Fatalf("%d nodes crashed on re-arm, want 0 (fault already spent)", got)
	}
}

// recordingHost counts host-plane strikes and lets the test decide
// whether a chunk exists to be struck.
type recordingHost struct {
	haveChunk                 bool
	corrupts, tears, suspects int
}

func (h *recordingHost) CorruptChunk(rank int, sel uint64) bool { h.corrupts++; return h.haveChunk }
func (h *recordingHost) TearChunk(rank int, sel uint64) bool    { h.tears++; return h.haveChunk }
func (h *recordingHost) SuspectNode(rank int)                   { h.suspects++ }

// Chunk faults that find no chunk stay unspent and replay on the next
// attempt; a fired false positive is spent for good. ArmHost is
// idempotent per engine, like Arm.
func TestArmHostSpentAudit(t *testing.T) {
	spec := Spec{From: event.Millisecond, To: 2 * event.Millisecond,
		ChunkCorrupts: 1, ChunkTorns: 1, WatchdogFalsePositives: 1}
	plan := Generate(11, spec, 8)
	h := &recordingHost{}

	eng1 := event.New()
	plan.ArmHost(eng1, 8, h)
	plan.ArmHost(eng1, 8, h) // nested re-arm: no-op
	if err := eng1.RunAll(); err != nil {
		t.Fatal(err)
	}
	eng1.Shutdown()
	if h.corrupts != 1 || h.tears != 1 || h.suspects != 1 {
		t.Fatalf("first attempt strikes: %+v, want 1 of each", h)
	}
	if plan.Remaining() != 2 {
		t.Fatalf("%d faults unspent, want 2 (chunk faults missed, false positive spent)", plan.Remaining())
	}

	// Next attempt: chunks now exist; the chunk faults land and spend.
	// The spent false positive must not replay.
	h.haveChunk = true
	eng2 := event.New()
	plan.ArmHost(eng2, 8, h)
	if err := eng2.RunAll(); err != nil {
		t.Fatal(err)
	}
	eng2.Shutdown()
	if h.corrupts != 2 || h.tears != 2 || h.suspects != 1 {
		t.Fatalf("second attempt strikes: %+v, want one more corrupt+tear and no new suspect", h)
	}
	if plan.Remaining() != 0 {
		t.Fatalf("%d faults unspent after chunk faults landed", plan.Remaining())
	}
}
