package faultplan

import (
	"testing"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/machine"
	"qcdoc/internal/node"
)

func testSpec() Spec {
	return Spec{
		From:        event.Millisecond,
		To:          5 * event.Millisecond,
		NodeCrashes: 2,
		NodeHangs:   1,
		LinkDeaths:  1,
		LinkBursts:  2,
		NetDrops:    3,
		NetDups:     1,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p1 := Generate(42, testSpec(), 16)
	p2 := Generate(42, testSpec(), 16)
	if p1.Digest() != p2.Digest() {
		t.Fatalf("same seed, different digests: %#x vs %#x", p1.Digest(), p2.Digest())
	}
	if len(p1.Faults) != 10 {
		t.Fatalf("%d faults, want 10", len(p1.Faults))
	}
	for i := range p1.Faults {
		if p1.Faults[i] != p2.Faults[i] {
			t.Fatalf("fault %d differs: %+v vs %+v", i, p1.Faults[i], p2.Faults[i])
		}
	}
	if Generate(43, testSpec(), 16).Digest() == p1.Digest() {
		t.Fatal("different seeds produced the same plan")
	}
	for _, f := range p1.Faults {
		switch f.Kind {
		case NetDrop, NetDup:
			if f.Nth == 0 {
				t.Fatalf("net fault with zero index: %+v", f)
			}
		default:
			if f.At < event.Millisecond || f.At >= 5*event.Millisecond {
				t.Fatalf("fault outside window: %+v", f)
			}
			if f.Rank < 0 || f.Rank >= 16 {
				t.Fatalf("victim out of range: %+v", f)
			}
		}
	}
}

// Arming a plan fires each fault once; re-arming on a fresh machine
// (the recovery restart) replays only what has not yet happened.
func TestArmSpentMarking(t *testing.T) {
	spec := Spec{From: event.Millisecond, To: 2 * event.Millisecond, NodeCrashes: 1}
	plan := Generate(7, spec, 4)

	boot := func() (*event.Engine, *machine.Machine) {
		eng := event.New()
		m := machine.Build(eng, machine.DefaultConfig(geom.MakeShape(2, 2)))
		if err := m.Boot(); err != nil {
			t.Fatal(err)
		}
		return eng, m
	}
	crashed := func(m *machine.Machine) int {
		n := 0
		for _, nd := range m.Nodes {
			if nd.State() == node.Crashed {
				n++
			}
		}
		return n
	}

	eng1, m1 := boot()
	plan.Arm(eng1, m1, nil)
	if err := eng1.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := crashed(m1); got != 1 {
		t.Fatalf("%d nodes crashed on first arm, want 1", got)
	}
	if plan.Remaining() != 0 {
		t.Fatalf("%d faults unspent after firing", plan.Remaining())
	}
	eng1.Shutdown()

	// The restarted machine re-arms the same plan: the crash is spent
	// and must not repeat.
	eng2, m2 := boot()
	plan.Arm(eng2, m2, nil)
	if err := eng2.RunAll(); err != nil {
		t.Fatal(err)
	}
	defer eng2.Shutdown()
	if got := crashed(m2); got != 0 {
		t.Fatalf("%d nodes crashed on re-arm, want 0 (fault already spent)", got)
	}
}
