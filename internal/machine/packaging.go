package machine

import (
	"fmt"
	"math"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
)

// Packaging constants from §2.4 and Figures 3-5.
const (
	// NodesPerDaughterboard: two ASICs plus two DDR DIMMs and a 5-port
	// Ethernet hub on a 3" x 6.5" 18-layer board.
	NodesPerDaughterboard = 2
	// WattsPerDaughterboard: the paper quotes "about 20 Watts for both
	// nodes, including the DRAMs" per daughterboard, but also that a
	// populated 512-daughterboard rack "consumes less than 10,000
	// watts"; both cannot be exact (512 x 20 = 10,240). We take the
	// rack-level figure as the measured one and back out an average of
	// 18.5 W per board, keeping the nominal 20 W for reference.
	WattsPerDaughterboard        = 18.5
	NominalWattsPerDaughterboard = 20.0
	// DaughterboardsPerMotherboard: 32 boards = 64 nodes as a 2^6
	// hypercube on a 14.5" x 27" motherboard.
	DaughterboardsPerMotherboard = 32
	NodesPerMotherboard          = NodesPerDaughterboard * DaughterboardsPerMotherboard
	// MotherboardsPerCrate: eight motherboards per crate, two crates per
	// water-cooled rack.
	MotherboardsPerCrate = 8
	CratesPerRack        = 2
	NodesPerCrate        = NodesPerMotherboard * MotherboardsPerCrate
	NodesPerRack         = NodesPerCrate * CratesPerRack // 1024
	// RackOverheadWatts covers DC-DC conversion, hubs, clock
	// distribution and pumps so a populated rack stays under the paper's
	// 10,000 W ("consumes less than 10,000 watts").
	RackOverheadWatts = 500.0
	// RackFootprintSqFt: the paper quotes ~60 ft^2 for a 10,000+-node
	// (12-rack) stacked installation.
	RackFootprintSqFt = 5.0
	// GlobalClockHz is the motherboard-distributed slow clock (§2.4,
	// "around 40 MHz").
	GlobalClockHz = 40 * event.MHz
	// MotherboardShape: the 64 nodes of a motherboard form a 2^6
	// hypercube (Figure 4).
	MotherboardDim = 6
)

// Packaging summarizes the physical build of an n-node machine.
type Packaging struct {
	Nodes          int
	Daughterboards int
	Motherboards   int
	Crates         int
	Racks          int
	PowerWatts     float64
	FootprintSqFt  float64
	PeakTeraflops  float64
}

// PackagingFor computes the packaging of an n-node machine at the given
// clock.
func PackagingFor(nodes int, clock event.Hz) Packaging {
	ceil := func(a, b int) int { return (a + b - 1) / b }
	racks := ceil(nodes, NodesPerRack)
	p := Packaging{
		Nodes:          nodes,
		Daughterboards: ceil(nodes, NodesPerDaughterboard),
		Motherboards:   ceil(nodes, NodesPerMotherboard),
		Crates:         ceil(nodes, NodesPerCrate),
		Racks:          racks,
		FootprintSqFt:  float64(racks) * RackFootprintSqFt,
	}
	p.PowerWatts = float64(p.Daughterboards)*WattsPerDaughterboard + float64(racks)*RackOverheadWatts
	// Peak: 2 flops/cycle/node.
	p.PeakTeraflops = 2 * float64(clock) * float64(nodes) / 1e12
	return p
}

func (p Packaging) String() string {
	return fmt.Sprintf("%d nodes: %d daughterboards, %d motherboards, %d crates, %d racks; %.1f kW, %.0f ft^2, %.2f Tflops peak",
		p.Nodes, p.Daughterboards, p.Motherboards, p.Crates, p.Racks,
		p.PowerWatts/1000, p.FootprintSqFt, p.PeakTeraflops)
}

// MotherboardShape returns the 2^6 hypercube of Figure 4.
func MotherboardShape() geom.Shape { return geom.MakeShape(2, 2, 2, 2, 2, 2) }

// Machine1024Shape is the assembled 1024-node machine of §4:
// 8 x 4 x 4 x 2 x 2 x 2.
func Machine1024Shape() geom.Shape { return geom.MakeShape(8, 4, 4, 2, 2, 2) }

// Machine4096Shape is a natural 4096-node shape (4 racks).
func Machine4096Shape() geom.Shape { return geom.MakeShape(8, 8, 4, 4, 2, 2) }

// Machine12288Shape is a 12,288-node production machine (12 racks):
// 12288 = 8 x 8 x 8 x 4 x 3 x 2... the machines were assembled from
// 1024-node racks; we use 16 x 8 x 8 x 4 x 3 with one odd extent carried
// by the rack dimension. For simulation purposes any factorization with
// the right volume serves; this one keeps five dimensions even so all
// folds close.
func Machine12288Shape() geom.Shape { return geom.MakeShape(16, 8, 8, 4, 3, 1) }

// GuessShape factors n nodes into a six-dimensional torus with extents
// as equal as possible (powers of two preferred), for experiment sweeps.
func GuessShape(n int) geom.Shape {
	if n < 1 {
		panic("machine: invalid node count")
	}
	var dims [geom.MaxDim]int
	for i := range dims {
		dims[i] = 1
	}
	// Peel factors from largest prime down, assigning to the smallest
	// dimension.
	rem := n
	for f := 2; rem > 1; {
		if rem%f == 0 {
			smallest := 0
			for d := 1; d < geom.MaxDim; d++ {
				if dims[d] < dims[smallest] {
					smallest = d
				}
			}
			dims[smallest] *= f
			rem /= f
		} else {
			f++
			if f*f > rem {
				f = rem
			}
		}
	}
	// Sort descending for a conventional presentation.
	for i := 0; i < geom.MaxDim; i++ {
		for j := i + 1; j < geom.MaxDim; j++ {
			if dims[j] > dims[i] {
				dims[i], dims[j] = dims[j], dims[i]
			}
		}
	}
	return geom.MakeShape(dims[:]...)
}

// SqrtNodes is a helper for quasi-square process grids.
func SqrtNodes(n int) int { return int(math.Round(math.Sqrt(float64(n)))) }
