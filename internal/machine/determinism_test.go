package machine

import (
	"hash/fnv"
	"testing"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/hssl"
	"qcdoc/internal/node"
	"qcdoc/internal/qmp"
	"qcdoc/internal/scu"
)

// traceRun builds a machine, attaches an event-order tracer, and runs a
// mixed-tier workload: halo exchanges on the coroutine tier riding the
// continuation-tier SCU link machines, a doubled global sum, and a
// partition interrupt with its sampling-clock ticks. It returns a digest
// of the full event order and a digest of every link's final checksum.
// mutate, if non-nil, runs after boot — e.g. to install fault injectors.
func traceRun(t *testing.T, shape geom.Shape, mutate func(*Machine)) (eventDigest, linkDigest, executed uint64, end event.Time) {
	t.Helper()
	eng := event.New()
	h := fnv.New64a()
	var buf [8]byte
	eng.SetTracer(func(at event.Time) {
		for i := range buf {
			buf[i] = byte(uint64(at) >> (8 * i))
		}
		h.Write(buf[:])
	})
	m := Build(eng, DefaultConfig(shape))
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	defer eng.Shutdown()
	if mutate != nil {
		mutate(m)
	}
	fold := geom.IdentityFold(shape)
	m.Nodes[1].SCU.RaisePartIRQ(0x04)
	err := m.RunSPMD("trace", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			n := ctx.N
			sendAddr := n.AllocWords(16)
			recvAddr := n.AllocWords(16)
			for i := 0; i < 16; i++ {
				n.Mem.WriteWord(sendAddr+8*uint64(i), uint64(rank)<<32|uint64(i))
			}
			rt, err := n.SCU.StartRecv(geom.Link{Dim: 0, Dir: geom.Bwd}, scu.Contiguous(recvAddr, 16))
			if err != nil {
				panic(err)
			}
			st, err := n.SCU.StartSend(geom.Link{Dim: 0, Dir: geom.Fwd}, scu.Contiguous(sendAddr, 16))
			if err != nil {
				panic(err)
			}
			st.Wait(ctx.P)
			rt.Wait(ctx.P)
			c := qmp.New(ctx, fold)
			c.GlobalSumFloat64Doubled(ctx.P, float64(rank)+0.5)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
	lh := fnv.New64a()
	for _, n := range m.Nodes {
		for _, l := range geom.AllLinks() {
			tx, rx := n.SCU.Checksums(l)
			for _, w := range []uint64{tx.Sum(), tx.Count(), rx.Sum(), rx.Count()} {
				for i := range buf {
					buf[i] = byte(w >> (8 * i))
				}
				lh.Write(buf[:])
			}
		}
	}
	return h.Sum64(), lh.Sum64(), eng.Executed(), eng.Now()
}

// TestDeterministicReplay is the scheduler-refactor regression gate:
// the same machine run twice must execute the identical event sequence —
// same count, same time-ordered digest — and leave identical link
// checksums, regardless of which tier each process runs on. A divergence
// here means intra-timestamp event ordering changed, which would silently
// shift every simulated-time result in the paper's experiments.
func TestDeterministicReplay(t *testing.T) {
	shape := geom.MakeShape(4, 2, 2)
	e1, l1, n1, t1 := traceRun(t, shape, nil)
	e2, l2, n2, t2 := traceRun(t, shape, nil)
	if n1 != n2 {
		t.Fatalf("event counts differ: %d vs %d", n1, n2)
	}
	if e1 != e2 {
		t.Fatalf("event-order digests differ: %#x vs %#x", e1, e2)
	}
	if l1 != l2 {
		t.Fatalf("link checksum digests differ: %#x vs %#x", l1, l2)
	}
	if t1 != t2 {
		t.Fatalf("final times differ: %v vs %v", t1, t2)
	}
	if n1 == 0 {
		t.Fatal("tracer saw no events")
	}
}

// TestDeterministicReplayWithFaults re-runs the replay gate with a
// single-bit error injector on one wire (the E12 scenario: parity
// detect, nak, hardware rewind-resend). The recovery machinery — fault
// hook mutating the value frame in place, nak/rewind, ack-timeout
// timers — must be exactly as deterministic as the clean path: same
// event sequence, same link checksums, run after run.
func TestDeterministicReplayWithFaults(t *testing.T) {
	shape := geom.MakeShape(4, 2, 2)
	var mm *Machine
	inject := func(m *Machine) {
		mm = m
		m.Wire(0, geom.Link{Dim: 0, Dir: geom.Fwd}).SetFault(hssl.FlipBitEvery(7))
	}
	e1, l1, n1, t1 := traceRun(t, shape, inject)

	// The injector must actually have exercised the recovery path.
	var stats scu.Stats
	for _, n := range mm.Nodes {
		s := n.SCU.Stats()
		stats.Resends += s.Resends
		stats.ParityErrors += s.ParityErrors
		stats.HeaderErrors += s.HeaderErrors
	}
	if stats.ParityErrors+stats.HeaderErrors == 0 {
		t.Fatal("fault injector corrupted nothing")
	}
	if stats.Resends == 0 {
		t.Fatal("no hardware resends despite injected errors")
	}

	e2, l2, n2, t2 := traceRun(t, shape, inject)
	if n1 != n2 {
		t.Fatalf("event counts differ: %d vs %d", n1, n2)
	}
	if e1 != e2 {
		t.Fatalf("event-order digests differ: %#x vs %#x", e1, e2)
	}
	if l1 != l2 {
		t.Fatalf("link checksum digests differ: %#x vs %#x", l1, l2)
	}
	if t1 != t2 {
		t.Fatalf("final times differ: %v vs %v", t1, t2)
	}
}
