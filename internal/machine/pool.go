package machine

import (
	"sync"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/hssl"
)

// Pool recycles the expensive per-machine allocations across machine
// lifetimes so a fleet building and tearing down hundreds of machines
// doesn't thrash the allocator: event-engine heap storage (the timer
// arena), HSSL in-flight frame rings, and — shared rather than
// recycled — the shard plan for a given topology, which is a pure
// function of (Shape, Shards) and therefore immutable and safe for any
// number of concurrent machines to read.
//
// A Pool is safe for concurrent use; a nil *Pool disables pooling
// everywhere it is accepted (every method no-ops), so single-machine
// callers need not care. The pool never holds live references:
// Storage is reference-cleared by event.Release, and frame rings are
// pure values (DESIGN.md §14).
type Pool struct {
	mu       sync.Mutex
	storages []event.Storage
	rings    [][]hssl.Frame
	plans    map[planKey][]int
	stats    PoolStats
}

// planKey identifies a shard plan: the plan depends only on topology
// and requested shard count, never on Workers or host cores.
type planKey struct {
	shape  geom.Shape
	shards int
}

// PoolStats counts pool traffic, for hygiene tests and the fleet
// driver's summary line.
type PoolStats struct {
	// StorageReused / StorageFresh count NewEngine calls served from the
	// free list vs. built cold.
	StorageReused, StorageFresh int
	// RingsReused / RingsFresh count wires built with a recycled
	// in-flight ring vs. starting empty.
	RingsReused, RingsFresh int
	// PlanHits / PlanMisses count shard-plan cache lookups.
	PlanHits, PlanMisses int
	// StorageIdle / RingsIdle are the current free-list depths.
	StorageIdle, RingsIdle int
	// PendingEvents sums the still-queued events across idle storages.
	// Always zero — Release clears every item — and asserted so by the
	// lifecycle-hygiene tests: a nonzero value means a dead machine's
	// timers or callbacks leaked into the pool.
	PendingEvents int
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{plans: make(map[planKey][]int)}
}

// NewEngine returns a fresh event engine, reusing pooled heap storage
// when available. With a nil pool it is event.New.
func (p *Pool) NewEngine() *event.Engine {
	if p == nil {
		return event.New()
	}
	p.mu.Lock()
	var st event.Storage
	if n := len(p.storages); n > 0 {
		st = p.storages[n-1]
		p.storages[n-1] = event.Storage{}
		p.storages = p.storages[:n-1]
		p.stats.StorageReused++
	} else {
		p.stats.StorageFresh++
	}
	p.mu.Unlock()
	return event.NewWith(st)
}

// Reclaim takes back a finished machine's recyclable storage: the
// engine's heap arrays and every wire's in-flight ring. The engine must
// already be shut down, and neither it nor the machine may be used
// afterwards. Shard engines built by Clusterize keep their storage (the
// cluster owns them); only the host engine's arrays are pooled. Nil
// pool, engine, or machine are all no-ops — except that the machine's
// telemetry registry is always cleared, pool or no pool, so teardown
// never leaves emit closures of a dead machine registered anywhere.
func (p *Pool) Reclaim(eng *event.Engine, m *Machine) {
	if m != nil && m.Reg != nil {
		m.Reg.Clear()
	}
	if p == nil {
		return
	}
	var st event.Storage
	if eng != nil {
		st = eng.Release()
	}
	var rings [][]hssl.Frame
	if m != nil {
		for _, ws := range m.wires {
			for _, w := range ws {
				if r := w.ReleaseRing(); cap(r) > 0 {
					rings = append(rings, r)
				}
			}
		}
	}
	p.mu.Lock()
	if st.Cap() > 0 {
		p.storages = append(p.storages, st)
	}
	p.rings = append(p.rings, rings...)
	p.mu.Unlock()
}

// ring hands out a recycled frame ring, or nil when the pool is empty
// or nil.
func (p *Pool) ring() []hssl.Frame {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.rings); n > 0 {
		r := p.rings[n-1]
		p.rings[n-1] = nil
		p.rings = p.rings[:n-1]
		p.stats.RingsReused++
		return r
	}
	p.stats.RingsFresh++
	return nil
}

// shardPlan returns the rank→shard map for a topology, shared and
// immutable across every machine with the same (Shape, Shards). Callers
// must treat the returned slice as read-only. With a nil pool the plan
// is computed fresh.
func (p *Pool) shardPlan(shape geom.Shape, shards, v, per int) []int {
	if p == nil {
		return computeShardPlan(v, per)
	}
	key := planKey{shape: shape, shards: shards}
	p.mu.Lock()
	defer p.mu.Unlock()
	if plan, ok := p.plans[key]; ok {
		p.stats.PlanHits++
		return plan
	}
	p.stats.PlanMisses++
	plan := computeShardPlan(v, per)
	p.plans[key] = plan
	return plan
}

func computeShardPlan(v, per int) []int {
	plan := make([]int, v)
	for r := 0; r < v; r++ {
		plan[r] = r / per
	}
	return plan
}

// Stats returns a snapshot of pool traffic.
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.StorageIdle = len(p.storages)
	s.RingsIdle = len(p.rings)
	for _, st := range p.storages {
		s.PendingEvents += st.Pending()
	}
	return s
}
