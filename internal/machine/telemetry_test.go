package machine

import (
	"testing"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/node"
	"qcdoc/internal/ppc440"
	"qcdoc/internal/qmp"
)

// TestTelemetryZeroPerturbation is the load-bearing contract of the
// observability layer: enabling every counter and attaching a flight
// recorder must leave the simulated event stream bit-identical — same
// event count, same time-ordered digest, same link checksums, same
// final time — as a run with telemetry off.
func TestTelemetryZeroPerturbation(t *testing.T) {
	shape := geom.MakeShape(4, 2, 2)
	e1, l1, n1, t1 := traceRun(t, shape, nil)
	e2, l2, n2, t2 := traceRun(t, shape, func(m *Machine) {
		m.EnableTelemetry()
		m.Eng.SetRecorder(event.NewRecorder(256))
	})
	if n1 != n2 {
		t.Fatalf("telemetry changed the event count: %d vs %d", n1, n2)
	}
	if e1 != e2 {
		t.Fatalf("telemetry changed the event order: %#x vs %#x", e1, e2)
	}
	if l1 != l2 {
		t.Fatalf("telemetry changed link checksums: %#x vs %#x", l1, l2)
	}
	if t1 != t2 {
		t.Fatalf("telemetry changed the final time: %v vs %v", t1, t2)
	}
}

func TestMachineTelemetrySnapshot(t *testing.T) {
	shape := geom.MakeShape(2, 2)
	eng := event.New()
	defer eng.Shutdown()
	m := Build(eng, DefaultConfig(shape))
	m.EnableTelemetry()
	if !m.TelemetryEnabled() {
		t.Fatal("EnableTelemetry did not enable")
	}
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	fold := geom.IdentityFold(shape)
	kern := ppc440.KernelCost{Name: "wilson", Flops: 4000, FPUOps: 2000, LoadBytes: 256, Streams: 1}
	err := m.RunSPMD("telem", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			ctx.N.Compute(ctx.P, kern)
			c := qmp.New(ctx, fold)
			c.GlobalSumFloat64(ctx.P, float64(rank))
			c.Barrier(ctx.P)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	tel := m.Telemetry()
	if tel.Nodes != 4 || tel.Shape != shape.String() {
		t.Fatalf("identity: %d nodes shape %q", tel.Nodes, tel.Shape)
	}
	if tel.At != eng.Now() || tel.Events != eng.Executed() || tel.Events == 0 {
		t.Fatalf("clock: at %v events %d", tel.At, tel.Events)
	}
	if tel.WiresTrained != 4*geom.NumLinks {
		t.Fatalf("wires trained %d", tel.WiresTrained)
	}
	if tel.Aggregate != m.Stats() || tel.Aggregate.WordsSent == 0 {
		t.Fatalf("aggregate %+v", tel.Aggregate)
	}
	if tel.Wires.Frames == 0 || tel.Wires.Bits == 0 {
		t.Fatalf("wire stats %+v", tel.Wires)
	}
	if len(tel.Links) != 4*geom.NumLinks {
		t.Fatalf("%d link entries", len(tel.Links))
	}
	// The link list agrees with the per-link SCU counters, and summing
	// it reproduces the aggregate — one source of truth.
	var sum uint64
	for i, lt := range tel.Links {
		sum += lt.Stats.WordsSent
		l := geom.AllLinks()[i%geom.NumLinks]
		if lt.Link != l.String() || lt.Stats != m.Nodes[lt.Rank].SCU.LinkStats(l) {
			t.Fatalf("link entry %d (%s) disagrees with SCU", i, lt.Link)
		}
	}
	if sum != tel.Aggregate.WordsSent {
		t.Fatalf("links sum to %d, aggregate %d", sum, tel.Aggregate.WordsSent)
	}
	// Registry counters carry per-node and machine-wide keys.
	if tel.Counters["machine/scu/words_sent"] != tel.Aggregate.WordsSent {
		t.Fatalf("machine counter %d", tel.Counters["machine/scu/words_sent"])
	}
	n0 := m.Nodes[0].SCU.Stats()
	if tel.Counters["node0/scu/words_sent"] != n0.WordsSent {
		t.Fatalf("node0 counter %d vs %d", tel.Counters["node0/scu/words_sent"], n0.WordsSent)
	}
	if tel.Counters["node0/cpu/kernels"] != 1 {
		t.Fatalf("node0 kernels = %d", tel.Counters["node0/cpu/kernels"])
	}
	// Barrier rides a global sum, so both tick.
	if tel.Counters["node0/cpu/global_sums"] != 2 || tel.Counters["node0/cpu/barriers"] != 1 {
		t.Fatalf("collectives: sums %d barriers %d",
			tel.Counters["node0/cpu/global_sums"], tel.Counters["node0/cpu/barriers"])
	}
	// Derived gauges: the machine computed 4 x 4000 flops in tel.At.
	if g := tel.Gauges["machine/sustained_gflops"]; g <= 0 {
		t.Fatalf("sustained gflops %g", g)
	}
	wantFlops := 4 * 4000.0 / (float64(tel.At) / float64(event.Second))
	if g := tel.Gauges["machine/sustained_gflops"] * 1e9; g < wantFlops*0.999 || g > wantFlops*1.001 {
		t.Fatalf("sustained %g, want %g", g, wantFlops)
	}
	if u := tel.Gauges["machine/link_utilization"]; u <= 0 || u > 1 {
		t.Fatalf("link utilization %g", u)
	}
	if tel.Gauges["machine/peak_gflops"] != tel.Packaging.PeakTeraflops*1e3 {
		t.Fatal("peak gauge disagrees with packaging")
	}
	eff := tel.Gauges["machine/efficiency"]
	if want := tel.Gauges["machine/sustained_gflops"] / tel.Gauges["machine/peak_gflops"]; eff < want*0.999 || eff > want*1.001 {
		t.Fatalf("efficiency %g, want %g", eff, want)
	}
	// Latency distributions (DESIGN.md §15): the global sum above must
	// have recorded a round trip on every node, and the per-link in-flight
	// distribution must cover every acked word.
	gs := tel.Histograms["machine/gsum_rtt_ps"]
	if gs.Count != 2*4 { // 2 collectives (sum + barrier) x 4 nodes
		t.Fatalf("gsum_rtt_ps count %d, want 8", gs.Count)
	}
	if gs.P50 == 0 || gs.P99 < gs.P50 || gs.Max < gs.P99 || gs.Max > uint64(tel.At) {
		t.Fatalf("gsum_rtt_ps percentiles inconsistent: %+v", gs)
	}
	fl := tel.Histograms["machine/link_in_flight_ps"]
	if fl.Count == 0 || fl.P50 == 0 {
		t.Fatalf("link_in_flight_ps %+v", fl)
	}
}

// TestTelemetryDisabledSnapshotIsEmpty pins the pull-based design: a
// machine that never enabled telemetry still answers Telemetry() — the
// always-on SCU/wire counters are there — but the registry contributes
// nothing and the per-node CPU counters stay nil.
func TestTelemetryDisabledSnapshotIsEmpty(t *testing.T) {
	eng := event.New()
	defer eng.Shutdown()
	m := Build(eng, DefaultConfig(geom.MakeShape(2)))
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	tel := m.Telemetry()
	if len(tel.Counters) != 0 || len(tel.Gauges) != 0 {
		t.Fatalf("disabled registry leaked: %d counters %d gauges", len(tel.Counters), len(tel.Gauges))
	}
	if len(tel.Links) != 2*geom.NumLinks {
		t.Fatalf("%d link entries", len(tel.Links))
	}
	for _, n := range m.Nodes {
		if n.Counters() != nil {
			t.Fatal("node counters enabled without EnableTelemetry")
		}
	}
}
