package machine

import (
	"testing"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/hssl"
)

// buildAndRun builds a machine on a pooled engine, boots it, and runs
// the event stream dry, returning both for reclamation.
func buildAndRun(t *testing.T, p *Pool, shape geom.Shape) (*event.Engine, *Machine) {
	t.Helper()
	eng := p.NewEngine()
	cfg := DefaultConfig(shape)
	cfg.Pool = p
	m := Build(eng, cfg)
	if err := m.Boot(); err != nil {
		t.Fatalf("boot: %v", err)
	}
	return eng, m
}

// TestPoolRecyclesStorageAndRings proves the reuse cycle: a second
// machine build is served from the first machine's reclaimed storage,
// and reclaimed storage is empty — no event, timer, or frame of the
// dead machine survives into the pool (the no-leaked-timers half of
// the lifecycle-hygiene requirement; fleet_test covers goroutines).
// Frame rings only grow under real traffic (the fast Boot path sends
// no data frames), so the free list is seeded directly and the rings
// are tracked through adopt → reclaim.
func TestPoolRecyclesStorageAndRings(t *testing.T) {
	p := NewPool()
	p.rings = [][]hssl.Frame{make([]hssl.Frame, 8), make([]hssl.Frame, 4)}
	shape := geom.MakeShape(2, 2)

	eng, m := buildAndRun(t, p, shape)
	st := p.Stats()
	if st.RingsReused != 2 {
		t.Fatalf("build adopted %d recycled rings, want 2", st.RingsReused)
	}
	eng.Shutdown()
	p.Reclaim(eng, m)

	st = p.Stats()
	if st.StorageIdle != 1 {
		t.Fatalf("after reclaim: %d idle storages, want 1", st.StorageIdle)
	}
	if st.RingsIdle != 2 {
		t.Fatalf("after reclaim: %d idle rings, want the 2 adopted ones back", st.RingsIdle)
	}
	for _, s := range p.storages {
		if s.Pending() != 0 {
			t.Fatalf("reclaimed storage still holds %d events — timers leaked past Shutdown", s.Pending())
		}
		if s.Cap() == 0 {
			t.Fatalf("reclaimed storage has no capacity — pooling it is pointless")
		}
	}

	eng2, m2 := buildAndRun(t, p, shape)
	st = p.Stats()
	if st.StorageReused != 1 {
		t.Fatalf("second build: StorageReused = %d, want 1", st.StorageReused)
	}
	if st.RingsReused != 4 {
		t.Fatalf("second build: RingsReused = %d, want 4 (2 rings recycled twice)", st.RingsReused)
	}
	eng2.Shutdown()
	p.Reclaim(eng2, m2)
}

// TestPoolSharesShardPlans proves machines of identical topology share
// one immutable shard plan (same backing array), while different
// topologies get their own.
func TestPoolSharesShardPlans(t *testing.T) {
	p := NewPool()
	build := func(shape geom.Shape) *Machine {
		eng := p.NewEngine()
		cfg := DefaultConfig(shape)
		cfg.Shards = ShardAuto
		cfg.Workers = 1
		cfg.Pool = p
		return Build(eng, cfg)
	}
	a := build(geom.MakeShape(2, 2, 2))
	b := build(geom.MakeShape(2, 2, 2))
	c := build(geom.MakeShape(2, 2, 2, 2))
	if &a.shardOf[0] != &b.shardOf[0] {
		t.Fatalf("identical topologies did not share a shard plan")
	}
	if len(c.shardOf) == len(a.shardOf) && &c.shardOf[0] == &a.shardOf[0] {
		t.Fatalf("different topologies shared a shard plan")
	}
	st := p.Stats()
	if st.PlanHits != 1 || st.PlanMisses != 2 {
		t.Fatalf("plan cache traffic = %d hits / %d misses, want 1/2", st.PlanHits, st.PlanMisses)
	}
	for _, m := range []*Machine{a, b, c} {
		m.Eng.Shutdown()
	}
}

// TestNilPoolIsInert proves a nil *Pool degrades to the unpooled path
// everywhere, so single-machine callers never construct one.
func TestNilPoolIsInert(t *testing.T) {
	var p *Pool
	eng := p.NewEngine()
	if eng == nil {
		t.Fatal("nil pool NewEngine returned nil engine")
	}
	cfg := DefaultConfig(geom.MakeShape(2))
	m := Build(eng, cfg)
	eng.Shutdown()
	p.Reclaim(eng, m) // must not panic
	if st := p.Stats(); st != (PoolStats{}) {
		t.Fatalf("nil pool reported stats %+v", st)
	}
}
