package machine

import (
	"runtime"
	"testing"
	"time"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/node"
	"qcdoc/internal/qmp"
)

// TestMachineGoroutineHygiene checks the refactor's structural claim: a
// built, booted machine runs its link units, wire delivery, clocks and
// interrupt flood entirely on the continuation tier, so the only process
// goroutines alive during a job are the application threads — and after
// RunSPMD returns and Shutdown runs, none remain.
func TestMachineGoroutineHygiene(t *testing.T) {
	before := runtime.NumGoroutine()
	eng := event.New()
	m := Build(eng, DefaultConfig(geom.MakeShape(4, 2)))
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	// Boot spawned nothing: every SCU daemon is a flat state machine now.
	if got := eng.LiveProcs(); got != 0 {
		t.Fatalf("%d process goroutines alive after boot, want 0", got)
	}
	fold := geom.IdentityFold(m.Cfg.Shape)
	err := m.RunSPMD("sum", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			qmp.New(ctx, fold).GlobalSumFloat64(ctx.P, float64(rank))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Application procs ran to completion; nothing is parked.
	if got := eng.LiveProcs(); got != 0 {
		t.Fatalf("%d process goroutines alive after job, want 0", got)
	}
	eng.Shutdown()
	deadline := time.Now().Add(2 * time.Second)                          //qcdoclint:walltime-ok leak poll bounds host runtime, not simulated time
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) { //qcdoclint:walltime-ok leak poll bounds host runtime, not simulated time
		runtime.Gosched()
		time.Sleep(time.Millisecond) //qcdoclint:walltime-ok host-clock backoff between goroutine-count polls
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("goroutines: %d before build, %d after shutdown", before, got)
	}
}
