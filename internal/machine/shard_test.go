package machine

import (
	"bytes"
	"hash/fnv"
	"testing"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/node"
	"qcdoc/internal/qmp"
	"qcdoc/internal/scu"
)

// shardedTraceRun is traceRun on a sharded machine: one FNV tracer per
// shard (a shared tracer closure would race across workers), combined
// in shard order into one digest, plus the merged flight-recorder
// Chrome trace, which must be byte-identical at any worker count.
func shardedTraceRun(t *testing.T, shape geom.Shape, shards, workers int) (eventDigest, linkDigest uint64, end event.Time, trace string) {
	t.Helper()
	eng := event.New()
	cfg := DefaultConfig(shape)
	cfg.Shards = shards
	cfg.Workers = workers
	m := Build(eng, cfg)
	cl := m.Cluster()
	if cl == nil {
		t.Fatalf("config %+v built no cluster", cfg)
	}
	hashes := make([]interface{ Sum64() uint64 }, cl.NumShards())
	for i := 0; i < cl.NumShards(); i++ {
		h := fnv.New64a()
		hashes[i] = h
		var buf [8]byte
		cl.Shard(i).SetTracer(func(at event.Time) {
			for j := range buf {
				buf[j] = byte(uint64(at) >> (8 * j))
			}
			h.Write(buf[:])
		})
	}
	rec := event.NewRecorder(1 << 14)
	eng.SetRecorder(rec)
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	defer eng.Shutdown()
	fold := geom.IdentityFold(shape)
	m.Nodes[1].SCU.RaisePartIRQ(0x04)
	err := m.RunSPMD("trace", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			n := ctx.N
			sendAddr := n.AllocWords(16)
			recvAddr := n.AllocWords(16)
			for i := 0; i < 16; i++ {
				n.Mem.WriteWord(sendAddr+8*uint64(i), uint64(rank)<<32|uint64(i))
			}
			rt, err := n.SCU.StartRecv(geom.Link{Dim: 0, Dir: geom.Bwd}, scu.Contiguous(recvAddr, 16))
			if err != nil {
				panic(err)
			}
			st, err := n.SCU.StartSend(geom.Link{Dim: 0, Dir: geom.Fwd}, scu.Contiguous(sendAddr, 16))
			if err != nil {
				panic(err)
			}
			st.Wait(ctx.P)
			rt.Wait(ctx.P)
			c := qmp.New(ctx, fold)
			c.GlobalSumFloat64Doubled(ctx.P, float64(rank)+0.5)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
	eh := fnv.New64a()
	var buf [8]byte
	for _, h := range hashes {
		w := h.Sum64()
		for i := range buf {
			buf[i] = byte(w >> (8 * i))
		}
		eh.Write(buf[:])
	}
	lh := fnv.New64a()
	for _, n := range m.Nodes {
		for _, l := range geom.AllLinks() {
			tx, rx := n.SCU.Checksums(l)
			for _, w := range []uint64{tx.Sum(), tx.Count(), rx.Sum(), rx.Count()} {
				for i := range buf {
					buf[i] = byte(w >> (8 * i))
				}
				lh.Write(buf[:])
			}
		}
	}
	var tb bytes.Buffer
	if err := rec.WriteChromeTrace(&tb, 0); err != nil {
		t.Fatal(err)
	}
	return eh.Sum64(), lh.Sum64(), eng.Now(), tb.String()
}

// TestShardedDeterministicReplay is the sharded analogue of
// TestDeterministicReplay, and more: the per-shard event streams, link
// checksums, final clock, and the merged flight-recorder trace must be
// identical across runs AND across worker counts 1, 2, 4, 8 — workers
// only choose which OS thread executes a shard's window, never what the
// window contains.
func TestShardedDeterministicReplay(t *testing.T) {
	shape := geom.MakeShape(4, 2, 2)
	e0, l0, t0, tr0 := shardedTraceRun(t, shape, ShardAuto, 1)
	if tr0 == "" {
		t.Fatal("recorder produced no trace")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		e, l, tend, tr := shardedTraceRun(t, shape, ShardAuto, workers)
		if e != e0 {
			t.Fatalf("workers=%d: event digest %#x, want %#x", workers, e, e0)
		}
		if l != l0 {
			t.Fatalf("workers=%d: link digest %#x, want %#x", workers, l, l0)
		}
		if tend != t0 {
			t.Fatalf("workers=%d: final time %v, want %v", workers, tend, t0)
		}
		if tr != tr0 {
			t.Fatalf("workers=%d: merged recorder trace differs from workers=1", workers)
		}
	}
}

// TestShardPlanIsTopologyOnly pins the structural invariant behind
// worker-count-invariant digests: the shard plan depends only on the
// shape and the Shards setting, never on Workers.
func TestShardPlanIsTopologyOnly(t *testing.T) {
	shape := geom.MakeShape(4, 2, 2)
	for _, workers := range []int{1, 3, 8} {
		cfg := DefaultConfig(shape)
		cfg.Shards = ShardAuto
		cfg.Workers = workers
		m := Build(event.New(), cfg)
		defer m.Eng.Shutdown()
		if got := m.Cluster().NumShards(); got != 8 {
			t.Fatalf("workers=%d: %d shards, want 8 (one per daughterboard)", workers, got)
		}
		for r := range m.Nodes {
			if want := r / NodesPerDaughterboard; m.shardOf[r] != want {
				t.Fatalf("rank %d on shard %d, want %d", r, m.shardOf[r], want)
			}
		}
	}
	// Explicit shard counts round to daughterboard blocks.
	cfg := DefaultConfig(shape)
	cfg.Shards = 3
	m := Build(event.New(), cfg)
	defer m.Eng.Shutdown()
	if got := m.Cluster().NumShards(); got != 3 {
		t.Fatalf("Shards=3: got %d shards", got)
	}
}
