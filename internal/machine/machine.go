// Package machine assembles QCDOC nodes into a complete computer: the
// six-dimensional torus of HSSL wires (Figure 2's red mesh), the slow
// global clock that paces partition-interrupt sampling, software
// partitioning and dimension folding (§3.1), the packaging hierarchy of
// §2.4 (two nodes per daughterboard, 64-node motherboards as 2^6
// hypercubes, eight motherboards per crate, two crates per water-cooled
// rack), and the end-of-run link-checksum audit of §2.2.
package machine

import (
	"fmt"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/hssl"
	"qcdoc/internal/node"
	"qcdoc/internal/scu"
	"qcdoc/internal/telemetry"
)

// Config describes a machine build.
type Config struct {
	// Shape is the six-dimensional torus, e.g. 8x4x4x2x2x2 for the
	// 1024-node machine of §4.
	Shape geom.Shape
	// Clock is the processor/link clock (§4 ran 360, 420, 450 MHz
	// machines against a 500 MHz target).
	Clock event.Hz
	// SCU carries the serial-communications-unit parameters.
	SCU scu.Config
	// DDRBytes per node (0 = default 128 MB).
	DDRBytes int
	// WireProp is the node-to-node time of flight.
	WireProp event.Time
}

// DefaultConfig returns the paper's target configuration for a given
// shape.
func DefaultConfig(shape geom.Shape) Config {
	return Config{
		Shape:    shape,
		Clock:    500 * event.MHz,
		SCU:      scu.DefaultConfig(),
		WireProp: hssl.DefaultPropagation,
	}
}

// Machine is a built QCDOC.
type Machine struct {
	Eng   *event.Engine
	Cfg   Config
	Nodes []*node.Node

	// Reg is the telemetry registry every component's counters are
	// registered on at Build time; disabled until EnableTelemetry (see
	// telemetry.go).
	Reg *telemetry.Registry

	// wires[rank][linkIndex] is the outbound wire of that node's link.
	wires [][]*hssl.Wire

	booted bool

	// Global clock state for partition-interrupt windows.
	windowPeriod event.Time
	clockArmed   bool
}

// Build constructs the machine: nodes, torus wiring, and SCU attachment.
// Nothing is powered yet; call Boot (or BootFast) next.
func Build(eng *event.Engine, cfg Config) *Machine {
	if !cfg.Shape.Valid() {
		panic(fmt.Sprintf("machine: invalid shape %v", cfg.Shape))
	}
	if cfg.Clock == 0 {
		cfg.Clock = 500 * event.MHz
	}
	if cfg.WireProp == 0 {
		cfg.WireProp = hssl.DefaultPropagation
	}
	m := &Machine{Eng: eng, Cfg: cfg}
	v := cfg.Shape.Volume()
	m.Nodes = make([]*node.Node, v)
	m.wires = make([][]*hssl.Wire, v)
	for r := 0; r < v; r++ {
		m.Nodes[r] = node.New(eng, r, cfg.Shape.CoordOf(r), cfg.Clock, cfg.SCU, cfg.DDRBytes)
		m.wires[r] = make([]*hssl.Wire, geom.NumLinks)
	}
	// One outbound wire per (node, link); the inbound wire of link l on
	// node n is the neighbour's outbound wire on the opposite link.
	for r := 0; r < v; r++ {
		c := cfg.Shape.CoordOf(r)
		for _, l := range geom.AllLinks() {
			name := fmt.Sprintf("w%d%v", r, l)
			m.wires[r][geom.LinkIndex(l)] = hssl.NewWire(eng, name, cfg.Clock, cfg.WireProp)
			_ = c
		}
	}
	for r := 0; r < v; r++ {
		c := cfg.Shape.CoordOf(r)
		for _, l := range geom.AllLinks() {
			nb := cfg.Shape.Rank(cfg.Shape.Neighbor(c, l.Dim, l.Dir))
			out := m.wires[r][geom.LinkIndex(l)]
			in := m.wires[nb][geom.LinkIndex(l.Opposite())]
			m.Nodes[r].SCU.AttachLink(l, out, in)
		}
	}
	// Window period: long enough for a partition interrupt to flood the
	// whole machine before sampling (§2.2) — diameter hops of a 2-byte
	// frame plus dispatch, with a 2x guard.
	hop := cfg.Clock.Cycles(16) + cfg.WireProp
	m.windowPeriod = 2 * event.Time(cfg.Shape.Diameter()+1) * hop
	if min := 25 * event.Nanosecond; m.windowPeriod < min {
		m.windowPeriod = min
	}
	// Arm the sampling clock whenever any SCU raises a partition
	// interrupt.
	for _, n := range m.Nodes {
		n.SCU.WindowArm = m.armClock
	}
	m.registerTelemetry()
	return m
}

// NumNodes returns the machine size.
func (m *Machine) NumNodes() int { return len(m.Nodes) }

// WindowPeriod is the partition-interrupt sampling window.
func (m *Machine) WindowPeriod() event.Time { return m.windowPeriod }

// Wire returns the outbound wire of a node's link (for fault injection
// and statistics in tests and experiments).
func (m *Machine) Wire(rank int, l geom.Link) *hssl.Wire {
	return m.wires[rank][geom.LinkIndex(l)]
}

// TrainLinks trains every HSSL link, all nodes in parallel with each
// node's links in sequence, as the hardware does when powered on and
// released from reset (§2.2). Each node's trainer is a continuation
// chain on the event engine — building a 1024-node machine spawns no
// goroutines. It runs the engine until training completes.
func (m *Machine) TrainLinks() error {
	for r := range m.Nodes {
		wires := m.wires[r]
		sm := m.Eng.NewStateMachine(fmt.Sprintf("train%d", r), "training")
		var next func(i int)
		next = func(i int) {
			if i == len(wires) {
				sm.Goto("trained")
				return
			}
			wires[i].TrainAsync(func() { next(i + 1) })
		}
		next(0)
	}
	if err := m.Eng.RunAll(); err != nil {
		return fmt.Errorf("machine: link training failed: %w", err)
	}
	return nil
}

// Boot is the fast bring-up used by benchmarks and most tests: train the
// links, then walk every node through the boot protocol directly. The
// packet-level protocol (JTAG load over Ethernet, run-kernel download,
// §2.3/§3.1) lives in internal/qdaemon; use qdaemon.Daemon.BootAll for
// the full path.
func (m *Machine) Boot() error {
	if err := m.TrainLinks(); err != nil {
		return err
	}
	for _, n := range m.Nodes {
		// Minimal stand-in for the JTAG code load.
		n.LoadBootWord(0, 0x60000000)
		if err := n.StartBootKernel(); err != nil {
			return err
		}
		if err := n.StartRunKernel(); err != nil {
			return err
		}
	}
	m.booted = true
	return nil
}

// MarkBooted records that the full boot protocol (driven externally by
// the qdaemon) has completed, enabling SPMD job launch.
func (m *Machine) MarkBooted() { m.booted = true }

// armClock schedules a partition-interrupt sampling tick if none is
// pending.
func (m *Machine) armClock() {
	if m.clockArmed {
		return
	}
	m.clockArmed = true
	m.Eng.After(m.windowPeriod, m.windowTick)
}

func (m *Machine) windowTick() {
	m.clockArmed = false
	again := false
	for _, n := range m.Nodes {
		n.SCU.WindowTick()
		if n.SCU.PartIRQPending() != n.SCU.PartIRQStatus() {
			again = true
		}
	}
	if again {
		m.armClock()
	}
}

// RunSPMD starts the same program on every node (the machine's natural
// mode: §1's trivial decomposition) and runs the simulation until all
// application threads finish. It returns the first application error.
func (m *Machine) RunSPMD(name string, prog func(rank int) node.Program) error {
	if !m.booted {
		return fmt.Errorf("machine: not booted")
	}
	for r, n := range m.Nodes {
		if err := n.RunProgram(name, prog(r)); err != nil {
			return err
		}
	}
	if err := m.Eng.RunAll(); err != nil {
		return err
	}
	for _, n := range m.Nodes {
		done, err := n.AppDone()
		if !done {
			return fmt.Errorf("machine: %s did not finish", n.Name)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// VerifyChecksums performs the §2.2 end-of-calculation audit: for every
// link, the transmit-side checksum must equal the receive-side checksum
// kept by the neighbour. It returns the number of links checked.
func (m *Machine) VerifyChecksums() (int, error) {
	checked := 0
	for r, n := range m.Nodes {
		c := m.Cfg.Shape.CoordOf(r)
		for _, l := range geom.AllLinks() {
			nb := m.Cfg.Shape.Rank(m.Cfg.Shape.Neighbor(c, l.Dim, l.Dir))
			tx, _ := n.SCU.Checksums(l)
			_, rx := m.Nodes[nb].SCU.Checksums(l.Opposite())
			if !tx.Equal(&rx) {
				return checked, fmt.Errorf("machine: checksum mismatch %s link %v -> node %d: tx %d words %#x, rx %d words %#x",
					n.Name, l, nb, tx.Count(), tx.Sum(), rx.Count(), rx.Sum())
			}
			checked++
		}
	}
	return checked, nil
}

// Stats sums SCU counters over all nodes, via the counter table that is
// the single definition of the field set (scu.statsFields).
func (m *Machine) Stats() scu.Stats {
	var total scu.Stats
	for _, n := range m.Nodes {
		s := n.SCU.Stats()
		total.Add(&s)
	}
	return total
}
