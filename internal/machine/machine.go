// Package machine assembles QCDOC nodes into a complete computer: the
// six-dimensional torus of HSSL wires (Figure 2's red mesh), the slow
// global clock that paces partition-interrupt sampling, software
// partitioning and dimension folding (§3.1), the packaging hierarchy of
// §2.4 (two nodes per daughterboard, 64-node motherboards as 2^6
// hypercubes, eight motherboards per crate, two crates per water-cooled
// rack), and the end-of-run link-checksum audit of §2.2.
package machine

import (
	"fmt"
	"runtime"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/hssl"
	"qcdoc/internal/node"
	"qcdoc/internal/scu"
	"qcdoc/internal/telemetry"
)

// Config describes a machine build.
type Config struct {
	// Shape is the six-dimensional torus, e.g. 8x4x4x2x2x2 for the
	// 1024-node machine of §4.
	Shape geom.Shape
	// Clock is the processor/link clock (§4 ran 360, 420, 450 MHz
	// machines against a 500 MHz target).
	Clock event.Hz
	// SCU carries the serial-communications-unit parameters.
	SCU scu.Config
	// DDRBytes per node (0 = default 128 MB).
	DDRBytes int
	// WireProp is the node-to-node time of flight.
	WireProp event.Time
	// Shards selects event-engine sharding for conservative parallel
	// simulation (DESIGN.md §13): 0 builds the classic single-engine
	// machine; ShardAuto partitions along the packaging hierarchy
	// (daughterboards below a motherboard's worth of nodes, whole
	// motherboards at scale); n > 0 asks for about n shards, rounded to
	// whole daughterboards. The shard plan is a pure function of Shape
	// and Shards — never of Workers — which is what makes outcome
	// digests worker-count-invariant.
	Shards int
	// Workers bounds how many shards execute concurrently (0 = one per
	// available CPU). Sharded builds need a fresh engine (no events run
	// yet); Build panics otherwise.
	Workers int
	// Pool, when set, recycles frame rings across machine builds and
	// shares the shard plan between machines of identical topology
	// (fleet substrate, DESIGN.md §14). Nil disables pooling.
	Pool *Pool
}

// ShardAuto selects the packaging-derived shard plan.
const ShardAuto = -1

// DefaultConfig returns the paper's target configuration for a given
// shape.
func DefaultConfig(shape geom.Shape) Config {
	return Config{
		Shape:    shape,
		Clock:    500 * event.MHz,
		SCU:      scu.DefaultConfig(),
		WireProp: hssl.DefaultPropagation,
	}
}

// Machine is a built QCDOC.
type Machine struct {
	Eng   *event.Engine
	Cfg   Config
	Nodes []*node.Node

	// Reg is the telemetry registry every component's counters are
	// registered on at Build time; disabled until EnableTelemetry (see
	// telemetry.go).
	Reg *telemetry.Registry

	// wires[rank][linkIndex] is the outbound wire of that node's link.
	wires [][]*hssl.Wire

	booted bool

	// Global clock state for partition-interrupt windows.
	windowPeriod event.Time
	clockArmed   bool

	// Sharding state (nil/empty on a single-engine build). shardOf maps
	// a node rank to its shard; armAt holds per-rank sampling-clock arm
	// requests (each written only by the rank's own shard, harvested at
	// the window barrier).
	cluster *event.Cluster
	shardOf []int
	armAt   []event.Time
}

// Build constructs the machine: nodes, torus wiring, and SCU attachment.
// Nothing is powered yet; call Boot (or BootFast) next.
func Build(eng *event.Engine, cfg Config) *Machine {
	if !cfg.Shape.Valid() {
		panic(fmt.Sprintf("machine: invalid shape %v", cfg.Shape))
	}
	if cfg.Clock == 0 {
		cfg.Clock = 500 * event.MHz
	}
	if cfg.WireProp == 0 {
		cfg.WireProp = hssl.DefaultPropagation
	}
	m := &Machine{Eng: eng, Cfg: cfg}
	v := cfg.Shape.Volume()
	m.buildCluster(eng, cfg, v)
	m.Nodes = make([]*node.Node, v)
	m.wires = make([][]*hssl.Wire, v)
	for r := 0; r < v; r++ {
		m.Nodes[r] = node.New(m.NodeEngine(r), r, cfg.Shape.CoordOf(r), cfg.Clock, cfg.SCU, cfg.DDRBytes)
		m.wires[r] = make([]*hssl.Wire, geom.NumLinks)
	}
	// One outbound wire per (node, link); the inbound wire of link l on
	// node n is the neighbour's outbound wire on the opposite link. The
	// wire's transmit half lives on the sender's shard, its receive half
	// on the neighbour's.
	for r := 0; r < v; r++ {
		c := cfg.Shape.CoordOf(r)
		for _, l := range geom.AllLinks() {
			nb := cfg.Shape.Rank(cfg.Shape.Neighbor(c, l.Dim, l.Dir))
			name := fmt.Sprintf("w%d%v", r, l)
			w := hssl.NewWireBetween(
				m.NodeEngine(r), m.NodeEngine(nb), name, cfg.Clock, cfg.WireProp)
			w.AdoptRing(cfg.Pool.ring())
			m.wires[r][geom.LinkIndex(l)] = w
		}
	}
	for r := 0; r < v; r++ {
		c := cfg.Shape.CoordOf(r)
		for _, l := range geom.AllLinks() {
			nb := cfg.Shape.Rank(cfg.Shape.Neighbor(c, l.Dim, l.Dir))
			out := m.wires[r][geom.LinkIndex(l)]
			in := m.wires[nb][geom.LinkIndex(l.Opposite())]
			m.Nodes[r].SCU.AttachLink(l, out, in)
		}
	}
	// Window period: long enough for a partition interrupt to flood the
	// whole machine before sampling (§2.2) — diameter hops of a 2-byte
	// frame plus dispatch, with a 2x guard.
	hop := cfg.Clock.Cycles(16) + cfg.WireProp
	m.windowPeriod = 2 * event.Time(cfg.Shape.Diameter()+1) * hop
	if min := 25 * event.Nanosecond; m.windowPeriod < min {
		m.windowPeriod = min
	}
	// Arm the sampling clock whenever any SCU raises a partition
	// interrupt. On a sharded build the request lands in the rank's own
	// arm slot and is harvested at the window barrier; see
	// sampleClockBarrier.
	for r, n := range m.Nodes {
		if m.cluster == nil {
			n.SCU.WindowArm = m.armClock
			continue
		}
		slot := &m.armAt[r]
		eng := m.NodeEngine(r)
		n.SCU.WindowArm = func() {
			if *slot < 0 {
				*slot = eng.Now()
			}
		}
	}
	if m.cluster != nil {
		m.cluster.OnBarrier(m.sampleClockBarrier)
	}
	m.registerTelemetry()
	return m
}

// buildCluster partitions the machine's ranks into shard engines
// according to cfg.Shards. Contiguous rank blocks follow the packaging
// hierarchy: ranks 2k and 2k+1 share a daughterboard, blocks of 64 a
// motherboard.
func (m *Machine) buildCluster(eng *event.Engine, cfg Config, v int) {
	per := shardNodesPer(cfg, v)
	if per <= 0 || per >= v {
		return // single engine
	}
	n := (v + per - 1) / per
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	look := hssl.MinLatency(cfg.Clock, cfg.WireProp)
	m.cluster = event.Clusterize(eng, n, workers, look)
	// The plan is a pure function of (Shape, Shards); a pooled build
	// shares one immutable copy across all machines of that topology.
	m.shardOf = cfg.Pool.shardPlan(cfg.Shape, cfg.Shards, v, per)
	m.armAt = make([]event.Time, v)
	for r := range m.armAt {
		m.armAt[r] = -1
	}
}

// shardNodesPer returns the nodes-per-shard block size for a config, or
// 0 for a single-engine build. Depends only on Shape volume and Shards.
func shardNodesPer(cfg Config, v int) int {
	switch {
	case cfg.Shards == 0 || v < 2:
		return 0
	case cfg.Shards == ShardAuto:
		if v >= NodesPerMotherboard*MotherboardsPerCrate {
			return NodesPerMotherboard
		}
		return NodesPerDaughterboard
	default:
		per := (v + cfg.Shards - 1) / cfg.Shards
		// Round up to whole daughterboards so board pairs stay together.
		if rem := per % NodesPerDaughterboard; rem != 0 {
			per += NodesPerDaughterboard - rem
		}
		return per
	}
}

// Cluster returns the shard cluster, or nil on a single-engine build.
func (m *Machine) Cluster() *event.Cluster { return m.cluster }

// NodeEngine returns the shard engine that owns a node rank (the
// machine engine on a single-engine build).
func (m *Machine) NodeEngine(rank int) *event.Engine {
	if m.cluster == nil {
		return m.Eng
	}
	return m.cluster.Shard(m.shardOf[rank])
}

// NumNodes returns the machine size.
func (m *Machine) NumNodes() int { return len(m.Nodes) }

// WindowPeriod is the partition-interrupt sampling window.
func (m *Machine) WindowPeriod() event.Time { return m.windowPeriod }

// Wire returns the outbound wire of a node's link (for fault injection
// and statistics in tests and experiments).
func (m *Machine) Wire(rank int, l geom.Link) *hssl.Wire {
	return m.wires[rank][geom.LinkIndex(l)]
}

// TrainLinks trains every HSSL link, all nodes in parallel with each
// node's links in sequence, as the hardware does when powered on and
// released from reset (§2.2). Each node's trainer is a continuation
// chain on the event engine — building a 1024-node machine spawns no
// goroutines. It runs the engine until training completes.
func (m *Machine) TrainLinks() error {
	for r := range m.Nodes {
		wires := m.wires[r]
		sm := m.NodeEngine(r).NewStateMachine(fmt.Sprintf("train%d", r), "training")
		var next func(i int)
		next = func(i int) {
			if i == len(wires) {
				sm.Goto("trained")
				return
			}
			wires[i].TrainAsync(func() { next(i + 1) })
		}
		next(0)
	}
	if err := m.Eng.RunAll(); err != nil {
		return fmt.Errorf("machine: link training failed: %w", err)
	}
	return nil
}

// Boot is the fast bring-up used by benchmarks and most tests: train the
// links, then walk every node through the boot protocol directly. The
// packet-level protocol (JTAG load over Ethernet, run-kernel download,
// §2.3/§3.1) lives in internal/qdaemon; use qdaemon.Daemon.BootAll for
// the full path.
func (m *Machine) Boot() error {
	if err := m.TrainLinks(); err != nil {
		return err
	}
	for _, n := range m.Nodes {
		// Minimal stand-in for the JTAG code load.
		n.LoadBootWord(0, 0x60000000)
		if err := n.StartBootKernel(); err != nil {
			return err
		}
		if err := n.StartRunKernel(); err != nil {
			return err
		}
	}
	m.booted = true
	return nil
}

// MarkBooted records that the full boot protocol (driven externally by
// the qdaemon) has completed, enabling SPMD job launch.
func (m *Machine) MarkBooted() { m.booted = true }

// armClock schedules a partition-interrupt sampling tick if none is
// pending (single-engine build).
func (m *Machine) armClock() {
	if m.clockArmed {
		return
	}
	m.clockArmed = true
	m.Eng.After(m.windowPeriod, m.windowTick)
}

func (m *Machine) windowTick() {
	m.clockArmed = false
	again := false
	// armClock registers this tick only on single-engine builds, where
	// every node shares the one engine; the sharded machine samples via
	// windowTickGlobal instead.
	for _, n := range m.Nodes { //qcdoclint:shard-ok single-engine build only
		n.SCU.WindowTick()
		if n.SCU.PartIRQPending() != n.SCU.PartIRQStatus() {
			again = true
		}
	}
	if again {
		m.armClock()
	}
}


// sampleClockBarrier runs at every cluster window barrier: it harvests
// the per-rank arm requests and schedules the machine-wide sampling
// tick as a global event. The tick time is always schedulable — a
// request raised during a window precedes every shard clock by at most
// one lookahead, and the window period is at least twice the lookahead.
func (m *Machine) sampleClockBarrier() {
	minArm := event.Time(-1)
	for i := range m.armAt {
		if t := m.armAt[i]; t >= 0 {
			if minArm < 0 || t < minArm {
				minArm = t
			}
			m.armAt[i] = -1
		}
	}
	if minArm < 0 || m.clockArmed {
		// No request, or the pending tick already covers it (it re-arms
		// itself while interrupt bits remain unsampled).
		return
	}
	m.clockArmed = true
	m.cluster.AtGlobal(minArm+m.windowPeriod, m.windowTickGlobal)
}

// windowTickGlobal is windowTick as a machine-wide global event: it
// runs serially with every shard clock aligned, which is what lets it
// touch all nodes' SCUs — the one legitimately machine-wide piece of
// hardware, the motherboard-distributed slow clock (§2.4).
func (m *Machine) windowTickGlobal() {
	m.clockArmed = false
	again := false
	for _, n := range m.Nodes {
		n.SCU.WindowTick()
		if n.SCU.PartIRQPending() != n.SCU.PartIRQStatus() {
			again = true
		}
	}
	if again {
		m.clockArmed = true
		m.cluster.AtGlobal(m.Eng.Now()+m.windowPeriod, m.windowTickGlobal)
	}
}

// RunSPMD starts the same program on every node (the machine's natural
// mode: §1's trivial decomposition) and runs the simulation until all
// application threads finish. It returns the first application error.
func (m *Machine) RunSPMD(name string, prog func(rank int) node.Program) error {
	if !m.booted {
		return fmt.Errorf("machine: not booted")
	}
	for r, n := range m.Nodes {
		if err := n.RunProgram(name, prog(r)); err != nil {
			return err
		}
	}
	if err := m.Eng.RunAll(); err != nil {
		return err
	}
	for _, n := range m.Nodes {
		done, err := n.AppDone()
		if !done {
			return fmt.Errorf("machine: %s did not finish", n.Name)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// VerifyChecksums performs the §2.2 end-of-calculation audit: for every
// link, the transmit-side checksum must equal the receive-side checksum
// kept by the neighbour. It returns the number of links checked.
func (m *Machine) VerifyChecksums() (int, error) {
	checked := 0
	for r, n := range m.Nodes {
		c := m.Cfg.Shape.CoordOf(r)
		for _, l := range geom.AllLinks() {
			nb := m.Cfg.Shape.Rank(m.Cfg.Shape.Neighbor(c, l.Dim, l.Dir))
			tx, _ := n.SCU.Checksums(l)
			_, rx := m.Nodes[nb].SCU.Checksums(l.Opposite())
			if !tx.Equal(&rx) {
				return checked, fmt.Errorf("machine: checksum mismatch %s link %v -> node %d: tx %d words %#x, rx %d words %#x",
					n.Name, l, nb, tx.Count(), tx.Sum(), rx.Count(), rx.Sum())
			}
			checked++
		}
	}
	return checked, nil
}

// Stats sums SCU counters over all nodes, via the counter table that is
// the single definition of the field set (scu.statsFields).
func (m *Machine) Stats() scu.Stats {
	var total scu.Stats
	for _, n := range m.Nodes {
		s := n.SCU.Stats()
		total.Add(&s)
	}
	return total
}
