package machine

import (
	"testing"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/node"
	"qcdoc/internal/scu"
)

func buildBooted(t *testing.T, shape geom.Shape) (*event.Engine, *Machine) {
	t.Helper()
	eng := event.New()
	m := Build(eng, DefaultConfig(shape))
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Shutdown() })
	return eng, m
}

func TestBuildAndBoot(t *testing.T) {
	_, m := buildBooted(t, geom.MakeShape(2, 2, 2))
	if m.NumNodes() != 8 {
		t.Fatalf("nodes = %d", m.NumNodes())
	}
	for _, n := range m.Nodes {
		if n.State() != node.RunKernel {
			t.Fatalf("%s in state %v after boot", n.Name, n.State())
		}
		if n.BootWords() == 0 {
			t.Fatal("node booted without loading code (no PROMs!)")
		}
	}
}

func TestNeighborTransferAcrossMachine(t *testing.T) {
	// Every node sends its rank (as 8 words) to its +0 neighbour; all
	// transfers run concurrently over the real wiring.
	_, m := buildBooted(t, geom.MakeShape(4, 2))
	shape := m.Cfg.Shape
	err := m.RunSPMD("ring", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			n := ctx.N
			sendAddr := n.AllocWords(8)
			recvAddr := n.AllocWords(8)
			for i := 0; i < 8; i++ {
				n.Mem.WriteWord(sendAddr+8*uint64(i), uint64(rank*100+i))
			}
			rt, err := n.SCU.StartRecv(geom.Link{Dim: 0, Dir: geom.Bwd}, scu.Contiguous(recvAddr, 8))
			if err != nil {
				panic(err)
			}
			st, err := n.SCU.StartSend(geom.Link{Dim: 0, Dir: geom.Fwd}, scu.Contiguous(sendAddr, 8))
			if err != nil {
				panic(err)
			}
			st.Wait(ctx.P)
			rt.Wait(ctx.P)
			// Verify data from the -0 neighbour.
			prev := shape.Rank(shape.Neighbor(n.Coord, 0, geom.Bwd))
			for i := 0; i < 8; i++ {
				got := n.Mem.ReadWord(recvAddr + 8*uint64(i))
				want := uint64(prev*100 + i)
				if got != want {
					panic("wrong halo word")
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	checked, err := m.VerifyChecksums()
	if err != nil {
		t.Fatal(err)
	}
	if checked != 8*geom.NumLinks {
		t.Fatalf("checked %d links", checked)
	}
	st := m.Stats()
	if st.WordsSent != 8*8 || st.WordsReceived != 8*8 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestPartitionInterruptMachineWide(t *testing.T) {
	eng, m := buildBooted(t, geom.MakeShape(4, 2, 2))
	seen := make([]uint8, m.NumNodes())
	for r, n := range m.Nodes {
		r := r
		n.SCU.OnPartIRQ(func(mask uint8) { seen[r] = mask })
	}
	// One node raises; after the sampling window every node's CPU must
	// have been interrupted.
	m.Nodes[5].SCU.RaisePartIRQ(0x02)
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	for r := range seen {
		if seen[r] != 0x02 {
			t.Fatalf("node %d saw %#x", r, seen[r])
		}
		if m.Nodes[r].SCU.PartIRQStatus() != 0x02 {
			t.Fatalf("node %d status %#x", r, m.Nodes[r].SCU.PartIRQStatus())
		}
	}
	// The engine quiesced: the sampling clock stopped rescheduling.
	if eng.Pending() != 0 {
		t.Fatalf("%d events still pending", eng.Pending())
	}
}

func TestRunSPMDCollectsPanics(t *testing.T) {
	_, m := buildBooted(t, geom.MakeShape(2))
	err := m.RunSPMD("boom", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			if rank == 1 {
				panic("deliberate")
			}
		}
	})
	if err == nil {
		t.Fatal("panic not reported")
	}
}

func TestBootStateMachine(t *testing.T) {
	eng := event.New()
	defer eng.Shutdown()
	n := node.New(eng, 0, geom.Coord{}, 500*event.MHz, scu.DefaultConfig(), 0)
	// Cannot run an app or the run kernel from reset.
	if err := n.StartRunKernel(); err == nil {
		t.Fatal("run kernel started from reset")
	}
	if err := n.RunProgram("x", func(*node.Ctx) {}); err == nil {
		t.Fatal("app started from reset")
	}
	// Cannot start the boot kernel with no code loaded.
	if err := n.StartBootKernel(); err == nil {
		t.Fatal("boot kernel started with no code")
	}
	n.LoadBootWord(0, 1)
	if err := n.StartBootKernel(); err != nil {
		t.Fatal(err)
	}
	if err := n.StartRunKernel(); err != nil {
		t.Fatal(err)
	}
	if n.State() != node.RunKernel {
		t.Fatalf("state = %v", n.State())
	}
}

func TestPackaging1024(t *testing.T) {
	// E7: a 1024-node water-cooled rack is 1 Tflops peak and under 10 kW
	// (§2.4, Figure 5).
	p := PackagingFor(1024, 500*event.MHz)
	if p.Racks != 1 || p.Crates != 2 || p.Motherboards != 16 || p.Daughterboards != 512 {
		t.Fatalf("packaging: %+v", p)
	}
	if p.PeakTeraflops != 1.024 {
		t.Fatalf("peak = %v Tflops", p.PeakTeraflops)
	}
	if p.PowerWatts >= 10000 {
		t.Fatalf("rack power %v W, paper says < 10 kW", p.PowerWatts)
	}
}

func TestPackaging12288(t *testing.T) {
	// E7: the 12,288-node machines are 12 racks; ~60 ft^2 footprint and
	// 10+ Tflops peak at 420+ MHz.
	p := PackagingFor(12288, 450*event.MHz)
	if p.Racks != 12 {
		t.Fatalf("racks = %d", p.Racks)
	}
	if p.FootprintSqFt < 55 || p.FootprintSqFt > 65 {
		t.Fatalf("footprint = %v ft^2, paper says ~60", p.FootprintSqFt)
	}
	if p.PeakTeraflops < 10 {
		t.Fatalf("peak = %v Tflops, paper says 10+", p.PeakTeraflops)
	}
	if Machine12288Shape().Volume() != 12288 {
		t.Fatal("12288 shape volume wrong")
	}
}

func TestMachineShapes(t *testing.T) {
	if Machine1024Shape().Volume() != 1024 {
		t.Fatal("1024 shape")
	}
	if Machine4096Shape().Volume() != 4096 {
		t.Fatal("4096 shape")
	}
	if MotherboardShape().Volume() != 64 {
		t.Fatal("motherboard shape")
	}
	for _, n := range []int{1, 2, 64, 128, 512, 1024, 4096, 12288} {
		if GuessShape(n).Volume() != n {
			t.Fatalf("GuessShape(%d) volume wrong", n)
		}
	}
}

// TestE14Wiring audits the network schematic of Figure 2 functionally:
// on a full 2^6 motherboard hypercube, every node sends a tagged word on
// all 12 links and must receive, on each link, exactly the word the
// correct neighbour sent toward it.
func TestE14Wiring(t *testing.T) {
	_, m := buildBooted(t, MotherboardShape())
	shape := m.Cfg.Shape
	for _, n := range m.Nodes {
		for _, l := range geom.AllLinks() {
			if !n.SCU.Attached(l) {
				t.Fatalf("%s link %v not attached", n.Name, l)
			}
		}
	}
	err := m.RunSPMD("wiring-audit", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			n := ctx.N
			var recvs [geom.NumLinks]*scu.Transfer
			addrs := make([]uint64, geom.NumLinks)
			for i, l := range geom.AllLinks() {
				addrs[i] = n.AllocWords(1)
				rt, err := n.SCU.StartRecv(l, scu.Contiguous(addrs[i], 1))
				if err != nil {
					panic(err)
				}
				recvs[i] = rt
			}
			for i, l := range geom.AllLinks() {
				sendAddr := n.AllocWords(1)
				// Tag: sender rank and the link it transmits on.
				n.Mem.WriteWord(sendAddr, uint64(rank)<<8|uint64(i))
				if _, err := n.SCU.StartSend(l, scu.Contiguous(sendAddr, 1)); err != nil {
					panic(err)
				}
			}
			for i, l := range geom.AllLinks() {
				recvs[i].Wait(ctx.P)
				got := n.Mem.ReadWord(addrs[i])
				// Data arriving on my link l was sent by the (dim,dir)
				// neighbour on its opposite link.
				nb := shape.Rank(shape.Neighbor(n.Coord, l.Dim, l.Dir))
				want := uint64(nb)<<8 | uint64(geom.LinkIndex(l.Opposite()))
				if got != want {
					panic("miswired link")
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.VerifyChecksums(); err != nil {
		t.Fatal(err)
	}
}
