package machine

import (
	"fmt"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/hssl"
	"qcdoc/internal/scu"
	"qcdoc/internal/telemetry"
)

// This file wires the machine into the telemetry layer (DESIGN.md §10):
// every node's SCU, CPU and memory counters register on one Registry at
// Build time, the packaging-level derived gauges on top, and
// Machine.Telemetry() assembles the machine-wide snapshot the host
// exports. Registration stores only reader closures — nothing here runs
// until a snapshot is requested, and a snapshot schedules no events, so
// the simulated machine is bit-identical with telemetry on or off.

// registerTelemetry populates the machine's registry. Called once from
// Build, before anything runs.
func (m *Machine) registerTelemetry() {
	m.Reg = telemetry.New()
	for r, n := range m.Nodes {
		n := n
		m.Reg.RegisterCounters(fmt.Sprintf("node%d/scu", r), func(emit telemetry.EmitFunc) {
			s := n.SCU.Stats()
			s.Each(emit)
		})
		m.Reg.RegisterCounters(fmt.Sprintf("node%d/link", r), func(emit telemetry.EmitFunc) {
			for _, l := range geom.AllLinks() {
				s := n.SCU.LinkStats(l)
				pre := l.String() + "/"
				s.Each(func(name string, v uint64) { emit(pre+name, v) })
			}
		})
		m.Reg.RegisterCounters(fmt.Sprintf("node%d/cpu", r), func(emit telemetry.EmitFunc) {
			if c := n.Counters(); c != nil {
				c.Each(emit)
			}
		})
	}
	m.Reg.RegisterCounters("machine/scu", func(emit telemetry.EmitFunc) {
		s := m.Stats()
		s.Each(emit)
	})
	m.Reg.RegisterCounters("machine/hssl", func(emit telemetry.EmitFunc) {
		w := m.WireStats()
		emit("frames", w.Frames)
		emit("bits", w.Bits)
		emit("corrupted", w.Corrupted)
	})
	m.Reg.RegisterHistograms("machine", m.emitHistograms)
	pkg := PackagingFor(len(m.Nodes), m.Cfg.Clock)
	m.Reg.RegisterGauge("machine/link_utilization", m.LinkUtilization)
	m.Reg.RegisterGauge("machine/sustained_gflops", func() float64 { return m.SustainedFlops() / 1e9 })
	m.Reg.RegisterGauge("machine/peak_gflops", func() float64 { return pkg.PeakTeraflops * 1e3 })
	m.Reg.RegisterGauge("machine/efficiency", func() float64 {
		if peak := pkg.PeakTeraflops * 1e12; peak > 0 {
			return m.SustainedFlops() / peak
		}
		return 0
	})
	m.Reg.RegisterGauge("machine/power_watts", func() float64 { return pkg.PowerWatts })
}

// EnableTelemetry switches the whole layer on: the registry starts
// collecting, every node starts counting, and every link starts
// recording its latency distributions. Idempotent.
func (m *Machine) EnableTelemetry() {
	m.Reg.SetEnabled(true)
	for _, n := range m.Nodes {
		n.EnableCounters()
		n.SCU.EnableLinkHists()
	}
}

// emitHistograms merges the per-node and per-link latency distributions
// machine-wide and emits them in a fixed order. Snapshot-time only —
// the merge walks histograms the simulator already maintains; it never
// touches hot-path state.
func (m *Machine) emitHistograms(emit telemetry.HistEmitFunc) {
	var gsum, iter, ckpt, inflight, gap telemetry.Histogram
	for _, n := range m.Nodes {
		if c := n.Counters(); c != nil {
			gsum.Absorb(&c.GsumTime)
			iter.Absorb(&c.IterTime)
			ckpt.Absorb(&c.CkptWrite)
		}
		for _, l := range geom.AllLinks() {
			if lh := n.SCU.LinkHists(l); lh != nil {
				inflight.Absorb(&lh.InFlight)
				gap.Absorb(&lh.ResendGap)
			}
		}
	}
	emit("gsum_rtt_ps", gsum.Snapshot())
	emit("cg_iter_ps", iter.Snapshot())
	emit("ckpt_chunk_write_ps", ckpt.Snapshot())
	emit("link_in_flight_ps", inflight.Snapshot())
	emit("link_resend_gap_ps", gap.Snapshot())
}

// TelemetryEnabled reports whether EnableTelemetry has run.
func (m *Machine) TelemetryEnabled() bool { return m.Reg.Enabled() }

// WireStats sums HSSL wire counters over every wire in the torus.
func (m *Machine) WireStats() hssl.Stats {
	var total hssl.Stats
	for _, ws := range m.wires {
		for _, w := range ws {
			s := w.Stats()
			total.Frames += s.Frames
			total.Bits += s.Bits
			total.Corrupted += s.Corrupted
		}
	}
	return total
}

// WiresTrained counts trained wires (all of them, after boot).
func (m *Machine) WiresTrained() int {
	n := 0
	for _, ws := range m.wires {
		for _, w := range ws {
			if w.Trained() {
				n++
			}
		}
	}
	return n
}

// LinkUtilization is the fraction of the torus's aggregate serial
// capacity used so far: bits moved over (wires x link clock x elapsed
// time). Zero before anything has run.
func (m *Machine) LinkUtilization() float64 {
	now := m.Eng.Now()
	if now == 0 {
		return 0
	}
	bits := float64(m.WireStats().Bits)
	capacity := float64(len(m.Nodes)*geom.NumLinks) * float64(m.Cfg.Clock) * (float64(now) / float64(event.Second))
	if capacity == 0 {
		return 0
	}
	return bits / capacity
}

// SustainedFlops is the machine-wide achieved floating-point rate:
// useful flops retired (per the node counters) over elapsed simulated
// time. Zero when telemetry is disabled or nothing has run.
func (m *Machine) SustainedFlops() float64 {
	now := m.Eng.Now()
	if now == 0 {
		return 0
	}
	flops := 0.0
	for _, n := range m.Nodes {
		if c := n.Counters(); c != nil {
			flops += c.Flops
		}
	}
	return flops / (float64(now) / float64(event.Second))
}

// LinkTelemetry is one link's counters in a machine snapshot.
type LinkTelemetry struct {
	Rank  int       `json:"rank"`
	Link  string    `json:"link"`
	Stats scu.Stats `json:"stats"`
}

// Telemetry is the machine-wide observation the host exports: identity,
// aggregate SCU and wire counters, every link's counters (the per-link
// error counters are the §2.2 reliability audit trail), and the
// registry's full counter/gauge snapshot.
type Telemetry struct {
	At           event.Time         `json:"at"`
	Shape        string             `json:"shape"`
	Nodes        int                `json:"nodes"`
	Events       uint64             `json:"events"`
	WiresTrained int                `json:"wires_trained"`
	Aggregate    scu.Stats          `json:"aggregate"`
	Wires        hssl.Stats         `json:"wires"`
	Links        []LinkTelemetry    `json:"links,omitempty"`
	Counters     map[string]uint64  `json:"counters,omitempty"`
	Gauges       map[string]float64 `json:"gauges,omitempty"`
	// Histograms carries the latency distributions (p50/p95/p99/max per
	// DESIGN.md §15): global-sum round trip, CG iteration, checkpoint
	// chunk write, link in-flight and resend gap.
	Histograms map[string]telemetry.HistogramSnapshot `json:"histograms,omitempty"`
	Packaging  Packaging                              `json:"packaging"`
}

// Telemetry assembles the machine-wide snapshot. Purely a read — no
// events, no state changes; callable at any point of a run.
func (m *Machine) Telemetry() Telemetry {
	snap := m.Reg.Snapshot()
	t := Telemetry{
		At:           m.Eng.Now(),
		Shape:        m.Cfg.Shape.String(),
		Nodes:        len(m.Nodes),
		Events:       m.Eng.Executed(),
		WiresTrained: m.WiresTrained(),
		Aggregate:    m.Stats(),
		Wires:        m.WireStats(),
		Counters:     snap.Counters,
		Gauges:       snap.Gauges,
		Histograms:   snap.Histograms,
		Packaging:    PackagingFor(len(m.Nodes), m.Cfg.Clock),
	}
	for r, n := range m.Nodes {
		for _, l := range geom.AllLinks() {
			t.Links = append(t.Links, LinkTelemetry{Rank: r, Link: l.String(), Stats: n.SCU.LinkStats(l)})
		}
	}
	return t
}
