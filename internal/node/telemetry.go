package node

import (
	"qcdoc/internal/geom"
	"qcdoc/internal/memsys"
	"qcdoc/internal/ppc440"
	"qcdoc/internal/scu"
	"qcdoc/internal/telemetry"
)

// This file is the node's half of the telemetry layer (DESIGN.md §10):
// an optional counter block the machine switches on, and a read-only
// "telemetry window" of peekable words through which the host fetches
// those counters over the Ethernet/JTAG side network — the RISCWatch
// path of §2.3, which is how the real machine's host monitored nodes
// without involving the compute fabric.
//
// The zero-perturbation contract: counting is plain field arithmetic on
// paths the simulation already executes, schedules no events, and when
// disabled (ctr == nil) costs one pointer test. Either way the engine's
// event stream is bit-identical.

// Counters is the per-node activity account kept when telemetry is
// enabled: what the CPU did (kernels retired, flops, which pipeline
// bounded each kernel and by how many cycles), what the memory system
// moved, and what the collectives layer asked for.
type Counters struct {
	// Kernels is the number of compute kernels retired.
	Kernels uint64
	// Flops is the useful floating point work retired.
	Flops float64
	// ComputeBound / MemoryBound count kernels by which pipeline set
	// their critical path (compute wins ties: the FPU was busy the whole
	// time).
	ComputeBound uint64
	MemoryBound  uint64
	// ComputeCycles / MemoryCycles are the per-pipeline demand summed
	// over kernels; their max per kernel is the charged time, so the gap
	// between the two is the stall breakdown.
	ComputeCycles float64
	MemoryCycles  float64
	// CyclesByKernel attributes charged cycles to kernel names.
	CyclesByKernel map[string]float64
	// Mem is the memory-system traffic account.
	Mem memsys.Counters
	// Collectives and solver activity (incremented by qmp/solver hooks).
	GlobalSums       uint64
	Broadcasts       uint64
	Barriers         uint64
	SolverIterations uint64
	// Latency distributions (picoseconds of simulated time), recorded by
	// the qmp, solver and checkpoint hooks on the same nil-gated paths as
	// the scalar counters; machine.Telemetry merges them machine-wide.
	GsumTime  telemetry.Histogram
	IterTime  telemetry.Histogram
	CkptWrite telemetry.Histogram
}

// EnableCounters switches the node's telemetry counters on and returns
// the block. Idempotent; enabling mid-run starts counting from zero at
// that point.
func (n *Node) EnableCounters() *Counters {
	if n.ctr == nil {
		n.ctr = &Counters{CyclesByKernel: make(map[string]float64)}
	}
	return n.ctr
}

// Counters returns the node's counter block, or nil when telemetry is
// disabled. Callers on hot paths test for nil and skip — that test is
// the entire disabled-mode overhead.
func (n *Node) Counters() *Counters { return n.ctr }

// noteKernel accounts one kernel execution. Called exactly once per
// Compute/ComputeThen, before the time is charged, so memory traffic is
// attributed here and nowhere else (the timing model's StreamCycles is
// also called from DMA paths the SCU accounts separately).
func (n *Node) noteKernel(k ppc440.KernelCost) {
	c := n.ctr
	if c == nil {
		return
	}
	c.Kernels++
	c.Flops += k.Flops
	comp := n.CPU.ComputeCycles(k)
	mem := n.CPU.MemoryCycles(k, n.MemModel)
	c.ComputeCycles += comp
	c.MemoryCycles += mem
	charged := comp
	if mem > comp {
		charged = mem
		c.MemoryBound++
	} else {
		c.ComputeBound++
	}
	name := k.Name
	if name == "" {
		name = "anon"
	}
	c.CyclesByKernel[name] += charged
	// Mirror MemoryCycles' classification: prefetch-covered streaming
	// versus gather-style access.
	streams := k.Streams
	if streams > memsys.PrefetchStreams {
		streams = memsys.PrefetchStreams + 1
	}
	c.Mem.Note(k.Level, int(k.Bytes()), streams)
}

// Each calls emit for every scalar counter in the block, in a stable
// order, with snake_case names (float counters are truncated — the
// registry's currency is uint64 words, matching what the peek window
// serves).
func (c *Counters) Each(emit func(name string, v uint64)) {
	emit("kernels", c.Kernels)
	emit("flops", uint64(c.Flops))
	emit("compute_bound", c.ComputeBound)
	emit("memory_bound", c.MemoryBound)
	emit("compute_cycles", uint64(c.ComputeCycles))
	emit("memory_cycles", uint64(c.MemoryCycles))
	emit("global_sums", c.GlobalSums)
	emit("broadcasts", c.Broadcasts)
	emit("barriers", c.Barriers)
	emit("solver_iterations", c.SolverIterations)
	c.Mem.Each(func(name string, v uint64) { emit("mem/"+name, v) })
}

// Telemetry window: a read-only MMIO region at the top of the 64-bit
// address space, outside any installed memory, served word-by-word to
// JTAG peeks (qdaemon routes OpReadWord at these addresses here instead
// of to NodeMemory). Layout, in 64-bit words from TelemetryBase:
//
//	word 0                      TelemetryMagic
//	word 1                      node lifecycle state
//	word 2                      number of links (geom.NumLinks)
//	word 3                      counters per link (scu.NumStats())
//	word 4                      heartbeat counter (see Node.TickHeartbeat)
//	word 5                      failed-link bitmask (scu.FailedLinks)
//	words 8..8+NumStats         aggregate SCU stats, table order
//	words 32+L*16 .. +NumStats  per-link SCU stats for link index L
const (
	TelemetryBase uint64 = 0xFFFF_0000_0000_0000

	TelemMagicWord     = 0
	TelemStateWord     = 1
	TelemLinksWord     = 2
	TelemFieldsWord    = 3
	TelemHeartbeatWord = 4
	TelemFailedWord    = 5
	TelemAggWord       = 8
	TelemLinkWord      = 32
	TelemLinkStride    = 16
)

// TelemetryMagic identifies the window ("QCDTELEM" truncated to what
// fits): a host peeking word 0 can verify it is talking to a telemetry
// window and not uninitialized memory.
const TelemetryMagic uint64 = 0x5143_4454_454C_4D30 // "QCDTELM0"

// TelemetryAddr returns the byte address of telemetry word i.
func TelemetryAddr(word int) uint64 { return TelemetryBase + uint64(word)*8 }

// ReadTelemetryWord serves one peek into the telemetry window. Reads of
// unmapped words return zero, like untouched memory. This is a pure
// read of current counter state — no events, no side effects — so a
// host polling it perturbs nothing but the side-network traffic the
// poll itself is.
func (n *Node) ReadTelemetryWord(addr uint64) uint64 {
	word := int((addr - TelemetryBase) / 8)
	switch word {
	case TelemMagicWord:
		return TelemetryMagic
	case TelemStateWord:
		return uint64(n.state)
	case TelemLinksWord:
		return uint64(geom.NumLinks)
	case TelemFieldsWord:
		return uint64(scu.NumStats())
	case TelemHeartbeatWord:
		return n.heartbeat
	case TelemFailedWord:
		return n.SCU.FailedLinks()
	}
	if word >= TelemAggWord && word < TelemAggWord+scu.NumStats() {
		s := n.SCU.Stats()
		return s.Value(word - TelemAggWord)
	}
	if word >= TelemLinkWord && word < TelemLinkWord+geom.NumLinks*TelemLinkStride {
		li := (word - TelemLinkWord) / TelemLinkStride
		f := (word - TelemLinkWord) % TelemLinkStride
		if f >= scu.NumStats() {
			return 0
		}
		s := n.SCU.LinkStats(geom.AllLinks()[li])
		return s.Value(f)
	}
	return 0
}

// IsTelemetryAddr reports whether a peek address falls in the telemetry
// window.
func IsTelemetryAddr(addr uint64) bool { return addr >= TelemetryBase }
