package node

import (
	"testing"

	"qcdoc/internal/event"
	"qcdoc/internal/memsys"
	"qcdoc/internal/ppc440"
)

// TestComputeThenMatchesCompute pins the two tiers to the same timing
// model: charging a kernel via the continuation-tier ComputeThen retires
// at exactly the simulated time the coroutine-tier Compute returns at.
func TestComputeThenMatchesCompute(t *testing.T) {
	eng, n := testNode(t)
	k := ppc440.KernelCost{Flops: 4000, FPUOps: 2000, LoadBytes: 8192, Level: memsys.EDRAM}
	var thenAt event.Time
	n.ComputeThen(k, func() { thenAt = eng.Now() })
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if want := n.CPU.KernelTime(k, n.MemModel); thenAt != want {
		t.Fatalf("ComputeThen retired at %v, want %v", thenAt, want)
	}

	eng2, n2 := testNode(t)
	n2.ForceReady()
	var procAt event.Time
	n2.RunProgram("compute", func(ctx *Ctx) {
		n2.Compute(ctx.P, k)
		procAt = ctx.P.Now()
	})
	if err := eng2.RunAll(); err != nil {
		t.Fatal(err)
	}
	if procAt != thenAt {
		t.Fatalf("tiers disagree: ComputeThen %v, Compute %v", thenAt, procAt)
	}
}

// TestStreamThenMatchesStreamTime pins the continuation-tier memory
// stream to the model's StreamTime, including the over-subscribed
// page-miss regime.
func TestStreamThenMatchesStreamTime(t *testing.T) {
	m := memsys.DefaultModel()
	for _, streams := range []int{memsys.PrefetchStreams, memsys.PrefetchStreams + 1} {
		eng := event.New()
		var doneAt event.Time
		m.StreamThen(eng, memsys.EDRAM, 1<<16, streams, func() { doneAt = eng.Now() })
		if err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		if want := m.StreamTime(memsys.EDRAM, 1<<16, streams); doneAt != want {
			t.Fatalf("streams=%d: done at %v, want %v", streams, doneAt, want)
		}
	}
}
