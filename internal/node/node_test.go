package node

import (
	"testing"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/memsys"
	"qcdoc/internal/ppc440"
	"qcdoc/internal/scu"
)

func testNode(t *testing.T) (*event.Engine, *Node) {
	t.Helper()
	eng := event.New()
	t.Cleanup(eng.Shutdown)
	n := New(eng, 3, geom.Coord{1, 0, 1, 0, 0, 0}, 500*event.MHz, scu.DefaultConfig(), 1<<20)
	return eng, n
}

func TestLifecycle(t *testing.T) {
	_, n := testNode(t)
	if n.State() != Reset {
		t.Fatalf("initial state %v", n.State())
	}
	if err := n.StartBootKernel(); err == nil {
		t.Fatal("booted without code (no PROMs)")
	}
	n.LoadBootWord(0, 1)
	n.LoadBootWord(8, 2)
	if n.BootWords() != 2 {
		t.Fatalf("boot words %d", n.BootWords())
	}
	if err := n.StartBootKernel(); err != nil {
		t.Fatal(err)
	}
	if err := n.StartBootKernel(); err == nil {
		t.Fatal("double boot accepted")
	}
	if err := n.StartRunKernel(); err != nil {
		t.Fatal(err)
	}
	if n.State() != RunKernel {
		t.Fatalf("state %v", n.State())
	}
}

func TestForceReady(t *testing.T) {
	_, n := testNode(t)
	n.ForceReady()
	if n.State() != RunKernel {
		t.Fatalf("state %v", n.State())
	}
}

func TestRunProgramLifecycle(t *testing.T) {
	eng, n := testNode(t)
	n.ForceReady()
	ran := false
	if err := n.RunProgram("p", func(ctx *Ctx) {
		if ctx.N.State() != AppRunning {
			t.Error("not in app-running state during program")
		}
		ctx.P.Sleep(event.Microsecond)
		ran = true
	}); err != nil {
		t.Fatal(err)
	}
	// No second application while one runs (§3.2: no multitasking).
	if err := n.RunProgram("q", func(*Ctx) {}); err == nil {
		t.Fatal("second concurrent application accepted")
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	done, err := n.AppDone()
	if !done || err != nil || !ran {
		t.Fatalf("done=%v err=%v ran=%v", done, err, ran)
	}
	if n.State() != RunKernel {
		t.Fatalf("state after app: %v", n.State())
	}
}

func TestAppPanicCaptured(t *testing.T) {
	eng, n := testNode(t)
	n.ForceReady()
	if err := n.RunProgram("boom", func(*Ctx) { panic("deliberate") }); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	done, err := n.AppDone()
	if !done || err == nil {
		t.Fatalf("done=%v err=%v", done, err)
	}
}

func TestAllocator(t *testing.T) {
	_, n := testNode(t)
	a := n.AllocWords(4)
	b := n.AllocWords(2)
	if b != a+32 {
		t.Fatalf("allocations not contiguous: %#x then %#x", a, b)
	}
	if a%8 != 0 {
		t.Fatal("unaligned allocation")
	}
	if n.AllocLevel() != memsys.EDRAM {
		t.Fatal("small allocations should sit in EDRAM")
	}
	// Spill into DDR.
	n.AllocWords((memsys.EDRAMBytes) / 8)
	if n.AllocLevel() != memsys.DDR {
		t.Fatal("large allocation should spill to DDR")
	}
	// Exhaustion panics (1 MB DDR installed).
	defer func() {
		if recover() == nil {
			t.Fatal("OOM not detected")
		}
	}()
	n.AllocWords(1 << 20)
}

func TestFloatAccessors(t *testing.T) {
	_, n := testNode(t)
	a := n.AllocWords(1)
	n.WriteF64(a, 3.14159)
	if got := n.ReadF64(a); got != 3.14159 {
		t.Fatalf("got %v", got)
	}
}

func TestComputeCharges(t *testing.T) {
	eng, n := testNode(t)
	n.ForceReady()
	k := ppc440.KernelCost{Flops: 2000, FPUOps: 1000, Level: memsys.EDRAM}
	var elapsed event.Time
	n.RunProgram("compute", func(ctx *Ctx) {
		t0 := ctx.P.Now()
		n.Compute(ctx.P, k)
		elapsed = ctx.P.Now() - t0
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := n.CPU.KernelTime(k, n.MemModel)
	if elapsed != want {
		t.Fatalf("charged %v, want %v", elapsed, want)
	}
}
