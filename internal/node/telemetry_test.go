package node

import (
	"testing"

	"qcdoc/internal/geom"
	"qcdoc/internal/memsys"
	"qcdoc/internal/ppc440"
	"qcdoc/internal/scu"
)

func TestCountersDisabledByDefault(t *testing.T) {
	eng, n := testNode(t)
	if n.Counters() != nil {
		t.Fatal("counters on before EnableCounters")
	}
	// Compute with counters disabled must work and count nothing.
	n.ComputeThen(ppc440.KernelCost{Name: "k", Flops: 100, FPUOps: 50}, func() {})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if n.Counters() != nil {
		t.Fatal("counters appeared spontaneously")
	}
}

func TestNoteKernelClassification(t *testing.T) {
	eng, n := testNode(t)
	c := n.EnableCounters()
	if c == nil || n.Counters() != c || n.EnableCounters() != c {
		t.Fatal("EnableCounters not idempotent")
	}
	// Compute-bound: lots of FPU work, almost no data.
	cb := ppc440.KernelCost{Name: "dirac", Flops: 1000, FPUOps: 500, LoadBytes: 8, Streams: 1, Level: memsys.EDRAM}
	// Memory-bound streaming kernel covered by the prefetcher.
	mb := ppc440.KernelCost{Name: "axpy", Flops: 10, FPUOps: 5, LoadBytes: 4096, StoreBytes: 2048, Streams: 2, Level: memsys.EDRAM}
	// Gather-style kernel with more streams than the prefetcher covers.
	gather := ppc440.KernelCost{Name: "gather", Flops: 10, FPUOps: 5, LoadBytes: 1280, Streams: 3, Level: memsys.DDR}
	for _, k := range []ppc440.KernelCost{cb, mb, gather} {
		n.ComputeThen(k, func() {})
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if c.Kernels != 3 || c.Flops != 1020 {
		t.Fatalf("kernels %d flops %g", c.Kernels, c.Flops)
	}
	if c.ComputeBound != 1 || c.MemoryBound != 2 {
		t.Fatalf("bound split %d/%d", c.ComputeBound, c.MemoryBound)
	}
	// Per-kernel cycles: the charged (max) pipeline, matching the CPU
	// model exactly.
	for _, k := range []ppc440.KernelCost{cb, mb, gather} {
		want := n.CPU.KernelCycles(k, n.MemModel)
		if got := c.CyclesByKernel[k.Name]; got != want {
			t.Fatalf("%s cycles = %g, want %g", k.Name, got, want)
		}
	}
	// Memory traffic by level, and the prefetcher's view of it.
	if c.Mem.EDRAMBytes != 8+4096+2048 || c.Mem.DDRBytes != 1280 {
		t.Fatalf("mem bytes %d/%d", c.Mem.EDRAMBytes, c.Mem.DDRBytes)
	}
	if c.Mem.PrefetchHits != 2 {
		t.Fatalf("prefetch hits %d", c.Mem.PrefetchHits)
	}
	if want := uint64(1280 / memsys.EDRAMRowBytes); c.Mem.PageMisses != want {
		t.Fatalf("page misses %d, want %d", c.Mem.PageMisses, want)
	}
	// Stall breakdown sums are the per-pipeline demand.
	if c.ComputeCycles <= 0 || c.MemoryCycles <= 0 {
		t.Fatalf("cycle sums %g/%g", c.ComputeCycles, c.MemoryCycles)
	}
}

func TestTelemetryWindow(t *testing.T) {
	_, n := testNode(t)
	if !IsTelemetryAddr(TelemetryBase) || IsTelemetryAddr(0x1000) {
		t.Fatal("IsTelemetryAddr")
	}
	if got := n.ReadTelemetryWord(TelemetryAddr(TelemMagicWord)); got != TelemetryMagic {
		t.Fatalf("magic = %#x", got)
	}
	if got := n.ReadTelemetryWord(TelemetryAddr(TelemStateWord)); got != uint64(Reset) {
		t.Fatalf("state = %d", got)
	}
	n.ForceReady()
	if got := n.ReadTelemetryWord(TelemetryAddr(TelemStateWord)); got != uint64(RunKernel) {
		t.Fatalf("state after boot = %d", got)
	}
	if got := n.ReadTelemetryWord(TelemetryAddr(TelemLinksWord)); got != uint64(geom.NumLinks) {
		t.Fatalf("links = %d", got)
	}
	if got := n.ReadTelemetryWord(TelemetryAddr(TelemFieldsWord)); got != uint64(scu.NumStats()) {
		t.Fatalf("fields = %d", got)
	}
	// Unmapped words (gaps and beyond the layout) read as zero.
	for _, w := range []int{4, TelemAggWord + scu.NumStats(), TelemLinkWord + geom.NumLinks*TelemLinkStride} {
		if got := n.ReadTelemetryWord(TelemetryAddr(w)); got != 0 {
			t.Fatalf("word %d = %#x, want 0", w, got)
		}
	}
	// Aggregate and per-link windows mirror the SCU counters (all zero
	// on an idle node; non-zero agreement is covered by the qdaemon
	// hwstat test over the network).
	agg := n.SCU.Stats()
	for i := 0; i < scu.NumStats(); i++ {
		if got := n.ReadTelemetryWord(TelemetryAddr(TelemAggWord + i)); got != agg.Value(i) {
			t.Fatalf("agg word %d = %d", i, got)
		}
	}
}
