// Package node assembles one QCDOC processing node: the ASIC of Figure 1
// (PPC 440 compute model, prefetching EDRAM controller and DDR SDRAM
// behind the memory model, the SCU serial communications unit, and the
// Ethernet/JTAG management endpoints) plus the external DDR SDRAM DIMM.
// A node executes node programs — Go functions standing in for the
// application binaries the real machine loads over Ethernet — under the
// booting discipline of §2.3/§3.1: a PROM-less part comes up in reset,
// receives a boot kernel by JTAG, and only then runs code.
package node

import (
	"fmt"

	"qcdoc/internal/event"
	"qcdoc/internal/geom"
	"qcdoc/internal/memsys"
	"qcdoc/internal/ppc440"
	"qcdoc/internal/scu"
)

// State is the node's lifecycle state.
type State int

const (
	// Reset: powered on, no code (there are no PROMs on QCDOC; only the
	// Ethernet/JTAG controller is alive).
	Reset State = iota
	// BootKernel: the JTAG-loaded boot kernel is running; basic hardware
	// tests possible, standard Ethernet initialized.
	BootKernel
	// RunKernel: the run kernel is resident; SCU initialized; ready for
	// applications.
	RunKernel
	// AppRunning: a user application thread is executing.
	AppRunning
	// Crashed: the node's software died (fault injection or fatal error).
	// Only the Ethernet/JTAG controller — pure hardware, alive from
	// power-on (§2.3) — still answers, which is how the host's watchdog
	// can observe the state of a node whose kernels are gone.
	Crashed
)

func (s State) String() string {
	switch s {
	case Reset:
		return "reset"
	case BootKernel:
		return "boot-kernel"
	case RunKernel:
		return "run-kernel"
	case AppRunning:
		return "app-running"
	case Crashed:
		return "crashed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Ctx is the execution context a node program receives: the simulation
// process it runs on and the node hardware it runs on.
type Ctx struct {
	P *event.Proc
	N *Node
}

// Program is a node application: the stand-in for a cross-compiled
// binary.
type Program func(ctx *Ctx)

// Node is one processing node.
type Node struct {
	Eng   *event.Engine
	Rank  int
	Coord geom.Coord
	Name  string

	Mem      *memsys.NodeMemory
	MemModel memsys.Model
	CPU      ppc440.CPU
	SCU      *scu.SCU

	state     State
	bootWords int
	appProc   *event.Proc
	appDone   bool
	appErr    error
	hung      bool   // software wedged: state looks normal, nothing progresses
	heartbeat uint64 // liveness counter the run kernel ticks; see TickHeartbeat

	// brk is the bump-allocator frontier for node program data.
	brk uint64

	// ctr is the telemetry counter block; nil until EnableCounters, and
	// every hot-path hook tests for nil so disabled telemetry costs one
	// pointer compare (see telemetry.go).
	ctr *Counters

	// Sys is the system-services slot: the run kernel installs itself
	// here so applications can reach their system-call surface.
	Sys any
}

// bootReserved is the memory reserved for kernels at the bottom of
// EDRAM.
const bootReserved = 256 << 10

// New builds a node. ddrBytes of 0 selects the default DIMM size.
func New(eng *event.Engine, rank int, coord geom.Coord, clock event.Hz, scuCfg scu.Config, ddrBytes int) *Node {
	mem := memsys.NewNodeMemory(ddrBytes)
	model := memsys.DefaultModel()
	model.Clock = clock
	n := &Node{
		Eng:      eng,
		Rank:     rank,
		Coord:    coord,
		Name:     fmt.Sprintf("node%d", rank),
		Mem:      mem,
		MemModel: model,
		CPU:      ppc440.At(clock),
		state:    Reset,
		brk:      bootReserved,
	}
	scuCfg.Clock = clock
	n.SCU = scu.New(eng, n.Name, mem, scuCfg)
	return n
}

// State returns the lifecycle state.
func (n *Node) State() State { return n.state }

// LoadBootWord models one word of boot-kernel code arriving by JTAG
// (written directly into the instruction cache, §3.1). Loading any code
// moves a reset node to the boot kernel state once started.
func (n *Node) LoadBootWord(addr uint64, w uint64) {
	n.Mem.WriteWord(addr, w)
	n.bootWords++
}

// BootWords reports how many code words have been loaded.
func (n *Node) BootWords() int { return n.bootWords }

// StartBootKernel begins executing the JTAG-loaded boot kernel.
func (n *Node) StartBootKernel() error {
	if n.state != Reset {
		return fmt.Errorf("node %s: boot kernel start in state %v", n.Name, n.state)
	}
	if n.bootWords == 0 {
		return fmt.Errorf("node %s: no boot code loaded (no PROMs on QCDOC)", n.Name)
	}
	n.state = BootKernel
	return nil
}

// StartRunKernel installs the run kernel (loaded over the standard
// Ethernet) and initializes the SCU.
func (n *Node) StartRunKernel() error {
	if n.state != BootKernel {
		return fmt.Errorf("node %s: run kernel start in state %v", n.Name, n.state)
	}
	n.state = RunKernel
	n.SCU.Start()
	return nil
}

// ForceReady skips the boot protocol: used by benchmarks and tests that
// exercise the network and application layers directly.
func (n *Node) ForceReady() {
	if n.state == Reset {
		n.bootWords++
		n.state = BootKernel
	}
	if n.state == BootKernel {
		n.state = RunKernel
		n.SCU.Start()
	}
}

// RunProgram starts the application thread (§3.2: the run kernel has a
// kernel thread and an application thread; no multitasking). The node
// returns to RunKernel state when the program finishes. A panic in the
// program is captured as the application error. A kill-panic (the
// engine unwinding the thread after Crash/Hang fault injection) records
// ErrCrashed and leaves the crashed/hung facade in place; a kill-panic
// from engine shutdown re-panics so teardown proceeds as before.
func (n *Node) RunProgram(name string, prog Program) error {
	if n.state != RunKernel {
		return fmt.Errorf("node %s: cannot run application in state %v", n.Name, n.state)
	}
	n.state = AppRunning
	n.appDone = false
	n.appErr = nil
	n.appProc = n.Eng.Spawn(n.Name+" app "+name, func(p *event.Proc) {
		defer func() {
			r := recover()
			killed := r != nil && event.IsKillPanic(r)
			switch {
			case killed && (n.state == Crashed || n.hung):
				n.appErr = ErrCrashed
			case killed:
				panic(r) // engine teardown, not an application outcome
			case r != nil:
				n.appErr = fmt.Errorf("node %s: application panic: %v", n.Name, r)
			}
			if !n.hung && n.state == AppRunning {
				n.state = RunKernel
			}
			n.appDone = true
		}()
		prog(&Ctx{P: p, N: n})
	})
	return nil
}

// ErrCrashed is the application error recorded when the node's software
// was lost to an injected crash or hang rather than finishing.
var ErrCrashed = fmt.Errorf("node: application lost to a crash fault")

// Crash models the node's software dying instantly: the application
// thread is unwound, the lifecycle state becomes Crashed, and nothing
// software-driven on this node runs again — no RPC replies, no
// heartbeat ticks. The SCU and the Ethernet/JTAG controller are
// hardware and keep answering, so neighbours' window protocols and the
// host's watchdog observe the death rather than being told about it.
func (n *Node) Crash() {
	if n.state == Crashed {
		return
	}
	n.state = Crashed
	n.hung = false
	if n.appProc != nil {
		n.appProc.Kill()
	}
}

// Hang models the nastier failure: the software wedges. The lifecycle
// state still reads AppRunning — a status peek looks healthy — but the
// application thread is gone and the heartbeat counter freezes, which
// is exactly the case the watchdog's stale-heartbeat detection exists
// for.
func (n *Node) Hang() {
	if n.state == Crashed || n.hung {
		return
	}
	n.hung = true
	if n.appProc != nil {
		n.appProc.Kill()
	}
}

// Alive reports whether the node's software is still running (neither
// crashed nor hung). Hardware — SCU, Ethernet/JTAG — stays up
// regardless.
func (n *Node) Alive() bool { return n.state != Crashed && !n.hung }

// TickHeartbeat advances the liveness counter. The run kernel calls it
// on a periodic sim-clock timer; a crashed or hung node's counter stays
// frozen, which the host watchdog reads through the telemetry window.
func (n *Node) TickHeartbeat() {
	if n.Alive() {
		n.heartbeat++
	}
}

// Heartbeat returns the liveness counter.
func (n *Node) Heartbeat() uint64 { return n.heartbeat }

// AppDone reports whether the last application finished, and its error.
func (n *Node) AppDone() (bool, error) { return n.appDone, n.appErr }

// AllocWords reserves n contiguous 64-bit words of node memory and
// returns the byte address; allocation is EDRAM-first, spilling into DDR
// exactly as §4 describes for large local volumes.
func (n *Node) AllocWords(words int) uint64 {
	addr := n.brk
	n.brk += uint64(words) * 8
	if n.brk > memsys.DDRBase+uint64(n.Mem.DDRBytes()) {
		panic(fmt.Sprintf("node %s: out of memory (brk %#x)", n.Name, n.brk))
	}
	return addr
}

// AllocLevel reports which memory the most recent allocations landed in.
func (n *Node) AllocLevel() memsys.Level { return memsys.LevelOf(n.brk - 1) }

// WriteF64 stores a float64 at a word address.
func (n *Node) WriteF64(addr uint64, v float64) {
	n.Mem.WriteWord(addr, f64bits(v))
}

// ReadF64 loads a float64 from a word address.
func (n *Node) ReadF64(addr uint64) float64 {
	return f64frombits(n.Mem.ReadWord(addr))
}

// Compute charges the node's CPU with a kernel execution.
func (n *Node) Compute(p *event.Proc, k ppc440.KernelCost) {
	n.noteKernel(k)
	n.CPU.Execute(p, k, n.MemModel)
}

// ComputeThen charges a kernel execution on the continuation tier: done
// runs when the kernel retires. Same timing as Compute, no process
// needed — for node services written as flat state machines.
func (n *Node) ComputeThen(k ppc440.KernelCost, done func()) {
	n.noteKernel(k)
	n.CPU.ExecuteThen(n.Eng, k, n.MemModel, done)
}
