package node

import "math"

func f64bits(f float64) uint64     { return math.Float64bits(f) }
func f64frombits(b uint64) float64 { return math.Float64frombits(b) }
