package scupkt

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func allKinds() []Kind {
	return []Kind{Idle, Data0, Data1, Data2, Data3, Supervisor, PartIRQ, Ack}
}

func TestKindCodewordsDistance(t *testing.T) {
	// Every pair of type codewords must be at Hamming distance >= 3, so a
	// single bit flip cannot convert one valid type into another (§2.2).
	ks := allKinds()
	for i, a := range ks {
		for _, b := range ks[i+1:] {
			d := popcount6(encodeKind(a) ^ encodeKind(b))
			if d < 3 {
				t.Errorf("kinds %v and %v at distance %d", a, b, d)
			}
		}
	}
}

func popcount6(x uint8) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range allKinds() {
		got, ok := decodeKind(encodeKind(k))
		if !ok || got != k {
			t.Errorf("round trip of %v = %v, %v", k, got, ok)
		}
	}
}

func TestDataKindSeq(t *testing.T) {
	for seq := 0; seq < 2*SeqMod; seq++ {
		k := DataKind(seq)
		got, ok := k.DataSeq()
		if !ok || got != seq%SeqMod {
			t.Errorf("DataKind(%d).DataSeq() = %d, %v", seq, got, ok)
		}
	}
	for _, k := range []Kind{Idle, Supervisor, PartIRQ, Ack} {
		if _, ok := k.DataSeq(); ok {
			t.Errorf("%v reported as data", k)
		}
	}
}

func TestWindowFitsSeqSpace(t *testing.T) {
	if WindowSize >= SeqMod {
		t.Fatalf("window %d must be < sequence space %d for unambiguous ARQ", WindowSize, SeqMod)
	}
	if WindowSize != 3 {
		t.Fatalf("window = %d; the paper specifies three in the air", WindowSize)
	}
}

func TestSingleBitHeaderFlipDetected(t *testing.T) {
	// Flipping any single bit of any valid codeword must fail decoding,
	// never silently decode as a different type.
	for _, k := range allKinds() {
		code := encodeKind(k)
		for bit := 0; bit < 6; bit++ {
			flipped := code ^ (1 << bit)
			if got, ok := decodeKind(flipped); ok {
				t.Errorf("kind %v with bit %d flipped decoded as %v", k, bit, got)
			}
		}
	}
}

func TestEncodeDecodePackets(t *testing.T) {
	cases := []Packet{
		{Kind: Idle},
		{Kind: Data0, Payload: 0xDEADBEEFCAFEF00D},
		{Kind: Data1, Payload: 0},
		{Kind: Data2, Payload: ^uint64(0)},
		{Kind: Data3, Payload: 1},
		{Kind: Supervisor, Payload: 42},
		{Kind: PartIRQ, Payload: 0xA5},
		{Kind: Ack, Payload: 0},
		{Kind: Ack, Payload: uint64(AckNak)},
		{Kind: Ack, Payload: uint64(AckSup)},
	}
	for _, want := range cases {
		buf := want.Encode(nil)
		if len(buf) != want.FrameBytes() {
			t.Errorf("%v: encoded %d bytes, FrameBytes says %d", want, len(buf), want.FrameBytes())
		}
		got, n, err := Decode(buf)
		if err != nil {
			t.Errorf("%v: decode error %v", want, err)
			continue
		}
		if n != len(buf) {
			t.Errorf("%v: consumed %d of %d", want, n, len(buf))
		}
		if got != want {
			t.Errorf("decode = %+v, want %+v", got, want)
		}
	}
}

func TestDecodeStream(t *testing.T) {
	// Several packets back to back decode in order.
	packets := []Packet{
		{Kind: Data0, Payload: 1},
		{Kind: Ack, Payload: 0},
		{Kind: Supervisor, Payload: 99},
		{Kind: PartIRQ, Payload: 7},
		{Kind: Idle},
		{Kind: Data3, Payload: 1 << 63},
	}
	var buf []byte
	for _, p := range packets {
		buf = p.Encode(buf)
	}
	for i, want := range packets {
		got, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("packet %d = %+v, want %+v", i, got, want)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes", len(buf))
	}
}

func TestDataPayloadBitFlipCaught(t *testing.T) {
	// A single bit flip anywhere in the payload trips one of the two
	// parity bits.
	p := Packet{Kind: Data0, Payload: 0x0123456789ABCDEF}
	base := p.Encode(nil)
	for bit := 0; bit < 64; bit++ {
		buf := append([]byte(nil), base...)
		byteIdx := HeaderBytes + (63-bit)/8
		buf[byteIdx] ^= 1 << (bit % 8)
		_, _, err := Decode(buf)
		if !errors.Is(err, ErrParity) {
			t.Fatalf("payload bit %d flip: err = %v, want ErrParity", bit, err)
		}
	}
}

func TestHeaderBitFlipCaught(t *testing.T) {
	p := Packet{Kind: Data2, Payload: 123456}
	base := p.Encode(nil)
	for bit := 2; bit < 8; bit++ { // type-code bits
		buf := append([]byte(nil), base...)
		buf[0] ^= 1 << bit
		_, _, err := Decode(buf)
		if !errors.Is(err, ErrHeaderCorrupt) {
			t.Fatalf("header bit %d flip: err = %v, want ErrHeaderCorrupt", bit, err)
		}
	}
	for bit := 0; bit < 2; bit++ { // parity bits
		buf := append([]byte(nil), base...)
		buf[0] ^= 1 << bit
		_, _, err := Decode(buf)
		if !errors.Is(err, ErrParity) {
			t.Fatalf("parity bit %d flip: err = %v, want ErrParity", bit, err)
		}
	}
}

func TestAnySingleBitFlipDetectedQuick(t *testing.T) {
	// Property: for random data packets and any single-bit flip of the
	// frame, Decode returns an error (never a silently wrong packet).
	f := func(payload uint64, seq uint8, bitSel uint16) bool {
		p := Packet{Kind: DataKind(int(seq)), Payload: payload}
		buf := p.Encode(nil)
		bit := int(bitSel) % (len(buf) * 8)
		buf[bit/8] ^= 1 << (bit % 8)
		_, _, err := Decode(buf)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	p := Packet{Kind: Data1, Payload: 77}
	buf := p.Encode(nil)
	for n := 1; n < len(buf); n++ {
		if _, _, err := Decode(buf[:n]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("truncated to %d: err = %v", n, err)
		}
	}
	if _, _, err := Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty: err = %v", err)
	}
}

func TestChecksumAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var tx, rx Checksum
	for i := 0; i < 1000; i++ {
		w := rng.Uint64()
		tx.Add(w)
		rx.Add(w)
	}
	if !tx.Equal(&rx) {
		t.Fatal("checksums of identical streams differ")
	}
	if tx.Count() != 1000 {
		t.Fatalf("count = %d", tx.Count())
	}
}

func TestChecksumDetectsDifferences(t *testing.T) {
	// Order sensitivity and value sensitivity.
	var a, b Checksum
	a.Add(1)
	a.Add(2)
	b.Add(2)
	b.Add(1)
	if a.Equal(&b) {
		t.Fatal("checksum insensitive to order")
	}
	var c, d Checksum
	c.Add(5)
	d.Add(6)
	if c.Equal(&d) {
		t.Fatal("checksum insensitive to value")
	}
	var e, f Checksum
	e.Add(0)
	if e.Equal(&f) {
		t.Fatal("checksum insensitive to count of zero words")
	}
}

func TestChecksumQuick(t *testing.T) {
	// Property: flipping any single word of a random stream changes the sum.
	f := func(seed int64, idxSel uint8, flip uint64) bool {
		if flip == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		n := 16
		words := make([]uint64, n)
		for i := range words {
			words[i] = rng.Uint64()
		}
		var a, b Checksum
		idx := int(idxSel) % n
		for i, w := range words {
			a.Add(w)
			if i == idx {
				w ^= flip
			}
			b.Add(w)
		}
		return !a.Equal(&b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameSizes(t *testing.T) {
	// The 72-bit data frame is what produces the paper's 1.3 GB/s
	// aggregate: 24 links x 500 Mbit/s x (64/72) = 10.67 Gbit/s = 1.33 GB/s.
	if (Packet{Kind: Data0}).FrameBits() != 72 {
		t.Fatalf("data frame = %d bits", (Packet{Kind: Data0}).FrameBits())
	}
	agg := 24.0 * 500e6 * 64.0 / 72.0 / 8.0 / 1e9 // GB/s
	if agg < 1.25 || agg > 1.40 {
		t.Fatalf("aggregate payload bandwidth %.3f GB/s, want ~1.33", agg)
	}
}
