package scupkt

import (
	"bytes"
	"testing"
)

// FuzzWireDecode drives Decode with arbitrary byte streams and checks
// the invariants the SCU link layer leans on:
//
//   - Decode never panics and never reads past the buffer;
//   - the consumed-byte count keeps the stream resynchronizable
//     (0 only with ErrTruncated, otherwise 1..MaxFrameBytes);
//   - whatever decodes cleanly survives a Packet -> Wire -> Decode
//     round trip bit-identically (re-encode/decode is the identity on
//     the valid subset of the wire format);
//   - single-bit header corruption is always detected, never
//     misinterpreted as another valid packet — the property the
//     distance-3 type code exists to provide.
func FuzzWireDecode(f *testing.F) {
	// Seed with one frame of each kind, plus truncations and junk.
	seeds := []Packet{
		{Kind: Idle},
		{Kind: Data0, Payload: 0},
		{Kind: Data1, Payload: 0xDEADBEEFCAFEF00D},
		{Kind: Data2, Payload: ^uint64(0)},
		{Kind: Data3, Payload: 1},
		{Kind: Supervisor, Payload: 0x0102030405060708},
		{Kind: PartIRQ, Payload: 0x5A},
		{Kind: Ack, Payload: uint64(AckNak | 2)},
		{Kind: Ack, Payload: uint64(AckSup)},
	}
	for _, p := range seeds {
		f.Add(p.Encode(nil))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add(seeds[1].Encode(nil)[:3])                       // truncated data frame
	f.Add(append(seeds[5].Encode(nil), seeds[7].Encode(nil)...)) // two frames back to back

	f.Fuzz(func(t *testing.T, data []byte) {
		p, n, err := Decode(data)

		if n < 0 || n > MaxFrameBytes || n > len(data) {
			t.Fatalf("Decode(%x) consumed %d of %d bytes", data, n, len(data))
		}
		if n == 0 && err != ErrTruncated {
			t.Fatalf("Decode(%x) consumed nothing with err=%v; the stream cannot advance", data, err)
		}

		// Wire.Decode must agree with the slice Decode byte for byte.
		if len(data) <= MaxFrameBytes {
			w := WireOf(data)
			wp, wn, werr := w.Decode()
			if wp != p || wn != n || werr != err {
				t.Fatalf("Wire.Decode(%x) = (%+v, %d, %v), Decode = (%+v, %d, %v)",
					data, wp, wn, werr, p, n, err)
			}
		}

		if err != nil {
			return
		}

		// Round trip: re-encoding the decoded packet reproduces the
		// consumed bytes exactly, and decoding that reproduces the packet.
		w := p.Wire()
		if w.Len() != n || w.Len() != p.FrameBytes() {
			t.Fatalf("packet %+v: decoded %d bytes but re-encodes to %d (FrameBytes %d)",
				p, n, w.Len(), p.FrameBytes())
		}
		if !bytes.Equal(w.Bytes(), data[:n]) {
			t.Fatalf("packet %+v: round trip %x != consumed %x", p, w.Bytes(), data[:n])
		}
		p2, n2, err2 := Decode(w.Bytes())
		if err2 != nil || p2 != p || n2 != n {
			t.Fatalf("re-decode of %+v: got (%+v, %d, %v)", p, p2, n2, err2)
		}

		// PartIRQ and Ack carry 8-bit payloads by construction.
		if (p.Kind == PartIRQ || p.Kind == Ack) && p.Payload > 0xFF {
			t.Fatalf("%s payload %#x exceeds 8 bits", p.Kind, p.Payload)
		}

		// Single-bit header corruption must be detected, never
		// misinterpreted. Flipping any type-code bit (header bits 7..2)
		// breaks the distance-3 codeword; flipping a parity bit (1..0)
		// mismatches the payload parity — including on Idle frames,
		// whose parity bits must be zero.
		frame := WireOf(data[:n])
		for bit := 0; bit < 8; bit++ {
			frame.FlipBit(bit)
			fp, _, ferr := frame.Decode()
			if ferr == nil {
				t.Fatalf("packet %+v: header bit %d flipped, decoded cleanly to %+v", p, bit, fp)
			}
			frame.FlipBit(bit) // restore
		}
	})
}
