// Package scupkt defines the wire format of the QCDOC Serial
// Communications Unit (§2.2): the three multiplexed packet classes
// (normal 64-bit data transfers, supervisor words, and 8-bit partition
// interrupts), acknowledgements, and the 8-bit packet header whose type
// codes are chosen so that a single bit error cannot cause a packet to be
// misinterpreted, plus the two data-parity bits the header carries and
// the per-link-end checksums compared at the end of a calculation.
//
// Normal data words carry a two-bit sequence number (encoded as four
// distinct Data type codes) supporting the "three in the air" window:
// up to three words may be unacknowledged, so sequence numbers modulo
// four disambiguate every in-flight or retransmitted word.
package scupkt

import (
	"errors"
	"fmt"
	"math/bits"
)

// Kind is the class of a packet on an SCU link. The eight kinds exactly
// fill the 3-bit payload of the [6,3,3] header code.
type Kind uint8

const (
	// Idle frames are exchanged by trained HSSL controllers when no data
	// is being transmitted.
	Idle Kind = iota
	// Data0..Data3 are normal transfers of one 64-bit word each, part of
	// a DMA-driven block transfer; the kind encodes the word's sequence
	// number modulo 4.
	Data0
	Data1
	Data2
	Data3
	// Supervisor is a single 64-bit word delivered to a register in the
	// neighbour's SCU, raising a CPU interrupt there. Supervisor packets
	// take priority over normal data and use stop-and-wait
	// acknowledgement.
	Supervisor
	// PartIRQ is an 8-bit partition-interrupt packet, forwarded by
	// receivers to all their neighbours until the whole partition has
	// seen it.
	PartIRQ
	// Ack carries link-level flow control: a plain ack is one window
	// credit; flag bits mark it as a Nak (rewind request) or a
	// supervisor ack.
	Ack

	numKinds
)

// Layout of the payload byte of an Ack packet: bits 0-1 carry the
// sequence number of the highest in-order word accepted (a cumulative
// acknowledgement), and the flag bits modify the meaning.
const (
	// AckSeqMask extracts the cumulative acknowledged sequence number.
	AckSeqMask uint8 = 0x03
	// AckNak marks a negative acknowledgement: a parity or header error
	// was detected and the sender must rewind and resend every
	// unacknowledged word ("a single bit error causes an automatic
	// resend in hardware").
	AckNak uint8 = 1 << 2
	// AckSup acknowledges a Supervisor packet rather than a data word;
	// the sequence bits are ignored.
	AckSup uint8 = 1 << 3
)

// SeqMod is the data sequence space; the window must stay strictly
// smaller.
const SeqMod = 4

// WindowSize is the paper's "three in the air" protocol: up to three
// 64-bit words may be sent before an acknowledgement is required, which
// amortizes the round-trip handshake and sustains full link bandwidth.
const WindowSize = 3

// DataKind returns the Data kind carrying sequence number seq mod 4.
//qcdoc:noalloc
func DataKind(seq int) Kind { return Data0 + Kind(seq%SeqMod) }

// DataSeq reports the sequence number of a Data kind, or false.
func (k Kind) DataSeq() (int, bool) {
	if k >= Data0 && k <= Data3 {
		return int(k - Data0), true
	}
	return 0, false
}

func (k Kind) String() string {
	switch {
	case k == Idle:
		return "idle"
	case k >= Data0 && k <= Data3:
		return fmt.Sprintf("data%d", k-Data0)
	case k == Supervisor:
		return "supervisor"
	case k == PartIRQ:
		return "partirq"
	case k == Ack:
		return "ack"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// The packet header is one byte: a six-bit type codeword plus two parity
// bits covering the data payload. Type codes come from a shortened
// [6,3,3] Hamming code, so all codewords are at pairwise Hamming distance
// >= 3 and a single flipped header bit can never turn one valid type into
// another: it is detected and answered with a Nak instead.
//
// Layout: bit 7..2 = type codeword, bit 1 = parity of payload bits 63..32,
// bit 0 = parity of payload bits 31..0.

// encodeKind maps a Kind (3 data bits) to its 6-bit codeword:
// c = [d1 d2 d3 | d1^d2 d1^d3 d2^d3].
//qcdoc:noalloc
func encodeKind(k Kind) uint8 {
	d1 := uint8(k>>2) & 1
	d2 := uint8(k>>1) & 1
	d3 := uint8(k) & 1
	return d1<<5 | d2<<4 | d3<<3 | (d1^d2)<<2 | (d1^d3)<<1 | (d2 ^ d3)
}

// decodeKind inverts encodeKind, requiring an exact codeword match.
//qcdoc:noalloc
func decodeKind(code uint8) (Kind, bool) {
	d1 := code >> 5 & 1
	d2 := code >> 4 & 1
	d3 := code >> 3 & 1
	k := Kind(d1<<2 | d2<<1 | d3)
	if encodeKind(k) != code || k >= numKinds {
		return 0, false
	}
	return k, true
}

// parityBits computes the two data-parity bits for a 64-bit payload:
// bit 1 covers the high word, bit 0 the low word.
//qcdoc:noalloc
func parityBits(payload uint64) uint8 {
	hi := uint8(bits.OnesCount32(uint32(payload>>32)) & 1)
	lo := uint8(bits.OnesCount32(uint32(payload)) & 1)
	return hi<<1 | lo
}

// Packet is one SCU packet as exchanged over an HSSL link.
type Packet struct {
	Kind    Kind
	Payload uint64 // 64-bit word for Data/Supervisor; low 8 bits for PartIRQ and Ack flags
}

// Frame sizes on the bit-serial wire, in bytes (header + payload). A
// 64-bit data word travels in a 9-byte (72-bit) frame; at 500 Mbit/s per
// link this gives the paper's aggregate payload bandwidth of about
// 1.3 GB/s over 24 links (24 x 500 Mbit/s x 64/72 / 8 = 1.33 GB/s).
const (
	HeaderBytes  = 1
	WordBytes    = 8
	DataFrame    = HeaderBytes + WordBytes // data and supervisor packets
	PartIRQFrame = HeaderBytes + 1
	AckFrame     = HeaderBytes + 1 // ack/nak carry a 1-byte flag field
	IdleFrame    = HeaderBytes
)

// MaxFrameBytes bounds every frame the SCU can put on a wire: the
// paper's 74-bit wire frame rounded up to whole bytes. Because no frame
// is ever larger, a frame fits a fixed-size value (Wire) and the whole
// simulated data path — encode, serialize, deliver, decode — can run
// without dynamic allocation, matching hardware that has none.
const MaxFrameBytes = 10

// Wire is one frame as it exists on the bit-serial link: a fixed-size
// byte array plus a length, passed **by value** through the transmit
// and receive pipelines. Value semantics are the memory model of the
// hardware registers it stands in for — handing a Wire to another layer
// copies the bits, so no layer can alias or retain another's buffer,
// and the steady-state frame path allocates nothing.
type Wire struct {
	n   uint8
	buf [MaxFrameBytes]byte
}

// WireOf builds a frame from raw bytes (tests and fault rigs). It
// panics if b exceeds MaxFrameBytes, which no legal frame does.
func WireOf(b []byte) Wire {
	var w Wire
	if len(b) > MaxFrameBytes {
		panic("scupkt: frame larger than MaxFrameBytes")
	}
	w.n = uint8(copy(w.buf[:], b))
	return w
}

// Len returns the frame's size in bytes.
func (w *Wire) Len() int { return int(w.n) }

// Bits returns the frame's size on the bit-serial link.
func (w *Wire) Bits() int { return 8 * int(w.n) }

// Bytes returns the frame's contents as a slice of the receiver's
// backing array. The slice aliases the Wire it was taken from — use it
// for inspection in place, not for retention.
func (w *Wire) Bytes() []byte { return w.buf[:w.n] }

// FlipBit inverts one bit of the frame, indexed little-endian within
// each byte and taken modulo the frame's bit length — the single-bit
// wire error of §2.2 that parity must catch.
func (w *Wire) FlipBit(bit int) {
	if w.n == 0 {
		return
	}
	bit %= int(w.n) * 8
	w.buf[bit/8] ^= 1 << (bit % 8)
}

// Decode parses the packet held in the frame. Semantics match the
// package-level Decode, with no intermediate buffer.
//qcdoc:noalloc
func (w *Wire) Decode() (Packet, int, error) {
	return Decode(w.buf[:w.n])
}

// FrameBytes returns the wire size of the packet in bytes.
//qcdoc:noalloc
func (p Packet) FrameBytes() int {
	switch {
	case p.Kind >= Data0 && p.Kind <= Data3, p.Kind == Supervisor:
		return DataFrame
	case p.Kind == PartIRQ:
		return PartIRQFrame
	case p.Kind == Ack:
		return AckFrame
	default:
		return IdleFrame
	}
}

// FrameBits returns the wire size in bits (the HSSL link is bit-serial).
func (p Packet) FrameBits() int { return 8 * p.FrameBytes() }

// Wire encodes the packet directly into a value frame — the per-word
// path of the SCU transmit engines, with no heap allocation.
//qcdoc:noalloc
func (p Packet) Wire() Wire {
	var w Wire
	var par uint8
	switch p.Kind {
	case Idle:
		// No payload, no parity.
	case PartIRQ, Ack:
		par = parityBits(p.Payload & 0xFF)
	default: // Data0..3, Supervisor
		par = parityBits(p.Payload)
	}
	w.buf[0] = encodeKind(p.Kind)<<2 | par
	w.n = HeaderBytes
	switch p.Kind {
	case Idle:
	case PartIRQ, Ack:
		w.buf[HeaderBytes] = byte(p.Payload)
		w.n = HeaderBytes + 1
	default:
		for i, shift := 0, 56; shift >= 0; i, shift = i+1, shift-8 {
			w.buf[HeaderBytes+i] = byte(p.Payload >> shift)
		}
		w.n = DataFrame
	}
	return w
}

// Encode serializes the packet, appending to dst and returning the result.
func (p Packet) Encode(dst []byte) []byte {
	w := p.Wire()
	return append(dst, w.buf[:w.n]...)
}

// Errors returned by Decode. Header and parity failures cause the
// receiver to respond with a Nak, triggering the automatic hardware
// resend.
var (
	ErrHeaderCorrupt = errors.New("scupkt: header type code corrupt")
	ErrParity        = errors.New("scupkt: data parity mismatch")
	ErrTruncated     = errors.New("scupkt: truncated frame")
)

// Decode parses one packet from the front of buf, returning the packet
// and the number of bytes consumed. On a parity failure it still reports
// the frame length so the stream can resynchronize, along with the error.
//qcdoc:noalloc
func Decode(buf []byte) (Packet, int, error) {
	if len(buf) < HeaderBytes {
		return Packet{}, 0, ErrTruncated
	}
	hdr := buf[0]
	kind, ok := decodeKind(hdr >> 2)
	if !ok {
		// The type field is corrupt; the frame length is unknowable, so the
		// link layer must resynchronize. We consume a single byte.
		return Packet{}, 1, ErrHeaderCorrupt
	}
	par := hdr & 3
	p := Packet{Kind: kind}
	n := HeaderBytes
	switch kind {
	case Idle:
		// Header only. The parity bits cover no payload and are sent as
		// zero, so a nonzero pair is a corrupted header — caught here
		// rather than ignored (found by FuzzWireDecode: without this, a
		// flipped parity bit on an idle frame decoded cleanly).
		if par != 0 {
			return p, n, ErrParity
		}
	case PartIRQ, Ack:
		if len(buf) < HeaderBytes+1 {
			return Packet{}, 0, ErrTruncated
		}
		p.Payload = uint64(buf[HeaderBytes])
		n = HeaderBytes + 1
		if parityBits(p.Payload) != par {
			return p, n, ErrParity
		}
	default: // Data0..3, Supervisor
		if len(buf) < DataFrame {
			return Packet{}, 0, ErrTruncated
		}
		var w uint64
		for i := 0; i < WordBytes; i++ {
			w = w<<8 | uint64(buf[HeaderBytes+i])
		}
		p.Payload = w
		n = DataFrame
		if parityBits(w) != par {
			return p, n, ErrParity
		}
	}
	return p, n, nil
}

// Checksum accumulates the running end-of-link checksum the paper
// describes: "checksums at each end of the link are kept, so at the
// conclusion of a calculation, these checksums can be compared" (§2.2).
// It folds each 64-bit payload into a simple order-sensitive mixing sum,
// cheap enough to be plausible hardware yet strong enough for the tests.
type Checksum struct {
	sum   uint64
	count uint64
}

// Add folds one payload word into the checksum.
//qcdoc:noalloc
func (c *Checksum) Add(payload uint64) {
	c.count++
	x := payload + c.count*0x9E3779B97F4A7C15
	x ^= x >> 29
	c.sum = c.sum*0x100000001B3 + x
}

// Sum returns the current checksum value.
func (c *Checksum) Sum() uint64 { return c.sum }

// Count returns how many words have been folded in.
func (c *Checksum) Count() uint64 { return c.count }

// Equal reports whether two link-end checksums agree.
func (c *Checksum) Equal(o *Checksum) bool {
	return c.sum == o.sum && c.count == o.count
}
