package experiments

import (
	"fmt"

	"qcdoc/internal/checkpoint"
	"qcdoc/internal/core"
	"qcdoc/internal/event"
	"qcdoc/internal/fermion"
	"qcdoc/internal/geom"
	"qcdoc/internal/hmc"
	"qcdoc/internal/hssl"
	"qcdoc/internal/lattice"
	"qcdoc/internal/machine"
	"qcdoc/internal/node"
	"qcdoc/internal/qdaemon"
	"qcdoc/internal/qmp"
	"qcdoc/internal/scu"
)

// E1Functional measures solver efficiency on the functional simulator: a
// 16-node machine (2x2x2x2 grid) with the paper's 4^4 local volume, all
// four operators, real halo traffic and global sums. Slower than the
// model (every packet simulated) but independent of it.
func E1Functional() (Table, error) {
	global := lattice.Shape4{8, 8, 8, 8}
	shape := geom.MakeShape(2, 2, 2, 2)
	t := Table{
		ID:     "E1f",
		Title:  "Functional-simulator CG efficiency, 16 nodes, 4^4 local volume",
		Header: []string{"operator", "iterations", "sim time", "Mflops/node", "efficiency", "link errors"},
		Notes: []string{
			"measured by running the distributed solver on the packet-level machine simulation",
			"16 nodes instead of the paper's 128 keeps host time reasonable; per-node behaviour is identical",
		},
	}
	gauge := lattice.NewGaugeField(global)
	gauge.Randomize(1001)

	addRow := func(name string, met core.SolveMetrics, errs uint64) {
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprint(met.Iterations), met.SimTime.String(),
			fmt.Sprintf("%.1f", met.SustainedPerNode/1e6), pct(met.Efficiency), fmt.Sprint(errs),
		})
	}

	// Wilson.
	{
		sess, err := core.NewSession(shape, global)
		if err != nil {
			return t, err
		}
		defer sess.Close()
		b := lattice.NewFermionField(global)
		b.Gaussian(1002)
		_, met, err := sess.SolveWilson(gauge, b, 0.5, fermion.Double, 1e-4, 300)
		st := sess.M.Stats()
		sess.Close()
		if err != nil {
			return t, err
		}
		addRow("wilson", met, st.ParityErrors+st.HeaderErrors)
	}
	// Clover.
	{
		sess, err := core.NewSession(shape, global)
		if err != nil {
			return t, err
		}
		defer sess.Close()
		ref := fermion.NewClover(gauge, 0.5, 1.0)
		b := lattice.NewFermionField(global)
		b.Gaussian(1003)
		_, met, err := sess.SolveClover(ref, b, fermion.Double, 1e-4, 300)
		st := sess.M.Stats()
		sess.Close()
		if err != nil {
			return t, err
		}
		addRow("clover", met, st.ParityErrors+st.HeaderErrors)
	}
	// ASQTAD.
	{
		sess, err := core.NewSession(shape, global)
		if err != nil {
			return t, err
		}
		defer sess.Close()
		ref := fermion.NewASQTAD(gauge, 0.5)
		b := lattice.NewColorField(global)
		b.Gaussian(1004)
		_, met, err := sess.SolveASQTAD(ref, b, fermion.Double, 1e-4, 600)
		st := sess.M.Stats()
		sess.Close()
		if err != nil {
			return t, err
		}
		addRow("asqtad", met, st.ParityErrors+st.HeaderErrors)
	}
	// DWF (short Ls to bound host time).
	{
		const ls = 4
		sess, err := core.NewSession(shape, global)
		if err != nil {
			return t, err
		}
		defer sess.Close()
		b := fermion.NewField5(global, ls)
		b.Gaussian(1005)
		_, met, err := sess.SolveDWF(gauge, b, 1.8, 0.1, ls, fermion.Double, 1e-3, 600)
		st := sess.M.Stats()
		sess.Close()
		if err != nil {
			return t, err
		}
		addRow(fmt.Sprintf("dwf (Ls=%d)", ls), met, st.ParityErrors+st.HeaderErrors)
	}
	return t, nil
}

// E4Functional measures the nearest-neighbour latency on the simulated
// hardware: one word and 24 words, memory to memory.
func E4Functional() (Table, error) {
	t := Table{
		ID:     "E4f",
		Title:  "Functional-simulator nearest-neighbour latency",
		Header: []string{"transfer", "measured", "paper"},
	}
	eng := event.New()
	defer eng.Shutdown()
	m := machine.Build(eng, machine.DefaultConfig(geom.MakeShape(2)))
	if err := m.Boot(); err != nil {
		return t, err
	}
	measure := func(words int) (event.Time, error) {
		var lat event.Time
		start := eng.Now()
		err := m.RunSPMD("lat", func(rank int) node.Program {
			return func(ctx *node.Ctx) {
				n := ctx.N
				if rank == 0 {
					addr := n.AllocWords(words)
					for i := 0; i < words; i++ {
						n.Mem.WriteWord(addr+8*uint64(i), uint64(i))
					}
					if _, err := n.SCU.StartSend(geom.Link{Dim: 0, Dir: geom.Fwd}, contiguous(addr, words)); err != nil {
						panic(err)
					}
				} else {
					addr := n.AllocWords(words)
					rt, err := n.SCU.StartRecv(geom.Link{Dim: 0, Dir: geom.Bwd}, contiguous(addr, words))
					if err != nil {
						panic(err)
					}
					rt.Wait(ctx.P)
					lat = rt.Finished() - start
				}
			}
		})
		return lat, err
	}
	one, err := measure(1)
	if err != nil {
		return t, err
	}
	twentyFour, err := measure(24)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows,
		[]string{"1 word", one.String(), "~600ns"},
		[]string{"24 words", twentyFour.String(), "600ns + 3.3us"},
	)
	return t, nil
}

// E5Functional measures global-sum completion time on the simulated
// machine, single vs doubled mode, on an 8-node ring.
func E5Functional() (Table, error) {
	t := Table{
		ID:     "E5f",
		Title:  "Functional-simulator global sum, 8-node ring",
		Header: []string{"mode", "measured", "hops"},
		Notes:  []string{"the simulator forwards whole 72-bit frames; real hardware cuts through after 8 bits (see E5)"},
	}
	measure := func(doubled bool) (event.Time, error) {
		eng := event.New()
		defer eng.Shutdown()
		m := machine.Build(eng, machine.DefaultConfig(geom.MakeShape(8)))
		if err := m.Boot(); err != nil {
			return 0, err
		}
		fold := geom.IdentityFold(m.Cfg.Shape)
		start := eng.Now()
		var end event.Time
		err := m.RunSPMD("gsum", func(rank int) node.Program {
			return func(ctx *node.Ctx) {
				c := qmp.New(ctx, fold)
				if doubled {
					c.GlobalSumFloat64Doubled(ctx.P, float64(rank))
				} else {
					c.GlobalSumFloat64(ctx.P, float64(rank))
				}
				if ctx.P.Now() > end {
					end = ctx.P.Now()
				}
			}
		})
		return end - start, err
	}
	single, err := measure(false)
	if err != nil {
		return t, err
	}
	doubled, err := measure(true)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows,
		[]string{"single ring", single.String(), "7"},
		[]string{"doubled", doubled.String(), "4"},
	)
	return t, nil
}

// E10 is the reproducibility verification of §4: the same job run twice
// must produce bit-identical results, with no link errors and matching
// end-of-link checksums — here as (a) a distributed CG solve on the
// machine and (b) a heatbath gauge evolution.
func E10() (Table, error) {
	t := Table{
		ID:     "E10",
		Title:  "Bit-identical re-run verification (§4)",
		Header: []string{"workload", "run 1 CRC", "run 2 CRC", "identical", "link errors", "checksums"},
	}
	// (a) Distributed solve.
	solveCRC := func() (uint32, uint64, bool, error) {
		global := lattice.Shape4{4, 4, 4, 4}
		sess, err := core.NewSession(geom.MakeShape(2, 2), global)
		if err != nil {
			return 0, 0, false, err
		}
		defer sess.Close()
		gauge := lattice.NewGaugeField(global)
		gauge.Randomize(2001)
		b := lattice.NewFermionField(global)
		b.Gaussian(2002)
		x, _, err := sess.SolveWilson(gauge, b, 0.5, fermion.Double, 1e-9, 500)
		if err != nil {
			return 0, 0, false, err
		}
		st := sess.M.Stats()
		_, csErr := sess.M.VerifyChecksums()
		crc := fermionCRC(x)
		return crc, st.ParityErrors + st.HeaderErrors, csErr == nil, nil
	}
	c1, e1, ok1, err := solveCRC()
	if err != nil {
		return t, err
	}
	c2, e2, ok2, err := solveCRC()
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{
		"distributed Wilson CG (16 nodes)",
		fmt.Sprintf("%#x", c1), fmt.Sprintf("%#x", c2),
		fmt.Sprint(c1 == c2), fmt.Sprint(e1 + e2), fmt.Sprint(ok1 && ok2),
	})
	// (b) Gauge evolution.
	evolve := func() uint32 {
		g := lattice.NewGaugeField(lattice.Shape4{4, 4, 4, 4})
		h := &hmc.Heatbath{Beta: 5.6, Seed: 2003}
		for i := 0; i < 5; i++ {
			h.Sweep(g)
		}
		return checkpoint.GaugeCRC(g)
	}
	g1, g2 := evolve(), evolve()
	t.Rows = append(t.Rows, []string{
		"heatbath evolution (5 sweeps)",
		fmt.Sprintf("%#x", g1), fmt.Sprintf("%#x", g2),
		fmt.Sprint(g1 == g2), "0", "n/a",
	})
	return t, nil
}

// E12 injects single-bit errors into mesh wires during a distributed
// solve: parity detection, automatic hardware resend, a still-correct
// answer, and matching checksums (§2.2).
func E12() (Table, error) {
	t := Table{
		ID:     "E12",
		Title:  "Single-bit link errors: detect, resend, survive (§2.2)",
		Header: []string{"quantity", "clean run", "faulty run"},
	}
	run := func(inject bool) (uint32, uint64, uint64, bool, error) {
		global := lattice.Shape4{4, 4, 4, 4}
		sess, err := core.NewSession(geom.MakeShape(2, 2), global)
		if err != nil {
			return 0, 0, 0, false, err
		}
		defer sess.Close()
		if inject {
			// Corrupt every 97th frame on a handful of wires.
			for rank := 0; rank < sess.M.NumNodes(); rank++ {
				sess.M.Wire(rank, geom.Link{Dim: 0, Dir: geom.Fwd}).SetFault(hssl.FlipBitEvery(97))
			}
		}
		gauge := lattice.NewGaugeField(global)
		gauge.Randomize(3001)
		b := lattice.NewFermionField(global)
		b.Gaussian(3002)
		x, _, err := sess.SolveWilson(gauge, b, 0.5, fermion.Double, 1e-9, 500)
		if err != nil {
			return 0, 0, 0, false, err
		}
		st := sess.M.Stats()
		_, csErr := sess.M.VerifyChecksums()
		return fermionCRC(x), st.ParityErrors + st.HeaderErrors, st.Resends, csErr == nil, nil
	}
	cleanCRC, cleanErrs, cleanResends, cleanOK, err := run(false)
	if err != nil {
		return t, err
	}
	faultCRC, faultErrs, faultResends, faultOK, err := run(true)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows,
		[]string{"solution CRC", fmt.Sprintf("%#x", cleanCRC), fmt.Sprintf("%#x", faultCRC)},
		[]string{"parity/header errors detected", fmt.Sprint(cleanErrs), fmt.Sprint(faultErrs)},
		[]string{"hardware resends", fmt.Sprint(cleanResends), fmt.Sprint(faultResends)},
		[]string{"checksum audit passed", fmt.Sprint(cleanOK), fmt.Sprint(faultOK)},
		[]string{"answers identical", "-", fmt.Sprint(cleanCRC == faultCRC)},
	)
	if cleanCRC != faultCRC {
		t.Notes = append(t.Notes, "ERROR: corrupted run diverged!")
	}
	return t, nil
}

// E13 boots a machine through the full qdaemon packet protocol and
// reports the per-node packet counts of §3.1.
func E13() (Table, error) {
	t := Table{
		ID:     "E13",
		Title:  "Boot protocol packet counts (§3.1)",
		Header: []string{"stage", "packets/node", "paper"},
	}
	eng := event.New()
	defer eng.Shutdown()
	m := machine.Build(eng, machine.DefaultConfig(geom.MakeShape(2, 2)))
	if err := m.TrainLinks(); err != nil {
		return t, err
	}
	d := qdaemon.New(eng, m)
	var bootErr error
	eng.Spawn("control", func(p *event.Proc) { bootErr = d.BootAll(p) })
	if err := eng.RunAll(); err != nil {
		return t, err
	}
	if bootErr != nil {
		return t, bootErr
	}
	t.Rows = append(t.Rows,
		[]string{"boot kernel via Ethernet/JTAG", fmt.Sprint(m.Nodes[0].BootWords()), "~100"},
		[]string{"run kernel via standard Ethernet", fmt.Sprint(d.Kernels[0].KernelPackets()), "~100"},
	)
	return t, nil
}

// E14 audits the wiring of a full 64-node motherboard hypercube: every
// node exchanges a tagged word on all 12 links.
func E14() (Table, error) {
	t := Table{
		ID:     "E14",
		Title:  "Network wiring audit: 2^6 motherboard hypercube (Figure 2/4)",
		Header: []string{"quantity", "value"},
	}
	eng := event.New()
	defer eng.Shutdown()
	m := machine.Build(eng, machine.DefaultConfig(machine.MotherboardShape()))
	if err := m.Boot(); err != nil {
		return t, err
	}
	shape := m.Cfg.Shape
	bad := 0
	err := m.RunSPMD("audit", func(rank int) node.Program {
		return func(ctx *node.Ctx) {
			n := ctx.N
			addrs := make([]uint64, geom.NumLinks)
			recvs := make([]interface{ Wait(*event.Proc) }, 0, geom.NumLinks)
			for i, l := range geom.AllLinks() {
				addrs[i] = n.AllocWords(1)
				rt, err := n.SCU.StartRecv(l, contiguous(addrs[i], 1))
				if err != nil {
					panic(err)
				}
				recvs = append(recvs, rt)
			}
			for i, l := range geom.AllLinks() {
				a := n.AllocWords(1)
				n.Mem.WriteWord(a, uint64(rank)<<8|uint64(i))
				if _, err := n.SCU.StartSend(l, contiguous(a, 1)); err != nil {
					panic(err)
				}
			}
			for i, l := range geom.AllLinks() {
				recvs[i].Wait(ctx.P)
				nb := shape.Rank(shape.Neighbor(n.Coord, l.Dim, l.Dir))
				want := uint64(nb)<<8 | uint64(geom.LinkIndex(l.Opposite()))
				if n.Mem.ReadWord(addrs[i]) != want {
					bad++
				}
			}
		}
	})
	if err != nil {
		return t, err
	}
	links, csErr := m.VerifyChecksums()
	t.Rows = append(t.Rows,
		[]string{"nodes", fmt.Sprint(m.NumNodes())},
		[]string{"uni-directional connections audited", fmt.Sprint(links)},
		[]string{"miswired", fmt.Sprint(bad)},
		[]string{"checksum audit", fmt.Sprint(csErr == nil)},
	)
	return t, nil
}

// fermionCRC fingerprints a spinor field via the checkpoint format.
func fermionCRC(f *lattice.FermionField) uint32 {
	var c crcCounter
	_ = checkpoint.WriteFermion(&c, f)
	return c.crc
}

// crcCounter is an io.Writer accumulating the checkpoint CRC.
type crcCounter struct{ crc uint32 }

func (c *crcCounter) Write(p []byte) (int, error) {
	for _, b := range p {
		c.crc = c.crc*16777619 ^ uint32(b)
	}
	return len(p), nil
}

// contiguous is a local shorthand for a contiguous DMA descriptor.
func contiguous(base uint64, words int) scu.DMADesc { return scu.Contiguous(base, words) }
