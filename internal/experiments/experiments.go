// Package experiments reproduces every quantitative table and figure of
// the paper's evaluation (§2.2 network numbers, §2.4 packaging, §4
// performance and cost). Each experiment returns a structured table;
// cmd/benchtables prints them all, the root bench_test.go wraps them as
// benchmarks, and EXPERIMENTS.md records paper-vs-measured values. The
// experiment ids match DESIGN.md's index.
package experiments

import (
	"fmt"
	"strings"

	"qcdoc/internal/cost"
	"qcdoc/internal/event"
	"qcdoc/internal/fermion"
	"qcdoc/internal/lattice"
	"qcdoc/internal/machine"
	"qcdoc/internal/memsys"
	"qcdoc/internal/perf"
	"qcdoc/internal/ppc440"
)

// Table is one experiment's result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "  %-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// E1 reproduces §4's measured solver efficiencies: 128 nodes, 4^4 local
// volume, double precision — Wilson 40%, ASQTAD 38%, clover 46.5%, plus
// the DWF forecast. Model numbers; see E1Functional for the simulated-
// machine measurement.
func E1() Table {
	grid := lattice.Shape4{4, 4, 4, 2} // 128 nodes
	paper := map[fermion.OpKind]string{
		fermion.WilsonKind: "40%",
		fermion.AsqtadKind: "38%",
		fermion.CloverKind: "46.5%",
		fermion.DWFKind:    "> clover (forecast)",
	}
	t := Table{
		ID:     "E1",
		Title:  "CG solver efficiency, 128 nodes, 4^4 local volume, double precision (§4)",
		Header: []string{"operator", "model dslash", "model CG", "paper"},
		Notes: []string{
			"Wilson/ASQTAD/clover anchors are calibration points (DESIGN.md §4); DWF, SP, DDR, scaling are predictions",
		},
	}
	for _, k := range fermion.Kinds() {
		cfg := perf.DefaultConfig(k, grid, 500*event.MHz)
		est := perf.CGIteration(cfg)
		ds := perf.DslashEfficiency(k, fermion.Double, memsys.EDRAM, 500*event.MHz)
		t.Rows = append(t.Rows, []string{k.String(), pct(ds), pct(est.Efficiency), paper[k]})
	}
	return t
}

// E2 reproduces the DDR-spill behaviour: "for still larger volumes ...
// the performance figures fall to the range of 30% of peak" (§4).
func E2() Table {
	grid := lattice.Shape4{4, 4, 4, 2}
	t := Table{
		ID:     "E2",
		Title:  "Local-volume sweep: EDRAM residency vs DDR spill (Wilson CG, §4)",
		Header: []string{"local volume", "working set", "level", "model CG eff", "paper"},
	}
	for _, lv := range []lattice.Shape4{{2, 2, 2, 2}, {4, 4, 4, 4}, {6, 6, 6, 6}, {8, 8, 8, 8}, {16, 8, 8, 8}} {
		cfg := perf.DefaultConfig(fermion.WilsonKind, grid, 500*event.MHz)
		cfg.Local = lv
		est := perf.CGIteration(cfg)
		ws := fermion.FieldBytesPerSite(fermion.WilsonKind, fermion.Double) * float64(lv.Volume())
		note := ""
		if est.Level == memsys.DDR {
			note = "~30%"
		} else if lv == (lattice.Shape4{4, 4, 4, 4}) {
			note = "40%"
		}
		t.Rows = append(t.Rows, []string{
			lv.String(), fmt.Sprintf("%.2f MB", ws/1e6), est.Level.String(), pct(est.Efficiency), note,
		})
	}
	return t
}

// E3 reproduces the precision comparison: "performance for single
// precision is slightly higher due to the decreased bandwidth to local
// memory" (§4).
func E3() Table {
	grid := lattice.Shape4{4, 4, 4, 2}
	t := Table{
		ID:     "E3",
		Title:  "Double vs single precision (§4)",
		Header: []string{"operator", "double", "single", "paper"},
	}
	for _, k := range fermion.Kinds() {
		dp := perf.CGIteration(perf.DefaultConfig(k, grid, 500*event.MHz))
		cfg := perf.DefaultConfig(k, grid, 500*event.MHz)
		cfg.Prec = fermion.Single
		sp := perf.CGIteration(cfg)
		t.Rows = append(t.Rows, []string{k.String(), pct(dp.Efficiency), pct(sp.Efficiency), "single slightly higher"})
	}
	return t
}

// E4 reproduces the latency numbers of §2.2: ~600 ns memory-to-memory
// nearest neighbour, 24 words = 600 ns + 3.3 us, against 5-10 us just to
// start an Ethernet transfer. Model values; E4Functional measures the
// simulated hardware.
func E4() Table {
	clock := 500 * event.MHz
	t := Table{
		ID:     "E4",
		Title:  "Nearest-neighbour transfer latency (§2.2)",
		Header: []string{"transfer", "model", "paper"},
	}
	t.Rows = append(t.Rows,
		[]string{"1 word memory-to-memory", perf.TransferTime(clock, 1).String(), "~600ns"},
		[]string{"24 words total", perf.TransferTime(clock, 24).String(), "600ns + 3.3us"},
		[]string{"Ethernet transfer startup", "5us - 10us", "5-10us"},
	)
	return t
}

// E5 reproduces the global-sum hop counts of §2.2:
// Nx+Ny+Nz+Nt-4 hops, halved by the doubled SCU streams.
func E5() Table {
	clock := 500 * event.MHz
	t := Table{
		ID:     "E5",
		Title:  "Global sum: hops and modelled latency (§2.2)",
		Header: []string{"4-D grid", "hops single", "hops doubled", "latency single", "latency doubled"},
		Notes: []string{
			"hop formula: sum(N_i - 1), halved to sum(N_i / 2) in doubled mode (paper's Nx/2+Ny/2+Nz/2+Nt/2)",
			"model uses the hardware's 8-bit cut-through; the functional simulator (E5 bench) forwards whole frames",
		},
	}
	for _, g := range []lattice.Shape4{{4, 4, 4, 2}, {8, 4, 4, 4}, {8, 8, 8, 8}, {16, 8, 8, 12}} {
		t.Rows = append(t.Rows, []string{
			g.String(),
			fmt.Sprint(perf.GsumHops(g, false)),
			fmt.Sprint(perf.GsumHops(g, true)),
			perf.GsumLatency(clock, g, false).String(),
			perf.GsumLatency(clock, g, true).String(),
		})
	}
	return t
}

// E6 reproduces the bandwidth table of §2.1-2.2.
func E6() Table {
	m := memsys.DefaultModel()
	t := Table{
		ID:     "E6",
		Title:  "Bandwidths at 500 MHz (§2.1-2.2)",
		Header: []string{"path", "model", "paper"},
	}
	t.Rows = append(t.Rows,
		[]string{"CPU <-> EDRAM", fmt.Sprintf("%.1f GB/s", m.BusBandwidth(memsys.EDRAM)/1e9), "8 GB/s"},
		[]string{"DDR SDRAM", fmt.Sprintf("%.1f GB/s", m.BusBandwidth(memsys.DDR)/1e9), "2.6 GB/s"},
		[]string{"SCU aggregate (24 links)", fmt.Sprintf("%.2f GB/s", perf.AggregateLinkBandwidth(500*event.MHz)/1e9), "1.3 GB/s"},
		[]string{"per link per direction", fmt.Sprintf("%.1f MB/s", perf.LinkPayloadBandwidth(500*event.MHz)/1e6), "(500 Mbit/s serial)"},
	)
	return t
}

// E7 reproduces the packaging and power hierarchy of §2.4 / Figures 3-5.
func E7() Table {
	t := Table{
		ID:     "E7",
		Title:  "Packaging, power and footprint (§2.4, Figures 3-5)",
		Header: []string{"machine", "dboards", "mboards", "racks", "power", "peak", "paper"},
	}
	rows := []struct {
		nodes int
		clock event.Hz
		paper string
	}{
		{64, 500 * event.MHz, "one motherboard, 2^6 hypercube"},
		{1024, 500 * event.MHz, "1 rack, 1 Tflops peak, <10 kW"},
		{4096, 450 * event.MHz, "4 racks, $1.6M machine"},
		{12288, 450 * event.MHz, "12 racks, 10+ Tflops, ~60 ft^2"},
	}
	for _, r := range rows {
		p := machine.PackagingFor(r.nodes, r.clock)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d nodes", r.nodes),
			fmt.Sprint(p.Daughterboards),
			fmt.Sprint(p.Motherboards),
			fmt.Sprint(p.Racks),
			fmt.Sprintf("%.1f kW", p.PowerWatts/1000),
			fmt.Sprintf("%.2f Tflops", p.PeakTeraflops),
			r.paper,
		})
	}
	return t
}

// E8 reproduces the §4 cost table.
func E8() Table {
	t := Table{
		ID:     "E8",
		Title:  "4096-node machine cost (§4, Columbia purchase orders)",
		Header: []string{"item", "dollars"},
		Notes: []string{
			fmt.Sprintf("items sum to $%.2f; the paper quotes $%.0f (a $%.2f line absorbed in prose) and $%.0f with prorated R&D",
				cost.MachineCost4096(), cost.PaperMachineTotal,
				cost.PaperMachineTotal-cost.MachineCost4096(), cost.PaperTotalWithRnD),
		},
	}
	for _, it := range cost.Breakdown4096() {
		t.Rows = append(t.Rows, []string{it.Name, fmt.Sprintf("$%.2f", it.Amount)})
	}
	t.Rows = append(t.Rows,
		[]string{"total (paper)", fmt.Sprintf("$%.2f", cost.PaperMachineTotal)},
		[]string{"prorated R&D", fmt.Sprintf("$%.2f", cost.RnDProration4096)},
		[]string{"grand total", fmt.Sprintf("$%.2f", cost.TotalWithRnD4096())},
	)
	return t
}

// E9 reproduces the price/performance figures of §4.
func E9() Table {
	t := Table{
		ID:     "E9",
		Title:  "Price/performance, 4096 nodes, 45% efficiency (§4)",
		Header: []string{"clock", "model $/Mflops", "paper"},
	}
	for _, p := range cost.Paper4096Points() {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d MHz", int64(p.Clock)/1_000_000),
			fmt.Sprintf("$%.2f", p.Dollars),
			fmt.Sprintf("$%.2f", p.PaperSays),
		})
	}
	t.Rows = append(t.Rows, []string{
		"12288 nodes @450, 10% volume discount",
		fmt.Sprintf("$%.2f", cost.Twelve288Estimate(450*event.MHz, 0.10)),
		"~$1 target",
	})
	return t
}

// E11 reproduces the hard-scaling motivation of §1: a fixed 32^3 x 64
// lattice swept from 32 to 16384 nodes.
func E11() Table {
	global := lattice.Shape4{32, 32, 32, 64}
	grids := []lattice.Shape4{
		{2, 2, 2, 4}, {4, 4, 4, 4}, {4, 4, 4, 16}, {8, 8, 8, 8}, {8, 8, 8, 16}, {8, 8, 16, 16},
	}
	pts, err := perf.HardScaling(fermion.WilsonKind, global, grids, 500*event.MHz)
	t := Table{
		ID:     "E11",
		Title:  "Hard scaling: Wilson CG on a fixed 32^3 x 64 lattice (§1)",
		Header: []string{"nodes", "local volume", "level", "efficiency", "comm fraction", "machine Gflops"},
		Notes: []string{
			"the DDR->EDRAM residency jump between 256 and 1024 nodes is the §4 spill effect in reverse",
			"8192 nodes = the paper's 4^4-local design point",
		},
	}
	if err != nil {
		t.Notes = append(t.Notes, "error: "+err.Error())
		return t
	}
	for _, p := range pts {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(p.Nodes), p.Local.String(), p.Estimate.Level.String(),
			pct(p.Estimate.Efficiency), pct(p.CommFrac), fmt.Sprintf("%.1f", p.Estimate.MachineGflop),
		})
	}
	return t
}

// E15 reproduces the DWF forecast of §4 ("we expect [domain wall
// fermions] will surpass the performance of the clover improved Wilson
// operator") with an Ls sweep showing the gauge-reuse mechanism.
func E15() Table {
	t := Table{
		ID:     "E15",
		Title:  "Domain-wall fermions vs clover (§4 forecast)",
		Header: []string{"operator", "Ls", "bytes/site-slice", "model dslash eff"},
	}
	clv := perf.DslashEfficiency(fermion.CloverKind, fermion.Double, memsys.EDRAM, 500*event.MHz)
	t.Rows = append(t.Rows, []string{"clover", "-", fmt.Sprintf("%.0f", fermion.SiteCost(fermion.CloverKind, fermion.Double, memsys.EDRAM).Bytes()), pct(clv)})
	cpu := perfCPU()
	mm := memsys.DefaultModel()
	for _, ls := range []int{4, 8, 16, 32} {
		c := fermion.DWFSiteCost(fermion.Double, memsys.EDRAM, ls)
		eff := cpu.Efficiency(c, mm)
		t.Rows = append(t.Rows, []string{"dwf", fmt.Sprint(ls), fmt.Sprintf("%.0f", c.Bytes()), pct(eff)})
	}
	t.Notes = append(t.Notes, "larger Ls amortizes gauge-field traffic (the links serve every fifth-dimension slice)")
	return t
}

// Static returns every experiment that needs no machine simulation.
func Static() []Table {
	return []Table{E1(), E2(), E3(), E4(), E5(), E6(), E7(), E8(), E9(), E11(), E15()}
}

// perfCPU returns the 500 MHz CPU model (helper for sweeps).
func perfCPU() ppc440.CPU { return ppc440.Default() }
