package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// parsePct extracts a "NN.N%" cell.
func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage cell %q", cell)
	}
	return v
}

func rowByFirstCell(t *testing.T, tab Table, name string) []string {
	t.Helper()
	for _, r := range tab.Rows {
		if r[0] == name {
			return r
		}
	}
	t.Fatalf("%s: no row %q", tab.ID, name)
	return nil
}

func TestStaticTablesWellFormed(t *testing.T) {
	for _, tab := range Static() {
		if tab.ID == "" || tab.Title == "" {
			t.Fatalf("table missing id/title: %+v", tab)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: empty", tab.ID)
		}
		for _, r := range tab.Rows {
			if len(r) != len(tab.Header) {
				t.Fatalf("%s: row width %d != header %d", tab.ID, len(r), len(tab.Header))
			}
		}
		if out := tab.Format(); !strings.Contains(out, tab.ID) {
			t.Fatalf("%s: Format lost the id", tab.ID)
		}
	}
}

func TestE1Anchors(t *testing.T) {
	tab := E1()
	cases := map[string][2]float64{
		"wilson": {39, 42},
		"asqtad": {37, 39.5},
		"clover": {45.5, 48},
	}
	for name, bounds := range cases {
		r := rowByFirstCell(t, tab, name)
		eff := parsePct(t, r[2])
		if eff < bounds[0] || eff > bounds[1] {
			t.Errorf("%s model CG = %v%%, want in [%v, %v]", name, eff, bounds[0], bounds[1])
		}
	}
	dwf := parsePct(t, rowByFirstCell(t, tab, "dwf")[2])
	clv := parsePct(t, rowByFirstCell(t, tab, "clover")[2])
	if dwf <= clv {
		t.Errorf("dwf %v%% not above clover %v%%", dwf, clv)
	}
}

func TestE2SpillRow(t *testing.T) {
	tab := E2()
	r := rowByFirstCell(t, tab, "8x8x8x8")
	if r[2] != "DDR" {
		t.Fatalf("8^4 level = %s", r[2])
	}
	if eff := parsePct(t, r[3]); eff < 27 || eff > 33 {
		t.Fatalf("8^4 efficiency %v%%, want ~30%%", eff)
	}
	small := rowByFirstCell(t, tab, "4x4x4x4")
	if small[2] != "EDRAM" {
		t.Fatal("4^4 should be EDRAM")
	}
}

func TestE5HopFormula(t *testing.T) {
	tab := E5()
	// 8x8x8x8: 28 single, 16 doubled (the paper's formulas).
	r := rowByFirstCell(t, tab, "8x8x8x8")
	if r[1] != "28" || r[2] != "16" {
		t.Fatalf("hops = %s/%s", r[1], r[2])
	}
}

func TestE9MatchesPaper(t *testing.T) {
	tab := E9()
	for _, r := range tab.Rows[:3] {
		model := strings.TrimPrefix(r[1], "$")
		paper := strings.TrimPrefix(r[2], "$")
		mv, _ := strconv.ParseFloat(model, 64)
		pv, _ := strconv.ParseFloat(paper, 64)
		if diff := mv - pv; diff > 0.005 || diff < -0.005 {
			t.Errorf("%s: $%v vs paper $%v", r[0], mv, pv)
		}
	}
}

func TestFunctionalSmall(t *testing.T) {
	// The cheap functional experiments run end to end in tests; the
	// expensive solver sweep (E1f) runs under cmd/benchtables and the
	// root benchmarks.
	if testing.Short() {
		t.Skip("functional experiments")
	}
	for _, f := range []struct {
		name string
		run  func() (Table, error)
	}{
		{"E4f", E4Functional},
		{"E5f", E5Functional},
		{"E13", E13},
		{"E16", E16},
	} {
		tab, err := f.run()
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: empty", f.name)
		}
	}
}
