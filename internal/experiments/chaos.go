package experiments

import (
	"fmt"

	"qcdoc/internal/core"
	"qcdoc/internal/event"
	"qcdoc/internal/faultplan"
	"qcdoc/internal/geom"
	"qcdoc/internal/lattice"
	"qcdoc/internal/qdaemon"
)

// E16Config is the canonical chaos scenario: an 8-node machine running
// a distributed Wilson solve while the fault plan kills a node
// mid-solve and peppers the management network. Everything — victim,
// picosecond, detection, restart — derives from faultSeed.
func E16Config(faultSeed uint64) core.ChaosConfig {
	return core.ChaosConfig{
		Shape:           geom.MakeShape(2, 2, 2),
		Global:          lattice.Shape4{4, 4, 4, 4},
		Seed:            4001,
		FaultSeed:       faultSeed,
		Mass:            0.5,
		Tol:             1e-8,
		MaxIter:         400,
		CheckpointEvery: 10,
		Heartbeat:       100 * event.Microsecond,
		Watchdog:        qdaemon.WatchdogConfig{Period: 500 * event.Microsecond, Misses: 3},
		Spec: faultplan.Spec{
			From:        2 * event.Millisecond,
			To:          10 * event.Millisecond,
			NodeCrashes: 1,
			NetDrops:    2,
			NetDups:     1,
			LinkBursts:  1,
		},
	}
}

// E16 survives a node death mid-solve: deterministic fault injection,
// watchdog detection over the Ethernet/JTAG side network, daughterboard
// isolation, checkpoint restore on a repartitioned machine, and
// re-convergence — run twice from the same fault seed to prove the
// whole recovery timeline is bit-reproducible (DESIGN.md §12).
func E16() (Table, error) {
	t := Table{
		ID:     "E16",
		Title:  "Chaos: survive a node death mid-solve (DESIGN.md §12)",
		Header: []string{"quantity", "run 1", "run 2", "identical"},
	}
	run := func() (*core.ChaosOutcome, error) {
		return core.RunChaosWilson(E16Config(16))
	}
	o1, err := run()
	if err != nil {
		return t, err
	}
	o2, err := run()
	if err != nil {
		return t, err
	}
	if len(o1.Attempts) < 2 || !o1.Attempts[0].Aborted {
		return t, fmt.Errorf("E16: no recovery happened: %+v", o1.Attempts)
	}
	first := o1.Attempts[0]
	last := o1.Attempts[len(o1.Attempts)-1]
	f2 := o2.Attempts[0]
	same := func(a, b any) string { return fmt.Sprint(a == b) }
	t.Rows = append(t.Rows,
		[]string{"attempts (restarts + final)",
			fmt.Sprint(len(o1.Attempts)), fmt.Sprint(len(o2.Attempts)),
			same(len(o1.Attempts), len(o2.Attempts))},
		[]string{"node death detected",
			first.Failure.String(), f2.Failure.String(), same(first.Failure, f2.Failure)},
		[]string{"detect latency",
			fmt.Sprint(first.Failure.DetectLatency), fmt.Sprint(f2.Failure.DetectLatency),
			same(first.Failure.DetectLatency, f2.Failure.DetectLatency)},
		[]string{"partition after isolation",
			fmt.Sprintf("%d nodes", last.Nodes), fmt.Sprintf("%d nodes", o2.Attempts[len(o2.Attempts)-1].Nodes),
			same(last.Nodes, o2.Attempts[len(o2.Attempts)-1].Nodes)},
		[]string{"restored CG iteration",
			fmt.Sprint(last.RestoredIter), fmt.Sprint(o2.Attempts[len(o2.Attempts)-1].RestoredIter),
			same(last.RestoredIter, o2.Attempts[len(o2.Attempts)-1].RestoredIter)},
		[]string{"converged / residual",
			fmt.Sprintf("%v / %.2g", o1.Converged, o1.RelResidual),
			fmt.Sprintf("%v / %.2g", o2.Converged, o2.RelResidual),
			same(o1.RelResidual, o2.RelResidual)},
		[]string{"solution CRC",
			fmt.Sprintf("%#x", o1.SolutionCRC), fmt.Sprintf("%#x", o2.SolutionCRC),
			same(o1.SolutionCRC, o2.SolutionCRC)},
		[]string{"determinism digest",
			fmt.Sprintf("%#x", o1.Digest), fmt.Sprintf("%#x", o2.Digest),
			same(o1.Digest, o2.Digest)},
	)
	if o1.Digest != o2.Digest {
		t.Notes = append(t.Notes, "ERROR: same fault seed, different recovery timelines!")
	}
	return t, nil
}
