package ethjtag

import (
	"errors"
	"testing"

	"qcdoc/internal/event"
)

func TestAddressing(t *testing.T) {
	if NodeEthAddr(0) == NodeJTAGAddr(0) {
		t.Fatal("the two per-ASIC connections must have distinct addresses")
	}
	if NodeEthAddr(1) != NodeAddrBase+2 {
		t.Fatalf("addr = %#x", NodeEthAddr(1))
	}
}

func TestPointToPoint(t *testing.T) {
	eng := event.New()
	defer eng.Shutdown()
	nw := NewNetwork(eng)
	a := nw.Attach(10, HostEthernetBps)
	b := nw.Attach(20, NodeEthernetBps)
	var got Packet
	var at event.Time
	eng.SpawnDaemon("rx", func(p *event.Proc) {
		for {
			got = b.Recv(p)
			at = p.Now()
		}
	})
	if err := a.Send(Packet{Dst: 20, Port: PortRPC, Payload: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "hello" || got.Src != 10 || got.Port != PortRPC {
		t.Fatalf("got %+v", got)
	}
	// (5+54) bytes at 1 Gbit/s = 472 ns serialization + 10 us latency.
	want := 472*event.Nanosecond + 10*event.Microsecond
	if at != want {
		t.Fatalf("arrived at %v, want %v", at, want)
	}
}

func TestSerializationAtLineRate(t *testing.T) {
	// Two packets from a 100 Mbit node port serialize back to back.
	eng := event.New()
	defer eng.Shutdown()
	nw := NewNetwork(eng)
	a := nw.Attach(1, NodeEthernetBps)
	b := nw.Attach(2, HostEthernetBps)
	var times []event.Time
	eng.SpawnDaemon("rx", func(p *event.Proc) {
		for {
			b.Recv(p)
			times = append(times, p.Now())
		}
	})
	payload := make([]byte, 446) // 500 bytes framed = 40 us at 100 Mbit
	a.Send(Packet{Dst: 2, Payload: payload})
	a.Send(Packet{Dst: 2, Payload: payload})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Fatalf("%d packets", len(times))
	}
	if d := times[1] - times[0]; d != 40*event.Microsecond {
		t.Fatalf("inter-arrival %v, want 40us", d)
	}
}

func TestBroadcast(t *testing.T) {
	eng := event.New()
	defer eng.Shutdown()
	nw := NewNetwork(eng)
	h := nw.Attach(HostAddr, HostEthernetBps)
	count := 0
	for i := 0; i < 4; i++ {
		port := nw.Attach(NodeEthAddr(i), NodeEthernetBps)
		eng.SpawnDaemon("rx", func(p *event.Proc) {
			for {
				port.Recv(p)
				count++
			}
		})
	}
	h.Send(Packet{Dst: Broadcast, Payload: []byte("boot?")})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Fatalf("broadcast reached %d of 4", count)
	}
}

func TestNoRoute(t *testing.T) {
	eng := event.New()
	defer eng.Shutdown()
	nw := NewNetwork(eng)
	a := nw.Attach(1, HostEthernetBps)
	if err := a.Send(Packet{Dst: 99}); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v", err)
	}
	if nw.Dropped != 1 {
		t.Fatal("drop not counted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate attach not rejected")
		}
	}()
	nw.Attach(1, HostEthernetBps)
}

func TestJTAGEncodeDecode(t *testing.T) {
	b := EncodeJTAG(OpReadWord, 0x1234, 0xBEEF)
	op, addr, data, err := DecodeJTAG(b)
	if err != nil || op != OpReadWord || addr != 0x1234 || data != 0xBEEF {
		t.Fatalf("round trip: %v %v %v %v", op, addr, data, err)
	}
	if _, _, _, err := DecodeJTAG(b[:10]); err == nil {
		t.Fatal("short command accepted")
	}
}

// fakeTarget is a minimal chip for controller tests.
type fakeTarget struct {
	mem     map[uint64]uint64
	boot    int
	started bool
}

func (f *fakeTarget) ReadWord(a uint64) uint64     { return f.mem[a] }
func (f *fakeTarget) WriteWord(a uint64, w uint64) { f.mem[a] = w }
func (f *fakeTarget) LoadBootWord(a uint64, w uint64) {
	f.mem[a] = w
	f.boot++
}
func (f *fakeTarget) StartBootKernel() error {
	if f.boot == 0 {
		return errors.New("no code")
	}
	f.started = true
	return nil
}
func (f *fakeTarget) StateCode() uint64 {
	if f.started {
		return 1
	}
	return 0
}

func TestJTAGControllerProtocol(t *testing.T) {
	eng := event.New()
	defer eng.Shutdown()
	nw := NewNetwork(eng)
	host := nw.Attach(HostAddr, HostEthernetBps)
	jp := nw.Attach(NodeJTAGAddr(0), NodeEthernetBps)
	tgt := &fakeTarget{mem: map[uint64]uint64{}}
	ctl := &JTAGController{Port: jp, Target: tgt}
	ctl.Start(eng)

	var replies []Packet
	done := make(chan struct{})
	_ = done
	eng.Spawn("host", func(p *event.Proc) {
		send := func(op JTAGOp, addr, data uint64) Packet {
			host.Send(Packet{Dst: NodeJTAGAddr(0), Port: PortJTAG, Payload: EncodeJTAG(op, addr, data)})
			return host.Recv(p)
		}
		// Starting with no code fails.
		r := send(OpStartBoot, 0, 0)
		replies = append(replies, r)
		// Load 3 words, start, peek one back, check status.
		send(OpLoadBoot, 0, 111)
		send(OpLoadBoot, 8, 222)
		send(OpLoadBoot, 16, 333)
		replies = append(replies, send(OpStartBoot, 0, 0))
		replies = append(replies, send(OpReadWord, 8, 0))
		replies = append(replies, send(OpStatus, 0, 0))
		// Non-JTAG packets to the JTAG port are ignored (it answers only
		// JTAG UDP).
		host.Send(Packet{Dst: NodeJTAGAddr(0), Port: PortRPC, Payload: []byte("ping")})
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(replies) != 4 {
		t.Fatalf("%d replies", len(replies))
	}
	if _, _, code, _ := DecodeJTAG(replies[0].Payload); code != 1 {
		t.Fatal("premature boot not refused")
	}
	if _, _, code, _ := DecodeJTAG(replies[1].Payload); code != 0 {
		t.Fatal("boot failed after load")
	}
	if _, addr, data, _ := DecodeJTAG(replies[2].Payload); addr != 8 || data != 222 {
		t.Fatalf("peek = %v @ %v", data, addr)
	}
	if _, _, state, _ := DecodeJTAG(replies[3].Payload); state != 1 {
		t.Fatal("status wrong")
	}
	if !tgt.started || tgt.boot != 3 {
		t.Fatalf("target state: %+v", tgt)
	}
}
