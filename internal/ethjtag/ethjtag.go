// Package ethjtag models QCDOC's management plane (§2.3, Figure 2's
// green network): the standard Ethernet that connects every node (via
// the daughterboard and motherboard 5-port hubs) to the host and disks,
// and the second, software-free Ethernet/JTAG path — circuitry that
// decodes UDP packets carrying JTAG commands and drives the ASIC's JTAG
// controller directly, so code can be loaded into a PROM-less node and a
// failing node can be probed even when no software runs on it.
package ethjtag

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"qcdoc/internal/event"
)

// Addr is an Ethernet endpoint address.
type Addr uint32

// Well-known addresses.
const (
	// Broadcast delivers to every attached port except the sender.
	Broadcast Addr = 0xFFFFFFFF
	// HostAddr is the SMP host.
	HostAddr Addr = 1
	// NodeAddrBase: node rank r has Ethernet address NodeAddrBase+2r and
	// JTAG address NodeAddrBase+2r+1 (two connections per ASIC, §2.3).
	NodeAddrBase Addr = 0x1000
)

// NodeEthAddr returns the standard-Ethernet address of node rank r.
func NodeEthAddr(rank int) Addr { return NodeAddrBase + Addr(2*rank) }

// NodeJTAGAddr returns the Ethernet/JTAG address of node rank r.
func NodeJTAGAddr(rank int) Addr { return NodeAddrBase + Addr(2*rank) + 1 }

// UDP ports of the protocols riding the management network.
const (
	PortJTAG uint16 = 0x5A5A // Ethernet/JTAG controller
	PortBoot uint16 = 69     // run-kernel load
	PortRPC  uint16 = 111    // host <-> kernel RPC (§3.1)
	PortNFS  uint16 = 2049   // kernel NFS shim (§3.2)
)

// Packet is one UDP datagram on the management network.
type Packet struct {
	Src, Dst Addr
	Port     uint16
	Payload  []byte
}

// Link speeds (§2.3, §3.1).
const (
	NodeEthernetBps = 100_000_000   // 100 Mbit node controllers
	HostEthernetBps = 1_000_000_000 // Gigabit host links
)

// frameOverheadBytes approximates Ethernet+IP+UDP framing.
const frameOverheadBytes = 54

// FaultVerdict is a fault injector's decision about one packet.
type FaultVerdict int

const (
	// FaultNone delivers the packet normally.
	FaultNone FaultVerdict = iota
	// FaultDrop loses the packet in the switch fabric: it was
	// serialized (the sender paid the line time) but never arrives.
	FaultDrop
	// FaultDup delivers the packet twice — the hub-retransmit glitch
	// that makes at-least-once protocols earn their dedup logic.
	FaultDup
	// FaultStall delays delivery by the network's Stall latency on top
	// of the normal switch traversal — a congested or degraded host-side
	// path (the NFS server fighting the RAID for its disks, §3.2/§4).
	FaultStall
)

// FaultFunc inspects a packet at launch (after serialization timing is
// charged, before delivery is scheduled) and returns a verdict. It must
// be deterministic in packet order: the fault plan derives decisions
// from a counted stream, never from wall-clock or map iteration.
type FaultFunc func(pkt *Packet) FaultVerdict

// Network is the switched management Ethernet: a tree of 5-port hubs in
// hardware, modelled as a store-and-forward switch with per-port
// serialization and a fixed traversal latency.
//
// Under a sharded cluster the switch itself lives on the network's
// engine (the host shard): every packet serializes on its sender's
// shard, hops to the switch at the end of serialization, passes the
// fault injector there — serially, so the counted fault stream stays
// deterministic — and hops again to its destination port's shard at
// the arrival time. Both hops ride the cluster mailboxes; both exceed
// the lookahead by construction (the smallest frame's line time is
// 432 ns at 1 Gbit, and the switch latency is 10 us).
type Network struct {
	eng     *event.Engine
	ports   map[Addr]*Port
	addrs   []Addr // attached addresses in ascending order, for deterministic broadcast
	Latency event.Time
	Dropped uint64 // packets to unknown destinations (updated atomically)

	// Fault, when set, judges every packet entering the switch; see
	// FaultFunc. Drop, duplication, and stall counts are kept for
	// telemetry.
	Fault           FaultFunc
	FaultDropped    uint64
	FaultDuplicated uint64
	FaultStalled    uint64
	// Stall is the extra delivery delay a FaultStall verdict adds. Only
	// the fault injector consults it; zero with a verdict of FaultStall
	// degrades to normal delivery.
	Stall event.Time
}

// NewNetwork creates the management network.
func NewNetwork(eng *event.Engine) *Network {
	return &Network{eng: eng, ports: map[Addr]*Port{}, Latency: 10 * event.Microsecond}
}

// Now is the switch's simulation clock — fault injectors windowing on
// sim time read it from inside the Fault hook, where they already run
// serially on the switch's shard.
func (n *Network) Now() event.Time { return n.eng.Now() }

// Port is one endpoint. All of its state — serializer, queues, pend
// ring, counters — belongs to the shard engine it was attached on.
type Port struct {
	net       *Network
	eng       *event.Engine
	addr      Addr
	bps       int64
	rx        *event.Queue[Packet]
	handler   func(Packet) // continuation-tier receiver; bypasses rx when set
	busyUntil event.Time
	TxPackets uint64
	RxPackets uint64

	// pend holds delivered packets awaiting their deferred handler event,
	// a reusable ring (see deliver). Unlike an hssl wire, a port has many
	// senders, so the Send -> arrival hop cannot share a ring — but the
	// deliver -> handler hop is enqueued in deliver order and each event
	// consumes exactly one packet, so a FIFO ring is exact there.
	pend     []Packet
	pendHead int
	pendLen  int
}

// HandleEvent runs the deferred handler hand-off for the oldest pending
// packet. It implements event.Handler and is not meant to be called
// directly.
func (p *Port) HandleEvent(uint64) {
	pkt := p.pend[p.pendHead]
	p.pend[p.pendHead] = Packet{}
	p.pendHead = (p.pendHead + 1) % len(p.pend)
	p.pendLen--
	p.handler(pkt)
}

func (p *Port) pushPend(pkt Packet) {
	if p.pendLen == len(p.pend) {
		grown := make([]Packet, max(4, 2*len(p.pend)))
		for i := 0; i < p.pendLen; i++ {
			grown[i] = p.pend[(p.pendHead+i)%len(p.pend)]
		}
		p.pend = grown
		p.pendHead = 0
	}
	p.pend[(p.pendHead+p.pendLen)%len(p.pend)] = pkt
	p.pendLen++
}

// Attach adds an endpoint with the given line rate in bits/second, on
// the network's own (host) shard.
func (n *Network) Attach(addr Addr, bps int64) *Port {
	return n.AttachOn(n.eng, addr, bps)
}

// AttachOn adds an endpoint whose state lives on the given shard
// engine — the port of a node assigned to that shard. Setup-time only:
// the port table is read-only once the simulation runs.
func (n *Network) AttachOn(eng *event.Engine, addr Addr, bps int64) *Port {
	if _, dup := n.ports[addr]; dup {
		panic(fmt.Sprintf("ethjtag: duplicate address %#x", addr))
	}
	p := &Port{
		net:  n,
		eng:  eng,
		addr: addr,
		bps:  bps,
		rx:   event.NewQueue[Packet](eng, fmt.Sprintf("eth %#x", addr)),
	}
	n.ports[addr] = p
	i := sort.Search(len(n.addrs), func(i int) bool { return n.addrs[i] >= addr })
	n.addrs = append(n.addrs, 0)
	copy(n.addrs[i+1:], n.addrs[i:])
	n.addrs[i] = addr
	return p
}

// ErrNoRoute is returned for packets to unattached addresses.
var ErrNoRoute = errors.New("ethjtag: no route to destination")

// Send launches a packet; it serializes at the port's line rate, enters
// the switch, and arrives after the switch latency. Broadcast fans out
// to every other port. Unroutable destinations are rejected here,
// synchronously (the port table is static after setup).
func (p *Port) Send(pkt Packet) error {
	pkt.Src = p.addr
	if pkt.Dst != Broadcast {
		if _, ok := p.net.ports[pkt.Dst]; !ok {
			atomic.AddUint64(&p.net.Dropped, 1)
			return fmt.Errorf("%w: %#x", ErrNoRoute, pkt.Dst)
		}
	}
	bits := int64(len(pkt.Payload)+frameOverheadBytes) * 8
	ser := event.Time(float64(bits) / float64(p.bps) * 1e12)
	start := p.eng.Now()
	if p.busyUntil > start {
		start = p.busyUntil
	}
	p.busyUntil = start + ser
	payload := append([]byte(nil), pkt.Payload...)
	pkt.Payload = payload
	p.TxPackets++
	// The frame enters the switch when its last bit leaves the port —
	// at least one full serialization after now, which comfortably
	// exceeds the cluster lookahead, so the cross-shard hop never clamps.
	net := p.net
	p.eng.CrossAt(net.eng, p.busyUntil, func() { net.route(pkt) })
	return nil
}

// route carries one packet through the switch fabric: the fault
// injector judges it (serially, on the switch's shard, so a counted
// fault stream sees one deterministic packet order), then it crosses to
// its destination port's shard at the arrival time.
func (n *Network) route(pkt Packet) {
	verdict := FaultNone
	if n.Fault != nil {
		verdict = n.Fault(&pkt)
	}
	if verdict == FaultDrop {
		// The line time was spent; the switch fabric ate the frame.
		n.FaultDropped++
		return
	}
	if verdict == FaultDup {
		n.FaultDuplicated++
	}
	arrive := n.eng.Now() + n.Latency
	if verdict == FaultStall {
		// The frame is held in the degraded path and delivered late;
		// adding delay keeps the cross-shard hop above the lookahead
		// bound (the normal arrival already exceeds it).
		n.FaultStalled++
		arrive += n.Stall
	}
	if pkt.Dst == Broadcast {
		// Fan out in address order, not map order: delivery events at
		// equal times dispatch in scheduling order, so a map-ordered
		// broadcast would reorder the downstream event stream from run
		// to run (maprange enforces this; DESIGN.md §11).
		for _, addr := range n.addrs {
			if addr == pkt.Src {
				continue
			}
			dst := n.ports[addr]
			// Clone per destination: every receiver's shard owns its copy
			// outright. A single shared backing array would let one
			// receiver's mutation bleed into the others' payloads.
			cp := pkt
			cp.Payload = append([]byte(nil), pkt.Payload...)
			n.eng.CrossAt(dst.eng, arrive, func() { dst.deliver(cp) })
		}
		return
	}
	dst := n.ports[pkt.Dst]
	//qcdoclint:crossalias-ok ownership transfer: Send cloned the payload and the duplicate below gets its own clone, so this closure is the packet's sole owner
	n.eng.CrossAt(dst.eng, arrive, func() { dst.deliver(pkt) })
	if verdict == FaultDup {
		// The duplicate needs its own backing array — both deliveries
		// land on the same port, and a handler mutating the first
		// arrival's payload must not corrupt the second.
		dup := pkt
		dup.Payload = append([]byte(nil), pkt.Payload...)
		n.eng.CrossAt(dst.eng, arrive, func() { dst.deliver(dup) })
	}
}

func (p *Port) deliver(pkt Packet) {
	p.RxPackets++
	if p.handler != nil {
		// One-event deferral, matching the Put -> gate-wake hop a
		// coroutine receiver takes, so event ordering is tier-invariant.
		// The packet parks in the pend ring rather than a fresh closure.
		p.pushPend(pkt)
		p.eng.AtHandler(p.eng.Now(), p, 0)
		return
	}
	p.rx.Put(pkt)
}

// OnPacket attaches a continuation-tier receiver: every arriving packet
// is handed to fn at its arrival time, with no receiver process or queue
// in between. Packets already queued drain into fn in arrival order, in
// one event at the current time. Attaching a handler replaces Recv; a
// port has one receiver, on one tier or the other.
func (p *Port) OnPacket(fn func(Packet)) {
	p.handler = fn
	if p.rx.Len() == 0 {
		return
	}
	p.eng.At(p.eng.Now(), func() {
		for {
			pkt, ok := p.rx.TryGet()
			if !ok {
				return
			}
			fn(pkt)
		}
	})
}

// Recv blocks until a packet arrives.
func (p *Port) Recv(proc *event.Proc) Packet { return p.rx.Get(proc) }

// RecvTimeout blocks until a packet arrives or d elapses, reporting
// whether a packet was returned. The qdaemon's retry machinery is built
// on this: a lost reply surfaces as a timeout instead of a forever-hang.
func (p *Port) RecvTimeout(proc *event.Proc, d event.Time) (Packet, bool) {
	return p.rx.GetTimeout(proc, d)
}

// TryRecv returns a packet if one is queued.
func (p *Port) TryRecv() (Packet, bool) { return p.rx.TryGet() }

// Addr returns the port's address.
func (p *Port) Addr() Addr { return p.addr }

// --- Ethernet/JTAG controller -------------------------------------------

// JTAGOp is a JTAG command carried in a UDP payload.
type JTAGOp byte

const (
	// OpLoadBoot writes one word of boot-kernel code (into the
	// instruction cache of the real chip; into reserved low memory
	// here).
	OpLoadBoot JTAGOp = iota + 1
	// OpStartBoot releases the CPU into the loaded boot kernel.
	OpStartBoot
	// OpWriteWord pokes node memory (RISCWatch-style debugging).
	OpWriteWord
	// OpReadWord peeks node memory; the reply carries the data.
	OpReadWord
	// OpStatus reads the node's lifecycle state.
	OpStatus
)

// JTAG command payload: [op:1][addr:8][data:8] big-endian.
const jtagCmdLen = 17

// EncodeJTAG builds a command payload.
func EncodeJTAG(op JTAGOp, addr, data uint64) []byte {
	buf := make([]byte, jtagCmdLen)
	buf[0] = byte(op)
	binary.BigEndian.PutUint64(buf[1:9], addr)
	binary.BigEndian.PutUint64(buf[9:17], data)
	return buf
}

// DecodeJTAG parses a command payload.
func DecodeJTAG(b []byte) (op JTAGOp, addr, data uint64, err error) {
	if len(b) < jtagCmdLen {
		return 0, 0, 0, errors.New("ethjtag: short JTAG command")
	}
	return JTAGOp(b[0]), binary.BigEndian.Uint64(b[1:9]), binary.BigEndian.Uint64(b[9:17]), nil
}

// JTAGTarget is the chip-side surface the controller drives: raw memory,
// the boot loader, and the reset controls. It requires no software on
// the node (§2.3: "requires no software to do the UDP packet decoding").
type JTAGTarget interface {
	ReadWord(addr uint64) uint64
	WriteWord(addr uint64, w uint64)
	LoadBootWord(addr uint64, w uint64)
	StartBootKernel() error
	StateCode() uint64
}

// JTAGController serves JTAG-over-UDP on a port. It is pure hardware —
// combinational packet decode, alive from power-on — so it runs on the
// engine's continuation tier: every machine has one per node, and none
// of them costs a goroutine.
type JTAGController struct {
	Port   *Port
	Target JTAGTarget
	Served uint64
}

// Start attaches the controller to its port.
func (c *JTAGController) Start(eng *event.Engine) {
	c.Port.OnPacket(c.serve)
}

// serve answers one packet, in its arrival event.
func (c *JTAGController) serve(pkt Packet) {
	if pkt.Port != PortJTAG {
		return // the JTAG connection answers only JTAG UDP (§2.3)
	}
	c.Served++
	op, addr, data, err := DecodeJTAG(pkt.Payload)
	reply := Packet{Dst: pkt.Src, Port: PortJTAG}
	if err != nil {
		reply.Payload = EncodeJTAG(0, 0, ^uint64(0))
		_ = c.Port.Send(reply)
		return
	}
	switch op {
	case OpLoadBoot:
		c.Target.LoadBootWord(addr, data)
		reply.Payload = EncodeJTAG(op, addr, 0)
	case OpStartBoot:
		var code uint64
		if err := c.Target.StartBootKernel(); err != nil {
			code = 1
		}
		reply.Payload = EncodeJTAG(op, 0, code)
	case OpWriteWord:
		c.Target.WriteWord(addr, data)
		reply.Payload = EncodeJTAG(op, addr, 0)
	case OpReadWord:
		reply.Payload = EncodeJTAG(op, addr, c.Target.ReadWord(addr))
	case OpStatus:
		reply.Payload = EncodeJTAG(op, 0, c.Target.StateCode())
	default:
		reply.Payload = EncodeJTAG(0, 0, ^uint64(0))
	}
	_ = c.Port.Send(reply)
}
