// Fixture for the callgraph summaries: one function per summary bit,
// laundering chains, and the mutual-recursion pair that pins fixpoint
// termination.
package cg

import (
	"hash/fnv"
	"math/rand"
	"unsafe"

	"event"
	"telemetry"
)

// --- direct seeds ---

func schedulesDirect(eng *event.Engine) {
	eng.At(0, func() {})
}

func emitsDirect(emit telemetry.EmitFunc) {
	emit("rows", 1)
}

func digestsDirect(data []byte) uint64 {
	h := fnv.New64a()
	h.Write(data)
	return h.Sum64()
}

type sink struct{ out []int }

func (s *sink) appendsDirect(v int) {
	s.out = append(s.out, v)
}

func returnsNondetDirect() int {
	return rand.Int()
}

func laundersDirect(p *int) uintptr {
	return uintptr(unsafe.Pointer(p))
}

// --- one-hop laundering: the helper carries the effect ---

func schedulesViaHelper(eng *event.Engine) {
	schedulesDirect(eng)
}

func emitsViaHelper(emit telemetry.EmitFunc) {
	emitsDirect(emit)
}

func returnsNondetViaHelper() int {
	return returnsNondetDirect()
}

// --- parameter flow ---

type holder struct{ p *int }

// retainsByField stores its argument into the receiver.
func (h *holder) retainsByField(p *int) {
	h.p = p
}

// newHolder launders its argument through a returned composite.
func newHolder(p *int) *holder {
	return &holder{p: p}
}

// retainsViaCallee forwards its argument to a retaining callee.
func retainsViaCallee(h *holder, p *int) {
	h.retainsByField(p)
}

// paramToSink passes its argument into a digest.
func paramToSink(data []byte) {
	h := fnv.New64a()
	h.Write(data)
}

// paramToSinkViaCallee forwards its argument to a sinking callee.
func paramToSinkViaCallee(data []byte) {
	paramToSink(data)
}

// cleanHelper has no effects at all.
func cleanHelper(x int) int { return x + 1 }

// --- mutual recursion: the fixpoint must terminate and both ends must
// inherit the scheduling bit ---

func mutualA(eng *event.Engine, n int) {
	if n == 0 {
		eng.At(0, func() {})
		return
	}
	mutualB(eng, n-1)
}

func mutualB(eng *event.Engine, n int) {
	if n == 0 {
		return
	}
	mutualA(eng, n-1)
}

// storedLit retains its parameter by capturing it in a closure that is
// handed away rather than invoked.
func storedLit(eng *event.Engine, p *int) {
	eng.At(0, func() { _ = *p })
}
