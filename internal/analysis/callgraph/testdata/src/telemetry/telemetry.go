// Package telemetry is a minimal stand-in for qcdoc/internal/telemetry.
package telemetry

// EmitFunc receives one snapshot row.
type EmitFunc func(name string, value float64)

// HistEmitFunc receives one histogram row.
type HistEmitFunc func(name string, snap int)

// Histogram is the mutable sample sink.
type Histogram struct{}

func (h *Histogram) Record(v uint64) {}
