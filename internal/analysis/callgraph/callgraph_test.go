package callgraph

import (
	"go/types"
	"testing"

	"qcdoc/internal/analysis"
	"qcdoc/internal/analysis/load"
)

// loadFixture type-checks testdata/src/cg and returns a Pass plus a
// name->*types.Func index over its declarations.
func loadFixture(t *testing.T) (*analysis.Pass, map[string]*types.Func) {
	t.Helper()
	ctx := load.NewContext("testdata/src")
	pkg, err := ctx.LoadDir("testdata/src/cg", "cg")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	pass := &analysis.Pass{
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	return pass, nil
}

func fnByName(t *testing.T, g *Graph, name string) *types.Func {
	t.Helper()
	for fn := range g.Decls {
		if fn.Name() == name {
			return fn
		}
	}
	t.Fatalf("fixture function %s not found", name)
	return nil
}

func TestSummaryFlags(t *testing.T) {
	pass, _ := loadFixture(t)
	g := Build(pass)

	cases := []struct {
		fn   string
		want Flags
	}{
		{"schedulesDirect", Schedules},
		{"emitsDirect", EmitsTelemetry},
		{"digestsDirect", WritesDigest},
		{"appendsDirect", OrderedAppend},
		{"returnsNondetDirect", ReturnsNondet},
		{"laundersDirect", LaundersPointer},
		{"schedulesViaHelper", Schedules},
		{"emitsViaHelper", EmitsTelemetry},
		{"returnsNondetViaHelper", ReturnsNondet},
		{"cleanHelper", 0},
	}
	for _, c := range cases {
		fn := fnByName(t, g, c.fn)
		got := g.Summary(fn).Flags
		if got&c.want != c.want {
			t.Errorf("%s: flags %v missing %v", c.fn, got, c.want)
		}
		if c.want == 0 && SinkFlags(got) != 0 {
			t.Errorf("%s: expected no sink flags, got %v", c.fn, got)
		}
	}
}

func TestParamMasks(t *testing.T) {
	pass, _ := loadFixture(t)
	g := Build(pass)

	retains := []struct {
		fn  string
		bit int
	}{
		{"retainsByField", 0},
		{"newHolder", 0},
		{"retainsViaCallee", 1},
		{"storedLit", 1},
	}
	for _, c := range retains {
		fn := fnByName(t, g, c.fn)
		if got := g.Summary(fn).RetainsArgs; got&(1<<c.bit) == 0 {
			t.Errorf("%s: RetainsArgs %b missing bit %d", c.fn, got, c.bit)
		}
	}

	sinks := []struct {
		fn  string
		bit int
	}{
		{"paramToSink", 0},
		{"paramToSinkViaCallee", 0},
	}
	for _, c := range sinks {
		fn := fnByName(t, g, c.fn)
		if got := g.Summary(fn).ParamSinks; got&(1<<c.bit) == 0 {
			t.Errorf("%s: ParamSinks %b missing bit %d", c.fn, got, c.bit)
		}
	}

	clean := fnByName(t, g, "cleanHelper")
	if s := g.Summary(clean); s.RetainsArgs != 0 || s.ParamSinks != 0 {
		t.Errorf("cleanHelper: expected empty masks, got %+v", s)
	}
}

// TestFixpointTerminatesOnMutualRecursion pins the termination
// guarantee: Build must return (the fixpoint is a monotone ascent over
// finite bitsets) and both ends of a mutually recursive pair inherit
// the scheduling bit discovered in one of them.
func TestFixpointTerminatesOnMutualRecursion(t *testing.T) {
	pass, _ := loadFixture(t)
	done := make(chan *Graph, 1)
	go func() { done <- Build(pass) }()
	g := <-done

	for _, name := range []string{"mutualA", "mutualB"} {
		fn := fnByName(t, g, name)
		if g.Summary(fn).Flags&Schedules == 0 {
			t.Errorf("%s: mutual recursion did not propagate Schedules", name)
		}
	}
}

func TestWhyChains(t *testing.T) {
	pass, _ := loadFixture(t)
	g := Build(pass)

	fn := fnByName(t, g, "schedulesViaHelper")
	why := g.Why(fn, Schedules)
	want := "schedulesViaHelper -> schedulesDirect -> event.At"
	if why != want {
		t.Errorf("Why(schedulesViaHelper, Schedules) = %q, want %q", why, want)
	}
	if why := g.Why(fnByName(t, g, "cleanHelper"), Schedules); why != "" {
		t.Errorf("Why(cleanHelper) = %q, want empty", why)
	}
}
