// Package callgraph gives the analysis suite whole-package reasoning:
// a conservative static call graph over one type-checked package plus
// per-function summaries computed by fixpoint propagation.
//
// The seven analyzers of PRs 4-8 are intra-procedural, so a
// nondeterminism source laundered through one helper call — a map-range
// body that calls a function which schedules an event, a cross-shard
// closure that captures a pointer via a constructor — escapes every
// checker and is only caught probabilistically by the digest tests.
// This package closes that hole for the interprocedural analyzers
// (detflow, crossalias): it records, for every function declared in the
// package, whether the function directly or transitively
//
//   - schedules simulated activity (Schedules),
//   - mutates telemetry (EmitsTelemetry),
//   - feeds a hash/digest (WritesDigest),
//   - appends to order-observable non-local output (OrderedAppend),
//   - returns a value derived from a nondeterminism source
//     (ReturnsNondet),
//   - converts a pointer into an integer (LaundersPointer),
//
// plus two per-parameter bitmasks: which parameters the function
// retains beyond the call (RetainsArgs — stored into a field, a global,
// a returned composite, or a non-invoked closure) and which parameters
// reach an order-observable sink (ParamSinks).
//
// Conservatism runs the same direction as the rest of the suite:
// resolution is static and same-package (cross-package callees are
// matched against the known event/telemetry/hash intrinsics and
// otherwise assumed effect-free), and func literals are folded into
// their enclosing function only when immediately invoked — a literal
// handed to a registrar executes in that registrar's context, which the
// context-sensitive analyzers judge at the registration site instead.
// The fixpoint is a monotone ascent over finite bitsets, so it
// terminates on any call graph, mutual recursion included
// (TestFixpointTerminatesOnMutualRecursion).
package callgraph

import (
	"go/ast"
	"go/types"

	"qcdoc/internal/analysis"
)

// Flags are the transitive effect bits of one function summary.
type Flags uint32

const (
	// Schedules: the function enqueues simulated activity (an event-
	// package scheduler: At/After/Spawn/Put/Arm/..., or the cross-shard
	// CrossAt/CrossPayload/AtGlobal).
	Schedules Flags = 1 << iota
	// EmitsTelemetry: the function writes a telemetry row (EmitFunc /
	// HistEmitFunc call, Histogram.Record, counter Add/Set).
	EmitsTelemetry
	// WritesDigest: the function feeds a hash (stdlib hash packages or
	// an in-repo digest accumulator).
	WritesDigest
	// OrderedAppend: the function appends to a slice that outlives it
	// (a field, a package-level var, a dereferenced pointer) — output
	// whose order readers can observe.
	OrderedAppend
	// ReturnsNondet: the function's return value derives from a
	// nondeterminism source (wall clock, global rand, pointer
	// formatting) directly or through a same-package callee.
	ReturnsNondet
	// LaundersPointer: the function converts a pointer to an integer
	// (uintptr/unsafe), the primitive that smuggles an address through
	// a by-value payload.
	LaundersPointer
)

// sinkFlags are the bits that make a function an order-observable sink
// when called from a nondeterministically-ordered context.
const sinkFlags = Schedules | EmitsTelemetry | WritesDigest | OrderedAppend

// SinkFlags returns the subset of f that denotes order-observable
// sinks.
func SinkFlags(f Flags) Flags { return f & sinkFlags }

// String names the set bits, for diagnostics.
func (f Flags) String() string {
	names := []struct {
		bit  Flags
		name string
	}{
		{Schedules, "schedules events"},
		{EmitsTelemetry, "emits telemetry"},
		{WritesDigest, "writes a digest"},
		{OrderedAppend, "appends to ordered output"},
		{ReturnsNondet, "returns a nondeterministic value"},
		{LaundersPointer, "launders a pointer"},
	}
	s := ""
	for _, n := range names {
		if f&n.bit == 0 {
			continue
		}
		if s != "" {
			s += ", "
		}
		s += n.name
	}
	return s
}

// Summary is one function's interprocedural facts.
type Summary struct {
	Flags Flags
	// RetainsArgs bit i: parameter i is stored somewhere that outlives
	// the call (receiver/struct field, package var, returned composite
	// literal, non-invoked closure, or a retaining position of a
	// same-package callee).
	RetainsArgs uint32
	// ParamSinks bit i: parameter i is passed to an order-observable
	// sink (scheduler, telemetry emit, digest write), directly or
	// through a same-package callee.
	ParamSinks uint32
}

// Graph is the call graph and summary table of one package.
type Graph struct {
	Pkg   *types.Package
	Decls map[*types.Func]*ast.FuncDecl
	sums  map[*types.Func]*Summary
	// calls: same-package static call edges, for flag propagation.
	calls map[*types.Func][]*types.Func
	// retCalls: same-package callees whose result appears in a return
	// expression, for ReturnsNondet/LaundersPointer propagation.
	retCalls map[*types.Func][]*types.Func
	// argEdges: (caller, caller-param i) forwarded to (callee, callee
	// param k) — the lattice edges for RetainsArgs/ParamSinks.
	argEdges map[*types.Func][]argEdge
	// via records, per function and flag, the callee the flag arrived
	// through (nil for direct seeds) so Why can print the chain.
	via    map[*types.Func]map[Flags]*types.Func
	direct map[*types.Func]map[Flags]string
}

type argEdge struct {
	fromParam int
	callee    *types.Func
	toParam   int
}

// Summary returns fn's summary; the zero Summary for functions the
// graph does not know (cross-package, interface methods).
func (g *Graph) Summary(fn *types.Func) Summary {
	if s, ok := g.sums[fn]; ok {
		return *s
	}
	return Summary{}
}

// Why returns the call chain that gave fn the flag, rendered like
// "helper -> schedule -> event.At", or "" when the flag is unset. The
// chain is a witness, not an enumeration: one shortest-discovered path.
func (g *Graph) Why(fn *types.Func, flag Flags) string {
	s, ok := g.sums[fn]
	if !ok || s.Flags&flag == 0 {
		return ""
	}
	out := fn.Name()
	for seen := map[*types.Func]bool{}; !seen[fn]; {
		seen[fn] = true
		if next := g.via[fn][flag]; next != nil {
			out += " -> " + next.Name()
			fn = next
			continue
		}
		if d := g.direct[fn][flag]; d != "" {
			out += " -> " + d
		}
		break
	}
	return out
}

// Schedulers are the event-package methods that enqueue or reorder
// simulated activity, including the cross-shard surface. Calling one in
// map-iteration order stamps that order onto event sequence numbers.
var Schedulers = map[string]bool{
	"At": true, "After": true, "AtHandler": true, "AfterHandler": true,
	"Spawn": true, "SpawnDaemon": true,
	"Put": true, "PutAfter": true, "Fire": true,
	"Arm": true, "ArmAt": true, "Goto": true, "Sleep": true,
	"CrossAt": true, "CrossPayload": true, "AtGlobal": true,
}

// telemetryMutators are method names on telemetry-package receivers
// that write a row or a sample.
var telemetryMutators = map[string]bool{
	"Record": true, "Add": true, "Set": true, "Observe": true,
}

// IsSchedulerCall reports whether the call invokes an event-package
// scheduler, returning its method name.
func IsSchedulerCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	pkg, _, name, ok := analysis.ReceiverOf(info, call)
	if !ok || !Schedulers[name] || !analysis.PkgIs(pkg, "event") {
		return "", false
	}
	return name, true
}

// IsTelemetryEmit reports whether the call writes telemetry: invoking a
// telemetry.EmitFunc / HistEmitFunc value, or a mutating method
// (Record/Add/Set/Observe) on a telemetry-package receiver.
func IsTelemetryEmit(info *types.Info, call *ast.CallExpr) bool {
	if tv, ok := info.Types[call.Fun]; ok {
		if named, ok := tv.Type.(*types.Named); ok && named.Obj().Pkg() != nil {
			name := named.Obj().Name()
			if (name == "EmitFunc" || name == "HistEmitFunc") &&
				analysis.PkgIs(named.Obj().Pkg().Path(), "telemetry") {
				return true
			}
		}
	}
	pkg, _, name, ok := analysis.ReceiverOf(info, call)
	return ok && telemetryMutators[name] && analysis.PkgIs(pkg, "telemetry")
}

// IsDigestWrite reports whether the call feeds a hash: a Write/Sum-ish
// method on a stdlib hash receiver, a hash/crc32-style package
// function, or an in-repo digest accumulator (a method named
// Digest/Fold on a simulator type is deliberately NOT matched — only
// writes into an accumulator are order-observable, finished digests are
// values).
func IsDigestWrite(info *types.Info, call *ast.CallExpr) bool {
	if pkg, _, name, ok := analysis.ReceiverOf(info, call); ok && isHashPath(pkg) && digestMethods[name] {
		return true
	}
	// hash.Hash's Write is inherited from io.Writer, so the method's own
	// package is "io"; judge by the receiver expression's type instead.
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !digestMethods[sel.Sel.Name] {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil && isHashPath(named.Obj().Pkg().Path())
}

var digestMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"Sum": true, "Sum32": true, "Sum64": true,
	"Update": true, "Checksum": true,
}

func isHashPath(path string) bool {
	switch path {
	case "hash", "hash/fnv", "hash/crc32", "hash/crc64", "hash/adler32", "hash/maphash":
		return true
	}
	return false
}

// Build constructs the call graph and runs the summary fixpoint for the
// pass's package.
func Build(pass *analysis.Pass) *Graph {
	g := &Graph{
		Pkg:      pass.Pkg,
		Decls:    map[*types.Func]*ast.FuncDecl{},
		sums:     map[*types.Func]*Summary{},
		calls:    map[*types.Func][]*types.Func{},
		retCalls: map[*types.Func][]*types.Func{},
		argEdges: map[*types.Func][]argEdge{},
		via:      map[*types.Func]map[Flags]*types.Func{},
		direct:   map[*types.Func]map[Flags]string{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				g.Decls[fn] = fd
				g.sums[fn] = &Summary{}
			}
		}
	}
	for fn, fd := range g.Decls {
		g.seed(pass, fn, fd)
	}
	g.fixpoint()
	return g
}

// paramIndex maps a function's parameter objects to their positions.
func paramIndex(fn *types.Func) map[types.Object]int {
	sig := fn.Type().(*types.Signature)
	idx := map[types.Object]int{}
	for i := 0; i < sig.Params().Len(); i++ {
		idx[sig.Params().At(i)] = i
	}
	return idx
}

// CalleeFunc resolves a call to its static *types.Func target, if any.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := analysis.ObjOf(info, fun).(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if s, found := info.Selections[fun]; found {
			if fn, ok := s.Obj().(*types.Func); ok {
				return fn
			}
		} else if fn, ok := analysis.ObjOf(info, fun.Sel).(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// seed records fn's direct facts and call edges by one walk of its
// body. Func literals are folded in only when immediately invoked;
// otherwise their effects belong to whatever context eventually runs
// them, and a literal capturing a parameter retains it.
func (g *Graph) seed(pass *analysis.Pass, fn *types.Func, fd *ast.FuncDecl) {
	sum := g.sums[fn]
	params := paramIndex(fn)
	info := pass.TypesInfo

	setDirect := func(flag Flags, why string) {
		if sum.Flags&flag == 0 {
			sum.Flags |= flag
			if g.direct[fn] == nil {
				g.direct[fn] = map[Flags]string{}
			}
			g.direct[fn][flag] = why
		}
	}

	// paramRoots returns the parameter bits mentioned in the node (the
	// param itself, &param, param.field, param[i]).
	paramRoots := func(e ast.Node) uint32 {
		var bits uint32
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if i, ok := params[analysis.ObjOf(info, id)]; ok && i < 32 {
					bits |= 1 << i
				}
			}
			return true
		})
		return bits
	}

	// nonLocalLValue: assigning through it stores beyond the frame —
	// a field, an element, a deref, or a package-level variable.
	nonLocalLValue := func(e ast.Expr) bool {
		switch lv := e.(type) {
		case *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
			return true
		case *ast.Ident:
			if o := analysis.ObjOf(info, lv); o != nil && o.Parent() == pass.Pkg.Scope() {
				return true
			}
		}
		return false
	}

	var inReturn int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			// Only fold the body in when the literal is invoked on the
			// spot; handled at the enclosing CallExpr below. Here the
			// literal is being stored or passed: any parameter it
			// captures is retained.
			sum.RetainsArgs |= paramRoots(nn.Body)
			return false

		case *ast.CompositeLit:
			// A parameter packed into a composite literal is treated as
			// retained wherever the literal flows — the constructor-
			// laundering pattern crossalias exists to catch.
			sum.RetainsArgs |= paramRoots(nn)
			return true

		case *ast.CallExpr:
			if lit, ok := nn.Fun.(*ast.FuncLit); ok {
				// Immediately-invoked literal: its body is this
				// function's own control flow.
				for _, arg := range nn.Args {
					ast.Inspect(arg, walk)
				}
				ast.Inspect(lit.Body, walk)
				return false
			}
			if name, ok := IsSchedulerCall(info, nn); ok {
				setDirect(Schedules, "event."+name)
				sum.ParamSinks |= argParamBits(nn, paramRoots)
			}
			if IsTelemetryEmit(info, nn) {
				setDirect(EmitsTelemetry, "telemetry emit")
				sum.ParamSinks |= argParamBits(nn, paramRoots)
			}
			if IsDigestWrite(info, nn) {
				setDirect(WritesDigest, "hash write")
				sum.ParamSinks |= argParamBits(nn, paramRoots)
			}
			if callee := CalleeFunc(info, nn); callee != nil && callee.Pkg() == g.Pkg {
				// Only calls to declared functions get edges: an
				// interface method of this package resolves here too,
				// but has no body and no summary to propagate from.
				if _, known := g.sums[callee]; known && callee != fn {
					g.calls[fn] = append(g.calls[fn], callee)
					if inReturn > 0 {
						g.retCalls[fn] = append(g.retCalls[fn], callee)
					}
					csig := callee.Type().(*types.Signature)
					for k, arg := range nn.Args {
						if k >= csig.Params().Len() {
							if !csig.Variadic() || csig.Params().Len() == 0 {
								continue
							}
							k = csig.Params().Len() - 1
						}
						for i := 0; i < 32; i++ {
							if paramRoots(arg)&(1<<i) != 0 {
								g.argEdges[fn] = append(g.argEdges[fn],
									argEdge{fromParam: i, callee: callee, toParam: k})
							}
						}
					}
				}
			}
			if uintptrOfPointer(info, nn) {
				setDirect(LaundersPointer, "uintptr conversion")
			}
			if inReturn > 0 {
				if why, ok := valueSourceCall(info, nn); ok {
					setDirect(ReturnsNondet, why)
				}
			}
			return true

		case *ast.AssignStmt:
			for i, rhs := range nn.Rhs {
				var lhs ast.Expr
				if i < len(nn.Lhs) {
					lhs = nn.Lhs[i]
				} else if len(nn.Lhs) > 0 {
					lhs = nn.Lhs[0]
				}
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(info, call) && lhs != nil {
					if nonLocalLValue(lhs) {
						setDirect(OrderedAppend, "append to "+types.ExprString(lhs))
					}
					for _, arg := range call.Args[1:] {
						if nonLocalLValue(lhs) {
							sum.RetainsArgs |= paramRoots(arg)
						}
					}
				}
				if lhs != nil && nonLocalLValue(lhs) {
					sum.RetainsArgs |= paramRoots(rhs)
				}
			}
			return true

		case *ast.ReturnStmt:
			inReturn++
			for _, e := range nn.Results {
				if _, ok := e.(*ast.CompositeLit); ok {
					sum.RetainsArgs |= paramRoots(e)
				}
				if _, ok := e.(*ast.UnaryExpr); ok {
					sum.RetainsArgs |= paramRoots(e)
				}
				ast.Inspect(e, walk)
			}
			inReturn--
			return false
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// argParamBits folds paramRoots over a call's arguments.
func argParamBits(call *ast.CallExpr, paramRoots func(ast.Node) uint32) uint32 {
	var bits uint32
	for _, arg := range call.Args {
		bits |= paramRoots(arg)
	}
	return bits
}

// fixpoint propagates summaries along call edges until nothing changes.
// Every step only sets bits in finite bitsets, so the ascent terminates
// on any graph, cycles and mutual recursion included.
func (g *Graph) fixpoint() {
	for changed := true; changed; {
		changed = false
		for fn, sum := range g.sums {
			for _, callee := range g.calls[fn] {
				cs := g.sums[callee]
				add := cs.Flags & sinkFlags &^ sum.Flags
				if add != 0 {
					sum.Flags |= add
					if g.via[fn] == nil {
						g.via[fn] = map[Flags]*types.Func{}
					}
					for bit := Flags(1); bit <= add; bit <<= 1 {
						if add&bit != 0 {
							g.via[fn][bit] = callee
						}
					}
					changed = true
				}
			}
			for _, callee := range g.retCalls[fn] {
				cs := g.sums[callee]
				add := cs.Flags & (ReturnsNondet | LaundersPointer) &^ sum.Flags
				if add != 0 {
					sum.Flags |= add
					if g.via[fn] == nil {
						g.via[fn] = map[Flags]*types.Func{}
					}
					for bit := Flags(1); bit <= add; bit <<= 1 {
						if add&bit != 0 {
							g.via[fn][bit] = callee
						}
					}
					changed = true
				}
			}
			for _, e := range g.argEdges[fn] {
				cs := g.sums[e.callee]
				if cs == nil || e.toParam >= 32 {
					continue
				}
				if cs.RetainsArgs&(1<<e.toParam) != 0 && sum.RetainsArgs&(1<<e.fromParam) == 0 {
					sum.RetainsArgs |= 1 << e.fromParam
					changed = true
				}
				if cs.ParamSinks&(1<<e.toParam) != 0 && sum.ParamSinks&(1<<e.fromParam) == 0 {
					sum.ParamSinks |= 1 << e.fromParam
					changed = true
				}
			}
		}
	}
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// uintptrOfPointer reports whether the call is a uintptr(p) conversion
// of a pointer or unsafe.Pointer — address laundering.
func uintptrOfPointer(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || b.Kind() != types.Uintptr {
		return false
	}
	if len(call.Args) != 1 {
		return false
	}
	at, ok := info.Types[call.Args[0]]
	if !ok {
		return false
	}
	switch u := at.Type.Underlying().(type) {
	case *types.Pointer:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// wallFuncs mirrors simtime's list: time-package calls that observe the
// host clock.
var wallFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
}

// globalRandOK mirrors simtime's allowlist: math/rand identifiers that
// do not touch the process-global generator.
var globalRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"Source": true, "Rand": true, "Zipf": true,
}

// valueSourceCall reports whether the call produces a host-
// nondeterministic value: wall clock, global math/rand, or pointer
// formatting (%p).
func valueSourceCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := info.Uses[id].(*types.PkgName); ok {
			switch path := pn.Imported().Path(); path {
			case "time":
				if wallFuncs[sel.Sel.Name] {
					return "time." + sel.Sel.Name, true
				}
			case "math/rand", "math/rand/v2":
				if !globalRandOK[sel.Sel.Name] {
					return "rand." + sel.Sel.Name, true
				}
			case "fmt":
				if formatsPointer(info, call) {
					return "fmt." + sel.Sel.Name + "(%p)", true
				}
			}
		}
	}
	return "", false
}

// formatsPointer reports whether a fmt call's format string contains a
// %p verb — the canonical way a heap address leaks into observable
// output.
func formatsPointer(info *types.Info, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		tv, ok := info.Types[arg]
		if !ok || tv.Value == nil {
			continue
		}
		if s := tv.Value.String(); len(s) >= 2 && containsPverb(s) {
			return true
		}
	}
	return false
}

// containsPverb scans a (quoted) constant format string for %p,
// skipping %%.
func containsPverb(s string) bool {
	for i := 0; i+1 < len(s); i++ {
		if s[i] != '%' {
			continue
		}
		if s[i+1] == '%' {
			i++
			continue
		}
		// Skip flags/width between % and the verb.
		j := i + 1
		for j < len(s) && (s[j] == '+' || s[j] == '-' || s[j] == '#' || s[j] == ' ' ||
			s[j] == '0' || (s[j] >= '1' && s[j] <= '9') || s[j] == '.') {
			j++
		}
		if j < len(s) && s[j] == 'p' {
			return true
		}
	}
	return false
}

// ValueSourceCall is valueSourceCall exported for detflow's lexical
// source detection.
func ValueSourceCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	return valueSourceCall(info, call)
}

// UintptrOfPointer is uintptrOfPointer exported for crossalias.
func UintptrOfPointer(info *types.Info, call *ast.CallExpr) bool {
	return uintptrOfPointer(info, call)
}

// IsBuiltinAppend is isBuiltinAppend exported for detflow.
func IsBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	return isBuiltinAppend(info, call)
}
