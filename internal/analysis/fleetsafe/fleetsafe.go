// Package fleetsafe forbids package-level mutable state in simulation
// packages.
//
// The fleet substrate (DESIGN.md §14) runs N fully independent
// simulated machines concurrently in one process; its whole contract
// is that machines share nothing mutable. A package-level var is
// process-wide by construction, so in sim code it may only be one of:
//
//   - a blank var (`var _ I = (*T)(nil)` interface assertions);
//   - an error sentinel (`var ErrX = errors.New(...)`), initialized at
//     declaration and never reassigned;
//   - an immutable value table: a var of pure value type (no slice,
//     map, pointer, chan, func, or non-error interface anywhere in it)
//     that no code in the package ever writes, addresses, or calls a
//     pointer-receiver method on.
//
// Everything else — any written var, and any var whose type lets its
// contents be mutated through a shared reference even without
// reassignment — is flagged. Genuinely read-only data that has to live
// behind a reference type (a *crc32.Table, a []field descriptor table)
// carries the //qcdoclint:global-ok waiver: the reviewable record that
// a human checked nothing writes through it after initialization.
package fleetsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"qcdoc/internal/analysis"
)

// Analyzer is the fleetsafe checker.
var Analyzer = &analysis.Analyzer{
	Name: "fleetsafe",
	Doc: "forbid package-level mutable state in sim packages: every var must be a blank " +
		"assertion, an error sentinel, or a never-written pure-value table, so N machines " +
		"can run in one process sharing nothing; waive read-only reference tables with " +
		"//qcdoclint:global-ok.",
	Run: run,
}

// run flags package-level vars that could carry state between the
// process's machines.
func run(pass *analysis.Pass) (any, error) {
	// Host-side code is out of scope: the CLIs and the analysis
	// framework itself run on the host, not inside a simulated machine,
	// and a campaign driver legitimately owns process-wide state. (The
	// bare-path check keeps fixture packages like "a" analyzable.)
	path := pass.Pkg.Path()
	if path == "qcdoc" || strings.HasPrefix(path, "qcdoc/cmd/") ||
		strings.Contains(path, "/analysis/") || strings.HasSuffix(path, "/analysis") {
		return nil, nil
	}

	type global struct {
		spec *ast.ValueSpec
		name *ast.Ident
		obj  types.Object
	}
	var globals []global
	byObj := map[types.Object]int{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs := spec.(*ast.ValueSpec)
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					obj := pass.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					byObj[obj] = len(globals)
					globals = append(globals, global{spec: vs, name: name, obj: obj})
				}
			}
		}
	}
	if len(globals) == 0 {
		return nil, nil
	}

	// One pass over every function body: find writes to (or addresses
	// of) the globals. The declaration's own initializer is not a write.
	written := make([]bool, len(globals))
	how := make([]string, len(globals))
	note := func(obj types.Object, what string) {
		if i, ok := byObj[obj]; ok && !written[i] {
			written[i] = true
			how[i] = what
		}
	}
	// rootIdent unwraps v.field, v[i], v.field[j]... to the base ident:
	// a write through any projection mutates the var.
	var rootIdent func(e ast.Expr) *ast.Ident
	rootIdent = func(e ast.Expr) *ast.Ident {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			return rootIdent(x.X)
		case *ast.IndexExpr:
			return rootIdent(x.X)
		case *ast.ParenExpr:
			return rootIdent(x.X)
		case *ast.StarExpr:
			return rootIdent(x.X)
		}
		return nil
	}
	noteExpr := func(e ast.Expr, what string) {
		if id := rootIdent(e); id != nil {
			if obj := analysis.ObjOf(pass.TypesInfo, id); obj != nil {
				note(obj, what)
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range nn.Lhs {
					noteExpr(lhs, "assigned")
				}
			case *ast.IncDecStmt:
				noteExpr(nn.X, "incremented")
			case *ast.UnaryExpr:
				if nn.Op == token.AND {
					noteExpr(nn.X, "addressed")
				}
			case *ast.CallExpr:
				// A pointer-receiver method call mutates (or may mutate)
				// the var in place: v.Lock(), v.Reset(), ...
				if sel, ok := nn.Fun.(*ast.SelectorExpr); ok {
					if s, found := pass.TypesInfo.Selections[sel]; found && s.Kind() == types.MethodVal {
						if sig, ok := s.Obj().Type().(*types.Signature); ok && sig.Recv() != nil {
							if _, isPtr := sig.Recv().Type().(*types.Pointer); isPtr {
								noteExpr(sel.X, "mutated via pointer-receiver method " + s.Obj().Name())
							}
						}
					}
				}
			}
			return true
		})
	}

	for i, g := range globals {
		t := g.obj.Type()
		var reason string
		switch {
		case written[i]:
			reason = how[i] + " after initialization"
		case isErrorSentinel(t, g.spec):
			continue
		case mutableThrough(t, nil):
			reason = "of reference type " + t.String() + ", mutable through shared references"
		default:
			continue // pure-value table, never written: immutable.
		}
		if pass.Suppressed(analysis.MarkerGlobalOK, g.name.Pos()) {
			continue
		}
		pass.Reportf(g.name.Pos(),
			"package-level var %s is process-wide mutable state (%s); the fleet substrate runs N machines per process sharing nothing mutable — make it per-machine, a const, or a never-written value table, or waive a verified read-only table with //qcdoclint:global-ok",
			g.name.Name, reason)
	}
	return nil, nil
}

// isErrorSentinel reports the `var ErrX = errors.New("...")` idiom: the
// var's type is exactly the universe error interface and it has an
// initializer. (Reassignment elsewhere is caught by the write pass.)
func isErrorSentinel(t types.Type, spec *ast.ValueSpec) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
		return false
	}
	return len(spec.Values) > 0
}

// mutableThrough reports whether a value of type t can be mutated
// through a copy of it — i.e. it contains a slice, map, pointer, chan,
// func, or non-error interface anywhere. Such a var is shared mutable
// state even if no code in this package writes it. seen breaks cycles
// through named types.
func mutableThrough(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan, *types.Signature:
		return true
	case *types.Interface:
		// Any interface can hold a pointer; only the error sentinel
		// idiom is allowed, and that is handled before this check.
		return true
	case *types.Array:
		return mutableThrough(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if mutableThrough(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	default:
		return true // unknown type: be conservative
	}
}
