package fleetsafe_test

import (
	"testing"

	"qcdoc/internal/analysis/analysistest"
	"qcdoc/internal/analysis/fleetsafe"
)

func TestFleetsafe(t *testing.T) {
	analysistest.Run(t, "testdata", fleetsafe.Analyzer, "a")
}
