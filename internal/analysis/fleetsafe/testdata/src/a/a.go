// Fixture for the fleetsafe analyzer: package-level vars in sim
// packages must be blank assertions, error sentinels, or never-written
// pure-value tables; anything written after initialization or mutable
// through a shared reference is flagged, and //qcdoclint:global-ok
// waives a verified read-only table.
package a

import "errors"

// --- allowed ---

// Error sentinels: initialized at declaration, never reassigned.
var ErrBroken = errors.New("a: broken")

// Blank interface assertions bind no state.
var _ interface{ Error() string } = errNever{}

// A pure-value table never written by any code in the package: shared
// and immutable, exactly what the fleet substrate wants.
var gammaTable = buildGamma()

// Grouped value constants-in-spirit are fine too.
var (
	identity = [2][2]float64{{1, 0}, {0, 1}}
	twoPi    = 6.283185307179586
)

// --- flagged: mutable through a shared reference ---

var statsFields = []string{"sent", "resent"} // want `of reference type \[\]string`

var registry = map[string]int{} // want `of reference type map\[string\]int`

var table = &config{} // want `of reference type \*a\.config`

var notify = make(chan int) // want `of reference type chan int`

var hook func() // want `of reference type func\(\)`

var boxed interface{ Error() string } // want `process-wide mutable state`

// A struct is only as immutable as its fields.
var nested = holder{} // want `of reference type a\.holder`

// --- flagged: written after initialization ---

var counter int // want `assigned after initialization`

var bumped int // want `incremented after initialization`

var escapee [4]float64 // want `addressed after initialization`

var gamma [2][2]float64 // want `assigned after initialization`

// --- waived: reviewed read-only reference tables ---

//qcdoclint:global-ok write-once field-name table, read-only after init
var fieldNames = []string{"frames", "bits"}

var crcTable = buildCRC() //qcdoclint:global-ok crc polynomial table, never written

// --- machinery ---

type errNever struct{}

func (errNever) Error() string { return "" }

type config struct{ n int }

type holder struct{ names []string }

func buildGamma() [2][2]float64 { return [2][2]float64{{0, 1}, {1, 0}} }

func buildCRC() []uint32 { return []uint32{1, 2, 3} }

func init() {
	// The init-function write pattern fleetsafe exists to kill: compute
	// at declaration instead.
	gamma = buildGamma()
}

func touch() {
	counter = 1
	bumped++
	use(&escapee)
	// Reads are always fine.
	_ = gammaTable
	_ = identity
	_ = twoPi
}

func use(*[4]float64) {}
