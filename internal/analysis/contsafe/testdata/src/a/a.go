// Fixture for the contsafe analyzer: blocking coroutine APIs are
// flagged inside continuation-tier callbacks (Engine.At/After closures,
// StateMachine.Sleep continuations, Engine.NewTimer callbacks,
// HandleEvent methods, and everything they call in-package); coroutine
// bodies may block freely, and //qcdoclint:blocking-ok waives a call.
package a

import "event"

func literals(eng *event.Engine, g *event.Gate, p *event.Proc) {
	eng.At(0, func() {
		g.Wait(p) // want `calls blocking Gate.Wait`
	})
	eng.After(10, func() {
		p.Sleep(5) // want `calls blocking Proc.Sleep`
	})
}

func machine(sm *event.StateMachine, q *event.Queue, p *event.Proc) {
	sm.Sleep(5, func() {
		_ = q.Get(p) // want `calls blocking Queue.Get`
	})
}

func timer(eng *event.Engine, p *event.Proc) {
	t := eng.NewTimer(func() {
		p.SleepUntil(9) // want `calls blocking Proc.SleepUntil`
	})
	t.Arm(4)
}

// Blocking reached through a same-package static call chain: the
// context propagates from the registration through step to leaf.
func chain(eng *event.Engine) {
	eng.At(0, step)
}

func step() {
	leaf()
}

func leaf() {
	var g event.Gate
	var p *event.Proc
	g.Wait(p) // want `calls blocking Gate.Wait`
}

// A HandleEvent method with the event.Handler shape is continuation
// context by construction.
type pump struct {
	q *event.Queue
	p *event.Proc
}

func (u *pump) HandleEvent(uint64) {
	_ = u.q.Get(u.p) // want `calls blocking Queue.Get`
}

// Passing the coroutine token onward from a continuation is flagged
// even when the blocking call is out of static reach.
func smuggle(eng *event.Engine, p *event.Proc) {
	eng.At(0, func() {
		helper(p) // want `passes the coroutine token \*event.Proc`
	})
}

func helper(p *event.Proc) {}

// Coroutine-tier code blocks legitimately: nothing registers these
// bodies on the continuation tier.
func coroutineBody(p *event.Proc, g *event.Gate, q *event.Queue) int {
	g.Wait(p)
	p.Sleep(3)
	return q.Get(p)
}

// Spawning is not registering: the spawned body runs on the coroutine
// tier and may block.
func spawns(eng *event.Engine, g *event.Gate) {
	eng.Spawn("worker", func(p *event.Proc) {
		g.Wait(p)
	})
}

// An explicit waiver records that this callback runs before the engine
// starts, where the "blocking" call cannot actually yield.
func waived(eng *event.Engine, g *event.Gate, p *event.Proc) {
	eng.At(0, func() {
		g.Wait(p) //qcdoclint:blocking-ok boot-time, engine not yet running
	})
}
