// Package contsafe keeps blocking coroutine calls off the
// continuation tier.
//
// The event engine has two process tiers (DESIGN.md §8): coroutine
// processes (Spawn/Proc) that may block — Proc.Sleep, Gate.Wait,
// Queue.Get all yield the goroutine's control token — and
// zero-goroutine continuation callbacks (Engine.At/After, StateMachine
// handlers, Timer and Handler dispatch) that run to completion inside
// the engine's dispatch loop. A continuation callback that calls a
// blocking API has no token to yield: it either panics on the engine
// goroutine or deadlocks the whole simulated machine. The type system
// cannot see the difference — both tiers are plain funcs — so contsafe
// tracks it statically: every function that reaches the continuation
// tier (a literal or named function passed to Engine.At/After,
// StateMachine.Sleep, Engine.NewTimer, or a HandleEvent method
// implementing event.Handler, plus everything those call within the
// package) must not call a blocking API or accept the coroutine token
// (*event.Proc) as an argument value.
package contsafe

import (
	"go/ast"
	"go/types"

	"qcdoc/internal/analysis"
)

// Analyzer is the contsafe checker.
var Analyzer = &analysis.Analyzer{
	Name: "contsafe",
	Doc: "forbid blocking coroutine APIs (Proc.Sleep, Gate.Wait, Queue.Get, Engine.Run) " +
		"inside continuation-tier callbacks registered via Engine.At/After, " +
		"StateMachine.Sleep, Engine.NewTimer, or Handler.HandleEvent; " +
		"waive a call with //qcdoclint:blocking-ok.",
	Run: run,
}

// registrars are event-package methods whose func-typed argument (at
// the given index) runs on the continuation tier.
var registrars = map[string]int{
	"At":       1, // Engine.At(t, fn)
	"After":    1, // Engine.After(d, fn)
	"Sleep":    1, // StateMachine.Sleep(d, fn) — Proc.Sleep has 1 arg, never matches
	"NewTimer": 0, // Engine.NewTimer(fn)
}

// blocking are the coroutine APIs that yield the control token:
// receiver type name -> method names.
var blocking = map[string]map[string]bool{
	"Proc":   {"Sleep": true, "SleepUntil": true},
	"Gate":   {"Wait": true, "WaitUntil": true},
	"Queue":  {"Get": true, "GetTimeout": true},
	"Engine": {"Run": true, "RunAll": true},
}

func run(pass *analysis.Pass) (any, error) {
	// The event package itself implements the tier boundary: its
	// wake/activate plumbing is the mechanism, not a client of it.
	if analysis.PkgIs(pass.Pkg.Path(), "event") {
		return nil, nil
	}

	// Named functions and methods declared in this package, by object.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}

	// Seed the continuation-context set: callback literals passed to
	// registrars, named functions passed likewise, and HandleEvent
	// methods (event.Handler implementations).
	type ctxBody struct {
		body *ast.BlockStmt
		via  string // how this code reaches the continuation tier
	}
	var work []ctxBody
	inCtx := map[*types.Func]string{}

	addCallback := func(arg ast.Expr, via string) {
		switch a := arg.(type) {
		case *ast.FuncLit:
			work = append(work, ctxBody{body: a.Body, via: via})
		case *ast.Ident, *ast.SelectorExpr:
			var obj types.Object
			if id, ok := a.(*ast.Ident); ok {
				obj = analysis.ObjOf(pass.TypesInfo, id)
			} else if sel, ok := a.(*ast.SelectorExpr); ok {
				if s, found := pass.TypesInfo.Selections[sel]; found {
					obj = s.Obj()
				} else {
					obj = analysis.ObjOf(pass.TypesInfo, sel.Sel)
				}
			}
			if fn, ok := obj.(*types.Func); ok {
				if _, seen := inCtx[fn]; !seen {
					inCtx[fn] = via
				}
			}
		}
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "HandleEvent" && fd.Recv != nil && isHandlerSig(pass, fd) {
				work = append(work, ctxBody{body: fd.Body, via: "event.Handler dispatch"})
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkg, recv, name, ok := analysis.ReceiverOf(pass.TypesInfo, call)
				if !ok || !analysis.PkgIs(pkg, "event") {
					return true
				}
				idx, isReg := registrars[name]
				if !isReg || idx >= len(call.Args) {
					return true
				}
				// Engine.At/After/NewTimer and StateMachine.Sleep only;
				// Proc.Sleep takes one argument and never reaches here
				// with idx 1, but be explicit about the receiver.
				if recv != "Engine" && recv != "StateMachine" {
					return true
				}
				addCallback(call.Args[idx], recv+"."+name)
				return true
			})
		}
	}

	// Propagate: code called (statically, within this package) from a
	// continuation context is itself continuation context.
	checked := map[*ast.BlockStmt]bool{}
	var scan func(body *ast.BlockStmt, via string)
	scan = func(body *ast.BlockStmt, via string) {
		if checked[body] {
			return
		}
		checked[body] = true
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			reportBlocking(pass, call, via)
			// Follow same-package static calls.
			if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() == pass.Pkg {
				if fd, ok := decls[fn]; ok {
					scan(fd.Body, via+" -> "+fn.Name())
				}
			}
			return true
		})
	}
	for _, cb := range work {
		scan(cb.body, cb.via)
	}
	for fn, via := range inCtx {
		if fd, ok := decls[fn]; ok {
			scan(fd.Body, via+" -> "+fn.Name())
		}
	}
	return nil, nil
}

// reportBlocking flags one call if it blocks: a known blocking method
// on an event-package type, or any call passing a *event.Proc value
// (the coroutine control token) onward.
func reportBlocking(pass *analysis.Pass, call *ast.CallExpr, via string) {
	pkg, recv, name, ok := analysis.ReceiverOf(pass.TypesInfo, call)
	if ok && analysis.PkgIs(pkg, "event") && blocking[recv][name] {
		if !pass.Suppressed(analysis.MarkerBlockingOK, call.Pos()) {
			pass.Reportf(call.Pos(),
				"continuation-tier callback (via %s) calls blocking %s.%s; it has no coroutine token to yield and would deadlock the engine — restructure as Engine.After or a StateMachine, or mark //qcdoclint:blocking-ok",
				via, recv, name)
		}
		return
	}
	for _, arg := range call.Args {
		tv, found := pass.TypesInfo.Types[arg]
		if !found || tv.Type == nil {
			continue
		}
		ptr, isPtr := tv.Type.(*types.Pointer)
		if !isPtr {
			continue
		}
		named, isNamed := ptr.Elem().(*types.Named)
		if !isNamed || named.Obj().Name() != "Proc" || named.Obj().Pkg() == nil ||
			!analysis.PkgIs(named.Obj().Pkg().Path(), "event") {
			continue
		}
		if !pass.Suppressed(analysis.MarkerBlockingOK, call.Pos()) {
			pass.Reportf(call.Pos(),
				"continuation-tier callback (via %s) passes the coroutine token *event.Proc into a call; blocking APIs behind it would deadlock the engine — mark //qcdoclint:blocking-ok if the callee never blocks",
				via)
		}
		return
	}
}

// calleeFunc resolves a call to its static *types.Func target, if any.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := analysis.ObjOf(pass.TypesInfo, fun).(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if s, found := pass.TypesInfo.Selections[fun]; found {
			if fn, ok := s.Obj().(*types.Func); ok {
				return fn
			}
		} else if fn, ok := analysis.ObjOf(pass.TypesInfo, fun.Sel).(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isHandlerSig reports whether a HandleEvent method has the
// event.Handler shape: func (T) HandleEvent(uint64).
func isHandlerSig(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != 1 || sig.Results().Len() != 0 {
		return false
	}
	b, ok := sig.Params().At(0).Type().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}
