package contsafe_test

import (
	"testing"

	"qcdoc/internal/analysis/analysistest"
	"qcdoc/internal/analysis/contsafe"
)

func TestContsafe(t *testing.T) {
	analysistest.Run(t, "testdata", contsafe.Analyzer, "a")
}
