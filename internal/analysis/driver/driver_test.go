package driver

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// lintDir runs Lint over one fixture directory with explicit file
// lists, capturing output — the same path the qcdoclint command takes,
// minus go list.
func lintDir(t *testing.T, pkg Package, opts Options) (int, string) {
	t.Helper()
	var buf bytes.Buffer
	opts.Out = &buf
	opts.Err = &buf
	exit := Lint([]Package{pkg}, opts)
	return exit, buf.String()
}

func TestWaivedFindingLintsClean(t *testing.T) {
	exit, out := lintDir(t, Package{
		ImportPath: "waived",
		Dir:        "testdata/waived",
		GoFiles:    []string{"waived.go"},
	}, Options{})
	if exit != 0 {
		t.Fatalf("waived fixture: exit %d, output:\n%s", exit, out)
	}
	if out != "" {
		t.Fatalf("waived fixture: unexpected output:\n%s", out)
	}
}

// TestStaleMarkerFails pins the waiver lifecycle's teeth: a marker
// that suppresses nothing is itself a lint failure.
func TestStaleMarkerFails(t *testing.T) {
	exit, out := lintDir(t, Package{
		ImportPath: "stale",
		Dir:        "testdata/stale",
		GoFiles:    []string{"stale.go"},
	}, Options{})
	if exit != 1 {
		t.Fatalf("stale fixture: exit %d (want 1), output:\n%s", exit, out)
	}
	if !strings.Contains(out, "stale waiver") || !strings.Contains(out, "detflow-ok") {
		t.Fatalf("stale fixture: missing stale-waiver finding:\n%s", out)
	}
}

func TestUnknownMarkerFails(t *testing.T) {
	exit, out := lintDir(t, Package{
		ImportPath: "unknown",
		Dir:        "testdata/unknown",
		GoFiles:    []string{"unknown.go"},
	}, Options{})
	if exit != 1 {
		t.Fatalf("unknown fixture: exit %d (want 1), output:\n%s", exit, out)
	}
	if !strings.Contains(out, "unknown marker") {
		t.Fatalf("unknown fixture: missing unknown-marker finding:\n%s", out)
	}
}

func TestWaiverInventory(t *testing.T) {
	exit, out := lintDir(t, Package{
		ImportPath: "waived",
		Dir:        "testdata/waived",
		GoFiles:    []string{"waived.go"},
	}, Options{Waivers: true})
	if exit != 0 {
		t.Fatalf("inventory on waived: exit %d, output:\n%s", exit, out)
	}
	if !strings.Contains(out, "suppresses 1 diagnostic(s)") {
		t.Fatalf("inventory should count the suppression hit:\n%s", out)
	}

	exit, out = lintDir(t, Package{
		ImportPath: "stale",
		Dir:        "testdata/stale",
		GoFiles:    []string{"stale.go"},
	}, Options{Waivers: true})
	if exit != 1 || !strings.Contains(out, "STALE") {
		t.Fatalf("inventory on stale: exit %d, output:\n%s", exit, out)
	}
}

func TestJSONFindings(t *testing.T) {
	exit, out := lintDir(t, Package{
		ImportPath: "stale",
		Dir:        "testdata/stale",
		GoFiles:    []string{"stale.go"},
	}, Options{JSON: true})
	if exit != 1 {
		t.Fatalf("json lint on stale: exit %d, output:\n%s", exit, out)
	}
	var findings []Finding
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("output is not a JSON findings array: %v\n%s", err, out)
	}
	if len(findings) != 1 || findings[0].Analyzer != "waiver" || findings[0].Line == 0 {
		t.Fatalf("unexpected findings: %+v", findings)
	}
}

func TestJSONWaiverInventory(t *testing.T) {
	exit, out := lintDir(t, Package{
		ImportPath: "waived",
		Dir:        "testdata/waived",
		GoFiles:    []string{"waived.go"},
	}, Options{JSON: true, Waivers: true})
	if exit != 0 {
		t.Fatalf("json inventory: exit %d, output:\n%s", exit, out)
	}
	var waivers []Waiver
	if err := json.Unmarshal([]byte(out), &waivers); err != nil {
		t.Fatalf("output is not a JSON waiver array: %v\n%s", err, out)
	}
	if len(waivers) != 1 || waivers[0].Analyzer != "detflow" || waivers[0].Hits != 1 || waivers[0].Stale {
		t.Fatalf("unexpected inventory: %+v", waivers)
	}
}

// TestTestsFlag pins -tests semantics: the finding lives in a
// _test.go file, so only a Tests run sees it.
func TestTestsFlag(t *testing.T) {
	pkg := Package{
		ImportPath:  "testy",
		Dir:         "testdata/testy",
		GoFiles:     []string{"testy.go"},
		TestGoFiles: []string{"testy_test.go"},
	}
	if exit, out := lintDir(t, pkg, Options{}); exit != 0 {
		t.Fatalf("without Tests: exit %d, output:\n%s", exit, out)
	}
	exit, out := lintDir(t, pkg, Options{Tests: true})
	if exit != 1 || !strings.Contains(out, "writes a digest") {
		t.Fatalf("with Tests: exit %d, output:\n%s", exit, out)
	}
}
