// Package driver runs the qcdoclint analyzer suite over go-list-resolved
// packages and owns everything around the analyzers themselves: file
// selection (including in-package _test.go variants), finding
// collection and ordering, JSON rendering, and the waiver lifecycle.
//
// The waiver lifecycle is the part that keeps marker comments honest.
// Every //qcdoclint:<kind> marker in linted source is inventoried with
// the analyzer it belongs to and the number of diagnostics it actually
// suppressed in this run (suppression hits are counted by
// analysis.Pass at report-decision time, so the count reflects real
// reports that would otherwise have fired). A marker with zero hits is
// stale — the code it excused was fixed, or the marker never matched —
// and staleness is itself a lint failure, as is a marker kind no
// analyzer owns. The analysis implementation packages and the driver
// command are exempt from marker scanning: their comments discuss
// markers by name.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"os/exec"
	"sort"
	"strings"

	"qcdoc/internal/analysis"
	"qcdoc/internal/analysis/contsafe"
	"qcdoc/internal/analysis/crossalias"
	"qcdoc/internal/analysis/detflow"
	"qcdoc/internal/analysis/fleetsafe"
	"qcdoc/internal/analysis/hotalloc"
	"qcdoc/internal/analysis/load"
	"qcdoc/internal/analysis/obssafe"
	"qcdoc/internal/analysis/shardsafe"
	"qcdoc/internal/analysis/simtime"
)

// Suite is the analyzer suite in reporting order. detflow supersedes
// maprange: it carries all of maprange's lexical rules plus the
// interprocedural, select-order, and value-taint extensions, so
// running both would double-report every map-range finding.
var Suite = []*analysis.Analyzer{
	simtime.Analyzer,
	detflow.Analyzer,
	crossalias.Analyzer,
	hotalloc.Analyzer,
	contsafe.Analyzer,
	shardsafe.Analyzer,
	fleetsafe.Analyzer,
	obssafe.Analyzer,
}

// Package is the subset of `go list -json` the driver needs: where a
// package lives and which files the current build configuration
// actually compiles (so build tags and file suffixes are honored
// without reimplementing them).
type Package struct {
	ImportPath  string
	Dir         string
	GoFiles     []string
	TestGoFiles []string
}

// Options select what Lint runs and how it reports.
type Options struct {
	Tests   bool // also load in-package _test.go files
	JSON    bool // machine-readable output
	Waivers bool // print the waiver inventory instead of findings

	Out io.Writer // findings / inventory (default os.Stdout)
	Err io.Writer // operational errors (default os.Stderr)
}

// Finding is one diagnostic, positioned and attributed.
type Finding struct {
	Pos      string `json:"pos"` // file:line:col, the problem-matcher key
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Analyzer string `json:"analyzer"`
}

// Waiver is one marker comment's lifecycle record for a run.
type Waiver struct {
	Pos      string `json:"pos"` // file:line
	Marker   string `json:"marker"`
	Analyzer string `json:"analyzer,omitempty"` // empty: no analyzer owns the marker
	Hits     int    `json:"hits"`               // diagnostics suppressed this run
	Stale    bool   `json:"stale"`
}

// List resolves package patterns through the go tool, so qcdoclint
// sees exactly the files a build would.
func List(patterns []string) ([]Package, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles,TestGoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, errb.String())
	}
	var pkgs []Package
	dec := json.NewDecoder(&out)
	for dec.More() {
		var lp Package
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// markerExempt reports whether a package's comments are allowed to
// mention markers without being waivers: the analyzers and their
// driver document marker names in prose.
func markerExempt(importPath string) bool {
	return strings.Contains(importPath, "internal/analysis") ||
		strings.HasSuffix(importPath, "cmd/qcdoclint")
}

// Lint runs the suite over the packages and returns the process exit
// status: 0 clean, 1 findings (including stale or unknown waivers),
// 2 operational error.
func Lint(pkgs []Package, opts Options) int {
	out, errw := opts.Out, opts.Err
	if out == nil {
		out = os.Stdout
	}
	if errw == nil {
		errw = os.Stderr
	}

	ctx := load.NewContext()
	exit := 0
	var findings []Finding
	var waivers []Waiver
	for _, lp := range pkgs {
		files := append([]string{}, lp.GoFiles...)
		if opts.Tests {
			files = append(files, lp.TestGoFiles...)
		}
		if len(files) == 0 {
			continue
		}
		p, err := ctx.LoadFiles(lp.Dir, lp.ImportPath, files)
		if err != nil {
			fmt.Fprintf(errw, "qcdoclint: %s: %v\n", lp.ImportPath, err)
			exit = 2
			continue
		}
		hits := map[token.Pos]int{}
		for _, a := range Suite {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      p.Fset,
				Files:     p.Files,
				Pkg:       p.Types,
				TypesInfo: p.Info,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				pos := p.Fset.Position(d.Pos)
				findings = append(findings, Finding{
					Pos:      pos.String(),
					File:     pos.Filename,
					Line:     pos.Line,
					Col:      pos.Column,
					Message:  d.Message,
					Analyzer: name,
				})
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(errw, "qcdoclint: %s on %s: %v\n", a.Name, lp.ImportPath, err)
				exit = 2
			}
			for pos, n := range pass.Hits {
				hits[pos] += n
			}
		}
		if markerExempt(lp.ImportPath) {
			continue
		}
		for _, site := range analysis.ScanMarkers(p.Files) {
			pos := p.Fset.Position(site.Pos)
			w := Waiver{
				Pos:      fmt.Sprintf("%s:%d", pos.Filename, pos.Line),
				Marker:   site.Marker,
				Analyzer: analysis.MarkerOwners[site.Marker],
				Hits:     hits[site.Pos],
			}
			w.Stale = w.Hits == 0
			waivers = append(waivers, w)
			switch {
			case w.Analyzer == "":
				findings = append(findings, Finding{
					Pos:  fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column),
					File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Message:  fmt.Sprintf("unknown marker //%s: no analyzer owns it; fix the marker name or delete it", site.Marker),
					Analyzer: "waiver",
				})
			case w.Stale:
				findings = append(findings, Finding{
					Pos:  fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column),
					File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Message:  fmt.Sprintf("stale waiver: //%s suppresses no %s diagnostic; the code it excused is gone, so delete the marker", site.Marker, w.Analyzer),
					Analyzer: "waiver",
				})
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Pos != findings[j].Pos {
			return findings[i].Pos < findings[j].Pos
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	sort.Slice(waivers, func(i, j int) bool { return waivers[i].Pos < waivers[j].Pos })

	if opts.Waivers {
		return reportWaivers(out, waivers, opts.JSON, exit)
	}
	if opts.JSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(errw, "qcdoclint: encoding findings: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(out, "%s: %s (%s)\n", f.Pos, f.Message, f.Analyzer)
		}
	}
	if len(findings) > 0 && exit == 0 {
		exit = 1
	}
	return exit
}

// reportWaivers prints the inventory. Stale and unknown markers fail
// the run exactly as they do in lint mode, so `-waivers` is safe to
// use as a gate on its own.
func reportWaivers(out io.Writer, waivers []Waiver, asJSON bool, exit int) int {
	bad := 0
	for _, w := range waivers {
		if w.Stale || w.Analyzer == "" {
			bad++
		}
	}
	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if waivers == nil {
			waivers = []Waiver{}
		}
		if err := enc.Encode(waivers); err != nil {
			return 2
		}
	} else {
		for _, w := range waivers {
			state := fmt.Sprintf("suppresses %d diagnostic(s)", w.Hits)
			owner := w.Analyzer
			if owner == "" {
				owner, state = "?", "UNKNOWN marker"
			} else if w.Stale {
				state = "STALE: suppresses nothing"
			}
			fmt.Fprintf(out, "%s: //%s (%s) %s\n", w.Pos, w.Marker, owner, state)
		}
		fmt.Fprintf(out, "%d waiver(s), %d stale/unknown\n", len(waivers), bad)
	}
	if bad > 0 && exit == 0 {
		exit = 1
	}
	return exit
}
