// Package waived carries one real detflow finding under a justified
// waiver: the marker must accrue a suppression hit and the package
// must lint clean.
package waived

import "hash/fnv"

func digestAll(m map[string]int) uint64 {
	h := fnv.New64a()
	//qcdoclint:detflow-ok fixture: order-insensitive in the scenario this models
	for k := range m {
		h.Write([]byte(k))
	}
	return h.Sum64()
}
