// Package unknown carries a marker kind no analyzer owns: a typo'd
// marker must fail the run rather than silently waive nothing.
package unknown

//qcdoclint:detrflow-ok misspelled analyzer name
func alsoClean() int { return 7 }
