// Package testy is clean in its non-test files; the finding lives in
// testy_test.go, so only a -tests run sees it.
package testy

func Keys(m map[string]int) int { return len(m) }
