package testy

import "hash/fnv"

func digestHelper(m map[string]int) uint64 {
	h := fnv.New64a()
	for k := range m {
		h.Write([]byte(k))
	}
	return h.Sum64()
}
