// Package stale carries a marker that suppresses nothing: the driver
// must fail the run with a stale-waiver finding.
package stale

//qcdoclint:detflow-ok deliberately stale: nothing below ever reports
func clean() int { return 42 }
