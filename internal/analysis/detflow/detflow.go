// Package detflow is the interprocedural successor to maprange: it
// tracks nondeterminism from its sources into order-observable sinks
// through the package call graph, so a source laundered through one
// helper call no longer escapes the determinism gate.
//
// Sources come in two shapes. Order sources are regions whose execution
// order the host chooses: the body of a range over a map, and the case
// bodies of a select with more than one clause. Value sources are
// expressions whose result encodes host state: wall-clock reads, the
// process-global math/rand, %p pointer formatting, and pointer-to-
// uintptr conversions. Sinks are the places where order or a value
// becomes observable in the simulation record: event scheduling (the
// engine breaks simultaneous-event ties by scheduling sequence, so
// scheduling in map order reorders the downstream event stream — and
// the cross-shard CrossAt/CrossPayload/AtGlobal carry that order across
// shards), digest hashing, appends to ordered output, and telemetry
// emission.
//
// What maprange could only see lexically, detflow sees through calls:
// a map-range body that calls a same-package helper which schedules an
// event is flagged at the range statement, with the callgraph witness
// chain in the message. Value taint likewise flows through assignments
// and into callees that pass the parameter to a sink
// (callgraph.Summary.ParamSinks), and out of callees whose results
// derive from a source (ReturnsNondet).
//
// Repairs recognized, mirroring maprange: ranging over sorted keys
// (the sorted slice is not a map), collecting then sorting before
// anything observes the order, and floating-point or last-write
// accumulation that stays commutative (integer counters, min/max by
// key). Everything else carries //qcdoclint:detflow-ok with an in-line
// justification.
package detflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"qcdoc/internal/analysis"
	"qcdoc/internal/analysis/callgraph"
)

// Analyzer is the detflow checker.
var Analyzer = &analysis.Analyzer{
	Name: "detflow",
	Doc: "track nondeterminism sources (map order, select order, %p, global rand, " +
		"wall clock) through the call graph into order-observable sinks (event " +
		"scheduling, digest hashing, ordered append, telemetry); supersedes maprange's " +
		"lexical check. Waive a flow with //qcdoclint:detflow-ok.",
	Run: run,
}

// sorters recognize the "sorted before observation" repair for
// appended output (maprange's rule, kept verbatim).
var sorters = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	"SortFunc": true, "SortStableFunc": true,
}

func run(pass *analysis.Pass) (any, error) {
	g := callgraph.Build(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, g, fd)
		}
	}
	return nil, nil
}

// region is one order-source context: a map-range body or a select
// case body, anchored where the diagnostic should point.
type region struct {
	pos  token.Pos
	body ast.Node
	kind string // "map iteration over m" / "select case order"
	// rs is set for map ranges (sort-after repair needs the range end).
	rs *ast.RangeStmt
}

func checkFunc(pass *analysis.Pass, g *callgraph.Graph, fd *ast.FuncDecl) {
	var regions []region
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.RangeStmt:
			tv, ok := pass.TypesInfo.Types[nn.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			regions = append(regions, region{
				pos:  nn.For,
				body: nn.Body,
				kind: "iteration over map " + types.ExprString(nn.X),
				rs:   nn,
			})
		case *ast.SelectStmt:
			if len(nn.Body.List) < 2 {
				return true
			}
			for _, cl := range nn.Body.List {
				cc := cl.(*ast.CommClause)
				// Real brace positions matter: declaredWithin compares
				// against the block's span, and a zero Lbrace would
				// swallow every declaration in the file.
				regions = append(regions, region{
					pos:  nn.Select,
					body: &ast.BlockStmt{Lbrace: cc.Colon, List: cc.Body, Rbrace: cc.End() - 1},
					kind: "select case order",
				})
			}
		}
		return true
	})
	taint := newTaintState(pass, g, fd)
	for _, r := range regions {
		scanRegion(pass, g, fd, r, taint)
	}
	taint.reportValueFlows()
}

// scanRegion reports every order-observable effect inside one order
// context, looking through same-package calls via the callgraph
// summaries.
func scanRegion(pass *analysis.Pass, g *callgraph.Graph, fd *ast.FuncDecl, r region, ts *taintState) {
	report := func(pos token.Pos, format string, args ...any) {
		if pass.SuppressedAt(analysis.MarkerDetflowOK, pos, r.pos) {
			return
		}
		pass.Reportf(r.pos, format, args...)
	}
	ast.Inspect(r.body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			// A literal scheduled or stored here runs later, in heap
			// order; the scheduling call itself is the order sink.
			return false
		case *ast.AssignStmt:
			for i, rhs := range nn.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !callgraph.IsBuiltinAppend(pass.TypesInfo, call) {
					continue
				}
				var target types.Object
				if i < len(nn.Lhs) {
					if id := analysis.RootIdent(nn.Lhs[i]); id != nil {
						target = analysis.ObjOf(pass.TypesInfo, id)
					}
				}
				if target != nil && declaredWithin(target, r.body) {
					continue
				}
				if target != nil && r.rs != nil && sortedAfter(pass, fd, r.rs, target) {
					continue
				}
				report(nn.Pos(),
					"%s is unordered but the body appends to ordered output (%s); range over sorted keys, sort the result before use, or mark //qcdoclint:detflow-ok",
					r.kind, types.ExprString(nn.Lhs[i]))
			}
			// Order leaking into values: a write to a variable that
			// outlives the region is last-iteration-wins, and compound
			// floating-point accumulation is order-dependent.
			ts.seedRegionAssign(nn, r)
		case *ast.CallExpr:
			if name, ok := callgraph.IsSchedulerCall(pass.TypesInfo, nn); ok {
				report(nn.Pos(),
					"%s is unordered but the body schedules events (%s); simultaneous-event ties follow scheduling order, so range over sorted keys or mark //qcdoclint:detflow-ok",
					r.kind, name)
			}
			if callgraph.IsTelemetryEmit(pass.TypesInfo, nn) {
				report(nn.Pos(),
					"%s is unordered but the body feeds a telemetry snapshot; emit in sorted key order or mark //qcdoclint:detflow-ok",
					r.kind)
			}
			if callgraph.IsDigestWrite(pass.TypesInfo, nn) {
				report(nn.Pos(),
					"%s is unordered but the body writes a digest; hash in sorted key order or mark //qcdoclint:detflow-ok",
					r.kind)
			}
			if callee := callgraph.CalleeFunc(pass.TypesInfo, nn); callee != nil && callee.Pkg() == pass.Pkg {
				if flags := callgraph.SinkFlags(g.Summary(callee).Flags); flags != 0 {
					first := flags & -flags
					report(nn.Pos(),
						"%s is unordered but the body calls %s, which %v (%s); range over sorted keys or mark //qcdoclint:detflow-ok",
						r.kind, callee.Name(), flags, g.Why(callee, first))
				}
			}
		}
		return true
	})
}

// declaredWithin reports whether obj's declaration lies inside node —
// an append target local to the region cannot leak its order.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// sortedAfter reports whether, later in the same function, the slice
// object accumulated inside the range is passed to a sort call — the
// collect-then-sort idiom that makes the map order unobservable.
func sortedAfter(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, target types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		pkg, _, name, ok := analysis.ReceiverOf(pass.TypesInfo, call)
		if !ok || !sorters[name] || !(pkg == "sort" || pkg == "slices") {
			return true
		}
		for _, arg := range call.Args {
			if id := analysis.RootIdent(arg); id != nil && analysis.ObjOf(pass.TypesInfo, id) == target {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// taintState is the per-function value-taint pass: which local objects
// hold host-nondeterministic values, and where they flow into sinks.
type taintState struct {
	pass *analysis.Pass
	g    *callgraph.Graph
	fd   *ast.FuncDecl
	// tainted maps each tainted object to a short description of its
	// source ("time.Now", "map iteration order", ...).
	tainted map[types.Object]string
}

func newTaintState(pass *analysis.Pass, g *callgraph.Graph, fd *ast.FuncDecl) *taintState {
	return &taintState{pass: pass, g: g, fd: fd, tainted: map[types.Object]string{}}
}

// seedRegionAssign taints variables that carry a map/select region's
// order out in value form: plain assignment of region-dependent data to
// a variable that outlives the region (last iteration wins), and
// compound floating-point accumulation (non-associative, so the sum
// depends on iteration order). Integer counters and boolean flags are
// commutative and stay clean.
func (ts *taintState) seedRegionAssign(as *ast.AssignStmt, r region) {
	if r.rs == nil {
		return
	}
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{r.rs.Key, r.rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id != nil {
			if o := analysis.ObjOf(ts.pass.TypesInfo, id); o != nil {
				loopVars[o] = true
			}
		}
	}
	mentionsLoopVar := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && loopVars[analysis.ObjOf(ts.pass.TypesInfo, id)] {
				found = true
			}
			return !found
		})
		return found
	}
	for i, lhs := range as.Lhs {
		id := analysis.RootIdent(lhs)
		if id == nil {
			continue
		}
		obj := analysis.ObjOf(ts.pass.TypesInfo, id)
		if obj == nil || declaredWithin(obj, r.body) {
			continue
		}
		switch as.Tok {
		case token.ASSIGN:
			// Only a whole-variable overwrite is last-write-wins; keyed
			// writes (m2[k] = v) land per-key regardless of order, and
			// appends are owned by the ordered-append rule with its
			// sort-after repair.
			if _, plain := lhs.(*ast.Ident); !plain || i >= len(as.Rhs) {
				continue
			}
			if call, ok := as.Rhs[i].(*ast.CallExpr); ok && callgraph.IsBuiltinAppend(ts.pass.TypesInfo, call) {
				continue
			}
			if mentionsLoopVar(as.Rhs[i]) {
				ts.taint(obj, "map iteration order (last write wins)")
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if basic, ok := obj.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsFloat != 0 {
				ts.taint(obj, "map-ordered floating-point accumulation")
			}
		}
	}
}

func (ts *taintState) taint(obj types.Object, why string) {
	if _, seen := ts.tainted[obj]; !seen {
		ts.tainted[obj] = why
	}
}

// reportValueFlows runs the intraprocedural value-taint fixpoint and
// reports tainted values reaching sinks. Assignment edges are collected
// flow-insensitively (the function is small by construction: the
// interesting flows are a handful of statements apart).
func (ts *taintState) reportValueFlows() {
	info := ts.pass.TypesInfo

	// exprTaint returns a source description if the expression's value
	// derives from a nondeterminism source under the current taint set.
	var exprTaint func(e ast.Expr) (string, bool)
	exprTaint = func(e ast.Expr) (string, bool) {
		why := ""
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			switch nn := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.Ident:
				if w, ok := ts.tainted[analysis.ObjOf(info, nn)]; ok {
					why, found = w, true
				}
			case *ast.CallExpr:
				if w, ok := callgraph.ValueSourceCall(info, nn); ok {
					why, found = w, true
					return false
				}
				if callgraph.UintptrOfPointer(info, nn) {
					why, found = "pointer-to-uintptr conversion", true
					return false
				}
				if callee := callgraph.CalleeFunc(info, nn); callee != nil && callee.Pkg() == ts.pass.Pkg {
					if ts.g.Summary(callee).Flags&callgraph.ReturnsNondet != 0 {
						why, found = ts.g.Why(callee, callgraph.ReturnsNondet), true
						return false
					}
				}
			}
			return true
		})
		return why, found
	}

	// Propagate taint through assignments until stable.
	for changed := true; changed; {
		changed = false
		ast.Inspect(ts.fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id := analysis.RootIdent(lhs)
				if id == nil {
					continue
				}
				obj := analysis.ObjOf(info, id)
				if obj == nil {
					continue
				}
				if _, already := ts.tainted[obj]; already {
					continue
				}
				rhs := ast.Expr(nil)
				if i < len(as.Rhs) {
					rhs = as.Rhs[i]
				} else if len(as.Rhs) == 1 {
					rhs = as.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				if why, tainted := exprTaint(rhs); tainted {
					ts.tainted[obj] = why
					changed = true
				}
			}
			return true
		})
	}

	// Report tainted values reaching sinks.
	ast.Inspect(ts.fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sinkName := ""
		var sinkMask uint32 // param mask for callee sinks; ^0 for intrinsic sinks
		if name, ok := callgraph.IsSchedulerCall(info, call); ok {
			sinkName, sinkMask = "event scheduling ("+name+")", ^uint32(0)
		} else if callgraph.IsTelemetryEmit(info, call) {
			sinkName, sinkMask = "a telemetry snapshot", ^uint32(0)
		} else if callgraph.IsDigestWrite(info, call) {
			sinkName, sinkMask = "a digest", ^uint32(0)
		} else if callee := callgraph.CalleeFunc(info, call); callee != nil && callee.Pkg() == ts.pass.Pkg {
			if ps := ts.g.Summary(callee).ParamSinks; ps != 0 {
				sinkName, sinkMask = callee.Name()+" (which passes it to a sink)", ps
			}
		}
		if sinkName == "" {
			return true
		}
		for k, arg := range call.Args {
			if k < 32 && sinkMask&(1<<uint(k)) == 0 {
				continue
			}
			if why, tainted := exprTaint(arg); tainted {
				if !ts.pass.Suppressed(analysis.MarkerDetflowOK, call.Pos()) {
					ts.pass.Reportf(call.Pos(),
						"value derived from %s reaches %s; the simulation record must not observe host state — derive it from the engine clock/seeded rng or mark //qcdoclint:detflow-ok",
						why, sinkName)
				}
				return true
			}
		}
		return true
	})
}
