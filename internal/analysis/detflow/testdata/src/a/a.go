// Package a exercises detflow's source->sink matrix: order sources
// (map iteration, select case order) and value sources (wall clock,
// global rand, %p, pointer-to-uintptr) flowing into order-observable
// sinks (event scheduling, digest hashing, ordered append, telemetry
// emission), plus the repairs and waivers that keep a flow quiet.
package a

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"
	"unsafe"

	"event"
	"telemetry"
)

// ---- order source: map iteration ----

func mapSchedules(eng *event.Engine, m map[string]int) {
	for k, v := range m { // want `iteration over map m is unordered but the body schedules events \(At\)`
		_ = k
		eng.At(event.Time(v), func() {})
	}
}

func mapAppends(m map[string]int, log []string) []string {
	for k := range m { // want `iteration over map m is unordered but the body appends to ordered output \(log\)`
		log = append(log, k)
	}
	return log
}

func mapEmits(emit telemetry.EmitFunc, m map[string]float64) {
	for k, v := range m { // want `iteration over map m is unordered but the body feeds a telemetry snapshot`
		emit(k, v)
	}
}

func mapDigests(m map[string]int) uint64 {
	h := fnv.New64a()
	for k := range m { // want `iteration over map m is unordered but the body writes a digest`
		h.Write([]byte(k))
	}
	return h.Sum64()
}

// ---- order source: select case order ----

func selectSchedules(eng *event.Engine, a, b chan int) {
	select { // want `select case order is unordered but the body schedules events \(After\)`
	case v := <-a:
		eng.After(event.Time(v), func() {})
	case <-b:
	}
}

func selectAppends(a, b chan int, out *[]int) {
	select { // want `select case order is unordered but the body appends to ordered output \(\*out\)`
	case v := <-a:
		*out = append(*out, v)
	case v := <-b:
		*out = append(*out, v)
	}
}

// ---- order leaking out as a value ----

func mapLastWins(m map[string]int) uint64 {
	last := ""
	for k := range m {
		last = k
	}
	h := fnv.New64a()
	h.Write([]byte(last)) // want `value derived from map iteration order \(last write wins\) reaches a digest`
	return h.Sum64()
}

func mapFloatAccum(emit telemetry.EmitFunc, m map[string]float64) {
	sum := 0.0
	for _, v := range m {
		sum += v
	}
	emit("sum", sum) // want `value derived from map-ordered floating-point accumulation reaches a telemetry snapshot`
}

// ---- value source: wall clock ----

func wallClockSchedules(eng *event.Engine) {
	t := time.Now()
	eng.At(event.Time(t.UnixNano()), func() {}) // want `value derived from time.Now reaches event scheduling \(At\)`
}

func wallClockEmits(emit telemetry.EmitFunc) {
	since := time.Since(time.Time{})
	emit("elapsed", float64(since)) // want `value derived from time.Since reaches a telemetry snapshot`
}

// ---- value source: process-global rand ----

func randSchedules(eng *event.Engine) {
	jitter := rand.Int63()
	eng.After(event.Time(jitter), func() {}) // want `value derived from rand.Int63 reaches event scheduling \(After\)`
}

func randDigests(buf []byte) uint64 {
	n := rand.Intn(len(buf))
	h := fnv.New64a()
	h.Write(buf[:n]) // want `value derived from rand.Intn reaches a digest`
	return h.Sum64()
}

// ---- value source: pointer identity ----

func pointerFormatDigests(eng *event.Engine) uint64 {
	label := fmt.Sprintf("%p", eng)
	h := fnv.New64a()
	h.Write([]byte(label)) // want `value derived from fmt.Sprintf\(%p\) reaches a digest`
	return h.Sum64()
}

func uintptrDigests(eng *event.Engine) uint64 {
	addr := uintptr(unsafe.Pointer(eng))
	h := fnv.New64a()
	h.Write([]byte(fmt.Sprint(addr))) // want `value derived from pointer-to-uintptr conversion reaches a digest`
	return h.Sum64()
}

// ---- interprocedural: flows through same-package helpers ----

func appendHelper(logp *[]string, s string) {
	*logp = append(*logp, s)
}

func mapCallsAppender(m map[string]int, logp *[]string) {
	for k := range m { // want `iteration over map m is unordered but the body calls appendHelper, which appends to ordered output \(appendHelper -> append to \*logp\)`
		appendHelper(logp, k)
	}
}

func nondetStamp() int64 {
	return time.Now().UnixNano()
}

func callsNondetHelper(eng *event.Engine) {
	t := nondetStamp()
	eng.At(event.Time(t), func() {}) // want `value derived from nondetStamp -> time.Now reaches event scheduling \(At\)`
}

func forwardToSchedule(eng *event.Engine, when event.Time) {
	eng.At(when, func() {})
}

func taintedIntoParamSink(eng *event.Engine) {
	t := time.Now().UnixNano()
	forwardToSchedule(eng, event.Time(t)) // want `value derived from time.Now reaches forwardToSchedule \(which passes it to a sink\)`
}

// ---- repairs: these stay quiet ----

// sortedKeys collects, sorts, then observes: the map order never
// reaches a sink.
func sortedKeys(eng *event.Engine, m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i := range keys {
		eng.At(event.Time(i), func() {})
	}
}

// localAppend's target dies inside the loop body; nothing outlives the
// iteration to observe its order.
func localAppend(m map[string]int) {
	for k := range m {
		parts := []byte(nil)
		parts = append(parts, k...)
		_ = parts
	}
}

// intCounter accumulates commutatively: integer addition is
// order-independent.
func intCounter(emit telemetry.EmitFunc, m map[string]int) {
	n := 0
	for _, v := range m {
		n += v
	}
	emit("n", float64(n))
}

// keyedCopy writes land per-key, not last-write-wins.
func keyedCopy(m, dst map[string]int) {
	for k, v := range m {
		dst[k] = v
	}
}

// ---- waivers: justified flows accrue hits and stay quiet ----

func waivedRegion(eng *event.Engine, m map[string]int) {
	//qcdoclint:detflow-ok handlers here are commutative no-ops; order cannot reach the digest
	for _, v := range m {
		eng.At(event.Time(v), func() {})
	}
}

func waivedValue(eng *event.Engine) {
	t := time.Now()
	eng.At(event.Time(t.UnixNano()), func() {}) //qcdoclint:detflow-ok host-time label only feeds the run banner
}
