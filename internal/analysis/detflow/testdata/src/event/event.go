// Package event is a minimal stand-in for qcdoc/internal/event: the
// analyzers match scheduler calls by (package tail, method name), so
// fixtures only need the shapes, not the engine.
package event

type Time int64

type Handler interface{ HandleEvent(arg uint64) }

type Engine struct{}

func (e *Engine) Now() Time                               { return 0 }
func (e *Engine) At(t Time, fn func())                    {}
func (e *Engine) After(d Time, fn func())                 {}
func (e *Engine) AtHandler(t Time, h Handler, arg uint64) {}
func (e *Engine) NewTimer(fn func()) *Timer               { return &Timer{} }
func (e *Engine) Run() bool                               { return false }
func (e *Engine) RunAll()                                 {}
func (e *Engine) Spawn(name string, fn func(*Proc))       {}

type Timer struct{}

func (t *Timer) Arm(d Time)    {}
func (t *Timer) ArmAt(at Time) {}
func (t *Timer) Stop()         {}

type Proc struct{}

func (p *Proc) Sleep(d Time)      {}
func (p *Proc) SleepUntil(t Time) {}

type Gate struct{}

func (g *Gate) Wait(p *Proc) {}
func (g *Gate) Fire()        {}

type Queue struct{}

func (q *Queue) Get(p *Proc) int { return 0 }
func (q *Queue) Put(v int)       {}

type StateMachine struct{}

func (s *StateMachine) Sleep(d Time, fn func()) {}
func (s *StateMachine) Goto(fn func())          {}

// Cross-shard surface, so fixtures can exercise the cross schedulers.
type Payload [4]uint64

type PayloadHandler interface{ HandlePayload(arg uint64, p Payload) }

func (e *Engine) CrossAt(dst *Engine, t Time, fn func())                                  {}
func (e *Engine) CrossPayload(dst *Engine, t Time, h PayloadHandler, a uint64, p Payload) {}
