// Package laundered is the acceptance pair for the interprocedural
// gate: Broadcast schedules events in map order, but the scheduling
// call is laundered through one same-package helper. maprange's lexical
// scan sees only a plain function call in the loop body and stays
// silent (detflow_test pins that); detflow's callgraph summary carries
// the Schedules bit out of helper and flags the range statement with
// the witness chain.
package laundered

import "event"

func helper(eng *event.Engine, when event.Time) {
	eng.At(when, func() {})
}

// Broadcast fans a tick out to every peer. The map's iteration order
// becomes event-scheduling order one call level down.
func Broadcast(eng *event.Engine, peers map[string]event.Time) {
	for _, when := range peers { // want `iteration over map peers is unordered but the body calls helper, which schedules events \(helper -> event\.At\)`
		helper(eng, when)
	}
}
