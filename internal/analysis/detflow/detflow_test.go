package detflow

import (
	"testing"

	"qcdoc/internal/analysis"
	"qcdoc/internal/analysis/analysistest"
	"qcdoc/internal/analysis/load"
	"qcdoc/internal/analysis/maprange"
)

func TestDetflow(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "a", "laundered")
}

// TestMaprangeMissesLaundered pins the reason detflow exists: the
// laundered fixture schedules events in map order through one helper
// call, which maprange's lexical scan cannot see. If maprange ever
// starts reporting here, the fixture no longer demonstrates the
// interprocedural gap and needs a deeper laundering chain.
func TestMaprangeMissesLaundered(t *testing.T) {
	ctx := load.NewContext("testdata/src")
	pkg, err := ctx.LoadDir("testdata/src/laundered", "laundered")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  maprange.Analyzer,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := maprange.Analyzer.Run(pass); err != nil {
		t.Fatalf("maprange failed: %v", err)
	}
	for _, d := range diags {
		t.Errorf("maprange unexpectedly caught the laundered flow at %s: %s",
			pkg.Fset.Position(d.Pos), d.Message)
	}
	if len(diags) == 0 {
		t.Logf("maprange reports nothing on laundered (as designed); detflow flags it via the callgraph")
	}
}
