// Package maprange flags map iterations whose nondeterministic order
// can leak into the simulation.
//
// Go randomizes map iteration order on purpose. Inside the simulator
// that randomness is a determinism hazard wherever the loop body does
// something order-sensitive: scheduling events (the engine breaks
// simultaneous-event ties by scheduling sequence, so scheduling in map
// order reorders the whole downstream event stream), appending to a
// slice that readers treat as ordered, or emitting telemetry counter
// rows. The fix is always the same and the analyzer recognizes it:
// collect the keys, sort them, range over the sorted slice — or sort
// the collected output before anyone can observe it (a sort call on the
// appended slice later in the same function is accepted). Iterations
// that are genuinely order-free carry //qcdoclint:unordered-ok.
package maprange

import (
	"go/ast"
	"go/types"

	"qcdoc/internal/analysis"
)

// Analyzer is the maprange checker.
var Analyzer = &analysis.Analyzer{
	Name: "maprange",
	Doc: "flag range-over-map loops that schedule events, append to ordered output, " +
		"or feed telemetry snapshots; sort the keys first, sort the output before use, " +
		"or mark the loop //qcdoclint:unordered-ok.",
	Run: run,
}

// schedulers are event-package methods that enqueue or reorder
// simulated activity; calling one from inside a map iteration stamps
// map order onto event sequence numbers.
var schedulers = map[string]bool{
	"At": true, "After": true, "AtHandler": true, "AfterHandler": true,
	"Spawn": true, "SpawnDaemon": true,
	"Put": true, "PutAfter": true, "Fire": true,
	"Arm": true, "ArmAt": true, "Goto": true, "Sleep": true,
}

// sorters recognize the "sorted before observation" repair for
// appended output.
var sorters = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true,
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	"SortFunc": true, "SortStableFunc": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if pass.Suppressed(analysis.MarkerUnorderedOK, rs.Pos()) {
			return true
		}
		reportHazards(pass, fd, rs)
		return true
	})
}

// reportHazards scans one map-range body and reports each
// order-sensitive effect it finds.
func reportHazards(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	mapExpr := types.ExprString(rs.X)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range nn.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass.TypesInfo, call) {
					continue
				}
				var target types.Object
				if i < len(nn.Lhs) {
					if id := analysis.RootIdent(nn.Lhs[i]); id != nil {
						target = analysis.ObjOf(pass.TypesInfo, id)
					}
				}
				if target != nil && sortedAfter(pass, fd, rs, target) {
					continue
				}
				pass.Reportf(rs.Pos(),
					"iteration over map %s is unordered but the body appends to ordered output (%s); range over sorted keys, sort the result before use, or mark //qcdoclint:unordered-ok",
					mapExpr, types.ExprString(nn.Lhs[i]))
			}
		case *ast.CallExpr:
			if pkg, _, name, ok := analysis.ReceiverOf(pass.TypesInfo, nn); ok {
				if schedulers[name] && analysis.PkgIs(pkg, "event") {
					pass.Reportf(rs.Pos(),
						"iteration over map %s is unordered but the body schedules events (%s); simultaneous-event ties follow scheduling order, so range over sorted keys or mark //qcdoclint:unordered-ok",
						mapExpr, name)
				}
			}
			if isEmitCall(pass.TypesInfo, nn) {
				pass.Reportf(rs.Pos(),
					"iteration over map %s is unordered but the body feeds a telemetry snapshot; emit in sorted key order or mark //qcdoclint:unordered-ok",
					mapExpr)
			}
		}
		return true
	})
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isEmitCall reports whether the call invokes a telemetry.EmitFunc —
// the snapshot row sink.
func isEmitCall(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "EmitFunc" && analysis.PkgIs(named.Obj().Pkg().Path(), "telemetry")
}

// sortedAfter reports whether, later in the same function, the slice
// object accumulated inside the range is passed to a sort call — the
// collect-then-sort idiom that makes the map order unobservable.
func sortedAfter(pass *analysis.Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, target types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		pkg, _, name, ok := analysis.ReceiverOf(pass.TypesInfo, call)
		if !ok || !sorters[name] || !(pkg == "sort" || pkg == "slices") {
			return true
		}
		for _, arg := range call.Args {
			if id := analysis.RootIdent(arg); id != nil && analysis.ObjOf(pass.TypesInfo, id) == target {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

