// Fixture for the maprange analyzer: map iterations that schedule
// events, append to ordered output, or feed telemetry are flagged;
// sorted-key loops, sort-after collection, commutative reductions, and
// //qcdoclint:unordered-ok waivers are not.
package a

import (
	"sort"

	"event"
	"telemetry"
)

func schedules(eng *event.Engine, wake map[string]event.Time) {
	for _, t := range wake { // want `schedules events \(At\)`
		eng.At(t, func() {})
	}
}

func schedulesQueue(q *event.Queue, pending map[int]int) {
	for _, v := range pending { // want `schedules events \(Put\)`
		q.Put(v)
	}
}

func appendsOrdered(m map[string]int) []string {
	var names []string
	for k := range m { // want `appends to ordered output \(names\)`
		names = append(names, k)
	}
	return names
}

// The collect-then-sort idiom: map order is unobservable once the
// output is sorted before anyone reads it.
func appendsThenSorts(m map[string]int) []string {
	var names []string
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func emits(counters map[string]uint64, emit telemetry.EmitFunc) {
	for name, v := range counters { // want `feeds a telemetry snapshot`
		emit(name, float64(v))
	}
}

// Ranging over a sorted key slice is the canonical repair; only the
// map range itself is order-hazardous.
func sortedKeys(eng *event.Engine, wake map[string]event.Time) {
	keys := make([]string, 0, len(wake))
	for k := range wake {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		eng.At(wake[k], func() {})
	}
}

// A commutative reduction observes nothing of the order.
func sums(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// An explicit waiver silences the loop.
func waived(eng *event.Engine, wake map[string]event.Time) {
	//qcdoclint:unordered-ok all wakes are at distinct times
	for _, t := range wake {
		eng.At(t, func() {})
	}
}
