// Package telemetry is a minimal stand-in for qcdoc/internal/telemetry.
package telemetry

// EmitFunc receives one snapshot row.
type EmitFunc func(name string, value float64)
