package maprange_test

import (
	"testing"

	"qcdoc/internal/analysis/analysistest"
	"qcdoc/internal/analysis/maprange"
)

func TestMaprange(t *testing.T) {
	analysistest.Run(t, "testdata", maprange.Analyzer, "a")
}
