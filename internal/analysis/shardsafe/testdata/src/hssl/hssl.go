// Package hssl is a fixture stand-in for qcdoc/internal/hssl.
package hssl

type Wire struct{}

func (w *Wire) Kill() {}
