// Package event is a minimal stand-in for qcdoc/internal/event: the
// analyzers match scheduler calls by (package tail, method name), so
// fixtures only need the shapes, not the engine.
package event

type Time int64

type Payload [4]uint64

type Handler interface{ HandleEvent(arg uint64) }

type PayloadHandler interface{ HandlePayload(arg uint64, p Payload) }

type Engine struct{}

func (e *Engine) Now() Time                                                  { return 0 }
func (e *Engine) At(t Time, fn func())                                       {}
func (e *Engine) After(d Time, fn func())                                    {}
func (e *Engine) NewTimer(fn func()) *Timer                                  { return &Timer{} }
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc                    { return &Proc{} }
func (e *Engine) SpawnDaemon(name string, fn func(*Proc)) *Proc              { return &Proc{} }
func (e *Engine) CrossAt(dst *Engine, t Time, fn func())                     {}
func (e *Engine) CrossPayload(dst *Engine, t Time, h PayloadHandler, arg uint64, p Payload) {
}

type Cluster struct{}

func (c *Cluster) AtGlobal(t Time, fn func()) {}
func (c *Cluster) OnBarrier(fn func())        {}

type Timer struct{}

func (t *Timer) Arm(d Time) {}
func (t *Timer) Stop()      {}

type Proc struct{}

func (p *Proc) Sleep(d Time) {}

type StateMachine struct{}

func (s *StateMachine) Sleep(d Time, fn func()) {}
