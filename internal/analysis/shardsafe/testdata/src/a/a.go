// Fixture for the shardsafe analyzer: shard-context code (At/After
// closures, timers, spawned bodies, HandleEvent/HandlePayload methods,
// and everything they call in-package) must not index or element-range
// the machine-wide hardware collections; callbacks routed through
// CrossAt/AtGlobal/OnBarrier are exempt, and //qcdoclint:shard-ok
// waives a line.
package a

import (
	"event"
	"hssl"
	"node"
)

type machine struct {
	Nodes []*node.Node
	Wires []*hssl.Wire
}

func literals(eng *event.Engine, m *machine) {
	eng.At(0, func() {
		m.Nodes[3].Crash() // want `indexes the machine-wide \[\]\*node.Node`
	})
	eng.After(10, func() {
		for _, w := range m.Wires { // want `ranges over the machine-wide \[\]\*hssl.Wire`
			w.Kill()
		}
	})
}

func timer(eng *event.Engine, m *machine) {
	t := eng.NewTimer(func() {
		m.Wires[0].Kill() // want `indexes the machine-wide \[\]\*hssl.Wire`
	})
	t.Arm(4)
}

func spawned(eng *event.Engine, m *machine) {
	eng.SpawnDaemon("svc", func(p *event.Proc) {
		m.Nodes[1].TickHeartbeat() // want `indexes the machine-wide \[\]\*node.Node`
	})
}

// Shard context propagates through same-package static calls.
func chain(eng *event.Engine, m *machine) {
	eng.At(0, func() { step(m) })
}

func step(m *machine) {
	m.Nodes[0].Crash() // want `indexes the machine-wide \[\]\*node.Node`
}

// Dispatch methods are shard context by construction.
type svc struct{ m *machine }

func (s *svc) HandleEvent(uint64) {
	s.m.Nodes[2].Crash() // want `indexes the machine-wide \[\]\*node.Node`
}

func (s *svc) HandlePayload(arg uint64, p event.Payload) {
	s.m.Wires[1].Kill() // want `indexes the machine-wide \[\]\*hssl.Wire`
}

// Index-only ranges never touch elements: not flagged.
func indexOnly(eng *event.Engine, m *machine) {
	eng.At(0, func() {
		for r := range m.Nodes {
			_ = r
		}
	})
}

// The serialized tiers are the sanctioned escape hatches: CrossAt
// callbacks run on the owning shard, AtGlobal/OnBarrier callbacks run
// serially between windows.
func exemptLiterals(eng, dst *event.Engine, cl *event.Cluster, m *machine) {
	eng.At(0, func() {
		eng.CrossAt(dst, 5, func() {
			m.Nodes[4].Crash()
		})
	})
	cl.AtGlobal(7, func() {
		for _, n := range m.Nodes {
			n.TickHeartbeat()
		}
	})
	cl.OnBarrier(func() {
		m.Wires[2].Kill()
	})
}

// A method value handed to AtGlobal is exempt even when some other
// registration would otherwise drag it into shard context.
type sampler struct{ m *machine }

func (s *sampler) tickAll() {
	for _, n := range s.m.Nodes {
		n.TickHeartbeat()
	}
}

func (s *sampler) arm(cl *event.Cluster) {
	cl.AtGlobal(9, s.tickAll)
}

// Plain code outside any shard context may touch the collections: the
// machine builder and test harnesses run before the engine does.
func buildTime(m *machine) {
	for _, n := range m.Nodes {
		n.TickHeartbeat()
	}
	m.Wires[0].Kill()
}

// An explicit waiver records a rank-local access.
func waived(eng *event.Engine, m *machine, rank int) {
	eng.At(0, func() {
		m.Nodes[rank].TickHeartbeat() //qcdoclint:shard-ok own rank only
	})
}
