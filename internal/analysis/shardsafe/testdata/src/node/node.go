// Package node is a fixture stand-in for qcdoc/internal/node.
package node

type Node struct{ Beat uint64 }

func (n *Node) Crash()         {}
func (n *Node) TickHeartbeat() { n.Beat++ }
