package shardsafe_test

import (
	"testing"

	"qcdoc/internal/analysis/analysistest"
	"qcdoc/internal/analysis/shardsafe"
)

func TestShardsafe(t *testing.T) {
	analysistest.Run(t, "testdata", shardsafe.Analyzer, "a")
}
