// Package shardsafe keeps cross-shard state off the per-shard event
// tiers.
//
// Under the conservative parallel engine (DESIGN.md §13) every node,
// wire and management port belongs to exactly one shard, and code
// scheduled on a shard's engine — Engine.At/After closures, Timer and
// StateMachine continuations, Spawned coroutine bodies, HandleEvent and
// HandlePayload dispatch — may run concurrently with every other
// shard's window. Such code must touch only the hardware its own shard
// owns; reaching into the machine-wide collections ([]*node.Node,
// []*hssl.Wire, []*ethjtag.Port) selects an element that is, in
// general, another shard's state, and mutating it there is a data race
// the channel-queue protocol exists to prevent. The sanctioned escape
// hatches are exactly the channel-queue path and the serialized tiers:
// callbacks handed to Engine.CrossAt (run on the owning shard),
// Cluster.AtGlobal (run serially with all shard clocks aligned) and
// Cluster.OnBarrier (run serially between windows) are exempt, as is
// any line waived with //qcdoclint:shard-ok — the reviewable record
// that an access is rank-local or pre-run by construction.
package shardsafe

import (
	"go/ast"
	"go/types"

	"qcdoc/internal/analysis"
)

// Analyzer is the shardsafe checker.
var Analyzer = &analysis.Analyzer{
	Name: "shardsafe",
	Doc: "forbid indexing or element-ranging the machine-wide hardware collections " +
		"([]*node.Node, []*hssl.Wire, []*ethjtag.Port) inside shard-context code " +
		"(Engine.At/After/NewTimer/Spawn callbacks, StateMachine continuations, " +
		"HandleEvent/HandlePayload methods); route cross-shard actions through " +
		"CrossAt/CrossPayload/AtGlobal/OnBarrier or waive with //qcdoclint:shard-ok.",
	Run: run,
}

// shardRegs are event-package methods whose func-typed argument (at the
// given index) runs on one shard's engine, concurrently with other
// shards.
var shardRegs = map[string]map[string]int{
	"Engine": {
		"At":          1,
		"After":       1,
		"NewTimer":    0,
		"Spawn":       1,
		"SpawnDaemon": 1,
	},
	"StateMachine": {"Sleep": 1},
}

// exemptRegs are the sanctioned cross-shard registrars: their callbacks
// run on the destination shard (CrossAt) or serialized between windows
// (AtGlobal, OnBarrier), so shard-context rules do not apply inside.
var exemptRegs = map[string]map[string]int{
	"Engine":  {"CrossAt": 2},
	"Cluster": {"AtGlobal": 1, "OnBarrier": 0},
}

// sharded lists the machine-wide hardware element types: package tail
// -> type name. A slice of one of these spans shards.
var sharded = map[string]string{
	"node":    "Node",
	"hssl":    "Wire",
	"ethjtag": "Port",
}

func run(pass *analysis.Pass) (any, error) {
	// The event package is the shard mechanism itself, and the wire /
	// management layers (hssl, ethjtag) implement the sanctioned
	// channel-queue delivery path — their handlers hold the wires by
	// construction.
	for _, mech := range []string{"event", "hssl", "ethjtag"} {
		if analysis.PkgIs(pass.Pkg.Path(), mech) {
			return nil, nil
		}
	}

	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}

	// Seed shard contexts (callbacks registered on a shard engine) and
	// the exempt set (callbacks routed through the serialized tiers).
	type ctxBody struct {
		body *ast.BlockStmt
		via  string
	}
	var work []ctxBody
	inCtx := map[*types.Func]string{}
	exemptFns := map[*types.Func]bool{}
	exemptLits := map[*ast.BlockStmt]bool{}

	callbackFunc := func(arg ast.Expr) *types.Func {
		switch a := arg.(type) {
		case *ast.Ident:
			if fn, ok := analysis.ObjOf(pass.TypesInfo, a).(*types.Func); ok {
				return fn
			}
		case *ast.SelectorExpr:
			if s, found := pass.TypesInfo.Selections[a]; found {
				if fn, ok := s.Obj().(*types.Func); ok {
					return fn
				}
			} else if fn, ok := analysis.ObjOf(pass.TypesInfo, a.Sel).(*types.Func); ok {
				return fn
			}
		}
		return nil
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv != nil && isDispatchSig(pass, fd) {
				work = append(work, ctxBody{body: fd.Body, via: fd.Name.Name + " dispatch"})
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkg, recv, name, ok := analysis.ReceiverOf(pass.TypesInfo, call)
				if !ok || !analysis.PkgIs(pkg, "event") {
					return true
				}
				if idx, isEx := exemptRegs[recv][name]; isEx && idx < len(call.Args) {
					if lit, isLit := call.Args[idx].(*ast.FuncLit); isLit {
						exemptLits[lit.Body] = true
					} else if fn := callbackFunc(call.Args[idx]); fn != nil {
						exemptFns[fn] = true
					}
					return true
				}
				idx, isReg := shardRegs[recv][name]
				if !isReg || idx >= len(call.Args) {
					return true
				}
				if lit, isLit := call.Args[idx].(*ast.FuncLit); isLit {
					work = append(work, ctxBody{body: lit.Body, via: recv + "." + name})
				} else if fn := callbackFunc(call.Args[idx]); fn != nil {
					if _, seen := inCtx[fn]; !seen {
						inCtx[fn] = recv + "." + name
					}
				}
				return true
			})
		}
	}

	// Propagate shard context through same-package static calls,
	// reporting violations; exempt bodies terminate the walk.
	checked := map[*ast.BlockStmt]bool{}
	var scan func(body *ast.BlockStmt, via string)
	scan = func(body *ast.BlockStmt, via string) {
		if checked[body] || exemptLits[body] {
			return
		}
		checked[body] = true
		ast.Inspect(body, func(n ast.Node) bool {
			switch nn := n.(type) {
			case *ast.FuncLit:
				// A literal handed to an exempt registrar runs on the
				// serialized tier, not in this shard context.
				if exemptLits[nn.Body] {
					return false
				}
			case *ast.IndexExpr:
				if pkg, name, ok := shardedElem(pass, nn.X); ok {
					if !pass.Suppressed(analysis.MarkerShardOK, nn.Pos()) {
						pass.Reportf(nn.Pos(),
							"shard-context code (via %s) indexes the machine-wide []*%s.%s; per-shard code may touch only its own rank's hardware — route through CrossAt/CrossPayload/AtGlobal/OnBarrier or mark //qcdoclint:shard-ok",
							via, pkg, name)
					}
				}
			case *ast.RangeStmt:
				if nn.Value != nil {
					if pkg, name, ok := shardedElem(pass, nn.X); ok {
						if !pass.Suppressed(analysis.MarkerShardOK, nn.For) {
							pass.Reportf(nn.For,
								"shard-context code (via %s) ranges over the machine-wide []*%s.%s elements; per-shard code may touch only its own rank's hardware — route through CrossAt/CrossPayload/AtGlobal/OnBarrier or mark //qcdoclint:shard-ok",
							via, pkg, name)
						}
					}
				}
			case *ast.CallExpr:
				if pkg, recv, name, ok := analysis.ReceiverOf(pass.TypesInfo, nn); ok && analysis.PkgIs(pkg, "event") {
					if _, isEx := exemptRegs[recv][name]; isEx {
						break
					}
				}
				if fn := calleeFunc(pass, nn); fn != nil && fn.Pkg() == pass.Pkg && !exemptFns[fn] {
					if fd, ok := decls[fn]; ok {
						scan(fd.Body, via+" -> "+fn.Name())
					}
				}
			}
			return true
		})
	}
	for _, cb := range work {
		scan(cb.body, cb.via)
	}
	for fn, via := range inCtx {
		if exemptFns[fn] {
			continue
		}
		if fd, ok := decls[fn]; ok {
			scan(fd.Body, via+" -> "+fn.Name())
		}
	}
	return nil, nil
}

// shardedElem reports whether e is a slice or array whose element type
// is a pointer to one of the machine-wide hardware types, returning the
// owning package tail and type name.
func shardedElem(pass *analysis.Pass, e ast.Expr) (pkg, name string, ok bool) {
	tv, found := pass.TypesInfo.Types[e]
	if !found || tv.Type == nil {
		return "", "", false
	}
	var elem types.Type
	switch u := tv.Type.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	default:
		return "", "", false
	}
	ptr, isPtr := elem.(*types.Pointer)
	if !isPtr {
		return "", "", false
	}
	named, isNamed := ptr.Elem().(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return "", "", false
	}
	for tail, typ := range sharded {
		if named.Obj().Name() == typ && analysis.PkgIs(named.Obj().Pkg().Path(), tail) {
			return tail, typ, true
		}
	}
	return "", "", false
}

// calleeFunc resolves a call to its static *types.Func target, if any.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := analysis.ObjOf(pass.TypesInfo, fun).(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if s, found := pass.TypesInfo.Selections[fun]; found {
			if fn, ok := s.Obj().(*types.Func); ok {
				return fn
			}
		} else if fn, ok := analysis.ObjOf(pass.TypesInfo, fun.Sel).(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isDispatchSig reports whether a method is engine dispatch surface:
// HandleEvent(uint64) or HandlePayload(uint64, event.Payload).
func isDispatchSig(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() != 0 {
		return false
	}
	switch fd.Name.Name {
	case "HandleEvent":
		if sig.Params().Len() != 1 {
			return false
		}
		b, ok := sig.Params().At(0).Type().(*types.Basic)
		return ok && b.Kind() == types.Uint64
	case "HandlePayload":
		if sig.Params().Len() != 2 {
			return false
		}
		b, ok := sig.Params().At(0).Type().(*types.Basic)
		if !ok || b.Kind() != types.Uint64 {
			return false
		}
		named, ok := sig.Params().At(1).Type().(*types.Named)
		return ok && named.Obj().Name() == "Payload" && named.Obj().Pkg() != nil &&
			analysis.PkgIs(named.Obj().Pkg().Path(), "event")
	}
	return false
}
