// Package obssafe keeps the observability plane read-only from the
// HTTP side.
//
// The zero-perturbation contract (DESIGN.md §10, §15) hinges on a
// one-way data flow: simulator components mutate their own counters
// and histograms on the engine goroutine, the registry reads them at
// Snapshot time, and the service surface (internal/obs, `qcdoc serve`)
// only ever sees published immutable copies. A Registry or Histogram
// *write* reachable from a request handler would run concurrently with
// the simulation — a data race at best, and at worst an observation
// that changes the run. Registries and histograms aren't locked,
// deliberately: they must stay free on the simulator's hot path.
//
// The analyzer approximates "HTTP side" as "package that imports
// net/http": inside such a package, any call to a mutating method of
// telemetry.Registry (SetEnabled, RegisterCounters, RegisterGauge,
// RegisterHistograms, Clear) or telemetry.Histogram (Record, Absorb)
// is flagged. Reads — Snapshot, Enabled, Sources, Format — stay free.
// Waive a deliberate simulation-side mutation (test setup, a CLI that
// enables telemetry before serving) with //qcdoclint:obs-ok.
package obssafe

import (
	"go/ast"

	"qcdoc/internal/analysis"
)

// Analyzer is the obssafe checker.
var Analyzer = &analysis.Analyzer{
	Name: "obssafe",
	Doc: "forbid telemetry.Registry/Histogram mutations in packages that import " +
		"net/http; HTTP handlers must read published snapshot copies only. " +
		"Waive a line with //qcdoclint:obs-ok.",
	Run: run,
}

// registryWrites are the telemetry.Registry methods that mutate it.
var registryWrites = map[string]bool{
	"SetEnabled":         true,
	"RegisterCounters":   true,
	"RegisterGauge":      true,
	"RegisterHistograms": true,
	"Clear":              true,
}

// histogramWrites are the telemetry.Histogram methods that mutate it.
var histogramWrites = map[string]bool{
	"Record": true,
	"Absorb": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !importsNetHTTP(pass.Files) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, recv, name, ok := analysis.ReceiverOf(pass.TypesInfo, call)
			if !ok || !analysis.PkgIs(pkgPath, "telemetry") {
				return true
			}
			var what string
			switch {
			case recv == "Registry" && registryWrites[name]:
				what = "registry"
			case recv == "Histogram" && histogramWrites[name]:
				what = "histogram"
			default:
				return true
			}
			if pass.Suppressed(analysis.MarkerObsOK, call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(),
				"telemetry %s write %s.%s in an HTTP-serving package; handlers must read published snapshots only (zero-perturbation, DESIGN.md §15), or mark //qcdoclint:obs-ok",
				what, recv, name)
			return true
		})
	}
	return nil, nil
}

// importsNetHTTP reports whether any file in the package imports
// net/http directly.
func importsNetHTTP(files []*ast.File) bool {
	for _, f := range files {
		for _, imp := range f.Imports {
			if imp.Path.Value == `"net/http"` {
				return true
			}
		}
	}
	return false
}
