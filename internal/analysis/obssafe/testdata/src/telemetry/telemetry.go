// Package telemetry is a minimal stand-in for qcdoc/internal/telemetry:
// obssafe matches calls by (package tail, receiver, method name), so the
// fixture only needs the shapes.
package telemetry

type Snapshot struct{}

type Registry struct{}

func (r *Registry) SetEnabled(on bool)                                {}
func (r *Registry) RegisterCounters(prefix string, emit func())       {}
func (r *Registry) RegisterGauge(name string, get func() float64)     {}
func (r *Registry) RegisterHistograms(prefix string, emit func(int))  {}
func (r *Registry) Clear()                                            {}
func (r *Registry) Enabled() bool                                     { return false }
func (r *Registry) Snapshot() Snapshot                                { return Snapshot{} }

type HistogramSnapshot struct{}

type Histogram struct{}

func (h *Histogram) Record(v uint64)              {}
func (h *Histogram) Absorb(o *Histogram)          {}
func (h *Histogram) Snapshot() HistogramSnapshot  { return HistogramSnapshot{} }
func (h *Histogram) Count() uint64                { return 0 }
