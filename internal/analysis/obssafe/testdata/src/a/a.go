// Fixture for the obssafe analyzer: this package imports net/http, so
// every telemetry.Registry / telemetry.Histogram mutation is flagged;
// reads (Snapshot, Enabled) are fine, and //qcdoclint:obs-ok waives a
// line.
package a

import (
	"net/http"

	"telemetry"
)

func handler(reg *telemetry.Registry, h *telemetry.Histogram) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		reg.SetEnabled(true)  // want `telemetry registry write Registry.SetEnabled`
		h.Record(42)          // want `telemetry histogram write Histogram.Record`
		_ = reg.Snapshot()    // reads are fine
		_ = reg.Enabled()     // reads are fine
		_ = h.Snapshot()      // reads are fine
	}
}

func register(reg *telemetry.Registry) {
	reg.RegisterCounters("x", func() {})            // want `telemetry registry write Registry.RegisterCounters`
	reg.RegisterGauge("g", func() float64 { return 0 }) // want `telemetry registry write Registry.RegisterGauge`
	reg.RegisterHistograms("h", func(int) {})       // want `telemetry registry write Registry.RegisterHistograms`
	reg.Clear()                                     // want `telemetry registry write Registry.Clear`
}

func absorb(a, b *telemetry.Histogram) {
	a.Absorb(b) // want `telemetry histogram write Histogram.Absorb`
}

func waived(reg *telemetry.Registry) {
	// Test setup on the simulation side, before serving starts.
	reg.SetEnabled(true) //qcdoclint:obs-ok enabled before the listener exists
}
