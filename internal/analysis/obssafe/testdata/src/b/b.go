// Fixture for the obssafe analyzer: no net/http import, so telemetry
// mutations are the simulator's own business and nothing is flagged.
package b

import "telemetry"

func simulate(reg *telemetry.Registry, h *telemetry.Histogram) {
	reg.SetEnabled(true)
	reg.RegisterCounters("x", func() {})
	h.Record(7)
	reg.Clear()
}
