package obssafe_test

import (
	"testing"

	"qcdoc/internal/analysis/analysistest"
	"qcdoc/internal/analysis/obssafe"
)

func TestObssafe(t *testing.T) {
	analysistest.Run(t, "testdata", obssafe.Analyzer, "a")
}

// TestObssafeIgnoresNonHTTP checks the analyzer is silent in a package
// that mutates telemetry but never imports net/http — the simulator
// side, where those writes belong.
func TestObssafeIgnoresNonHTTP(t *testing.T) {
	analysistest.Run(t, "testdata", obssafe.Analyzer, "b")
}
