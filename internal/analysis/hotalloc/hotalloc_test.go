package hotalloc_test

import (
	"testing"

	"qcdoc/internal/analysis/analysistest"
	"qcdoc/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "a")
}
