// Package hotalloc is the compile-time gate on the allocation-free
// frame path.
//
// The simulator's steady state moves one 64-bit word per simulated
// frame with zero heap allocations (DESIGN.md §9): frames are value
// types, rings are preallocated, timers and pumps are pre-bound.
// Runtime tests (TestSteadyStateWordPathAllocFree and friends) assert
// the property end to end, but only for the paths the tests happen to
// drive. hotalloc makes the discipline local and total: a function
// annotated //qcdoc:noalloc is rejected if it contains any of the
// constructs that put frame-rate garbage on the heap —
//
//   - implicit or explicit conversion of a concrete value to an
//     interface (boxing);
//   - a closure that captures locals (a fresh heap object per call;
//     hot callbacks must be pre-bound once at construction);
//   - any call into fmt (formatting allocates);
//   - string concatenation;
//   - an append whose result is not assigned back to the same slice
//     (growth or aliasing instead of ring reuse).
//
// Cold branches inside a hot function — the panic on a protocol
// violation, the error return on an untrained wire — are waived line
// by line with //qcdoclint:alloc-ok, keeping the waiver visible in the
// diff that introduces it.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"qcdoc/internal/analysis"
)

// Analyzer is the hotalloc checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "reject boxing, capturing closures, fmt calls, string concatenation, and " +
		"un-reused append in functions annotated //qcdoc:noalloc; waive cold branches " +
		"with //qcdoclint:alloc-ok.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.HasAnnotation(fd, analysis.NoallocTag) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// checker walks one annotated function, tracking the enclosing
// statement (for multi-line waivers) and the result types of the
// innermost function literal (for return-boxing checks).
type checker struct {
	pass    *analysis.Pass
	fd      *ast.FuncDecl
	stack   []ast.Node
	results []*types.Tuple // innermost-last; index 0 is fd's own results
	goodApp map[*ast.CallExpr]bool
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	c := &checker{pass: pass, fd: fd, goodApp: map[*ast.CallExpr]bool{}}
	if def, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		c.results = append(c.results, def.Type().(*types.Signature).Results())
	} else {
		c.results = append(c.results, nil)
	}
	// Pre-pass: appends whose result is assigned back to their first
	// argument reuse the backing array and are the sanctioned form.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if ok && isBuiltinAppend(pass.TypesInfo, call) && len(call.Args) > 0 &&
				types.ExprString(as.Lhs[i]) == types.ExprString(call.Args[0]) {
				c.goodApp[call] = true
			}
		}
		return true
	})
	ast.Inspect(fd.Body, c.visit)
}

func (c *checker) visit(n ast.Node) bool {
	if n == nil {
		top := c.stack[len(c.stack)-1]
		if _, ok := top.(*ast.FuncLit); ok {
			c.results = c.results[:len(c.results)-1]
		}
		c.stack = c.stack[:len(c.stack)-1]
		return true
	}
	c.stack = append(c.stack, n)
	switch nn := n.(type) {
	case *ast.FuncLit:
		if sig, ok := c.pass.TypesInfo.Types[nn].Type.(*types.Signature); ok {
			c.results = append(c.results, sig.Results())
		} else {
			c.results = append(c.results, nil)
		}
		c.checkCapture(nn)
	case *ast.CallExpr:
		c.checkCall(nn)
	case *ast.BinaryExpr:
		if nn.Op == token.ADD && c.isString(nn) {
			c.report(nn.Pos(), "string concatenation allocates on the hot path; use a fixed buffer or precompute the string")
		}
	case *ast.AssignStmt:
		c.checkAssign(nn)
	case *ast.GenDecl:
		c.checkVarDecl(nn)
	case *ast.ReturnStmt:
		c.checkReturn(nn)
	}
	return true
}

func (c *checker) curStmtPos() token.Pos {
	for i := len(c.stack) - 1; i >= 0; i-- {
		if s, ok := c.stack[i].(ast.Stmt); ok {
			return s.Pos()
		}
	}
	return token.NoPos
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.pass.SuppressedAt(analysis.MarkerAllocOK, pos, c.curStmtPos()) {
		return
	}
	c.pass.Reportf(pos, "//qcdoc:noalloc function %s: "+format,
		append([]any{c.fd.Name.Name}, args...)...)
}

// checkCapture flags closures that capture variables declared outside
// the literal but inside the annotated function (including its
// receiver and parameters): each call of the enclosing code then
// allocates a fresh closure object.
func (c *checker) checkCapture(lit *ast.FuncLit) {
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() || seen[obj] {
			return true
		}
		if obj.Pos() >= c.fd.Pos() && obj.Pos() < c.fd.End() &&
			!(obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()) {
			seen[obj] = true
			c.report(lit.Pos(), "closure captures %s and allocates per call; pre-bind the callback once at construction (event.Timer / Handler)", obj.Name())
		}
		return true
	})
}

func (c *checker) checkCall(call *ast.CallExpr) {
	// fmt is never allocation-free.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := c.pass.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				c.report(call.Pos(), "calls fmt.%s, which allocates; format off the hot path", sel.Sel.Name)
			}
		}
	}
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	// Explicit conversion T(x): boxing when T is an interface.
	if tv.IsType() {
		if len(call.Args) == 1 {
			c.checkBox(tv.Type, call.Args[0], "conversion")
		}
		return
	}
	if isBuiltinAppend(c.pass.TypesInfo, call) {
		if !c.goodApp[call] {
			c.report(call.Pos(), "append result is not assigned back to %s; growing or re-slicing allocates — reuse the ring's backing array", exprOrValue(call.Args))
		}
		return
	}
	if tv.IsBuiltin() {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	// Implicit boxing of arguments into interface parameters.
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if call.Ellipsis.IsValid() {
				pt = last
			} else if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		c.checkBox(pt, arg, "argument")
	}
}

func (c *checker) checkAssign(as *ast.AssignStmt) {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 && c.isString(as.Lhs[0]) {
		c.report(as.Pos(), "string += allocates on the hot path; use a fixed buffer")
		return
	}
	if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		if lt, ok := c.pass.TypesInfo.Types[as.Lhs[i]]; ok {
			c.checkBox(lt.Type, as.Rhs[i], "assignment")
		}
	}
}

func (c *checker) checkVarDecl(gd *ast.GenDecl) {
	if gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || vs.Type == nil {
			continue
		}
		dt, ok := c.pass.TypesInfo.Types[vs.Type]
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			c.checkBox(dt.Type, v, "initialization")
		}
	}
}

func (c *checker) checkReturn(rs *ast.ReturnStmt) {
	res := c.results[len(c.results)-1]
	if res == nil || len(rs.Results) != res.Len() {
		return
	}
	for i, e := range rs.Results {
		c.checkBox(res.At(i).Type(), e, "return")
	}
}

// checkBox reports when a concrete value meets an interface
// destination — the conversion heap-allocates at frame rate.
// Pointer-shaped values (pointers, channels, maps, funcs) are exempt:
// they fit the interface data word directly, which is exactly why
// handing a *Timer or *hssl.Wire to Engine.AtHandler is free.
func (c *checker) checkBox(dst types.Type, src ast.Expr, what string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[src]
	if !ok || tv.Type == nil || tv.IsNil() || types.IsInterface(tv.Type) {
		return
	}
	if pointerShaped(tv.Type) {
		return
	}
	c.report(src.Pos(), "%s converts %s to interface %s (boxing allocates); keep concrete types or pre-box once",
		what, tv.Type.String(), dst.String())
}

// pointerShaped reports whether values of t are a single pointer word,
// so interface conversion copies the pointer instead of allocating.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func (c *checker) isString(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil { // constants fold at compile time
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func exprOrValue(args []ast.Expr) string {
	if len(args) == 0 {
		return "its slice"
	}
	return types.ExprString(args[0])
}
