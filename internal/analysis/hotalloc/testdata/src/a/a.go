// Fixture for the hotalloc analyzer: inside //qcdoc:noalloc functions,
// boxing, capturing closures, fmt calls, string concatenation, and
// un-reused append are flagged; ring-reuse appends, pointer-shaped
// interface conversions, unannotated functions, and
// //qcdoclint:alloc-ok waivers are not.
package a

import "fmt"

type ring struct {
	buf  []int
	head int
}

type sink interface{ accept(uint64) }

// The sanctioned append: result assigned back to the same slice, so
// steady state reuses the backing array.
//
//qcdoc:noalloc
func (r *ring) push(v int) {
	r.buf = append(r.buf, v)
}

//qcdoc:noalloc
func grow(s []int, v int) []int {
	t := append(s, v) // want `append result is not assigned back to s`
	return t
}

//qcdoc:noalloc
func boxReturn(v int) any {
	return v // want `return converts int to interface`
}

//qcdoc:noalloc
func boxConvert(v int) {
	_ = any(v) // want `conversion converts int to interface`
}

//qcdoc:noalloc
func boxAssign(v uint64) {
	var x any
	x = v // want `assignment converts uint64 to interface`
	_ = x
}

//qcdoc:noalloc
func boxDecl(v int) {
	var x any = v // want `initialization converts int to interface`
	_ = x
}

//qcdoc:noalloc
func boxArg(s sink, r *ring) {
	take(r.head) // want `argument converts int to interface`
	_ = s
}

func take(v any) {}

// Boxing a pointer stores it in the interface word directly — no
// allocation; this is exactly why handing a pre-bound *ring to a
// dispatcher is free.
//
//qcdoc:noalloc
func boxPointer(r *ring) any {
	return r
}

//qcdoc:noalloc
func format(v int) {
	fmt.Println() // want `calls fmt.Println`
}

//qcdoc:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//qcdoc:noalloc
func concatAssign(a, b string) string {
	a += b // want `string \+= allocates`
	return a
}

//qcdoc:noalloc
func closure(n int) func() int {
	return func() int { return n } // want `closure captures n`
}

// A closure over nothing local is a static function value: free.
//
//qcdoc:noalloc
func staticClosure() func() int {
	return func() int { return 42 }
}

// Unannotated functions may allocate freely; the discipline is opt-in
// per hot function.
func coldSetup(names []string) map[string]int {
	m := make(map[string]int, len(names))
	for i, n := range names {
		m[n] = i
	}
	return m
}

// A cold branch inside a hot function is waived line by line.
//
//qcdoc:noalloc
func coldPanic(v int) int {
	if v < 0 {
		panic(fmt.Sprintf("bad %d", v)) //qcdoclint:alloc-ok cold guard
	}
	return v * 2
}

// One marker above a wrapped statement covers the whole statement
// (SuppressedAt resolves the enclosing statement's start line).
//
//qcdoc:noalloc
func coldPanicWrapped(v int) int {
	if v < 0 {
		//qcdoclint:alloc-ok cold guard
		panic(fmt.Sprintf("bad value %d out of range",
			v))
	}
	return v * 2
}

// proseMention exercises the //qcdoc:noalloc contract dynamically: the
// doc comment talks about the directive without carrying it, so the
// allocations below are fine.
func proseMention() []int {
	return append([]int(nil), 1, 2, 3)
}
