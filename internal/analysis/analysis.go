// Package analysis is the simulator's static-analysis framework: a
// stdlib-only re-creation of the golang.org/x/tools/go/analysis model
// (Analyzer, Pass, Diagnostic) that qcdoclint and the analyzer test
// harness share. The container this repo builds in has no module
// proxy, so the framework is self-hosted on go/ast + go/types; the
// analyzer API mirrors x/tools closely enough that the checkers would
// port to a vettool driver unchanged.
//
// The point of the suite (DESIGN.md §11): every invariant the test
// suite asserts dynamically — bit-identical deterministic timing, the
// zero-alloc frame path, the no-blocking continuation tier — is also
// enforced at lint time, so a future change cannot silently erode the
// properties the paper's results depend on.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// An Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and the driver's
	// -list output.
	Name string
	// Doc is the one-paragraph description: which runtime property the
	// analyzer guards and how to annotate exceptions.
	Doc string
	// Run applies the analyzer to one package and reports findings via
	// pass.Report. The result value is unused by the driver (kept for
	// x/tools API shape).
	Run func(*Pass) (any, error)
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass holds one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// Hits counts, per marker comment position, how many would-be
	// diagnostics that comment suppressed during this pass. The driver
	// folds the counts across passes: a marker whose total stays zero is
	// stale — it waives nothing — and is itself reported (DESIGN.md §11,
	// waiver lifecycle).
	Hits map[token.Pos]int

	markers map[string]map[string]token.Pos // marker text -> "file:line" -> comment pos
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Suppression markers. A marker comment on the offending line, or on
// the line directly above it, silences the corresponding analyzer for
// that line. Markers are deliberate, grep-able waivers: the reviewable
// record that a human decided the invariant does not apply there.
const (
	// MarkerUnorderedOK waives maprange: the map iteration's order
	// genuinely cannot be observed (e.g. accumulating a commutative sum).
	MarkerUnorderedOK = "qcdoclint:unordered-ok"
	// MarkerAllocOK waives hotalloc for one statement of a //qcdoc:noalloc
	// function — the cold error/panic branch off the hot path.
	MarkerAllocOK = "qcdoclint:alloc-ok"
	// MarkerBlockingOK waives contsafe: the call looks blocking but is
	// known not to run on the continuation tier.
	MarkerBlockingOK = "qcdoclint:blocking-ok"
	// MarkerWalltimeOK waives simtime: host wall-clock use outside the
	// simulated machine (e.g. a CLI progress meter).
	MarkerWalltimeOK = "qcdoclint:walltime-ok"
	// MarkerShardOK waives shardsafe: the flagged collection access is
	// rank-local, pre-run, or otherwise confined to the owning shard.
	MarkerShardOK = "qcdoclint:shard-ok"
	// MarkerGlobalOK waives fleetsafe: the package-level var is
	// write-once read-only data (an immutable table behind a reference
	// type) that concurrent machines may safely share.
	MarkerGlobalOK = "qcdoclint:global-ok"
	// MarkerObsOK waives obssafe: the flagged telemetry mutation in an
	// HTTP-serving package is known to run on the simulation side (e.g.
	// test setup), never from a request handler.
	MarkerObsOK = "qcdoclint:obs-ok"
	// MarkerDetflowOK waives detflow: the nondeterministic-order flow is
	// known not to be order-observable (the sink commutes, or the order
	// is re-established before anything hashes or schedules off it).
	MarkerDetflowOK = "qcdoclint:detflow-ok"
	// MarkerCrossAliasOK waives crossalias: the reference crossing the
	// shard boundary is, by protocol, owned or serialized on the far
	// side (e.g. faultplan's barrier-serialized injection closures).
	MarkerCrossAliasOK = "qcdoclint:crossalias-ok"
)

// MarkerOwners maps each waiver marker to the analyzer whose
// diagnostics it suppresses. The driver uses it for the waiver
// inventory (-waivers) and for stale-waiver detection: a marker in the
// tree that belongs to no active analyzer, or that suppresses zero
// diagnostics, is itself a lint finding.
var MarkerOwners = map[string]string{
	MarkerUnorderedOK:  "maprange",
	MarkerAllocOK:      "hotalloc",
	MarkerBlockingOK:   "contsafe",
	MarkerWalltimeOK:   "simtime",
	MarkerShardOK:      "shardsafe",
	MarkerGlobalOK:     "fleetsafe",
	MarkerObsOK:        "obssafe",
	MarkerDetflowOK:    "detflow",
	MarkerCrossAliasOK: "crossalias",
}

// NoallocTag is the function annotation hotalloc enforces: a
// "//qcdoc:noalloc" directive in a function's doc comment declares it
// part of the steady-state hot path that must not allocate.
const NoallocTag = "qcdoc:noalloc"

// Suppressed reports whether a marker comment covers the line of pos:
// the marker sits on that line or the line directly above. Each
// suppression is tallied against the covering comment in p.Hits, so the
// driver can flag markers that never suppress anything.
func (p *Pass) Suppressed(marker string, pos token.Pos) bool {
	if p.markers == nil {
		p.markers = map[string]map[string]token.Pos{}
	}
	lines, ok := p.markers[marker]
	if !ok {
		lines = map[string]token.Pos{}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.Contains(c.Text, marker) {
						continue
					}
					cp := p.Fset.Position(c.Pos())
					// The marker covers its own line (trailing comment)
					// and the next line (marker-above style).
					lines[fmt.Sprintf("%s:%d", cp.Filename, cp.Line)] = c.Pos()
					lines[fmt.Sprintf("%s:%d", cp.Filename, cp.Line+1)] = c.Pos()
				}
			}
		}
		p.markers[marker] = lines
	}
	dp := p.Fset.Position(pos)
	mpos, hit := lines[fmt.Sprintf("%s:%d", dp.Filename, dp.Line)]
	if hit {
		if p.Hits == nil {
			p.Hits = map[token.Pos]int{}
		}
		p.Hits[mpos]++
	}
	return hit
}

// A MarkerSite is one waiver-marker comment found in a package's
// source: the marker text (e.g. "qcdoclint:shard-ok") and the comment's
// position. The driver inventories these for -waivers and stale-waiver
// detection.
type MarkerSite struct {
	Marker string
	Pos    token.Pos
}

var markerRe = regexp.MustCompile(`qcdoclint:[a-z-]+`)

// ScanMarkers lists every qcdoclint waiver marker mentioned in the
// files' comments, in file order. A comment naming several markers
// yields one site per marker.
func ScanMarkers(files []*ast.File) []MarkerSite {
	var sites []MarkerSite
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range markerRe.FindAllString(c.Text, -1) {
					sites = append(sites, MarkerSite{Marker: m, Pos: c.Pos()})
				}
			}
		}
	}
	return sites
}

// SuppressedAt reports whether the marker covers either the diagnostic
// position or the start of its enclosing statement — so one marker
// waives a multi-line statement (a wrapped panic(fmt.Sprintf(...))).
func (p *Pass) SuppressedAt(marker string, pos, stmtPos token.Pos) bool {
	if p.Suppressed(marker, pos) {
		return true
	}
	return stmtPos.IsValid() && p.Suppressed(marker, stmtPos)
}

// HasAnnotation reports whether the function's doc comment carries the
// given directive (e.g. NoallocTag). Directive comments ("//tool:verb")
// are excluded from godoc text but remain in the comment group. Per the
// Go directive convention the comment must start with the tag — prose
// that merely mentions "//qcdoc:noalloc" is not an annotation.
func HasAnnotation(fd *ast.FuncDecl, tag string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//"+tag)
		if ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
			return true
		}
	}
	return false
}

// PkgIs reports whether an import path denotes the named simulator
// package: the path is exactly name or ends in "/name". Matching by
// tail lets analyzer fixtures stand in a fake "event" or "telemetry"
// package for the real qcdoc/internal one.
func PkgIs(path, name string) bool {
	return path == name || strings.HasSuffix(path, "/"+name)
}

// ReceiverOf resolves a method call expression to (package path,
// receiver type name, method name). It follows both method selections
// (x.M() where x is a value) and package-qualified calls (pkg.F()).
// The bool result reports whether the callee resolved to a *types.Func.
func ReceiverOf(info *types.Info, call *ast.CallExpr) (pkgPath, recvName, funcName string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		if id, isID := call.Fun.(*ast.Ident); isID {
			if fn, isFn := info.Uses[id].(*types.Func); isFn && fn.Pkg() != nil {
				return fn.Pkg().Path(), "", fn.Name(), true
			}
		}
		return "", "", "", false
	}
	if s, found := info.Selections[sel]; found {
		fn, isFn := s.Obj().(*types.Func)
		if !isFn || fn.Pkg() == nil {
			return "", "", "", false
		}
		return fn.Pkg().Path(), namedName(s.Recv()), fn.Name(), true
	}
	// Package-qualified function: pkg.F(...).
	if fn, isFn := info.Uses[sel.Sel].(*types.Func); isFn && fn.Pkg() != nil {
		recv := ""
		if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
			recv = namedName(sig.Recv().Type())
		}
		return fn.Pkg().Path(), recv, fn.Name(), true
	}
	return "", "", "", false
}

// namedName returns the name of the named type under pointers and
// generic instantiation, or "".
func namedName(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj().Name()
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return ""
		}
	}
}

// DeepValue reports whether a value of type t is safe to copy across a
// shard boundary: it transitively contains no pointer, slice, map,
// channel, function, or interface, so the copy cannot alias mutable
// state the sender retains. This is the crossalias analyzer's core
// predicate, shared here because fixtures and future analyzers need the
// same notion.
func DeepValue(t types.Type) bool {
	return deepValue(t, map[types.Type]bool{})
}

func deepValue(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return true // recursion through a named type: judged at its uses
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		// unsafe.Pointer is basic-kinded but is exactly the laundering
		// primitive crossalias exists to catch.
		return u.Kind() != types.UnsafePointer
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !deepValue(u.Field(i).Type(), seen) {
				return false
			}
		}
		return true
	case *types.Array:
		return deepValue(u.Elem(), seen)
	default:
		// Pointer, Slice, Map, Chan, Signature, Interface, Tuple.
		return false
	}
}

// RootIdent returns the base identifier of an lvalue-ish expression:
// the x in x, x.f, x[i], *x, (x). Nil when the expression has no such
// base (a call result, a literal).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch ee := e.(type) {
		case *ast.Ident:
			return ee
		case *ast.SelectorExpr:
			e = ee.X
		case *ast.IndexExpr:
			e = ee.X
		case *ast.StarExpr:
			e = ee.X
		case *ast.ParenExpr:
			e = ee.X
		default:
			return nil
		}
	}
}

// ObjOf resolves an identifier to its object (use or definition).
func ObjOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
