// Package analysis is the simulator's static-analysis framework: a
// stdlib-only re-creation of the golang.org/x/tools/go/analysis model
// (Analyzer, Pass, Diagnostic) that qcdoclint and the analyzer test
// harness share. The container this repo builds in has no module
// proxy, so the framework is self-hosted on go/ast + go/types; the
// analyzer API mirrors x/tools closely enough that the checkers would
// port to a vettool driver unchanged.
//
// The point of the suite (DESIGN.md §11): every invariant the test
// suite asserts dynamically — bit-identical deterministic timing, the
// zero-alloc frame path, the no-blocking continuation tier — is also
// enforced at lint time, so a future change cannot silently erode the
// properties the paper's results depend on.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and the driver's
	// -list output.
	Name string
	// Doc is the one-paragraph description: which runtime property the
	// analyzer guards and how to annotate exceptions.
	Doc string
	// Run applies the analyzer to one package and reports findings via
	// pass.Report. The result value is unused by the driver (kept for
	// x/tools API shape).
	Run func(*Pass) (any, error)
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass holds one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	markers map[string]map[string]bool // marker text -> "file:line" set
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Suppression markers. A marker comment on the offending line, or on
// the line directly above it, silences the corresponding analyzer for
// that line. Markers are deliberate, grep-able waivers: the reviewable
// record that a human decided the invariant does not apply there.
const (
	// MarkerUnorderedOK waives maprange: the map iteration's order
	// genuinely cannot be observed (e.g. accumulating a commutative sum).
	MarkerUnorderedOK = "qcdoclint:unordered-ok"
	// MarkerAllocOK waives hotalloc for one statement of a //qcdoc:noalloc
	// function — the cold error/panic branch off the hot path.
	MarkerAllocOK = "qcdoclint:alloc-ok"
	// MarkerBlockingOK waives contsafe: the call looks blocking but is
	// known not to run on the continuation tier.
	MarkerBlockingOK = "qcdoclint:blocking-ok"
	// MarkerWalltimeOK waives simtime: host wall-clock use outside the
	// simulated machine (e.g. a CLI progress meter).
	MarkerWalltimeOK = "qcdoclint:walltime-ok"
	// MarkerShardOK waives shardsafe: the flagged collection access is
	// rank-local, pre-run, or otherwise confined to the owning shard.
	MarkerShardOK = "qcdoclint:shard-ok"
	// MarkerGlobalOK waives fleetsafe: the package-level var is
	// write-once read-only data (an immutable table behind a reference
	// type) that concurrent machines may safely share.
	MarkerGlobalOK = "qcdoclint:global-ok"
	// MarkerObsOK waives obssafe: the flagged telemetry mutation in an
	// HTTP-serving package is known to run on the simulation side (e.g.
	// test setup), never from a request handler.
	MarkerObsOK = "qcdoclint:obs-ok"
)

// NoallocTag is the function annotation hotalloc enforces: a
// "//qcdoc:noalloc" directive in a function's doc comment declares it
// part of the steady-state hot path that must not allocate.
const NoallocTag = "qcdoc:noalloc"

// Suppressed reports whether a marker comment covers the line of pos:
// the marker sits on that line or the line directly above.
func (p *Pass) Suppressed(marker string, pos token.Pos) bool {
	if p.markers == nil {
		p.markers = map[string]map[string]bool{}
	}
	lines, ok := p.markers[marker]
	if !ok {
		lines = map[string]bool{}
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.Contains(c.Text, marker) {
						continue
					}
					cp := p.Fset.Position(c.Pos())
					// The marker covers its own line (trailing comment)
					// and the next line (marker-above style).
					lines[fmt.Sprintf("%s:%d", cp.Filename, cp.Line)] = true
					lines[fmt.Sprintf("%s:%d", cp.Filename, cp.Line+1)] = true
				}
			}
		}
		p.markers[marker] = lines
	}
	dp := p.Fset.Position(pos)
	return lines[fmt.Sprintf("%s:%d", dp.Filename, dp.Line)]
}

// SuppressedAt reports whether the marker covers either the diagnostic
// position or the start of its enclosing statement — so one marker
// waives a multi-line statement (a wrapped panic(fmt.Sprintf(...))).
func (p *Pass) SuppressedAt(marker string, pos, stmtPos token.Pos) bool {
	if p.Suppressed(marker, pos) {
		return true
	}
	return stmtPos.IsValid() && p.Suppressed(marker, stmtPos)
}

// HasAnnotation reports whether the function's doc comment carries the
// given directive (e.g. NoallocTag). Directive comments ("//tool:verb")
// are excluded from godoc text but remain in the comment group.
func HasAnnotation(fd *ast.FuncDecl, tag string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.Contains(c.Text, "//"+tag) {
			return true
		}
	}
	return false
}

// PkgIs reports whether an import path denotes the named simulator
// package: the path is exactly name or ends in "/name". Matching by
// tail lets analyzer fixtures stand in a fake "event" or "telemetry"
// package for the real qcdoc/internal one.
func PkgIs(path, name string) bool {
	return path == name || strings.HasSuffix(path, "/"+name)
}

// ReceiverOf resolves a method call expression to (package path,
// receiver type name, method name). It follows both method selections
// (x.M() where x is a value) and package-qualified calls (pkg.F()).
// The bool result reports whether the callee resolved to a *types.Func.
func ReceiverOf(info *types.Info, call *ast.CallExpr) (pkgPath, recvName, funcName string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		if id, isID := call.Fun.(*ast.Ident); isID {
			if fn, isFn := info.Uses[id].(*types.Func); isFn && fn.Pkg() != nil {
				return fn.Pkg().Path(), "", fn.Name(), true
			}
		}
		return "", "", "", false
	}
	if s, found := info.Selections[sel]; found {
		fn, isFn := s.Obj().(*types.Func)
		if !isFn || fn.Pkg() == nil {
			return "", "", "", false
		}
		return fn.Pkg().Path(), namedName(s.Recv()), fn.Name(), true
	}
	// Package-qualified function: pkg.F(...).
	if fn, isFn := info.Uses[sel.Sel].(*types.Func); isFn && fn.Pkg() != nil {
		recv := ""
		if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
			recv = namedName(sig.Recv().Type())
		}
		return fn.Pkg().Path(), recv, fn.Name(), true
	}
	return "", "", "", false
}

// namedName returns the name of the named type under pointers and
// generic instantiation, or "".
func namedName(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj().Name()
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return ""
		}
	}
}

// RootIdent returns the base identifier of an lvalue-ish expression:
// the x in x, x.f, x[i], *x, (x). Nil when the expression has no such
// base (a call result, a literal).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch ee := e.(type) {
		case *ast.Ident:
			return ee
		case *ast.SelectorExpr:
			e = ee.X
		case *ast.IndexExpr:
			e = ee.X
		case *ast.StarExpr:
			e = ee.X
		case *ast.ParenExpr:
			e = ee.X
		default:
			return nil
		}
	}
}

// ObjOf resolves an identifier to its object (use or definition).
func ObjOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
