package crossalias

import (
	"testing"

	"qcdoc/internal/analysis/analysistest"
)

func TestCrossAlias(t *testing.T) {
	analysistest.Run(t, "testdata", Analyzer, "cross")
}
