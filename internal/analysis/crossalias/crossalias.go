// Package crossalias checks the deep-value contract at shard
// boundaries: anything handed to the cross-shard schedulers
// (Engine.CrossAt, Cluster.AtGlobal/OnBarrier closures, CrossPayload
// words) must not carry a reachable reference to shard-local mutable
// state. The conservative engine only synchronizes shards at barriers;
// a pointer, slice, map, or closure-captured reference that crosses
// lets the destination shard read memory the source shard is still
// mutating — a data race under GOMAXPROCS>1 and a determinism leak
// even without one.
//
// The check is interprocedural where laundering happens: a value built
// by a same-package constructor that retains a reference argument
// (callgraph.Summary.RetainsArgs) is treated as aliasing whatever was
// passed in, even when the captured variable itself looks opaque. The
// clean idioms stay quiet:
//
//   - deep-value captures (analysis.DeepValue: no reachable pointer,
//     slice, map, chan, func, or interface), which copy;
//   - engine/cluster captures — the crossing mechanism itself;
//   - receiver-only pointer use (the hand-back-to-owner idiom: the
//     closure calls methods on the captured pointer and nothing else,
//     the pattern used to deliver work back to the state's owner);
//   - a fresh clone (append to nil, make, composite literal) captured
//     by a single crossing — cloning per crossing is exactly the
//     repair, so the analyzer must not flag it; the same clone crossed
//     inside a loop is shared by every destination and is flagged.
//
// Everything else carries //qcdoclint:crossalias-ok with an in-line
// justification of why the alias is benign (typically: the target
// shard owns the pointee, or barrier order serializes the accesses).
package crossalias

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"qcdoc/internal/analysis"
	"qcdoc/internal/analysis/callgraph"
)

// Analyzer is the crossalias checker.
var Analyzer = &analysis.Analyzer{
	Name: "crossalias",
	Doc: "values handed to cross-shard schedulers (CrossAt/CrossPayload/AtGlobal) must be " +
		"deep-value: no reachable pointer, slice, map, or closure-captured reference to " +
		"shard-local mutable state, interprocedurally through constructors. " +
		"Waive a crossing with //qcdoclint:crossalias-ok.",
	Run: run,
}

// crossClosureArg maps cross-boundary scheduler names to the index of
// their closure argument. These mirror shardsafe's dispatch exemptions:
// they are exactly the calls whose closure executes on another shard
// (or on the global sequencer).
var crossClosureArg = map[string]int{
	"CrossAt":   2,
	"AtGlobal":  1,
	"OnBarrier": 0,
}

func run(pass *analysis.Pass) (any, error) {
	// The event package implements the crossing; its internals move
	// items between shard heaps by construction.
	if analysis.PkgIs(pass.Pkg.Path(), "event") {
		return nil, nil
	}
	g := callgraph.Build(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, g, fd)
		}
	}
	return nil, nil
}

// funcFacts are the per-function dataflow facts the crossing checks
// consult: which locals hold fresh clones, which were laundered through
// a retaining constructor, and which hold integers derived from
// pointers.
type funcFacts struct {
	fresh     map[types.Object]bool
	laundered map[types.Object]string // witness: "newHolder (retains &st)"
	ptrWord   map[types.Object]bool
	litOf     map[types.Object]*ast.FuncLit // local func-typed vars bound to a literal
	// freshField records per-field freshness for struct-typed locals:
	// freshField[obj]["Payload"] means obj.Payload was assigned a fresh
	// allocation, so a struct copy crossing a shard no longer aliases
	// the original through that field.
	freshField map[types.Object]map[string]bool
}

func (f *funcFacts) setFreshField(obj types.Object, field string) {
	m := f.freshField[obj]
	if m == nil {
		m = map[string]bool{}
		f.freshField[obj] = m
	}
	m[field] = true
}

func checkFunc(pass *analysis.Pass, g *callgraph.Graph, fd *ast.FuncDecl) {
	facts := gatherFacts(pass, g, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, _, name, ok := analysis.ReceiverOf(pass.TypesInfo, call)
		if !ok || !analysis.PkgIs(pkg, "event") {
			return true
		}
		if idx, ok := crossClosureArg[name]; ok && idx < len(call.Args) {
			checkClosureCrossing(pass, g, fd, facts, call, call.Args[idx], enclosingLoop(fd, call))
		}
		if name == "CrossPayload" {
			checkPayloadCrossing(pass, g, facts, call)
		}
		return true
	})
}

// gatherFacts walks the function's assignments once, flow-insensitively.
func gatherFacts(pass *analysis.Pass, g *callgraph.Graph, fd *ast.FuncDecl) *funcFacts {
	facts := &funcFacts{
		fresh:      map[types.Object]bool{},
		laundered:  map[types.Object]string{},
		ptrWord:    map[types.Object]bool{},
		litOf:      map[types.Object]*ast.FuncLit{},
		freshField: map[types.Object]map[string]bool{},
	}
	info := pass.TypesInfo
	// freshRHS extends isFreshExpr through one local hop: a variable
	// already known fresh transfers freshness on plain assignment
	// (payload := append(nil, ...); pkt.Payload = payload).
	freshRHS := func(e ast.Expr) bool {
		if isFreshExpr(info, e) {
			return true
		}
		if id, ok := e.(*ast.Ident); ok {
			return facts.fresh[analysis.ObjOf(info, id)]
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				continue
			}
			rhs := as.Rhs[i]
			// Field writes: pkt.Payload = <fresh> severs the alias
			// through that field of the local struct.
			if sel, ok := lhs.(*ast.SelectorExpr); ok {
				if xid, ok := sel.X.(*ast.Ident); ok && freshRHS(rhs) {
					if xobj := analysis.ObjOf(info, xid); xobj != nil {
						facts.setFreshField(xobj, sel.Sel.Name)
					}
				}
				continue
			}
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := analysis.ObjOf(info, id)
			if obj == nil {
				continue
			}
			if lit, ok := rhs.(*ast.FuncLit); ok {
				facts.litOf[obj] = lit
				continue
			}
			if cl, ok := rhs.(*ast.CompositeLit); ok {
				if st, ok := obj.Type().Underlying().(*types.Struct); ok {
					markCompositeFields(info, facts, obj, cl, st)
					continue
				}
			}
			if freshRHS(rhs) {
				facts.fresh[obj] = true
				continue
			}
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if laundersAnywhere(info, g, pass, call) {
				facts.ptrWord[obj] = true
				continue
			}
			callee := callgraph.CalleeFunc(info, call)
			if callee == nil || callee.Pkg() != pass.Pkg {
				continue
			}
			sum := g.Summary(callee)
			if sum.Flags&callgraph.LaundersPointer != 0 {
				facts.ptrWord[obj] = true
			}
			if sum.RetainsArgs != 0 {
				for k, arg := range call.Args {
					if k >= 32 || sum.RetainsArgs&(1<<uint(k)) == 0 {
						continue
					}
					if ref, refName := referenceArg(info, arg); ref {
						facts.laundered[obj] = fmt.Sprintf("%s (which retains %s)", callee.Name(), refName)
						break
					}
				}
			}
		}
		return true
	})
	return facts
}

// isFreshExpr recognizes expressions that allocate backing store the
// function exclusively owns: append to a nil/empty base, make, and
// composite literals (including their address).
func isFreshExpr(info *types.Info, e ast.Expr) bool {
	switch ee := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if ee.Op == token.AND {
			_, lit := ee.X.(*ast.CompositeLit)
			return lit
		}
	case *ast.CallExpr:
		if id, ok := ee.Fun.(*ast.Ident); ok {
			if _, builtin := info.Uses[id].(*types.Builtin); builtin && (id.Name == "make" || id.Name == "new") {
				return true
			}
		}
		if callgraph.IsBuiltinAppend(info, ee) && len(ee.Args) > 0 {
			return isNilBase(info, ee.Args[0])
		}
	}
	return false
}

// markCompositeFields records per-field freshness for a struct local
// built from a composite literal: a reference field is fresh when its
// element is a fresh allocation, or absent (the zero value aliases
// nothing). A field initialized from shard-local state stays unfresh.
func markCompositeFields(info *types.Info, facts *funcFacts, obj types.Object, cl *ast.CompositeLit, st *types.Struct) {
	elts := map[string]ast.Expr{}
	for i, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				elts[key.Name] = kv.Value
			}
			continue
		}
		if i < st.NumFields() {
			elts[st.Field(i).Name()] = elt
		}
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if analysis.DeepValue(f.Type()) {
			continue
		}
		e, present := elts[f.Name()]
		if !present || isFreshExpr(info, e) {
			facts.setFreshField(obj, f.Name())
		}
	}
}

// structEffectivelyFresh reports whether every reference-carrying field
// of the struct local has been re-pointed at a fresh allocation, so a
// by-value copy crossing a shard aliases nothing the source retains.
func structEffectivelyFresh(facts *funcFacts, obj types.Object, st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if analysis.DeepValue(f.Type()) {
			continue
		}
		if !facts.freshField[obj][f.Name()] {
			return false
		}
	}
	return true
}

// isNilBase reports whether the append base is nil, a nil conversion
// ([]byte(nil)), or an empty composite literal — the clone idiom.
func isNilBase(info *types.Info, e ast.Expr) bool {
	switch ee := e.(type) {
	case *ast.Ident:
		return ee.Name == "nil"
	case *ast.CallExpr: // []byte(nil)
		if tv, ok := info.Types[ee.Fun]; ok && tv.IsType() && len(ee.Args) == 1 {
			return isNilBase(info, ee.Args[0])
		}
	case *ast.CompositeLit:
		return len(ee.Elts) == 0
	}
	return false
}

// laundersAnywhere reports whether the expression contains a
// pointer-to-uintptr conversion or a call to a same-package function
// that performs one — covering wrapped forms like
// uint64(uintptr(unsafe.Pointer(p))).
func laundersAnywhere(info *types.Info, g *callgraph.Graph, pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callgraph.UintptrOfPointer(info, call) {
			found = true
			return false
		}
		if callee := callgraph.CalleeFunc(info, call); callee != nil && callee.Pkg() == pass.Pkg {
			if g.Summary(callee).Flags&callgraph.LaundersPointer != 0 {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// referenceArg reports whether the argument roots at a reference to
// local state: &x, or a variable of pointer/slice/map/reference type.
func referenceArg(info *types.Info, arg ast.Expr) (bool, string) {
	if ue, ok := arg.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		return true, types.ExprString(arg)
	}
	if id := analysis.RootIdent(arg); id != nil {
		if obj := analysis.ObjOf(info, id); obj != nil && !analysis.DeepValue(obj.Type()) {
			return true, types.ExprString(arg)
		}
	}
	return false, ""
}

// enclosingLoop returns the innermost for/range statement containing
// the call, or nil — a crossing inside a loop executes once per
// iteration, so a clone hoisted out of it is shared by every crossing.
func enclosingLoop(fd *ast.FuncDecl, call *ast.CallExpr) ast.Node {
	var loop ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if n.Pos() <= call.Pos() && call.End() <= n.End() {
				loop = n // keep descending: the innermost match wins
			}
		}
		return true
	})
	return loop
}

// checkClosureCrossing enforces the deep-value contract on one closure
// handed across a shard boundary.
func checkClosureCrossing(pass *analysis.Pass, g *callgraph.Graph, fd *ast.FuncDecl, facts *funcFacts, call *ast.CallExpr, fnArg ast.Expr, loop ast.Node) {
	lit, _ := fnArg.(*ast.FuncLit)
	if lit == nil {
		if id, ok := fnArg.(*ast.Ident); ok {
			lit = facts.litOf[analysis.ObjOf(pass.TypesInfo, id)]
		}
	}
	if lit == nil {
		return // a named function value captures nothing local
	}
	report := func(pos token.Pos, format string, args ...any) {
		if pass.SuppressedAt(analysis.MarkerCrossAliasOK, pos, call.Pos()) {
			return
		}
		pass.Reportf(call.Pos(), format, args...)
	}
	info := pass.TypesInfo
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := analysis.ObjOf(info, id)
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() || seen[obj] {
			return true
		}
		// A capture is a variable declared in the enclosing function but
		// outside the literal. Package-level state is fleetsafe's beat.
		if declaredWithin(obj, lit) || !declaredWithin(obj, fd) {
			return true
		}
		seen[obj] = true

		if whence, ok := facts.laundered[obj]; ok {
			report(id.Pos(),
				"cross-shard closure captures %s, built by %s — the constructor smuggles a shard-local reference across the boundary; build it from deep values or mark //qcdoclint:crossalias-ok",
				id.Name, whence)
			return true
		}
		t := obj.Type()
		if isEventMech(t) || analysis.DeepValue(t) {
			return true
		}
		switch u := t.Underlying().(type) {
		case *types.Pointer:
			if receiverOnly(info, lit, obj) {
				return true // hand-back-to-owner: only methods on the pointee run over there
			}
			report(id.Pos(),
				"cross-shard closure captures %s (%s), a pointer into this shard's heap; the destination shard would alias shard-local state — send a deep-value copy or mark //qcdoclint:crossalias-ok",
				id.Name, t)
		case *types.Slice:
			if facts.fresh[obj] {
				if loop == nil || declaredWithin(obj, loop) {
					return true // one clone, one crossing (or a clone per iteration)
				}
				report(id.Pos(),
					"cross-shard closure captures %s: one clone is shared by every crossing in this loop; clone inside the loop or mark //qcdoclint:crossalias-ok",
					id.Name)
				return true
			}
			report(id.Pos(),
				"cross-shard closure captures slice %s, aliasing this shard's backing store; clone it per crossing (append to nil) or mark //qcdoclint:crossalias-ok",
				id.Name)
		case *types.Map, *types.Chan, *types.Signature, *types.Interface:
			report(id.Pos(),
				"cross-shard closure captures %s (%s); reference values cannot cross shards — send a deep-value copy or mark //qcdoclint:crossalias-ok",
				id.Name, t)
		case *types.Struct:
			if structEffectivelyFresh(facts, obj, u) {
				if loop == nil || declaredWithin(obj, loop) {
					return true // every reference field re-pointed at a clone
				}
				report(id.Pos(),
					"cross-shard closure captures %s: one clone is shared by every crossing in this loop; clone inside the loop or mark //qcdoclint:crossalias-ok",
					id.Name)
				return true
			}
			report(id.Pos(),
				"cross-shard closure captures %s, whose type %s contains reference fields; the copy still aliases shard-local state — make the type deep-value or mark //qcdoclint:crossalias-ok",
				id.Name, t)
		default:
			_ = u
			report(id.Pos(),
				"cross-shard closure captures %s (%s), which is not deep-value; send a copy free of references or mark //qcdoclint:crossalias-ok",
				id.Name, t)
		}
		return true
	})
}

// checkPayloadCrossing flags CrossPayload words derived from pointers:
// a by-value [4]uint64 crosses safely, but an address packed into a
// word re-aliases the source shard on arrival.
func checkPayloadCrossing(pass *analysis.Pass, g *callgraph.Graph, facts *funcFacts, call *ast.CallExpr) {
	info := pass.TypesInfo
	if len(call.Args) < 4 {
		return
	}
	for _, arg := range call.Args[3:] {
		bad := ""
		ast.Inspect(arg, func(n ast.Node) bool {
			if bad != "" {
				return false
			}
			switch nn := n.(type) {
			case *ast.Ident:
				if facts.ptrWord[analysis.ObjOf(info, nn)] {
					bad = nn.Name
				}
			case *ast.CallExpr:
				if callgraph.UintptrOfPointer(info, nn) {
					bad = types.ExprString(nn)
					return false
				}
				if callee := callgraph.CalleeFunc(info, nn); callee != nil && callee.Pkg() == pass.Pkg {
					if g.Summary(callee).Flags&callgraph.LaundersPointer != 0 {
						bad = callee.Name() + " (" + g.Why(callee, callgraph.LaundersPointer) + ")"
						return false
					}
				}
			}
			return true
		})
		if bad == "" {
			continue
		}
		if pass.Suppressed(analysis.MarkerCrossAliasOK, call.Pos()) {
			continue
		}
		pass.Reportf(call.Pos(),
			"cross-shard payload word derives from a pointer (%s); an address smuggled by value still aliases this shard's heap — send an index or handle instead, or mark //qcdoclint:crossalias-ok",
			bad)
	}
}

// receiverOnly reports whether every use of obj inside the literal is
// as the receiver of a method call — the closure hands the pointer back
// to code that owns it and never dereferences it itself.
func receiverOnly(info *types.Info, lit *ast.FuncLit, obj types.Object) bool {
	allowed := map[*ast.Ident]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && analysis.ObjOf(info, id) == obj {
			if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				allowed[id] = true
			}
		}
		return true
	})
	only := true
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if !only {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && analysis.ObjOf(info, id) == obj && !allowed[id] {
			only = false
		}
		return true
	})
	return only
}

// isEventMech reports whether the type belongs to the event package —
// engines, clusters, schedulers: the crossing mechanism itself, which
// every cross-site necessarily touches.
func isEventMech(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		return analysis.PkgIs(named.Obj().Pkg().Path(), "event")
	}
	if p, ok := t.(*types.Pointer); ok {
		return isEventMech(p.Elem())
	}
	return false
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}
