// Package cross exercises crossalias's escape classes — direct
// pointer, struct field, slice capture, slice element, closure
// capture, constructor-laundered — and the clean idioms that must stay
// quiet: deep-value copies, engine captures, receiver-only hand-back,
// and a fresh clone per crossing.
package cross

import (
	"unsafe"

	"event"
)

type counters struct{ n int }

type buffers struct{ data []byte }

func use(b []byte) {}

// ---- escape class: direct pointer ----

func directPointer(eng, dst *event.Engine, st *counters) {
	eng.CrossAt(dst, 1, func() { st.n++ }) // want `captures st \(\*cross\.counters\), a pointer into this shard's heap`
}

// ---- escape class: struct with reference field ----

func structField(eng, dst *event.Engine, shared []byte) {
	b := buffers{data: shared}
	eng.CrossAt(dst, 1, func() { _ = b.data[0] }) // want `captures b, whose type cross\.buffers contains reference fields`
}

// ---- escape class: slice capture / slice element ----

func sliceCapture(eng, dst *event.Engine, buf []byte) {
	eng.CrossAt(dst, 1, func() { buf[0] = 1 }) // want `captures slice buf, aliasing this shard's backing store`
}

func sliceElement(eng, dst *event.Engine, ring []counters) {
	p := &ring[0]
	eng.CrossAt(dst, 1, func() { p.n++ }) // want `captures p \(\*cross\.counters\), a pointer into this shard's heap`
}

// ---- escape class: closure / map capture ----

func closureCapture(eng, dst *event.Engine, done func()) {
	eng.CrossAt(dst, 1, func() { done() }) // want `captures done \(func\(\)\); reference values cannot cross shards`
}

func mapCapture(c *event.Cluster, counts map[string]int) {
	c.AtGlobal(1, func() { counts["tick"]++ }) // want `captures counts \(map\[string\]int\); reference values cannot cross shards`
}

// ---- escape class: constructor-laundered ----

type holder struct{ st *counters }

func newHolder(st *counters) *holder { return &holder{st: st} }

func (h *holder) Emit() {}

// constructorLaundered looks clean under the receiver-only rule — the
// closure only calls h.Emit() — but h was built around &local, so the
// crossing still aliases this shard's stack frame.
func constructorLaundered(eng, dst *event.Engine) {
	var local counters
	h := newHolder(&local)
	eng.CrossAt(dst, 1, func() { h.Emit() }) // want `captures h, built by newHolder \(which retains &local\)`
}

// ---- payload words ----

func payloadSmuggle(eng, dst *event.Engine, h event.PayloadHandler, st *counters) {
	w := uint64(uintptr(unsafe.Pointer(st)))
	eng.CrossPayload(dst, 1, h, w, event.Payload{}) // want `payload word derives from a pointer \(w\)`
}

func addrOf(st *counters) uintptr { return uintptr(unsafe.Pointer(st)) }

func payloadViaHelper(eng, dst *event.Engine, h event.PayloadHandler, st *counters) {
	eng.CrossPayload(dst, 1, h, uint64(addrOf(st)), event.Payload{}) // want `payload word derives from a pointer \(addrOf`
}

// ---- clean idioms: none of these may report ----

// deepValue crosses copies only: a reference-free struct and a scalar.
func deepValue(eng, dst *event.Engine, c counters) {
	word := uint64(42)
	eng.CrossAt(dst, 1, func() { _ = c.n + int(word) })
}

// handBack delivers work to the pointee's owning shard: the closure
// only invokes methods on the captured pointer.
type ownerState struct{ ticks int }

func (o *ownerState) Tick() {}

func handBack(eng, owner *event.Engine, o *ownerState) {
	eng.CrossAt(owner, 1, func() { o.Tick() })
}

// freshClone clones per crossing; the destination owns the copy.
func freshClone(eng, dst *event.Engine, src []byte) {
	cp := append([]byte(nil), src...)
	eng.CrossAt(dst, 1, func() { use(cp) })
}

// cloneInLoop makes a fresh clone per iteration: still clean.
func cloneInLoop(c *event.Cluster, eng *event.Engine, src []byte) {
	for i := 0; i < 4; i++ {
		cp := append([]byte(nil), src...)
		eng.CrossAt(c.Shard(i), 1, func() { use(cp) })
	}
}

// sharedCloneLoop hoists one clone out of the fan-out loop: every
// destination shard aliases the same backing array.
func sharedCloneLoop(c *event.Cluster, eng *event.Engine, src []byte) {
	cp := append([]byte(nil), src...)
	for i := 0; i < 4; i++ {
		eng.CrossAt(c.Shard(i), 1, func() { use(cp) }) // want `one clone is shared by every crossing in this loop`
	}
}

// structCloneField re-points the struct copy's only reference field at
// a fresh clone before crossing: the copy aliases nothing.
func structCloneField(eng, dst *event.Engine, b buffers) {
	cp := b
	cp.data = append([]byte(nil), b.data...)
	eng.CrossAt(dst, 1, func() { _ = cp.data[0] })
}

// structFreshLit builds the struct from a composite literal whose
// reference field is freshly allocated: clean.
func structFreshLit(eng, dst *event.Engine) {
	b := buffers{data: make([]byte, 4)}
	eng.CrossAt(dst, 1, func() { _ = b.data[0] })
}

// structCloneInLoop clones the struct's backing per iteration: clean.
func structCloneInLoop(c *event.Cluster, eng *event.Engine, b buffers) {
	for i := 0; i < 4; i++ {
		cp := b
		cp.data = append([]byte(nil), b.data...)
		eng.CrossAt(c.Shard(i), 1, func() { use(cp.data) })
	}
}

// structSharedCloneLoop hoists the cloned struct out of the fan-out
// loop: every destination aliases the one clone's backing array.
func structSharedCloneLoop(c *event.Cluster, eng *event.Engine, b buffers) {
	cp := b
	cp.data = append([]byte(nil), b.data...)
	for i := 0; i < 4; i++ {
		eng.CrossAt(c.Shard(i), 1, func() { use(cp.data) }) // want `one clone is shared by every crossing in this loop`
	}
}

// payloadClean sends a by-value word block: nothing to flag.
func payloadClean(eng, dst *event.Engine, h event.PayloadHandler) {
	eng.CrossPayload(dst, 1, h, 7, event.Payload{1, 2, 3, 4})
}

// namedClosure is analyzed through the local literal binding.
func namedClosure(eng, dst *event.Engine, st *counters) {
	fn := func() { st.n++ }
	eng.CrossAt(dst, 1, fn) // want `captures st \(\*cross\.counters\), a pointer into this shard's heap`
}

// ---- waiver: justified crossing accrues a hit and stays quiet ----

func waived(eng, dst *event.Engine, st *counters) {
	//qcdoclint:crossalias-ok dst owns st after this handoff; the source shard never touches it again
	eng.CrossAt(dst, 1, func() { st.n++ })
}
