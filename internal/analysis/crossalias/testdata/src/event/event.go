// Package event is a minimal stand-in for qcdoc/internal/event: the
// crossalias checks match cross-shard schedulers by (package tail,
// method name), so fixtures only need the shapes, not the engine.
package event

type Time int64

type Payload [4]uint64

type PayloadHandler interface{ HandlePayload(arg uint64, p Payload) }

type Engine struct{}

func (e *Engine) Now() Time                                                               { return 0 }
func (e *Engine) At(t Time, fn func())                                                    {}
func (e *Engine) ShardID() int                                                            { return 0 }
func (e *Engine) CrossAt(dst *Engine, t Time, fn func())                                  {}
func (e *Engine) CrossPayload(dst *Engine, t Time, h PayloadHandler, a uint64, p Payload) {}

type Cluster struct{}

func (c *Cluster) Shard(i int) *Engine        { return nil }
func (c *Cluster) AtGlobal(t Time, fn func()) {}
func (c *Cluster) OnBarrier(fn func())        {}
