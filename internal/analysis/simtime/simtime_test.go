package simtime_test

import (
	"testing"

	"qcdoc/internal/analysis/analysistest"
	"qcdoc/internal/analysis/simtime"
)

func TestSimtime(t *testing.T) {
	analysistest.Run(t, "testdata", simtime.Analyzer, "a")
}
