// Fixture for the simtime analyzer: wall-clock reads and global
// math/rand draws are flagged; engine-style code, rand constructors,
// and //qcdoclint:walltime-ok waivers are not.
package a

import (
	"math/rand"
	"time"
)

func clock() {
	_ = time.Now()              // want `wall-clock time.Now`
	time.Sleep(time.Second)     // want `wall-clock time.Sleep`
	_ = time.Since(time.Time{}) // want `wall-clock time.Since`
	_ = time.Until(time.Time{}) // want `wall-clock time.Until`
	<-time.After(time.Second)   // want `wall-clock time.After`
	_ = time.Tick(time.Second)  // want `wall-clock time.Tick`
	_ = time.NewTimer(0)        // want `wall-clock time.NewTimer`
}

// Duration arithmetic never observes the host clock; only the
// clock-reading functions are flagged.
func durationsAreFine() time.Duration {
	return 3 * time.Millisecond
}

func random() {
	_ = rand.Intn(6)    // want `global rand.Intn`
	_ = rand.Float64()  // want `global rand.Float64`
	rand.Shuffle(0, nil) // want `global rand.Shuffle`
}

// Explicit generators with explicit seeds are the sanctioned form —
// internal/rng builds on exactly this.
func seededIsFine() int {
	r := rand.New(rand.NewSource(7))
	return r.Intn(6)
}

// A waived line: host wall-clock outside the simulated machine.
func waived() {
	_ = time.Now() //qcdoclint:walltime-ok CLI progress meter
}

// Marker-above style covers the next line.
func waivedAbove() {
	//qcdoclint:walltime-ok host-side benchmark timing
	_ = time.Now()
}
