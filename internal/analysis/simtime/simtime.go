// Package simtime forbids wall-clock time and globally-seeded
// randomness in simulator code.
//
// The simulation's headline property is bit-identical determinism: two
// runs of the same seeded machine dispatch the same event stream and
// produce the same E4/E5 timing digests (DESIGN.md §5, §11). A single
// time.Now in a daemon, or a draw from the process-global math/rand,
// silently couples simulated behaviour to the host — the exact failure
// the real QCDOC's qos kernel avoided by owning its whole runtime.
// Simulator code must take time from the event.Engine clock
// (Engine.Now/After) and randomness from internal/rng streams keyed by
// (seed, site).
package simtime

import (
	"go/ast"
	"go/types"

	"qcdoc/internal/analysis"
)

// Analyzer is the simtime checker.
var Analyzer = &analysis.Analyzer{
	Name: "simtime",
	Doc: "forbid wall-clock (time.Now/Since/Sleep/After/...) and global math/rand " +
		"in simulator packages; use the event.Engine clock and internal/rng streams. " +
		"Waive a line with //qcdoclint:walltime-ok.",
	Run: run,
}

// wallFuncs are the time-package functions that read or wait on the
// host clock. Types (time.Duration) and pure constructors of constants
// are fine; observing the host's clock is not.
var wallFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// randAllowed are math/rand identifiers that do not touch the global
// generator; everything else on the package is flagged.
var randAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	"Source":    true,
	"Rand":      true,
	"Zipf":      true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch path := pn.Imported().Path(); path {
			case "time":
				if wallFuncs[sel.Sel.Name] && !pass.Suppressed(analysis.MarkerWalltimeOK, sel.Pos()) {
					pass.Reportf(sel.Pos(),
						"wall-clock time.%s in simulator code breaks deterministic replay; use the event.Engine clock (Engine.Now/After) or mark //qcdoclint:walltime-ok",
						sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if !randAllowed[sel.Sel.Name] && !pass.Suppressed(analysis.MarkerWalltimeOK, sel.Pos()) {
					pass.Reportf(sel.Pos(),
						"global rand.%s is seeded per-process, not per-site; use internal/rng streams keyed by (seed, id) for partition-independent determinism",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil, nil
}
