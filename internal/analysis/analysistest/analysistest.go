// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against expectations written in the fixtures
// themselves — the same contract as golang.org/x/tools' analysistest,
// rebuilt on the stdlib-only loader.
//
// Fixtures live in testdata/src/<importpath>/*.go. A line that should
// be flagged carries a trailing comment:
//
//	for k := range m { // want `iteration over map`
//
// Each backquoted or double-quoted token after "want" is a regular
// expression that must match one diagnostic reported on that line;
// every diagnostic must in turn be matched by some expectation, so
// fixtures double as negative tests: an unmarked clean line that draws
// a report fails the test.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"qcdoc/internal/analysis"
	"qcdoc/internal/analysis/load"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run loads each fixture package from testdata/src, applies the
// analyzer, and reports mismatches between actual diagnostics and the
// fixtures' want-comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	ctx := load.NewContext(testdata + "/src")
	for _, path := range pkgPaths {
		pkg, err := ctx.LoadDir(testdata+"/src/"+path, path)
		if err != nil {
			t.Fatalf("%s: loading fixture %s: %v", a.Name, path, err)
		}
		check(t, a, pkg)
	}
}

// expectation is one want-token: a regexp expected to match a
// diagnostic at file:line.
type expectation struct {
	key     string // "file:line"
	rx      *regexp.Regexp
	raw     string
	matched bool
}

func check(t *testing.T, a *analysis.Analyzer, pkg *load.Package) {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer failed on %s: %v", a.Name, pkg.Path, err)
	}

	wants := collectWants(t, pkg)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for _, w := range wants {
			if w.key == key && w.rx.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s: %s", a.Name, pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: expected diagnostic matching %q at %s, got none", a.Name, w.raw, w.key)
		}
	}
}

func collectWants(t *testing.T, pkg *load.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, raw := range splitWantTokens(m[1]) {
					pat, err := unquoteToken(raw)
					if err != nil {
						t.Fatalf("bad want token %q at %s: %v", raw, pos, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("bad want regexp %q at %s: %v", pat, pos, err)
					}
					wants = append(wants, &expectation{key: key, rx: rx, raw: pat})
				}
			}
		}
	}
	return wants
}

// splitWantTokens splits `"a" "b c"` or "`a` `b`" into quoted tokens.
func splitWantTokens(s string) []string {
	var toks []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			break // trailing prose after the tokens; ignore
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			break
		}
		toks = append(toks, s[:end+2])
		s = strings.TrimSpace(s[end+2:])
	}
	return toks
}

func unquoteToken(raw string) (string, error) {
	if strings.HasPrefix(raw, "`") {
		return strings.Trim(raw, "`"), nil
	}
	return strconv.Unquote(raw)
}
