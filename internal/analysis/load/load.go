// Package load turns directories of Go source into type-checked
// packages for the analysis framework, with no dependency outside the
// standard library. Imports resolve through fixture roots first (the
// analysistest GOPATH-style testdata/src layout), then fall back to the
// compiler's source importer, which handles both the standard library
// and this module's own packages offline.
package load

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package plus everything an
// analysis.Pass needs.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Context loads packages against one shared FileSet and import cache.
// It implements types.Importer so loaded packages can import each other
// and anything the source importer can reach.
type Context struct {
	Fset     *token.FileSet
	roots    []string // fixture src roots, tried before the fallback
	fallback types.Importer
	cache    map[string]*Package
	loading  map[string]bool // import-cycle guard for root-resolved paths
}

// NewContext creates a loader. roots are optional fixture directories
// laid out GOPATH-style (root/<importpath>/*.go) that take priority
// over the fallback importer.
func NewContext(roots ...string) *Context {
	fset := token.NewFileSet()
	return &Context{
		Fset:     fset,
		roots:    roots,
		fallback: importer.ForCompiler(fset, "source", nil),
		cache:    map[string]*Package{},
		loading:  map[string]bool{},
	}
}

// Import implements types.Importer: fixture roots first (cached), then
// the source importer. Module and stdlib imports always resolve through
// the source importer — never through packages this Context loaded as
// analysis targets — so that a dependency type-checked indirectly (by
// the source importer, for some other import) and the same dependency
// imported directly are one *types.Package, preserving type identity
// across the whole import graph of each pass.
func (c *Context) Import(path string) (*types.Package, error) {
	if p, ok := c.cache[path]; ok {
		return p.Types, nil
	}
	for _, root := range c.roots {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			p, err := c.LoadDir(dir, path)
			if err != nil {
				return nil, err
			}
			c.cache[path] = p
			return p.Types, nil
		}
	}
	return c.fallback.Import(path)
}

// LoadDir parses and type-checks the non-test Go files of dir as
// import path path.
func (c *Context) LoadDir(dir, path string) (*Package, error) {
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	return c.LoadFiles(dir, path, names)
}

// LoadFiles parses and type-checks the named files (relative to dir) as
// import path path. The caller chooses the file list, so a driver can
// pass exactly what `go list` resolved for the build.
func (c *Context) LoadFiles(dir, path string, names []string) (*Package, error) {
	if c.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %s", path)
	}
	c.loading[path] = true
	defer delete(c.loading, path)

	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(c.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var firstErr error
	conf := types.Config{
		Importer: c,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, c.Fset, files, info)
	if firstErr != nil {
		return nil, firstErr
	}
	if err != nil {
		return nil, err
	}
	p := &Package{Path: path, Dir: dir, Fset: c.Fset, Files: files, Types: tpkg, Info: info}
	return p, nil
}

// goFileNames lists dir's buildable non-test Go files, sorted, so load
// order (and with it type-checking and diagnostic order) is stable.
func goFileNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func hasGoFiles(dir string) bool {
	names, err := goFileNames(dir)
	return err == nil && len(names) > 0
}
