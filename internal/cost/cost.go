// Package cost reproduces the §4 cost accounting of the 4096-node
// QCDOC: the component purchase prices (Columbia University purchase
// orders), the R&D proration over the funded machines, and the
// price/performance figures at the three demonstrated clock speeds.
package cost

import (
	"fmt"

	"qcdoc/internal/event"
	"qcdoc/internal/machine"
	"qcdoc/internal/perf"
)

// The paper's exact purchase figures (§4, in dollars).
const (
	Daughterboards4096   = 1_105_692.67 // 2048 boards; 128 MB DDR on half, 256 MB on half
	Motherboards4096     = 180_404.88   // 64 boards
	WaterCooledCabinets  = 187_296.00   // four cabinets
	MeshCables4096       = 71_040.00    // 768 cables
	HostAndStorage       = 64_300.00    // host computer, Ethernet switches, 6 TB RAID
	DesignAndPrototyping = 2_166_000.00 // R&D, excluding academic salaries
	RnDProration4096     = 99_159.00    // R&D share carried by the 4096-node machine
)

// Item is one line of the cost table.
type Item struct {
	Name   string
	Amount float64
}

// Breakdown4096 returns the §4 cost table for the 4096-node machine.
func Breakdown4096() []Item {
	return []Item{
		{"2048 daughterboards (128/256 MB DDR)", Daughterboards4096},
		{"64 motherboards", Motherboards4096},
		{"4 water-cooled cabinets", WaterCooledCabinets},
		{"768 mesh-network cables", MeshCables4096},
		{"host computer, Ethernet switches, 6 TB RAID", HostAndStorage},
	}
}

// The paper's quoted totals. Note a small internal inconsistency in the
// paper: the five listed items sum to $1,608,733.55, while the text
// quotes "a total machine cost of $1,610,442" ($1,708.45 more —
// presumably a line item absorbed into the prose; the host/storage
// figure was still "awaiting final accounting"). The price/performance
// numbers follow from the quoted totals exactly, so we keep both: the
// computed item sum (MachineCost4096) and the paper's canonical totals.
const (
	PaperMachineTotal = 1_610_442.00
	PaperTotalWithRnD = 1_709_601.00
)

// MachineCost4096 is the sum of the listed purchase items
// ($1,608,733.55 — see the note on PaperMachineTotal).
func MachineCost4096() float64 {
	total := 0.0
	for _, it := range Breakdown4096() {
		total += it.Amount
	}
	return total
}

// TotalWithRnD4096 is the paper's canonical total including the prorated
// R&D share: $1,709,601.
func TotalWithRnD4096() float64 {
	return PaperTotalWithRnD
}

// PricePerformance reports dollars per sustained Mflops for a machine
// at the given node count, clock, solver efficiency and total cost.
func PricePerformance(totalDollars float64, nodes int, clock event.Hz, efficiency float64) float64 {
	sustainedMflops := perf.SustainedMachine(nodes, clock, efficiency) * 1000 // Gflops -> Mflops
	return totalDollars / sustainedMflops
}

// Paper4096Points returns the paper's price/performance table: $1.29,
// $1.10 and $1.03 per sustained Mflops at 360, 420 and 450 MHz with 45%
// solver efficiency on the $1,709,601 machine.
type PricePoint struct {
	Clock     event.Hz
	Dollars   float64 // per sustained Mflops
	PaperSays float64
}

// Paper4096Points computes the three demonstrated clock points.
func Paper4096Points() []PricePoint {
	total := TotalWithRnD4096()
	pts := []PricePoint{
		{Clock: 360 * event.MHz, PaperSays: 1.29},
		{Clock: 420 * event.MHz, PaperSays: 1.10},
		{Clock: 450 * event.MHz, PaperSays: 1.03},
	}
	for i := range pts {
		pts[i].Dollars = PricePerformance(total, 4096, pts[i].Clock, 0.45)
	}
	return pts
}

// PerNodeCost estimates the cost per node of the 4096-node machine
// (useful for extrapolating the 12,288-node builds, where the paper
// expects volume discounts to push price/performance to the $1 target).
func PerNodeCost() float64 { return TotalWithRnD4096() / 4096 }

// Target is the design goal from the abstract.
const TargetDollarsPerMflops = 1.00

// Twelve288Estimate extrapolates a 12,288-node machine at the given
// volume-discount factor on the per-node hardware cost (R&D already
// fully prorated across machines per the paper's accounting).
func Twelve288Estimate(clock event.Hz, discount float64) float64 {
	perNodeHW := MachineCost4096() / 4096
	total := perNodeHW * (1 - discount) * 12288
	return PricePerformance(total, 12288, clock, 0.45)
}

// PowerBudget ties cost to the packaging model: dollars per watt for the
// 4096-node machine.
func PowerBudget(clock event.Hz) (watts float64, dollarsPerWatt float64) {
	p := machine.PackagingFor(4096, clock)
	return p.PowerWatts, TotalWithRnD4096() / p.PowerWatts
}

// FormatTable renders the cost breakdown as text rows.
func FormatTable() string {
	out := ""
	for _, it := range Breakdown4096() {
		out += fmt.Sprintf("  %-45s $%12.2f\n", it.Name, it.Amount)
	}
	out += fmt.Sprintf("  %-45s $%12.2f\n", "items sum", MachineCost4096())
	out += fmt.Sprintf("  %-45s $%12.2f\n", "machine total (paper)", PaperMachineTotal)
	out += fmt.Sprintf("  %-45s $%12.2f\n", "prorated R&D", RnDProration4096)
	out += fmt.Sprintf("  %-45s $%12.2f\n", "grand total", TotalWithRnD4096())
	return out
}
