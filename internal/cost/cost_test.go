package cost

import (
	"math"
	"testing"

	"qcdoc/internal/event"
)

func TestE8CostTable(t *testing.T) {
	// §4's purchase items.
	items := Breakdown4096()
	if len(items) != 5 {
		t.Fatalf("%d items", len(items))
	}
	sum := MachineCost4096()
	if math.Abs(sum-1_608_733.55) > 0.01 {
		t.Fatalf("item sum = %.2f", sum)
	}
	// The paper's quoted totals.
	if math.Abs(PaperMachineTotal-1_610_442) > 0.001 {
		t.Fatal("machine total constant wrong")
	}
	if TotalWithRnD4096() != 1_709_601 {
		t.Fatalf("total with R&D = %v", TotalWithRnD4096())
	}
	// The quoted machine total plus prorated R&D reproduces the quoted
	// grand total exactly.
	if math.Abs(PaperMachineTotal+RnDProration4096-PaperTotalWithRnD) > 0.01 {
		t.Fatal("paper totals inconsistent")
	}
	// Item sum vs quoted total: the paper's $1,708.45 slack, documented.
	if d := PaperMachineTotal - sum; math.Abs(d-1708.45) > 0.01 {
		t.Fatalf("discrepancy = %.2f", d)
	}
}

func TestE9PricePerformance(t *testing.T) {
	// §4: $1.29, $1.10, $1.03 per sustained Mflops at 360/420/450 MHz
	// (4096 nodes, 45% efficiency, $1,709,601).
	pts := Paper4096Points()
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if math.Abs(p.Dollars-p.PaperSays) > 0.005 {
			t.Errorf("%v MHz: $%.4f/Mflops, paper says $%.2f", int64(p.Clock)/1e6, p.Dollars, p.PaperSays)
		}
	}
	// The target: close to $1/Mflops at full scale with volume discounts.
	tgt := Twelve288Estimate(450*event.MHz, 0.10)
	if tgt > TargetDollarsPerMflops+0.02 {
		t.Errorf("12288-node estimate $%.3f/Mflops misses the $1 target", tgt)
	}
	if tgt < 0.5 {
		t.Errorf("12288-node estimate $%.3f implausibly low", tgt)
	}
}

func TestPerNodeCost(t *testing.T) {
	// ~$417 per node including R&D.
	c := PerNodeCost()
	if c < 400 || c > 440 {
		t.Fatalf("per-node cost $%.2f", c)
	}
}

func TestPowerBudget(t *testing.T) {
	w, dpw := PowerBudget(450 * event.MHz)
	// 4096 nodes = 4 racks: just under 40 kW.
	if w < 35000 || w > 42000 {
		t.Fatalf("power = %v W", w)
	}
	if dpw < 40 || dpw > 50 {
		t.Fatalf("$/W = %v", dpw)
	}
}

func TestFormatTable(t *testing.T) {
	s := FormatTable()
	if len(s) == 0 {
		t.Fatal("empty table")
	}
}
