// Package telemetry is the machine-wide observability layer: a registry
// of counter and gauge sources that hardware and software components
// register once at construction, and that the host snapshots on demand.
//
// The load-bearing design rule is the zero-perturbation contract
// (DESIGN.md §10): reading telemetry must not change what the simulated
// machine does. The registry therefore never schedules events and never
// pushes — counters are plain fields the owning component increments on
// its own hot path, and the registry holds only *readers* (emit
// closures) that walk those fields when a snapshot is requested. When
// the registry is disabled, Snapshot returns empty and no source is
// touched; the components' own counters are ordinary simulator state
// either way, so enabling or disabling telemetry cannot move a single
// simulated event.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// EmitFunc receives one named counter value during a snapshot.
type EmitFunc func(name string, v uint64)

// counterSource is one registered counter group: a name prefix and a
// reader that emits the group's current values.
type counterSource struct {
	prefix string
	emit   func(EmitFunc)
}

// gaugeSource is one registered derived gauge.
type gaugeSource struct {
	name string
	get  func() float64
}

// HistEmitFunc receives one named histogram snapshot during a registry
// snapshot. The emitting source builds the HistogramSnapshot itself
// (typically by merging per-node or per-link Histograms), so all
// aggregation cost lives on the cold pull path.
type HistEmitFunc func(name string, s HistogramSnapshot)

// histSource is one registered histogram group.
type histSource struct {
	prefix string
	emit   func(HistEmitFunc)
}

// Registry is a catalogue of telemetry sources, usually one per machine.
// It is not safe for concurrent use; like everything else in the
// simulator it lives on the engine goroutine.
type Registry struct {
	enabled  bool
	counters []counterSource
	gauges   []gaugeSource
	hists    []histSource
}

// New creates an empty, disabled registry.
func New() *Registry { return &Registry{} }

// SetEnabled turns snapshot collection on or off. Registration is
// allowed either way; a disabled registry just reads nothing.
func (r *Registry) SetEnabled(on bool) { r.enabled = on }

// Enabled reports whether snapshots collect.
func (r *Registry) Enabled() bool { return r.enabled }

// RegisterCounters adds a counter group. Every name the emit callback
// reports is prefixed with "prefix/". Registration stores only the
// closure — values are read at snapshot time, so the callback must stay
// valid for the registry's lifetime.
func (r *Registry) RegisterCounters(prefix string, emit func(EmitFunc)) {
	r.counters = append(r.counters, counterSource{prefix: prefix, emit: emit})
}

// RegisterGauge adds a derived gauge (a float computed at snapshot time,
// e.g. a utilization or a rate).
func (r *Registry) RegisterGauge(name string, get func() float64) {
	r.gauges = append(r.gauges, gaugeSource{name: name, get: get})
}

// RegisterHistograms adds a histogram group. Every name the emit
// callback reports is prefixed with "prefix/". Like counters, only the
// reader closure is stored; histograms are walked at snapshot time.
func (r *Registry) RegisterHistograms(prefix string, emit func(HistEmitFunc)) {
	r.hists = append(r.hists, histSource{prefix: prefix, emit: emit})
}

// Sources reports how many counter groups and gauges are registered.
func (r *Registry) Sources() (counters, gauges int) {
	return len(r.counters), len(r.gauges)
}

// HistogramSources reports how many histogram groups are registered.
func (r *Registry) HistogramSources() int { return len(r.hists) }

// Clear disables the registry and drops every registered source. Pool
// reclamation calls this when a machine is torn down so a recycled
// engine can never reach emit closures of a dead machine.
func (r *Registry) Clear() {
	r.enabled = false
	r.counters = nil
	r.gauges = nil
	r.hists = nil
}

// Snapshot is one observation of every registered source.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot reads every source. On a disabled registry it returns an
// empty snapshot without touching any source.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]uint64{}, Gauges: map[string]float64{}}
	if !r.enabled {
		return s
	}
	for _, src := range r.counters {
		src.emit(func(name string, v uint64) {
			s.Counters[src.prefix+"/"+name] = v
		})
	}
	for _, g := range r.gauges {
		s.Gauges[g.name] = g.get()
	}
	if len(r.hists) > 0 {
		s.Histograms = map[string]HistogramSnapshot{}
		for _, src := range r.hists {
			src.emit(func(name string, hs HistogramSnapshot) {
				s.Histograms[src.prefix+"/"+name] = hs
			})
		}
	}
	return s
}

// Names returns the snapshot's counter names, sorted.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// snapNames returns the sorted keys of a histogram-snapshot map.
func snapNames(m map[string]HistogramSnapshot) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Format renders the snapshot as sorted "name value" lines — counters
// first, then gauges, then histogram percentiles.
func (s Snapshot) Format() string {
	var b strings.Builder
	for _, n := range s.Names() {
		fmt.Fprintf(&b, "%s %d\n", n, s.Counters[n])
	}
	gnames := make([]string, 0, len(s.Gauges))
	for n := range s.Gauges {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)
	for _, n := range gnames {
		fmt.Fprintf(&b, "%s %g\n", n, s.Gauges[n])
	}
	for _, n := range snapNames(s.Histograms) {
		h := s.Histograms[n]
		fmt.Fprintf(&b, "%s count=%d p50=%d p95=%d p99=%d max=%d\n",
			n, h.Count, h.P50, h.P95, h.P99, h.Max)
	}
	return b.String()
}
