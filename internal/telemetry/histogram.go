// Histogram: a fixed log2-bucket latency distribution with a zero-alloc
// Record, the distribution counterpart of the registry's counters. The
// owning component records durations (picoseconds, usually) on its own
// hot path; percentiles are derived only at snapshot time, on the cold
// pull path, so the zero-perturbation contract (DESIGN.md §10, §15)
// holds: recording is plain array arithmetic on simulator-owned state,
// and reading never touches the hot path at all.
package telemetry

import "math/bits"

// HistogramBuckets is the fixed bucket count: bucket 0 holds the value
// 0, bucket i (1..64) holds values in [2^(i-1), 2^i). Indexing is
// bits.Len64(v), so Record is a handful of integer ops and never
// allocates or branches on configuration.
const HistogramBuckets = 65

// Histogram is a fixed-size log2 histogram. The zero value is ready to
// use. Like the registry it lives on the engine goroutine and is not
// safe for concurrent use; cross-goroutine reads go through Snapshot
// copies taken on the engine side.
type Histogram struct {
	count   uint64
	sum     uint64
	max     uint64
	buckets [HistogramBuckets]uint64
}

// Record adds one observation. Hot path: a few integer ops on fixed
// storage, no allocation, no branching beyond the max update.
//
//qcdoc:noalloc
func (h *Histogram) Record(v uint64) {
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.buckets[bits.Len64(v)]++
}

// Count reports how many observations were recorded.
func (h *Histogram) Count() uint64 { return h.count }

// Absorb merges o's observations into h. Cold path (snapshot-time
// aggregation across nodes and links).
func (h *Histogram) Absorb(o *Histogram) {
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
	for i := range o.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// bucketUpper is the largest value bucket i can hold: 0 for bucket 0,
// 2^i-1 otherwise (saturating at the top bucket).
func bucketUpper(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(i)) - 1
}

// quantile returns the smallest bucket upper bound covering at least
// ceil(count*num/den) observations, clamped to the observed max. Pure
// integer arithmetic, so the same observations give bit-identical
// percentiles on every platform and every run.
func quantile(buckets []uint64, count, max, num, den uint64) uint64 {
	if count == 0 {
		return 0
	}
	rank := (count*num + den - 1) / den
	var cum uint64
	for i, n := range buckets {
		cum += n
		if cum >= rank {
			u := bucketUpper(i)
			if u > max {
				u = max
			}
			return u
		}
	}
	return max
}

// HistogramSnapshot is one immutable observation of a Histogram:
// count/sum/max plus deterministic log2-bucket percentiles (each
// percentile is the upper bound of the bucket containing that rank,
// clamped to the observed max — an overestimate by at most 2x, but
// exactly reproducible). Buckets carries the raw bucket counts (trimmed
// to the last nonzero bucket) so snapshots can be merged losslessly;
// it is excluded from JSON to keep Machine.Telemetry output compact.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Max     uint64   `json:"max"`
	P50     uint64   `json:"p50"`
	P95     uint64   `json:"p95"`
	P99     uint64   `json:"p99"`
	Buckets []uint64 `json:"-"`
}

// Snapshot derives the immutable view. Cold path; the one allocation
// (the trimmed bucket slice) happens on the observer's side of the
// pull, never on the recording path.
func (h *Histogram) Snapshot() HistogramSnapshot {
	top := -1
	for i := len(h.buckets) - 1; i >= 0; i-- {
		if h.buckets[i] != 0 {
			top = i
			break
		}
	}
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Max: h.max}
	if top >= 0 {
		s.Buckets = append([]uint64(nil), h.buckets[:top+1]...)
	}
	s.fillPercentiles()
	return s
}

func (s *HistogramSnapshot) fillPercentiles() {
	s.P50 = quantile(s.Buckets, s.Count, s.Max, 50, 100)
	s.P95 = quantile(s.Buckets, s.Count, s.Max, 95, 100)
	s.P99 = quantile(s.Buckets, s.Count, s.Max, 99, 100)
}

// Mean returns the arithmetic mean of the observations, 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Merge combines two snapshots (e.g. the same latency across two fleet
// runs) into one, recomputing the percentiles from the merged buckets.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	m := HistogramSnapshot{
		Count: s.Count + o.Count,
		Sum:   s.Sum + o.Sum,
		Max:   s.Max,
	}
	if o.Max > m.Max {
		m.Max = o.Max
	}
	n := len(s.Buckets)
	if len(o.Buckets) > n {
		n = len(o.Buckets)
	}
	if n > 0 {
		m.Buckets = make([]uint64, n)
		copy(m.Buckets, s.Buckets)
		for i, v := range o.Buckets {
			m.Buckets[i] += v
		}
	}
	m.fillPercentiles()
	return m
}

// MergeHistogramMaps folds src into dst (allocating dst if nil) in
// sorted key order, so callers merging across runs or attempts stay
// deterministic without each reinventing the sorted-iteration dance.
func MergeHistogramMaps(dst, src map[string]HistogramSnapshot) map[string]HistogramSnapshot {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(map[string]HistogramSnapshot, len(src))
	}
	for _, name := range snapNames(src) {
		dst[name] = dst[name].Merge(src[name])
	}
	return dst
}
