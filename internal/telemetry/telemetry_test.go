package telemetry

import (
	"strings"
	"testing"
)

func TestRegistrySnapshot(t *testing.T) {
	r := New()
	words := uint64(0)
	touched := 0
	r.RegisterCounters("node0/scu", func(emit EmitFunc) {
		touched++
		emit("words_sent", words)
	})
	r.RegisterGauge("machine/efficiency", func() float64 { return 0.4 })
	if c, g := r.Sources(); c != 1 || g != 1 {
		t.Fatalf("sources: %d counters, %d gauges", c, g)
	}

	// Disabled: empty snapshot, and crucially the source is never read.
	if r.Enabled() {
		t.Fatal("registry enabled at birth")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || touched != 0 {
		t.Fatalf("disabled snapshot read sources: %+v (touched %d)", s, touched)
	}

	r.SetEnabled(true)
	words = 42
	s = r.Snapshot()
	if touched != 1 {
		t.Fatalf("source read %d times", touched)
	}
	if got := s.Counters["node0/scu/words_sent"]; got != 42 {
		t.Fatalf("counter = %d, keys %v", got, s.Names())
	}
	if got := s.Gauges["machine/efficiency"]; got != 0.4 {
		t.Fatalf("gauge = %g", got)
	}

	// Snapshots are pull-based: a later snapshot sees the new value with
	// no intervening telemetry call.
	words = 99
	if got := r.Snapshot().Counters["node0/scu/words_sent"]; got != 99 {
		t.Fatalf("second snapshot = %d", got)
	}
}

func TestSnapshotNamesAndFormat(t *testing.T) {
	r := New()
	r.SetEnabled(true)
	r.RegisterCounters("b", func(emit EmitFunc) { emit("x", 2) })
	r.RegisterCounters("a", func(emit EmitFunc) { emit("y", 1) })
	r.RegisterGauge("g", func() float64 { return 1.5 })
	s := r.Snapshot()
	names := s.Names()
	if len(names) != 2 || names[0] != "a/y" || names[1] != "b/x" {
		t.Fatalf("names = %v", names)
	}
	f := s.Format()
	if f != "a/y 1\nb/x 2\ng 1.5\n" {
		t.Fatalf("format:\n%s", f)
	}
	if !strings.HasSuffix(f, "\n") {
		t.Fatal("format must end with newline")
	}
}
