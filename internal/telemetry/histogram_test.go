package telemetry

import (
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Record(0) // bucket 0
	h.Record(1) // bucket 1: [1,2)
	h.Record(2) // bucket 2: [2,4)
	h.Record(3)
	h.Record(1 << 40) // bucket 41
	if h.Count() != 5 {
		t.Fatalf("count %d", h.Count())
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 0+1+2+3+(1<<40) || s.Max != 1<<40 {
		t.Fatalf("snapshot %+v", s)
	}
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 41: 1}
	for i, n := range s.Buckets {
		if n != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	// 100 samples 1..100: p50 lands in the [32,64) bucket, p95/p99/max in
	// [64,128). Percentiles are bucket upper bounds clamped to max.
	for v := uint64(1); v <= 100; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.P50 != 63 {
		t.Errorf("p50 = %d, want 63 (upper bound of [32,64))", s.P50)
	}
	if s.P95 != 100 || s.P99 != 100 || s.Max != 100 {
		t.Errorf("p95 %d p99 %d max %d, want all clamped to 100", s.P95, s.P99, s.Max)
	}
	// Single sample: every percentile is that sample's bucket, clamped.
	var one Histogram
	one.Record(7)
	os := one.Snapshot()
	if os.P50 != 7 || os.P99 != 7 || os.Max != 7 {
		t.Errorf("single-sample percentiles %d/%d/%d, want 7", os.P50, os.P99, os.Max)
	}
	// Empty histogram: all zeros.
	var empty Histogram
	es := empty.Snapshot()
	if es.Count != 0 || es.P50 != 0 || es.Max != 0 {
		t.Errorf("empty snapshot %+v", es)
	}
}

func TestHistogramAbsorb(t *testing.T) {
	var a, b, both Histogram
	for v := uint64(1); v <= 50; v++ {
		a.Record(v)
		both.Record(v)
	}
	for v := uint64(51); v <= 100; v++ {
		b.Record(v)
		both.Record(v)
	}
	a.Absorb(&b)
	as, bs := a.Snapshot(), both.Snapshot()
	if as.Count != bs.Count || as.Sum != bs.Sum || as.Max != bs.Max ||
		as.P50 != bs.P50 || as.P95 != bs.P95 || as.P99 != bs.P99 {
		t.Fatalf("absorb %+v != direct %+v", as, bs)
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	var a, b, both Histogram
	for v := uint64(1); v <= 60; v++ {
		a.Record(v * 3)
		both.Record(v * 3)
	}
	for v := uint64(1); v <= 40; v++ {
		b.Record(v * 7)
		both.Record(v * 7)
	}
	as := a.Snapshot().Merge(b.Snapshot())
	bs := both.Snapshot()
	if as.Count != bs.Count || as.Sum != bs.Sum || as.Max != bs.Max || as.P95 != bs.P95 {
		t.Fatalf("merged %+v != direct %+v", as, bs)
	}
	// Merging into an empty snapshot copies.
	empty := HistogramSnapshot{}.Merge(bs)
	if empty.Count != bs.Count || empty.P50 != bs.P50 {
		t.Fatalf("merge into empty %+v", empty)
	}
}

func TestMergeHistogramMaps(t *testing.T) {
	var a, b Histogram
	for v := uint64(1); v <= 10; v++ {
		a.Record(v)
		b.Record(v * 100)
	}
	m1 := map[string]HistogramSnapshot{"x": a.Snapshot(), "only1": a.Snapshot()}
	m2 := map[string]HistogramSnapshot{"x": b.Snapshot(), "only2": b.Snapshot()}
	got := MergeHistogramMaps(nil, m1)
	got = MergeHistogramMaps(got, m2)
	if len(got) != 3 {
		t.Fatalf("merged %d keys", len(got))
	}
	if got["x"].Count != 20 || got["x"].Max != 1000 {
		t.Fatalf("x merged %+v", got["x"])
	}
	if got["only1"].Count != 10 || got["only2"].Count != 10 {
		t.Fatal("singleton keys lost")
	}
	// Empty-count entries don't clobber anything and nil src is a no-op.
	if r := MergeHistogramMaps(got, nil); len(r) != 3 {
		t.Fatal("nil src changed the map")
	}
}

// TestHistogramRecordZeroAlloc pins the //qcdoc:noalloc contract on the
// hot path — hotalloc checks it statically, this checks it dynamically.
func TestHistogramRecordZeroAlloc(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Record(12345) }); n != 0 {
		t.Fatalf("Record allocates %.1f per call", n)
	}
}

// TestRegistryClear pins the teardown contract pool reclamation relies
// on: Clear drops every source and disables collection, so a recycled
// engine can never reach a dead machine's emit closures.
func TestRegistryClear(t *testing.T) {
	r := New()
	r.SetEnabled(true)
	r.RegisterCounters("c", func(emit EmitFunc) { emit("x", 1) })
	r.RegisterGauge("g", func() float64 { return 1 })
	r.RegisterHistograms("h", func(emit HistEmitFunc) { emit("y", HistogramSnapshot{}) })
	if c, g := r.Sources(); c != 1 || g != 1 || r.HistogramSources() != 1 {
		t.Fatalf("sources %d/%d/%d before clear", c, g, r.HistogramSources())
	}
	r.Clear()
	if c, g := r.Sources(); c != 0 || g != 0 || r.HistogramSources() != 0 {
		t.Fatalf("sources %d/%d/%d after clear", c, g, r.HistogramSources())
	}
	if r.Enabled() {
		t.Fatal("still enabled after clear")
	}
	if s := r.Snapshot(); len(s.Counters) != 0 || len(s.Gauges) != 0 || s.Histograms != nil {
		t.Fatalf("cleared registry snapshot %+v", s)
	}
}

// TestDisabledRegistryHistogramsUntouched extends the disabled-registry
// contract to histograms: a disabled Snapshot must not invoke any
// histogram source.
func TestDisabledRegistryHistogramsUntouched(t *testing.T) {
	r := New()
	touched := false
	r.RegisterHistograms("h", func(emit HistEmitFunc) { touched = true })
	if s := r.Snapshot(); s.Histograms != nil || touched {
		t.Fatal("disabled registry touched a histogram source")
	}
	r.SetEnabled(true)
	if s := r.Snapshot(); !touched || len(s.Histograms) != 0 {
		t.Fatal("enabled registry skipped the histogram source")
	}
}
