// Package solver implements the Krylov-space solvers that dominate QCD
// calculational time (§1: "standard Krylov space solvers work well ...
// and dominate the calculational time for QCD simulations"). The
// production method is conjugate gradient on the normal equations
// (CGNE): solve D†D x = D†b, which is Hermitian positive definite for
// every Dirac discretization in this repository.
//
// The solver is generic over the field type via a small vector-space
// descriptor, so the same code drives Wilson/clover spinor fields,
// staggered color fields, domain-wall 5-D fields — and, in the
// multi-node machine simulation, distributed fields whose inner products
// ride the SCU's global-sum hardware.
package solver

import (
	"errors"
	"fmt"
	"math"
)

// Space describes the vector space of a field type T: allocation and the
// BLAS-1 operations CG needs. Dot and Norm2 are *global* reductions; in
// the distributed implementation they are backed by the machine's global
// sum.
type Space[T any] struct {
	New   func() T
	Copy  func(dst, src T)
	Dot   func(a, b T) complex128
	Norm2 func(a T) float64
	// AXPY computes y += a*x in place.
	AXPY func(y T, a complex128, x T)
	// Scale computes x *= a in place.
	Scale func(x T, a complex128)
	// OnIteration, if set, is called once after each completed solver
	// iteration — a pure observation hook (telemetry counters); it must
	// not mutate solver state.
	OnIteration func()
}

// noteIteration fires the per-iteration hook if one is installed.
func (sp Space[T]) noteIteration() {
	if sp.OnIteration != nil {
		sp.OnIteration()
	}
}

// Op applies a linear operator: dst = A src.
type Op[T any] func(dst, src T)

// Result reports a solve.
type Result struct {
	Converged  bool
	Iterations int
	// RelResidual is the final true relative residual |D x - b| / |b|.
	RelResidual float64
	// Applications counts operator applications (D or D†), the unit the
	// performance model charges.
	Applications int
}

// ErrMaxIterations is returned when the solver fails to reach tolerance.
var ErrMaxIterations = errors.New("solver: maximum iterations reached")

// Checkpoint configures periodic capture of the solution iterate during
// a solve. Every Every completed iterations, Save is handed the
// iteration count and the current x; serializing it (checkpoint
// package, KindSolver) is the saver's business. CG is self-correcting
// in x: restoring a saved iterate and re-running the solve from it
// re-converges, which is what the chaos/recovery flow does after a node
// death. A zero Checkpoint disables capture.
type Checkpoint[T any] struct {
	// Every is the checkpoint interval in iterations; <= 0 disables.
	Every int
	// Save observes the iterate. It must copy what it keeps: x is the
	// live solver vector and the next iteration mutates it.
	Save func(iteration int, x T)
}

func (c Checkpoint[T]) due(iter int) bool {
	return c.Every > 0 && c.Save != nil && iter%c.Every == 0
}

// CGNE solves D x = b by conjugate gradient on the normal equations
// D†D x = D†b, starting from the contents of x. It stops when the
// normal-equation residual satisfies |r| <= tol*|D†b|, then reports the
// true relative residual.
func CGNE[T any](sp Space[T], applyD, applyDdag Op[T], x, b T, tol float64, maxIter int) (Result, error) {
	return CGNECheckpointed(sp, applyD, applyDdag, x, b, tol, maxIter, Checkpoint[T]{})
}

// CGNECheckpointed is CGNE with periodic solution-state capture; see
// Checkpoint. The checkpoint hook runs after an iteration's updates are
// complete, so a saved x is exactly the iterate the next iteration
// starts from.
func CGNECheckpointed[T any](sp Space[T], applyD, applyDdag Op[T], x, b T, tol float64, maxIter int, ck Checkpoint[T]) (Result, error) {
	res := Result{}
	// bp = D† b.
	bp := sp.New()
	applyDdag(bp, b)
	res.Applications++
	bpNorm := math.Sqrt(sp.Norm2(bp))
	if bpNorm == 0 {
		// b in the null space of D† (or zero): x = 0 solves.
		sp.Scale(x, 0)
		res.Converged = true
		return res, nil
	}
	// r = bp - D†D x.
	tmp := sp.New()
	r := sp.New()
	applyD(tmp, x)
	applyDdag(r, tmp)
	res.Applications += 2
	sp.Scale(r, -1)
	sp.AXPY(r, 1, bp)
	p := sp.New()
	sp.Copy(p, r)
	rr := sp.Norm2(r)
	target := (tol * bpNorm) * (tol * bpNorm)

	ap := sp.New()
	for iter := 0; iter < maxIter; iter++ {
		if rr <= target {
			res.Converged = true
			break
		}
		// ap = D†D p.
		applyD(tmp, p)
		applyDdag(ap, tmp)
		res.Applications += 2
		pap := real(sp.Dot(p, ap))
		if pap <= 0 {
			return res, fmt.Errorf("solver: operator not positive definite (p†Ap = %g)", pap)
		}
		alpha := rr / pap
		sp.AXPY(x, complex(alpha, 0), p)
		sp.AXPY(r, complex(-alpha, 0), ap)
		rrNew := sp.Norm2(r)
		beta := rrNew / rr
		// p = r + beta p.
		sp.Scale(p, complex(beta, 0))
		sp.AXPY(p, 1, r)
		rr = rrNew
		res.Iterations = iter + 1
		sp.noteIteration()
		if ck.due(res.Iterations) {
			ck.Save(res.Iterations, x)
		}
	}
	if rr <= target {
		res.Converged = true
	}
	// True residual.
	applyD(tmp, x)
	res.Applications++
	sp.Scale(tmp, -1)
	sp.AXPY(tmp, 1, b)
	bNorm := math.Sqrt(sp.Norm2(b))
	if bNorm > 0 {
		res.RelResidual = math.Sqrt(sp.Norm2(tmp)) / bNorm
	}
	if !res.Converged {
		return res, fmt.Errorf("%w after %d iterations (|r|/|b| = %.3g)",
			ErrMaxIterations, res.Iterations, res.RelResidual)
	}
	return res, nil
}

// CG solves A x = b for a Hermitian positive definite operator A,
// starting from the contents of x.
func CG[T any](sp Space[T], applyA Op[T], x, b T, tol float64, maxIter int) (Result, error) {
	res := Result{}
	bNorm := math.Sqrt(sp.Norm2(b))
	if bNorm == 0 {
		sp.Scale(x, 0)
		res.Converged = true
		return res, nil
	}
	r := sp.New()
	applyA(r, x)
	res.Applications++
	sp.Scale(r, -1)
	sp.AXPY(r, 1, b)
	p := sp.New()
	sp.Copy(p, r)
	rr := sp.Norm2(r)
	target := (tol * bNorm) * (tol * bNorm)
	ap := sp.New()
	for iter := 0; iter < maxIter; iter++ {
		if rr <= target {
			res.Converged = true
			break
		}
		applyA(ap, p)
		res.Applications++
		pap := real(sp.Dot(p, ap))
		if pap <= 0 {
			return res, fmt.Errorf("solver: operator not positive definite (p†Ap = %g)", pap)
		}
		alpha := rr / pap
		sp.AXPY(x, complex(alpha, 0), p)
		sp.AXPY(r, complex(-alpha, 0), ap)
		rrNew := sp.Norm2(r)
		beta := rrNew / rr
		sp.Scale(p, complex(beta, 0))
		sp.AXPY(p, 1, r)
		rr = rrNew
		res.Iterations = iter + 1
		sp.noteIteration()
	}
	if rr <= target {
		res.Converged = true
	}
	res.RelResidual = math.Sqrt(rr) / bNorm
	if !res.Converged {
		return res, fmt.Errorf("%w after %d iterations (|r|/|b| = %.3g)",
			ErrMaxIterations, res.Iterations, res.RelResidual)
	}
	return res, nil
}
