package solver

import (
	"qcdoc/internal/fermion"
	"qcdoc/internal/lattice"
)

// SpinorSpace is the vector space of Dirac spinor fields on lattice l.
func SpinorSpace(l lattice.Shape4) Space[*lattice.FermionField] {
	return Space[*lattice.FermionField]{
		New:   func() *lattice.FermionField { return lattice.NewFermionField(l) },
		Copy:  func(dst, src *lattice.FermionField) { dst.Copy(src) },
		Dot:   func(a, b *lattice.FermionField) complex128 { return a.Dot(b) },
		Norm2: func(a *lattice.FermionField) float64 { return a.Norm2() },
		AXPY:  func(y *lattice.FermionField, a complex128, x *lattice.FermionField) { y.AXPY(a, x) },
		Scale: func(x *lattice.FermionField, a complex128) { x.Scale(a) },
	}
}

// ColorSpace is the vector space of staggered color fields on lattice l.
func ColorSpace(l lattice.Shape4) Space[*lattice.ColorField] {
	return Space[*lattice.ColorField]{
		New:   func() *lattice.ColorField { return lattice.NewColorField(l) },
		Copy:  func(dst, src *lattice.ColorField) { copy(dst.V, src.V) },
		Dot:   func(a, b *lattice.ColorField) complex128 { return a.Dot(b) },
		Norm2: func(a *lattice.ColorField) float64 { return a.Norm2() },
		AXPY:  func(y *lattice.ColorField, a complex128, x *lattice.ColorField) { y.AXPY(a, x) },
		Scale: func(x *lattice.ColorField, a complex128) { x.Scale(a) },
	}
}

// Field5Space is the vector space of domain-wall 5-D fields.
func Field5Space(l lattice.Shape4, ls int) Space[*fermion.Field5] {
	return Space[*fermion.Field5]{
		New:   func() *fermion.Field5 { return fermion.NewField5(l, ls) },
		Copy:  func(dst, src *fermion.Field5) { copy(dst.S, src.S) },
		Dot:   func(a, b *fermion.Field5) complex128 { return a.Dot(b) },
		Norm2: func(a *fermion.Field5) float64 { return a.Norm2() },
		AXPY:  func(y *fermion.Field5, a complex128, x *fermion.Field5) { y.AXPY(a, x) },
		Scale: func(x *fermion.Field5, a complex128) { x.Scale(a) },
	}
}

// SolveDirac runs CGNE for a Dirac operator.
func SolveDirac(op fermion.DiracOperator, x, b *lattice.FermionField, tol float64, maxIter int) (Result, error) {
	return CGNE(SpinorSpace(op.Lattice()), op.Apply, op.ApplyDag, x, b, tol, maxIter)
}

// SolveStaggered runs CGNE for a staggered operator.
func SolveStaggered(op fermion.StaggeredOperator, x, b *lattice.ColorField, tol float64, maxIter int) (Result, error) {
	return CGNE(ColorSpace(op.Lattice()), op.Apply, op.ApplyDag, x, b, tol, maxIter)
}

// SolveDWF runs CGNE for the domain-wall operator.
func SolveDWF(op *fermion.DWF, x, b *fermion.Field5, tol float64, maxIter int) (Result, error) {
	return CGNE(Field5Space(op.Lattice(), op.Ls), op.Apply, op.ApplyDag, x, b, tol, maxIter)
}
