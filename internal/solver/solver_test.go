package solver

import (
	"errors"
	"math"
	"testing"

	"qcdoc/internal/fermion"
	"qcdoc/internal/lattice"
)

func hotGauge(seed uint64, l lattice.Shape4) *lattice.GaugeField {
	g := lattice.NewGaugeField(l)
	g.Randomize(seed)
	return g
}

func TestCGNEWilson(t *testing.T) {
	l := lattice.Shape4{4, 4, 4, 4}
	g := hotGauge(1, l)
	w := fermion.NewWilson(g, 0.5) // heavy mass: well conditioned
	b := lattice.NewFermionField(l)
	b.Gaussian(2)
	x := lattice.NewFermionField(l)
	res, err := SolveDirac(w, x, b, 1e-8, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if res.RelResidual > 1e-7 {
		t.Fatalf("true residual %g", res.RelResidual)
	}
	if res.Iterations == 0 {
		t.Fatal("zero iterations for a random right-hand side")
	}
	t.Logf("Wilson CG: %d iterations, residual %.2g", res.Iterations, res.RelResidual)
}

func TestCGNEClover(t *testing.T) {
	l := lattice.Shape4{4, 4, 4, 4}
	g := hotGauge(3, l)
	c := fermion.NewClover(g, 0.5, 1.0)
	b := lattice.NewFermionField(l)
	b.Gaussian(4)
	x := lattice.NewFermionField(l)
	res, err := SolveDirac(c, x, b, 1e-8, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.RelResidual > 1e-7 {
		t.Fatalf("residual %g", res.RelResidual)
	}
}

func TestCGNEStaggeredAndASQTAD(t *testing.T) {
	l := lattice.Shape4{4, 4, 4, 4}
	g := hotGauge(5, l)
	for _, op := range []fermion.StaggeredOperator{
		fermion.NewStaggered(g, 0.3),
		fermion.NewASQTAD(g, 0.3),
	} {
		b := lattice.NewColorField(l)
		b.Gaussian(6)
		x := lattice.NewColorField(l)
		res, err := SolveStaggered(op, x, b, 1e-8, 2000)
		if err != nil {
			t.Fatalf("%s: %v", op.Name(), err)
		}
		if res.RelResidual > 1e-7 {
			t.Fatalf("%s residual %g", op.Name(), res.RelResidual)
		}
	}
}

func TestCGNEDWF(t *testing.T) {
	l := lattice.Shape4{2, 2, 2, 4}
	g := hotGauge(7, l)
	d := fermion.NewDWF(g, 1.8, 0.1, 4)
	b := fermion.NewField5(l, 4)
	b.Gaussian(8)
	x := fermion.NewField5(l, 4)
	res, err := SolveDWF(d, x, b, 1e-8, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if res.RelResidual > 1e-7 {
		t.Fatalf("residual %g", res.RelResidual)
	}
}

func TestCGNEWarmStart(t *testing.T) {
	// Solving again from the previous solution converges immediately.
	l := lattice.Shape4{4, 4, 2, 2}
	g := hotGauge(9, l)
	w := fermion.NewWilson(g, 0.5)
	b := lattice.NewFermionField(l)
	b.Gaussian(10)
	x := lattice.NewFermionField(l)
	first, err := SolveDirac(w, x, b, 1e-10, 2000)
	if err != nil {
		t.Fatal(err)
	}
	again, err := SolveDirac(w, x, b, 1e-8, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if again.Iterations > first.Iterations/4 {
		t.Fatalf("warm start took %d iterations (cold: %d)", again.Iterations, first.Iterations)
	}
}

func TestCGNEMaxIterations(t *testing.T) {
	l := lattice.Shape4{4, 4, 4, 4}
	g := hotGauge(11, l)
	w := fermion.NewWilson(g, 0.5)
	b := lattice.NewFermionField(l)
	b.Gaussian(12)
	x := lattice.NewFermionField(l)
	_, err := SolveDirac(w, x, b, 1e-12, 3)
	if !errors.Is(err, ErrMaxIterations) {
		t.Fatalf("err = %v, want ErrMaxIterations", err)
	}
}

func TestCGNEZeroRHS(t *testing.T) {
	l := lattice.Shape4{2, 2, 2, 2}
	g := hotGauge(13, l)
	w := fermion.NewWilson(g, 0.5)
	b := lattice.NewFermionField(l)
	x := lattice.NewFermionField(l)
	x.Gaussian(14) // non-zero start must be reset
	res, err := SolveDirac(w, x, b, 1e-8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || x.Norm2() != 0 {
		t.Fatal("zero RHS should give zero solution")
	}
}

func TestPlainCGOnNormalOperator(t *testing.T) {
	// CG directly on A = D†D.
	l := lattice.Shape4{4, 4, 2, 2}
	g := hotGauge(15, l)
	w := fermion.NewWilson(g, 0.5)
	sp := SpinorSpace(l)
	tmp := lattice.NewFermionField(l)
	applyA := func(dst, src *lattice.FermionField) {
		w.Apply(tmp, src)
		w.ApplyDag(dst, tmp)
	}
	b := lattice.NewFermionField(l)
	b.Gaussian(16)
	x := lattice.NewFermionField(l)
	res, err := CG(sp, applyA, x, b, 1e-8, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// Check A x = b directly.
	ax := lattice.NewFermionField(l)
	applyA(ax, x)
	ax.AXPY(-1, b)
	rel := math.Sqrt(ax.Norm2() / b.Norm2())
	if rel > 1e-7 {
		t.Fatalf("CG residual %g (reported %g)", rel, res.RelResidual)
	}
}

func TestIterationCountGrowsWithConditioning(t *testing.T) {
	// Lighter quark mass => worse conditioning => more CG iterations.
	// This is the physics behind the paper's focus on solver time.
	l := lattice.Shape4{4, 4, 4, 4}
	g := hotGauge(17, l)
	b := lattice.NewFermionField(l)
	b.Gaussian(18)
	iters := func(mass float64) int {
		w := fermion.NewWilson(g, mass)
		x := lattice.NewFermionField(l)
		res, err := SolveDirac(w, x, b, 1e-8, 10000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Iterations
	}
	heavy := iters(1.0)
	light := iters(0.2)
	if light <= heavy {
		t.Fatalf("lighter mass (%d iters) should need more than heavier (%d)", light, heavy)
	}
}
