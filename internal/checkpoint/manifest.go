package checkpoint

// The checkpoint-generation manifest: the host-side index of which
// complete checkpoint generations exist on the RAID, in age order, with
// a CRC for every member chunk. The recovery ladder (DESIGN.md §16)
// keeps the newest K generations and uses the manifest to validate a
// chunk before decoding it; when the newest generation is corrupt or
// torn it falls back to the next older one. The manifest itself rides
// the same integrity format as the field checkpoints — magic, version,
// big-endian payload, CRC-32C trailer — and its decoder keeps the same
// typed-error and bounded-allocation contract (FuzzManifestDecode).

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// ManifestMagic identifies a manifest stream ("QCDOCMAN").
const ManifestMagic = 0x5143444F434D414E

// ManifestVersion of the manifest format.
const ManifestVersion = 1

// Bounds on a decoded manifest: far beyond any simulated machine here,
// tight enough that a corrupt-but-plausible header can never force an
// allocation far larger than the input it came with.
const (
	maxGenerations   = 4096
	maxManifestRanks = 1 << 16
)

// Generation is one complete checkpoint generation: every rank's chunk
// of one (attempt, iteration) set, with each chunk's CRC-32C at seal
// time.
type Generation struct {
	// Attempt and Iter identify the set (chunk paths embed both).
	Attempt int
	Iter    int
	// CRCs holds the raw-blob checksum of each rank's chunk, in rank
	// order; its length is the generation's rank count.
	CRCs []uint32
}

// Manifest indexes the retained checkpoint generations, oldest first.
type Manifest struct {
	Generations []Generation
}

// BlobCRC is the raw checksum of a stored chunk blob, as recorded in
// the manifest at seal time: recovery compares it before paying for a
// full decode, and a mismatch convicts the chunk without touching the
// inner format.
func BlobCRC(b []byte) uint32 {
	return crc32.Checksum(b, castagnoli)
}

// WriteManifest serializes a manifest.
func WriteManifest(w io.Writer, m *Manifest) error {
	cw := &crcWriter{w: w}
	hdr := []any{uint64(ManifestMagic), uint32(ManifestVersion), uint32(len(m.Generations))}
	for _, v := range hdr {
		if err := binary.Write(cw, binary.BigEndian, v); err != nil {
			return err
		}
	}
	for _, g := range m.Generations {
		gh := []any{uint32(g.Attempt), uint32(g.Iter), uint32(len(g.CRCs))}
		for _, v := range gh {
			if err := binary.Write(cw, binary.BigEndian, v); err != nil {
				return err
			}
		}
		for _, crc := range g.CRCs {
			if err := binary.Write(cw, binary.BigEndian, crc); err != nil {
				return err
			}
		}
	}
	return binary.Write(w, binary.BigEndian, cw.crc)
}

// ReadManifest deserializes a manifest, verifying the CRC. Errors are
// typed (ErrBadMagic, ErrBadHeader, ErrBadCRC, or an io error from a
// short read); allocation stays proportional to the input actually
// consumed, never to a corrupt header's claims.
func ReadManifest(r io.Reader) (*Manifest, error) {
	cr := &crcReader{r: r}
	var magic uint64
	if err := binary.Read(cr, binary.BigEndian, &magic); err != nil {
		return nil, err
	}
	if magic != ManifestMagic {
		return nil, ErrBadMagic
	}
	var version, count uint32
	if err := binary.Read(cr, binary.BigEndian, &version); err != nil {
		return nil, err
	}
	if version != ManifestVersion {
		return nil, fmt.Errorf("checkpoint: unsupported manifest version %d", version)
	}
	if err := binary.Read(cr, binary.BigEndian, &count); err != nil {
		return nil, err
	}
	if count > maxGenerations {
		return nil, fmt.Errorf("%w: implausible generation count %d", ErrBadHeader, count)
	}
	m := &Manifest{}
	for i := uint32(0); i < count; i++ {
		var attempt, iter, ranks uint32
		if err := binary.Read(cr, binary.BigEndian, &attempt); err != nil {
			return nil, err
		}
		if err := binary.Read(cr, binary.BigEndian, &iter); err != nil {
			return nil, err
		}
		if err := binary.Read(cr, binary.BigEndian, &ranks); err != nil {
			return nil, err
		}
		if ranks > maxManifestRanks {
			return nil, fmt.Errorf("%w: implausible rank count %d", ErrBadHeader, ranks)
		}
		cap0 := int(ranks)
		if cap0 > allocChunk {
			cap0 = allocChunk
		}
		crcs := make([]uint32, 0, cap0)
		for j := uint32(0); j < ranks; j++ {
			var crc uint32
			if err := binary.Read(cr, binary.BigEndian, &crc); err != nil {
				return nil, err
			}
			crcs = append(crcs, crc)
		}
		m.Generations = append(m.Generations, Generation{
			Attempt: int(attempt), Iter: int(iter), CRCs: crcs,
		})
	}
	sum := cr.crc
	var stored uint32
	if err := binary.Read(r, binary.BigEndian, &stored); err != nil {
		return nil, err
	}
	if stored != sum {
		return nil, fmt.Errorf("%w: stored %#x computed %#x", ErrBadCRC, stored, sum)
	}
	return m, nil
}
