package checkpoint

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"qcdoc/internal/lattice"
)

func TestGaugeRoundTrip(t *testing.T) {
	g := lattice.NewGaugeField(lattice.Shape4{2, 2, 2, 4})
	g.Randomize(5)
	var buf bytes.Buffer
	if err := WriteGauge(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGauge(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(g) {
		t.Fatal("round trip not bit-identical")
	}
}

func TestFermionRoundTrip(t *testing.T) {
	f := lattice.NewFermionField(lattice.Shape4{2, 2, 2, 2})
	f.Gaussian(7)
	var buf bytes.Buffer
	if err := WriteFermion(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFermion(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f.S {
		if got.S[i] != f.S[i] {
			t.Fatalf("site %d differs", i)
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	g := lattice.NewGaugeField(lattice.Shape4{2, 2, 2, 2})
	g.Randomize(9)
	var buf bytes.Buffer
	if err := WriteGauge(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one payload bit.
	data[100] ^= 0x10
	_, err := ReadGauge(bytes.NewReader(data))
	if !errors.Is(err, ErrBadCRC) {
		t.Fatalf("err = %v, want ErrBadCRC", err)
	}
}

func TestCorruptionDetectedQuick(t *testing.T) {
	g := lattice.NewGaugeField(lattice.Shape4{2, 2, 2, 2})
	g.Randomize(11)
	var buf bytes.Buffer
	if err := WriteGauge(&buf, g); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	f := func(pos uint16, bit uint8) bool {
		data := append([]byte(nil), clean...)
		i := int(pos) % len(data)
		data[i] ^= 1 << (bit % 8)
		_, err := ReadGauge(bytes.NewReader(data))
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := ReadGauge(bytes.NewReader(make([]byte, 64))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v", err)
	}
}

func TestKindMismatch(t *testing.T) {
	f := lattice.NewFermionField(lattice.Shape4{2, 2, 2, 2})
	var buf bytes.Buffer
	if err := WriteFermion(&buf, f); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadGauge(&buf); !errors.Is(err, ErrBadKind) {
		t.Fatalf("err = %v", err)
	}
}

func TestGaugeCRCFingerprint(t *testing.T) {
	a := lattice.NewGaugeField(lattice.Shape4{2, 2, 2, 2})
	b := lattice.NewGaugeField(lattice.Shape4{2, 2, 2, 2})
	a.Randomize(1)
	b.Randomize(1)
	if GaugeCRC(a) != GaugeCRC(b) {
		t.Fatal("identical fields, different CRC")
	}
	b.Randomize(2)
	if GaugeCRC(a) == GaugeCRC(b) {
		t.Fatal("different fields, same CRC")
	}
}

func TestTruncatedStream(t *testing.T) {
	g := lattice.NewGaugeField(lattice.Shape4{2, 2, 2, 2})
	var buf bytes.Buffer
	if err := WriteGauge(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadGauge(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("truncated stream accepted")
	}
}
