package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// validManifest serializes a small two-generation manifest.
func validManifest(t testing.TB) []byte {
	t.Helper()
	m := &Manifest{Generations: []Generation{
		{Attempt: 0, Iter: 10, CRCs: []uint32{0xAAAA0001, 0xAAAA0002, 0xAAAA0003, 0xAAAA0004}},
		{Attempt: 1, Iter: 20, CRCs: []uint32{0xBBBB0001, 0xBBBB0002}},
	}}
	var buf bytes.Buffer
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// manifestHeader builds a bare manifest header claiming count
// generations, with no payload behind it.
func manifestHeader(count uint32) []byte {
	var buf bytes.Buffer
	for _, v := range []any{uint64(ManifestMagic), uint32(ManifestVersion), count} {
		_ = binary.Write(&buf, binary.BigEndian, v)
	}
	return buf.Bytes()
}

func TestManifestRoundTrip(t *testing.T) {
	for _, m := range []*Manifest{
		{},
		{Generations: []Generation{{Attempt: 3, Iter: 140, CRCs: []uint32{1, 2, 3}}}},
		{Generations: []Generation{
			{Attempt: 0, Iter: 10, CRCs: []uint32{7}},
			{Attempt: 0, Iter: 20, CRCs: []uint32{8}},
			{Attempt: 2, Iter: 30, CRCs: []uint32{9, 10}},
		}},
	} {
		var buf bytes.Buffer
		if err := WriteManifest(&buf, m); err != nil {
			t.Fatal(err)
		}
		got, err := ReadManifest(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Generations) != len(m.Generations) {
			t.Fatalf("%d generations, want %d", len(got.Generations), len(m.Generations))
		}
		for i, g := range m.Generations {
			gg := got.Generations[i]
			if gg.Attempt != g.Attempt || gg.Iter != g.Iter || len(gg.CRCs) != len(g.CRCs) {
				t.Fatalf("generation %d: %+v, want %+v", i, gg, g)
			}
			for j := range g.CRCs {
				if gg.CRCs[j] != g.CRCs[j] {
					t.Fatalf("generation %d crc %d differs", i, j)
				}
			}
		}
	}
}

// TestManifestDecodeBounds pins the typed-error and bounded-allocation
// contract: truncations surface as io errors, implausible headers as
// ErrBadHeader before any header-sized allocation, corruption as
// ErrBadCRC.
func TestManifestDecodeBounds(t *testing.T) {
	full := validManifest(t)
	for _, cut := range []int{0, 4, 8, 12, 16, 20, len(full) / 2, len(full) - 1, len(full) - 3} {
		if _, err := ReadManifest(bytes.NewReader(full[:cut])); !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: err = %v, want io truncation error", cut, err)
		}
	}
	// A torn write read back zero-filled to the original length: the
	// zeros land in the payload/CRC region, so the trailer check fails.
	torn := append([]byte(nil), full[:len(full)*3/4]...)
	torn = append(torn, make([]byte, len(full)-len(torn))...)
	if _, err := ReadManifest(bytes.NewReader(torn)); err == nil {
		t.Fatal("zero-filled torn manifest decoded cleanly")
	}
	// Implausible counts: rejected before allocating what they promise.
	if _, err := ReadManifest(bytes.NewReader(manifestHeader(maxGenerations + 1))); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("huge generation count: err = %v, want ErrBadHeader", err)
	}
	ranks := append(manifestHeader(1), make([]byte, 12)...)
	binary.BigEndian.PutUint32(ranks[len(ranks)-4:], maxManifestRanks+1)
	if _, err := ReadManifest(bytes.NewReader(ranks)); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("huge rank count: err = %v, want ErrBadHeader", err)
	}
	// A plausible-but-large claim with no payload: fails at the input's
	// edge, allocation stays proportional to what was actually read.
	if _, err := ReadManifest(bytes.NewReader(manifestHeader(maxGenerations))); !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("empty-bodied header: err = %v, want io truncation error", err)
	}
	// Corruption and bad magic keep their typed errors.
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)/2] ^= 0x10
	if _, err := ReadManifest(bytes.NewReader(corrupt)); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("corrupt manifest: err = %v, want ErrBadCRC", err)
	}
	bad := append([]byte(nil), full...)
	bad[0] ^= 0xFF
	if _, err := ReadManifest(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: err = %v, want ErrBadMagic", err)
	}
}

// FuzzManifestDecode drives ReadManifest with arbitrary bytes and holds
// it to the same contract as the field-checkpoint decoders: no panics,
// typed errors only, decode->re-encode identity, allocation bounded by
// the input actually consumed.
func FuzzManifestDecode(f *testing.F) {
	s := validManifest(f)
	f.Add(s)
	f.Add(s[:7])
	f.Add(s[:12])
	f.Add(s[:len(s)/2])
	f.Add(s[:len(s)-2])
	f.Add(s[:len(s)-3]) // torn at a non-word offset
	torn := append([]byte(nil), s[:len(s)*3/4]...)
	torn = append(torn, make([]byte, len(s)-len(torn))...)
	f.Add(torn) // torn write read back zero-filled
	corrupt := append([]byte(nil), s...)
	corrupt[len(corrupt)/2] ^= 0x40
	f.Add(corrupt)
	f.Add([]byte{})
	f.Add(manifestHeader(maxGenerations + 1))
	f.Add(manifestHeader(0xFFFFFFFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadManifest(bytes.NewReader(data))
		if err == nil {
			var out bytes.Buffer
			if werr := WriteManifest(&out, m); werr != nil {
				t.Fatalf("re-encode of decoded manifest failed: %v", werr)
			}
			if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
				t.Fatalf("decode/re-encode changed the stream:\n in  %x\n out %x", data[:out.Len()], out.Bytes())
			}
			return
		}
		for _, known := range []error{ErrBadMagic, ErrBadCRC, ErrBadHeader,
			io.EOF, io.ErrUnexpectedEOF} {
			if errors.Is(err, known) {
				return
			}
		}
		// The only remaining legal error is the version check.
		if len(data) >= 12 && binary.BigEndian.Uint32(data[8:12]) != ManifestVersion {
			return
		}
		t.Fatalf("untyped decode error: %v", err)
	})
}
