package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"qcdoc/internal/lattice"
)

// validStream serializes a small field of the given kind.
func validStream(t testing.TB, kind Kind) []byte {
	t.Helper()
	var buf bytes.Buffer
	var err error
	switch kind {
	case KindGauge:
		g := lattice.NewGaugeField(lattice.Shape4{2, 2, 2, 2})
		g.Randomize(3)
		err = WriteGauge(&buf, g)
	case KindFermion:
		f := lattice.NewFermionField(lattice.Shape4{2, 2, 2, 2})
		f.Gaussian(5)
		err = WriteFermion(&buf, f)
	case KindSolver:
		x := lattice.NewFermionField(lattice.Shape4{2, 2, 2, 2})
		x.Gaussian(7)
		err = WriteSolverState(&buf, x, 42)
	default:
		t.Fatalf("no stream for kind %d", kind)
	}
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// overflowHeader builds a header whose shape passes no plausibility
// check: each decoder must reject it as ErrBadHeader before allocating
// anything field-sized.
func overflowHeader(kind Kind, extent uint32) []byte {
	var buf bytes.Buffer
	for _, v := range []any{uint64(Magic), uint32(Version), uint32(kind),
		extent, extent, extent, extent, uint32(0)} {
		_ = binary.Write(&buf, binary.BigEndian, v)
	}
	return buf.Bytes()
}

// decodeAny drives whichever reader the stream's kind field selects
// (falling back to ReadGauge for garbage) and, on success, re-encodes
// the decoded value. It returns the re-encoding and the error.
func decodeAny(data []byte) ([]byte, error) {
	kind := Kind(0)
	if len(data) >= 16 {
		kind = Kind(binary.BigEndian.Uint32(data[12:16]))
	}
	r := bytes.NewReader(data)
	var out bytes.Buffer
	switch kind {
	case KindFermion:
		f, err := ReadFermion(r)
		if err != nil {
			return nil, err
		}
		err = WriteFermion(&out, f)
		return out.Bytes(), err
	case KindSolver:
		x, iter, err := ReadSolverState(r)
		if err != nil {
			return nil, err
		}
		err = WriteSolverState(&out, x, iter)
		return out.Bytes(), err
	default:
		g, err := ReadGauge(r)
		if err != nil {
			return nil, err
		}
		err = WriteGauge(&out, g)
		return out.Bytes(), err
	}
}

// FuzzCheckpointDecode drives the checkpoint readers with arbitrary
// byte streams and checks the invariants recovery leans on:
//
//   - no reader ever panics, whatever the bytes;
//   - a stream that decodes cleanly survives a decode -> re-encode
//     round trip byte-identically (the readers accept exactly the
//     writers' language);
//   - errors are the package's typed errors (or the io truncation
//     errors), so recovery can distinguish "corrupt checkpoint, try an
//     older one" from a programming bug;
//   - implausible headers are rejected before any field-sized
//     allocation (see allocChunk) — a fuzzer finding an input that
//     OOMs is a finding here, not infrastructure noise.
func FuzzCheckpointDecode(f *testing.F) {
	// Seed corpus: one valid stream per kind, truncations at the header
	// / payload / trailer boundaries, a shape-overflow header, and junk.
	for _, k := range []Kind{KindGauge, KindFermion, KindSolver} {
		s := validStream(f, k)
		f.Add(s)
		f.Add(s[:7])            // truncated magic
		f.Add(s[:16])           // header cut at the kind field
		f.Add(s[:len(s)/2])     // truncated payload
		f.Add(s[:len(s)-2])     // truncated CRC trailer
		f.Add(s[:len(s)-3])     // torn write: cut at a non-word offset
		// Torn write read back zero-filled to the original length (the
		// RAID lost power mid-stripe; the tail reads as zeros).
		torn := append([]byte(nil), s[:len(s)*3/4]...)
		torn = append(torn, make([]byte, len(s)-len(torn))...)
		f.Add(torn)
		corrupt := append([]byte(nil), s...)
		corrupt[len(corrupt)/2] ^= 0x40
		f.Add(corrupt)
	}
	f.Add([]byte{})
	f.Add(overflowHeader(KindGauge, 4096))
	f.Add(overflowHeader(KindFermion, 0x7FFFFFFF))
	f.Add(overflowHeader(KindSolver, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		reenc, err := decodeAny(data)
		if err == nil {
			if !bytes.Equal(reenc, data[:len(reenc)]) {
				t.Fatalf("decode/re-encode changed the stream:\n in  %x\n out %x", data[:len(reenc)], reenc)
			}
			return
		}
		for _, known := range []error{ErrBadMagic, ErrBadCRC, ErrBadKind, ErrBadHeader,
			io.EOF, io.ErrUnexpectedEOF} {
			if errors.Is(err, known) {
				return
			}
		}
		// The only remaining legal error is the version check.
		if len(data) >= 12 && binary.BigEndian.Uint32(data[8:12]) != Version {
			return
		}
		t.Fatalf("untyped decode error: %v", err)
	})
}

// TestCheckpointDecodeBounds pins the typed-error contract the fuzz
// target checks statistically: truncations surface as io errors,
// implausible shapes as ErrBadHeader, and neither path panics or
// allocates a field the input could not fill.
func TestCheckpointDecodeBounds(t *testing.T) {
	full := validStream(t, KindSolver)
	// Every truncation point must produce a typed truncation error.
	for _, cut := range []int{0, 4, 8, 12, 16, 24, 32, len(full) / 2, len(full) - 1} {
		_, _, err := ReadSolverState(bytes.NewReader(full[:cut]))
		if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: err = %v, want io truncation error", cut, err)
		}
	}
	// Shape overflow: rejected as ErrBadHeader before the payload.
	for _, extent := range []uint32{0, 4097, 1 << 20, 0xFFFFFFFF} {
		_, _, err := ReadSolverState(bytes.NewReader(overflowHeader(KindSolver, extent)))
		if !errors.Is(err, ErrBadHeader) {
			t.Fatalf("extent %d: err = %v, want ErrBadHeader", extent, err)
		}
	}
	// A plausible-but-huge header with no payload behind it must fail
	// with a truncation error without allocating the 2^24-site field it
	// promises (the incremental readers stop at the input's edge).
	big := overflowHeader(KindSolver, 64) // 64^4 = 16M sites, passes the bounds
	if _, _, err := ReadSolverState(bytes.NewReader(big)); !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("huge empty stream: err = %v, want io truncation error", err)
	}
	// Kind and CRC mismatches keep their typed errors.
	if _, _, err := ReadSolverState(bytes.NewReader(validStream(t, KindFermion))); !errors.Is(err, ErrBadKind) {
		t.Fatalf("kind mismatch: %v", err)
	}
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)/2] ^= 1
	if _, _, err := ReadSolverState(bytes.NewReader(corrupt)); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("payload corruption: %v", err)
	}
}

func TestSolverStateRoundTrip(t *testing.T) {
	x := lattice.NewFermionField(lattice.Shape4{2, 4, 2, 2})
	x.Gaussian(11)
	var buf bytes.Buffer
	if err := WriteSolverState(&buf, x, 137); err != nil {
		t.Fatal(err)
	}
	got, iter, err := ReadSolverState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if iter != 137 {
		t.Fatalf("iteration %d, want 137", iter)
	}
	for i := range x.S {
		if got.S[i] != x.S[i] {
			t.Fatalf("site %d differs", i)
		}
	}
	if FermionCRC(got) != FermionCRC(x) {
		t.Fatal("fingerprints differ after round trip")
	}
}
