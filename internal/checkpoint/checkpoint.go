// Package checkpoint serializes lattice fields to a portable binary
// format with an integrity checksum. QCD jobs run for weeks (the paper's
// verification run was five days, §4), periodically writing
// configurations to the host's parallel RAID storage over NFS (§3.2);
// the bit-identical re-run experiment (E10) compares two such
// checkpoints exactly.
//
// Format: a fixed header (magic, version, kind, lattice shape, extra
// dims), the field payload as big-endian IEEE-754 bit patterns, and a
// CRC-32 (Castagnoli) of header+payload as trailer.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"qcdoc/internal/latmath"
	"qcdoc/internal/lattice"
)

// Magic identifies a checkpoint stream ("QCDOCCKP").
const Magic = 0x5143444F43434B50

// Version of the on-disk format.
const Version = 1

// Kind of serialized field.
type Kind uint32

const (
	// KindGauge is an SU(3) gauge configuration.
	KindGauge Kind = iota + 1
	// KindFermion is a Dirac spinor field.
	KindFermion
	// KindSolver is an in-flight solve: the current solution iterate
	// (a spinor field) plus the iteration count in the extra header
	// word. Recovery restores it and warm-restarts CG from the iterate.
	KindSolver
)

// castagnoli is the CRC-32C polynomial table; crc32.MakeTable returns
// a shared read-only pointer the stdlib itself caches process-wide.
//
//qcdoclint:global-ok stdlib-cached read-only CRC table
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors.
var (
	ErrBadMagic  = errors.New("checkpoint: bad magic")
	ErrBadCRC    = errors.New("checkpoint: CRC mismatch")
	ErrBadKind   = errors.New("checkpoint: unexpected field kind")
	ErrBadHeader = errors.New("checkpoint: corrupt header")
)

// crcWriter mirrors written bytes into a CRC.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, castagnoli, p)
	return cw.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, castagnoli, p[:n])
	return n, err
}

func writeHeader(w io.Writer, kind Kind, l lattice.Shape4, extra uint32) error {
	hdr := []any{uint64(Magic), uint32(Version), uint32(kind),
		uint32(l[0]), uint32(l[1]), uint32(l[2]), uint32(l[3]), extra}
	for _, v := range hdr {
		if err := binary.Write(w, binary.BigEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func readHeader(r io.Reader) (kind Kind, l lattice.Shape4, extra uint32, err error) {
	var magic uint64
	var version uint32
	if err = binary.Read(r, binary.BigEndian, &magic); err != nil {
		return
	}
	if magic != Magic {
		err = ErrBadMagic
		return
	}
	if err = binary.Read(r, binary.BigEndian, &version); err != nil {
		return
	}
	if version != Version {
		err = fmt.Errorf("checkpoint: unsupported version %d", version)
		return
	}
	var k uint32
	if err = binary.Read(r, binary.BigEndian, &k); err != nil {
		return
	}
	kind = Kind(k)
	var dims [4]uint32
	for i := range dims {
		if err = binary.Read(r, binary.BigEndian, &dims[i]); err != nil {
			return
		}
		l[i] = int(dims[i])
	}
	if err = binary.Read(r, binary.BigEndian, &extra); err != nil {
		return
	}
	// Sanity-bound the header before anything allocates from it: a
	// corrupted shape must be rejected here, not after attempting a
	// multi-gigabyte field allocation (the CRC would catch the corruption
	// too late).
	const maxExtent = 4096
	volume := 1
	for _, d := range l {
		if d < 1 || d > maxExtent {
			err = fmt.Errorf("%w: implausible lattice shape %v", ErrBadHeader, l)
			return
		}
		volume *= d
	}
	if volume > maxVolume {
		err = fmt.Errorf("%w: lattice volume %d exceeds limit", ErrBadHeader, volume)
	}
	return
}

// maxVolume bounds checkpoint lattices (2^26 sites is far beyond any
// simulated machine here).
const maxVolume = 1 << 26

// allocChunk caps the up-front payload allocation: storage grows as
// bytes actually arrive, so a corrupt-but-plausible header can never
// force an allocation far larger than the input it came with (the
// decoder property FuzzCheckpointDecode pins).
const allocChunk = 4096

func readMats(r io.Reader, n int) ([]latmath.Mat3, error) {
	cap0 := n
	if cap0 > allocChunk {
		cap0 = allocChunk
	}
	out := make([]latmath.Mat3, 0, cap0)
	for i := 0; i < n; i++ {
		var m latmath.Mat3
		for row := 0; row < 3; row++ {
			for c := 0; c < 3; c++ {
				z, err := readComplex(r)
				if err != nil {
					return nil, err
				}
				m[row][c] = z
			}
		}
		out = append(out, m)
	}
	return out, nil
}

func readSpinors(r io.Reader, n int) ([]latmath.Spinor, error) {
	cap0 := n
	if cap0 > allocChunk {
		cap0 = allocChunk
	}
	out := make([]latmath.Spinor, 0, cap0)
	for i := 0; i < n; i++ {
		var s latmath.Spinor
		for a := 0; a < 4; a++ {
			for c := 0; c < 3; c++ {
				z, err := readComplex(r)
				if err != nil {
					return nil, err
				}
				s[a][c] = z
			}
		}
		out = append(out, s)
	}
	return out, nil
}

func writeComplex(w io.Writer, z complex128) error {
	if err := binary.Write(w, binary.BigEndian, math.Float64bits(real(z))); err != nil {
		return err
	}
	return binary.Write(w, binary.BigEndian, math.Float64bits(imag(z)))
}

func readComplex(r io.Reader) (complex128, error) {
	var re, im uint64
	if err := binary.Read(r, binary.BigEndian, &re); err != nil {
		return 0, err
	}
	if err := binary.Read(r, binary.BigEndian, &im); err != nil {
		return 0, err
	}
	return complex(math.Float64frombits(re), math.Float64frombits(im)), nil
}

// WriteGauge serializes a gauge configuration.
func WriteGauge(w io.Writer, g *lattice.GaugeField) error {
	cw := &crcWriter{w: w}
	if err := writeHeader(cw, KindGauge, g.L, 0); err != nil {
		return err
	}
	for i := range g.U {
		m := &g.U[i]
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				if err := writeComplex(cw, m[r][c]); err != nil {
					return err
				}
			}
		}
	}
	return binary.Write(w, binary.BigEndian, cw.crc)
}

// ReadGauge deserializes a gauge configuration, verifying the CRC.
func ReadGauge(r io.Reader) (*lattice.GaugeField, error) {
	cr := &crcReader{r: r}
	kind, l, _, err := readHeader(cr)
	if err != nil {
		return nil, err
	}
	if kind != KindGauge {
		return nil, fmt.Errorf("%w: got %d, want gauge", ErrBadKind, kind)
	}
	us, err := readMats(cr, 4*l.Volume())
	if err != nil {
		return nil, err
	}
	g := &lattice.GaugeField{L: l, U: us}
	sum := cr.crc
	var stored uint32
	if err := binary.Read(r, binary.BigEndian, &stored); err != nil {
		return nil, err
	}
	if stored != sum {
		return nil, fmt.Errorf("%w: stored %#x computed %#x", ErrBadCRC, stored, sum)
	}
	return g, nil
}

// WriteFermion serializes a spinor field.
func WriteFermion(w io.Writer, f *lattice.FermionField) error {
	cw := &crcWriter{w: w}
	if err := writeHeader(cw, KindFermion, f.L, 0); err != nil {
		return err
	}
	for i := range f.S {
		for a := 0; a < 4; a++ {
			for c := 0; c < 3; c++ {
				if err := writeComplex(cw, f.S[i][a][c]); err != nil {
					return err
				}
			}
		}
	}
	return binary.Write(w, binary.BigEndian, cw.crc)
}

// ReadFermion deserializes a spinor field, verifying the CRC.
func ReadFermion(r io.Reader) (*lattice.FermionField, error) {
	cr := &crcReader{r: r}
	kind, l, _, err := readHeader(cr)
	if err != nil {
		return nil, err
	}
	if kind != KindFermion {
		return nil, fmt.Errorf("%w: got %d, want fermion", ErrBadKind, kind)
	}
	ss, err := readSpinors(cr, l.Volume())
	if err != nil {
		return nil, err
	}
	f := &lattice.FermionField{L: l, S: ss}
	var stored uint32
	if err := binary.Read(r, binary.BigEndian, &stored); err != nil {
		return nil, err
	}
	if stored != cr.crc {
		return nil, ErrBadCRC
	}
	return f, nil
}

// WriteSolverState serializes an in-flight solve: the solution iterate
// x and the iteration count at which it was taken. The periodic
// checkpoints of a recovery-enabled CG solve (solver.CGNECheckpointed)
// are written in this format to host storage, and the chaos/recovery
// flow restores the newest complete one after a node death.
func WriteSolverState(w io.Writer, x *lattice.FermionField, iteration uint32) error {
	cw := &crcWriter{w: w}
	if err := writeHeader(cw, KindSolver, x.L, iteration); err != nil {
		return err
	}
	for i := range x.S {
		for a := 0; a < 4; a++ {
			for c := 0; c < 3; c++ {
				if err := writeComplex(cw, x.S[i][a][c]); err != nil {
					return err
				}
			}
		}
	}
	return binary.Write(w, binary.BigEndian, cw.crc)
}

// ReadSolverState deserializes an in-flight solve, verifying the CRC.
func ReadSolverState(r io.Reader) (*lattice.FermionField, uint32, error) {
	cr := &crcReader{r: r}
	kind, l, iteration, err := readHeader(cr)
	if err != nil {
		return nil, 0, err
	}
	if kind != KindSolver {
		return nil, 0, fmt.Errorf("%w: got %d, want solver state", ErrBadKind, kind)
	}
	ss, err := readSpinors(cr, l.Volume())
	if err != nil {
		return nil, 0, err
	}
	x := &lattice.FermionField{L: l, S: ss}
	var stored uint32
	if err := binary.Read(r, binary.BigEndian, &stored); err != nil {
		return nil, 0, err
	}
	if stored != cr.crc {
		return nil, 0, ErrBadCRC
	}
	return x, iteration, nil
}

// FermionCRC returns the checksum a WriteFermion of f would produce —
// the spinor-field fingerprint recovery runs use to prove the restored
// solution is bit-identical to the fault-free one.
func FermionCRC(f *lattice.FermionField) uint32 {
	cw := &crcWriter{w: io.Discard}
	_ = WriteFermion(cw, f)
	return cw.crc
}

// GaugeCRC returns the checksum a WriteGauge of g would produce —
// a cheap fingerprint for bit-identity comparisons without keeping two
// full configurations in memory.
func GaugeCRC(g *lattice.GaugeField) uint32 {
	cw := &crcWriter{w: io.Discard}
	_ = WriteGauge(cw, g) // CRC accumulates over header+payload+inner trailer
	return cw.crc
}
