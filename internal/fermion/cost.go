package fermion

import (
	"fmt"

	"qcdoc/internal/memsys"
	"qcdoc/internal/ppc440"
)

// Precision selects the arithmetic width of a benchmark kernel. The FPU
// is 64-bit either way (§2.1); single precision only halves the memory
// traffic — which is why the paper reports single precision as only
// "slightly higher" (§4).
type Precision int

const (
	// Double is 8-byte reals (the paper's headline numbers).
	Double Precision = iota
	// Single is 4-byte reals.
	Single
)

func (p Precision) String() string {
	if p == Single {
		return "single"
	}
	return "double"
}

// realBytes is the storage size of one real number.
func (p Precision) realBytes() float64 {
	if p == Single {
		return 4
	}
	return 8
}

// OpKind enumerates the benchmarked Dirac discretizations.
type OpKind int

const (
	WilsonKind OpKind = iota
	CloverKind
	AsqtadKind
	DWFKind
)

// Kinds lists all operator kinds in the paper's benchmark order.
func Kinds() []OpKind { return []OpKind{WilsonKind, AsqtadKind, CloverKind, DWFKind} }

func (k OpKind) String() string {
	switch k {
	case WilsonKind:
		return "wilson"
	case CloverKind:
		return "clover"
	case AsqtadKind:
		return "asqtad"
	case DWFKind:
		return "dwf"
	default:
		return fmt.Sprintf("opkind(%d)", int(k))
	}
}

// DefaultLs is the fifth-dimension extent assumed by the DWF cost
// descriptor.
const DefaultLs = 16

// Per-site operation counts, double precision, derived from the operator
// definitions (counts in reals; a complex multiply-add is four FPU
// fused-multiply-add slots):
//
//	Wilson: 8 directions x [spin project (12 adds) + SU(3) half-spinor
//	multiply (2 x 66 flops = 33 fma + ... ) + reconstruct] + final
//	accumulation = 1320 flops, ~840 FPU slots. Data: 8 links x 18 reals,
//	8 neighbour spinors x 24 reals in, 24 reals out.
//
//	Clover adds two 6x6 Hermitian color-spin blocks: 552 flops, ~300
//	slots, 72 reals of clover field per site.
//
//	ASQTAD: 16 SU(3) matrix-vector products (8 fat, 8 Naik) on color
//	vectors plus accumulations: 1146 flops, ~621 slots. Data: two link
//	fields (fat + long) and 16 neighbour vectors.
//
//	DWF (per 4-D site per s-slice): a Wilson hop plus the trivial
//	chiral-projector hops in s: 1416 flops, ~912 slots. The gauge field
//	is shared by all Ls slices, so its traffic is amortized by 1/Ls.
//
// PipelineFactor and MemoryFactor are the per-operator hand-tuned-
// assembly quality calibrations (relative to Wilson = 1.0); they are
// chosen once so the four operators land on the paper's measured
// anchors — Wilson 40%, ASQTAD 38%, clover 46.5%, DWF "expected to
// surpass clover" (§4) — and are *not* retuned per experiment. All
// other outputs of the model (DDR spill ~30%, single precision slightly
// above double, clock scaling, hard-scaling curves) are predictions.
// See EXPERIMENTS.md.
type opCounts struct {
	flops, fpuOps         float64
	loadReals, storeReals float64
	pipelineF, memoryF    float64
	commRealsPerFaceSite  float64 // per direction, per face site
	fieldRealsPerSite     float64 // CG working set (gauge + vectors)
}

func countsFor(kind OpKind, ls int) opCounts {
	switch kind {
	case WilsonKind:
		return opCounts{
			flops: 1320, fpuOps: 840,
			loadReals: 8*18 + 8*24, storeReals: 24,
			pipelineF: 1.0, memoryF: 1.0,
			commRealsPerFaceSite: 12, // one half spinor (6 complex)
			fieldRealsPerSite:    4*18 + 5*24,
		}
	case CloverKind:
		return opCounts{
			flops: 1872, fpuOps: 1140,
			loadReals: 8*18 + 8*24 + 72, storeReals: 24,
			pipelineF: 0.929, memoryF: 1.0,
			commRealsPerFaceSite: 12,
			fieldRealsPerSite:    4*18 + 5*24 + 72,
		}
	case AsqtadKind:
		return opCounts{
			flops: 1146, fpuOps: 621,
			loadReals: 2*8*18 + 16*6, storeReals: 6,
			pipelineF: 1.0, memoryF: 0.846,
			commRealsPerFaceSite: 3 * 6, // three boundary layers of color vectors (Naik)
			fieldRealsPerSite:    2*4*18 + 5*6,
		}
	case DWFKind:
		return opCounts{
			flops: 1416, fpuOps: 912,
			loadReals: 8*18/float64(ls) + 8*24 + 16, storeReals: 24,
			pipelineF: 0.851, memoryF: 1.0,
			commRealsPerFaceSite: 12, // per s-slice
			fieldRealsPerSite:    4*18/float64(ls) + 5*24,
		}
	default:
		panic(fmt.Sprintf("fermion: unknown operator kind %d", kind))
	}
}

// SiteCost returns the Dirac-operator cost per site (per s-slice for
// DWF, with DefaultLs) at the given precision and memory level.
func SiteCost(kind OpKind, prec Precision, level memsys.Level) ppc440.KernelCost {
	return siteCostLs(kind, prec, level, DefaultLs)
}

// DWFSiteCost returns the domain-wall cost per 4-D-site-per-slice for a
// specific Ls.
func DWFSiteCost(prec Precision, level memsys.Level, ls int) ppc440.KernelCost {
	return siteCostLs(DWFKind, prec, level, ls)
}

func siteCostLs(kind OpKind, prec Precision, level memsys.Level, ls int) ppc440.KernelCost {
	c := countsFor(kind, ls)
	rb := prec.realBytes()
	return ppc440.KernelCost{
		Name:           fmt.Sprintf("%s-dslash-%s", kind, prec),
		Flops:          c.flops,
		FPUOps:         c.fpuOps,
		LoadBytes:      c.loadReals * rb,
		StoreBytes:     c.storeReals * rb,
		Streams:        9, // gauge + 8 neighbour gathers: gather regime
		Level:          level,
		PipelineFactor: c.pipelineF,
		MemoryFactor:   c.memoryF,
	}
}

// fieldReals is the length of the operator's fermion vector per site, in
// reals (spinor = 24, color vector = 6).
func fieldReals(kind OpKind) float64 {
	if kind == AsqtadKind {
		return 6
	}
	return 24
}

// AXPYCost is y += a*x on the operator's field type: an all-FMA
// streaming kernel the EDRAM prefetcher covers at bus bandwidth.
func AXPYCost(kind OpKind, prec Precision, level memsys.Level) ppc440.KernelCost {
	n := fieldReals(kind)
	rb := prec.realBytes()
	return ppc440.KernelCost{
		Name:       fmt.Sprintf("%s-axpy-%s", kind, prec),
		Flops:      2 * n,
		FPUOps:     n,
		LoadBytes:  2 * n * rb,
		StoreBytes: n * rb,
		Streams:    2,
		Level:      level,
	}
}

// DotCost is the local part of an inner product <x,y>.
func DotCost(kind OpKind, prec Precision, level memsys.Level) ppc440.KernelCost {
	n := fieldReals(kind)
	rb := prec.realBytes()
	return ppc440.KernelCost{
		Name:      fmt.Sprintf("%s-dot-%s", kind, prec),
		Flops:     2 * n,
		FPUOps:    n,
		LoadBytes: 2 * n * rb,
		Streams:   2,
		Level:     level,
	}
}

// CGIterationCycles is the modelled per-site cost of one conjugate-
// gradient iteration on the normal equations: two operator applications
// (D and D†) plus the Krylov linear algebra (three axpy-class updates
// and two inner products). The phases run back to back, each in its own
// memory regime — the dslash gathers, the linalg streams through the
// prefetcher — so their cycle counts add.
func CGIterationCycles(cpu ppc440.CPU, m memsys.Model, kind OpKind, prec Precision, level memsys.Level) float64 {
	dslash := cpu.KernelCycles(SiteCost(kind, prec, level), m)
	axpy := cpu.KernelCycles(AXPYCost(kind, prec, level), m)
	dot := cpu.KernelCycles(DotCost(kind, prec, level), m)
	return 2*dslash + 3*axpy + 2*dot
}

// CGIterationFlopsPerSite is the useful flops of one CG iteration per
// site.
func CGIterationFlopsPerSite(kind OpKind) float64 {
	n := fieldReals(kind)
	return 2*FlopsPerSite(kind) + 3*(2*n) + 2*(2*n)
}

// CGEfficiency is the modelled fraction of peak the CG solver sustains.
func CGEfficiency(cpu ppc440.CPU, m memsys.Model, kind OpKind, prec Precision, level memsys.Level) float64 {
	cycles := CGIterationCycles(cpu, m, kind, prec, level)
	return CGIterationFlopsPerSite(kind) / (float64(cpu.FlopsPerCycle) * cycles)
}

// CommBytesPerFaceSite is the data shipped to one neighbour per boundary
// site per operator application: a spin-projected half spinor for
// Wilson-type operators (12 complex numbers, §1's nearest-neighbour
// communication), three boundary layers of color vectors for ASQTAD
// (the third-nearest-neighbour Naik term the paper mentions), per
// s-slice for DWF.
func CommBytesPerFaceSite(kind OpKind, prec Precision) float64 {
	return countsFor(kind, DefaultLs).commRealsPerFaceSite * prec.realBytes()
}

// FieldBytesPerSite is the CG working set per site (gauge field plus
// solver vectors): what must fit in the 4 MB EDRAM for the high-
// efficiency numbers, and what pushes large local volumes into DDR (§4).
// For DWF this is per 4-D-site-per-slice.
func FieldBytesPerSite(kind OpKind, prec Precision) float64 {
	return countsFor(kind, DefaultLs).fieldRealsPerSite * prec.realBytes()
}

// WorkingSetLevel reports where a local volume's working set lives.
func WorkingSetLevel(kind OpKind, prec Precision, localSites int) memsys.Level {
	if memsys.FitsEDRAM(int(FieldBytesPerSite(kind, prec) * float64(localSites))) {
		return memsys.EDRAM
	}
	return memsys.DDR
}

// FlopsPerSite returns the useful flops of one operator application per
// site (per s-slice for DWF) — the numerator of every efficiency number
// in §4.
func FlopsPerSite(kind OpKind) float64 { return countsFor(kind, DefaultLs).flops }

// FieldReals is the per-site length of the operator's fermion vector in
// reals: 24 for spinors, 6 for staggered color vectors.
func FieldReals(kind OpKind) float64 { return fieldReals(kind) }
