package fermion

import (
	"fmt"

	"qcdoc/internal/latmath"
	"qcdoc/internal/lattice"
)

// Field5 is a five-dimensional domain-wall fermion field: Ls slices of
// 4-D spinor fields, layout S[s*V4 + idx4].
type Field5 struct {
	L  lattice.Shape4
	Ls int
	S  []latmath.Spinor
}

// NewField5 allocates a zero 5-D field.
func NewField5(l lattice.Shape4, ls int) *Field5 {
	if ls < 1 {
		panic(fmt.Sprintf("fermion: invalid Ls %d", ls))
	}
	return &Field5{L: l, Ls: ls, S: make([]latmath.Spinor, ls*l.Volume())}
}

// At returns a pointer to ψ(x=idx4, s).
func (f *Field5) At(s, idx4 int) *latmath.Spinor { return &f.S[s*f.L.Volume()+idx4] }

// Gaussian fills with unit-normal noise, per (s, site) streams.
func (f *Field5) Gaussian(seed uint64) {
	v := f.L.Volume()
	for s := 0; s < f.Ls; s++ {
		slice := &lattice.FermionField{L: f.L, S: f.S[s*v : (s+1)*v]}
		slice.Gaussian(seed + uint64(s)*0x1000003)
	}
}

// Dot returns the full 5-D inner product.
func (f *Field5) Dot(g *Field5) complex128 {
	var sum complex128
	for i := range f.S {
		sum += f.S[i].Dot(g.S[i])
	}
	return sum
}

// Norm2 returns |f|².
func (f *Field5) Norm2() float64 {
	var sum float64
	for i := range f.S {
		sum += f.S[i].Norm2()
	}
	return sum
}

// AXPY computes f += a x.
func (f *Field5) AXPY(a complex128, x *Field5) {
	for i := range f.S {
		f.S[i] = f.S[i].AXPY(a, x.S[i])
	}
}

// Scale multiplies in place.
func (f *Field5) Scale(a complex128) {
	for i := range f.S {
		f.S[i] = f.S[i].Scale(a)
	}
}

// Clone deep-copies.
func (f *Field5) Clone() *Field5 {
	c := NewField5(f.L, f.Ls)
	copy(c.S, f.S)
	return c
}

// DWF is the Shamir domain-wall operator (§4: "a newer discretization
// ... domain wall fermions ... naturally five-dimensional"):
//
//	(D ψ)(x,s) = [D_W(-M5) + 1] ψ(x,s) - P_- ψ(x,s+1) - P_+ ψ(x,s-1)
//
// with chiral projectors P_± = (1 ± γ5)/2 and the physical-mass boundary
// condition: the s-hops off the ends of the fifth dimension re-enter
// with a factor -m_f.
type DWF struct {
	G  *lattice.GaugeField
	M5 float64 // domain-wall height, typically ~1.8
	Mf float64 // physical quark mass coupling the walls
	Ls int
}

// NewDWF builds the operator.
func NewDWF(g *lattice.GaugeField, m5, mf float64, ls int) *DWF {
	return &DWF{G: g, M5: m5, Mf: mf, Ls: ls}
}

// Name identifies the operator.
func (d *DWF) Name() string { return "dwf" }

// Lattice returns the 4-D lattice shape.
func (d *DWF) Lattice() lattice.Shape4 { return d.G.L }

// projPlus applies P_+ = (1+γ5)/2.
func projPlus(s latmath.Spinor) latmath.Spinor {
	g5 := latmath.Gamma5.ApplySpin(s)
	return s.Add(g5).Scale(0.5)
}

// projMinus applies P_- = (1-γ5)/2.
func projMinus(s latmath.Spinor) latmath.Spinor {
	g5 := latmath.Gamma5.ApplySpin(s)
	return s.Sub(g5).Scale(0.5)
}

// Apply computes dst = D src.
func (d *DWF) Apply(dst, src *Field5) {
	l := d.G.L
	v := l.Volume()
	diag := complex(-d.M5+4+1, 0) // Wilson diagonal at mass -M5, plus the +1 of D_perp
	for s := 0; s < d.Ls; s++ {
		for idx := 0; idx < v; idx++ {
			x := l.SiteOf(idx)
			acc := hopTerm4D5(d.G, src, s, x, idx)
			out := src.S[s*v+idx].Scale(diag).Sub(acc.Scale(0.5))
			// Fifth-dimension hops.
			up := s + 1
			dn := s - 1
			if up < d.Ls {
				out = out.Sub(projMinus(src.S[up*v+idx]))
			} else {
				out = out.AXPY(complex(d.Mf, 0), projMinus(src.S[0*v+idx]))
			}
			if dn >= 0 {
				out = out.Sub(projPlus(src.S[dn*v+idx]))
			} else {
				out = out.AXPY(complex(d.Mf, 0), projPlus(src.S[(d.Ls-1)*v+idx]))
			}
			dst.S[s*v+idx] = out
		}
	}
}

// hopTerm4D5 is hopTerm for one s-slice of a 5-D field: the gauge links
// are s-independent, which is the locality the DWF kernel exploits for
// its high efficiency (the same links serve all Ls slices).
func hopTerm4D5(g *lattice.GaugeField, src *Field5, s int, x lattice.Site, idx int) latmath.Spinor {
	l := g.L
	v := l.Volume()
	var acc latmath.Spinor
	for mu := 0; mu < lattice.Ndim; mu++ {
		xp := l.Neighbor(x, mu, +1)
		hp := latmath.Project(mu, +1, src.S[s*v+l.Index(xp)]).MulMat(g.Link(x, mu))
		acc = acc.Add(latmath.Reconstruct(mu, +1, hp))
		xm := l.Neighbor(x, mu, -1)
		hm := latmath.Project(mu, -1, src.S[s*v+l.Index(xm)]).DagMulMat(g.Link(xm, mu))
		acc = acc.Add(latmath.Reconstruct(mu, -1, hm))
	}
	_ = idx
	return acc
}

// ApplyDag computes dst = D† src using the domain-wall relation
// D† = R γ5 D γ5 R, where R reflects the fifth dimension
// (s -> Ls-1-s).
func (d *DWF) ApplyDag(dst, src *Field5) {
	tmp := d.reflectGamma5(src)
	mid := NewField5(d.G.L, d.Ls)
	d.Apply(mid, tmp)
	out := d.reflectGamma5(mid)
	copy(dst.S, out.S)
}

// reflectGamma5 returns R γ5 f: γ5 in spin, reflection in s.
func (d *DWF) reflectGamma5(f *Field5) *Field5 {
	v := d.G.L.Volume()
	out := NewField5(d.G.L, d.Ls)
	for s := 0; s < d.Ls; s++ {
		rs := d.Ls - 1 - s
		for idx := 0; idx < v; idx++ {
			out.S[s*v+idx] = latmath.Gamma5.ApplySpin(f.S[rs*v+idx])
		}
	}
	return out
}
