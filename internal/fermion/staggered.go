package fermion

import (
	"qcdoc/internal/latmath"
	"qcdoc/internal/lattice"
)

// eta returns the Kogut-Susskind phase η_mu(x) = (-1)^(x_0+...+x_{mu-1}).
func eta(x lattice.Site, mu int) float64 {
	s := 0
	for nu := 0; nu < mu; nu++ {
		s += x[nu]
	}
	if s%2 == 1 {
		return -1
	}
	return 1
}

// Staggered is the naive one-link Kogut-Susskind operator
// D χ(x) = m χ(x) + (1/2) Σ_mu η_mu(x) [U_mu(x) χ(x+mu) - U†_mu(x-mu) χ(x-mu)].
// Its hopping part is anti-Hermitian, so D† = 2m - D.
type Staggered struct {
	G    *lattice.GaugeField
	Mass float64
}

// NewStaggered builds the naive staggered operator.
func NewStaggered(g *lattice.GaugeField, mass float64) *Staggered {
	return &Staggered{G: g, Mass: mass}
}

// Name implements StaggeredOperator.
func (s *Staggered) Name() string { return "staggered" }

// Lattice implements StaggeredOperator.
func (s *Staggered) Lattice() lattice.Shape4 { return s.G.L }

// Apply computes dst = D src.
func (s *Staggered) Apply(dst, src *lattice.ColorField) {
	applyOneLink(s.G, src, dst, s.Mass, 0.5, 1)
}

// ApplyDag computes dst = D† src = (2m - D) src.
func (s *Staggered) ApplyDag(dst, src *lattice.ColorField) {
	s.Apply(dst, src)
	for i := range dst.V {
		dst.V[i] = src.V[i].Scale(complex(2*s.Mass, 0)).Sub(dst.V[i])
	}
}

// applyOneLink accumulates dst = mass*src + coeff Σ_mu η_mu(x)
// [W_mu(x) src(x+hop*mu) - W†_mu(x-hop*mu) src(x-hop*mu)] for link field
// w and hop distance hop (1 for ordinary and fat links, 3 for Naik).
// When mass is NaN-free zero and dst already holds a partial result the
// caller uses accumulateOneLink instead.
func applyOneLink(w *lattice.GaugeField, src, dst *lattice.ColorField, mass, coeff float64, hop int) {
	l := w.L
	v := l.Volume()
	for idx := 0; idx < v; idx++ {
		x := l.SiteOf(idx)
		acc := src.V[idx].Scale(complex(mass, 0))
		acc = acc.Add(oneLinkAt(w, src, x, coeff, hop))
		dst.V[idx] = acc
	}
}

// accumulateOneLink adds the hopping term into dst without the mass term.
func accumulateOneLink(w *lattice.GaugeField, src, dst *lattice.ColorField, coeff float64, hop int) {
	l := w.L
	v := l.Volume()
	for idx := 0; idx < v; idx++ {
		x := l.SiteOf(idx)
		dst.V[idx] = dst.V[idx].Add(oneLinkAt(w, src, x, coeff, hop))
	}
}

func oneLinkAt(w *lattice.GaugeField, src *lattice.ColorField, x lattice.Site, coeff float64, hop int) latmath.Vec3 {
	l := w.L
	var acc latmath.Vec3
	for mu := 0; mu < lattice.Ndim; mu++ {
		e := complex(coeff*eta(x, mu), 0)
		xp := l.Hop(x, mu, hop)
		xm := l.Hop(x, mu, -hop)
		fwd := w.Link(x, mu).MulVec(src.V[l.Index(xp)])
		bwd := w.Link(xm, mu).DagMulVec(src.V[l.Index(xm)])
		acc = acc.Add(fwd.Sub(bwd).Scale(e))
	}
	return acc
}

// ASQTAD is the a²-tadpole-improved staggered operator the paper
// benchmarks: a fat-link one-hop term plus the Naik three-hop term with
// long links,
//
//	D = m + Σ_mu η_mu(x)/2 [ F_mu(x) T_{+mu} - F†_mu T_{-mu} ]
//	      + c_N Σ_mu η_mu(x)/2 [ L_mu(x) T_{+3mu} - L†_mu T_{-3mu} ],
//
// where F are fattened links and L_mu(x) = U_mu(x)U_mu(x+mu)U_mu(x+2mu).
//
// Substitution note: the full ASQTAD prescription fattens with 3-, 5-
// and 7-link staples plus a Lepage term; this implementation fattens
// with the 3-link staples only (coefficients normalized so a unit gauge
// field gives unit fat links). The machine-performance character —
// two link fields, sixteen matrix-vector products per site, first- and
// third-neighbour communication — is identical; only the physics
// improvement coefficients differ. See DESIGN.md.
type ASQTAD struct {
	G    *lattice.GaugeField
	Fat  *lattice.GaugeField
	Long *lattice.GaugeField
	Mass float64
	Naik float64
}

// Standard-ish coefficients: fat = c1 U + c3 Σ_staples with c1+6*c3 = 1
// so cold links stay unit; Naik coefficient -1/24 removes the leading
// a² error of the derivative.
const (
	asqtadOneLink   = 5.0 / 8.0
	asqtadStaple    = 1.0 / 16.0
	asqtadNaikCoeff = -1.0 / 24.0
)

// NewASQTAD builds the operator, constructing fat and long links from g.
func NewASQTAD(g *lattice.GaugeField, mass float64) *ASQTAD {
	fat, long := BuildASQTADLinks(g)
	return &ASQTAD{G: g, Fat: fat, Long: long, Mass: mass, Naik: asqtadNaikCoeff}
}

// BuildASQTADLinks constructs the fattened one-hop links and the
// three-hop Naik links.
func BuildASQTADLinks(g *lattice.GaugeField) (fat, long *lattice.GaugeField) {
	l := g.L
	fat = lattice.NewGaugeField(l)
	long = lattice.NewGaugeField(l)
	v := l.Volume()
	for idx := 0; idx < v; idx++ {
		x := l.SiteOf(idx)
		for mu := 0; mu < lattice.Ndim; mu++ {
			// Fat link: c1 U + c3 * sum of the six 3-link staples.
			sum := g.Link(x, mu).Scale(complex(asqtadOneLink, 0))
			for nu := 0; nu < lattice.Ndim; nu++ {
				if nu == mu {
					continue
				}
				up := pathProduct(g, x, []pathStep{{nu, +1}, {mu, +1}, {nu, -1}})
				dn := pathProduct(g, x, []pathStep{{nu, -1}, {mu, +1}, {nu, +1}})
				sum = sum.Add(up.Add(dn).Scale(complex(asqtadStaple, 0)))
			}
			fat.SetLink(x, mu, sum)
			// Long (Naik) link: straight three-hop product.
			long.SetLink(x, mu, pathProduct(g, x, []pathStep{{mu, +1}, {mu, +1}, {mu, +1}}))
		}
	}
	return fat, long
}

// Name implements StaggeredOperator.
func (a *ASQTAD) Name() string { return "asqtad" }

// Lattice implements StaggeredOperator.
func (a *ASQTAD) Lattice() lattice.Shape4 { return a.G.L }

// Apply computes dst = D src.
func (a *ASQTAD) Apply(dst, src *lattice.ColorField) {
	applyOneLink(a.Fat, src, dst, a.Mass, 0.5, 1)
	accumulateOneLink(a.Long, src, dst, 0.5*a.Naik, 3)
}

// ApplyDag computes dst = D† src = (2m - D) src: both hopping terms are
// anti-Hermitian.
func (a *ASQTAD) ApplyDag(dst, src *lattice.ColorField) {
	a.Apply(dst, src)
	for i := range dst.V {
		dst.V[i] = src.V[i].Scale(complex(2*a.Mass, 0)).Sub(dst.V[i])
	}
}
