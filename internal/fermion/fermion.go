// Package fermion implements the Dirac operator discretizations the
// paper benchmarks (§4): naive Wilson fermions, clover-improved Wilson
// fermions, ASQTAD staggered fermions, and the five-dimensional
// domain-wall fermions targeted for QCDOC production running. Each
// operator has a functional reference implementation (used for solver
// correctness and the multi-node validation tests) and a per-site cost
// descriptor feeding the machine performance model (cost.go).
package fermion

import (
	"qcdoc/internal/latmath"
	"qcdoc/internal/lattice"
)

// DiracOperator is a linear operator on Dirac spinor fields.
type DiracOperator interface {
	Name() string
	Lattice() lattice.Shape4
	// Apply computes dst = D src.
	Apply(dst, src *lattice.FermionField)
	// ApplyDag computes dst = D† src.
	ApplyDag(dst, src *lattice.FermionField)
}

// StaggeredOperator is a linear operator on single-spin color fields.
type StaggeredOperator interface {
	Name() string
	Lattice() lattice.Shape4
	Apply(dst, src *lattice.ColorField)
	ApplyDag(dst, src *lattice.ColorField)
}

// pathStep is one hop of a Wilson line: direction mu with sign ±1.
type pathStep struct {
	mu  int
	dir int
}

// pathProduct multiplies the gauge links along a path of hops starting
// at x: a forward hop contributes U_mu(y) and advances y; a backward hop
// retreats y and contributes U†_mu(y). Used to build plaquette leaves,
// staples and long links.
func pathProduct(g *lattice.GaugeField, x lattice.Site, steps []pathStep) latmath.Mat3 {
	m := latmath.Identity3()
	y := x
	for _, s := range steps {
		if s.dir > 0 {
			m = m.Mul(g.Link(y, s.mu))
			y = g.L.Neighbor(y, s.mu, +1)
		} else {
			y = g.L.Neighbor(y, s.mu, -1)
			m = m.Mul(g.Link(y, s.mu).Dagger())
		}
	}
	return m
}

// hopTerm accumulates the Wilson hopping term at site x:
// Σ_mu [ (1-γ_mu) U_mu(x) ψ(x+mu) + (1+γ_mu) U†_mu(x-mu) ψ(x-mu) ],
// using the spin projection trick (12 instead of 24 complex numbers per
// neighbour — exactly the quantity the SCU ships between nodes).
func hopTerm(g *lattice.GaugeField, src *lattice.FermionField, x lattice.Site) latmath.Spinor {
	l := g.L
	var acc latmath.Spinor
	for mu := 0; mu < lattice.Ndim; mu++ {
		xp := l.Neighbor(x, mu, +1)
		hp := latmath.Project(mu, +1, src.S[l.Index(xp)]).MulMat(g.Link(x, mu))
		acc = acc.Add(latmath.Reconstruct(mu, +1, hp))
		xm := l.Neighbor(x, mu, -1)
		hm := latmath.Project(mu, -1, src.S[l.Index(xm)]).DagMulMat(g.Link(xm, mu))
		acc = acc.Add(latmath.Reconstruct(mu, -1, hm))
	}
	return acc
}

// Wilson is the naive Wilson Dirac operator
// D = (m + 4) - (1/2) Σ_mu [(1-γ_mu) U_mu(x) T_{+mu} + (1+γ_mu) U†_mu T_{-mu}].
type Wilson struct {
	G    *lattice.GaugeField
	Mass float64
}

// NewWilson builds the operator on gauge field g with bare mass m.
func NewWilson(g *lattice.GaugeField, mass float64) *Wilson {
	return &Wilson{G: g, Mass: mass}
}

// Name implements DiracOperator.
func (w *Wilson) Name() string { return "wilson" }

// Lattice implements DiracOperator.
func (w *Wilson) Lattice() lattice.Shape4 { return w.G.L }

// Apply computes dst = D src.
func (w *Wilson) Apply(dst, src *lattice.FermionField) {
	l := w.G.L
	diag := complex(w.Mass+4, 0)
	v := l.Volume()
	for idx := 0; idx < v; idx++ {
		x := l.SiteOf(idx)
		acc := hopTerm(w.G, src, x)
		dst.S[idx] = src.S[idx].Scale(diag).Sub(acc.Scale(0.5))
	}
}

// ApplyDag computes dst = D† src via γ5-hermiticity: D† = γ5 D γ5.
func (w *Wilson) ApplyDag(dst, src *lattice.FermionField) {
	tmp := lattice.NewFermionField(w.G.L)
	applyGamma5(tmp, src)
	mid := lattice.NewFermionField(w.G.L)
	w.Apply(mid, tmp)
	applyGamma5(dst, mid)
}

// applyGamma5 computes dst = (γ5 ⊗ 1) src.
func applyGamma5(dst, src *lattice.FermionField) {
	for i := range src.S {
		dst.S[i] = latmath.Gamma5.ApplySpin(src.S[i])
	}
}
