package fermion

import (
	"qcdoc/internal/latmath"
	"qcdoc/internal/lattice"
)

// Clover is the clover-improved (Sheikholeslami-Wohlert) Wilson
// operator: the Wilson operator plus a site-diagonal term built from the
// clover-leaf field strength,
//
//	D_clover = D_wilson - (c_sw/2) Σ_{mu<nu} σ_{mu nu} ⊗ i F̂_{mu nu}(x),
//
// which removes the O(a) discretization error. The term is Hermitian and
// commutes with γ5 (σ is block diagonal in the chiral basis), so the full
// operator keeps γ5-hermiticity.
type Clover struct {
	Wilson
	Csw float64
	// term[idx][a][b] is the color matrix coupling spin b to spin a at
	// site idx.
	term [][4][4]latmath.Mat3
}

// NewClover builds the operator, precomputing the clover term on the
// given gauge field (as production code does once per configuration).
func NewClover(g *lattice.GaugeField, mass, csw float64) *Clover {
	c := &Clover{Wilson: Wilson{G: g, Mass: mass}, Csw: csw}
	c.buildTerm()
	return c
}

// Name implements DiracOperator.
func (c *Clover) Name() string { return "clover" }

// cloverLeafField returns the clover-leaf field strength
// F̂_{mu nu}(x) = traceless-antihermitian part of (1/4) Σ_{4 leaves},
// i.e. (1/8)(Q - Q†) with the trace removed.
func cloverLeafField(g *lattice.GaugeField, x lattice.Site, mu, nu int) latmath.Mat3 {
	leaves := [][]pathStep{
		{{mu, +1}, {nu, +1}, {mu, -1}, {nu, -1}},
		{{nu, +1}, {mu, -1}, {nu, -1}, {mu, +1}},
		{{mu, -1}, {nu, -1}, {mu, +1}, {nu, +1}},
		{{nu, -1}, {mu, +1}, {nu, +1}, {mu, -1}},
	}
	q := latmath.Zero3()
	for _, leaf := range leaves {
		q = q.Add(pathProduct(g, x, leaf))
	}
	return q.Scale(0.25).TracelessAntiHermitian()
}

func (c *Clover) buildTerm() {
	l := c.G.L
	v := l.Volume()
	c.term = make([][4][4]latmath.Mat3, v)
	coeff := complex(-c.Csw/2, 0)
	for idx := 0; idx < v; idx++ {
		x := l.SiteOf(idx)
		for mu := 0; mu < lattice.Ndim; mu++ {
			for nu := mu + 1; nu < lattice.Ndim; nu++ {
				f := cloverLeafField(c.G, x, mu, nu)
				iF := f.Scale(1i) // Hermitian
				sigma := latmath.Sigma(mu, nu)
				for a := 0; a < 4; a++ {
					for b := 0; b < 4; b++ {
						s := sigma[a][b]
						if s == 0 {
							continue
						}
						c.term[idx][a][b] = c.term[idx][a][b].Add(iF.Scale(coeff * s))
					}
				}
			}
		}
	}
}

// Apply computes dst = D_clover src.
func (c *Clover) Apply(dst, src *lattice.FermionField) {
	c.Wilson.Apply(dst, src)
	for idx := range src.S {
		var extra latmath.Spinor
		for a := 0; a < 4; a++ {
			for b := 0; b < 4; b++ {
				m := &c.term[idx][a][b]
				if *m == latmath.Zero3() {
					continue
				}
				extra[a] = extra[a].Add(m.MulVec(src.S[idx][b]))
			}
		}
		dst.S[idx] = dst.S[idx].Add(extra)
	}
}

// ApplyDag computes dst = D† src via γ5-hermiticity (the clover term
// commutes with γ5 and is Hermitian).
func (c *Clover) ApplyDag(dst, src *lattice.FermionField) {
	tmp := lattice.NewFermionField(c.G.L)
	applyGamma5(tmp, src)
	mid := lattice.NewFermionField(c.G.L)
	c.Apply(mid, tmp)
	applyGamma5(dst, mid)
}

// SpinBlockDiagonal reports whether the clover term at site idx is block
// diagonal in spin (upper 2x2 and lower 2x2 blocks only) — true in the
// chiral basis, where the hardware-friendly representation is two 6x6
// Hermitian matrices (the layout behind the cost model's flop counts).
func (c *Clover) SpinBlockDiagonal(idx int, tol float64) bool {
	for a := 0; a < 2; a++ {
		for b := 2; b < 4; b++ {
			if c.term[idx][a][b].FrobeniusDistance(latmath.Zero3()) > tol ||
				c.term[idx][b][a].FrobeniusDistance(latmath.Zero3()) > tol {
				return false
			}
		}
	}
	return true
}

// TermAt exposes the precomputed clover term of one site (spin-indexed
// color blocks), so a distributed operator can scatter the term built on
// the global configuration.
func (c *Clover) TermAt(idx int) [4][4]latmath.Mat3 { return c.term[idx] }
