package fermion

import (
	"math"
	"math/cmplx"
	"testing"

	"qcdoc/internal/latmath"
	"qcdoc/internal/lattice"
	"qcdoc/internal/memsys"
	"qcdoc/internal/ppc440"
)

const tol = 1e-10

func testLattice() lattice.Shape4 { return lattice.Shape4{4, 4, 4, 4} }

func hotGauge(seed uint64) *lattice.GaugeField {
	g := lattice.NewGaugeField(testLattice())
	g.Randomize(seed)
	return g
}

// adjointnessDirac checks <u, D v> == <D† u, v> on random fields.
func adjointnessDirac(t *testing.T, op DiracOperator) {
	t.Helper()
	l := op.Lattice()
	u := lattice.NewFermionField(l)
	v := lattice.NewFermionField(l)
	u.Gaussian(11)
	v.Gaussian(22)
	Dv := lattice.NewFermionField(l)
	op.Apply(Dv, v)
	Du := lattice.NewFermionField(l)
	op.ApplyDag(Du, u)
	lhs := u.Dot(Dv)
	rhs := Du.Dot(v)
	if cmplx.Abs(lhs-rhs) > 1e-8*(1+cmplx.Abs(lhs)) {
		t.Fatalf("%s adjointness: <u,Dv>=%v, <D†u,v>=%v", op.Name(), lhs, rhs)
	}
}

func TestWilsonMassTerm(t *testing.T) {
	// On a cold gauge field, a constant spinor is an eigenvector with
	// eigenvalue m (the hopping term cancels exactly at p=0).
	l := testLattice()
	g := lattice.NewGaugeField(l)
	w := NewWilson(g, 0.3)
	src := lattice.NewFermionField(l)
	var s latmath.Spinor
	for a := 0; a < 4; a++ {
		for c := 0; c < 3; c++ {
			s[a][c] = complex(float64(a)+1, float64(c)-1)
		}
	}
	for i := range src.S {
		src.S[i] = s
	}
	dst := lattice.NewFermionField(l)
	w.Apply(dst, src)
	want := src.Clone()
	want.Scale(complex(0.3, 0))
	want.AXPY(-1, dst)
	if want.Norm2() > tol {
		t.Fatalf("constant field not eigenvector: residual %g", want.Norm2())
	}
}

func TestWilsonPlaneWaveEigenvalue(t *testing.T) {
	// Free Wilson operator on a plane wave ψ(x) = e^{ip·x} χ:
	// D ψ = [m + Σ_mu (1 - cos p_mu) + i Σ_mu γ_mu sin p_mu] ψ.
	l := testLattice()
	g := lattice.NewGaugeField(l)
	mass := 0.25
	w := NewWilson(g, mass)
	// Allowed momentum: p_mu = 2π n_mu / L_mu.
	n := [4]int{1, 0, 2, 3}
	var p [4]float64
	for mu := 0; mu < 4; mu++ {
		p[mu] = 2 * math.Pi * float64(n[mu]) / float64(l[mu])
	}
	var chi latmath.Spinor
	chi[0][0] = 1
	chi[1][2] = complex(0.5, -0.25)
	chi[3][1] = complex(-0.125, 1)
	src := lattice.NewFermionField(l)
	for idx := range src.S {
		x := l.SiteOf(idx)
		phase := 0.0
		for mu := 0; mu < 4; mu++ {
			phase += p[mu] * float64(x[mu])
		}
		src.S[idx] = chi.Scale(cmplx.Exp(complex(0, phase)))
	}
	dst := lattice.NewFermionField(l)
	w.Apply(dst, src)
	// Expected: [m + Σ(1-cos p)] ψ + i Σ sin p_mu (γ_mu ψ).
	scal := mass
	for mu := 0; mu < 4; mu++ {
		scal += 1 - math.Cos(p[mu])
	}
	want := lattice.NewFermionField(l)
	for idx := range src.S {
		out := src.S[idx].Scale(complex(scal, 0))
		for mu := 0; mu < 4; mu++ {
			gpsi := latmath.Gamma[mu].ApplySpin(src.S[idx])
			out = out.AXPY(complex(0, math.Sin(p[mu])), gpsi)
		}
		want.S[idx] = out
	}
	want.AXPY(-1, dst)
	if r := want.Norm2() / src.Norm2(); r > 1e-20 {
		t.Fatalf("plane-wave eigenvalue violated: relative residual %g", r)
	}
}

func TestWilsonGamma5Hermiticity(t *testing.T) {
	adjointnessDirac(t, NewWilson(hotGauge(1), 0.1))
}

func TestWilsonLinearity(t *testing.T) {
	l := testLattice()
	w := NewWilson(hotGauge(2), 0.05)
	x := lattice.NewFermionField(l)
	y := lattice.NewFermionField(l)
	x.Gaussian(3)
	y.Gaussian(4)
	a := complex(1.5, -0.5)
	// D(ax + y)
	comb := x.Clone()
	comb.Scale(a)
	comb.AXPY(1, y)
	lhs := lattice.NewFermionField(l)
	w.Apply(lhs, comb)
	// aDx + Dy
	dx := lattice.NewFermionField(l)
	dy := lattice.NewFermionField(l)
	w.Apply(dx, x)
	w.Apply(dy, y)
	dx.Scale(a)
	dx.AXPY(1, dy)
	dx.AXPY(-1, lhs)
	if dx.Norm2() > 1e-18*lhs.Norm2() {
		t.Fatalf("not linear: %g", dx.Norm2())
	}
}

func TestCloverReducesToWilsonOnColdField(t *testing.T) {
	// With F = 0 the clover term vanishes identically.
	l := testLattice()
	g := lattice.NewGaugeField(l)
	w := NewWilson(g, 0.2)
	c := NewClover(g, 0.2, 1.7)
	src := lattice.NewFermionField(l)
	src.Gaussian(5)
	dw := lattice.NewFermionField(l)
	dc := lattice.NewFermionField(l)
	w.Apply(dw, src)
	c.Apply(dc, src)
	dw.AXPY(-1, dc)
	if dw.Norm2() > tol {
		t.Fatalf("clover term nonzero on cold field: %g", dw.Norm2())
	}
}

func TestCloverGamma5Hermiticity(t *testing.T) {
	adjointnessDirac(t, NewClover(hotGauge(6), 0.1, 1.0))
}

func TestCloverDiffersFromWilsonOnHotField(t *testing.T) {
	g := hotGauge(7)
	w := NewWilson(g, 0.1)
	c := NewClover(g, 0.1, 1.0)
	src := lattice.NewFermionField(g.L)
	src.Gaussian(8)
	dw := lattice.NewFermionField(g.L)
	dc := lattice.NewFermionField(g.L)
	w.Apply(dw, src)
	c.Apply(dc, src)
	dw.AXPY(-1, dc)
	if dw.Norm2() < 1e-6 {
		t.Fatal("clover term vanished on a hot field")
	}
}

func TestCloverSpinBlockDiagonal(t *testing.T) {
	// In the chiral basis the clover term is two 6x6 blocks — the layout
	// the cost model's flop counts assume.
	c := NewClover(hotGauge(9), 0.1, 1.0)
	for idx := 0; idx < 8; idx++ {
		if !c.SpinBlockDiagonal(idx, 1e-12) {
			t.Fatalf("clover term not block diagonal at site %d", idx)
		}
	}
}

func TestStaggeredMassTerm(t *testing.T) {
	// Free field, constant vector: hopping cancels, eigenvalue m.
	l := testLattice()
	g := lattice.NewGaugeField(l)
	s := NewStaggered(g, 0.4)
	src := lattice.NewColorField(l)
	for i := range src.V {
		src.V[i] = latmath.Vec3{1, complex(0, 1), complex(2, -1)}
	}
	dst := lattice.NewColorField(l)
	s.Apply(dst, src)
	want := src.Clone()
	want.Scale(complex(0.4, 0))
	want.AXPY(-1, dst)
	if want.Norm2() > tol {
		t.Fatalf("staggered mass term wrong: %g", want.Norm2())
	}
}

// adjointnessStaggered checks <u, D v> == <D† u, v>.
func adjointnessStaggered(t *testing.T, op StaggeredOperator) {
	t.Helper()
	l := op.Lattice()
	u := lattice.NewColorField(l)
	v := lattice.NewColorField(l)
	u.Gaussian(31)
	v.Gaussian(32)
	Dv := lattice.NewColorField(l)
	op.Apply(Dv, v)
	Du := lattice.NewColorField(l)
	op.ApplyDag(Du, u)
	lhs := u.Dot(Dv)
	rhs := Du.Dot(v)
	if cmplx.Abs(lhs-rhs) > 1e-8*(1+cmplx.Abs(lhs)) {
		t.Fatalf("%s adjointness: %v vs %v", op.Name(), lhs, rhs)
	}
}

func TestStaggeredAntiHermiticity(t *testing.T) {
	// The hopping part is anti-Hermitian: for m=0, <u,Dv> = -<Dv... i.e.
	// <u,Dv> = -conj(<v,Du>).
	g := hotGauge(10)
	s := NewStaggered(g, 0)
	u := lattice.NewColorField(g.L)
	v := lattice.NewColorField(g.L)
	u.Gaussian(33)
	v.Gaussian(34)
	Dv := lattice.NewColorField(g.L)
	Du := lattice.NewColorField(g.L)
	s.Apply(Dv, v)
	s.Apply(Du, u)
	lhs := u.Dot(Dv)
	rhs := -cmplx.Conj(v.Dot(Du))
	if cmplx.Abs(lhs-rhs) > 1e-8*(1+cmplx.Abs(lhs)) {
		t.Fatalf("hopping not anti-Hermitian: %v vs %v", lhs, rhs)
	}
	adjointnessStaggered(t, NewStaggered(g, 0.17))
}

func TestASQTADColdReducesToMass(t *testing.T) {
	// Cold field: fat links are unit (coefficients normalized), long
	// links unit, and both hopping terms cancel on a constant field.
	l := testLattice()
	g := lattice.NewGaugeField(l)
	a := NewASQTAD(g, 0.3)
	// Fat links must be exactly unit on a cold configuration.
	if d := a.Fat.Link(lattice.Site{1, 2, 0, 3}, 2).FrobeniusDistance(latmath.Identity3()); d > tol {
		t.Fatalf("cold fat link distance from identity: %g", d)
	}
	if d := a.Long.Link(lattice.Site{0, 0, 1, 1}, 0).FrobeniusDistance(latmath.Identity3()); d > tol {
		t.Fatalf("cold long link distance from identity: %g", d)
	}
	src := lattice.NewColorField(l)
	for i := range src.V {
		src.V[i] = latmath.Vec3{complex(0.5, 1), 2, complex(-1, 0.25)}
	}
	dst := lattice.NewColorField(l)
	a.Apply(dst, src)
	want := src.Clone()
	want.Scale(complex(0.3, 0))
	want.AXPY(-1, dst)
	if want.Norm2() > tol {
		t.Fatalf("cold ASQTAD != mass term: %g", want.Norm2())
	}
}

func TestASQTADAdjointness(t *testing.T) {
	adjointnessStaggered(t, NewASQTAD(hotGauge(12), 0.11))
}

func TestASQTADNaikTermActive(t *testing.T) {
	// On a hot field the Naik term must contribute: compare against a
	// fat-only operator.
	g := hotGauge(13)
	a := NewASQTAD(g, 0.1)
	noNaik := &ASQTAD{G: g, Fat: a.Fat, Long: a.Long, Mass: 0.1, Naik: 0}
	src := lattice.NewColorField(g.L)
	src.Gaussian(35)
	d1 := lattice.NewColorField(g.L)
	d2 := lattice.NewColorField(g.L)
	a.Apply(d1, src)
	noNaik.Apply(d2, src)
	d1.AXPY(-1, d2)
	if d1.Norm2() < 1e-8 {
		t.Fatal("Naik term inactive")
	}
}

func TestDWFLsOneClosedForm(t *testing.T) {
	// With Ls=1 both fifth-dimension hops hit the boundary:
	// D = D_W(-M5) + (1 + m_f).
	l := testLattice()
	g := hotGauge(14)
	m5, mf := 1.8, 0.04
	d := NewDWF(g, m5, mf, 1)
	src5 := NewField5(l, 1)
	src5.Gaussian(41)
	dst5 := NewField5(l, 1)
	d.Apply(dst5, src5)
	// Reference: Wilson at mass -M5 plus (1+mf).
	w := NewWilson(g, -m5)
	src4 := &lattice.FermionField{L: l, S: src5.S}
	want4 := lattice.NewFermionField(l)
	w.Apply(want4, src4)
	want4.AXPY(complex(1+mf, 0), src4)
	got4 := &lattice.FermionField{L: l, S: dst5.S}
	want4.AXPY(-1, got4)
	if want4.Norm2() > 1e-18*src5.Norm2() {
		t.Fatalf("Ls=1 closed form violated: %g", want4.Norm2())
	}
}

func TestDWFAdjointness(t *testing.T) {
	g := hotGauge(15)
	d := NewDWF(g, 1.8, 0.08, 4)
	u := NewField5(g.L, 4)
	v := NewField5(g.L, 4)
	u.Gaussian(51)
	v.Gaussian(52)
	Dv := NewField5(g.L, 4)
	d.Apply(Dv, v)
	Du := NewField5(g.L, 4)
	d.ApplyDag(Du, u)
	lhs := u.Dot(Dv)
	rhs := Du.Dot(v)
	if cmplx.Abs(lhs-rhs) > 1e-8*(1+cmplx.Abs(lhs)) {
		t.Fatalf("DWF adjointness: %v vs %v", lhs, rhs)
	}
}

func TestDWFChiralProjectors(t *testing.T) {
	// P+ + P- = 1, P±² = P±, P+P- = 0.
	var s latmath.Spinor
	s[0][0] = complex(1, 2)
	s[2][1] = complex(-0.5, 0.25)
	s[3][2] = 4
	sum := projPlus(s).Add(projMinus(s))
	if sum.Sub(s).Norm2() > tol {
		t.Fatal("P+ + P- != 1")
	}
	if projPlus(projPlus(s)).Sub(projPlus(s)).Norm2() > tol {
		t.Fatal("P+ not idempotent")
	}
	if projMinus(projPlus(s)).Norm2() > tol {
		t.Fatal("P- P+ != 0")
	}
}

func TestCostAnchors(t *testing.T) {
	// E1/E2/E3/E15 at the model level: the calibrated per-site costs land
	// on the paper's measured efficiencies (§4) and the predicted
	// orderings hold.
	cpu := ppc440.Default()
	m := memsys.DefaultModel()
	eff := func(k OpKind, p Precision, lvl memsys.Level) float64 {
		return cpu.Efficiency(SiteCost(k, p, lvl), m)
	}
	cases := []struct {
		kind     OpKind
		want, hi float64
	}{
		{WilsonKind, 0.39, 0.41},   // paper: 40%
		{AsqtadKind, 0.37, 0.39},   // paper: 38%
		{CloverKind, 0.455, 0.475}, // paper: 46.5%
	}
	for _, c := range cases {
		got := eff(c.kind, Double, memsys.EDRAM)
		if got < c.want || got > c.hi {
			t.Errorf("%v DP efficiency = %.3f, want in [%.3f, %.3f]", c.kind, got, c.want, c.hi)
		}
	}
	// DWF surpasses clover (§4's forecast, E15).
	if eff(DWFKind, Double, memsys.EDRAM) <= eff(CloverKind, Double, memsys.EDRAM) {
		t.Error("DWF does not surpass clover")
	}
	// DDR spill lands near 30% for Wilson (E2).
	if got := eff(WilsonKind, Double, memsys.DDR); got < 0.28 || got > 0.32 {
		t.Errorf("Wilson DDR efficiency = %.3f, want ~0.30", got)
	}
	// Single precision slightly higher than double (E3).
	dp := eff(WilsonKind, Double, memsys.EDRAM)
	sp := eff(WilsonKind, Single, memsys.EDRAM)
	if sp <= dp || sp > dp+0.05 {
		t.Errorf("SP %.3f should be slightly above DP %.3f", sp, dp)
	}
	// CG efficiency tracks the dslash efficiency.
	cg := CGEfficiency(cpu, m, WilsonKind, Double, memsys.EDRAM)
	if math.Abs(cg-dp) > 0.03 {
		t.Errorf("CG efficiency %.3f far from dslash %.3f", cg, dp)
	}
}

func TestWorkingSetLevels(t *testing.T) {
	// §4: 4^4 and 6^4 fit in EDRAM for Wilson; 8^4 spills to DDR.
	if WorkingSetLevel(WilsonKind, Double, 4*4*4*4) != memsys.EDRAM {
		t.Error("4^4 should be EDRAM resident")
	}
	if WorkingSetLevel(WilsonKind, Double, 6*6*6*6) != memsys.EDRAM {
		t.Error("6^4 should be EDRAM resident")
	}
	if WorkingSetLevel(WilsonKind, Double, 8*8*8*8) != memsys.DDR {
		t.Error("8^4 should spill to DDR")
	}
}

func TestCommBytes(t *testing.T) {
	// A Wilson halo ships one half spinor per face site: 12 complex
	// doubles = 192 bytes... no: 12 complex = 24 reals = 192? A half
	// spinor is 2 spin x 3 color = 6 complex = 12 reals = 96 bytes DP.
	if got := CommBytesPerFaceSite(WilsonKind, Double); got != 96 {
		t.Fatalf("Wilson comm bytes = %v, want 96", got)
	}
	if got := CommBytesPerFaceSite(WilsonKind, Single); got != 48 {
		t.Fatalf("Wilson SP comm bytes = %v", got)
	}
	// ASQTAD needs third-neighbour data: three layers of color vectors.
	if got := CommBytesPerFaceSite(AsqtadKind, Double); got != 144 {
		t.Fatalf("ASQTAD comm bytes = %v, want 144", got)
	}
}

func TestDWFCostLsDependence(t *testing.T) {
	// Larger Ls amortizes gauge traffic: bytes fall, efficiency rises
	// (or saturates at the compute bound).
	b8 := DWFSiteCost(Double, memsys.EDRAM, 8).Bytes()
	b32 := DWFSiteCost(Double, memsys.EDRAM, 32).Bytes()
	if b32 >= b8 {
		t.Fatalf("Ls=32 bytes %v not below Ls=8 bytes %v", b32, b8)
	}
}
