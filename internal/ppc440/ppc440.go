// Package ppc440 models the QCDOC node processor (§2.1): an IBM PPC 440
// 32-bit integer core with an attached 64-bit IEEE floating point unit
// capable of one multiply and one add per cycle — a peak of 1 Gflops at
// the 500 MHz target clock — with 32 KB instruction and data caches.
//
// The simulator does not interpret PowerPC instructions (the paper's
// results do not depend on ISA details); instead, kernels are described
// by operation counts — floating point operations, FPU issue slots, and
// bytes moved — and the model converts them to cycles. A single
// calibrated issue-efficiency constant (FPUCPI) plus the memory model's
// kernel bandwidths reproduce the paper's measured solver efficiencies;
// see internal/perf for the calibration discussion and DESIGN.md §4.
package ppc440

import (
	"qcdoc/internal/event"
	"qcdoc/internal/memsys"
)

// Cache sizes (§2.1).
const (
	ICacheBytes = 32 << 10
	DCacheBytes = 32 << 10
)

// CPU is the processor timing model.
type CPU struct {
	// Clock is the processor frequency. The paper's machines ran at
	// 360, 420, 450 and (target) 500 MHz (§4).
	Clock event.Hz
	// FlopsPerCycle is the FPU peak: one multiply and one add per cycle.
	FlopsPerCycle int
	// FPUCPI is the average cycles consumed per FPU issue slot in a
	// hand-tuned kernel, folding in dependency stalls, load-use bubbles
	// and loop control. Calibrated once so the Wilson Dirac kernel lands
	// at the paper's 40%-of-peak anchor; all other operators then follow
	// from their own operation counts.
	FPUCPI float64
}

// Default returns the 500 MHz target configuration.
func Default() CPU { return At(500 * event.MHz) }

// At returns the model clocked at the given frequency.
func At(clock event.Hz) CPU {
	return CPU{Clock: clock, FlopsPerCycle: 2, FPUCPI: 1.9}
}

// PeakFlops is the peak floating-point rate in flops/second (1 Gflops at
// 500 MHz).
func (c CPU) PeakFlops() float64 {
	return float64(c.FlopsPerCycle) * float64(c.Clock)
}

// KernelCost describes the per-invocation cost of a compute kernel in
// machine-independent counts. For lattice operators these are counts per
// site (see internal/fermion); any consistent unit works.
type KernelCost struct {
	Name string
	// Flops is the number of useful floating point operations.
	Flops float64
	// FPUOps is the number of FPU issue slots: a fused multiply-add
	// counts one slot for two flops, a lone add or multiply one slot for
	// one flop.
	FPUOps float64
	// LoadBytes and StoreBytes are the data moved through the load/store
	// pipeline.
	LoadBytes, StoreBytes float64
	// Streams is the number of concurrent read-address streams. A kernel
	// with Streams in 1..PrefetchStreams is a pure streaming operation
	// (axpy, dot, copy) that the EDRAM prefetch controller covers
	// completely, so it runs at bus bandwidth (§2.1: "for an operation
	// involving a(x) × b(x) ... the EDRAM controller will fetch data
	// without suffering excessive page miss overheads"). Zero or more
	// than PrefetchStreams means a gather-style kernel limited by the
	// load pipeline.
	Streams int
	// Level is where the working set lives.
	Level memsys.Level
	// PipelineFactor scales the compute time for the quality of the
	// hand-tuned assembly relative to the Wilson baseline (1.0). The
	// per-operator values are documented where they are defined
	// (internal/fermion) and in EXPERIMENTS.md.
	PipelineFactor float64
	// MemoryFactor scales the memory time for access-pattern efficiency
	// relative to the Wilson kernel's stride pattern (1.0): a kernel
	// whose streams the prefetcher covers better sustains a higher
	// fraction of the load pipeline. Documented with PipelineFactor.
	MemoryFactor float64
}

// Scale returns the cost multiplied by n invocations (sites).
func (k KernelCost) Scale(n float64) KernelCost {
	k.Flops *= n
	k.FPUOps *= n
	k.LoadBytes *= n
	k.StoreBytes *= n
	return k
}

// Add combines two costs executed back to back at the deeper memory
// level of the two.
func (k KernelCost) Add(o KernelCost) KernelCost {
	k.Flops += o.Flops
	k.FPUOps += o.FPUOps
	k.LoadBytes += o.LoadBytes
	k.StoreBytes += o.StoreBytes
	if o.Level > k.Level {
		k.Level = o.Level
	}
	if o.Streams > k.Streams {
		k.Streams = o.Streams
	}
	return k
}

// Bytes is the total data movement.
func (k KernelCost) Bytes() float64 { return k.LoadBytes + k.StoreBytes }

// pipelineFactor returns the factor, defaulting to 1.
func (k KernelCost) pipelineFactor() float64 {
	if k.PipelineFactor == 0 {
		return 1
	}
	return k.PipelineFactor
}

// ComputeCycles is the FPU-issue-limited time.
func (c CPU) ComputeCycles(k KernelCost) float64 {
	return k.FPUOps * c.FPUCPI * k.pipelineFactor()
}

// memoryFactor returns the factor, defaulting to 1.
func (k KernelCost) memoryFactor() float64 {
	if k.MemoryFactor == 0 {
		return 1
	}
	return k.MemoryFactor
}

// MemoryCycles is the load/store-limited time under the memory model:
// bus bandwidth for prefetch-covered streaming kernels, sustained kernel
// bandwidth for gather-style access.
func (c CPU) MemoryCycles(k KernelCost, m memsys.Model) float64 {
	bytes := int(k.Bytes())
	if k.Streams > 0 && k.Streams <= memsys.PrefetchStreams {
		return m.StreamCycles(k.Level, bytes, k.Streams) * k.memoryFactor()
	}
	return m.KernelCycles(k.Level, bytes) * k.memoryFactor()
}

// KernelCycles is the modelled execution time in cycles: compute and
// memory pipelines overlap (the prefetching EDRAM controller runs ahead
// of the FPU), so the kernel takes the longer of the two.
func (c CPU) KernelCycles(k KernelCost, m memsys.Model) float64 {
	comp := c.ComputeCycles(k)
	mem := c.MemoryCycles(k, m)
	if mem > comp {
		return mem
	}
	return comp
}

// KernelTime converts KernelCycles to simulated time.
func (c CPU) KernelTime(k KernelCost, m memsys.Model) event.Time {
	return event.Time(c.KernelCycles(k, m) * float64(c.Clock.Cycle()))
}

// Efficiency is the fraction of peak floating point throughput the kernel
// sustains.
func (c CPU) Efficiency(k KernelCost, m memsys.Model) float64 {
	cycles := c.KernelCycles(k, m)
	if cycles == 0 {
		return 0
	}
	return k.Flops / (float64(c.FlopsPerCycle) * cycles)
}

// SustainedFlops is the achieved flops/second.
func (c CPU) SustainedFlops(k KernelCost, m memsys.Model) float64 {
	return c.Efficiency(k, m) * c.PeakFlops()
}

// Execute charges the kernel's time to a running simulation process.
func (c CPU) Execute(p *event.Proc, k KernelCost, m memsys.Model) {
	p.Sleep(c.KernelTime(k, m))
}

// ExecuteThen charges the kernel's time on the engine's continuation
// tier: done runs when the kernel retires, KernelTime from now. Timing
// is identical to Execute; only the scheduling tier differs.
func (c CPU) ExecuteThen(eng *event.Engine, k KernelCost, m memsys.Model, done func()) {
	eng.After(c.KernelTime(k, m), done)
}
