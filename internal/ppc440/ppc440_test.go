package ppc440

import (
	"testing"

	"qcdoc/internal/event"
	"qcdoc/internal/memsys"
)

func TestPeakFlops(t *testing.T) {
	// §2.1: one multiply and one add per cycle gives 1 Gflops at 500 MHz.
	if got := Default().PeakFlops(); got != 1e9 {
		t.Fatalf("peak = %g", got)
	}
	if got := At(450 * event.MHz).PeakFlops(); got != 0.9e9 {
		t.Fatalf("peak@450 = %g", got)
	}
	if got := At(360 * event.MHz).PeakFlops(); got != 0.72e9 {
		t.Fatalf("peak@360 = %g", got)
	}
}

// pureCompute is a kernel with negligible memory traffic.
func pureCompute() KernelCost {
	return KernelCost{Name: "fma-loop", Flops: 2000, FPUOps: 1000, Level: memsys.EDRAM}
}

// pureStream is a kernel with negligible compute.
func pureStream() KernelCost {
	return KernelCost{Name: "copy", Flops: 10, FPUOps: 5, LoadBytes: 1e6, StoreBytes: 1e6, Level: memsys.EDRAM}
}

func TestComputeBound(t *testing.T) {
	c := Default()
	m := memsys.DefaultModel()
	k := pureCompute()
	cycles := c.KernelCycles(k, m)
	if cycles != k.FPUOps*c.FPUCPI {
		t.Fatalf("cycles = %v", cycles)
	}
	// All-FMA code sustains 1/FPUCPI of peak.
	want := 1 / c.FPUCPI
	if got := c.Efficiency(k, m); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("efficiency = %v, want %v", got, want)
	}
}

func TestMemoryBound(t *testing.T) {
	c := Default()
	m := memsys.DefaultModel()
	k := pureStream()
	if got, want := c.KernelCycles(k, m), m.KernelCycles(memsys.EDRAM, int(k.Bytes())); got != want {
		t.Fatalf("cycles = %v, want %v", got, want)
	}
	// The same kernel from DDR is slower.
	k.Level = memsys.DDR
	if c.KernelCycles(k, m) <= c.KernelCycles(pureStream(), m) {
		t.Fatal("DDR kernel not slower than EDRAM")
	}
}

func TestPipelineFactor(t *testing.T) {
	c := Default()
	m := memsys.DefaultModel()
	k := pureCompute()
	base := c.KernelCycles(k, m)
	k.PipelineFactor = 0.5
	if got := c.KernelCycles(k, m); got != base/2 {
		t.Fatalf("factor 0.5 gives %v, want %v", got, base/2)
	}
}

func TestScaleAndAdd(t *testing.T) {
	a := KernelCost{Flops: 10, FPUOps: 5, LoadBytes: 100, StoreBytes: 20, Level: memsys.EDRAM, Streams: 2}
	b := KernelCost{Flops: 1, FPUOps: 1, LoadBytes: 10, StoreBytes: 2, Level: memsys.DDR, Streams: 4}
	s := a.Scale(3)
	if s.Flops != 30 || s.LoadBytes != 300 {
		t.Fatalf("scale: %+v", s)
	}
	sum := a.Add(b)
	if sum.Flops != 11 || sum.Bytes() != 132 {
		t.Fatalf("add: %+v", sum)
	}
	if sum.Level != memsys.DDR {
		t.Fatal("add must deepen level")
	}
	if sum.Streams != 4 {
		t.Fatal("add must keep max streams")
	}
}

func TestKernelTimeAndExecute(t *testing.T) {
	c := Default()
	m := memsys.DefaultModel()
	k := pureCompute() // 1960 cycles = 3.92 us at 500 MHz
	want := event.Time(k.FPUOps * c.FPUCPI * float64(c.Clock.Cycle()))
	if got := c.KernelTime(k, m); got != want {
		t.Fatalf("time = %v, want %v", got, want)
	}
	eng := event.New()
	var end event.Time
	eng.Spawn("app", func(p *event.Proc) {
		c.Execute(p, k, m)
		end = p.Now()
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if end != want {
		t.Fatalf("executed time = %v, want %v", end, want)
	}
}

func TestSustainedScalesWithClock(t *testing.T) {
	m := memsys.DefaultModel()
	k := pureCompute()
	s500 := Default().SustainedFlops(k, m)
	s360 := At(360*event.MHz).SustainedFlops(k, m)
	ratio := s360 / s500
	if ratio < 0.71 || ratio > 0.73 {
		t.Fatalf("sustained ratio = %v, want 0.72", ratio)
	}
}

func TestEfficiencyZeroCycles(t *testing.T) {
	c := Default()
	m := memsys.DefaultModel()
	if got := c.Efficiency(KernelCost{}, m); got != 0 {
		t.Fatalf("empty kernel efficiency = %v", got)
	}
}
