package memsys

import (
	"math/rand"
	"testing"
	"testing/quick"

	"qcdoc/internal/event"
)

func TestAddressMap(t *testing.T) {
	if LevelOf(0) != EDRAM || LevelOf(EDRAMBytes-8) != EDRAM {
		t.Fatal("low addresses must be EDRAM")
	}
	if LevelOf(DDRBase) != DDR {
		t.Fatal("DDRBase must be DDR")
	}
	if DDRBase != EDRAMBytes {
		t.Fatal("DDR must start right after EDRAM")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := NewNodeMemory(0)
	addrs := []uint64{0, 8, EDRAMBytes - 8, DDRBase, DDRBase + 1024*8}
	for i, a := range addrs {
		m.WriteWord(a, uint64(i)+0xF00)
	}
	for i, a := range addrs {
		if got := m.ReadWord(a); got != uint64(i)+0xF00 {
			t.Fatalf("addr %#x = %#x", a, got)
		}
	}
	// Untouched memory reads as zero.
	if m.ReadWord(16) != 0 {
		t.Fatal("untouched word non-zero")
	}
}

func TestReadWriteQuick(t *testing.T) {
	m := NewNodeMemory(1 << 20)
	f := func(seed int64, vals []uint64) bool {
		rng := rand.New(rand.NewSource(seed))
		written := map[uint64]uint64{}
		for _, v := range vals {
			a := uint64(rng.Intn(1<<18)) * 8 // within EDRAM
			m.WriteWord(a, v)
			written[a] = v
		}
		for a, v := range written {
			if m.ReadWord(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUnalignedPanics(t *testing.T) {
	m := NewNodeMemory(0)
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned access did not panic")
		}
	}()
	m.ReadWord(3)
}

func TestBeyondDDRPanics(t *testing.T) {
	m := NewNodeMemory(1 << 20)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access did not panic")
		}
	}()
	m.WriteWord(DDRBase+(1<<20), 1)
}

func TestBadDDRSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized DDR accepted")
		}
	}()
	NewNodeMemory(MaxDDRBytes + 1)
}

func TestModelBandwidths(t *testing.T) {
	// E6: the paper's datapath numbers — 8 GB/s to EDRAM, 2.6 GB/s to DDR
	// at 500 MHz.
	m := DefaultModel()
	if bw := m.BusBandwidth(EDRAM); bw < 7.9e9 || bw > 8.1e9 {
		t.Fatalf("EDRAM bus = %.3g B/s, want 8e9", bw)
	}
	if bw := m.BusBandwidth(DDR); bw < 2.55e9 || bw > 2.65e9 {
		t.Fatalf("DDR bus = %.3g B/s, want 2.6e9", bw)
	}
}

func TestPrefetchStreamsAvoidPageMisses(t *testing.T) {
	// §2.1: a(x)*b(x) — two contiguous streams — runs at full bus speed;
	// more streams than the prefetcher covers pay page misses.
	m := DefaultModel()
	bytes := 1 << 16
	two := m.StreamCycles(EDRAM, bytes, 2)
	ideal := float64(bytes) / m.EDRAMBusBPC
	if two != ideal {
		t.Fatalf("2-stream cycles = %v, want bus-limited %v", two, ideal)
	}
	three := m.StreamCycles(EDRAM, bytes, 3)
	if three <= two {
		t.Fatal("3 streams should pay page misses")
	}
	// Penalty magnitude: one page-miss per 128-byte row.
	wantPenalty := float64(bytes) / EDRAMRowBytes * m.PageMissCycles
	if got := three - two; got != wantPenalty {
		t.Fatalf("penalty = %v, want %v", got, wantPenalty)
	}
}

func TestKernelSlowerThanBus(t *testing.T) {
	m := DefaultModel()
	for _, l := range []Level{EDRAM, DDR} {
		if m.KernelBPC(l) >= m.BusBPC(l) {
			t.Fatalf("%v kernel bandwidth must be below bus bandwidth", l)
		}
	}
	// DDR kernels are slower than EDRAM kernels: the basis of the ~30%
	// efficiency figure for spilled volumes (§4).
	if m.KernelBPC(DDR) >= m.KernelBPC(EDRAM) {
		t.Fatal("DDR kernel bandwidth must be below EDRAM")
	}
}

func TestStreamTime(t *testing.T) {
	m := DefaultModel()
	// 16 KB at 16 B/cycle = 1024 cycles = 2.048 us at 500 MHz.
	if got := m.StreamTime(EDRAM, 16384, 2); got != 2048*event.Nanosecond {
		t.Fatalf("StreamTime = %v", got)
	}
}

func TestFitsEDRAM(t *testing.T) {
	// §4: a 4^4 local volume fits easily; 6^4 still fits for most
	// formulations. Wilson DP working set per site ~ (gauge 288 + spinors
	// ~4x192) bytes ~ 1.1 KB/site.
	sitesFour := 4 * 4 * 4 * 4
	if !FitsEDRAM(sitesFour * 1100) {
		t.Fatal("4^4 should fit in EDRAM")
	}
	sitesSix := 6 * 6 * 6 * 6
	if !FitsEDRAM(sitesSix * 1100) {
		t.Fatal("6^4 should fit in EDRAM")
	}
	sitesEight := 8 * 8 * 8 * 8
	if FitsEDRAM(sitesEight * 1100) {
		t.Fatal("8^4 Wilson working set should spill to DDR")
	}
}
