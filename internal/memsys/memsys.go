// Package memsys models the QCDOC node's memory system (§2.1): 4 MBytes
// of on-chip embedded DRAM behind a prefetching controller that feeds the
// PPC 440 data cache 128 bits per processor cycle (8 GB/s at 500 MHz),
// plus an external DDR SDRAM controller on the PLB with 2.6 GB/s and up
// to 2 GB per node.
//
// The package provides two things:
//
//   - NodeMemory: the functional store — a flat 64-bit word address space
//     with EDRAM at low addresses and DDR above it, used by the simulated
//     SCU DMA engines and node programs;
//   - Model: the timing model — sustained bandwidths per level for bulk
//     (DMA/prefetch-friendly) and compute-kernel (load-issue-limited)
//     access, with the prefetching controller's two-stream rule and page
//     miss penalties.
package memsys

import (
	"fmt"

	"qcdoc/internal/event"
)

// Level identifies which memory a kernel's working set lives in.
type Level int

const (
	// EDRAM is the 4 MB on-chip embedded DRAM.
	EDRAM Level = iota
	// DDR is the external DDR SDRAM DIMM.
	DDR
)

func (l Level) String() string {
	if l == EDRAM {
		return "EDRAM"
	}
	return "DDR"
}

// Architectural constants from §2.1.
const (
	// EDRAMBytes is the embedded DRAM capacity: 4 MBytes.
	EDRAMBytes = 4 << 20
	// EDRAMRowBytes is one EDRAM access: 1024 bits plus ECC.
	EDRAMRowBytes = 128
	// DefaultDDRBytes is the default external memory per node. Nodes in
	// the 4096-node machine carried 128 or 256 MBytes (§4); up to 2 GB is
	// supported.
	DefaultDDRBytes = 128 << 20
	// MaxDDRBytes is the architectural limit.
	MaxDDRBytes = 2 << 30
	// PrefetchStreams is the number of concurrent contiguous streams the
	// EDRAM controller prefetches without page-miss stalls (§2.1: "the
	// EDRAM controller maintains two prefetching streams").
	PrefetchStreams = 2
)

// NodeMemory is the functional local memory of one node: EDRAM occupies
// [0, EDRAMBytes), DDR occupies [EDRAMBytes, EDRAMBytes+ddrBytes). It
// implements the SCU's Memory interface.
type NodeMemory struct {
	edram    []uint64
	ddr      []uint64
	ddrBytes uint64
}

// NewNodeMemory allocates a node memory with the given DDR size (0 means
// DefaultDDRBytes). To keep large simulated machines cheap, both regions
// are grown lazily on first touch.
func NewNodeMemory(ddrBytes int) *NodeMemory {
	if ddrBytes == 0 {
		ddrBytes = DefaultDDRBytes
	}
	if ddrBytes < 0 || ddrBytes > MaxDDRBytes {
		panic(fmt.Sprintf("memsys: invalid DDR size %d", ddrBytes))
	}
	return &NodeMemory{ddrBytes: uint64(ddrBytes)}
}

// DDRBytes returns the installed external memory size.
func (m *NodeMemory) DDRBytes() int { return int(m.ddrBytes) }

// ensure grows the backing slice to cover word index i.
func ensure(s []uint64, i int) []uint64 {
	if i < len(s) {
		return s
	}
	n := len(s)
	if n == 0 {
		n = 1024
	}
	for n <= i {
		n *= 2
	}
	grown := make([]uint64, n)
	copy(grown, s)
	return grown
}

// ReadWord returns the 64-bit word at byte address addr (8-aligned).
func (m *NodeMemory) ReadWord(addr uint64) uint64 {
	region, idx := m.locate(addr)
	if idx >= len(*region) {
		return 0 // untouched memory reads as zero
	}
	return (*region)[idx]
}

// WriteWord stores a 64-bit word at byte address addr (8-aligned).
func (m *NodeMemory) WriteWord(addr uint64, w uint64) {
	region, idx := m.locate(addr)
	*region = ensure(*region, idx)
	(*region)[idx] = w
}

func (m *NodeMemory) locate(addr uint64) (*[]uint64, int) {
	if addr%8 != 0 {
		panic(fmt.Sprintf("memsys: unaligned word access at %#x", addr))
	}
	if addr < EDRAMBytes {
		return &m.edram, int(addr / 8)
	}
	off := addr - EDRAMBytes
	if off >= m.ddrBytes {
		panic(fmt.Sprintf("memsys: address %#x beyond installed DDR (%d bytes)", addr, m.ddrBytes))
	}
	return &m.ddr, int(off / 8)
}

// LevelOf reports which memory a byte address falls in.
func LevelOf(addr uint64) Level {
	if addr < EDRAMBytes {
		return EDRAM
	}
	return DDR
}

// DDRBase is the first byte address of external memory.
const DDRBase uint64 = EDRAMBytes

// Model is the memory-system timing model. Two bandwidth regimes per
// level:
//
//   - Bus bandwidth: what the hardware datapath moves for bulk,
//     prefetch-friendly access (DMA, streaming): EDRAM 16 B/cycle
//     (8 GB/s at 500 MHz), DDR 5.2 B/cycle (2.6 GB/s).
//   - Kernel bandwidth: what a compute kernel's load/store pipeline
//     sustains through the data cache, including issue limits and
//     load-use stalls. Calibrated against the paper's measured solver
//     efficiencies (see internal/perf).
type Model struct {
	Clock event.Hz

	// Bus bytes per cycle (peak datapath).
	EDRAMBusBPC float64
	DDRBusBPC   float64

	// Kernel-sustained bytes per cycle for compute access patterns.
	EDRAMKernelBPC float64
	DDRKernelBPC   float64

	// PageMissCycles is charged per row activation when more concurrent
	// streams are in flight than the prefetcher covers.
	PageMissCycles float64
}

// DefaultModel returns the 500 MHz model with the paper's datapath widths
// and the calibrated kernel bandwidths (see internal/perf for the
// calibration discussion).
func DefaultModel() Model {
	return Model{
		Clock:          500 * event.MHz,
		EDRAMBusBPC:    16,   // 8 GB/s at 500 MHz (§2.1)
		DDRBusBPC:      5.2,  // 2.6 GB/s (§2.1)
		EDRAMKernelBPC: 1.75, // calibrated: load-issue + stall limited
		DDRKernelBPC:   1.31, // calibrated: gives ~30% Wilson efficiency from DDR (§4)
		PageMissCycles: 11,
	}
}

// BusBPC returns the bulk bytes-per-cycle for a level.
func (m Model) BusBPC(l Level) float64 {
	if l == EDRAM {
		return m.EDRAMBusBPC
	}
	return m.DDRBusBPC
}

// KernelBPC returns the compute-kernel bytes-per-cycle for a level.
func (m Model) KernelBPC(l Level) float64 {
	if l == EDRAM {
		return m.EDRAMKernelBPC
	}
	return m.DDRKernelBPC
}

// BusBandwidth returns the peak datapath bandwidth in bytes/second.
func (m Model) BusBandwidth(l Level) float64 {
	return m.BusBPC(l) * float64(m.Clock)
}

// StreamCycles models a bulk streaming access of the given byte count
// with nStreams concurrent address streams: at or under the prefetcher's
// stream count the transfer runs at bus speed; beyond it, every row
// activation pays the page-miss penalty (§2.1's motivation for the
// two-stream prefetcher: "for an operation involving a(x) × b(x) ... the
// EDRAM controller will fetch data without suffering excessive page miss
// overheads").
func (m Model) StreamCycles(l Level, bytes int, nStreams int) float64 {
	base := float64(bytes) / m.BusBPC(l)
	if nStreams <= PrefetchStreams {
		return base
	}
	rows := float64(bytes) / EDRAMRowBytes
	return base + rows*m.PageMissCycles
}

// KernelCycles models a compute kernel moving the given bytes through the
// load/store pipeline.
func (m Model) KernelCycles(l Level, bytes int) float64 {
	return float64(bytes) / m.KernelBPC(l)
}

// StreamTime converts StreamCycles to simulated time.
func (m Model) StreamTime(l Level, bytes, nStreams int) event.Time {
	return event.Time(m.StreamCycles(l, bytes, nStreams) * float64(m.Clock.Cycle()))
}

// StreamThen models a bulk prefetch-stream access on the engine's
// continuation tier: done runs when the last word has moved, StreamTime
// from now. This is the zero-process way to overlap a modelled memory
// stream with other activity (the coroutine equivalent is sleeping for
// StreamTime in a spawned process).
func (m Model) StreamThen(eng *event.Engine, l Level, bytes, nStreams int, done func()) {
	eng.After(m.StreamTime(l, bytes, nStreams), done)
}

// FitsEDRAM reports whether a working set of the given bytes is
// EDRAM-resident (§4: "for most of the fermion formulations, a 6^4 local
// volume still fits in our 4 Megabytes of embedded memory").
func FitsEDRAM(bytes int) bool { return bytes <= EDRAMBytes }

// Counters is the memory-system traffic account a node keeps when
// telemetry is enabled: bytes moved per level, plus the prefetcher's view
// of each access — streams the two-stream controller covered versus row
// activations that paid the page-miss penalty. Plain fields, no events:
// Note is called from the (single-threaded) simulation at the moment the
// timing model is consulted, and the registry reads the fields only at
// snapshot time.
type Counters struct {
	EDRAMBytes   uint64
	DDRBytes     uint64
	PrefetchHits uint64
	PageMisses   uint64
}

// Note accounts one modelled access, mirroring Model.StreamCycles'
// classification: at or under PrefetchStreams the access rode the
// prefetcher (one hit per access); beyond it every row activation was a
// page miss. nStreams of 0 (irregular/gather access, charged through the
// kernel-bandwidth path) counts bytes only.
func (c *Counters) Note(l Level, bytes, nStreams int) {
	if l == EDRAM {
		c.EDRAMBytes += uint64(bytes)
	} else {
		c.DDRBytes += uint64(bytes)
	}
	switch {
	case nStreams == 0:
	case nStreams <= PrefetchStreams:
		c.PrefetchHits++
	default:
		c.PageMisses += uint64(bytes) / EDRAMRowBytes
	}
}

// Add accumulates o into c.
func (c *Counters) Add(o *Counters) {
	c.EDRAMBytes += o.EDRAMBytes
	c.DDRBytes += o.DDRBytes
	c.PrefetchHits += o.PrefetchHits
	c.PageMisses += o.PageMisses
}

// Each calls emit for every counter, in a stable order.
func (c *Counters) Each(emit func(name string, v uint64)) {
	emit("edram_bytes", c.EDRAMBytes)
	emit("ddr_bytes", c.DDRBytes)
	emit("prefetch_hits", c.PrefetchHits)
	emit("page_misses", c.PageMisses)
}
