package hmc

import (
	"math"
	"testing"

	"qcdoc/internal/lattice"
)

func smallLattice() lattice.Shape4 { return lattice.Shape4{4, 4, 4, 4} }

func TestHeatbathPreservesSU3(t *testing.T) {
	g := lattice.NewGaugeField(smallLattice())
	hb := &Heatbath{Beta: 5.6, Seed: 1}
	hb.Sweep(g)
	for i := 0; i < 64; i++ {
		if !g.U[i].IsSU3(1e-9) {
			t.Fatalf("link %d left SU(3)", i)
		}
	}
}

func TestHeatbathBitReproducible(t *testing.T) {
	// The single-node version of the paper's five-day verification (§4):
	// re-running the evolution gives a configuration identical in all
	// bits.
	a := lattice.NewGaugeField(smallLattice())
	b := lattice.NewGaugeField(smallLattice())
	ha := &Heatbath{Beta: 5.6, Seed: 42}
	hb := &Heatbath{Beta: 5.6, Seed: 42}
	for i := 0; i < 3; i++ {
		ha.Sweep(a)
		hb.Sweep(b)
	}
	if !a.Equal(b) {
		t.Fatal("re-run evolution not bit-identical")
	}
	// A different seed diverges.
	c := lattice.NewGaugeField(smallLattice())
	hc := &Heatbath{Beta: 5.6, Seed: 43}
	hc.Sweep(c)
	if a.Equal(c) {
		t.Fatal("different seed gave identical configuration")
	}
}

func TestHeatbathEquilibratesFromBothStarts(t *testing.T) {
	// Hot and cold starts converge to the same plaquette: the standard
	// thermalization check.
	beta := 5.6
	cold := lattice.NewGaugeField(smallLattice())
	hot := lattice.NewGaugeField(smallLattice())
	hot.Randomize(7)
	hc := &Heatbath{Beta: beta, Seed: 100}
	hh := &Heatbath{Beta: beta, Seed: 200}
	for i := 0; i < 30; i++ {
		hc.Sweep(cold)
		hh.Sweep(hot)
	}
	// Average over a few more sweeps.
	avg := func(h *Heatbath, g *lattice.GaugeField) float64 {
		sum := 0.0
		n := 10
		for i := 0; i < n; i++ {
			h.Sweep(g)
			sum += g.Plaquette()
		}
		return sum / float64(n)
	}
	pc := avg(hc, cold)
	ph := avg(hh, hot)
	if math.Abs(pc-ph) > 0.02 {
		t.Fatalf("cold start plaquette %.4f vs hot start %.4f", pc, ph)
	}
	// At beta = 5.6 the plaquette is around 0.50 (known SU(3) value).
	if pc < 0.4 || pc > 0.6 {
		t.Fatalf("plaquette %.4f out of physical range at beta=5.6", pc)
	}
}

func TestStrongCouplingPlaquette(t *testing.T) {
	// Leading strong-coupling expansion: <P> = beta/18 + O(beta^2) for
	// SU(3). At beta = 0.5 expect ~0.0278.
	beta := 0.5
	g := lattice.NewGaugeField(smallLattice())
	h := &Heatbath{Beta: beta, Seed: 11}
	for i := 0; i < 20; i++ {
		h.Sweep(g)
	}
	sum := 0.0
	n := 20
	for i := 0; i < n; i++ {
		h.Sweep(g)
		sum += g.Plaquette()
	}
	p := sum / float64(n)
	want := beta / 18
	if math.Abs(p-want) > 0.01 {
		t.Fatalf("strong-coupling plaquette %.4f, want ~%.4f", p, want)
	}
}

func TestOverrelaxPreservesAction(t *testing.T) {
	g := lattice.NewGaugeField(smallLattice())
	h := &Heatbath{Beta: 5.6, Seed: 5}
	for i := 0; i < 5; i++ {
		h.Sweep(g)
	}
	before := g.Plaquette()
	cfg := g.Clone()
	Overrelax(g)
	after := g.Plaquette()
	if math.Abs(before-after) > 1e-8 {
		t.Fatalf("overrelaxation changed the action: %.10f -> %.10f", before, after)
	}
	if g.Equal(cfg) {
		t.Fatal("overrelaxation did not move the configuration")
	}
}

func TestMomentaKineticPositive(t *testing.T) {
	p := NewMomenta(smallLattice())
	p.Gaussian(1, 0)
	k := p.Kinetic()
	if k <= 0 {
		t.Fatalf("kinetic energy %v", k)
	}
	// Expectation: 8 independent Gaussian algebra directions per link
	// contribute 1/2 each: K ≈ 4 * Ndim * V.
	want := 4.0 * lattice.Ndim * float64(smallLattice().Volume())
	if math.Abs(k-want)/want > 0.1 {
		t.Fatalf("kinetic = %v, want ~%v", k, want)
	}
}

func TestLeapfrogReversible(t *testing.T) {
	g := lattice.NewGaugeField(smallLattice())
	h := &Heatbath{Beta: 5.6, Seed: 9}
	for i := 0; i < 3; i++ {
		h.Sweep(g)
	}
	orig := g.Clone()
	p := NewMomenta(g.L)
	p.Gaussian(2, 0)
	Integrate(g, p, 5.6, 0.05, 10)
	// Flip momenta and integrate back.
	for i := range p.P {
		p.P[i] = p.P[i].Scale(-1)
	}
	Integrate(g, p, 5.6, 0.05, 10)
	maxDiff := 0.0
	for i := range g.U {
		if d := g.U[i].FrobeniusDistance(orig.U[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-8 {
		t.Fatalf("leapfrog not reversible: max link distance %g", maxDiff)
	}
}

func TestLeapfrogEnergyScaling(t *testing.T) {
	// |ΔH| of a leapfrog trajectory scales as dt² at fixed trajectory
	// length — the standard integrator-order test, and a sharp check of
	// the force/action consistency.
	g0 := lattice.NewGaugeField(lattice.Shape4{2, 2, 2, 4})
	h := &Heatbath{Beta: 5.6, Seed: 13}
	for i := 0; i < 5; i++ {
		h.Sweep(g0)
	}
	beta := 5.6
	deltaH := func(dt float64, steps int) float64 {
		g := g0.Clone()
		p := NewMomenta(g.L)
		p.Gaussian(3, 0)
		before := Action(g, beta) + p.Kinetic()
		Integrate(g, p, beta, dt, steps)
		after := Action(g, beta) + p.Kinetic()
		return math.Abs(after - before)
	}
	d1 := deltaH(0.08, 10)
	d2 := deltaH(0.04, 20)
	ratio := d1 / d2
	// Second-order integrator: halving dt should reduce |ΔH| by ~4.
	if ratio < 2.5 || ratio > 6.5 {
		t.Fatalf("ΔH scaling ratio %.2f (d1=%g d2=%g), want ~4", ratio, d1, d2)
	}
}

func TestHMCAcceptsAndEquilibrates(t *testing.T) {
	g := lattice.NewGaugeField(lattice.Shape4{2, 2, 2, 4})
	hmc := &HMC{Beta: 5.6, Seed: 17, StepSize: 0.05, Steps: 10}
	for i := 0; i < 20; i++ {
		hmc.Run(g)
	}
	if hmc.Accepted == 0 {
		t.Fatal("no trajectory accepted")
	}
	rate := float64(hmc.Accepted) / float64(hmc.Accepted+hmc.Rejected)
	if rate < 0.5 {
		t.Fatalf("acceptance rate %.2f too low for this step size", rate)
	}
	for i := 0; i < 16; i++ {
		if !g.U[i].IsSU3(1e-8) {
			t.Fatal("HMC left SU(3)")
		}
	}
}

func TestHMCBitReproducible(t *testing.T) {
	run := func() *lattice.GaugeField {
		g := lattice.NewGaugeField(lattice.Shape4{2, 2, 2, 2})
		hmc := &HMC{Beta: 5.6, Seed: 21, StepSize: 0.05, Steps: 8}
		for i := 0; i < 5; i++ {
			hmc.Run(g)
		}
		return g
	}
	a := run()
	b := run()
	if !a.Equal(b) {
		t.Fatal("HMC evolution not bit-reproducible")
	}
}

func TestHMCAgreesWithHeatbath(t *testing.T) {
	// Two independent algorithms sampling the same distribution must
	// produce the same mean plaquette — a strong cross-validation.
	if testing.Short() {
		t.Skip("statistics run")
	}
	beta := 5.0
	l := lattice.Shape4{4, 4, 4, 4}
	gHB := lattice.NewGaugeField(l)
	hb := &Heatbath{Beta: beta, Seed: 31}
	for i := 0; i < 30; i++ {
		hb.Sweep(gHB)
	}
	pHB, n := 0.0, 30
	for i := 0; i < n; i++ {
		hb.Sweep(gHB)
		pHB += gHB.Plaquette()
	}
	pHB /= float64(n)

	// Start the HMC from an independently thermalized configuration (a
	// cold start at this volume rejects until a rare fluctuation; the
	// cross-check only concerns equilibrium averages).
	gMC := lattice.NewGaugeField(l)
	warm := &Heatbath{Beta: beta, Seed: 99}
	for i := 0; i < 20; i++ {
		warm.Sweep(gMC)
	}
	mc := &HMC{Beta: beta, Seed: 37, StepSize: 0.04, Steps: 12}
	for i := 0; i < 20; i++ {
		mc.Run(gMC)
	}
	pMC, m := 0.0, 40
	for i := 0; i < m; i++ {
		mc.Run(gMC)
		pMC += gMC.Plaquette()
	}
	pMC /= float64(m)
	if math.Abs(pHB-pMC) > 0.03 {
		t.Fatalf("heatbath plaquette %.4f vs HMC %.4f", pHB, pMC)
	}
}

func TestActionMatchesPlaquette(t *testing.T) {
	g := lattice.NewGaugeField(smallLattice())
	// Cold: S = -beta * 1 * 6V.
	want := -5.6 * 6 * float64(smallLattice().Volume())
	if got := Action(g, 5.6); math.Abs(got-want) > 1e-6 {
		t.Fatalf("cold action = %v, want %v", got, want)
	}
}
