package hmc

import (
	"math"

	"qcdoc/internal/latmath"
	"qcdoc/internal/lattice"
	"qcdoc/internal/rng"
)

// Momenta are the conjugate momenta of HMC: one traceless anti-Hermitian
// matrix per link.
type Momenta struct {
	L lattice.Shape4
	P []latmath.Mat3
}

// NewMomenta allocates zero momenta.
func NewMomenta(l lattice.Shape4) *Momenta {
	return &Momenta{L: l, P: make([]latmath.Mat3, lattice.Ndim*l.Volume())}
}

// Gaussian fills the momenta with the HMC heat-bath distribution
// exp(+1/2 Σ tr π²) (π anti-Hermitian makes tr π² negative), drawing
// from per-link streams keyed by (seed, trajectory, link).
func (m *Momenta) Gaussian(seed uint64, trajectory int) {
	v := m.L.Volume()
	for idx := 0; idx < v; idx++ {
		for mu := 0; mu < lattice.Ndim; mu++ {
			st := linkStream(seed^0xBADC0FFEE, trajectory, uint64(idx)*lattice.Ndim+uint64(mu))
			m.P[lattice.Ndim*idx+mu] = randomAlgebra(st)
		}
	}
}

// generators is an orthonormal basis of Hermitian traceless matrices,
// tr(T_a T_b) = δ_ab: the Gell-Mann matrices divided by √2.
var generators = buildGenerators()

func buildGenerators() [8]latmath.Mat3 {
	s := complex(1/math.Sqrt2, 0)
	i := complex(0, 1)
	var g [8]latmath.Mat3
	g[0] = latmath.Mat3{{0, 1, 0}, {1, 0, 0}, {0, 0, 0}}
	g[1] = latmath.Mat3{{0, -i, 0}, {i, 0, 0}, {0, 0, 0}}
	g[2] = latmath.Mat3{{1, 0, 0}, {0, -1, 0}, {0, 0, 0}}
	g[3] = latmath.Mat3{{0, 0, 1}, {0, 0, 0}, {1, 0, 0}}
	g[4] = latmath.Mat3{{0, 0, -i}, {0, 0, 0}, {i, 0, 0}}
	g[5] = latmath.Mat3{{0, 0, 0}, {0, 0, 1}, {0, 1, 0}}
	g[6] = latmath.Mat3{{0, 0, 0}, {0, 0, -i}, {0, i, 0}}
	d := complex(1/math.Sqrt(3), 0)
	g[7] = latmath.Mat3{{d, 0, 0}, {0, d, 0}, {0, 0, -2 * d}}
	for a := range g {
		g[a] = g[a].Scale(s)
	}
	return g
}

// randomAlgebra draws a traceless anti-Hermitian matrix π = i Σ c_a T_a
// with c_a ~ N(0,1), the momentum heat-bath distribution
// exp(+1/2 tr π²) = exp(-1/2 Σ c_a²).
func randomAlgebra(st *rng.Stream) latmath.Mat3 {
	var h latmath.Mat3
	for a := 0; a < 8; a++ {
		h = h.Add(generators[a].Scale(complex(st.NormFloat64(), 0)))
	}
	return h.Scale(1i) // anti-Hermitian
}

// Kinetic returns the kinetic energy K = -1/2 Σ tr π² (positive for
// anti-Hermitian π).
func (m *Momenta) Kinetic() float64 {
	var k float64
	for i := range m.P {
		p := m.P[i]
		k += -real(p.Mul(p).Trace())
	}
	return k / 2
}

// Force returns the HMC force for link (x,mu): -(beta/3) times the
// traceless anti-Hermitian projection of U_mu(x) * Staple(x,mu), the
// derivative of the Wilson action matching the convention
// dU/dt = pi U.
func Force(g *lattice.GaugeField, x lattice.Site, mu int, beta float64) latmath.Mat3 {
	uv := g.Link(x, mu).Mul(g.Staple(x, mu))
	return uv.TracelessAntiHermitian().Scale(complex(-beta/3, 0))
}

// HMC evolves the gauge field by hybrid Monte Carlo trajectories.
type HMC struct {
	Beta       float64
	Seed       uint64
	StepSize   float64
	Steps      int
	Trajectory int // completed trajectories; keys the random streams

	// Statistics.
	Accepted, Rejected int
	LastDeltaH         float64
}

// leapfrog integrates (g, p) forward through n steps of size dt.
func leapfrog(g *lattice.GaugeField, p *Momenta, beta, dt float64, n int) {
	l := g.L
	v := l.Volume()
	halfKick := func(scale float64) {
		for idx := 0; idx < v; idx++ {
			x := l.SiteOf(idx)
			for mu := 0; mu < lattice.Ndim; mu++ {
				f := Force(g, x, mu, beta)
				p.P[lattice.Ndim*idx+mu] = p.P[lattice.Ndim*idx+mu].Add(f.Scale(complex(scale*dt, 0)))
			}
		}
	}
	drift := func() {
		for idx := 0; idx < v; idx++ {
			x := l.SiteOf(idx)
			for mu := 0; mu < lattice.Ndim; mu++ {
				u := latmath.Exp(p.P[lattice.Ndim*idx+mu].Scale(complex(dt, 0))).Mul(g.Link(x, mu))
				g.SetLink(x, mu, u.Reunitarize())
			}
		}
	}
	halfKick(0.5)
	for step := 0; step < n; step++ {
		drift()
		if step != n-1 {
			halfKick(1)
		}
	}
	halfKick(0.5)
}

// Integrate runs the leapfrog on (g, p) without any accept/reject —
// exposed for the reversibility and energy-conservation tests.
func Integrate(g *lattice.GaugeField, p *Momenta, beta, dt float64, n int) {
	leapfrog(g, p, beta, dt, n)
}

// Trajectory runs one HMC trajectory with Metropolis accept/reject and
// reports whether it was accepted.
func (h *HMC) Run(g *lattice.GaugeField) bool {
	p := NewMomenta(g.L)
	p.Gaussian(h.Seed, h.Trajectory)
	h.Trajectory++
	hBefore := Action(g, h.Beta) + p.Kinetic()
	trial := g.Clone()
	leapfrog(trial, p, h.Beta, h.StepSize, h.Steps)
	hAfter := Action(trial, h.Beta) + p.Kinetic()
	h.LastDeltaH = hAfter - hBefore
	st := rng.New(h.Seed^0xACCE97, uint64(h.Trajectory))
	if h.LastDeltaH <= 0 || st.Float64() < math.Exp(-h.LastDeltaH) {
		copy(g.U, trial.U)
		h.Accepted++
		return true
	}
	h.Rejected++
	return false
}
