// Package hmc implements SU(3) gauge-field evolution: the importance
// sampling of the Feynman path integral that QCDOC runs for weeks at a
// time (§4's verification was "a five day simulation ... redone, with
// the requirement that the resulting QCD configuration be identical in
// all bits"). Three update algorithms are provided for the quenched
// Wilson gauge action:
//
//   - Cabibbo-Marinari pseudo-heatbath with Kennedy-Pendleton SU(2)
//     sampling;
//   - SU(2)-subgroup overrelaxation (microcanonical, action preserving);
//   - hybrid Monte Carlo with leapfrog integration — the algorithm
//     class used for dynamical-fermion production running.
//
// All randomness flows through counter-based per-link streams keyed by
// (seed, sweep, link), so an evolution is bit-reproducible and
// independent of traversal bookkeeping — the property experiment E10
// verifies.
package hmc

import (
	"math"

	"qcdoc/internal/latmath"
	"qcdoc/internal/lattice"
	"qcdoc/internal/rng"
)

// Wilson gauge action: S = -(beta/3) Σ_plaquettes Re tr U_p.

// Heatbath performs Cabibbo-Marinari pseudo-heatbath sweeps.
type Heatbath struct {
	Beta float64
	Seed uint64
	// Sweeps counts completed sweeps; it keys the per-sweep random
	// streams.
	Sweeps int
}

// linkStream derives the random stream for one link update in one sweep.
func linkStream(seed uint64, sweep int, linkID uint64) *rng.Stream {
	return rng.New(seed, uint64(sweep)*0x100000001+linkID)
}

// Sweep updates every link once, sweeping the three SU(2) subgroups.
func (h *Heatbath) Sweep(g *lattice.GaugeField) {
	l := g.L
	v := l.Volume()
	for idx := 0; idx < v; idx++ {
		x := l.SiteOf(idx)
		for mu := 0; mu < lattice.Ndim; mu++ {
			st := linkStream(h.Seed, h.Sweeps, uint64(idx)*lattice.Ndim+uint64(mu))
			staple := g.Staple(x, mu)
			u := g.Link(x, mu)
			for sg := 0; sg < latmath.NumSU2Subgroups; sg++ {
				w := u.Mul(staple) // weight ∝ exp((β/3) Re tr [a U V])
				what, k := latmath.ExtractSU2(w, sg)
				if k == 0 {
					continue
				}
				b := kennedyPendleton(st, 2*h.Beta*k/3)
				a := b.Mul(what.Conj())
				u = latmath.EmbedSU2(a, sg).Mul(u)
			}
			g.SetLink(x, mu, u.Reunitarize())
		}
	}
	h.Sweeps++
}

// kennedyPendleton samples b in SU(2) with weight exp(alpha * b0) over
// the Haar measure (alpha = 2 beta k / 3), using the Kennedy-Pendleton
// rejection method, then a uniform direction for the vector part.
func kennedyPendleton(st *rng.Stream, alpha float64) latmath.SU2 {
	var x float64
	for {
		r1 := 1 - st.Float64() // in (0,1]
		r2 := st.Float64()
		r3 := 1 - st.Float64()
		c := math.Cos(2 * math.Pi * r2)
		x = -(math.Log(r1) + c*c*math.Log(r3)) / alpha
		r4 := st.Float64()
		if r4*r4 <= 1-x/2 {
			break
		}
	}
	b0 := 1 - x
	if b0 < -1 {
		b0 = -1
	}
	norm := math.Sqrt(max(0, 1-b0*b0))
	// Uniform direction on the sphere.
	cosT := 2*st.Float64() - 1
	sinT := math.Sqrt(max(0, 1-cosT*cosT))
	phi := 2 * math.Pi * st.Float64()
	return latmath.SU2{
		A0: b0,
		A1: norm * sinT * math.Cos(phi),
		A2: norm * sinT * math.Sin(phi),
		A3: norm * cosT,
	}
}

// Overrelax performs one microcanonical overrelaxation sweep: each SU(2)
// subgroup is reflected about its staple projection, changing the
// configuration while preserving the action exactly.
func Overrelax(g *lattice.GaugeField) {
	l := g.L
	v := l.Volume()
	for idx := 0; idx < v; idx++ {
		x := l.SiteOf(idx)
		for mu := 0; mu < lattice.Ndim; mu++ {
			u := g.Link(x, mu)
			staple := g.Staple(x, mu)
			for sg := 0; sg < latmath.NumSU2Subgroups; sg++ {
				w := u.Mul(staple)
				what, k := latmath.ExtractSU2(w, sg)
				if k == 0 {
					continue
				}
				refl := what.Conj().Mul(what.Conj())
				u = latmath.EmbedSU2(refl, sg).Mul(u)
			}
			g.SetLink(x, mu, u.Reunitarize())
		}
	}
}

// Action returns the Wilson gauge action S = -(beta/3) Σ_p Re tr U_p.
func Action(g *lattice.GaugeField, beta float64) float64 {
	// Plaquette() is normalized by 3 and by the plaquette count.
	nPlaq := float64(g.L.Volume() * 6)
	return -beta * g.Plaquette() * nPlaq
}
