package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 7)
	b := New(42, 7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestStreamIndependenceQuick(t *testing.T) {
	// Different ids (or seeds) give different sequences.
	f := func(seed, id1, id2 uint64) bool {
		if id1 == id2 {
			return true
		}
		a, b := New(seed, id1), New(seed, id2)
		same := 0
		for i := 0; i < 16; i++ {
			if a.Uint64() == b.Uint64() {
				same++
			}
		}
		return same == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeedSeparation(t *testing.T) {
	a, b := New(1, 0), New(2, 0)
	if a.Uint64() == b.Uint64() {
		t.Fatal("different seeds gave identical first draw")
	}
}

func TestSkipMatchesDraws(t *testing.T) {
	a := New(5, 5)
	b := New(5, 5)
	for i := 0; i < 17; i++ {
		a.Uint64()
	}
	b.Skip(17)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Skip != drawing")
	}
	if a.Pos() != 18 {
		t.Fatalf("pos = %d", a.Pos())
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(9, 9)
	a.Uint64()
	c := a.Clone()
	va, vc := a.Uint64(), c.Uint64()
	if va != vc {
		t.Fatal("clone not at same position")
	}
	a.Uint64()
	if a.Pos() == c.Pos() {
		t.Fatal("clone shares state")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3, 1)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v", v)
		}
	}
}

func TestUniformMoments(t *testing.T) {
	s := New(11, 0)
	n := 50000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.Float64()
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v", mean)
	}
	varr := sum2/float64(n) - mean*mean
	if math.Abs(varr-1.0/12) > 0.005 {
		t.Fatalf("variance = %v", varr)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(13, 0)
	n := 50000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / float64(n)
	varr := sum2/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("mean = %v", mean)
	}
	if math.Abs(varr-1) > 0.05 {
		t.Fatalf("variance = %v", varr)
	}
}

func TestBitBalance(t *testing.T) {
	// Each output bit should be set about half the time.
	s := New(17, 17)
	n := 20000
	counts := [64]int{}
	for i := 0; i < n; i++ {
		v := s.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<b) != 0 {
				counts[b]++
			}
		}
	}
	for b, c := range counts {
		frac := float64(c) / float64(n)
		if frac < 0.46 || frac > 0.54 {
			t.Fatalf("bit %d set fraction %v", b, frac)
		}
	}
}

func TestIntn(t *testing.T) {
	s := New(19, 0)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("only %d distinct values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	s.Intn(0)
}
