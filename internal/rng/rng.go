// Package rng provides the deterministic, counter-based parallel random
// number generator used throughout the simulator. Every lattice site (or
// node) owns an independent stream derived from a global seed and its
// site identifier, so random fields are identical no matter how the
// lattice is partitioned across simulated nodes — the property behind
// the paper's bit-identical re-run verification (§4, experiment E10).
package rng

import "math"

// Stream is an independent random stream. The zero value is a valid
// stream with seed 0, id 0.
type Stream struct {
	key uint64
	ctr uint64
}

// mix64 is the SplitMix64 finalizer: a bijective avalanche over 64 bits.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// New derives the stream for entity id under the global seed. Streams
// with different (seed, id) pairs are statistically independent.
func New(seed, id uint64) *Stream {
	key := mix64(mix64(seed) ^ mix64(id^0xA5A5A5A5A5A5A5A5))
	return &Stream{key: key}
}

// Clone returns a copy of the stream at its current position.
func (s *Stream) Clone() *Stream { c := *s; return &c }

// Skip advances the stream by n draws without generating them.
func (s *Stream) Skip(n uint64) { s.ctr += n }

// Pos returns the number of values drawn so far.
func (s *Stream) Pos() uint64 { return s.ctr }

// Uint64 returns the next 64 random bits.
func (s *Stream) Uint64() uint64 {
	s.ctr++
	return mix64(s.key ^ mix64(s.ctr))
}

// Float64 returns the next uniform value in [0, 1) with 53 bits of
// precision.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal draw (Box-Muller; one value per
// call, the partner value is discarded to keep the stream position a
// simple function of the draw count).
func (s *Stream) NormFloat64() float64 {
	var u float64
	for {
		u = s.Float64()
		if u > 0 {
			break
		}
	}
	v := s.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}

// Intn returns a uniform integer in [0, n).
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}
