// Package perf is the analytic performance model for paper-scale QCDOC
// machines (128 to 12,288 nodes): it combines the calibrated node
// compute model (internal/ppc440 + internal/memsys), the operator cost
// descriptors (internal/fermion), and the network parameters
// (internal/scu, internal/hssl) into per-iteration solver estimates —
// sustained Gflops, efficiency, communication fractions, global-sum
// latencies and hard-scaling curves. The small-machine functional
// simulation (internal/core) validates this model's ingredients; the
// model extends them to machine sizes that are impractical to simulate
// packet by packet.
package perf

import (
	"fmt"

	"qcdoc/internal/event"
	"qcdoc/internal/fermion"
	"qcdoc/internal/lattice"
	"qcdoc/internal/memsys"
	"qcdoc/internal/ppc440"
)

// Network constants derived from §2.2.
const (
	// LinkPayloadFraction is the data fraction of a 72-bit frame.
	LinkPayloadFraction = 64.0 / 72.0
	// NearestNeighbourLatency is the memory-to-memory first-word time at
	// 500 MHz (600 ns); it scales with the clock as 300 cycles.
	NearestNeighbourLatencyCycles = 300
	// CutThroughBits is the pass-through granularity of the SCU global
	// mode: only 8 bits are assembled before forwarding.
	CutThroughBits = 8
	// WireFlight is the modelled node-to-node time of flight.
	WireFlight = 5 * event.Nanosecond
	// EthernetLatency is the conventional-network comparison point the
	// paper quotes: "5-10 us just to begin a transfer" (§2.2).
	EthernetLatencyLow  = 5 * event.Microsecond
	EthernetLatencyHigh = 10 * event.Microsecond
)

// LinkPayloadBandwidth is the per-direction per-link payload rate in
// bytes/second at the given clock (55.5 MB/s at 500 MHz).
func LinkPayloadBandwidth(clock event.Hz) float64 {
	return float64(clock) / 8 * LinkPayloadFraction
}

// AggregateLinkBandwidth is the §2.2 total: 24 connections (~1.3 GB/s at
// 500 MHz).
func AggregateLinkBandwidth(clock event.Hz) float64 {
	return 24 * LinkPayloadBandwidth(clock)
}

// TransferTime is the modelled memory-to-memory time for n 64-bit words
// to a nearest neighbour: the 600 ns first-word latency plus
// serialization of the remaining payload (E4: 24 words = 600 ns +
// 3.3 us).
func TransferTime(clock event.Hz, words int) event.Time {
	if words <= 0 {
		return 0
	}
	first := clock.Cycles(NearestNeighbourLatencyCycles)
	rest := clock.Cycles(int64(words-1) * 72)
	return first + rest
}

// GsumHops returns the hop count of a dimension-by-dimension global sum
// over a 4-D grid: Nx+Ny+Nz+Nt-4 in single mode, halved by the doubled
// SCU streams (§2.2).
func GsumHops(grid lattice.Shape4, doubled bool) int {
	hops := 0
	for _, n := range grid {
		if n <= 1 {
			continue
		}
		if doubled {
			hops += n / 2
		} else {
			hops += n - 1
		}
	}
	return hops
}

// GsumLatency models the global-sum time: per hop, the SCU pass-through
// re-launches the word after CutThroughBits plus the wire flight, and
// each dimension pays one word-assembly on entry.
func GsumLatency(clock event.Hz, grid lattice.Shape4, doubled bool) event.Time {
	hop := clock.Cycles(CutThroughBits) + WireFlight
	dims := 0
	for _, n := range grid {
		if n > 1 {
			dims++
		}
	}
	// Per dimension: inject (72-bit frame) + hops x cut-through + local
	// accumulation overhead (~50 cycles).
	perDim := clock.Cycles(72) + clock.Cycles(50)
	return event.Time(GsumHops(grid, doubled))*hop + event.Time(dims)*perDim
}

// Config describes an estimated solver run.
type Config struct {
	Clock   event.Hz
	Grid    lattice.Shape4 // 4-D process grid (the folded machine)
	Local   lattice.Shape4 // local volume per node
	Kind    fermion.OpKind
	Prec    fermion.Precision
	Ls      int  // DWF fifth dimension (ignored otherwise)
	Overlap bool // overlap communication with compute (the QCDOC kernels do)
	Doubled bool // use doubled-mode global sums
}

// DefaultConfig returns the paper's benchmark point: 4^4 local volume,
// double precision, overlapping kernels at the given clock.
func DefaultConfig(kind fermion.OpKind, grid lattice.Shape4, clock event.Hz) Config {
	return Config{
		Clock:   clock,
		Grid:    grid,
		Local:   lattice.Shape4{4, 4, 4, 4},
		Kind:    kind,
		Prec:    fermion.Double,
		Ls:      fermion.DefaultLs,
		Overlap: true,
		Doubled: true,
	}
}

// Estimate is the model's output for one CG iteration.
type Estimate struct {
	Level        memsys.Level
	Nodes        int
	ComputeTime  event.Time // per-node compute per iteration
	CommTime     event.Time // non-hidden halo time per iteration
	CommRawTime  event.Time // halo time before overlap
	GsumTime     event.Time // reduction time per iteration
	IterTime     event.Time
	FlopsPerIter float64 // useful flops per node per iteration
	Sustained    float64 // flops/s per node
	Efficiency   float64 // fraction of peak
	MachineGflop float64 // machine-wide sustained, Gflops
}

// slices returns the per-4D-site multiplier (Ls for DWF, 1 otherwise).
func (c Config) slices() int {
	if c.Kind == fermion.DWFKind {
		if c.Ls > 0 {
			return c.Ls
		}
		return fermion.DefaultLs
	}
	return 1
}

// WorkingLevel reports where the local working set lives.
func (c Config) WorkingLevel() memsys.Level {
	return fermion.WorkingSetLevel(c.Kind, c.Prec, c.Local.Volume()*c.slices())
}

// CGIteration estimates one CG iteration.
func CGIteration(c Config) Estimate {
	cpu := ppc440.At(c.Clock)
	mem := memsys.DefaultModel()
	mem.Clock = c.Clock
	level := c.WorkingLevel()
	vLocal := float64(c.Local.Volume() * c.slices())

	var cycles float64
	if c.Kind == fermion.DWFKind {
		ls := c.slices()
		dslash := cpu.KernelCycles(fermion.DWFSiteCost(c.Prec, level, ls), mem)
		axpy := cpu.KernelCycles(fermion.AXPYCost(c.Kind, c.Prec, level), mem)
		dot := cpu.KernelCycles(fermion.DotCost(c.Kind, c.Prec, level), mem)
		cycles = 2*dslash + 3*axpy + 2*dot
	} else {
		cycles = fermion.CGIterationCycles(cpu, mem, c.Kind, c.Prec, level)
	}
	e := Estimate{Level: level, Nodes: c.Grid.Volume()}
	e.ComputeTime = event.Time(cycles * vLocal * float64(c.Clock.Cycle()))

	// Halo time: per dslash, every distributed direction transfers both
	// faces concurrently over independent links; the slowest direction
	// gates. Two dslash applications per CG iteration.
	linkBW := LinkPayloadBandwidth(c.Clock) // bytes/s per direction
	var worst event.Time
	for mu := 0; mu < lattice.Ndim; mu++ {
		if c.Grid[mu] <= 1 {
			continue
		}
		bytes := float64(lattice.FaceVolume(c.Local, mu)*c.slices()) *
			fermion.CommBytesPerFaceSite(c.Kind, c.Prec)
		t := c.Clock.Cycles(NearestNeighbourLatencyCycles) +
			event.Time(bytes/linkBW*1e12)
		if t > worst {
			worst = t
		}
	}
	e.CommRawTime = 2 * worst

	// Reductions: CG needs two scalar reductions per iteration; our
	// distributed dot products sum real and imaginary parts separately,
	// giving three sums in the functional implementation — the model
	// follows the hardware-friendly count of 3.
	e.GsumTime = 3 * GsumLatency(c.Clock, c.Grid, c.Doubled)

	if c.Overlap {
		// DMA engines move faces while the CPU works the volume.
		if e.CommRawTime > e.ComputeTime {
			e.CommTime = e.CommRawTime - e.ComputeTime
			e.IterTime = e.CommRawTime + e.GsumTime
		} else {
			e.CommTime = 0
			e.IterTime = e.ComputeTime + e.GsumTime
		}
	} else {
		e.CommTime = e.CommRawTime
		e.IterTime = e.ComputeTime + e.CommRawTime + e.GsumTime
	}

	e.FlopsPerIter = fermion.CGIterationFlopsPerSite(c.Kind) * vLocal
	if e.IterTime > 0 {
		e.Sustained = e.FlopsPerIter / e.IterTime.Seconds()
	}
	peak := 2 * float64(c.Clock)
	e.Efficiency = e.Sustained / peak
	e.MachineGflop = e.Sustained * float64(e.Nodes) / 1e9
	return e
}

// DslashEfficiency is the kernel-only (no solver linalg, no comm)
// efficiency — the quantity the paper's 40/38/46.5% table reports for
// EDRAM-resident 4^4 volumes where communication hides fully under
// compute.
func DslashEfficiency(kind fermion.OpKind, prec fermion.Precision, level memsys.Level, clock event.Hz) float64 {
	cpu := ppc440.At(clock)
	mem := memsys.DefaultModel()
	mem.Clock = clock
	return cpu.Efficiency(fermion.SiteCost(kind, prec, level), mem)
}

// HardScalingPoint is one point of the fixed-problem scaling curve.
type HardScalingPoint struct {
	Nodes      int
	Grid       lattice.Shape4
	Local      lattice.Shape4
	Estimate   Estimate
	CommFrac   float64 // non-hidden comm+gsum fraction of iteration time
	SpeedupVs1 float64 // machine sustained relative to one node
}

// HardScaling sweeps node counts for a fixed global lattice (§1's hard
// scaling: "adding more nodes generally increases the ratio of
// inter-node communication to local floating point operations").
func HardScaling(kind fermion.OpKind, global lattice.Shape4, grids []lattice.Shape4, clock event.Hz) ([]HardScalingPoint, error) {
	var out []HardScalingPoint
	var base float64
	for _, grid := range grids {
		dec, err := lattice.NewDecomp(global, grid)
		if err != nil {
			return nil, fmt.Errorf("perf: grid %v: %w", grid, err)
		}
		cfg := Config{
			Clock: clock, Grid: grid, Local: dec.Local,
			Kind: kind, Prec: fermion.Double, Ls: fermion.DefaultLs,
			Overlap: true, Doubled: true,
		}
		est := CGIteration(cfg)
		pt := HardScalingPoint{
			Nodes: grid.Volume(), Grid: grid, Local: dec.Local, Estimate: est,
		}
		if est.IterTime > 0 {
			pt.CommFrac = float64(est.CommTime+est.GsumTime) / float64(est.IterTime)
		}
		machine := est.Sustained * float64(grid.Volume())
		if base == 0 {
			base = machine / float64(grid.Volume()) // one-node rate
		}
		pt.SpeedupVs1 = machine / base
		out = append(out, pt)
	}
	return out, nil
}

// SustainedMachine estimates the sustained machine performance in
// Gflops for a production configuration (§4's price/performance uses a
// 45% solver efficiency at the machine scale).
func SustainedMachine(nodes int, clock event.Hz, efficiency float64) float64 {
	peakNode := 2 * float64(clock)
	return peakNode * efficiency * float64(nodes) / 1e9
}
