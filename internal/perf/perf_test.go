package perf

import (
	"math"
	"testing"

	"qcdoc/internal/event"
	"qcdoc/internal/fermion"
	"qcdoc/internal/lattice"
	"qcdoc/internal/memsys"
)

func TestLinkBandwidths(t *testing.T) {
	// E6: ~55.5 MB/s per direction, ~1.33 GB/s aggregate at 500 MHz.
	per := LinkPayloadBandwidth(500 * event.MHz)
	if per < 55e6 || per > 56e6 {
		t.Fatalf("per-link = %g", per)
	}
	agg := AggregateLinkBandwidth(500 * event.MHz)
	if agg < 1.3e9 || agg > 1.37e9 {
		t.Fatalf("aggregate = %g, want ~1.33e9", agg)
	}
}

func TestTransferTime(t *testing.T) {
	// E4: 1 word = 600 ns; 24 words = 600 ns + 23*144 ns = 3.912 us; and
	// far below the Ethernet comparison point.
	clock := 500 * event.MHz
	if got := TransferTime(clock, 1); got != 600*event.Nanosecond {
		t.Fatalf("1 word = %v", got)
	}
	if got := TransferTime(clock, 24); got != 3912*event.Nanosecond {
		t.Fatalf("24 words = %v", got)
	}
	if TransferTime(clock, 1) >= EthernetLatencyLow {
		t.Fatal("SCU latency not below Ethernet startup")
	}
	if TransferTime(clock, 0) != 0 {
		t.Fatal("0 words should take no time")
	}
}

func TestGsumHops(t *testing.T) {
	// E5: Nx+Ny+Nz+Nt-4 hops, halved by the doubled mode.
	grid := lattice.Shape4{8, 8, 8, 8}
	if got := GsumHops(grid, false); got != 28 {
		t.Fatalf("single hops = %d, want 28", got)
	}
	if got := GsumHops(grid, true); got != 16 {
		t.Fatalf("doubled hops = %d, want 16", got)
	}
	// Unused dimensions don't contribute.
	if got := GsumHops(lattice.Shape4{4, 2, 1, 1}, false); got != 4 {
		t.Fatalf("hops = %d", got)
	}
	if GsumLatency(500*event.MHz, grid, true) >= GsumLatency(500*event.MHz, grid, false) {
		t.Fatal("doubled mode not faster")
	}
}

func TestE1ModelAnchors(t *testing.T) {
	// The 128-node benchmark of §4: 4^4 local volume, double precision —
	// CG efficiencies must reproduce the measured anchors.
	grid := lattice.Shape4{4, 4, 4, 2} // 128 nodes
	cases := []struct {
		kind     fermion.OpKind
		lo, hi   float64
		paperEff float64
	}{
		{fermion.WilsonKind, 0.38, 0.42, 0.40},
		{fermion.AsqtadKind, 0.36, 0.40, 0.38},
		{fermion.CloverKind, 0.44, 0.48, 0.465},
	}
	for _, c := range cases {
		est := CGIteration(DefaultConfig(c.kind, grid, 500*event.MHz))
		if est.Efficiency < c.lo || est.Efficiency > c.hi {
			t.Errorf("%v: efficiency %.3f, want ~%.3f", c.kind, est.Efficiency, c.paperEff)
		}
		if est.Level != memsys.EDRAM {
			t.Errorf("%v: 4^4 should be EDRAM resident", c.kind)
		}
	}
	// E15: DWF surpasses clover.
	dwf := CGIteration(DefaultConfig(fermion.DWFKind, grid, 500*event.MHz))
	clv := CGIteration(DefaultConfig(fermion.CloverKind, grid, 500*event.MHz))
	if dwf.Efficiency <= clv.Efficiency {
		t.Errorf("DWF %.3f not above clover %.3f", dwf.Efficiency, clv.Efficiency)
	}
}

func TestE2DDRSpill(t *testing.T) {
	// §4: larger local volumes that spill into DDR drop to ~30%.
	grid := lattice.Shape4{4, 4, 4, 2}
	cfg := DefaultConfig(fermion.WilsonKind, grid, 500*event.MHz)
	cfg.Local = lattice.Shape4{8, 8, 8, 8}
	est := CGIteration(cfg)
	if est.Level != memsys.DDR {
		t.Fatal("8^4 should spill to DDR")
	}
	if est.Efficiency < 0.27 || est.Efficiency > 0.33 {
		t.Fatalf("DDR efficiency %.3f, want ~0.30", est.Efficiency)
	}
	// 6^4 still fits (§4: "a 6^4 local volume still fits in our 4
	// Megabytes").
	cfg.Local = lattice.Shape4{6, 6, 6, 6}
	if CGIteration(cfg).Level != memsys.EDRAM {
		t.Fatal("6^4 should stay in EDRAM")
	}
}

func TestE3SinglePrecision(t *testing.T) {
	grid := lattice.Shape4{4, 4, 4, 2}
	dp := CGIteration(DefaultConfig(fermion.WilsonKind, grid, 500*event.MHz))
	cfg := DefaultConfig(fermion.WilsonKind, grid, 500*event.MHz)
	cfg.Prec = fermion.Single
	sp := CGIteration(cfg)
	if sp.Efficiency <= dp.Efficiency {
		t.Fatalf("single %.4f not above double %.4f", sp.Efficiency, dp.Efficiency)
	}
	if sp.Efficiency > dp.Efficiency+0.05 {
		t.Fatalf("single %.4f should be only slightly above double %.4f", sp.Efficiency, dp.Efficiency)
	}
}

func TestCommHiddenAtPaperVolume(t *testing.T) {
	// At 4^4 local volume the halo traffic hides completely under
	// compute — the design point of the machine.
	est := CGIteration(DefaultConfig(fermion.WilsonKind, lattice.Shape4{4, 4, 4, 2}, 500*event.MHz))
	if est.CommTime != 0 {
		t.Fatalf("comm not hidden: %v exposed (raw %v vs compute %v)",
			est.CommTime, est.CommRawTime, est.ComputeTime)
	}
	if est.CommRawTime <= 0 {
		t.Fatal("no raw comm modelled")
	}
}

func TestE11HardScaling(t *testing.T) {
	// Fixed 32^3 x 64 global lattice (the paper's production size for an
	// 8192-node machine) swept across machine sizes: efficiency falls as
	// local volume shrinks, total throughput still rises, and the comm
	// fraction grows.
	global := lattice.Shape4{32, 32, 32, 64}
	grids := []lattice.Shape4{
		{2, 2, 2, 4},   // 32 nodes, local 16^3 x 16
		{4, 4, 4, 4},   // 256 nodes, local 8^3 x 16
		{4, 4, 4, 16},  // 1024, local 8x8x8x4
		{8, 8, 8, 8},   // 4096, local 4^3 x 8
		{8, 8, 8, 16},  // 8192, local 4^4 — the paper's point
		{8, 8, 16, 16}, // 16384, local 4x4x2x4
	}
	pts, err := HardScaling(fermion.WilsonKind, global, grids, 500*event.MHz)
	if err != nil {
		t.Fatal(err)
	}
	// The curve is non-monotonic by design: large local volumes spill to
	// DDR (~30%, §4); once the working set drops into EDRAM the
	// efficiency jumps to the 40% regime and then decays as comm grows.
	firstEDRAM := -1
	for i, pt := range pts {
		if pt.Estimate.Level == memsys.EDRAM {
			firstEDRAM = i
			break
		}
	}
	if firstEDRAM <= 0 {
		t.Fatalf("expected the small-node end to be DDR resident (firstEDRAM=%d)", firstEDRAM)
	}
	if pts[firstEDRAM].Estimate.Efficiency <= pts[0].Estimate.Efficiency {
		t.Fatal("EDRAM residency should raise efficiency over the DDR-spilled point")
	}
	for i := firstEDRAM + 1; i < len(pts); i++ {
		if pts[i].Estimate.Efficiency > pts[i-1].Estimate.Efficiency+1e-9 {
			t.Fatalf("efficiency increased from %d to %d nodes within the EDRAM regime", pts[i-1].Nodes, pts[i].Nodes)
		}
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].SpeedupVs1 <= pts[i-1].SpeedupVs1 {
			t.Fatalf("no speedup from %d to %d nodes", pts[i-1].Nodes, pts[i].Nodes)
		}
	}
	// The paper's design point: 4^4 local on 8192 nodes still sustains
	// a healthy fraction of peak.
	p8192 := pts[4]
	if p8192.Local != (lattice.Shape4{4, 4, 4, 4}) {
		t.Fatalf("8192-node local volume %v", p8192.Local)
	}
	if p8192.Estimate.Efficiency < 0.30 {
		t.Fatalf("8192-node efficiency %.3f too low — the machine's design target breaks", p8192.Estimate.Efficiency)
	}
	// Comm fraction grows toward the small-volume end.
	if pts[len(pts)-1].CommFrac <= pts[0].CommFrac {
		t.Fatal("comm fraction did not grow under hard scaling")
	}
}

func TestSustainedMachine(t *testing.T) {
	// §4/abstract: 12,288 nodes at 45% efficiency and 450 MHz sustain
	// ~5 Tflops; at the 500 MHz target and peak 1 Gflops/node, the two
	// 12k machines together pass 10 Tflops peak.
	got := SustainedMachine(12288, 450*event.MHz, 0.45)
	if math.Abs(got-4976.6) > 5 {
		t.Fatalf("sustained = %.1f Gflops", got)
	}
}

func TestClockScaling(t *testing.T) {
	// Efficiency is clock-independent to first order (every component
	// scales together); sustained scales linearly.
	g := lattice.Shape4{4, 4, 4, 2}
	e500 := CGIteration(DefaultConfig(fermion.WilsonKind, g, 500*event.MHz))
	e360 := CGIteration(DefaultConfig(fermion.WilsonKind, g, 360*event.MHz))
	if math.Abs(e500.Efficiency-e360.Efficiency) > 0.01 {
		t.Fatalf("efficiency changed with clock: %.3f vs %.3f", e500.Efficiency, e360.Efficiency)
	}
	ratio := e360.Sustained / e500.Sustained
	if math.Abs(ratio-0.72) > 0.01 {
		t.Fatalf("sustained ratio %.3f, want 0.72", ratio)
	}
}
